open Mmt_util

type config = {
  mss : int;
  initial_window : int;
  max_window : int;
  algorithm : Congestion.algorithm;
  min_rto : Units.Time.t;
  max_rto : Units.Time.t;
}

let default_config =
  {
    mss = 1448;
    initial_window = 4 * 1448;
    max_window = 64 * 1024;
    algorithm = Congestion.Reno;
    min_rto = Units.Time.ms 200.;
    max_rto = Units.Time.seconds 60.;
  }

let tuned_config ~bdp =
  let mss = 8948 (* jumbo frames *) in
  {
    mss;
    initial_window = 10 * mss;
    max_window = max (64 * 1024) (2 * Units.Size.to_bytes bdp);
    algorithm = Congestion.Cubic;
    min_rto = Units.Time.ms 20.;
    max_rto = Units.Time.seconds 10.;
  }

type stats = {
  bytes_written : int;
  bytes_acked : int;
  bytes_delivered : int;
  segments_sent : int;
  retransmits : int;
  fast_retransmits : int;
  timeouts : int;
  duplicate_acks : int;
  out_of_order_segments : int;
  srtt : Units.Time.t option;
  cwnd : int;
  completed_at : Units.Time.t option;
}

type unacked = {
  u_seq : int64;
  u_len : int;
  mutable u_sent_at : Units.Time.t;
  mutable u_retx : int;
  mutable u_retx_epoch : int;
      (* value of the connection's retransmit counter when (re)sent;
         RTT samples are only taken when no retransmission happened in
         between (extended Karn rule), since cumulative ACKs released
         by a hole-fill would otherwise yield wildly stale samples *)
}

type t = {
  engine : Mmt_sim.Engine.t;
  fresh_id : unit -> int;
  config : config;
  port : int;
  tx : Mmt_sim.Packet.t -> unit;
  deliver : int -> unit;
  cc : Congestion.t;
  (* sender state *)
  mutable snd_una : int64;
  mutable snd_nxt : int64;
  mutable write_total : int64;  (* bytes the app has written *)
  mutable finished : bool;
  unacked : unacked Queue.t;
  mutable dupacks : int;
  mutable recover : int64;  (* fast-recovery high-water mark *)
  mutable in_recovery : bool;
  mutable peer_window : int;
  (* RTT estimation (RFC 6298) *)
  mutable srtt : float option;  (* seconds *)
  mutable rttvar : float;
  mutable rto : Units.Time.t;
  mutable rto_timer : Mmt_sim.Engine.handle;
  (* receiver state *)
  mutable rcv_nxt : int64;
  ooo : (int64, int) Hashtbl.t;  (* out-of-order: seq -> len *)
  (* accounting *)
  mutable bytes_delivered : int;
  mutable segments_sent : int;
  mutable retransmits : int;
  mutable fast_retransmits : int;
  mutable timeouts : int;
  mutable duplicate_acks : int;
  mutable out_of_order_segments : int;
  mutable completed_at : Units.Time.t option;
}

let create ~engine ~fresh_id ~config ?(port = 1) ~tx ?(deliver = fun _ -> ()) () =
  {
    engine;
    fresh_id;
    config;
    port;
    tx;
    deliver;
    cc =
      Congestion.create config.algorithm ~mss:config.mss
        ~initial_window:config.initial_window ~max_window:config.max_window;
    snd_una = 0L;
    snd_nxt = 0L;
    write_total = 0L;
    finished = false;
    unacked = Queue.create ();
    dupacks = 0;
    recover = 0L;
    in_recovery = false;
    peer_window = config.max_window;
    srtt = None;
    rttvar = 0.;
    rto = config.min_rto;
    rto_timer = Mmt_sim.Engine.null;
    rcv_nxt = 0L;
    ooo = Hashtbl.create 64;
    bytes_delivered = 0;
    segments_sent = 0;
    retransmits = 0;
    fast_retransmits = 0;
    timeouts = 0;
    duplicate_acks = 0;
    out_of_order_segments = 0;
    completed_at = None;
  }

let now t = Mmt_sim.Engine.now t.engine

let send_segment t ~seq ~len ~retransmission =
  let segment =
    Segment.data ~src_port:t.port ~dst_port:t.port ~seq ~ack:t.rcv_nxt
      ~window:t.config.max_window (Bytes.create 0)
  in
  (* The logical payload length rides exclusively in the packet's
     padding: segments never materialize content bytes. *)
  let frame = Segment.encode segment in
  let packet =
    Mmt_sim.Packet.create ~padding:len ~id:(t.fresh_id ()) ~born:(now t) frame
  in
  t.segments_sent <- t.segments_sent + 1;
  if retransmission then t.retransmits <- t.retransmits + 1;
  t.tx packet

let send_pure_ack t =
  let segment =
    Segment.pure_ack ~src_port:t.port ~dst_port:t.port ~ack:t.rcv_nxt
      ~window:t.config.max_window
  in
  let packet =
    Mmt_sim.Packet.create ~id:(t.fresh_id ()) ~born:(now t) (Segment.encode segment)
  in
  t.tx packet

(* RTO management ------------------------------------------------------ *)

let cancel_rto t =
  Mmt_sim.Engine.cancel t.engine t.rto_timer;
  t.rto_timer <- Mmt_sim.Engine.null

let update_rto_estimate t ~sample_s =
  (match t.srtt with
  | None ->
      t.srtt <- Some sample_s;
      t.rttvar <- sample_s /. 2.
  | Some srtt ->
      t.rttvar <- (0.75 *. t.rttvar) +. (0.25 *. Float.abs (srtt -. sample_s));
      t.srtt <- Some ((0.875 *. srtt) +. (0.125 *. sample_s)));
  let srtt = Option.value ~default:sample_s t.srtt in
  let raw = srtt +. Float.max 0.001 (4. *. t.rttvar) in
  t.rto <-
    Units.Time.max t.config.min_rto
      (Units.Time.min t.config.max_rto (Units.Time.seconds raw))

let rec arm_rto t =
  cancel_rto t;
  if not (Queue.is_empty t.unacked) then
    t.rto_timer <-
      Mmt_sim.Engine.schedule_after t.engine ~delay:t.rto (fun () -> on_rto t)

and on_rto t =
  t.rto_timer <- Mmt_sim.Engine.null;
  match Queue.peek_opt t.unacked with
  | None -> ()
  | Some head ->
      t.timeouts <- t.timeouts + 1;
      head.u_retx <- head.u_retx + 1;
      head.u_sent_at <- now t;
      send_segment t ~seq:head.u_seq ~len:head.u_len ~retransmission:true;
      head.u_retx_epoch <- t.retransmits;
      Congestion.on_timeout t.cc ~now:(now t);
      t.in_recovery <- true;
      t.recover <- t.snd_nxt;
      t.rto <- Units.Time.min t.config.max_rto (Units.Time.scale t.rto 2.);
      t.dupacks <- 0;
      arm_rto t

(* Sender pump --------------------------------------------------------- *)

let in_flight t = Int64.to_int (Int64.sub t.snd_nxt t.snd_una)

let effective_window t = min (Congestion.window t.cc) t.peer_window

let rec pump t =
  let available = Int64.to_int (Int64.sub t.write_total t.snd_nxt) in
  if available > 0 && in_flight t < effective_window t then begin
    let len = min t.config.mss available in
    let len = min len (effective_window t - in_flight t) in
    if len > 0 then begin
      let seq = t.snd_nxt in
      send_segment t ~seq ~len ~retransmission:false;
      Queue.push
        {
          u_seq = seq;
          u_len = len;
          u_sent_at = now t;
          u_retx = 0;
          u_retx_epoch = t.retransmits;
        }
        t.unacked;
      t.snd_nxt <- Int64.add t.snd_nxt (Int64.of_int len);
      if t.rto_timer = Mmt_sim.Engine.null then arm_rto t;
      pump t
    end
  end

let write t n =
  if n < 0 then invalid_arg "Connection.write: negative length";
  t.write_total <- Int64.add t.write_total (Int64.of_int n);
  pump t

let finish t =
  t.finished <- true;
  if t.snd_una = t.write_total && t.completed_at = None then
    t.completed_at <- Some (now t)

(* ACK processing (sender side) ---------------------------------------- *)

let retransmit_head t =
  match Queue.peek_opt t.unacked with
  | None -> ()
  | Some head ->
      head.u_retx <- head.u_retx + 1;
      head.u_sent_at <- now t;
      send_segment t ~seq:head.u_seq ~len:head.u_len ~retransmission:true;
      head.u_retx_epoch <- t.retransmits

let fast_retransmit t =
  t.fast_retransmits <- t.fast_retransmits + 1;
  retransmit_head t;
  Congestion.on_fast_retransmit t.cc ~now:(now t);
  t.in_recovery <- true;
  t.recover <- t.snd_nxt

let handle_ack t (segment : Segment.t) =
  t.peer_window <- segment.Segment.window;
  let ack = segment.Segment.ack in
  if Int64.compare ack t.snd_una > 0 then begin
    let acked = Int64.to_int (Int64.sub ack t.snd_una) in
    t.snd_una <- ack;
    t.dupacks <- 0;
    (* Retire covered segments; sample RTT from a never-retransmitted
       one (Karn's rule). *)
    let continue = ref true in
    let rtt_sample = ref None in
    while !continue do
      match Queue.peek_opt t.unacked with
      | Some head
        when Int64.compare (Int64.add head.u_seq (Int64.of_int head.u_len)) ack <= 0
        ->
          if head.u_retx = 0 && head.u_retx_epoch = t.retransmits then begin
            let sample =
              Units.Time.to_float_s (Units.Time.diff (now t) head.u_sent_at)
            in
            if sample > 0. then begin
              update_rto_estimate t ~sample_s:sample;
              rtt_sample := Some sample
            end
          end;
          ignore (Queue.pop t.unacked)
      | _ -> continue := false
    done;
    (* NewReno partial ACK: still inside the recovery window means the
       next hole starts at the new head — retransmit it immediately
       rather than waiting out an RTO per hole. *)
    if t.in_recovery then begin
      if Int64.compare ack t.recover >= 0 then t.in_recovery <- false
      else begin
        retransmit_head t
      end
    end;
    Congestion.on_ack ?rtt_sample:!rtt_sample t.cc ~acked ~now:(now t);
    if Queue.is_empty t.unacked then cancel_rto t else arm_rto t;
    if t.finished && t.snd_una = t.write_total && t.completed_at = None then
      t.completed_at <- Some (now t);
    pump t
  end
  else if Int64.equal ack t.snd_una && Int64.compare t.snd_nxt t.snd_una > 0 then begin
    t.duplicate_acks <- t.duplicate_acks + 1;
    t.dupacks <- t.dupacks + 1;
    (* NewReno-style guard: one fast retransmit per window of data. *)
    if t.dupacks = 3 && Int64.compare ack t.recover >= 0 then fast_retransmit t
  end

(* Data processing (receiver side) -------------------------------------- *)

let drain_ooo t =
  let progressed = ref true in
  while !progressed do
    match Hashtbl.find_opt t.ooo t.rcv_nxt with
    | Some len ->
        Hashtbl.remove t.ooo t.rcv_nxt;
        t.rcv_nxt <- Int64.add t.rcv_nxt (Int64.of_int len);
        t.bytes_delivered <- t.bytes_delivered + len;
        t.deliver len
    | None -> progressed := false
  done

let handle_data t (segment : Segment.t) ~len =
  if len > 0 then begin
    let seq = segment.Segment.seq in
    if Int64.equal seq t.rcv_nxt then begin
      t.rcv_nxt <- Int64.add t.rcv_nxt (Int64.of_int len);
      t.bytes_delivered <- t.bytes_delivered + len;
      t.deliver len;
      drain_ooo t
    end
    else if Int64.compare seq t.rcv_nxt > 0 then begin
      t.out_of_order_segments <- t.out_of_order_segments + 1;
      if not (Hashtbl.mem t.ooo seq) then Hashtbl.replace t.ooo seq len
    end;
    (* else: duplicate of already-delivered data; just re-ACK. *)
    send_pure_ack t
  end

let on_packet t packet =
  if not packet.Mmt_sim.Packet.corrupted then
    match Segment.decode (Mmt_sim.Packet.frame packet) with
    | Error _ -> ()
    | Ok segment when segment.Segment.dst_port = t.port ->
        let len = packet.Mmt_sim.Packet.padding in
        if len > 0 then handle_data t segment ~len
        else if segment.Segment.flags.Segment.ack then handle_ack t segment
    | Ok _other_port -> ()

let stats t =
  {
    bytes_written = Int64.to_int t.write_total;
    bytes_acked = Int64.to_int t.snd_una;
    bytes_delivered = t.bytes_delivered;
    segments_sent = t.segments_sent;
    retransmits = t.retransmits;
    fast_retransmits = t.fast_retransmits;
    timeouts = t.timeouts;
    duplicate_acks = t.duplicate_acks;
    out_of_order_segments = t.out_of_order_segments;
    srtt = Option.map Units.Time.seconds t.srtt;
    cwnd = Congestion.window t.cc;
    completed_at = t.completed_at;
  }

let config t = t.config
let rto t = t.rto
