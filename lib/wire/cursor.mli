(** Bounds-checked big-endian cursors over [bytes].

    All protocol headers (Ethernet, IPv4, UDP and the multi-modal
    transport header) serialize and parse through these cursors, so
    every field access is network byte order and bounds-checked in one
    place. *)

exception Out_of_bounds of string
(** Raised on any read or write past the cursor's window. *)

module Reader : sig
  type t

  val of_bytes : ?off:int -> ?len:int -> bytes -> t
  (** View over [bytes.(off .. off+len-1)]; defaults to the whole
      buffer.  @raise Invalid_argument on a bad window. *)

  val remaining : t -> int
  val position : t -> int
  (** Offset consumed so far, relative to the window start. *)

  val u8 : t -> int
  val u16 : t -> int
  val u24 : t -> int
  val u32 : t -> int32
  val u32_int : t -> int
  (** [u32] as a non-negative [int] (always fits on 64-bit OCaml). *)

  val u64 : t -> int64
  val take : t -> int -> bytes
  (** Copy out the next [n] bytes. *)

  val skip : t -> int -> unit
  val rest : t -> bytes
  (** Copy out everything remaining. *)
end

module Writer : sig
  type t

  val create : int -> t
  (** Fixed-capacity writer; writes beyond capacity raise
      {!Out_of_bounds} rather than grow, because on-wire headers have
      known sizes. *)

  val over : bytes -> t
  (** Writer positioned at offset 0 of a caller-owned buffer (e.g. a
      pool frame), so headers can be serialized without allocating.
      Capacity is the buffer's full length; {!contents} still copies. *)

  val length : t -> int
  val u8 : t -> int -> unit
  (** Low 8 bits of the argument. *)

  val u16 : t -> int -> unit
  val u24 : t -> int -> unit
  val u32 : t -> int32 -> unit
  val u32_int : t -> int -> unit
  val u64 : t -> int64 -> unit
  val bytes : t -> bytes -> unit
  val contents : t -> bytes
  (** Copy of the written prefix. *)
end

val checksum : bytes -> off:int -> len:int -> int
(** RFC 1071 Internet checksum of the given window (16-bit one's
    complement of the one's-complement sum). *)
