exception Out_of_bounds of string

module Reader = struct
  type t = { buf : bytes; limit : int; mutable pos : int; start : int }

  let of_bytes ?(off = 0) ?len buf =
    let len = match len with Some l -> l | None -> Bytes.length buf - off in
    if off < 0 || len < 0 || off + len > Bytes.length buf then
      invalid_arg "Cursor.Reader.of_bytes: bad window";
    { buf; limit = off + len; pos = off; start = off }

  let remaining t = t.limit - t.pos
  let position t = t.pos - t.start

  let need t n what =
    if remaining t < n then
      raise (Out_of_bounds (Printf.sprintf "read %s: need %d, have %d" what n (remaining t)))

  let u8 t =
    need t 1 "u8";
    let v = Char.code (Bytes.get t.buf t.pos) in
    t.pos <- t.pos + 1;
    v

  let u16 t =
    need t 2 "u16";
    let v = Bytes.get_uint16_be t.buf t.pos in
    t.pos <- t.pos + 2;
    v

  let u24 t =
    need t 3 "u24";
    let high = Char.code (Bytes.get t.buf t.pos) in
    let low = Bytes.get_uint16_be t.buf (t.pos + 1) in
    t.pos <- t.pos + 3;
    (high lsl 16) lor low

  let u32 t =
    need t 4 "u32";
    let v = Bytes.get_int32_be t.buf t.pos in
    t.pos <- t.pos + 4;
    v

  let u32_int t = Int32.to_int (u32 t) land 0xFFFFFFFF

  let u64 t =
    need t 8 "u64";
    let v = Bytes.get_int64_be t.buf t.pos in
    t.pos <- t.pos + 8;
    v

  let take t n =
    need t n "take";
    let out = Bytes.sub t.buf t.pos n in
    t.pos <- t.pos + n;
    out

  let skip t n =
    need t n "skip";
    t.pos <- t.pos + n

  let rest t = take t (remaining t)
end

module Writer = struct
  type t = { buf : bytes; mutable pos : int }

  let create capacity = { buf = Bytes.create capacity; pos = 0 }

  (* Write into a caller-owned buffer (e.g. a pool frame) instead of a
     fresh one; bounds-checked against its full length. *)
  let over buf = { buf; pos = 0 }
  let length t = t.pos

  let need t n what =
    if t.pos + n > Bytes.length t.buf then
      raise
        (Out_of_bounds
           (Printf.sprintf "write %s: need %d, capacity left %d" what n
              (Bytes.length t.buf - t.pos)))

  let u8 t v =
    need t 1 "u8";
    Bytes.set t.buf t.pos (Char.chr (v land 0xFF));
    t.pos <- t.pos + 1

  let u16 t v =
    need t 2 "u16";
    Bytes.set_uint16_be t.buf t.pos (v land 0xFFFF);
    t.pos <- t.pos + 2

  let u24 t v =
    need t 3 "u24";
    Bytes.set t.buf t.pos (Char.chr ((v lsr 16) land 0xFF));
    Bytes.set_uint16_be t.buf (t.pos + 1) (v land 0xFFFF);
    t.pos <- t.pos + 3

  let u32 t v =
    need t 4 "u32";
    Bytes.set_int32_be t.buf t.pos v;
    t.pos <- t.pos + 4

  let u32_int t v = u32 t (Int32.of_int (v land 0xFFFFFFFF))

  let u64 t v =
    need t 8 "u64";
    Bytes.set_int64_be t.buf t.pos v;
    t.pos <- t.pos + 8

  let bytes t b =
    let n = Bytes.length b in
    need t n "bytes";
    Bytes.blit b 0 t.buf t.pos n;
    t.pos <- t.pos + n

  let contents t = Bytes.sub t.buf 0 t.pos
end

let checksum buf ~off ~len =
  if off < 0 || len < 0 || off + len > Bytes.length buf then
    invalid_arg "Cursor.checksum: bad window";
  let sum = ref 0 in
  let i = ref off in
  let last = off + len in
  while !i + 1 < last do
    sum := !sum + Bytes.get_uint16_be buf !i;
    i := !i + 2
  done;
  if !i < last then sum := !sum + (Char.code (Bytes.get buf !i) lsl 8);
  let folded = ref !sum in
  while !folded > 0xFFFF do
    folded := (!folded land 0xFFFF) + (!folded lsr 16)
  done;
  lnot !folded land 0xFFFF
