(** Resource advertisement and discovery (§ 6, challenge 1).

    "This map is shared between network operators — perhaps by
    piggy-backing on BGP messages — to describe their programmable
    infrastructure and its capabilities."  A participant periodically
    advertises the resources it hosts (today: retransmission buffers)
    to its control-plane peers as {!Mmt.Feature.Kind.Buffer_advert}
    packets, ingests peers' advertisements into its {!Resource_map},
    and re-gossips what it has learned with a hop budget so maps
    converge across domains.

    Advertisement stops when a resource disappears; entries then expire
    from peers' maps after the map TTL — failure detection falls out of
    soft state, as it does in BGP. *)

open Mmt_util
open Mmt_frame

type stats = {
  adverts_sent : int;
  adverts_received : int;
  gossip_forwarded : int;
}

type t

val create :
  env:Mmt_runtime.Env.t ->
  period:Units.Time.t ->
  peers:Addr.Ip.t list ->
  ?map_ttl:Units.Time.t ->
  ?gossip_hops:int ->
  unit ->
  t
(** [map_ttl] defaults to 4x the period; [gossip_hops] (how many times a
    learned advert is re-forwarded) defaults to 1. *)

val add_local : t -> (unit -> Mmt.Control.Buffer_advert.t option) -> unit
(** Register a local resource provider; polled at each advertisement
    round.  Returning [None] stops advertising it (resource failed or
    was withdrawn). *)

val start : t -> unit
(** Begin periodic advertisement; idempotent. *)

val stop : t -> unit

val set_blackholed : t -> bool -> unit
(** Fault hook: a blackholed control plane neither sends nor ingests
    advertisements, while expiry keeps running — so soft state decays
    exactly as it would if the advertisement path were severed
    (failure detection falls out of the TTL, as in BGP). *)

val blackholed : t -> bool

val on_packet : t -> Mmt_sim.Packet.t -> unit
(** Ingest a control packet; only buffer advertisements are acted on. *)

val map : t -> Resource_map.t
val best_buffer : t -> Addr.Ip.t option
(** Live buffer with the lowest advertised RTT, at the current time. *)

val stats : t -> stats
