open Mmt_util
open Mmt_frame

type config = {
  sum_adc_threshold : int;
  subscribers : Addr.Ip.t list;
  min_gap : Units.Time.t;
}

type stats = {
  inspected : int;
  triggers_seen : int;
  alerts_emitted : int;
}

type t = {
  env : Mmt_runtime.Env.t;
  config : config;
  mutable inspected : int;
  mutable triggers_seen : int;
  mutable alerts_emitted : int;
  mutable last_alert : Units.Time.t option;
  mutable next_alert_id : int;
  element : Element.t Lazy.t;
}

let program =
  {
    Op.name = "alert-generator";
    ops =
      [
        Op.Extract "config_data";
        Op.Compare "kind";
        Op.Payload_access "fragment header + trigger primitives";
        Op.Compare "sum_adc";
        Op.Emit_digest "multi-domain-alert";
      ];
  }

let send_alert t ~(source : Mmt_daq.Fragment.t) ~total_charge =
  let now = Mmt_runtime.Env.now t.env in
  let alert_fragment =
    {
      Mmt_daq.Fragment.run = source.Mmt_daq.Fragment.run;
      trigger = source.Mmt_daq.Fragment.trigger;
      timestamp = now;
      experiment = source.Mmt_daq.Fragment.experiment;
      detector =
        Mmt_daq.Fragment.Telescope_alert
          {
            alert_id = t.next_alert_id;
            (* Placeholder sky coordinates derived from the trigger; a
               real deployment would reconstruct direction offline. *)
            ra_udeg = source.Mmt_daq.Fragment.trigger * 997 mod 0xFFFFFF;
            dec_udeg = source.Mmt_daq.Fragment.trigger * 991 mod 0xFFFFFF;
            severity = min 255 (total_charge / 10_000);
          };
      payload = Bytes.empty;
    }
  in
  t.next_alert_id <- t.next_alert_id + 1;
  let header =
    Mmt.Header.create ~experiment:source.Mmt_daq.Fragment.experiment ()
  in
  let mmt = Bytes.cat (Mmt.Header.encode header) (Mmt_daq.Fragment.encode alert_fragment) in
  List.iter
    (fun subscriber ->
      let frame =
        Mmt.Encap.wrap
          (Mmt.Encap.Over_ipv4
             {
               src = t.env.Mmt_runtime.Env.local_ip;
               dst = subscriber;
               dscp = 46;
               ttl = 64;
             })
          mmt
      in
      t.alerts_emitted <- t.alerts_emitted + 1;
      t.env.Mmt_runtime.Env.send subscriber (Mmt_runtime.Env.packet t.env frame))
    t.config.subscribers;
  t.last_alert <- Some now

let rate_limited t =
  match t.last_alert with
  | None -> false
  | Some last ->
      Units.Time.(
        Units.Time.diff (Mmt_runtime.Env.now t.env) last < t.config.min_gap)

let fragment_charge fragment =
  match Mmt_daq.Lartpc.deserialize_hits fragment.Mmt_daq.Fragment.payload with
  | Some hits ->
      Some
        (List.fold_left
           (fun acc (h : Mmt_daq.Lartpc.hit) -> acc + h.Mmt_daq.Lartpc.sum_adc)
           0 hits)
  | None -> None

let process t ~now:_ packet =
  let frame = Mmt_sim.Packet.frame packet in
  (match Mmt.Encap.locate frame with
  | Error _ -> ()
  | Ok (_encap, mmt_offset) -> (
      match Mmt.Header.View.of_frame ~off:mmt_offset frame with
      | Ok view when Mmt.Header.View.kind view = Mmt.Feature.Kind.Data -> (
          let payload_offset = mmt_offset + Mmt.Header.View.size view in
          let payload =
            Bytes.sub frame payload_offset (Bytes.length frame - payload_offset)
          in
          match Mmt_daq.Fragment.decode payload with
          | Error _ -> ()
          | Ok fragment -> (
              t.inspected <- t.inspected + 1;
              match fragment_charge fragment with
              | Some charge when charge >= t.config.sum_adc_threshold ->
                  t.triggers_seen <- t.triggers_seen + 1;
                  if not (rate_limited t) then
                    send_alert t ~source:fragment ~total_charge:charge
              | Some _ | None -> ()))
      | Ok _ | Error _ -> ()));
  Element.Forward packet

let create ~env config =
  let rec t =
    {
      env;
      config;
      inspected = 0;
      triggers_seen = 0;
      alerts_emitted = 0;
      last_alert = None;
      next_alert_id = 0;
      element =
        lazy
          {
            Element.name = "alert-generator";
            program;
            process = (fun ~now packet -> process t ~now packet);
          };
    }
  in
  t

let element t = Lazy.force t.element

let stats t =
  {
    inspected = t.inspected;
    triggers_seen = t.triggers_seen;
    alerts_emitted = t.alerts_emitted;
  }
