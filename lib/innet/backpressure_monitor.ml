open Mmt_util

type config = {
  high_watermark : Units.Size.t;
  low_watermark : Units.Size.t;
  advised_pace_mbps : int;
  min_signal_gap : Units.Time.t;
}

type stats = { signals_sent : int; clears_sent : int; congested : bool }

type t = {
  env : Mmt_runtime.Env.t;
  config : config;
  queue_depth : unit -> Units.Size.t;
  mutable congested : bool;
  mutable last_signal : Units.Time.t option;
  mutable signals_sent : int;
  mutable clears_sent : int;
  element : Element.t Lazy.t;
}

let program =
  {
    Op.name = "backpressure-monitor";
    ops =
      [
        Op.Extract "config_data";
        Op.Compare "features.backpressured";
        Op.Extract "backpressure_to";
        Op.Register_read "queue_depth";
        Op.Compare "watermark";
        Op.Register_read "last_signal";
        Op.Register_write "last_signal";
        Op.Emit_digest "backpressure";
      ];
  }

let send_signal t ~dst ~severity =
  let message =
    {
      Mmt.Control.Backpressure.origin = t.env.Mmt_runtime.Env.local_ip;
      advised_pace_mbps = t.config.advised_pace_mbps;
      severity;
    }
  in
  let header =
    Mmt.Header.with_kind
      (Mmt.Header.mode0 ~experiment:(Mmt.Experiment_id.make ~experiment:0 ~slice:0))
      Mmt.Feature.Kind.Backpressure
  in
  let mmt = Mmt.Header.encode header in
  let payload = Mmt.Control.Backpressure.encode message in
  let frame = Bytes.cat mmt payload in
  let wrapped =
    Mmt.Encap.wrap
      (Mmt.Encap.Over_ipv4
         { src = t.env.Mmt_runtime.Env.local_ip; dst; dscp = 0; ttl = 64 })
      frame
  in
  t.env.Mmt_runtime.Env.send dst (Mmt_runtime.Env.packet t.env wrapped)

let rate_limited t now =
  match t.last_signal with
  | None -> false
  | Some last -> Units.Time.(Units.Time.diff now last < t.config.min_signal_gap)

let process t ~now packet =
  let frame = Mmt_sim.Packet.frame packet in
  (match Mmt.Encap.locate frame with
  | Error _ -> ()
  | Ok (_encap, mmt_offset) -> (
      match Mmt.Header.View.of_frame ~off:mmt_offset frame with
      | Error _ -> ()
      | Ok view ->
          if Mmt.Header.View.has view Mmt.Feature.Backpressured then begin
            let control_addr = Mmt.Header.View.backpressure_to view in
              let depth = Units.Size.to_bytes (t.queue_depth ()) in
              let high = Units.Size.to_bytes t.config.high_watermark in
              let low = Units.Size.to_bytes t.config.low_watermark in
              if depth > high && not (rate_limited t now) then begin
                let severity =
                  min 255 (100 + (100 * (depth - high) / (max 1 high)))
                in
                send_signal t ~dst:control_addr ~severity;
                t.signals_sent <- t.signals_sent + 1;
                t.congested <- true;
                t.last_signal <- Some now
              end
              else if t.congested && depth < low then begin
                send_signal t ~dst:control_addr ~severity:0;
                t.clears_sent <- t.clears_sent + 1;
                t.congested <- false;
                t.last_signal <- Some now
              end
          end));
  Element.Forward packet

let create ~env config ~queue_depth () =
  if Units.Size.compare config.low_watermark config.high_watermark > 0 then
    invalid_arg "Backpressure_monitor.create: low watermark above high";
  let rec t =
    {
      env;
      config;
      queue_depth;
      congested = false;
      last_signal = None;
      signals_sent = 0;
      clears_sent = 0;
      element =
        lazy
          {
            Element.name = "backpressure-monitor";
            program;
            process = (fun ~now packet -> process t ~now packet);
          };
    }
  in
  t

let element t = Lazy.force t.element

let stats t =
  { signals_sent = t.signals_sent; clears_sent = t.clears_sent; congested = t.congested }
