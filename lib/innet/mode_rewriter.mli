(** Segment-boundary mode rewriting — the multi-modality mechanism.

    "The mode may be changed by programmable hardware as the
    transported packets traverse network segments" (§ 5).  A rewriter
    is configured with the target {!Mmt.Mode} of the segment it guards
    the entrance to.  For each data packet it:

    - assigns a sequence number from a per-experiment register when the
      target mode is sequenced and the packet is not yet ("network
      elements add a sequence number to loss-recoverable streams",
      § 5.4);
    - names the segment's retransmission buffer in the header;
    - sets the absolute deadline (ingress time + budget) and the
      notification address when activating timeliness — preserving an
      already-present end-to-end deadline;
    - initializes the age extension when activating age tracking;
    - writes the advised pace and the back-pressure address;
    - strips features absent from the target mode;
    - optionally re-encapsulates (e.g. DAQ Ethernet → WAN IPv4 at the
      border, Req 1).

    A callback observes each rewritten frame so a co-located
    retransmission buffer ({!Mmt.Buffer_host}) can store it.

    {b Graceful degradation.}  With a [liveness] oracle installed, a
    rewriter whose target mode names a retransmission buffer that is no
    longer live (failed, or its soft state expired) does not point NAK
    traffic at the corpse: it rewrites into the target mode with
    [Reliable] {e and} [Sequenced] stripped — per
    {!Mmt.Mode.transition_legal}, a stream may only leave the
    recoverable region whole — so frames flow best-effort until the
    control plane replans. *)

type stats = {
  rewritten : int;
  sequenced : int;  (** sequence numbers assigned *)
  passed : int;  (** non-data packets forwarded untouched *)
  parse_errors : int;
  degraded : int;
      (** data packets rewritten into the degraded (unreliable) mode
          because the target buffer was not live *)
}

type t

val create :
  mode:Mmt.Mode.t ->
  ?re_encap:Mmt.Encap.t ->
  ?pool:Mmt_sim.Pool.t ->
  ?on_rewrite:(seq:int option -> born:Mmt_util.Units.Time.t -> bytes -> unit) ->
  ?liveness:(Mmt_frame.Addr.Ip.t -> now:Mmt_util.Units.Time.t -> bool) ->
  unit ->
  t
(** [liveness] is consulted per data packet for the target mode's
    retransmission buffer (typically
    [Resource_map.is_live (Control_plane.map control)]); omitting it
    preserves the historic always-trusting behaviour.  With [pool],
    replacement frames are acquired from it and each replaced frame is
    released back — the rewriter's slow path otherwise leaks the old
    frame to the GC on every header-shape change.
    @raise Invalid_argument when [mode] fails {!Mmt.Mode.check}. *)

val element : t -> Element.t

val set_mode : t -> Mmt.Mode.t -> (unit, string) result
(** Control-plane reconfiguration: swap the target mode at run time
    (e.g. pointing reliability at a different buffer after a failure).
    Validates the new mode and the legality of the transition from the
    current one; sequence counters persist across the change. *)

val mode : t -> Mmt.Mode.t
val stats : t -> stats
val next_sequence : t -> experiment:Mmt.Experiment_id.t -> int
(** Peek the register value the next packet of [experiment] would get. *)
