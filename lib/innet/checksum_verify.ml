type stats = { checked : int; failed : int; passed : int }

type t = {
  require : bool;
  mutable checked : int;
  mutable failed : int;
  mutable passed : int;
  element : Element.t Lazy.t;
}

(* Integer-only: parse the core, branch on the Checksummed bit, fold
   the fixed-size header through the ones'-complement adder, compare
   with zero.  Exactly the shape of a P4 verify_checksum stage. *)
let program =
  {
    Op.name = "checksum-verify";
    ops =
      [
        Op.Extract "config_id";
        Op.Extract "config_data";
        Op.Compare "features.checksummed";
        Op.Extract "checksum";
        Op.Add_to_field "sum.fold";
        Op.Compare "sum.zero";
      ];
  }

let process t ~now:_ packet =
  let frame = Mmt_sim.Packet.frame packet in
  match Mmt.Encap.locate frame with
  | Error _ ->
      (* Not an MMT frame: none of our business. *)
      t.passed <- t.passed + 1;
      Element.Forward packet
  | Ok (_encap, mmt_offset) -> (
      match Mmt.Header.View.of_frame ~off:mmt_offset frame with
      | Error reason ->
          (* An unparseable header on a checksum-verifying path is
             treated as corruption: a flipped feature bit or config id
             looks exactly like this. *)
          t.checked <- t.checked + 1;
          t.failed <- t.failed + 1;
          Element.Discard ("checksum-verify: " ^ reason)
      | Ok view ->
          if not (Mmt.Header.View.has view Mmt.Feature.Checksummed) then begin
            (* On a path whose planned mode seals every data frame, a
               data frame without the bit IS corruption — the flip that
               erased the Checksummed feature bit would otherwise make
               every other flipped bit in the header unverifiable. *)
            if t.require && Mmt.Header.View.kind view = Mmt.Feature.Kind.Data
            then begin
              t.checked <- t.checked + 1;
              t.failed <- t.failed + 1;
              Element.Discard "checksum-verify: required checksum missing"
            end
            else begin
              t.passed <- t.passed + 1;
              Element.Forward packet
            end
          end
          else begin
            t.checked <- t.checked + 1;
            if Mmt.Header.View.verify view then Element.Forward packet
            else begin
              t.failed <- t.failed + 1;
              Element.Discard "checksum-verify: header checksum mismatch"
            end
          end)

let create ?(require = false) () =
  let rec t =
    {
      require;
      checked = 0;
      failed = 0;
      passed = 0;
      element =
        lazy
          {
            Element.name = "checksum-verify";
            program;
            process = (fun ~now packet -> process t ~now packet);
          };
    }
  in
  t

let element t = Lazy.force t.element
let stats t = { checked = t.checked; failed = t.failed; passed = t.passed }
