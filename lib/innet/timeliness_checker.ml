open Mmt_util
open Mmt_frame

type policy = Mark | Drop_expired | Notify

type stats = {
  checked : int;
  expired : int;
  dropped : int;
  notices_sent : int;
}

type t = {
  env : Mmt_runtime.Env.t;
  policy : policy;
  mutable checked : int;
  mutable expired : int;
  mutable dropped : int;
  mutable notices_sent : int;
  element : Element.t Lazy.t;
}

let program =
  {
    Op.name = "timeliness-checker";
    ops =
      [
        Op.Extract "config_data";
        Op.Compare "features.timely";
        Op.Extract "deadline";
        Op.Compare "now";
        Op.Extract "notify";
        Op.Emit_digest "deadline-exceeded";
      ];
  }

let send_notice t ~dst notice =
  let header =
    Mmt.Header.with_kind
      (Mmt.Header.mode0 ~experiment:(Mmt.Experiment_id.make ~experiment:0 ~slice:0))
      Mmt.Feature.Kind.Deadline_exceeded
  in
  let frame =
    Bytes.cat (Mmt.Header.encode header) (Mmt.Control.Deadline_exceeded.encode notice)
  in
  let wrapped =
    Mmt.Encap.wrap
      (Mmt.Encap.Over_ipv4
         { src = t.env.Mmt_runtime.Env.local_ip; dst; dscp = 0; ttl = 64 })
      frame
  in
  t.env.Mmt_runtime.Env.send dst (Mmt_runtime.Env.packet t.env wrapped);
  t.notices_sent <- t.notices_sent + 1

let process t ~now packet =
  let frame = Mmt_sim.Packet.frame packet in
  match Mmt.Encap.locate frame with
  | Error _ -> Element.Forward packet
  | Ok (_encap, mmt_offset) -> (
      match Mmt.Header.View.of_frame ~off:mmt_offset frame with
      | Error _ -> Element.Forward packet
      | Ok view ->
          if
            Mmt.Header.View.kind view = Mmt.Feature.Kind.Data
            && Mmt.Header.View.has view Mmt.Feature.Timely
          then begin
            t.checked <- t.checked + 1;
            let deadline = Mmt.Header.View.deadline_ns view in
            if Units.Time.(now > deadline) then begin
              t.expired <- t.expired + 1;
              let notify = Mmt.Header.View.notify view in
              let notice =
                {
                  Mmt.Control.Deadline_exceeded.sequence =
                    (if Mmt.Header.View.has view Mmt.Feature.Sequenced then
                       Mmt.Header.View.sequence view
                     else 0xFFFFFFFF);
                  deadline;
                  observed = now;
                }
              in
              match t.policy with
              | Mark -> Element.Forward packet
              | Drop_expired ->
                  t.dropped <- t.dropped + 1;
                  Element.Discard "expired"
              | Notify ->
                  if not (Addr.Ip.is_any notify) then send_notice t ~dst:notify notice;
                  Element.Forward packet
            end
            else Element.Forward packet
          end
          else Element.Forward packet)

let create ~env ~policy () =
  let rec t =
    {
      env;
      policy;
      checked = 0;
      expired = 0;
      dropped = 0;
      notices_sent = 0;
      element =
        lazy
          {
            Element.name = "timeliness-checker";
            program;
            process = (fun ~now packet -> process t ~now packet);
          };
    }
  in
  t

let element t = Lazy.force t.element

let stats t =
  {
    checked = t.checked;
    expired = t.expired;
    dropped = t.dropped;
    notices_sent = t.notices_sent;
  }
