type stats = { touched : int; aged_marked : int; untracked : int }

type t = {
  mutable touched : int;
  mutable aged_marked : int;
  mutable untracked : int;
  element : Element.t Lazy.t;
}

let program =
  {
    Op.name = "age-tracker";
    ops =
      [
        Op.Extract "config_data";
        Op.Compare "features.age_tracked";
        Op.Extract "age.last_touch";
        Op.Add_to_field "age.age_us";
        Op.Compare "age.budget_us";
        Op.Set_flag "age.aged";
        Op.Add_to_field "age.hop_count";
        Op.Set_field "age.last_touch";
      ];
  }

let process t ~now packet =
  let frame = Mmt_sim.Packet.frame packet in
  (match Mmt.Encap.locate frame with
  | Error _ -> t.untracked <- t.untracked + 1
  | Ok (_encap, mmt_offset) -> (
      match Mmt.Header.View.of_frame ~off:mmt_offset frame with
      | Error _ -> t.untracked <- t.untracked + 1
      | Ok view ->
          if not (Mmt.Header.View.has view Mmt.Feature.Age_tracked) then
            t.untracked <- t.untracked + 1
          else begin
            let was_aged = Mmt.Header.View.aged view in
            let _age_us, aged = Mmt.Header.View.touch_age view ~now in
            t.touched <- t.touched + 1;
            if aged && not was_aged then t.aged_marked <- t.aged_marked + 1
          end));
  Element.Forward packet

let create () =
  let rec t =
    {
      touched = 0;
      aged_marked = 0;
      untracked = 0;
      element =
        lazy
          {
            Element.name = "age-tracker";
            program;
            process = (fun ~now packet -> process t ~now packet);
          };
    }
  in
  t

let element t = Lazy.force t.element

let stats t =
  { touched = t.touched; aged_marked = t.aged_marked; untracked = t.untracked }
