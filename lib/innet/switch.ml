open Mmt_util

type profile = { profile_name : string; pipeline_latency : Units.Time.t }

let tofino2 = { profile_name = "tofino2"; pipeline_latency = Units.Time.ns 450 }
let alveo_smartnic = { profile_name = "alveo-smartnic"; pipeline_latency = Units.Time.us 2. }
let software_switch = { profile_name = "software"; pipeline_latency = Units.Time.us 20. }

type stats = {
  processed : int;
  forwarded : int;
  replicated : int;
  discarded : int;
  unrouted : int;
}

type t = {
  engine : Mmt_sim.Engine.t;
  node : Mmt_sim.Node.t;
  profile : profile;
  elements : Element.t list;
  route : Mmt_sim.Packet.t -> (Mmt_sim.Packet.t -> unit) option;
  mutable processed : int;
  mutable forwarded : int;
  mutable replicated : int;
  mutable discarded : int;
  mutable unrouted : int;
}

let emit t packet =
  match t.route packet with
  | Some sink ->
      t.forwarded <- t.forwarded + 1;
      sink packet
  | None -> t.unrouted <- t.unrouted + 1

let handle t packet =
  t.processed <- t.processed + 1;
  ignore
    (Mmt_sim.Engine.schedule_after t.engine ~delay:t.profile.pipeline_latency
       (fun () ->
         let now = Mmt_sim.Engine.now t.engine in
         match Element.chain t.elements ~now packet with
         | Element.Forward packet -> emit t packet
         | Element.Replicate packets ->
             t.replicated <- t.replicated + max 0 (List.length packets - 1);
             List.iter (emit t) packets
         | Element.Discard _reason -> t.discarded <- t.discarded + 1))

let attach ~engine ~node ~profile ?(allow_payload = false) ~elements ~route () =
  List.iter
    (fun (element : Element.t) ->
      match Op.realizable ~allow_payload element.Element.program with
      | Ok () -> ()
      | Error reason -> invalid_arg ("Switch.attach: " ^ reason))
    elements;
  let t =
    {
      engine;
      node;
      profile;
      elements;
      route;
      processed = 0;
      forwarded = 0;
      replicated = 0;
      discarded = 0;
      unrouted = 0;
    }
  in
  Mmt_sim.Node.set_handler node (handle t);
  t

let stats t =
  {
    processed = t.processed;
    forwarded = t.forwarded;
    replicated = t.replicated;
    discarded = t.discarded;
    unrouted = t.unrouted;
  }

let name t = Mmt_sim.Node.name t.node ^ "/" ^ t.profile.profile_name
