open Mmt_util

type profile = { profile_name : string; pipeline_latency : Units.Time.t }

let tofino2 = { profile_name = "tofino2"; pipeline_latency = Units.Time.ns 450 }
let alveo_smartnic = { profile_name = "alveo-smartnic"; pipeline_latency = Units.Time.us 2. }
let software_switch = { profile_name = "software"; pipeline_latency = Units.Time.us 20. }

type stats = {
  processed : int;
  forwarded : int;
  replicated : int;
  discarded : int;
  unrouted : int;
}

let dummy_packet =
  Mmt_sim.Packet.create ~id:(-1) ~born:Units.Time.zero Mmt_sim.Pool.retired

type t = {
  engine : Mmt_sim.Engine.t;
  node : Mmt_sim.Node.t;
  profile : profile;
  elements : Element.t list;
  route : Mmt_sim.Packet.t -> (Mmt_sim.Packet.t -> unit) option;
  ring : Mmt_sim.Ring.t option;
  mutable on_pipeline : unit -> unit; (* preallocated; set in attach *)
  (* Ingress circular FIFO: the pipeline latency is a per-device
     constant, so packets leave the pipeline in arrival order and one
     shared closure popping this queue replaces a fresh closure per
     packet. *)
  mutable pending : Mmt_sim.Packet.t array;
  mutable pending_head : int;
  mutable pending_len : int;
  mutable processed : int;
  mutable forwarded : int;
  mutable replicated : int;
  mutable discarded : int;
  mutable unrouted : int;
}

let retire t packet =
  match t.ring with
  | Some ring -> Mmt_sim.Ring.in_packet_done ring packet
  | None -> ()

let pending_push t packet =
  let cap = Array.length t.pending in
  if t.pending_len = cap then begin
    let grown = Array.make (cap * 2) dummy_packet in
    for i = 0 to t.pending_len - 1 do
      grown.(i) <- t.pending.((t.pending_head + i) mod cap)
    done;
    t.pending <- grown;
    t.pending_head <- 0
  end;
  t.pending.((t.pending_head + t.pending_len) mod Array.length t.pending)
  <- packet;
  t.pending_len <- t.pending_len + 1

let pending_pop t =
  let packet = t.pending.(t.pending_head) in
  t.pending.(t.pending_head) <- dummy_packet;
  t.pending_head <- (t.pending_head + 1) mod Array.length t.pending;
  t.pending_len <- t.pending_len - 1;
  packet

let emit t packet =
  match t.route packet with
  | Some sink ->
      t.forwarded <- t.forwarded + 1;
      sink packet
  | None ->
      t.unrouted <- t.unrouted + 1;
      (* No sink: the switch was the packet's last holder. *)
      retire t packet

let pipeline t =
  let packet = pending_pop t in
  let now = Mmt_sim.Engine.now t.engine in
  match Element.chain t.elements ~now packet with
  | Element.Forward packet -> emit t packet
  | Element.Replicate packets ->
      t.replicated <- t.replicated + max 0 (List.length packets - 1);
      List.iter (emit t) packets
  | Element.Discard _reason ->
      t.discarded <- t.discarded + 1;
      retire t packet

let handle t packet =
  t.processed <- t.processed + 1;
  pending_push t packet;
  ignore
    (Mmt_sim.Engine.schedule_after t.engine ~delay:t.profile.pipeline_latency
       t.on_pipeline)

let attach ~engine ~node ~profile ?(allow_payload = false) ?ring ~elements
    ~route () =
  List.iter
    (fun (element : Element.t) ->
      match Op.realizable ~allow_payload element.Element.program with
      | Ok () -> ()
      | Error reason -> invalid_arg ("Switch.attach: " ^ reason))
    elements;
  let t =
    {
      engine;
      node;
      profile;
      elements;
      route;
      ring;
      on_pipeline = ignore;
      pending = Array.make 16 dummy_packet;
      pending_head = 0;
      pending_len = 0;
      processed = 0;
      forwarded = 0;
      replicated = 0;
      discarded = 0;
      unrouted = 0;
    }
  in
  t.on_pipeline <- (fun () -> pipeline t);
  Mmt_sim.Node.set_handler node (handle t);
  t

let stats t =
  {
    processed = t.processed;
    forwarded = t.forwarded;
    replicated = t.replicated;
    discarded = t.discarded;
    unrouted = t.unrouted;
  }

let name t = Mmt_sim.Node.name t.node ^ "/" ^ t.profile.profile_name
