open Mmt_util

type stats = {
  rewritten : int;
  sequenced : int;
  passed : int;
  parse_errors : int;
  degraded : int;
}

type t = {
  mutable mode : Mmt.Mode.t;
  re_encap : Mmt.Encap.t option;
  pool : Mmt_sim.Pool.t option;
  on_rewrite : (seq:int option -> born:Mmt_util.Units.Time.t -> bytes -> unit) option;
  liveness : (Mmt_frame.Addr.Ip.t -> now:Mmt_util.Units.Time.t -> bool) option;
  counters : (Mmt.Experiment_id.t, int) Hashtbl.t;
  mutable rewritten : int;
  mutable sequenced : int;
  mutable passed : int;
  mutable parse_errors : int;
  mutable degraded : int;
  element : Element.t Lazy.t;
}

let program =
  {
    Op.name = "mode-rewriter";
    ops =
      [
        Op.Extract "config_id";
        Op.Extract "config_data";
        Op.Extract "experiment_id";
        Op.Compare "kind";
        Op.Register_read "seq[experiment]";
        Op.Register_write "seq[experiment]";
        Op.Set_field "sequence";
        Op.Set_field "retransmit_from";
        Op.Set_field "deadline";
        Op.Set_field "notify";
        Op.Set_field "age.init";
        Op.Set_field "age.last_touch";
        Op.Set_field "pace";
        Op.Set_field "backpressure_to";
        Op.Set_field "int.init";
        Op.Set_field "config_data";
        Op.Emit_digest "rewritten-frame";
      ];
  }

let take_sequence t experiment =
  let current = Option.value ~default:0 (Hashtbl.find_opt t.counters experiment) in
  Hashtbl.replace t.counters experiment (current + 1);
  current

let next_sequence t ~experiment =
  Option.value ~default:0 (Hashtbl.find_opt t.counters experiment)

let apply_mode t ~mode ~now (header : Mmt.Header.t) =
  let target = mode.Mmt.Mode.features in
  let has feature = Mmt.Feature.Set.mem feature target in
  (* Activate / configure target features. *)
  let header, assigned_seq =
    if has Mmt.Feature.Sequenced then
      match header.Mmt.Header.sequence with
      | Some _ -> (header, None)
      | None ->
          let seq = take_sequence t header.Mmt.Header.experiment in
          (Mmt.Header.with_sequence header seq, Some seq)
    else (Mmt.Header.strip header Mmt.Feature.Sequenced, None)
  in
  let header =
    if has Mmt.Feature.Reliable then
      match mode.Mmt.Mode.retransmit_from with
      | Some buffer -> Mmt.Header.with_retransmit_from header buffer
      | None -> header
    else Mmt.Header.strip header Mmt.Feature.Reliable
  in
  let header =
    if has Mmt.Feature.Timely then
      match (header.Mmt.Header.timely, mode.Mmt.Mode.deadline_budget, mode.Mmt.Mode.notify) with
      | Some _, _, _ -> header (* keep the end-to-end deadline *)
      | None, Some budget, Some notify ->
          Mmt.Header.with_timely header
            { Mmt.Header.deadline = Units.Time.add now budget; notify }
      | None, _, _ -> header
    else Mmt.Header.strip header Mmt.Feature.Timely
  in
  let header =
    if has Mmt.Feature.Age_tracked then
      match (header.Mmt.Header.age, mode.Mmt.Mode.age_budget_us) with
      | Some _, _ -> header
      | None, Some budget_us ->
          Mmt.Header.with_age header
            {
              Mmt.Header.age_us = 0;
              budget_us;
              aged = false;
              hop_count = 0;
              last_touch_ns = now;
            }
      | None, None -> header
    else Mmt.Header.strip header Mmt.Feature.Age_tracked
  in
  let header =
    if has Mmt.Feature.Paced then
      match mode.Mmt.Mode.pace_mbps with
      | Some pace -> Mmt.Header.with_pace header pace
      | None -> header
    else Mmt.Header.strip header Mmt.Feature.Paced
  in
  let header =
    if has Mmt.Feature.Backpressured then
      match (header.Mmt.Header.backpressure_to, mode.Mmt.Mode.backpressure_to) with
      | Some _, _ -> header
      | None, Some control -> Mmt.Header.with_backpressure_to header control
      | None, None -> header
    else Mmt.Header.strip header Mmt.Feature.Backpressured
  in
  let header =
    if has Mmt.Feature.Int_telemetry then
      match header.Mmt.Header.int_stack with
      | Some _ -> header (* keep stamps accumulated upstream *)
      | None -> Mmt.Header.with_int_stack header Mmt.Header.empty_int_stack
    else Mmt.Header.strip header Mmt.Feature.Int_telemetry
  in
  let header =
    if has Mmt.Feature.Checksummed then Mmt.Header.with_checksummed header
    else Mmt.Header.strip header Mmt.Feature.Checksummed
  in
  (header, assigned_seq)

(* Graceful degradation: when the mode's named retransmission buffer is
   not live in the resource map, pointing NAK traffic at it would
   strand every gap behind a corpse.  Until the control plane replans,
   rewrite into the mode with Reliable AND Sequenced stripped — the
   legality doctrine of {!Mmt.Mode.transition_legal}: a stream leaving
   the recoverable region leaves it whole.  Frames pass unsequenced and
   the application sees best-effort delivery instead of a hang. *)
let degraded_target mode =
  {
    mode with
    Mmt.Mode.name = mode.Mmt.Mode.name ^ "/degraded";
    features =
      Mmt.Feature.Set.remove Mmt.Feature.Reliable
        (Mmt.Feature.Set.remove Mmt.Feature.Sequenced
           mode.Mmt.Mode.features);
    retransmit_from = None;
  }

let effective_target t ~now =
  match (t.mode.Mmt.Mode.retransmit_from, t.liveness) with
  | Some buffer, Some live when not (live buffer ~now) -> degraded_target t.mode
  | _ -> t.mode

(* Slow path: the header's shape (feature set) differs from the mode's
   target, so extensions must be added or stripped — decode the full
   record, transform it, and re-encode. *)
let rewrite_slow t ~mode ~now packet ~frame ~mmt_offset header =
  let old_header_size = Mmt.Header.size header in
  let new_header, assigned_seq = apply_mode t ~mode ~now header in
  let payload_offset = mmt_offset + old_header_size in
  let payload_len = Bytes.length frame - payload_offset in
  let new_mmt_header = Mmt.Header.encode new_header in
  let new_header_size = Bytes.length new_mmt_header in
  let mmt_length = new_header_size + payload_len in
  let out_off =
    match t.re_encap with
    | Some encap -> Mmt.Encap.overhead encap
    | None -> mmt_offset
  in
  let new_frame =
    match t.pool with
    | Some pool -> Mmt_sim.Pool.acquire pool (out_off + mmt_length)
    | None -> Bytes.create (out_off + mmt_length)
  in
  (match t.re_encap with
  | Some encap -> Mmt.Encap.wrap_into encap ~mmt_length new_frame
  | None ->
      Mmt.Encap.rewrap_into ~old_frame:frame ~mmt_offset ~mmt_length new_frame);
  Bytes.blit new_mmt_header 0 new_frame out_off new_header_size;
  Bytes.blit frame payload_offset new_frame (out_off + new_header_size)
    payload_len;
  Mmt_sim.Packet.set_frame packet new_frame;
  (* The packet now owns [new_frame]; the pre-rewrite frame has no
     other holder — recycle it instead of leaking it to the GC. *)
  (match t.pool with
  | Some pool when frame != new_frame -> Mmt_sim.Pool.release pool frame
  | _ -> ());
  t.rewritten <- t.rewritten + 1;
  (match assigned_seq with
  | Some _ -> t.sequenced <- t.sequenced + 1
  | None -> ());
  Option.iter
    (fun callback ->
      callback ~seq:new_header.Mmt.Header.sequence
        ~born:packet.Mmt_sim.Packet.born (Bytes.copy new_frame))
    t.on_rewrite;
  Element.Forward packet

(* Fast path: the header already has exactly the mode's feature set, so
   no extension appears or disappears and the header size is unchanged.
   [apply_mode] then reduces to two conditional same-width overwrites
   (the mode's retransmit buffer and pace), which a match-action stage
   performs in place. *)
let rewrite_fast t ~mode packet ~frame ~mmt_offset view =
  Option.iter
    (Mmt.Header.View.set_retransmit_from view)
    mode.Mmt.Mode.retransmit_from;
  Option.iter (Mmt.Header.View.set_pace_mbps view) mode.Mmt.Mode.pace_mbps;
  (match t.re_encap with
  | Some encap ->
      let mmt_length = Bytes.length frame - mmt_offset in
      let out_off = Mmt.Encap.overhead encap in
      let out =
        match t.pool with
        | Some pool -> Mmt_sim.Pool.acquire pool (out_off + mmt_length)
        | None -> Bytes.create (out_off + mmt_length)
      in
      Mmt.Encap.wrap_into encap ~mmt_length out;
      Bytes.blit frame mmt_offset out out_off mmt_length;
      Mmt_sim.Packet.set_frame packet out
  | None -> ());
  t.rewritten <- t.rewritten + 1;
  Option.iter
    (fun callback ->
      let seq =
        if Mmt.Header.View.has view Mmt.Feature.Sequenced then
          Some (Mmt.Header.View.sequence view)
        else None
      in
      callback ~seq ~born:packet.Mmt_sim.Packet.born
        (Bytes.copy (Mmt_sim.Packet.frame packet)))
    t.on_rewrite;
  (* Recycle the replaced frame only after the callback: [view] still
     reads from it for the sequence number. *)
  (match (t.re_encap, t.pool) with
  | Some _, Some pool when Mmt_sim.Packet.frame packet != frame ->
      Mmt_sim.Pool.release pool frame
  | _ -> ());
  Element.Forward packet

let process t ~now packet =
  let frame = Mmt_sim.Packet.frame packet in
  match Mmt.Encap.locate frame with
  | Error reason ->
      t.parse_errors <- t.parse_errors + 1;
      Element.Discard ("mode-rewriter: " ^ reason)
  | Ok (_encap, mmt_offset) -> (
      match Mmt.Header.View.of_frame ~off:mmt_offset frame with
      | Error reason ->
          t.parse_errors <- t.parse_errors + 1;
          Element.Discard ("mode-rewriter: " ^ reason)
      | Ok view ->
          if Mmt.Header.View.kind view <> Mmt.Feature.Kind.Data then begin
            t.passed <- t.passed + 1;
            Element.Forward packet
          end
          else begin
            let mode = effective_target t ~now in
            if mode != t.mode then t.degraded <- t.degraded + 1;
            if
              Mmt.Feature.Set.equal
                (Mmt.Header.View.features view)
                mode.Mmt.Mode.features
            then rewrite_fast t ~mode packet ~frame ~mmt_offset view
            else
              match Mmt.Header.decode_bytes ~off:mmt_offset frame with
              | Error reason ->
                  t.parse_errors <- t.parse_errors + 1;
                  Element.Discard ("mode-rewriter: " ^ reason)
              | Ok header ->
                  rewrite_slow t ~mode ~now packet ~frame ~mmt_offset header
          end)

let create ~mode ?re_encap ?pool ?on_rewrite ?liveness () =
  (match Mmt.Mode.check mode with
  | Ok () -> ()
  | Error reason -> invalid_arg ("Mode_rewriter.create: " ^ reason));
  let rec t =
    {
      mode;
      re_encap;
      pool;
      on_rewrite;
      liveness;
      counters = Hashtbl.create 8;
      rewritten = 0;
      sequenced = 0;
      passed = 0;
      parse_errors = 0;
      degraded = 0;
      element =
        lazy
          {
            Element.name = "mode-rewriter(" ^ mode.Mmt.Mode.name ^ ")";
            program;
            process = (fun ~now packet -> process t ~now packet);
          };
    }
  in
  t

let element t = Lazy.force t.element

let set_mode t mode =
  match Mmt.Mode.check mode with
  | Error reason -> Error ("Mode_rewriter.set_mode: " ^ reason)
  | Ok () -> (
      match Mmt.Mode.transition_legal ~from_mode:t.mode ~to_mode:mode with
      | Error reason -> Error ("Mode_rewriter.set_mode: " ^ reason)
      | Ok () ->
          t.mode <- mode;
          Ok ())

let mode t = t.mode

let stats t =
  {
    rewritten = t.rewritten;
    sequenced = t.sequenced;
    passed = t.passed;
    parse_errors = t.parse_errors;
    degraded = t.degraded;
  }
