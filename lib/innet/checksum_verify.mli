(** In-network header-checksum verification.

    Placed ahead of stateful elements (retransmission-buffer snoops,
    rewriters), it discards data frames whose fixed MMT header no
    longer sums clean under the Checksummed feature's RFC 1071
    ones'-complement checksum — so corrupted headers are dropped at
    the first programmable hop instead of poisoning buffer or receiver
    state.  Frames without the Checksummed bit, and non-MMT frames,
    pass untouched.

    The declared program is integer-only (extract, fold, compare) and
    passes {!Op.realizable} — § 5.3's "conservative, header-based
    processing": the checksum lives at a constant offset over
    fixed-width fields, exactly what a P4 [verify_checksum] stage
    computes. *)

type stats = {
  checked : int;  (** frames carrying the Checksummed feature *)
  failed : int;  (** discarded: mismatch or unparseable header *)
  passed : int;  (** non-MMT or non-checksummed frames forwarded *)
}

type t

val create : ?require:bool -> unit -> t
(** With [require] (default false), data frames {e without} the
    Checksummed bit are also discarded: on a path whose planned mode
    seals every data frame, a missing checksum means the feature bit
    itself was flipped, and nothing else in the header can be
    trusted. *)

val element : t -> Element.t
val stats : t -> stats
