open Mmt_util
open Mmt_frame

type requirement = {
  name : string;
  reliability : bool;
  deadline_budget : (Units.Time.t * Addr.Ip.t) option;
  age_budget_us : int option;
  pace_mbps : int option;
  backpressure_to : Addr.Ip.t option;
  checksummed : bool;
}

let requirement ~name ?(reliability = false) ?deadline_budget ?age_budget_us
    ?pace_mbps ?backpressure_to ?(checksummed = false) () =
  {
    name;
    reliability;
    deadline_budget;
    age_budget_us;
    pace_mbps;
    backpressure_to;
    checksummed;
  }

let plan requirement ~map ~now =
  let buffer =
    if requirement.reliability then
      match Resource_map.best_buffer map ~now with
      | Some buffer -> Ok (Some buffer)
      | None ->
          Error
            (requirement.name
            ^ ": reliability requested but no live retransmission buffer is \
               known")
    else Ok None
  in
  Result.bind buffer (fun buffer ->
      let mode =
        Mmt.Mode.make ~name:requirement.name ?reliable:buffer
          ?deadline_budget:requirement.deadline_budget
          ?age_budget_us:requirement.age_budget_us
          ?pace_mbps:requirement.pace_mbps
          ?backpressure_to:requirement.backpressure_to
          ~checksummed:requirement.checksummed ()
      in
      Result.map (fun () -> mode) (Mmt.Mode.check mode))

let modes_equal (a : Mmt.Mode.t) (b : Mmt.Mode.t) =
  Mmt.Feature.Set.equal a.Mmt.Mode.features b.Mmt.Mode.features
  && Option.equal Addr.Ip.equal a.Mmt.Mode.retransmit_from b.Mmt.Mode.retransmit_from
  && Option.equal Units.Time.equal a.Mmt.Mode.deadline_budget b.Mmt.Mode.deadline_budget
  && Option.equal Addr.Ip.equal a.Mmt.Mode.notify b.Mmt.Mode.notify
  && a.Mmt.Mode.age_budget_us = b.Mmt.Mode.age_budget_us
  && a.Mmt.Mode.pace_mbps = b.Mmt.Mode.pace_mbps
  && Option.equal Addr.Ip.equal a.Mmt.Mode.backpressure_to b.Mmt.Mode.backpressure_to

let replan_rewriter requirement ~rewriter ~map ~now =
  Result.bind (plan requirement ~map ~now) (fun mode ->
      if modes_equal mode (Mode_rewriter.mode rewriter) then Ok mode
      else
        Result.map (fun () -> mode) (Mode_rewriter.set_mode rewriter mode))
