open Mmt_frame

type stats = { duplicated : int; copies_sent : int; passed : int }

type t = {
  env : Mmt_runtime.Env.t;
  pool : Mmt_sim.Pool.t option;
  mutable consumers : Addr.Ip.t list;
  mutable duplicated : int;
  mutable copies_sent : int;
  mutable passed : int;
  element : Element.t Lazy.t;
}

let program =
  {
    Op.name = "duplicator";
    ops =
      [
        Op.Extract "config_data";
        Op.Compare "kind";
        Op.Clone "multicast-group";
        Op.Set_flag "features.duplicated";
      ];
  }

(* Frame pool for scratch and (ring-less) consumer copies: an explicit
   [pool] wins, else the environment ring's pool. *)
let scratch_pool t =
  match t.pool with
  | Some _ as p -> p
  | None -> Mmt_runtime.Env.pool t.env

let copy_frame t frame =
  match scratch_pool t with
  | None -> Bytes.copy frame
  | Some pool ->
      let out = Mmt_sim.Pool.acquire pool (Bytes.length frame) in
      Bytes.blit frame 0 out 0 (Bytes.length frame);
      out

(* Returns the frame to copy consumer frames from, plus whether it is a
   scratch buffer this element owns (and may recycle afterwards) or the
   packet's own live frame (which it must not). *)
let mark_duplicated t frame =
  match Mmt.Encap.locate frame with
  | Error _ -> (frame, false)
  | Ok (_encap, mmt_offset) -> (
      match Mmt.Header.View.of_frame ~off:mmt_offset frame with
      | Error _ -> (frame, false)
      | Ok view ->
          if Mmt.Header.View.has view Mmt.Feature.Duplicated then (frame, false)
          else begin
            (* The Duplicated bit lives in the configuration data; the
               header size is unchanged, so flip it in place on a copy. *)
            let out = copy_frame t frame in
            (match Mmt.Header.View.of_frame ~off:mmt_offset out with
            | Ok view -> Mmt.Header.View.set_duplicated view
            | Error _ -> ());
            (out, true)
          end)

let process t ~now:_ packet =
  let frame = Mmt_sim.Packet.frame packet in
  let is_data =
    match Mmt.Encap.locate frame with
    | Error _ -> false
    | Ok (_encap, mmt_offset) -> (
        match Mmt.Header.View.of_frame ~off:mmt_offset frame with
        | Error _ -> false
        | Ok view -> Mmt.Header.View.kind view = Mmt.Feature.Kind.Data)
  in
  if (not is_data) || t.consumers = [] then begin
    t.passed <- t.passed + 1;
    Element.Forward packet
  end
  else begin
    t.duplicated <- t.duplicated + 1;
    let marked, scratch = mark_duplicated t frame in
    List.iter
      (fun consumer ->
        let copy =
          match t.env.Mmt_runtime.Env.ring with
          | Some ring ->
              (* Slot-allocated copy: record and frame both come from
                 the ring, so the fan-out is allocation-free. *)
              let len = Bytes.length marked in
              let p =
                Mmt_sim.Ring.in_packet ring
                  ~padding:packet.Mmt_sim.Packet.padding
                  ~id:(t.env.Mmt_runtime.Env.fresh_id ())
                  ~born:packet.Mmt_sim.Packet.born len
              in
              Bytes.blit marked 0 p.Mmt_sim.Packet.frame 0 len;
              p.Mmt_sim.Packet.corrupted <- packet.Mmt_sim.Packet.corrupted;
              p.Mmt_sim.Packet.hops <- packet.Mmt_sim.Packet.hops;
              p
          | None ->
              Mmt_sim.Packet.clone packet
                ~id:(t.env.Mmt_runtime.Env.fresh_id ())
                ~frame:(copy_frame t marked)
        in
        t.copies_sent <- t.copies_sent + 1;
        t.env.Mmt_runtime.Env.send consumer copy)
      t.consumers;
    if scratch then
      Option.iter (fun pool -> Mmt_sim.Pool.release pool marked) (scratch_pool t);
    Element.Forward packet
  end

let create ~env ?pool ~consumers () =
  let rec t =
    {
      env;
      pool;
      consumers;
      duplicated = 0;
      copies_sent = 0;
      passed = 0;
      element =
        lazy
          {
            Element.name = "duplicator";
            program;
            process = (fun ~now packet -> process t ~now packet);
          };
    }
  in
  t

let element t = Lazy.force t.element
let stats t = { duplicated = t.duplicated; copies_sent = t.copies_sent; passed = t.passed }
let subscribe t consumer = t.consumers <- consumer :: t.consumers
let consumers t = t.consumers
