open Mmt_frame

type stats = { duplicated : int; copies_sent : int; passed : int }

type t = {
  env : Mmt_runtime.Env.t;
  mutable consumers : Addr.Ip.t list;
  mutable duplicated : int;
  mutable copies_sent : int;
  mutable passed : int;
  element : Element.t Lazy.t;
}

let program =
  {
    Op.name = "duplicator";
    ops =
      [
        Op.Extract "config_data";
        Op.Compare "kind";
        Op.Clone "multicast-group";
        Op.Set_flag "features.duplicated";
      ];
  }

let mark_duplicated frame =
  match Mmt.Encap.locate frame with
  | Error _ -> frame
  | Ok (_encap, mmt_offset) -> (
      match Mmt.Header.View.of_frame ~off:mmt_offset frame with
      | Error _ -> frame
      | Ok view ->
          if Mmt.Header.View.has view Mmt.Feature.Duplicated then frame
          else begin
            (* The Duplicated bit lives in the configuration data; the
               header size is unchanged, so flip it in place on a copy. *)
            let out = Bytes.copy frame in
            (match Mmt.Header.View.of_frame ~off:mmt_offset out with
            | Ok view -> Mmt.Header.View.set_duplicated view
            | Error _ -> ());
            out
          end)

let process t ~now:_ packet =
  let frame = Mmt_sim.Packet.frame packet in
  let is_data =
    match Mmt.Encap.locate frame with
    | Error _ -> false
    | Ok (_encap, mmt_offset) -> (
        match Mmt.Header.View.of_frame ~off:mmt_offset frame with
        | Error _ -> false
        | Ok view -> Mmt.Header.View.kind view = Mmt.Feature.Kind.Data)
  in
  if (not is_data) || t.consumers = [] then begin
    t.passed <- t.passed + 1;
    Element.Forward packet
  end
  else begin
    t.duplicated <- t.duplicated + 1;
    let marked = mark_duplicated frame in
    List.iter
      (fun consumer ->
        let copy = Mmt_sim.Packet.copy packet ~id:(t.env.Mmt_runtime.Env.fresh_id ()) in
        Mmt_sim.Packet.set_frame copy (Bytes.copy marked);
        t.copies_sent <- t.copies_sent + 1;
        t.env.Mmt_runtime.Env.send consumer copy)
      t.consumers;
    Element.Forward packet
  end

let create ~env ~consumers () =
  let rec t =
    {
      env;
      consumers;
      duplicated = 0;
      copies_sent = 0;
      passed = 0;
      element =
        lazy
          {
            Element.name = "duplicator";
            program;
            process = (fun ~now packet -> process t ~now packet);
          };
    }
  in
  t

let element t = Lazy.force t.element
let stats t = { duplicated = t.duplicated; copies_sent = t.copies_sent; passed = t.passed }
let subscribe t consumer = t.consumers <- consumer :: t.consumers
let consumers t = t.consumers
