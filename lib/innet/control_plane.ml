open Mmt_util
open Mmt_frame

type stats = {
  adverts_sent : int;
  adverts_received : int;
  gossip_forwarded : int;
}

type t = {
  env : Mmt_runtime.Env.t;
  period : Units.Time.t;
  peers : Addr.Ip.t list;
  gossip_hops : int;
  map : Resource_map.t;
  mutable providers : (unit -> Mmt.Control.Buffer_advert.t option) list;
  mutable running : bool;
  mutable blackholed : bool;
  mutable adverts_sent : int;
  mutable adverts_received : int;
  mutable gossip_forwarded : int;
  (* hop budget left per learned buffer, for bounded re-gossip *)
  hops_left : (Addr.Ip.t, int) Hashtbl.t;
}

let create ~env ~period ~peers ?map_ttl ?(gossip_hops = 1) () =
  let ttl = Option.value ~default:(Units.Time.scale period 4.) map_ttl in
  {
    env;
    period;
    peers;
    gossip_hops;
    map = Resource_map.create ~ttl ();
    providers = [];
    running = false;
    blackholed = false;
    adverts_sent = 0;
    adverts_received = 0;
    gossip_forwarded = 0;
    hops_left = Hashtbl.create 8;
  }

let add_local t provider = t.providers <- provider :: t.providers

let send_advert t ~dst advert =
  let header =
    Mmt.Header.with_kind
      (Mmt.Header.mode0 ~experiment:(Mmt.Experiment_id.make ~experiment:0 ~slice:0))
      Mmt.Feature.Kind.Buffer_advert
  in
  let frame =
    Bytes.cat (Mmt.Header.encode header) (Mmt.Control.Buffer_advert.encode advert)
  in
  let wrapped =
    Mmt.Encap.wrap
      (Mmt.Encap.Over_ipv4
         { src = t.env.Mmt_runtime.Env.local_ip; dst; dscp = 0; ttl = 64 })
      frame
  in
  t.env.Mmt_runtime.Env.send dst (Mmt_runtime.Env.packet t.env wrapped)

let broadcast t advert =
  List.iter
    (fun peer ->
      t.adverts_sent <- t.adverts_sent + 1;
      send_advert t ~dst:peer advert)
    t.peers

let rec round t =
  if t.running then begin
    let now = Mmt_runtime.Env.now t.env in
    (* Advertise local resources; refresh them in our own map too.
       A blackholed control plane sends and learns nothing — but time
       still passes, so soft state genuinely expires below. *)
    if not t.blackholed then
      List.iter
        (fun provider ->
          match provider () with
          | Some advert ->
              Resource_map.learn t.map ~now advert;
              broadcast t advert
          | None -> ())
        t.providers;
    ignore (Resource_map.expire t.map ~now);
    ignore (Mmt_runtime.Env.after t.env t.period (fun () -> round t))
  end

let start t =
  if not t.running then begin
    t.running <- true;
    round t
  end

let stop t = t.running <- false
let set_blackholed t blackholed = t.blackholed <- blackholed
let blackholed t = t.blackholed

let on_packet t packet =
  if (not packet.Mmt_sim.Packet.corrupted) && not t.blackholed then
    match Mmt.Encap.strip (Mmt_sim.Packet.frame packet) with
    | Error _ -> ()
    | Ok (_encap, mmt_frame) -> (
        match Mmt.Header.decode_bytes mmt_frame with
        | Ok header when header.Mmt.Header.kind = Mmt.Feature.Kind.Buffer_advert -> (
            let payload =
              Bytes.sub mmt_frame (Mmt.Header.size header)
                (Bytes.length mmt_frame - Mmt.Header.size header)
            in
            match Mmt.Control.Buffer_advert.decode payload with
            | Error _ -> ()
            | Ok advert ->
                t.adverts_received <- t.adverts_received + 1;
                let now = Mmt_runtime.Env.now t.env in
                let key = advert.Mmt.Control.Buffer_advert.buffer in
                let fresh = Resource_map.lookup t.map key = None in
                Resource_map.learn t.map ~now advert;
                (* Bounded re-gossip of newly learned resources. *)
                if fresh && t.gossip_hops > 0 then begin
                  let budget =
                    Option.value ~default:t.gossip_hops
                      (Hashtbl.find_opt t.hops_left key)
                  in
                  if budget > 0 then begin
                    Hashtbl.replace t.hops_left key (budget - 1);
                    t.gossip_forwarded <- t.gossip_forwarded + 1;
                    broadcast t advert
                  end
                end)
        | Ok _ | Error _ -> ())

let map t = t.map

let best_buffer t =
  Resource_map.best_buffer t.map ~now:(Mmt_runtime.Env.now t.env)

let stats t =
  {
    adverts_sent = t.adverts_sent;
    adverts_received = t.adverts_received;
    gossip_forwarded = t.gossip_forwarded;
  }
