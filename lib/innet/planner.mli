(** Mode planning from discovered resources (§ 6, challenge 1).

    "It is an open problem how to discover programmable resources in
    the network, distribute work to them, and coordinate their
    activity."  The planner is the coordination step: given the
    feature requirements of a segment and the current {!Resource_map},
    it selects concrete resources (today: the nearest live
    retransmission buffer) and produces a checked {!Mmt.Mode} — or an
    explanation of what is missing.  Re-planning after a resource
    failure and applying the result through
    {!Mode_rewriter.set_mode} is the § 5.4 "simple 3-mode setup that
    pre-supposes knowledge of in-network resources" generalized to
    soft-state discovery. *)

open Mmt_util
open Mmt_frame

type requirement = {
  name : string;
  reliability : bool;  (** requires a discovered retransmission buffer *)
  deadline_budget : (Units.Time.t * Addr.Ip.t) option;
  age_budget_us : int option;
  pace_mbps : int option;
  backpressure_to : Addr.Ip.t option;
  checksummed : bool;
      (** seal a header checksum so corruption is detectable on-path *)
}

val requirement :
  name:string ->
  ?reliability:bool ->
  ?deadline_budget:Units.Time.t * Addr.Ip.t ->
  ?age_budget_us:int ->
  ?pace_mbps:int ->
  ?backpressure_to:Addr.Ip.t ->
  ?checksummed:bool ->
  unit ->
  requirement

val plan :
  requirement ->
  map:Resource_map.t ->
  now:Units.Time.t ->
  (Mmt.Mode.t, string) result
(** Select resources and build the mode; [Error] names the missing
    resource ("reliability requested but no live buffer"). *)

val replan_rewriter :
  requirement ->
  rewriter:Mode_rewriter.t ->
  map:Resource_map.t ->
  now:Units.Time.t ->
  (Mmt.Mode.t, string) result
(** [plan] and, if the chosen mode differs from the rewriter's current
    one, apply it via {!Mode_rewriter.set_mode}.  Returns the mode now
    in force. *)
