(** Map of in-network programmable resources (§ 6, challenge 1).

    "We initially envisage having a map of in-network programmable
    resources that DAQ workloads can use.  This map is shared between
    network operators — perhaps by piggy-backing on BGP messages."

    This module implements that map for retransmission buffers: it
    learns from {!Mmt.Control.Buffer_advert} messages, answers
    nearest-buffer queries by advertised RTT, expires stale entries,
    and merges with a peer operator's map (the gossip/piggy-back
    step). *)

open Mmt_util
open Mmt_frame

type entry = {
  advert : Mmt.Control.Buffer_advert.t;
  learned_at : Units.Time.t;
}

type t

val create : ?ttl:Units.Time.t -> unit -> t
(** [ttl] defaults to 60 simulated seconds. *)

val learn : t -> now:Units.Time.t -> Mmt.Control.Buffer_advert.t -> unit
(** Insert or refresh; the freshest advertisement for a buffer wins. *)

val best_buffer : t -> now:Units.Time.t -> Addr.Ip.t option
(** Live buffer with the smallest advertised RTT. *)

val lookup : t -> Addr.Ip.t -> entry option
(** Raw entry access, ignoring liveness. *)

val is_live : t -> now:Units.Time.t -> Addr.Ip.t -> bool
(** Whether a buffer is present and unexpired — the liveness oracle a
    rewriter consults before pointing NAK traffic at it. *)

val entries : t -> now:Units.Time.t -> entry list
(** Live entries, nearest first. *)

val merge : t -> from:t -> now:Units.Time.t -> int
(** Gossip: absorb the peer's live entries; returns how many were new
    or fresher. *)

val expire : t -> now:Units.Time.t -> int
(** Drop stale entries; returns how many were removed. *)

val size : t -> int
