(** Programmable-device hosting shell.

    Binds an element chain to a simulator node with a device profile
    (pipeline latency), mirroring the pilot hardware: a Tofino2 switch
    and Alveo FPGA smartNICs (§ 5.4).  Every element's declared program
    must pass {!Op.realizable} — attaching an unrealizable element is a
    programming error, keeping the repository honest about what the
    paper claims P4 hardware can do.

    Routing is a function from the (possibly rewritten) packet to a
    sink; [None] drops with accounting. *)

open Mmt_util

type profile = { profile_name : string; pipeline_latency : Units.Time.t }

val tofino2 : profile
(** ~450 ns pipeline latency. *)

val alveo_smartnic : profile
(** ~2 µs store-and-process FPGA NIC. *)

val software_switch : profile
(** ~20 µs — the FABRIC virtual-hardware pilot variant. *)

type stats = {
  processed : int;
  forwarded : int;
  replicated : int;  (** extra copies emitted beyond the originals *)
  discarded : int;  (** by an element *)
  unrouted : int;  (** no sink for the destination *)
}

type t

val attach :
  engine:Mmt_sim.Engine.t ->
  node:Mmt_sim.Node.t ->
  profile:profile ->
  ?allow_payload:bool ->
  ?ring:Mmt_sim.Ring.t ->
  elements:Element.t list ->
  route:(Mmt_sim.Packet.t -> (Mmt_sim.Packet.t -> unit) option) ->
  unit ->
  t
(** Installs the node's handler.  [allow_payload] marks a DPDK/FPGA
    class device that may host payload-processing elements (§ 6
    challenge 2); P4 switches (the default) may not.  With [ring],
    packets the switch destroys (element discards, unroutable
    destinations) retire into it.
    @raise Invalid_argument if any element fails {!Op.realizable} for
    the device class. *)

val stats : t -> stats
val name : t -> string
