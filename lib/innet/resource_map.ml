open Mmt_util
open Mmt_frame

type entry = {
  advert : Mmt.Control.Buffer_advert.t;
  learned_at : Units.Time.t;
}

type t = {
  ttl : Units.Time.t;
  table : (Addr.Ip.t, entry) Hashtbl.t;
}

let create ?(ttl = Units.Time.seconds 60.) () = { ttl; table = Hashtbl.create 16 }

let live t ~now entry =
  Units.Time.(Units.Time.diff now entry.learned_at <= t.ttl)

let learn t ~now advert =
  let key = advert.Mmt.Control.Buffer_advert.buffer in
  match Hashtbl.find_opt t.table key with
  | Some existing when Units.Time.(existing.learned_at > now) -> ()
  | _ -> Hashtbl.replace t.table key { advert; learned_at = now }

let entries t ~now =
  Hashtbl.fold
    (fun _key entry acc -> if live t ~now entry then entry :: acc else acc)
    t.table []
  |> List.sort (fun a b ->
         Units.Time.compare a.advert.Mmt.Control.Buffer_advert.rtt_hint
           b.advert.Mmt.Control.Buffer_advert.rtt_hint)

let best_buffer t ~now =
  match entries t ~now with
  | [] -> None
  | entry :: _ -> Some entry.advert.Mmt.Control.Buffer_advert.buffer

let lookup t key = Hashtbl.find_opt t.table key

let is_live t ~now key =
  match Hashtbl.find_opt t.table key with
  | None -> false
  | Some entry -> live t ~now entry

let merge t ~from ~now =
  let absorbed = ref 0 in
  Hashtbl.iter
    (fun key entry ->
      if live from ~now entry then
        match Hashtbl.find_opt t.table key with
        | Some existing when Units.Time.(existing.learned_at >= entry.learned_at) -> ()
        | _ ->
            Hashtbl.replace t.table key entry;
            incr absorbed)
    from.table;
  !absorbed

let expire t ~now =
  let stale =
    Hashtbl.fold
      (fun key entry acc -> if live t ~now entry then acc else key :: acc)
      t.table []
  in
  List.iter (Hashtbl.remove t.table) stale;
  List.length stale

let size t = Hashtbl.length t.table
