(** In-network stream duplication (§ 5.1, Fig. 3 point 5).

    "Streams can be duplicated in the network to reach several
    downstream researchers directly, ensuring that they get rapid
    access to fresh data" — e.g. Vera Rubin's alert stream fanning out
    to telescopes and astronomers.  Copies get the [Duplicated] feature
    bit and are sent toward each subscribed consumer through the
    environment; the original continues unchanged. *)

open Mmt_frame

type stats = {
  duplicated : int;  (** originals that were fanned out *)
  copies_sent : int;
  passed : int;
}

type t

val create :
  env:Mmt_runtime.Env.t ->
  ?pool:Mmt_sim.Pool.t ->
  consumers:Addr.Ip.t list ->
  unit ->
  t
(** When the environment carries a ring, consumer copies are
    slot-allocated from it (records and frames both recycled); with
    [pool] — or falling back to the ring's pool — the internal marked
    scratch frame is recycled after the fan-out. *)

val element : t -> Element.t
val stats : t -> stats
val subscribe : t -> Addr.Ip.t -> unit
val consumers : t -> Addr.Ip.t list
