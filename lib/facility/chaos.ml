open Mmt_util

(* The facility as a chaos-campaign target.

   Scaled down from the E-F5 configurations (a few dozen flows, an
   8 ms emission window) so hundreds of trials stay cheap, and with
   random WAN loss off: in the facility the receivers run without
   delivery totals ([expected_total = None]), so a frame destroyed
   with no later sequenced arrival behind it would sit in ledger limbo
   forever.  Two measures close that hole.  First, every fault the
   universe offers ends by the horizon (0.7 of the emission window),
   well before emission stops.  Second, because a Poisson burst flow
   may emit its real last fragment early, the harness pushes one
   tail-probe frame per flow through the (hoisted) senders after the
   emission window — a guaranteed later sequenced arrival that flushes
   gap detection on every flow, whatever the workload shape did.

   Trials run on the plain sequential engine ([Shard.build ~shards:1])
   because the injector schedules against a single engine; campaign
   parallelism comes from running whole trials on sibling domains, not
   from sharding inside one trial. *)

type config = {
  scenario : Scenario.config;
  probe_margin : Units.Time.t;
  watchdog : int;
}

let default =
  {
    scenario =
      {
        Scenario.default with
        flows = 36;
        sites = 3;
        sinks = 3;
        duration = Units.Time.ms 8.;
        wan_rtt = Units.Time.ms 4.;
        wan_loss = 0.;
      };
    probe_margin = Units.Time.ms 1.;
    watchdog = 50_000_000;
  }

(* One ledger spans every flow: sequences are per-flow (each site-edge
   rewriter numbers its own stream), so the key interleaves the flow
   id above the sequence number.  The stride bounds per-flow emission;
   an 8 ms window is ~3 orders of magnitude below it. *)
let flow_key_stride = 1_000_000

let universe config =
  let s = config.scenario in
  let nsites = Array.length (Scenario.site_spans s) in
  let metro_ups =
    List.init nsites (fun i -> Printf.sprintf "site-edge%d->edge-in" i)
  in
  let metro_downs =
    List.init nsites (fun i -> Printf.sprintf "edge-in->site-edge%d" i)
  in
  let sink_links =
    List.init s.Scenario.sinks (fun m -> Printf.sprintf "edge-out->sink%d" m)
  in
  let metro_pairs =
    List.init nsites (fun i ->
        [
          Printf.sprintf "site-edge%d->edge-in" i;
          Printf.sprintf "edge-in->site-edge%d" i;
        ])
  in
  {
    Mmt_fault.Generator.horizon = Units.Time.scale s.Scenario.duration 0.7;
    (* Everything after sequencing is fair game: the data path (metro
       up, WAN, sink last hops) is buffered for retransmission at the
       site edge, and the NAK path (reverse WAN, metro down) is
       re-requested on the receivers' retry timers. *)
    flap_links =
      ("edge-in->edge-out" :: "edge-out->edge-in" :: metro_ups)
      @ metro_downs @ sink_links;
    degrade_links = ("edge-in->edge-out" :: metro_ups) @ sink_links;
    partitions =
      [ "edge-in->edge-out"; "edge-out->edge-in" ] :: metro_pairs;
    (* Facility frames cross the WAN unchecksummed, so corruption
       would be silent; element and control faults need scenario
       handlers the facility does not register.  All of that stays
       out of the universe, which also pins the profile to lossy. *)
    corrupt_links = [];
    restart_elements = [];
    degrading_flaps = [];
    degrading_degrades = [];
    degrading_elements = [];
    controls = [];
  }

type outcome = {
  emitted : int;
  delivered : int;
  faults_applied : int;
  events : int;
  invariant : Mmt_fault.Invariant.outcome;
  violations : string list;
}

let run config plan =
  let s = config.scenario in
  let ledger = Mmt_fault.Invariant.ledger () in
  let on_deliver ~flow ~seq =
    match seq with
    | Some seq ->
        Mmt_fault.Invariant.delivered ledger
          ~seq:((flow * flow_key_stride) + seq)
    | None -> ()
  in
  let topo, (built : Scenario.built), runner =
    Mmt_sim.Shard.build ~shards:1 (Scenario.build ~on_deliver s)
  in
  assert (runner = None);
  let engine = Mmt_sim.Topology.engine topo in
  let injector = Mmt_fault.Injector.of_topology topo in
  Mmt_fault.Injector.arm injector plan;
  (* Tail probes: one extra sequenced frame per flow, after emission
     ends (and after every fault window has closed). *)
  let probe_at = Units.Time.add s.Scenario.duration config.probe_margin in
  for f = 0 to s.Scenario.flows - 1 do
    let sender = Option.get (Flow_table.get built.Scenario.senders f) in
    ignore
      (Mmt_sim.Engine.schedule engine ~at:probe_at (fun () ->
           Mmt.Sender.send sender (Bytes.make 64 '\xa5')))
  done;
  let until = Units.Time.add s.Scenario.duration (Units.Time.seconds 1.) in
  let terminated =
    Mmt_sim.Engine.run_bounded engine ~until ~budget:config.watchdog
  in
  let emitted = ref 0
  and delivered = ref 0
  and abandoned = ref 0
  and resurrected = ref 0
  and pending = ref 0 in
  for f = 0 to s.Scenario.flows - 1 do
    let rw =
      Mmt_innet.Mode_rewriter.stats
        (Option.get (Flow_table.get built.Scenario.rewriters f))
    in
    let r =
      Mmt.Receiver.stats (Option.get (Flow_table.get built.Scenario.receivers f))
    in
    emitted := !emitted + rw.Mmt_innet.Mode_rewriter.sequenced;
    delivered := !delivered + r.Mmt.Receiver.delivered;
    abandoned := !abandoned + r.Mmt.Receiver.lost + r.Mmt.Receiver.unrecoverable;
    resurrected := !resurrected + r.Mmt.Receiver.resurrected;
    pending := !pending + r.Mmt.Receiver.still_missing
  done;
  let invariant =
    Mmt_fault.Invariant.outcome ~emitted:!emitted ~abandoned:!abandoned
      ~resurrected:!resurrected ~pending:!pending ~terminated ledger
  in
  {
    emitted = !emitted;
    delivered = !delivered;
    faults_applied = Mmt_fault.Injector.applied injector;
    events = Mmt_sim.Engine.processed engine;
    invariant;
    violations = Mmt_fault.Invariant.check invariant;
  }

let campaign_target ?(config = default) () =
  {
    Mmt_fault.Campaign.name = "facility";
    universe = universe config;
    execute =
      (fun _profile plan ->
        let o = run config plan in
        {
          Mmt_fault.Campaign.outcome = o.invariant;
          violations = o.violations;
          faults_applied = o.faults_applied;
          events = o.events;
        });
  }
