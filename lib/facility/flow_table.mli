(** Dense per-flow state tables.

    At facility scale every per-packet structure keyed by flow must be
    O(1): a list scan that is invisible at 4 researchers costs a
    thousand comparisons per packet at a thousand elephants (the
    super-linear blow-up E-F5 exists to guard against; the bench
    compares both shapes).  Flow ids are dense small integers by
    construction ({!Address}), so the table is a plain array behind a
    bounds-checked interface. *)

type 'a t

val init : flows:int -> (int -> 'a) -> 'a t
val get : 'a t -> int -> 'a option
(** O(1); [None] when the id is outside [0, flows). *)

val length : 'a t -> int
val iter : (int -> 'a -> unit) -> 'a t -> unit
