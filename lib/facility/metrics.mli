(** Facility-scale metrics (E-F5).

    The sweep judges a facility run on four axes: how much data the
    shared infrastructure actually moved (aggregate goodput), how
    evenly it moved it (Jain's fairness index over per-flow delivery
    ratios), whether it moved it in time (deadline hit-rate), and how
    much transport soft state that cost (retransmission-buffer and
    receiver NAK-map occupancy high-water marks, read straight from
    the transport's own gauges). *)

open Mmt_util

val jain : float array -> float
(** Jain's fairness index: [(Σx)² / (n·Σx²)].  1.0 is perfectly fair,
    [1/n] is one flow taking everything.  Conventions: an empty vector
    and an all-zero vector are both 1.0 (nothing was shared unevenly),
    so a single flow is always 1.0. *)

type flow_sample = {
  kind : string;  (** workload label, e.g. "bulk" *)
  emitted : int;  (** fragments the workload handed to the sender *)
  emitted_bytes : int;
  delivered : int;
  delivered_bytes : int;  (** wire bytes at the receiver *)
  late : int;
  lost : int;
  recovered : int;
  retx_occupancy_hw : int;  (** retx-buffer byte high-water mark *)
  retx_entries_hw : int;
  nak_state_hw : int;  (** receiver missing-map entry high-water mark *)
}

type summary = {
  flows : int;
  emitted : int;
  delivered : int;
  delivered_bytes : int;
  goodput : Units.Rate.t;  (** delivered wire bytes over the run window *)
  fairness : float;  (** Jain over per-flow delivery ratios *)
  deadline_hit_rate : float;  (** 1.0 when nothing was delivered *)
  lost : int;
  recovered : int;
  retx_occupancy_hw : int;  (** max over flows *)
  retx_entries_hw : int;
  nak_state_hw : int;
}

val summarize : window:Units.Time.t -> flow_sample array -> summary
(** Delivery ratio is [delivered/emitted] per flow — normalization
    that keeps heterogeneous offered rates (bulk vs telemetry) from
    reading as unfairness.  Flows that emitted nothing are excluded
    from the fairness vector. *)
