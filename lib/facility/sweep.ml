let log_points ?(lo = 10) ?(hi = 1000) () =
  let rec decades d acc =
    if d > hi then List.rev acc
    else
      let acc = if d >= lo then d :: acc else acc in
      let acc = if 3 * d >= lo && 3 * d <= hi then (3 * d) :: acc else acc in
      decades (10 * d) acc
  in
  decades 1 []

let effective_jobs jobs n =
  let cap = Mmt_util.Task_pool.recommended_jobs () in
  let requested = if jobs <= 0 then cap else min jobs cap in
  max 1 (min requested n)

let run ?(jobs = 1) ?(shards = 1) ?(pooling = true) ?(fusing = true) ?gc
    ~base ~points () =
  let points = Array.of_list points in
  let n = Array.length points in
  let results = Array.make n None in
  let one i =
    let flows = points.(i) in
    results.(i) <-
      Some
        ( flows,
          Scenario.run ~shards ~pooling ~fusing ?gc
            { base with Scenario.flows } )
  in
  let jobs = effective_jobs jobs n in
  if jobs = 1 then
    for i = 0 to n - 1 do
      one i
    done
  else begin
    (* Work-stealing over an atomic index; slots keep point order so
       parallel output matches sequential byte for byte. *)
    let next = Atomic.make 0 in
    let rec worker () =
      let i = Atomic.fetch_and_add next 1 in
      if i < n then begin
        one i;
        worker ()
      end
    in
    Mmt_util.Task_pool.run (Mmt_util.Task_pool.shared ()) ~extra:(jobs - 1) worker
  end;
  Array.to_list results
  |> List.map (function Some r -> r | None -> assert false)
