(** Facility addressing plan.

    A facility scenario hosts up to 2^16 flows, each owning three
    addresses derived arithmetically from its flow id, so any element
    on the path recovers the id from a destination address in O(1) —
    the property the per-flow demultiplexers ({!Flow_table}) rely on.
    The plan mirrors how a P4 switch would match on a prefix and use
    the host bits as a register index:

    - [10.16.hi.lo] — flow [hi*256+lo]'s source (detector front-end)
    - [10.32.hi.lo] — flow [hi*256+lo]'s receiver (event-builder side)
    - [10.48.hi.lo] — flow [hi*256+lo]'s retransmission buffer
    - [10.64.0.m]   — sink host [m] (the shared event-builder node) *)

open Mmt_frame

val source_ip : int -> Addr.Ip.t
val flow_ip : int -> Addr.Ip.t
(** The per-flow destination the source addresses; terminates at the
    flow's receiver on its assigned sink host. *)

val buffer_ip : int -> Addr.Ip.t
(** Where the flow's NAKs go: the per-flow retransmission buffer at
    the facility edge. *)

val sink_ip : int -> Addr.Ip.t

type role =
  | Source of int
  | Flow of int
  | Buffer of int
  | Sink of int
  | Other

val classify : Addr.Ip.t -> role
(** Invert the plan: prefix match plus host-bit extraction, no table. *)
