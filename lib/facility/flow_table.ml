type 'a t = 'a array

let init ~flows f = Array.init flows f
let get t id = if id < 0 || id >= Array.length t then None else Some t.(id)
let length = Array.length
let iter f t = Array.iteri f t
