(** The facility fan-in scenario as a chaos-campaign target.

    Wraps a scaled-down {!Scenario} (a few dozen flows, an 8 ms
    emission window, random WAN loss off) for
    {!Mmt_fault.Campaign.run}: every generated plan is armed through a
    {!Mmt_fault.Injector} against the scenario's resolved link names,
    the run is bounded by an event-budget watchdog, and the aggregated
    per-flow receiver/rewriter statistics are reconciled against one
    facility-wide {!Mmt_fault.Invariant} ledger (keyed by flow id and
    per-flow sequence number).

    Facility receivers track no delivery totals, so gap detection
    needs a sequenced arrival {e behind} every fault: the universe
    horizon closes all faults by 0.7 of the emission window, and one
    tail-probe frame per flow is pushed through the scenario's senders
    after emission ends — a guaranteed last sequenced arrival even for
    Poisson burst flows that went quiet early. *)

open Mmt_util

type config = {
  scenario : Scenario.config;
  probe_margin : Units.Time.t;
      (** probe time past the emission window's end *)
  watchdog : int;  (** event budget; exhausting it = non-termination *)
}

val default : config

val universe : config -> Mmt_fault.Generator.universe
(** The facility's resolved name universe: flaps and brown-outs on the
    post-sequencing data and NAK paths, WAN and metro partitions.  No
    corruption (the facility path is unchecksummed, so flips would be
    silent), no element or control subjects — which pins generated
    plans to the lossy profile. *)

type outcome = {
  emitted : int;  (** sequence numbers assigned, summed over flows *)
  delivered : int;
  faults_applied : int;
  events : int;
  invariant : Mmt_fault.Invariant.outcome;
  violations : string list;  (** empty iff every invariant held *)
}

val run : config -> Mmt_fault.Plan.t -> outcome
(** Execute one plan against a fresh sequential build of the scenario.
    Deterministic: equal (config, plan) pairs give equal outcomes. *)

val campaign_target : ?config:config -> unit -> Mmt_fault.Campaign.target
