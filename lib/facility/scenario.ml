open Mmt_util

type kind = Bulk | Burst | Telemetry

type config = {
  flows : int;
  sites : int;
  sinks : int;
  degree : int;
  duration : Units.Time.t;
  bulk_rate : Units.Rate.t;
  telemetry_rate : Units.Rate.t;
  wan_rate : Units.Rate.t;
  wan_rtt : Units.Time.t;
  wan_loss : float;
  sink_rate : Units.Rate.t;
  source_link_rate : Units.Rate.t;
  agg_headroom : float;
  deadline_budget : Units.Time.t;
  nak_delay : Units.Time.t;
  nak_retry_timeout : Units.Time.t;
  max_nak_retries : int;
  buffer_capacity : Units.Size.t;
  seed : int64;
}

let default =
  {
    flows = 100;
    sites = 4;
    sinks = 4;
    degree = 8;
    duration = Units.Time.ms 10.;
    bulk_rate = Units.Rate.mbps 400.;
    telemetry_rate = Units.Rate.mbps 100.;
    wan_rate = Units.Rate.gbps 200.;
    wan_rtt = Units.Time.ms 13.;
    wan_loss = 0.002;
    sink_rate = Units.Rate.gbps 100.;
    source_link_rate = Units.Rate.gbps 10.;
    agg_headroom = 1.25;
    deadline_budget = Units.Time.ms 40.;
    nak_delay = Units.Time.ms 1.;
    nak_retry_timeout = Units.Time.ms 20.;
    max_nak_retries = 8;
    buffer_capacity = Units.Size.mib 16;
    seed = 42L;
  }

(* Mix pattern: ½ bulk, ⅙ burst, ⅓ telemetry. *)
let mix_pattern = [| Bulk; Bulk; Telemetry; Bulk; Burst; Telemetry |]
let kind_of_flow f = mix_pattern.(f mod Array.length mix_pattern)

let kind_label = function
  | Bulk -> "bulk"
  | Burst -> "burst"
  | Telemetry -> "telemetry"

(* Burst sources are Poisson photon-event trains; their nominal
   (capacity-planning) rate is events/s * fragments/event * fragment
   bytes.  Kept in sync with [workload_config] below. *)
let burst_event_rate_hz = 1000.
let burst_fragments_per_event = 8
let burst_payload = Units.Size.bytes 4096
let bulk_payload = Units.Size.bytes 7168
let telemetry_payload = Units.Size.bytes 1024

let fragment_wire payload =
  Mmt_daq.Fragment.header_size + Mmt_daq.Fragment.subheader_size
  + Units.Size.to_bytes payload

let nominal_rate config = function
  | Bulk -> config.bulk_rate
  | Telemetry -> config.telemetry_rate
  | Burst ->
      Units.Rate.bps
        (burst_event_rate_hz
        *. float_of_int burst_fragments_per_event
        *. float_of_int (8 * fragment_wire burst_payload))

(* Geographic partition of the facility: flows live at [sites]
   detector halls in contiguous blocks, split as evenly as the counts
   allow.  Each hall runs its own fan-in tree and hosts the per-flow
   rewriters and retransmission buffers for its block at a site-edge
   switch, joined to the shared facility edge by a metro-distance
   uplink.  The metro hop is WAN-class by the simulator's standards
   (>= {!Mmt_sim.Link.cut_threshold}), which is exactly what lets the
   sharded runner put every hall on its own domain. *)
let metro_propagation = Units.Time.ms 2.

let site_spans config =
  if config.sites < 1 then invalid_arg "Scenario: sites must be positive";
  let sites = Stdlib.min config.sites config.flows in
  let base = config.flows / sites and rem = config.flows mod sites in
  Array.init sites (fun s ->
      let start = (s * base) + Stdlib.min s rem in
      let count = base + (if s < rem then 1 else 0) in
      (start, count))

let levels ~flows ~degree =
  if flows < 1 then invalid_arg "Scenario.levels: flows must be positive";
  if degree < 2 then invalid_arg "Scenario.levels: degree must be >= 2";
  let rec go count acc =
    if count <= 1 then List.rev acc
    else
      let parents = (count + degree - 1) / degree in
      go parents (parents :: acc)
  in
  go flows []

let offered_nominal config =
  let total = ref Units.Rate.zero in
  for f = 0 to config.flows - 1 do
    total := Units.Rate.add !total (nominal_rate config (kind_of_flow f))
  done;
  !total

let describe config =
  let buf = Buffer.create 1024 in
  let bulk = ref 0 and burst = ref 0 and telemetry = ref 0 in
  for f = 0 to config.flows - 1 do
    match kind_of_flow f with
    | Bulk -> incr bulk
    | Burst -> incr burst
    | Telemetry -> incr telemetry
  done;
  Printf.bprintf buf
    "facility scenario: %d flows (%d bulk / %d burst / %d telemetry) -> %d sinks\n"
    config.flows !bulk !burst !telemetry config.sinks;
  let spans = site_spans config in
  Printf.bprintf buf "sites: %d (flows per site: %s), metro uplink %s\n"
    (Array.length spans)
    (String.concat "/"
       (Array.to_list (Array.map (fun (_, count) -> string_of_int count) spans)))
    (Units.Time.to_string metro_propagation);
  Printf.bprintf buf "fan-in tree per site: degree %d, switches per level: %s\n"
    config.degree
    (match levels ~flows:(snd spans.(0)) ~degree:config.degree with
    | [] -> "none (single flow feeds the site edge directly)"
    | counts -> String.concat " -> " (List.map string_of_int counts));
  let offered = offered_nominal config in
  Printf.bprintf buf "wan: %s, rtt %s, loss %.3g%%; offered (nominal) %s (%.2fx wan)\n"
    (Units.Rate.to_string config.wan_rate)
    (Units.Time.to_string config.wan_rtt)
    (config.wan_loss *. 100.)
    (Units.Rate.to_string offered)
    (Units.Rate.to_bps offered /. Units.Rate.to_bps config.wan_rate);
  Printf.bprintf buf "emission window %s, edge deadline budget %s, seed %Ld\n"
    (Units.Time.to_string config.duration)
    (Units.Time.to_string config.deadline_budget)
    config.seed;
  let shown = min config.flows 8 in
  for f = 0 to shown - 1 do
    Printf.bprintf buf "  flow %4d %-9s %s -> %s (sink %s, buffer %s)\n" f
      (kind_label (kind_of_flow f))
      (Mmt_frame.Addr.Ip.to_string (Address.source_ip f))
      (Mmt_frame.Addr.Ip.to_string (Address.flow_ip f))
      (Mmt_frame.Addr.Ip.to_string (Address.sink_ip (f mod config.sinks)))
      (Mmt_frame.Addr.Ip.to_string (Address.buffer_ip f))
  done;
  if config.flows > shown then
    Printf.bprintf buf "  ... %d more flows, same pattern\n" (config.flows - shown);
  Buffer.contents buf

type result = {
  summary : Metrics.summary;
  samples : Metrics.flow_sample array;
  sim_time : Units.Time.t;
  events : int;
}

(* Encapsulation destination of a frame, for switch routing. *)
let frame_dst frame =
  match Mmt.Encap.locate frame with
  | Ok (Mmt.Encap.Over_ipv4 { dst; _ }, _) -> Some dst
  | Ok _ | Error _ -> None

let experiment_of_flow f =
  (* The 8-bit slice field cannot hold a facility's flow count, so the
     flow id lives in the 24-bit experiment field. *)
  Mmt.Experiment_id.make ~experiment:(0x0F5000 + f) ~slice:0

(* Per-kind workload shapes: the catalog provides the fragment cadence
   (scaled to the per-flow nominal rate), the profile provides the
   burstiness. *)
let workload_config kind =
  let open Mmt_daq in
  match kind with
  | Bulk ->
      let catalog = Experiment.find Experiment.Dune in
      {
        Workload.experiment = catalog;
        scale =
          Units.Rate.to_bps (Units.Rate.mbps 400.)
          /. Units.Rate.to_bps catalog.Experiment.daq_rate;
        profile = Workload.Steady;
        payload = Workload.Synthetic bulk_payload;
        run = 1;
        slice = 0;
      }
  | Burst ->
      let catalog = Experiment.find Experiment.Vera_rubin in
      {
        Workload.experiment = catalog;
        scale = 1e-3 (* unused by the Poisson profile, must be positive *);
        profile =
          Workload.Poisson_events
            {
              mean_rate_hz = burst_event_rate_hz;
              fragments_per_event = burst_fragments_per_event;
            };
        payload = Workload.Synthetic burst_payload;
        run = 1;
        slice = 0;
      }
  | Telemetry ->
      let catalog = Experiment.find Experiment.Mu2e in
      {
        Workload.experiment = catalog;
        scale =
          Units.Rate.to_bps (Units.Rate.mbps 100.)
          /. Units.Rate.to_bps catalog.Experiment.daq_rate;
        profile = Workload.Steady;
        payload = Workload.Synthetic telemetry_payload;
        run = 1;
        slice = 0;
      }

(* Everything [run] needs to read results back after the engines have
   drained.  The rewriter and sender tables ride along for the chaos
   harness: campaign trials read emission counts from the rewriters
   and push tail-probe frames through the senders. *)
type built = {
  workloads : Mmt_daq.Workload.t Flow_table.t;
  receivers : Mmt.Receiver.t Flow_table.t;
  buffers : Mmt.Buffer_host.t Flow_table.t;
  rewriters : Mmt_innet.Mode_rewriter.t Flow_table.t;
  senders : Mmt.Sender.t Flow_table.t;
}

(* Construct the whole facility inside [topo].  This same function
   serves the sequential engine and every sharded configuration: the
   topology decides which engine each node lives on
   ({!Mmt_sim.Topology.node_engine}), and each component is attached
   to its own node's engine.  Identical construction order across
   modes is what pins down identical cut-edge ids and identical
   per-engine scheduling order — the byte-identity the E-F5
   determinism tests check. *)
let build ?(on_deliver = fun ~flow:_ ~seq:_ -> ()) config topo =
  (* Shard-local packet arenas: every router, switch and element on a
     node recycles through that node's shard ring. *)
  let node_ring node =
    Mmt_sim.Topology.ring_of_shard topo (Mmt_sim.Topology.shard_of_node topo node)
  in
  let node_pool node = Option.map Mmt_sim.Ring.pool (node_ring node) in
  let spans = site_spans config in
  let nsites = Array.length spans in
  let site_of = Array.make config.flows 0 in
  Array.iteri
    (fun s (start, count) ->
      for f = start to start + count - 1 do
        site_of.(f) <- s
      done)
    spans;

  let master = Rng.create ~seed:config.seed in
  let loss_rng = Rng.split master in
  let flow_rngs = Array.make config.flows master in
  for f = 0 to config.flows - 1 do
    flow_rngs.(f) <- Rng.split master
  done;

  (* Nodes, site-major: a hall's sources, aggregation tree and
     site-edge switch are one cut component; the shared edge and the
     sink side follow. *)
  let placeholder = Mmt_sim.Node.create ~name:"_" in
  let sources = Array.make config.flows placeholder in
  let sedges = Array.make nsites placeholder in
  let site_levels = Array.make nsites [] in
  for s = 0 to nsites - 1 do
    let start, count = spans.(s) in
    for f = start to start + count - 1 do
      sources.(f) <-
        Mmt_sim.Topology.add_node topo ~name:(Printf.sprintf "src%d" f)
    done;
    site_levels.(s) <-
      List.mapi
        (fun l n ->
          Array.init n (fun i ->
              Mmt_sim.Topology.add_node topo
                ~name:(Printf.sprintf "s%d_agg%d_%d" s l i)))
        (levels ~flows:count ~degree:config.degree);
    sedges.(s) <-
      Mmt_sim.Topology.add_node topo ~name:(Printf.sprintf "site-edge%d" s)
  done;
  let edge_in = Mmt_sim.Topology.add_node topo ~name:"edge-in" in
  let edge_out = Mmt_sim.Topology.add_node topo ~name:"edge-out" in
  let sinks =
    Array.init config.sinks (fun m ->
        Mmt_sim.Topology.add_node topo ~name:(Printf.sprintf "sink%d" m))
  in

  (* Aggregation-link sizing: nominal load below each switch, with
     headroom, so the shared WAN stays the bottleneck by design. *)
  let flow_nominal =
    Array.init config.flows (fun f ->
        Units.Rate.to_bps (nominal_rate config (kind_of_flow f)))
  in
  let group_sums values count =
    let sums = Array.make count 0. in
    Array.iteri
      (fun i v ->
        let parent = i / config.degree in
        sums.(parent) <- sums.(parent) +. v)
      values;
    sums
  in
  let uplink_rate load_bps =
    Units.Rate.bps
      (Float.max
         (Units.Rate.to_bps config.source_link_rate)
         (load_bps *. config.agg_headroom))
  in

  (* Per-site links: sources -> leaf switches -> ... -> root -> the
     site edge (or the site edge directly when one flow needs no
     tree), then the metro-distance duplex pair to the facility edge. *)
  let source_links = Array.make config.flows None in
  let metro_up = Array.make nsites None in
  let metro_down = Array.make nsites None in
  for s = 0 to nsites - 1 do
    let start, count = spans.(s) in
    let site_nominal = Array.sub flow_nominal start count in
    (match site_levels.(s) with
    | [] ->
        source_links.(start) <-
          Some
            (Mmt_sim.Topology.connect topo ~src:sources.(start)
               ~dst:sedges.(s) ~rate:config.source_link_rate
               ~propagation:(Units.Time.us 2.) ())
    | leaves :: _ ->
        for f = start to start + count - 1 do
          source_links.(f) <-
            Some
              (Mmt_sim.Topology.connect topo ~src:sources.(f)
                 ~dst:leaves.((f - start) / config.degree)
                 ~rate:config.source_link_rate
                 ~propagation:(Units.Time.us 2.) ())
        done);
    (* Wire each aggregation level's uplinks to the next level (or the
       site edge for the root), and install plain forwarding handlers. *)
    let rec wire_levels sums nodes_list =
      match nodes_list with
      | [] -> ()
      | level :: rest ->
          Array.iteri
            (fun i node ->
              let dst =
                match rest with
                | next :: _ -> next.(i / config.degree)
                | [] -> sedges.(s)
              in
              let link =
                Mmt_sim.Topology.connect topo ~src:node ~dst
                  ~rate:(uplink_rate sums.(i))
                  ~propagation:(Units.Time.us 5.) ()
              in
              Mmt_sim.Node.set_handler node (Mmt_sim.Link.send link))
            level;
          let next_sums =
            match rest with
            | next :: _ -> group_sums sums (Array.length next)
            | [] -> [||]
          in
          wire_levels next_sums rest
    in
    (match site_levels.(s) with
    | [] -> ()
    | leaves :: _ as all ->
        wire_levels (group_sums site_nominal (Array.length leaves)) all);
    let site_load = Array.fold_left ( +. ) 0. site_nominal in
    let up, down =
      Mmt_sim.Topology.duplex topo ~a:sedges.(s) ~b:edge_in
        ~rate:(uplink_rate site_load) ~propagation:metro_propagation ()
    in
    metro_up.(s) <- Some up;
    metro_down.(s) <- Some down
  done;
  let source_links = Array.map Option.get source_links in
  let metro_up = Array.map Option.get metro_up in
  let metro_down = Array.map Option.get metro_down in

  (* The shared WAN: one impaired data link, one clean reverse link. *)
  let half_rtt = Units.Time.scale config.wan_rtt 0.5 in
  let wan_loss =
    if config.wan_loss = 0. then Mmt_sim.Loss.perfect
    else Mmt_sim.Loss.bernoulli ~drop:config.wan_loss ~corrupt:0. ~rng:loss_rng
  in
  let wan_data =
    Mmt_sim.Topology.connect topo ~src:edge_in ~dst:edge_out ~rate:config.wan_rate
      ~propagation:half_rtt ~loss:wan_loss ()
  in
  let wan_reverse =
    Mmt_sim.Topology.connect topo ~src:edge_out ~dst:edge_in ~rate:config.wan_rate
      ~propagation:half_rtt ()
  in
  let sink_links =
    Array.init config.sinks (fun m ->
        Mmt_sim.Topology.connect topo ~src:edge_out ~dst:sinks.(m)
          ~rate:config.sink_rate ~propagation:(Units.Time.us 20.) ())
  in

  (* Site edge (source side): per-flow mode rewriters and
     retransmission buffers live at their flow's hall, demultiplexed
     by flow id in O(1).  Retransmissions and rewritten traffic ride
     the metro uplink; the facility edge forwards them onto the WAN. *)
  let sedge_ids =
    Array.init nsites (fun s -> Mmt_sim.Topology.id_source topo sedges.(s))
  in
  let buffers =
    Flow_table.init ~flows:config.flows (fun f ->
        let s = site_of.(f) in
        let engine = Mmt_sim.Topology.node_engine topo sedges.(s) in
        let router =
          Mmt_pilot.Router.create
            ~default:(Mmt_sim.Link.send metro_up.(s))
            ?ring:(node_ring sedges.(s))
            ()
        in
        let env =
          Mmt_pilot.Router.env router ~engine ~fresh_id:sedge_ids.(s)
            ~local_ip:(Address.buffer_ip f)
        in
        Mmt.Buffer_host.create ~env ~capacity:config.buffer_capacity ())
  in
  let rewriters =
    Flow_table.init ~flows:config.flows (fun f ->
        let mode =
          Mmt.Mode.make
            ~name:(Printf.sprintf "mode1/facility-wan/%d" f)
            ~reliable:(Address.buffer_ip f)
            ~deadline_budget:(config.deadline_budget, Mmt_frame.Addr.Ip.any)
            ()
        in
        let buffer = Option.get (Flow_table.get buffers f) in
        Mmt_innet.Mode_rewriter.create ~mode
          ?pool:(node_pool sedges.(site_of.(f)))
          ~on_rewrite:(fun ~seq ~born frame ->
            match seq with
            | Some seq -> Mmt.Buffer_host.store buffer ~seq ~born frame
            | None -> ())
          ())
  in
  let ingress_handlers =
    Flow_table.init ~flows:config.flows (fun f ->
        let s = site_of.(f) in
        let engine = Mmt_sim.Topology.node_engine topo sedges.(s) in
        let uplink = metro_up.(s) in
        let ring = node_ring sedges.(s) in
        let element =
          Mmt_innet.Mode_rewriter.element (Option.get (Flow_table.get rewriters f))
        in
        fun packet ->
          match
            element.Mmt_innet.Element.process ~now:(Mmt_sim.Engine.now engine)
              packet
          with
          | Mmt_innet.Element.Forward p -> Mmt_sim.Link.send uplink p
          | Mmt_innet.Element.Replicate ps ->
              List.iter (Mmt_sim.Link.send uplink) ps
          | Mmt_innet.Element.Discard _ -> (
              match ring with
              | Some ring -> Mmt_sim.Ring.in_packet_done ring packet
              | None -> ()))
  in
  let nak_handlers =
    Flow_table.init ~flows:config.flows (fun f ->
        Mmt.Buffer_host.on_packet (Option.get (Flow_table.get buffers f)))
  in
  for s = 0 to nsites - 1 do
    let start, count = spans.(s) in
    let local f = f >= start && f < start + count in
    let sedge_route packet =
      match frame_dst (Mmt_sim.Packet.frame packet) with
      | None -> None
      | Some dst -> (
          match Address.classify dst with
          | Address.Flow f when local f -> Flow_table.get ingress_handlers f
          | Address.Buffer f when local f -> Flow_table.get nak_handlers f
          | _ -> None)
    in
    ignore
      (Mmt_innet.Switch.attach
         ~engine:(Mmt_sim.Topology.node_engine topo sedges.(s))
         ~node:sedges.(s) ~profile:Mmt_innet.Switch.tofino2
         ?ring:(node_ring sedges.(s)) ~elements:[] ~route:sedge_route ())
  done;

  (* Facility edge: rewritten site traffic goes out the WAN; NAKs
     coming back off the WAN go down the owning site's metro link. *)
  let edge_in_route packet =
    match frame_dst (Mmt_sim.Packet.frame packet) with
    | None -> None
    | Some dst -> (
        match Address.classify dst with
        | Address.Flow f when f < config.flows ->
            Some (Mmt_sim.Link.send wan_data)
        | Address.Buffer f when f < config.flows ->
            Some (Mmt_sim.Link.send metro_down.(site_of.(f)))
        | _ -> None)
  in
  let _edge_in_switch =
    Mmt_innet.Switch.attach
      ~engine:(Mmt_sim.Topology.node_engine topo edge_in)
      ~node:edge_in ~profile:Mmt_innet.Switch.tofino2
      ?ring:(node_ring edge_in) ~elements:[] ~route:edge_in_route ()
  in

  (* Facility edge (sink side): route each flow to its sink host. *)
  let edge_out_route packet =
    match frame_dst (Mmt_sim.Packet.frame packet) with
    | None -> None
    | Some dst -> (
        match Address.classify dst with
        | Address.Flow f when f < config.flows ->
            Some (Mmt_sim.Link.send sink_links.(f mod config.sinks))
        | _ -> None)
  in
  let _edge_out_switch =
    Mmt_innet.Switch.attach
      ~engine:(Mmt_sim.Topology.node_engine topo edge_out)
      ~node:edge_out ~profile:Mmt_innet.Switch.tofino2
      ?ring:(node_ring edge_out) ~elements:[] ~route:edge_out_route ()
  in

  (* Receivers: one per flow, on the flow's sink host; NAKs and other
     control ride the clean reverse WAN back to the edge. *)
  let sink_ids =
    Array.init config.sinks (fun m -> Mmt_sim.Topology.id_source topo sinks.(m))
  in
  let receivers =
    Flow_table.init ~flows:config.flows (fun f ->
        let sink = f mod config.sinks in
        let engine = Mmt_sim.Topology.node_engine topo sinks.(sink) in
        let router =
          Mmt_pilot.Router.create
            ~default:(Mmt_sim.Link.send wan_reverse)
            ?ring:(node_ring sinks.(sink))
            ()
        in
        let env =
          Mmt_pilot.Router.env router ~engine ~fresh_id:sink_ids.(sink)
            ~local_ip:(Address.flow_ip f)
        in
        Mmt.Receiver.create ~env
          {
            Mmt.Receiver.experiment = experiment_of_flow f;
            nak_delay = config.nak_delay;
            nak_retry_timeout = config.nak_retry_timeout;
            max_nak_retries = config.max_nak_retries;
            expected_total = None;
          }
          ~deliver:(fun meta _payload ->
            on_deliver ~flow:f
              ~seq:meta.Mmt.Receiver.header.Mmt.Header.sequence))
  in
  Array.iter
    (fun sink_node ->
      let ring = node_ring sink_node in
      let retire packet =
        match ring with
        | Some ring -> Mmt_sim.Ring.in_packet_done ring packet
        | None -> ()
      in
      Mmt_sim.Node.set_handler sink_node (fun packet ->
          match frame_dst (Mmt_sim.Packet.frame packet) with
          | Some dst -> (
              match Address.classify dst with
              | Address.Flow f -> (
                  match Flow_table.get receivers f with
                  | Some receiver -> Mmt.Receiver.on_packet receiver packet
                  | None -> retire packet)
              | _ -> retire packet)
          | None -> retire packet))
    sinks;

  (* Sources: mode-0 senders fed by the per-kind workload shapes.  The
     senders land in a side table (same construction order — the table
     is filled inside the one init loop) so the chaos harness can push
     extra frames through them after the workloads stop. *)
  let sender_slots = Array.make config.flows None in
  let workloads =
    Flow_table.init ~flows:config.flows (fun f ->
        let engine = Mmt_sim.Topology.node_engine topo sources.(f) in
        let router =
          Mmt_pilot.Router.create
            ~default:(Mmt_sim.Link.send source_links.(f))
            ?ring:(node_ring sources.(f))
            ()
        in
        let env =
          Mmt_pilot.Router.env router ~engine
            ~fresh_id:(Mmt_sim.Topology.id_source topo sources.(f))
            ~local_ip:(Address.source_ip f)
        in
        let sender =
          Mmt.Sender.create ~env
            {
              Mmt.Sender.experiment = experiment_of_flow f;
              destination = Address.flow_ip f;
              encap =
                Mmt.Encap.Over_ipv4
                  {
                    src = Address.source_ip f;
                    dst = Address.flow_ip f;
                    dscp = 0;
                    ttl = 64;
                  };
              deadline_budget = None;
              backpressure_to = None;
              pace = None;
              padding = 0;
            }
        in
        sender_slots.(f) <- Some sender;
        Mmt_daq.Workload.start ~engine ~rng:flow_rngs.(f)
          (workload_config (kind_of_flow f))
          ~emit:(fun fragment ->
            Mmt.Sender.send sender (Mmt_daq.Fragment.encode fragment))
          ~until:config.duration)
  in
  let senders =
    Flow_table.init ~flows:config.flows (fun f -> Option.get sender_slots.(f))
  in
  { workloads; receivers; buffers; rewriters; senders }

let run ?(shards = 1) ?(pooling = true) ?(fusing = true) ?gc config =
  if config.flows < 1 then invalid_arg "Scenario.run: flows must be positive";
  if config.sinks < 1 then invalid_arg "Scenario.run: sinks must be positive";
  let topo, { workloads; receivers; buffers; _ }, runner =
    Mmt_sim.Shard.build ~shards ~pooling ~fusing (build config)
  in
  (* Run to quiescence; the cap is a safety bound well past the worst
     NAK-retry chain, not a working deadline. *)
  let until = Units.Time.add config.duration (Units.Time.seconds 1.) in
  let events =
    match runner with
    | None ->
        let engine = Mmt_sim.Topology.engine topo in
        (match gc with
        | None -> Mmt_sim.Engine.run ~until engine
        | Some tuning ->
            (* Same GC parameters a sharded run's domains would get,
               restored afterwards. *)
            let saved = Gc.get () in
            Fun.protect
              ~finally:(fun () -> Gc.set saved)
              (fun () ->
                Mmt_sim.Shard.apply_gc tuning;
                Mmt_sim.Engine.run ~until engine));
        Mmt_sim.Engine.processed engine
    | Some r ->
        Mmt_sim.Shard.run ~until ?gc r;
        Mmt_sim.Shard.events r
  in

  let samples =
    Array.init config.flows (fun f ->
        let w = Mmt_daq.Workload.stats (Option.get (Flow_table.get workloads f)) in
        let r = Mmt.Receiver.stats (Option.get (Flow_table.get receivers f)) in
        let b = Mmt.Buffer_host.stats (Option.get (Flow_table.get buffers f)) in
        {
          Metrics.kind = kind_label (kind_of_flow f);
          emitted = w.Mmt_daq.Workload.fragments_emitted;
          emitted_bytes = w.Mmt_daq.Workload.bytes_emitted;
          delivered = r.Mmt.Receiver.delivered;
          delivered_bytes = r.Mmt.Receiver.delivered_bytes;
          late = r.Mmt.Receiver.late;
          lost = r.Mmt.Receiver.lost + r.Mmt.Receiver.still_missing;
          recovered = r.Mmt.Receiver.recovered;
          retx_occupancy_hw =
            Units.Size.to_bytes
              b.Mmt.Buffer_host.buffer.Mmt.Retx_buffer.occupancy_high_water;
          retx_entries_hw =
            b.Mmt.Buffer_host.buffer.Mmt.Retx_buffer.entries_high_water;
          nak_state_hw = r.Mmt.Receiver.nak_state_high_water;
        })
  in
  (* Goodput window: first to last arrival across every flow.  The
     engine clock is useless here — [run ~until] advances it to the
     drain cap even when the queue empties early. *)
  let window =
    let first = ref None and last = ref None in
    Flow_table.iter
      (fun _ receiver ->
        let r = Mmt.Receiver.stats receiver in
        (match r.Mmt.Receiver.first_arrival with
        | Some t ->
            first :=
              Some (match !first with None -> t | Some f -> Units.Time.min f t)
        | None -> ());
        match r.Mmt.Receiver.last_arrival with
        | Some t ->
            last := Some (match !last with None -> t | Some l -> Units.Time.max l t)
        | None -> ())
      receivers;
    match (!first, !last) with
    | Some f, Some l -> Units.Time.diff l f
    | _ -> Units.Time.zero
  in
  { summary = Metrics.summarize ~window samples; samples; sim_time = window; events }
