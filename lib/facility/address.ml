open Mmt_frame

let of_block block id =
  if id < 0 || id > 0xFFFF then invalid_arg "Mmt_facility.Address: id out of range";
  Addr.Ip.of_octets 10 block (id lsr 8) (id land 0xFF)

let source_ip id = of_block 16 id
let flow_ip id = of_block 32 id
let buffer_ip id = of_block 48 id
let sink_ip id = of_block 64 id

type role =
  | Source of int
  | Flow of int
  | Buffer of int
  | Sink of int
  | Other

let classify ip =
  let v = Int32.to_int (Addr.Ip.to_int32 ip) land 0xFFFFFFFF in
  if v lsr 24 <> 10 then Other
  else
    let id = v land 0xFFFF in
    match (v lsr 16) land 0xFF with
    | 16 -> Source id
    | 32 -> Flow id
    | 48 -> Buffer id
    | 64 -> Sink id
    | _ -> Other
