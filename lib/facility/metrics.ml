open Mmt_util

let jain xs =
  let n = Array.length xs in
  if n = 0 then 1.0
  else begin
    let sum = ref 0. and sumsq = ref 0. in
    Array.iter
      (fun x ->
        sum := !sum +. x;
        sumsq := !sumsq +. (x *. x))
      xs;
    if !sumsq = 0. then 1.0 else !sum *. !sum /. (float_of_int n *. !sumsq)
  end

type flow_sample = {
  kind : string;
  emitted : int;
  emitted_bytes : int;
  delivered : int;
  delivered_bytes : int;
  late : int;
  lost : int;
  recovered : int;
  retx_occupancy_hw : int;
  retx_entries_hw : int;
  nak_state_hw : int;
}

type summary = {
  flows : int;
  emitted : int;
  delivered : int;
  delivered_bytes : int;
  goodput : Units.Rate.t;
  fairness : float;
  deadline_hit_rate : float;
  lost : int;
  recovered : int;
  retx_occupancy_hw : int;
  retx_entries_hw : int;
  nak_state_hw : int;
}

let summarize ~window samples =
  let total (f : flow_sample -> int) =
    Array.fold_left (fun acc s -> acc + f s) 0 samples
  in
  let max_over (f : flow_sample -> int) =
    Array.fold_left (fun acc s -> max acc (f s)) 0 samples
  in
  let ratios =
    Array.of_list
      (Array.fold_left
         (fun acc (s : flow_sample) ->
           if s.emitted = 0 then acc
           else (float_of_int s.delivered /. float_of_int s.emitted) :: acc)
         [] samples
      |> List.rev)
  in
  let delivered = total (fun s -> s.delivered) in
  let late = total (fun s -> s.late) in
  let delivered_bytes = total (fun s -> s.delivered_bytes) in
  {
    flows = Array.length samples;
    emitted = total (fun s -> s.emitted);
    delivered;
    delivered_bytes;
    goodput =
      (if Units.Time.is_zero window then Units.Rate.zero
       else Units.Rate.of_size_per_time (Units.Size.bytes delivered_bytes) window);
    fairness = jain ratios;
    deadline_hit_rate =
      (if delivered = 0 then 1.0
       else float_of_int (delivered - late) /. float_of_int delivered);
    lost = total (fun s -> s.lost);
    recovered = total (fun s -> s.recovered);
    retx_occupancy_hw = max_over (fun s -> s.retx_occupancy_hw);
    retx_entries_hw = max_over (fun s -> s.retx_entries_hw);
    nak_state_hw = max_over (fun s -> s.nak_state_hw);
  }
