(** Facility-scale fan-in scenario generator.

    Assembles the paper's setting — many detector front-ends
    shape-shifting elephant flows into shared event builders across a
    WAN (§ 2) — as one deterministic simulation: N sources of mixed
    workload shape (LArTPC-like bulk, photon-burst, steady telemetry)
    feed a fan-in aggregation tree of configurable degree, cross one
    shared WAN bottleneck at the facility edge where per-flow
    mode-0 → mode-1 rewriters and retransmission buffers live, and land
    on M sink hosts running one MMT receiver per flow.

    Everything is derived from the config (including every [Rng]
    stream), so equal configs produce byte-identical topologies and
    reports — the property the E-F5 sweep's sequential-vs-parallel
    check rests on. *)

open Mmt_util

type kind = Bulk | Burst | Telemetry

type config = {
  flows : int;
  sinks : int;
  degree : int;  (** fan-in per aggregation switch *)
  duration : Units.Time.t;  (** workload emission window *)
  bulk_rate : Units.Rate.t;  (** per-flow nominal rate of a bulk source *)
  telemetry_rate : Units.Rate.t;
  wan_rate : Units.Rate.t;  (** the shared bottleneck *)
  wan_rtt : Units.Time.t;
  wan_loss : float;
  sink_rate : Units.Rate.t;  (** edge -> sink-host last hop *)
  source_link_rate : Units.Rate.t;
  agg_headroom : float;
      (** aggregation uplinks are provisioned at subtree nominal load
          times this factor, so contention concentrates at the WAN *)
  deadline_budget : Units.Time.t;  (** applied by the edge rewriters *)
  nak_delay : Units.Time.t;
  nak_retry_timeout : Units.Time.t;
  max_nak_retries : int;
  buffer_capacity : Units.Size.t;  (** per-flow retransmission buffer *)
  seed : int64;
}

val default : config

val kind_of_flow : int -> kind
(** Deterministic mix assignment: a repeating
    bulk/bulk/telemetry/bulk/burst/telemetry pattern (½ bulk, ⅙ burst,
    ⅓ telemetry). *)

val kind_label : kind -> string

val nominal_rate : config -> kind -> Units.Rate.t
(** Capacity-planning rate of one flow of [kind] (§ 2.1: DAQ traffic
    has "a regular shape (size and arrival rate)"). *)

val levels : flows:int -> degree:int -> int list
(** Aggregation-switch counts per tree level, leaves first, ending in
    the single root that feeds the facility edge. *)

val describe : config -> string
(** The full static topology plan, rendered deterministically —
    compared byte-for-byte by the determinism tests. *)

type result = {
  summary : Metrics.summary;
  samples : Metrics.flow_sample array;  (** indexed by flow id *)
  sim_time : Units.Time.t;
      (** first-to-last arrival span across all flows — the goodput
          window (the engine clock is pinned to the drain cap by
          [run ~until], so it can't serve as one) *)
  events : int;  (** engine events processed *)
}

val run : config -> result
(** Build the scenario on a fresh engine, run it to completion (with a
    one-second drain cap past [duration] as a safety bound), and read
    the metrics back from the endpoints' own statistics. *)
