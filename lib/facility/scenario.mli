(** Facility-scale fan-in scenario generator.

    Assembles the paper's setting — many detector front-ends
    shape-shifting elephant flows into shared event builders across a
    WAN (§ 2) — as one deterministic simulation: N sources of mixed
    workload shape (LArTPC-like bulk, photon-burst, steady telemetry)
    spread over geographically distributed detector halls ([sites]),
    each hall fanning its block of flows into an aggregation tree of
    configurable degree and hosting that block's mode-0 → mode-1
    rewriters and retransmission buffers at a site-edge switch.  Halls
    join the facility edge over metro-distance uplinks; all traffic
    crosses one shared WAN bottleneck and lands on M sink hosts
    running one MMT receiver per flow.

    Everything is derived from the config (including every [Rng]
    stream), so equal configs produce byte-identical topologies and
    reports — the property the E-F5 sweep's sequential-vs-parallel
    check rests on.  The metro uplinks are WAN-class by the
    simulator's cut rule ({!Mmt_sim.Link.cut_threshold}), so [run
    ~shards] can put every hall, the facility edge and the sink side
    on their own domains ({!Mmt_sim.Shard}) with byte-identical
    results. *)

open Mmt_util

type kind = Bulk | Burst | Telemetry

type config = {
  flows : int;
  sites : int;
      (** detector halls; flows split over them in contiguous,
          near-even blocks (capped at one site per flow) *)
  sinks : int;
  degree : int;  (** fan-in per aggregation switch *)
  duration : Units.Time.t;  (** workload emission window *)
  bulk_rate : Units.Rate.t;  (** per-flow nominal rate of a bulk source *)
  telemetry_rate : Units.Rate.t;
  wan_rate : Units.Rate.t;  (** the shared bottleneck *)
  wan_rtt : Units.Time.t;
  wan_loss : float;
  sink_rate : Units.Rate.t;  (** edge -> sink-host last hop *)
  source_link_rate : Units.Rate.t;
  agg_headroom : float;
      (** aggregation uplinks are provisioned at subtree nominal load
          times this factor, so contention concentrates at the WAN *)
  deadline_budget : Units.Time.t;  (** applied by the edge rewriters *)
  nak_delay : Units.Time.t;
  nak_retry_timeout : Units.Time.t;
  max_nak_retries : int;
  buffer_capacity : Units.Size.t;  (** per-flow retransmission buffer *)
  seed : int64;
}

val default : config

val kind_of_flow : int -> kind
(** Deterministic mix assignment: a repeating
    bulk/bulk/telemetry/bulk/burst/telemetry pattern (½ bulk, ⅙ burst,
    ⅓ telemetry). *)

val kind_label : kind -> string

val nominal_rate : config -> kind -> Units.Rate.t
(** Capacity-planning rate of one flow of [kind] (§ 2.1: DAQ traffic
    has "a regular shape (size and arrival rate)"). *)

val levels : flows:int -> degree:int -> int list
(** Aggregation-switch counts per tree level, leaves first, ending in
    the single root that feeds the site edge. *)

val site_spans : config -> (int * int) array
(** Per-site [(first_flow, flow_count)] blocks: contiguous, near-even,
    never empty (the site count is capped at the flow count).
    @raise Invalid_argument if [sites < 1]. *)

val describe : config -> string
(** The full static topology plan, rendered deterministically —
    compared byte-for-byte by the determinism tests. *)

type built = {
  workloads : Mmt_daq.Workload.t Flow_table.t;
  receivers : Mmt.Receiver.t Flow_table.t;
  buffers : Mmt.Buffer_host.t Flow_table.t;
  rewriters : Mmt_innet.Mode_rewriter.t Flow_table.t;
  senders : Mmt.Sender.t Flow_table.t;
}
(** Per-flow endpoint handles, for reading results back after a run —
    and, in the chaos harness, for reading sequenced-emission counts
    (rewriters) and pushing tail-probe frames (senders). *)

val build :
  ?on_deliver:(flow:int -> seq:int option -> unit) ->
  config ->
  Mmt_sim.Topology.t ->
  built
(** Construct the whole facility inside the given topology — the build
    function handed to {!Mmt_sim.Shard.build} (or run against a plain
    sequential topology).  [on_deliver] observes every application
    delivery with the flow id and the frame's sequence number (as
    carried by the MMT header; [None] for unsequenced frames); the
    default observer does nothing.  Construction order is identical
    regardless of [on_deliver], so instrumented and plain builds
    schedule byte-identically. *)

type result = {
  summary : Metrics.summary;
  samples : Metrics.flow_sample array;  (** indexed by flow id *)
  sim_time : Units.Time.t;
      (** first-to-last arrival span across all flows — the goodput
          window (the engine clock is pinned to the drain cap by
          [run ~until], so it can't serve as one) *)
  events : int;  (** engine events processed, summed over shards *)
}

val run :
  ?shards:int ->
  ?pooling:bool ->
  ?fusing:bool ->
  ?gc:Mmt_sim.Shard.gc_tuning ->
  config ->
  result
(** Build the scenario on fresh engines, run it to completion (with a
    one-second drain cap past [duration] as a safety bound), and read
    the metrics back from the endpoints' own statistics.

    [shards] (default 1) asks for domain-per-shard parallel execution
    via {!Mmt_sim.Shard}: the topology is cut at its WAN-class links
    (metro uplinks and the WAN itself) and the halls run in parallel.
    Results are byte-identical at every shard count — [run ~shards:n]
    changes wall-clock time, never the simulation.  Counts above the
    number of cut components fold back; [shards <= 1] runs the plain
    sequential engine.

    [fusing] (default [true]) collapses uncongested hops into single
    engine events ({!Mmt_sim.Link.create}); [fusing:false] opts out,
    with byte-identical results either way.
    [pooling] (default [true]) gives every shard a preallocated packet
    {!Mmt_sim.Ring} through which the whole forwarding path recycles
    records and frames; [pooling:false] opts out (pure-GC allocation).
    Either setting produces byte-identical results — pooling changes
    the allocator, never a field value.  [gc] applies per-domain GC
    tuning for the duration of the run (sequential runs apply it to
    the calling domain and restore the previous settings). *)
