(** The E-F5 flow-count sweep.

    Runs the same facility scenario at log-spaced flow counts.  Each
    point is a self-contained deterministic simulation (own engine,
    topology and seeded generators), so points parallelize over the
    shared {!Mmt_util.Task_pool} with results collected into
    point-order slots — the sweep's output is byte-identical whether
    run sequentially or with [--jobs N]. *)

val log_points : ?lo:int -> ?hi:int -> unit -> int list
(** The 1-3-10 log series clipped to [[lo, hi]], e.g. 10, 30, 100,
    300, 1000 for the defaults. *)

val run :
  ?jobs:int ->
  ?shards:int ->
  ?pooling:bool ->
  ?fusing:bool ->
  ?gc:Mmt_sim.Shard.gc_tuning ->
  base:Scenario.config ->
  points:int list ->
  unit ->
  (int * Scenario.result) list
(** One scenario per point, [base] with [flows] overridden.  [jobs]
    (default 1) caps the extra domains engaged; 0 asks for the
    machine's recommended count.  [shards] (default 1) additionally
    parallelizes {e within} each point via {!Scenario.run} — the two
    axes compose, and neither changes a byte of output.  Prefer
    [jobs] when there are many points and [shards] when one huge
    point dominates.  [pooling], [fusing] and [gc] pass through to
    {!Scenario.run} for every point. *)
