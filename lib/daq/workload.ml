open Mmt_util

type profile =
  | Steady
  | Periodic_trigger of { window : Units.Time.t; duty : float }
  | Poisson_events of { mean_rate_hz : float; fragments_per_event : int }
  | Supernova of {
      onset : Units.Time.t;
      duration : Units.Time.t;
      multiplier : float;
    }
  | Replay of (Units.Time.t * int) list

type payload =
  | Synthetic of Units.Size.t
  | Raw_window of Lartpc.config * Lartpc.activity
  | Trigger_primitives of Lartpc.config * Lartpc.activity * int
  | Photon_flash of Photon.config * int

type config = {
  experiment : Experiment.t;
  scale : float;
  profile : profile;
  payload : payload;
  run : int;
  slice : int;
}

type stats = {
  fragments_emitted : int;
  bytes_emitted : int;
  events : int;
}

type t = {
  engine : Mmt_sim.Engine.t;
  rng : Rng.t;
  config : config;
  emit : Fragment.t -> unit;
  until : Units.Time.t;
  mutable running : bool;
  mutable trigger : int;
  mutable fragments_emitted : int;
  mutable bytes_emitted : int;
  mutable events : int;
  started_at : Units.Time.t;
}

let payload_size config =
  match config.payload with
  | Synthetic size -> Units.Size.to_bytes size
  | Raw_window (lconfig, _) ->
      2 * lconfig.Lartpc.channels * lconfig.Lartpc.samples_per_channel
  | Trigger_primitives _ ->
      (* Hit counts vary; use the catalog fragment size for pacing. *)
      Units.Size.to_bytes config.experiment.Experiment.message_size
  | Photon_flash (pconfig, _) -> 2 * pconfig.Photon.samples

let expected_interval config =
  let rate = Experiment.scaled_rate config.experiment ~scale:config.scale in
  let fragment_bytes =
    Fragment.header_size + Fragment.subheader_size + payload_size config
  in
  Units.Rate.transmission_time rate (Units.Size.bytes fragment_bytes)

let build_payload t =
  match t.config.payload with
  | Synthetic size ->
      let buf = Bytes.make (Units.Size.to_bytes size) '\xA5' in
      (* Stamp a random word so payloads differ packet to packet. *)
      if Bytes.length buf >= 8 then Bytes.set_int64_be buf 0 (Rng.int64 t.rng);
      buf
  | Raw_window (lconfig, activity) ->
      Lartpc.serialize_window (Lartpc.generate_window lconfig t.rng ~activity)
  | Trigger_primitives (lconfig, activity, threshold) ->
      let window = Lartpc.generate_window lconfig t.rng ~activity in
      let hits =
        Array.to_list window
        |> List.mapi (fun channel waveform ->
               Lartpc.trigger_primitives lconfig ~threshold ~channel waveform)
        |> List.concat
      in
      Lartpc.serialize_hits hits
  | Photon_flash (pconfig, mean_photons) ->
      let photons = Rng.poisson t.rng ~mean:(float_of_int mean_photons) in
      Photon.serialize (Photon.generate pconfig t.rng ~photons)

let detector_for t =
  match t.config.payload with
  | Raw_window (lconfig, _) | Trigger_primitives (lconfig, _, _) ->
      Fragment.Wib_ethernet
        {
          crate = 1;
          slot = t.config.slice;
          fiber = 1;
          first_channel = 0;
          channel_count = lconfig.Lartpc.channels;
        }
  | Photon_flash (pconfig, _) ->
      Fragment.Photon_detector
        {
          module_id = t.config.slice;
          sipm_count = pconfig.Photon.sipms;
          gain = 1_000_000;
        }
  | Synthetic _ ->
      Fragment.Beam_instrument
        { device = t.config.slice; sample_rate_khz = 2000; adc_bits = 14 }

let emit_fragment ?payload_bytes t =
  let now = Mmt_sim.Engine.now t.engine in
  let payload =
    match (payload_bytes, t.config.payload) with
    | Some bytes, Synthetic _ ->
        let buf = Bytes.make bytes '\xA5' in
        if Bytes.length buf >= 8 then Bytes.set_int64_be buf 0 (Rng.int64 t.rng);
        buf
    | _ -> build_payload t
  in
  let fragment =
    {
      Fragment.run = t.config.run;
      trigger = t.trigger;
      timestamp = now;
      experiment =
        Mmt.Experiment_id.with_slice t.config.experiment.Experiment.id
          t.config.slice;
      detector = detector_for t;
      payload;
    }
  in
  t.trigger <- t.trigger + 1;
  t.fragments_emitted <- t.fragments_emitted + 1;
  t.bytes_emitted <- t.bytes_emitted + Fragment.total_size fragment;
  t.emit fragment

(* Each profile is a self-rescheduling loop on the engine. *)

let rec steady_loop t interval =
  if t.running && Units.Time.(Mmt_sim.Engine.now t.engine <= t.until) then begin
    emit_fragment t;
    ignore
      (Mmt_sim.Engine.schedule_after t.engine ~delay:interval (fun () ->
           steady_loop t interval))
  end

let rec trigger_loop t ~window ~duty ~burst_interval =
  if t.running && Units.Time.(Mmt_sim.Engine.now t.engine <= t.until) then begin
    t.events <- t.events + 1;
    let burst_length = Units.Time.scale window duty in
    let fragments_in_burst =
      max 1
        (Units.Time.to_ns burst_length
        / max 1 (Units.Time.to_ns burst_interval))
    in
    for i = 0 to fragments_in_burst - 1 do
      ignore
        (Mmt_sim.Engine.schedule_after t.engine
           ~delay:(Units.Time.scale burst_interval (float_of_int i))
           (fun () ->
             if t.running && Units.Time.(Mmt_sim.Engine.now t.engine <= t.until)
             then emit_fragment t))
    done;
    ignore
      (Mmt_sim.Engine.schedule_after t.engine ~delay:window (fun () ->
           trigger_loop t ~window ~duty ~burst_interval))
  end

let rec poisson_loop t ~mean_rate_hz ~fragments_per_event =
  if t.running && Units.Time.(Mmt_sim.Engine.now t.engine <= t.until) then begin
    let gap_s = Rng.exponential t.rng ~rate:mean_rate_hz in
    ignore
      (Mmt_sim.Engine.schedule_after t.engine ~delay:(Units.Time.seconds gap_s)
         (fun () ->
           if t.running && Units.Time.(Mmt_sim.Engine.now t.engine <= t.until)
           then begin
             t.events <- t.events + 1;
             for _ = 1 to fragments_per_event do
               emit_fragment t
             done;
             poisson_loop t ~mean_rate_hz ~fragments_per_event
           end))
  end

let rec supernova_loop t ~onset ~duration ~multiplier ~base_interval =
  if t.running && Units.Time.(Mmt_sim.Engine.now t.engine <= t.until) then begin
    let now = Mmt_sim.Engine.now t.engine in
    let elapsed = Units.Time.diff now t.started_at in
    let in_burst =
      Units.Time.(elapsed >= onset)
      && Units.Time.(Units.Time.diff elapsed onset < duration)
    in
    if in_burst && t.events = 0 then t.events <- 1;
    emit_fragment t;
    let interval =
      if in_burst then Units.Time.scale base_interval (1. /. multiplier)
      else base_interval
    in
    ignore
      (Mmt_sim.Engine.schedule_after t.engine ~delay:interval (fun () ->
           supernova_loop t ~onset ~duration ~multiplier ~base_interval))
  end

let replay_schedule t records =
  List.iter
    (fun (at, bytes) ->
      if Units.Time.(at <= t.until) then
        ignore
          (Mmt_sim.Engine.schedule t.engine ~at (fun () ->
               if t.running then emit_fragment ~payload_bytes:bytes t)))
    records

let start ~engine ~rng config ~emit ~until =
  if config.scale <= 0. then invalid_arg "Workload.start: scale must be positive";
  (match config.profile with
  | Periodic_trigger { duty; _ } when duty <= 0. || duty > 1. ->
      invalid_arg "Workload.start: duty must be in (0, 1]"
  | _ -> ());
  let t =
    {
      engine;
      rng;
      config;
      emit;
      until;
      running = true;
      trigger = 0;
      fragments_emitted = 0;
      bytes_emitted = 0;
      events = 0;
      started_at = Mmt_sim.Engine.now engine;
    }
  in
  let interval = expected_interval config in
  (match config.profile with
  | Steady -> steady_loop t interval
  | Periodic_trigger { window; duty } ->
      let burst_interval = Units.Time.scale interval duty in
      trigger_loop t ~window ~duty ~burst_interval
  | Poisson_events { mean_rate_hz; fragments_per_event } ->
      poisson_loop t ~mean_rate_hz ~fragments_per_event
  | Supernova { onset; duration; multiplier } ->
      supernova_loop t ~onset ~duration ~multiplier ~base_interval:interval
  | Replay records -> replay_schedule t records);
  t

let stop t = t.running <- false

let stats t =
  {
    fragments_emitted = t.fragments_emitted;
    bytes_emitted = t.bytes_emitted;
    events = t.events;
  }

let synthesize_capture ~rng ~experiment ~scale ~duration =
  let base_size = Units.Size.to_bytes experiment.Experiment.message_size in
  let config =
    {
      experiment;
      scale;
      profile = Steady;
      payload = Synthetic experiment.Experiment.message_size;
      run = 0;
      slice = 0;
    }
  in
  let interval = Units.Time.to_float_s (expected_interval config) in
  let rec build at acc =
    if at > Units.Time.to_float_s duration then List.rev acc
    else begin
      (* 10% inter-arrival jitter, 5% size jitter: a recorded capture's
         texture without its bulk. *)
      let gap = interval *. Rng.float_in_range rng ~lo:0.9 ~hi:1.1 in
      let size =
        int_of_float (float_of_int base_size *. Rng.float_in_range rng ~lo:0.95 ~hi:1.05)
      in
      build (at +. gap) ((Units.Time.seconds at, max 64 size) :: acc)
    end
  in
  build 0. []

let offered_rate t ~over =
  Units.Rate.of_size_per_time (Units.Size.bytes t.bytes_emitted) over
