open Mmt_util
module Cursor = Mmt_wire.Cursor

type detector =
  | Wib_ethernet of {
      crate : int;
      slot : int;
      fiber : int;
      first_channel : int;
      channel_count : int;
    }
  | Photon_detector of { module_id : int; sipm_count : int; gain : int }
  | Beam_instrument of { device : int; sample_rate_khz : int; adc_bits : int }
  | Telescope_alert of {
      alert_id : int;
      ra_udeg : int;
      dec_udeg : int;
      severity : int;
    }

type t = {
  run : int;
  trigger : int;
  timestamp : Units.Time.t;
  experiment : Mmt.Experiment_id.t;
  detector : detector;
  payload : bytes;
}

let magic = 0xDA01
let header_size = 28
let subheader_size = 12

let total_size t = header_size + subheader_size + Bytes.length t.payload

let detector_kind_code = function
  | Wib_ethernet _ -> 1
  | Photon_detector _ -> 2
  | Beam_instrument _ -> 3
  | Telescope_alert _ -> 4

let encode_subheader w detector =
  match detector with
  | Wib_ethernet { crate; slot; fiber; first_channel; channel_count } ->
      Cursor.Writer.u8 w crate;
      Cursor.Writer.u8 w slot;
      Cursor.Writer.u8 w fiber;
      Cursor.Writer.u8 w 0;
      Cursor.Writer.u16 w first_channel;
      Cursor.Writer.u16 w channel_count;
      Cursor.Writer.u32 w 0l
  | Photon_detector { module_id; sipm_count; gain } ->
      Cursor.Writer.u16 w module_id;
      Cursor.Writer.u16 w sipm_count;
      Cursor.Writer.u32_int w gain;
      Cursor.Writer.u32 w 0l
  | Beam_instrument { device; sample_rate_khz; adc_bits } ->
      Cursor.Writer.u16 w device;
      Cursor.Writer.u16 w sample_rate_khz;
      Cursor.Writer.u8 w adc_bits;
      Cursor.Writer.u8 w 0;
      Cursor.Writer.u16 w 0;
      Cursor.Writer.u32 w 0l
  | Telescope_alert { alert_id; ra_udeg; dec_udeg; severity } ->
      Cursor.Writer.u32_int w alert_id;
      Cursor.Writer.u24 w (ra_udeg land 0xFFFFFF);
      Cursor.Writer.u24 w (dec_udeg land 0xFFFFFF);
      Cursor.Writer.u8 w severity;
      Cursor.Writer.u8 w 0

let decode_subheader r code =
  match code with
  | 1 ->
      let crate = Cursor.Reader.u8 r in
      let slot = Cursor.Reader.u8 r in
      let fiber = Cursor.Reader.u8 r in
      let _reserved = Cursor.Reader.u8 r in
      let first_channel = Cursor.Reader.u16 r in
      let channel_count = Cursor.Reader.u16 r in
      let _pad = Cursor.Reader.u32 r in
      Ok (Wib_ethernet { crate; slot; fiber; first_channel; channel_count })
  | 2 ->
      let module_id = Cursor.Reader.u16 r in
      let sipm_count = Cursor.Reader.u16 r in
      let gain = Cursor.Reader.u32_int r in
      let _pad = Cursor.Reader.u32 r in
      Ok (Photon_detector { module_id; sipm_count; gain })
  | 3 ->
      let device = Cursor.Reader.u16 r in
      let sample_rate_khz = Cursor.Reader.u16 r in
      let adc_bits = Cursor.Reader.u8 r in
      let _r1 = Cursor.Reader.u8 r in
      let _r2 = Cursor.Reader.u16 r in
      let _pad = Cursor.Reader.u32 r in
      Ok (Beam_instrument { device; sample_rate_khz; adc_bits })
  | 4 ->
      let alert_id = Cursor.Reader.u32_int r in
      let ra_udeg = Cursor.Reader.u24 r in
      let dec_udeg = Cursor.Reader.u24 r in
      let severity = Cursor.Reader.u8 r in
      let _pad = Cursor.Reader.u8 r in
      Ok (Telescope_alert { alert_id; ra_udeg; dec_udeg; severity })
  | other -> Error (Printf.sprintf "unknown detector kind %d" other)

let encode t =
  let w = Cursor.Writer.create (total_size t) in
  Cursor.Writer.u16 w magic;
  Cursor.Writer.u8 w 1 (* format version *);
  Cursor.Writer.u8 w (detector_kind_code t.detector);
  Cursor.Writer.u32_int w t.run;
  Cursor.Writer.u32_int w t.trigger;
  Cursor.Writer.u64 w (Units.Time.to_int64_ns t.timestamp);
  Cursor.Writer.u32 w (Mmt.Experiment_id.to_int32 t.experiment);
  Cursor.Writer.u32_int w (Bytes.length t.payload);
  encode_subheader w t.detector;
  Cursor.Writer.bytes w t.payload;
  Cursor.Writer.contents w

let decode buf =
  match
    let r = Cursor.Reader.of_bytes buf in
    let seen_magic = Cursor.Reader.u16 r in
    if seen_magic <> magic then Error "bad fragment magic"
    else begin
      let version = Cursor.Reader.u8 r in
      if version <> 1 then Error (Printf.sprintf "unknown fragment version %d" version)
      else begin
        let kind_code = Cursor.Reader.u8 r in
        let run = Cursor.Reader.u32_int r in
        let trigger = Cursor.Reader.u32_int r in
        let timestamp = Units.Time.of_int64_ns (Cursor.Reader.u64 r) in
        let experiment = Mmt.Experiment_id.of_int32 (Cursor.Reader.u32 r) in
        let payload_length = Cursor.Reader.u32_int r in
        match decode_subheader r kind_code with
        | Error _ as e -> e
        | Ok detector ->
            if Cursor.Reader.remaining r < payload_length then
              Error "fragment payload truncated"
            else
              let payload = Cursor.Reader.take r payload_length in
              Ok { run; trigger; timestamp; experiment; detector; payload }
      end
    end
  with
  | result -> result
  | exception Cursor.Out_of_bounds _ -> Error "truncated fragment"

let equal a b =
  a.run = b.run && a.trigger = b.trigger
  && Units.Time.equal a.timestamp b.timestamp
  && Mmt.Experiment_id.equal a.experiment b.experiment
  && a.detector = b.detector
  && Bytes.equal a.payload b.payload

let pp fmt t =
  let detector_name =
    match t.detector with
    | Wib_ethernet _ -> "wib-ethernet"
    | Photon_detector _ -> "photon-detector"
    | Beam_instrument _ -> "beam-instrument"
    | Telescope_alert _ -> "telescope-alert"
  in
  Format.fprintf fmt "fragment{run %d, trigger %d, %a, %s, %dB}" t.run t.trigger
    Mmt.Experiment_id.pp t.experiment detector_name (Bytes.length t.payload)
