(* Greedy deterministic plan shrinking.

   Given a violating plan and a re-execution oracle, reduce toward a
   locally minimal counterexample with three move kinds, cheapest
   first:

   - drop: remove one event (an orphaned closer is a no-op, so pairs
     disappear in two independent steps);
   - advance: halve one event's time toward zero (openers move the
     fault earlier; closers shorten the window they close);
   - weaken: soften one parameter (brown-out factor toward 1,
     corruption bits then probability down).

   Each accepted move strictly shrinks a well-founded measure (event
   count, total event time, parameter distance), so the fixpoint loop
   terminates without the attempt cap; the cap bounds oracle cost on
   expensive targets.  Everything is a pure function of the input plan
   and the oracle's verdicts — re-running a shrink replays the exact
   move sequence, which is what makes a shrunk counterexample
   committable next to its seed. *)

open Mmt_util

type result = { plan : Plan.t; steps : int; attempts : int }

exception Budget_exhausted

let run ?(max_attempts = 1000) ~violating plan =
  let attempts = ref 0 and steps = ref 0 in
  let test candidate =
    if !attempts >= max_attempts then raise Budget_exhausted;
    incr attempts;
    violating candidate
  in
  (* A candidate can be structurally invalid (halving times can land
     an opener and a closer on the same instant); treat it as
     not-violating rather than a shrink error. *)
  let test_events events =
    match Plan.make events with
    | candidate -> if test candidate then Some candidate else None
    | exception Invalid_argument _ -> None
  in
  let drop_one plan =
    let events = Plan.events plan in
    let n = List.length events in
    let rec go i =
      if i >= n then None
      else
        match test_events (List.filteri (fun j _ -> j <> i) events) with
        | Some candidate -> Some candidate
        | None -> go (i + 1)
    in
    go 0
  in
  let advance_one plan =
    let events = Plan.events plan in
    let n = List.length events in
    let rec go i =
      if i >= n then None
      else
        let halved =
          List.mapi
            (fun j (e : Plan.event) ->
              if j = i then
                Plan.event
                  ~at:(Units.Time.ns (Units.Time.to_ns e.Plan.at / 2))
                  e.Plan.action
              else e)
            events
        in
        let unchanged =
          Units.Time.is_zero (List.nth events i).Plan.at
        in
        if unchanged then go (i + 1)
        else
          match test_events halved with
          | Some candidate -> Some candidate
          | None -> go (i + 1)
    in
    go 0
  in
  let weaken_action = function
    | Plan.Degrade_rate { link; factor } when factor < 0.99 ->
        Some (Plan.Degrade_rate { link; factor = factor +. ((1. -. factor) /. 2.) })
    | Plan.Corrupt_headers { link; probability; bits } when bits > 1 ->
        Some (Plan.Corrupt_headers { link; probability; bits = bits - 1 })
    | Plan.Corrupt_headers { link; probability; bits } when probability > 1e-4
      ->
        Some (Plan.Corrupt_headers { link; probability = probability /. 2.; bits })
    | _ -> None
  in
  let weaken_one plan =
    let events = Plan.events plan in
    let n = List.length events in
    let rec go i =
      if i >= n then None
      else
        match weaken_action (List.nth events i).Plan.action with
        | None -> go (i + 1)
        | Some action ->
            let weakened =
              List.mapi
                (fun j (e : Plan.event) ->
                  if j = i then Plan.event ~at:e.Plan.at action else e)
                events
            in
            (match test_events weakened with
            | Some candidate -> Some candidate
            | None -> go (i + 1))
    in
    go 0
  in
  (* [best] tracks the smallest accepted counterexample, so exhausting
     the attempt budget mid-pass keeps the progress made so far. *)
  let best = ref plan in
  let rec fixpoint plan =
    best := plan;
    match drop_one plan with
    | Some smaller ->
        incr steps;
        fixpoint smaller
    | None -> (
        match advance_one plan with
        | Some earlier ->
            incr steps;
            fixpoint earlier
        | None -> (
            match weaken_one plan with
            | Some weaker ->
                incr steps;
                fixpoint weaker
            | None -> plan))
  in
  match test plan with
  | false -> { plan; steps = 0; attempts = !attempts }
  | true | (exception Budget_exhausted) ->
      (try best := fixpoint plan with Budget_exhausted -> ());
      { plan = !best; steps = !steps; attempts = !attempts }
