open Mmt_util

(* Seeded fault-plan fuzzing.

   The generator composes a bounded number of fault *shapes* — a shape
   is a well-formed pair of events (down/up, degrade/restore,
   fail/restart, blackhole/unblackhole, corrupt/stop) over a window
   that closes before the universe's horizon — into a Plan.t.  Every
   random draw comes from one splitmix stream created from the trial
   seed, so a seed names a plan forever: campaign reports, regression
   corpora and shrink replays all rest on that.

   Well-formedness is scenario knowledge, and it lives here in two
   places.  First, the universe separates names by what faulting them
   can break: links and elements on the post-sequencing path are safe
   while delivery totals are tracked, whereas anything that reduces
   emission (a pre-rewriter link, the rewriter element itself, an
   advert blackhole) makes the sequenced stream legitimately shorter
   than the workload and may only be faulted in a run configured for
   degradation (loss off, totals untracked).  Second, the profile
   picked per seed selects which families are drawn: [Lossy] plans
   destroy and corrupt frames that tracked totals will re-fetch or
   abandon; [Degrading] plans may additionally push the scenario into
   unsequenced (degraded) emission. *)

type profile = Lossy | Degrading

let profile_label = function Lossy -> "lossy" | Degrading -> "degrading"

type universe = {
  horizon : Units.Time.t;
  flap_links : string list;
  degrade_links : string list;
  partitions : string list list;
  corrupt_links : string list;
  restart_elements : string list;
  degrading_flaps : string list;
  degrading_degrades : string list;
  degrading_elements : string list;
  controls : string list;
}

let empty_universe =
  {
    horizon = Units.Time.ms 1.;
    flap_links = [];
    degrade_links = [];
    partitions = [];
    corrupt_links = [];
    restart_elements = [];
    degrading_flaps = [];
    degrading_degrades = [];
    degrading_elements = [];
    controls = [];
  }

type config = {
  max_shapes : int;
  min_window : Units.Time.t;
  degrading_weight : float;
  min_degrade_factor : float;
  max_corrupt_probability : float;
  max_corrupt_bits : int;
}

let default_config =
  {
    max_shapes = 4;
    min_window = Units.Time.us 50.;
    degrading_weight = 0.25;
    min_degrade_factor = 0.02;
    max_corrupt_probability = 0.01;
    (* A single bit flip always perturbs the ones'-complement header
       checksum; multi-bit flips can cancel in the 16-bit columns and
       slip through as silent corruption, which is a different (and so
       far unmodelled) threat than the storm this samples. *)
    max_corrupt_bits = 1;
  }

type family = Flap | Brownout | Cut | Storm | Bounce | Blackout

(* Candidate pools under a profile.  Emission-reducing subjects join
   only the degrading pools; the advert blackhole and the corruption
   storm are exclusive to degrading and lossy respectively (corruption
   needs the checksummed, totals-tracked path to be detected, and a
   blackhole exists to force degradation). *)
let pools u profile =
  let degrading l = match profile with Degrading -> l | Lossy -> [] in
  let flaps = u.flap_links @ degrading u.degrading_flaps in
  let degrades = u.degrade_links @ degrading u.degrading_degrades in
  let bounces = u.restart_elements @ degrading u.degrading_elements in
  let corrupts = match profile with Lossy -> u.corrupt_links | Degrading -> [] in
  let controls = degrading u.controls in
  (flaps, degrades, bounces, corrupts, controls)

let generate ?(config = default_config) u ~seed =
  let horizon = Units.Time.to_ns u.horizon in
  let min_w = Units.Time.to_ns config.min_window in
  if horizon <= min_w then
    invalid_arg "Fault.Generator: horizon shorter than the minimum window";
  if config.max_shapes < 1 then
    invalid_arg "Fault.Generator: max_shapes must be positive";
  let degrading_possible =
    u.degrading_flaps <> [] || u.degrading_degrades <> []
    || u.degrading_elements <> [] || u.controls <> []
  in
  (* Same-instant collisions between independently drawn windows are
     rejected by [Plan.make]; re-derive the whole plan from a stepped
     seed rather than nudging events, so the accepted plan is still a
     pure function of (seed, universe, config). *)
  let rec attempt k =
    let rng =
      Rng.create
        ~seed:(Int64.add seed (Int64.mul 0x9E3779B97F4A7C15L (Int64.of_int k)))
    in
    let profile =
      if degrading_possible && Rng.float rng < config.degrading_weight then
        Degrading
      else Lossy
    in
    let flaps, degrades, bounces, corrupts, controls = pools u profile in
    let families =
      List.concat
        [
          (if flaps <> [] then [ Flap ] else []);
          (if degrades <> [] then [ Brownout ] else []);
          (if u.partitions <> [] then [ Cut ] else []);
          (if corrupts <> [] then [ Storm ] else []);
          (if bounces <> [] then [ Bounce ] else []);
          (if controls <> [] then [ Blackout ] else []);
        ]
    in
    if families = [] then
      invalid_arg "Fault.Generator: universe offers no fault family";
    let families = Array.of_list families in
    let pick_from list = List.nth list (Rng.int rng ~bound:(List.length list)) in
    let window () =
      let t0 = Rng.int_in_range rng ~lo:0 ~hi:(horizon - min_w) in
      let hi = Stdlib.min horizon (t0 + Stdlib.max min_w (horizon / 2)) in
      let t1 = Rng.int_in_range rng ~lo:(t0 + min_w) ~hi in
      (Units.Time.ns t0, Units.Time.ns t1)
    in
    let events = ref [] in
    let emit at action = events := Plan.event ~at action :: !events in
    let shapes = 1 + Rng.int rng ~bound:config.max_shapes in
    (* In a lossy (totals-tracked) run at most one buffer may lose its
       retransmission memory: overlapping fail windows could leave no
       live buffer, which degrades emission — legal only when the run
       is configured for it. *)
    let bounce_budget =
      ref (match profile with Lossy -> 1 | Degrading -> max_int)
    in
    for _ = 1 to shapes do
      match Rng.pick rng families with
      | Flap ->
          let link = pick_from flaps in
          let t0, t1 = window () in
          emit t0 (Plan.Link_down link);
          emit t1 (Plan.Link_up link)
      | Brownout ->
          let link = pick_from degrades in
          let factor =
            Rng.float_in_range rng ~lo:config.min_degrade_factor ~hi:1.
          in
          let t0, t1 = window () in
          emit t0 (Plan.Degrade_rate { link; factor });
          emit t1 (Plan.Restore_rate link)
      | Cut ->
          let links = pick_from u.partitions in
          let t0, t1 = window () in
          emit t0 (Plan.Partition links);
          emit t1 (Plan.Heal links)
      | Storm ->
          let link = pick_from corrupts in
          let probability =
            Rng.float_in_range rng
              ~lo:(config.max_corrupt_probability /. 20.)
              ~hi:config.max_corrupt_probability
          in
          let bits = 1 + Rng.int rng ~bound:config.max_corrupt_bits in
          let t0, t1 = window () in
          emit t0 (Plan.Corrupt_headers { link; probability; bits });
          emit t1 (Plan.Stop_corrupting link)
      | Bounce when !bounce_budget > 0 ->
          decr bounce_budget;
          let element = pick_from bounces in
          let t0, t1 = window () in
          emit t0 (Plan.Fail_element element);
          emit t1 (Plan.Restart_element element)
      | Bounce -> ()
      | Blackout ->
          let control = pick_from controls in
          let t0, t1 = window () in
          emit t0 (Plan.Blackhole_adverts control);
          emit t1 (Plan.Unblackhole_adverts control)
    done;
    match Plan.make (List.rev !events) with
    | plan -> (profile, plan)
    | exception Invalid_argument _ when k < 32 -> attempt (k + 1)
  in
  attempt 0
