open Mmt_util

type action =
  | Link_down of string
  | Link_up of string
  | Partition of string list
  | Heal of string list
  | Degrade_rate of { link : string; factor : float }
  | Restore_rate of string
  | Fail_element of string
  | Restart_element of string
  | Blackhole_adverts of string
  | Unblackhole_adverts of string
  | Corrupt_headers of { link : string; probability : float; bits : int }
  | Stop_corrupting of string

type event = { at : Units.Time.t; action : action }
type t = event list

let empty = []
let event ~at action = { at; action }

let validate_action = function
  | Degrade_rate { link; factor } ->
      (* NaN compares false against both bounds, so test validity
         directly rather than rejecting the two out-of-range cases. *)
      if not (factor > 0. && factor <= 1.) then
        invalid_arg
          (Printf.sprintf "Fault.Plan: degrade factor %g for %s outside (0, 1]"
             factor link)
  | Corrupt_headers { link; probability; bits } ->
      if not (probability >= 0. && probability <= 1.) then
        invalid_arg
          (Printf.sprintf
             "Fault.Plan: corruption probability %g for %s outside [0, 1]"
             probability link);
      if bits < 1 then
        invalid_arg
          (Printf.sprintf "Fault.Plan: %d bit flips for %s (need >= 1)" bits
             link)
  | Link_down _ | Link_up _ | Partition _ | Heal _ | Restore_rate _
  | Fail_element _ | Restart_element _ | Blackhole_adverts _
  | Unblackhole_adverts _ | Stop_corrupting _ ->
      ()

(* Subjects an action acts on, each tagged with the fault family and a
   polarity: [true] opens a fault (down / degrade / fail / blackhole /
   corrupt), [false] closes one.  Two same-instant actions of equal
   polarity on one subject are idempotent duplicates and are accepted —
   the stable sort makes their order, and hence the run, deterministic.
   Opposite polarities at the same instant have no meaningful outcome
   (which side wins would be an artifact of authoring order), so [make]
   rejects them. *)
let polarities = function
  | Link_down l -> [ ("link", l, true) ]
  | Link_up l -> [ ("link", l, false) ]
  | Partition ls -> List.map (fun l -> ("link", l, true)) ls
  | Heal ls -> List.map (fun l -> ("link", l, false)) ls
  | Degrade_rate { link; _ } -> [ ("rate", link, true) ]
  | Restore_rate l -> [ ("rate", l, false) ]
  | Fail_element e -> [ ("element", e, true) ]
  | Restart_element e -> [ ("element", e, false) ]
  | Blackhole_adverts c -> [ ("adverts", c, true) ]
  | Unblackhole_adverts c -> [ ("adverts", c, false) ]
  | Corrupt_headers { link; _ } -> [ ("corruption", link, true) ]
  | Stop_corrupting l -> [ ("corruption", l, false) ]

let reject_conflicts events =
  let seen = Hashtbl.create 16 in
  List.iter
    (fun e ->
      List.iter
        (fun (family, subject, opens) ->
          let key = (Units.Time.to_ns e.at, family, subject) in
          match Hashtbl.find_opt seen key with
          | Some prev when prev <> opens ->
              invalid_arg
                (Printf.sprintf
                   "Fault.Plan: conflicting same-instant %s actions on %s at %s"
                   family subject
                   (Units.Time.to_string e.at))
          | Some _ -> ()
          | None -> Hashtbl.add seen key opens)
        (polarities e.action))
    events

(* Events are ordered by time; the stable sort preserves authoring
   order among same-instant events, so a plan is a deterministic
   script, not a set. *)
let make events =
  List.iter (fun e -> validate_action e.action) events;
  reject_conflicts events;
  List.stable_sort (fun a b -> Units.Time.compare a.at b.at) events

let events t = t
let is_empty = function [] -> true | _ -> false
let length = List.length

let describe_action = function
  | Link_down link -> Printf.sprintf "link-down %s" link
  | Link_up link -> Printf.sprintf "link-up %s" link
  | Partition links -> Printf.sprintf "partition {%s}" (String.concat ", " links)
  | Heal links -> Printf.sprintf "heal {%s}" (String.concat ", " links)
  | Degrade_rate { link; factor } ->
      Printf.sprintf "degrade %s to %gx" link factor
  | Restore_rate link -> Printf.sprintf "restore-rate %s" link
  | Fail_element name -> Printf.sprintf "fail %s" name
  | Restart_element name -> Printf.sprintf "restart %s" name
  | Blackhole_adverts name -> Printf.sprintf "blackhole-adverts %s" name
  | Unblackhole_adverts name -> Printf.sprintf "unblackhole-adverts %s" name
  | Corrupt_headers { link; probability; bits } ->
      Printf.sprintf "corrupt %s p=%g bits=%d" link probability bits
  | Stop_corrupting link -> Printf.sprintf "stop-corrupting %s" link

let describe t =
  String.concat "; "
    (List.map
       (fun e ->
         Printf.sprintf "%s %s" (Units.Time.to_string e.at)
           (describe_action e.action))
       t)
