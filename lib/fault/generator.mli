(** Seeded fault-plan fuzzing: random-but-valid {!Plan.t} values.

    A generated plan is a bounded composition of fault {e shapes} —
    matched open/close pairs (link flap, partition + heal, rate
    brown-out + restore, element fail + restart, advert blackhole +
    unblackhole, corruption storm + stop) whose windows close before
    the universe's {!universe.horizon}.  Every draw comes from one
    splitmix stream seeded by the trial seed, so the plan is a pure
    function of [(seed, universe, config)]: a seed in a regression
    corpus names its plan forever.

    The horizon is the well-formedness keystone: scenarios detect
    fault-destroyed frames by later arrivals on the same sequenced
    stream, so every fault must end while the workload still has
    enough emission left to flush detection through (in practice the
    horizon is ~0.7–0.8 of the emission span, {e not} of the run cap).

    Two profiles partition the shapes by what the target scenario can
    account for.  {!Lossy} plans only destroy, delay or corrupt frames
    {e after} sequencing — safe under tracked delivery totals, which
    is also why corruption is lossy-only (it needs the checksummed
    path to be detected) and why at most one element bounce is drawn
    (no live retransmission buffer would degrade emission).
    {!Degrading} plans may additionally reduce or degrade emission
    itself (pre-rewriter faults, rewriter fail-stop, advert
    blackholes) and must run against a scenario configured for it:
    random loss off, delivery totals untracked. *)

open Mmt_util

type profile = Lossy | Degrading

val profile_label : profile -> string
(** ["lossy"] / ["degrading"] — stable report vocabulary. *)

type universe = {
  horizon : Units.Time.t;
      (** exclusive upper bound for every generated event time *)
  flap_links : string list;  (** safe to flap under tracked totals *)
  degrade_links : string list;  (** safe to brown-out in either profile *)
  partitions : string list list;  (** candidate cuts, taken down whole *)
  corrupt_links : string list;
      (** checksum-verified data links; lossy profile only *)
  restart_elements : string list;
      (** fail/restart subjects whose loss is recoverable (at most one
          bounce per lossy plan) *)
  degrading_flaps : string list;
      (** links whose outage reduces emission; degrading profile only *)
  degrading_degrades : string list;
      (** links whose brown-out can drop pre-sequencing traffic;
          degrading profile only *)
  degrading_elements : string list;
      (** emission-reducing elements (e.g. the ingress rewriter);
          degrading profile only *)
  controls : string list;
      (** control planes whose adverts may be blackholed; degrading
          profile only *)
}

val empty_universe : universe
(** No names, 1 ms horizon — a base for [{ empty_universe with ... }]. *)

type config = {
  max_shapes : int;  (** 1..max_shapes shapes per plan *)
  min_window : Units.Time.t;  (** shortest open-to-close window *)
  degrading_weight : float;
      (** probability of the degrading profile, when the universe
          offers degrading subjects *)
  min_degrade_factor : float;  (** brown-outs sample \[min, 1\] *)
  max_corrupt_probability : float;
  max_corrupt_bits : int;
      (** default 1: a single flip always breaks the ones'-complement
          checksum, whereas multi-bit flips can cancel and slip
          through undetected *)
}

val default_config : config

val generate : ?config:config -> universe -> seed:int64 -> profile * Plan.t
(** Derive the plan named by [seed].  Deterministic: equal arguments
    yield equal plans, byte for byte.  Same-instant window collisions
    (rejected by {!Plan.make}) are resolved by re-deriving from a
    deterministically stepped seed, never by mutation.
    @raise Invalid_argument if the universe offers no fault family or
    the horizon is shorter than the minimum window. *)
