(** Deterministic greedy shrinking of violating fault plans.

    Reduces a counterexample toward a locally minimal one by repeated
    re-execution: drop single events (orphaned closers are no-ops, so
    matched pairs vanish in two steps), halve event times toward zero
    (shortening windows and advancing faults), and weaken parameters
    (brown-out factor toward 1, corruption bits then probability
    down).  Moves are tried in a fixed order and the first accepted
    one restarts the pass, so the result is a pure function of the
    input plan and the oracle — replaying a shrink replays the exact
    move sequence, making [seed + shrunk plan] a committable
    regression artifact.

    Local minimality: when [run] returns without exhausting its
    budget, no single remaining move preserves the violation. *)

type result = {
  plan : Plan.t;  (** the reduced counterexample *)
  steps : int;  (** accepted reductions *)
  attempts : int;  (** oracle executions spent *)
}

val run :
  ?max_attempts:int -> violating:(Plan.t -> bool) -> Plan.t -> result
(** [run ~violating plan] shrinks [plan] under the re-execution oracle
    [violating] (which must be deterministic — same plan, same
    verdict).  If [plan] itself does not violate, it is returned
    unchanged with [steps = 0].  [max_attempts] (default 1000) bounds
    oracle calls; on exhaustion the smallest accepted plan so far is
    returned. *)
