open Mmt_util

(* Campaigns: N generated plans executed against one target, every
   trial checked against the delivery invariants plus the termination
   watchdog, folded into one deterministic report.

   The target is a closure bundle rather than a functor over pilot or
   facility scenarios: this library sits below both, so each scenario
   hands its own executor in.  Trials share no mutable state — every
   execution builds a fresh engine and topology — which is what lets
   the sweep parallelise over the shared domain pool with the same
   slot-per-index discipline the experiment registry uses: work is
   handed out through an atomic counter, results land in their trial's
   slot, and the report is rendered from the slots in index order, so
   the bytes are identical at any [--jobs]. *)

type exec = {
  outcome : Invariant.outcome;
  violations : string list;
  faults_applied : int;
  events : int;
}

type target = {
  name : string;
  universe : Generator.universe;
  execute : Generator.profile -> Plan.t -> exec;
}

type trial = {
  index : int;
  seed : int64;
  profile : Generator.profile;
  plan : Plan.t;
  exec : exec;
}

type report = {
  target : string;
  trials : int;
  campaign_seed : int64;
  generator : Generator.config;
  results : trial array;
}

let trial_seeds ~seed ~trials =
  let master = Rng.create ~seed in
  Array.init trials (fun _ -> Rng.int64 master)

let run ?(jobs = 1) ?(config = Generator.default_config) target ~trials ~seed =
  if trials < 1 then invalid_arg "Fault.Campaign: trials must be positive";
  let seeds = trial_seeds ~seed ~trials in
  let one index =
    let trial_seed = seeds.(index) in
    let profile, plan =
      Generator.generate ~config target.universe ~seed:trial_seed
    in
    let exec = target.execute profile plan in
    { index; seed = trial_seed; profile; plan; exec }
  in
  let results =
    if jobs <= 1 || trials = 1 then Array.init trials one
    else begin
      let slots = Array.make trials None in
      let next = Atomic.make 0 in
      let rec worker () =
        let i = Atomic.fetch_and_add next 1 in
        if i < trials then begin
          slots.(i) <- Some (one i);
          worker ()
        end
      in
      Task_pool.run (Task_pool.shared ()) ~extra:(jobs - 1) worker;
      Array.map Option.get slots
    end
  in
  { target = target.name; trials; campaign_seed = seed; generator = config; results }

let violating report =
  Array.to_list report.results
  |> List.filter (fun t -> t.exec.violations <> [])

let all_ok report = violating report = []

(* Stable fault-mix vocabulary: one label per Plan constructor, in
   declaration order. *)
let action_label = function
  | Plan.Link_down _ -> "link-down"
  | Plan.Link_up _ -> "link-up"
  | Plan.Partition _ -> "partition"
  | Plan.Heal _ -> "heal"
  | Plan.Degrade_rate _ -> "degrade-rate"
  | Plan.Restore_rate _ -> "restore-rate"
  | Plan.Fail_element _ -> "fail-element"
  | Plan.Restart_element _ -> "restart-element"
  | Plan.Blackhole_adverts _ -> "blackhole-adverts"
  | Plan.Unblackhole_adverts _ -> "unblackhole-adverts"
  | Plan.Corrupt_headers _ -> "corrupt-headers"
  | Plan.Stop_corrupting _ -> "stop-corrupting"

let action_labels =
  [
    "link-down"; "link-up"; "partition"; "heal"; "degrade-rate";
    "restore-rate"; "fail-element"; "restart-element"; "blackhole-adverts";
    "unblackhole-adverts"; "corrupt-headers"; "stop-corrupting";
  ]

(* Violation taxonomy: bucket by which invariant broke, not by the
   violation string's counters, so the histogram is stable across
   trials that differ only in magnitude. *)
let classify_violation v =
  let contains needle =
    let n = String.length needle and h = String.length v in
    let rec go i = i + n <= h && (String.sub v i n = needle || go (i + 1)) in
    go 0
  in
  if contains "did not terminate" then "watchdog"
  else if contains "duplicate" then "duplicate-delivery"
  else if contains "limbo" then "limbo"
  else if contains "accounting mismatch" then "accounting-mismatch"
  else "other"

let violation_classes =
  [ "watchdog"; "duplicate-delivery"; "limbo"; "accounting-mismatch"; "other" ]

let render ?(verbose = false) report =
  let buf = Buffer.create 4096 in
  Printf.bprintf buf "campaign '%s': %d trials, seed 0x%LX\n" report.target
    report.trials report.campaign_seed;
  let lossy = ref 0 and degrading = ref 0 in
  let ok = ref 0 and bad = ref 0 in
  let faults = ref 0 and events = ref 0 in
  let mix = Hashtbl.create 16 in
  let taxonomy = Hashtbl.create 8 in
  let bump table key =
    Hashtbl.replace table key
      (1 + Option.value ~default:0 (Hashtbl.find_opt table key))
  in
  Array.iter
    (fun t ->
      (match t.profile with
      | Generator.Lossy -> incr lossy
      | Generator.Degrading -> incr degrading);
      if t.exec.violations = [] then incr ok else incr bad;
      faults := !faults + t.exec.faults_applied;
      events := !events + t.exec.events;
      List.iter
        (fun (e : Plan.event) -> bump mix (action_label e.Plan.action))
        (Plan.events t.plan);
      List.iter (fun v -> bump taxonomy (classify_violation v)) t.exec.violations)
    report.results;
  Printf.bprintf buf "verdicts: %d ok, %d violating\n" !ok !bad;
  Printf.bprintf buf "profiles: %d lossy, %d degrading\n" !lossy !degrading;
  Printf.bprintf buf "faults applied: %d, engine events: %d\n" !faults !events;
  let histogram table labels =
    labels
    |> List.filter_map (fun label ->
           match Hashtbl.find_opt table label with
           | Some n -> Some (Printf.sprintf "%s %d" label n)
           | None -> None)
    |> String.concat ", "
  in
  Printf.bprintf buf "fault mix: %s\n"
    (match histogram mix action_labels with "" -> "(empty plans)" | h -> h);
  Printf.bprintf buf "violation taxonomy: %s\n"
    (match histogram taxonomy violation_classes with
    | "" -> "(none)"
    | h -> h);
  if verbose then
    Array.iter
      (fun t ->
        Printf.bprintf buf "trial %4d seed 0x%016LX %-9s %s: %s\n" t.index
          t.seed
          (Generator.profile_label t.profile)
          (if t.exec.violations = [] then "ok" else "VIOLATING")
          (Invariant.to_string t.exec.outcome))
      report.results;
  Array.iter
    (fun t ->
      if t.exec.violations <> [] then begin
        Printf.bprintf buf "VIOLATION trial %d seed 0x%016LX [%s]\n" t.index
          t.seed
          (Generator.profile_label t.profile);
        Printf.bprintf buf "  plan: %s\n" (Plan.describe t.plan);
        Printf.bprintf buf "  invariant: %s\n" (Invariant.to_string t.exec.outcome);
        List.iter (fun v -> Printf.bprintf buf "  violated: %s\n" v)
          t.exec.violations
      end)
    report.results;
  Buffer.contents buf
