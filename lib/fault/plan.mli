(** Declarative, deterministic fault plans.

    A plan is a time-ordered script of faults to inject into a
    simulated run: link flaps and partitions, rate brown-outs,
    element fail-stop and restart, control-plane blackholes and
    on-the-wire header bit flips.  The same plan armed against the
    same seeded topology replays the same faults at the same instants
    — chaos here is scripted, never sampled from wall-clock state —
    so every chaos experiment is exactly reproducible. *)

open Mmt_util

type action =
  | Link_down of string  (** the named link destroys traffic *)
  | Link_up of string
  | Partition of string list  (** take a whole cut of links down *)
  | Heal of string list
  | Degrade_rate of { link : string; factor : float }
      (** brown-out: scale the link rate by [factor] in (0, 1] *)
  | Restore_rate of string
  | Fail_element of string
      (** fail-stop a registered element (e.g. a buffer host) *)
  | Restart_element of string
      (** restart it with state loss — what that means is defined by
          the scenario's registered restart handler *)
  | Blackhole_adverts of string
      (** drop a named control plane's advertisements so its soft
          state genuinely expires *)
  | Unblackhole_adverts of string
  | Corrupt_headers of { link : string; probability : float; bits : int }
      (** per-packet probability of flipping [bits] random bits inside
          the MMT header on the wire *)
  | Stop_corrupting of string

type event = { at : Units.Time.t; action : action }
type t

val empty : t
val event : at:Units.Time.t -> action -> event

val make : event list -> t
(** Order by time (stable: same-instant events keep authoring order).

    Validation is deterministic and total: a degrade factor must lie
    in (0, 1] and a corruption probability in [0, 1] — NaN is rejected
    by both, not silently accepted — and [bits] must be >= 1.
    Same-instant {e duplicate} actions on one subject (two
    [Link_down]s of the same link, say) are accepted: they are
    idempotent and the stable order keeps the script deterministic.
    Same-instant {e conflicting} actions on one subject — an opener
    and its closer, e.g. [Link_down l] with [Link_up l], or
    [Fail_element e] with [Restart_element e] — are rejected: whichever
    side "won" would be an artifact of authoring order, so no valid
    plan may express the race.
    @raise Invalid_argument on any of the rejections above. *)

val events : t -> event list
val is_empty : t -> bool
val length : t -> int
val describe_action : action -> string
val describe : t -> string
