(* End-of-run accounting for a sequenced stream under faults.

   The ledger watches the application-facing deliver callback; the
   final check reconciles it against what the rewriter emitted and
   what the receiver abandoned.  [resurrected] compensates for frames
   the receiver abandoned and a straggling retransmission later
   delivered anyway: they ended in a state, just two of them — the
   receiver reports them so the books still balance. *)

type ledger = {
  seen : (int, int) Hashtbl.t;
  mutable delivered : int;
  mutable duplicates : int;
}

let ledger () = { seen = Hashtbl.create 4096; delivered = 0; duplicates = 0 }

let delivered ledger ~seq =
  match Hashtbl.find_opt ledger.seen seq with
  | None ->
      Hashtbl.replace ledger.seen seq 1;
      ledger.delivered <- ledger.delivered + 1
  | Some n ->
      Hashtbl.replace ledger.seen seq (n + 1);
      ledger.duplicates <- ledger.duplicates + 1

type outcome = {
  emitted : int;
  delivered : int;
  duplicates : int;
  abandoned : int;
  resurrected : int;
  pending : int;
  terminated : bool;
}

let outcome ~emitted ~abandoned ~resurrected ~pending ~terminated
    (ledger : ledger) =
  {
    emitted;
    delivered = ledger.delivered;
    duplicates = ledger.duplicates;
    abandoned;
    resurrected;
    pending;
    terminated;
  }

(* One stable formatter for every consumer (chaos CLI, campaign
   reports, tests): key=value pairs in a fixed order, booleans as
   true/false, no padding — greppable and diffable. *)
let to_string o =
  Printf.sprintf
    "emitted=%d delivered=%d duplicates=%d abandoned=%d resurrected=%d \
     pending=%d terminated=%b"
    o.emitted o.delivered o.duplicates o.abandoned o.resurrected o.pending
    o.terminated

let to_json o =
  Printf.sprintf
    "{\"emitted\":%d,\"delivered\":%d,\"duplicates\":%d,\"abandoned\":%d,\
     \"resurrected\":%d,\"pending\":%d,\"terminated\":%b}"
    o.emitted o.delivered o.duplicates o.abandoned o.resurrected o.pending
    o.terminated

let check o =
  let violations = ref [] in
  let violation fmt =
    Printf.ksprintf (fun s -> violations := s :: !violations) fmt
  in
  if not o.terminated then violation "run did not terminate";
  if o.duplicates > 0 then
    violation "%d duplicate application deliveries" o.duplicates;
  if o.pending > 0 then
    violation "%d sequenced frames in limbo (neither delivered nor abandoned)"
      o.pending;
  let accounted = o.delivered + o.abandoned - o.resurrected in
  if accounted <> o.emitted then
    violation
      "accounting mismatch: emitted %d but delivered %d + abandoned %d - \
       resurrected %d = %d"
      o.emitted o.delivered o.abandoned o.resurrected accounted;
  List.rev !violations

let render_violations = function
  | [] -> "invariants: all hold\n"
  | violations ->
      String.concat ""
        (List.map (fun v -> "INVARIANT VIOLATED: " ^ v ^ "\n") violations)
