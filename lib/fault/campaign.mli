(** Chaos campaigns: N seeded plans against one target, one
    deterministic report.

    A campaign derives per-trial seeds from the campaign seed, feeds
    each through {!Generator.generate} against the target's name
    universe, executes the plan, and checks the {!Invariant} ledger
    plus the run-termination watchdog.  Trials are independent — every
    execution builds its own engine and topology — so the sweep runs
    on the shared {!Mmt_util.Task_pool} with work handed out by an
    atomic index and results stored slot-per-trial: the rendered
    report is byte-identical sequential or at any [jobs] count.

    Targets are closure bundles supplied by the scenario layers (the
    pilot's {!Mmt_pilot.Chaos_run.campaign_target}, the facility's
    harness): this library sits below both and never names them. *)

type exec = {
  outcome : Invariant.outcome;
  violations : string list;  (** empty iff every invariant held *)
  faults_applied : int;
  events : int;  (** engine events the trial processed *)
}

type target = {
  name : string;  (** report label, e.g. ["pilot"] *)
  universe : Generator.universe;
  execute : Generator.profile -> Plan.t -> exec;
      (** run one trial; must be deterministic and must not share
          mutable state across calls (trials may run on sibling
          domains) *)
}

type trial = {
  index : int;
  seed : int64;  (** replayable: regenerates the plan *)
  profile : Generator.profile;
  plan : Plan.t;
  exec : exec;
}

type report = {
  target : string;
  trials : int;
  campaign_seed : int64;
  generator : Generator.config;
  results : trial array;  (** indexed by trial, independent of jobs *)
}

val trial_seeds : seed:int64 -> trials:int -> int64 array
(** The per-trial seed schedule — drawn up front from one splitmix
    stream, so trial [i]'s seed is independent of execution order. *)

val run :
  ?jobs:int ->
  ?config:Generator.config ->
  target ->
  trials:int ->
  seed:int64 ->
  report
(** Execute the campaign.  [jobs <= 1] stays on the calling domain and
    never touches the task pool (safe to nest inside another pool
    sweep, e.g. the experiment registry's); [jobs > 1] uses the shared
    pool and must not be nested. *)

val violating : report -> trial list
(** Trials with at least one violation, in trial order. *)

val all_ok : report -> bool

val render : ?verbose:bool -> report -> string
(** The campaign report: verdict counts, profile and fault-mix
    histograms, violation taxonomy, and full detail (seed, plan,
    {!Invariant.to_string}) for every violating trial.  [verbose]
    additionally lists every trial's one-line summary.  Byte-stable:
    depends only on the report value. *)
