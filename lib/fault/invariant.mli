(** Invariant checking for sequenced streams under faults.

    Whatever the fault plan does, three properties must survive:

    - every sequenced frame ends in exactly one terminal state —
      delivered, lost after exhausted retries, or abandoned as
      unrecoverable;
    - no frame is delivered to the application twice;
    - the run terminates.

    A {!ledger} wraps the application's deliver callback and tracks
    per-sequence delivery counts; {!check} reconciles it with the
    emission and abandonment counters at the end of the run and
    returns the list of violated invariants (empty = all hold). *)

type ledger

val ledger : unit -> ledger

val delivered : ledger -> seq:int -> unit
(** Record one application delivery of sequence [seq]. *)

type outcome = {
  emitted : int;  (** sequence numbers assigned by the rewriter *)
  delivered : int;  (** unique sequences the application received *)
  duplicates : int;  (** repeat deliveries (any is a violation) *)
  abandoned : int;  (** receiver gave up: lost + unrecoverable *)
  resurrected : int;
      (** abandoned frames a straggler retransmission delivered anyway *)
  pending : int;  (** still unresolved at end of run (violation) *)
  terminated : bool;
}

val outcome :
  emitted:int ->
  abandoned:int ->
  resurrected:int ->
  pending:int ->
  terminated:bool ->
  ledger ->
  outcome

val to_string : outcome -> string
(** Stable one-line machine-readable summary:
    ["emitted=N delivered=N duplicates=N abandoned=N resurrected=N
    pending=N terminated=B"].  The chaos CLI and the campaign report
    share this formatter — the rendering is part of the deterministic
    report surface, so its shape must never depend on the run. *)

val to_json : outcome -> string
(** The same summary as a single-line JSON object. *)

val check : outcome -> string list
(** Violated invariants, human-readable; empty when all hold. *)

val render_violations : string list -> string
