(** Arms a {!Plan} against a live simulated topology.

    The injector resolves link names against the topology, dispatches
    element fail/restart and control-plane blackhole actions to
    handlers the scenario registers, and schedules every plan event on
    the engine.  Header corruption draws from one dedicated splitmix
    stream owned by the injector, so identical (plan, seed) pairs
    flip identical bits and the scenario's own random streams are
    never perturbed — determinism by construction.

    Fault applications are counted, kept in an in-order log, and
    mirrored into the run's {!Mmt_sim.Trace} when one is attached. *)

open Mmt_util

type t

val create :
  ?trace:Mmt_sim.Trace.t ->
  ?seed:int64 ->
  engine:Mmt_sim.Engine.t ->
  links:Mmt_sim.Link.t list ->
  unit ->
  t

val of_topology : ?trace:Mmt_sim.Trace.t -> ?seed:int64 -> Mmt_sim.Topology.t -> t
(** Convenience: take engine and links straight from a topology
    (its trace, if any, must still be passed explicitly). *)

val register_element :
  t -> string -> fail:(unit -> unit) -> restart:(unit -> unit) -> unit
(** Define what fail-stop and restart-with-state-loss mean for a named
    element; {!Plan.Fail_element} / {!Plan.Restart_element} dispatch
    here. *)

val register_control : t -> string -> (bool -> unit) -> unit
(** Register a control-plane blackhole switch for
    {!Plan.Blackhole_adverts} / {!Plan.Unblackhole_adverts}. *)

val arm : t -> Plan.t -> unit
(** Schedule every event of the plan.  Validates all referenced link,
    element and control names first.
    @raise Invalid_argument on an unknown name. *)

val applied : t -> int
(** Fault events applied so far. *)

val log : t -> (Units.Time.t * string) list
(** Applied faults, oldest first. *)

val render_log : t -> string
