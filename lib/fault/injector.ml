open Mmt_util

type subject = { fail : unit -> unit; restart : unit -> unit }

type t = {
  engine : Mmt_sim.Engine.t;
  rng : Rng.t;
  trace : Mmt_sim.Trace.t option;
  links : (string, Mmt_sim.Link.t) Hashtbl.t;
  saved_rates : (string, Units.Rate.t) Hashtbl.t;
  elements : (string, subject) Hashtbl.t;
  controls : (string, bool -> unit) Hashtbl.t;
  mutable applied : int;
  mutable log : (Units.Time.t * string) list;
}

let create ?trace ?(seed = 0xFA17L) ~engine ~links () =
  let table = Hashtbl.create 16 in
  List.iter
    (fun link -> Hashtbl.replace table (Mmt_sim.Link.name link) link)
    links;
  {
    engine;
    rng = Rng.create ~seed;
    trace;
    links = table;
    saved_rates = Hashtbl.create 8;
    elements = Hashtbl.create 8;
    controls = Hashtbl.create 4;
    applied = 0;
    log = [];
  }

let of_topology ?trace ?seed topo =
  create ?trace ?seed
    ~engine:(Mmt_sim.Topology.engine topo)
    ~links:(Mmt_sim.Topology.links topo)
    ()

let register_element t name ~fail ~restart =
  Hashtbl.replace t.elements name { fail; restart }

let register_control t name set = Hashtbl.replace t.controls name set

let link_exn t name =
  match Hashtbl.find_opt t.links name with
  | Some link -> link
  | None -> invalid_arg ("Fault.Injector: unknown link " ^ name)

let element_exn t name =
  match Hashtbl.find_opt t.elements name with
  | Some subject -> subject
  | None -> invalid_arg ("Fault.Injector: unregistered element " ^ name)

let control_exn t name =
  match Hashtbl.find_opt t.controls name with
  | Some set -> set
  | None -> invalid_arg ("Fault.Injector: unregistered control plane " ^ name)

(* Arming validates every referenced name up front, so a misspelled
   plan fails at t=0, not halfway into a long run. *)
let validate t action =
  match (action : Plan.action) with
  | Plan.Link_down name
  | Plan.Link_up name
  | Plan.Restore_rate name
  | Plan.Stop_corrupting name ->
      ignore (link_exn t name)
  | Plan.Degrade_rate { link; _ } | Plan.Corrupt_headers { link; _ } ->
      ignore (link_exn t link)
  | Plan.Partition names | Plan.Heal names ->
      List.iter (fun name -> ignore (link_exn t name)) names
  | Plan.Fail_element name | Plan.Restart_element name ->
      ignore (element_exn t name)
  | Plan.Blackhole_adverts name | Plan.Unblackhole_adverts name ->
      ignore (control_exn t name : bool -> unit)

(* One independent splitmix stream drives all bit flips; links draw
   nothing, so arming a corruptor never perturbs the loss-model or
   workload streams of the underlying scenario. *)
let corruptor t ~probability ~bits packet =
  if Rng.float t.rng >= probability then false
  else begin
    let frame = Mmt_sim.Packet.frame packet in
    let off, span =
      match Mmt.Encap.locate frame with
      | Ok (_encap, off) -> (
          match Mmt.Header.View.of_frame ~off frame with
          | Ok view -> (off, Mmt.Header.View.size view)
          | Error _ -> (off, Bytes.length frame - off))
      | Error _ -> (0, Bytes.length frame)
    in
    if span <= 0 then false
    else begin
      for _ = 1 to bits do
        let byte = off + Rng.int t.rng ~bound:span in
        let bit = Rng.int t.rng ~bound:8 in
        Bytes.set frame byte
          (Char.chr (Char.code (Bytes.get frame byte) lxor (1 lsl bit)))
      done;
      true
    end
  end

let note t action =
  let now = Mmt_sim.Engine.now t.engine in
  let what = Plan.describe_action action in
  t.applied <- t.applied + 1;
  t.log <- (now, what) :: t.log;
  Option.iter
    (fun trace -> Mmt_sim.Trace.record_fault trace ~at:now ~what)
    t.trace

let apply t action =
  (match (action : Plan.action) with
  | Plan.Link_down name -> Mmt_sim.Link.set_up (link_exn t name) false
  | Plan.Link_up name -> Mmt_sim.Link.set_up (link_exn t name) true
  | Plan.Partition names ->
      List.iter (fun name -> Mmt_sim.Link.set_up (link_exn t name) false) names
  | Plan.Heal names ->
      List.iter (fun name -> Mmt_sim.Link.set_up (link_exn t name) true) names
  | Plan.Degrade_rate { link = name; factor } ->
      let link = link_exn t name in
      let original =
        match Hashtbl.find_opt t.saved_rates name with
        | Some rate -> rate
        | None ->
            let rate = Mmt_sim.Link.rate link in
            Hashtbl.replace t.saved_rates name rate;
            rate
      in
      Mmt_sim.Link.set_rate link (Units.Rate.scale original factor)
  | Plan.Restore_rate name ->
      Option.iter
        (Mmt_sim.Link.set_rate (link_exn t name))
        (Hashtbl.find_opt t.saved_rates name)
  | Plan.Fail_element name -> (element_exn t name).fail ()
  | Plan.Restart_element name -> (element_exn t name).restart ()
  | Plan.Blackhole_adverts name -> (control_exn t name) true
  | Plan.Unblackhole_adverts name -> (control_exn t name) false
  | Plan.Corrupt_headers { link = name; probability; bits } ->
      Mmt_sim.Link.set_tamper (link_exn t name)
        (Some (corruptor t ~probability ~bits))
  | Plan.Stop_corrupting name -> Mmt_sim.Link.set_tamper (link_exn t name) None);
  note t action

let arm t plan =
  List.iter
    (fun (e : Plan.event) ->
      validate t e.Plan.action;
      ignore
        (Mmt_sim.Engine.schedule t.engine ~at:e.Plan.at (fun () ->
             apply t e.Plan.action)))
    (Plan.events plan)

let applied t = t.applied
let log t = List.rev t.log

let render_log t =
  String.concat ""
    (List.map
       (fun (at, what) ->
         Printf.sprintf "%-12s FAULT %s\n" (Units.Time.to_string at) what)
       (log t))
