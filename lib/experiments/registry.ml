type entry = { id : string; title : string; run : unit -> string * bool }

let all =
  [
    { id = "E-T1"; title = "Table 1: DAQ rates"; run = Table1.run };
    { id = "E-F1"; title = "Fig. 1: staged dataflow"; run = Fig1.run };
    { id = "E-F2"; title = "Fig. 2 / § 4.1: today's transport"; run = Fig2.run };
    { id = "E-F3"; title = "Fig. 3: multi-modal goal scenario"; run = Fig3.run };
    { id = "E-F4"; title = "Fig. 4 / § 5.4: pilot study"; run = Fig4.run };
    { id = "E-A1"; title = "ablation: buffer placement"; run = Ablations.buffer_placement };
    { id = "E-A2"; title = "ablation: loss sweep TCP vs MMT"; run = Ablations.loss_sweep };
    { id = "E-A4"; title = "ablation: deadline budget"; run = Ablations.deadline_sweep };
    { id = "E-A5"; title = "ablation: deadline-aware AQM"; run = Ablations.priority_queue };
    {
      id = "E-A6";
      title = "ablation: INT latency localization";
      run = Ablations.int_localization;
    };
    {
      id = "E-X1";
      title = "§ 6.1: resource discovery + failover";
      run = Challenge6.discovery_failover;
    };
    {
      id = "E-X2";
      title = "§ 6.2: in-network alert generation";
      run = Challenge6.payload_alerts;
    };
    { id = "E-R1"; title = "robustness: chaos series"; run = Chaos.run };
    {
      id = "E-R2";
      title = "robustness: randomized chaos campaigns";
      run = Chaos_campaign.run;
    };
    {
      id = "E-F5";
      title = "facility: fan-in flow-count sweep (10 -> ~1000)";
      run = Facility.run;
    };
  ]

let normalize id =
  let lower = String.lowercase_ascii id in
  if String.length lower >= 2 && String.sub lower 0 2 = "e-" then lower
  else "e-" ^ lower

let find id =
  let target = normalize id in
  List.find_opt (fun entry -> String.lowercase_ascii entry.id = target) all

(* More domains than cores is strictly worse here: the experiments are
   allocation-heavy, so oversubscribed domains thrash the minor heap
   (measured 3x slower than sequential with 4 domains on 1 core).
   Requests are therefore capped at [Domain.recommended_domain_count],
   and [jobs = 0] asks for exactly that cap. *)
let effective_jobs jobs =
  let n = List.length all in
  let cap = Mmt_util.Task_pool.recommended_jobs () in
  let requested = if jobs <= 0 then cap else min jobs cap in
  max 1 (min requested n)

(* Every experiment builds its own engine, topology and seeded Rng, and
   only returns a report string — no experiment touches shared mutable
   state — so the sweep parallelises over domains with no change to any
   result.  Work is handed out through an atomic index; results land in
   a slot-per-entry array, preserving registry order regardless of
   completion order.  Domains come from the shared {!Mmt_util.Task_pool},
   so repeated sweeps (the bench runs several) pay domain spawn-up
   once, not per sweep. *)
let run_collect ?(jobs = 1) () =
  let entries = Array.of_list all in
  let n = Array.length entries in
  let results = Array.make n None in
  let timed i =
    let entry = entries.(i) in
    let started = Unix.gettimeofday () in
    let output, ok = entry.run () in
    let wall_s = Unix.gettimeofday () -. started in
    results.(i) <- Some (entry, (output, ok), wall_s)
  in
  let jobs = effective_jobs jobs in
  if jobs = 1 then
    for i = 0 to n - 1 do
      timed i
    done
  else begin
    let next = Atomic.make 0 in
    let rec worker () =
      let i = Atomic.fetch_and_add next 1 in
      if i < n then begin
        timed i;
        worker ()
      end
    in
    Mmt_util.Task_pool.run (Mmt_util.Task_pool.shared ()) ~extra:(jobs - 1)
      worker
  end;
  Array.to_list results
  |> List.map (function
       | Some r -> r
       | None -> assert false (* every index was claimed *))

let print_result (entry, (output, ok), _wall_s) =
  Printf.printf "### %s — %s\n\n%!" entry.id entry.title;
  print_string output;
  if not ok then Printf.printf "!! %s: some shape checks FAILED\n" entry.id;
  print_newline ()

let run_all ?(jobs = 1) () =
  let jobs = effective_jobs jobs in
  if jobs <= 1 then
    (* Sequential: print each report as it completes. *)
    List.fold_left
      (fun all_ok entry ->
        Printf.printf "### %s — %s\n\n%!" entry.id entry.title;
        let output, ok = entry.run () in
        print_string output;
        if not ok then Printf.printf "!! %s: some shape checks FAILED\n" entry.id;
        print_newline ();
        all_ok && ok)
      true all
  else begin
    (* Parallel: collect first, then print in registry order, so the
       rendered output is byte-identical to the sequential sweep. *)
    let results = run_collect ~jobs () in
    List.iter print_result results;
    List.for_all (fun (_, (_, ok), _) -> ok) results
  end
