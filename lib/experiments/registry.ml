type entry = { id : string; title : string; run : unit -> string * bool }

let all =
  [
    { id = "E-T1"; title = "Table 1: DAQ rates"; run = Table1.run };
    { id = "E-F1"; title = "Fig. 1: staged dataflow"; run = Fig1.run };
    { id = "E-F2"; title = "Fig. 2 / § 4.1: today's transport"; run = Fig2.run };
    { id = "E-F3"; title = "Fig. 3: multi-modal goal scenario"; run = Fig3.run };
    { id = "E-F4"; title = "Fig. 4 / § 5.4: pilot study"; run = Fig4.run };
    { id = "E-A1"; title = "ablation: buffer placement"; run = Ablations.buffer_placement };
    { id = "E-A2"; title = "ablation: loss sweep TCP vs MMT"; run = Ablations.loss_sweep };
    { id = "E-A4"; title = "ablation: deadline budget"; run = Ablations.deadline_sweep };
    { id = "E-A5"; title = "ablation: deadline-aware AQM"; run = Ablations.priority_queue };
    {
      id = "E-A6";
      title = "ablation: INT latency localization";
      run = Ablations.int_localization;
    };
    {
      id = "E-X1";
      title = "§ 6.1: resource discovery + failover";
      run = Challenge6.discovery_failover;
    };
    {
      id = "E-X2";
      title = "§ 6.2: in-network alert generation";
      run = Challenge6.payload_alerts;
    };
  ]

let normalize id =
  let lower = String.lowercase_ascii id in
  if String.length lower >= 2 && String.sub lower 0 2 = "e-" then lower
  else "e-" ^ lower

let find id =
  let target = normalize id in
  List.find_opt (fun entry -> String.lowercase_ascii entry.id = target) all

let run_all () =
  List.fold_left
    (fun all_ok entry ->
      Printf.printf "### %s — %s\n\n%!" entry.id entry.title;
      let output, ok = entry.run () in
      print_string output;
      if not ok then Printf.printf "!! %s: some shape checks FAILED\n" entry.id;
      print_newline ();
      all_ok && ok)
    true all
