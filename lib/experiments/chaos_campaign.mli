(** E-R2 — randomized chaos campaigns (robustness).

    Seeded fault-plan fuzzing ({!Mmt_fault.Generator}) against the
    pilot failover topology and the facility fan-in scenario: a small
    fixed-seed campaign per target, every trial checked against the
    delivery invariants and the termination watchdog, plus a
    byte-determinism replay of the pilot campaign.  The full-scale
    standing campaign runs from [shapeshift campaign] and CI. *)

val pilot_trials : int

val facility_trials : int

val campaign_seed : int64

val run : unit -> string * bool
