(** Ablation studies for the design choices DESIGN.md calls out. *)

val buffer_placement : unit -> string * bool
(** E-A1: retransmission-buffer position sweep along the WAN path.
    Expected shape: worst-case (recovered-packet) latency falls roughly
    linearly as the buffer moves toward the destination. *)

val loss_sweep : unit -> string * bool
(** E-A2: loss-rate sweep, tuned TCP vs multi-modal transport on the
    same path and transfer.  Expected shape: TCP flow completion time
    degrades sharply with loss (congestion control reacts to corruption
    loss); the multi-modal transport stays near the lossless baseline
    because recovery is local and there is no window collapse. *)

val deadline_sweep : unit -> string * bool
(** E-A4: deadline-budget sweep.  Expected shape: the late fraction
    falls from 100 % to 0 as the budget crosses the path latency. *)

val priority_queue : unit -> string * bool
(** E-A5: deadline-aware queueing vs drop-tail under bulk congestion
    (§ 5.3: deadlines are "an input to active queue management").
    Expected shape: with EDF service the deadline-bearing alert stream
    stops being late while bulk throughput is unharmed. *)

val int_localization : unit -> string * bool
(** E-A6: in-band telemetry latency localization, Fabric_virtual vs
    Physical_100gbe.  Expected shape: the per-hop INT decomposition
    telescopes exactly to the covered span on both profiles; device
    residency carries the hardware-class difference (software switch
    slower than Tofino2 by more than an order of magnitude) while the
    propagation-dominated path segments stay profile-invariant. *)
