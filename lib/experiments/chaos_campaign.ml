open Mmt_util

(* E-R2: randomized chaos campaigns.

   Where E-R1 runs seven hand-written fault plans, E-R2 turns the
   generator loose: seeded random-but-valid plans against the pilot
   (both profiles) and the facility (lossy), every trial checked
   against the delivery-invariant ledger and the termination watchdog.
   The campaign here is sized for the experiment sweep — the standing
   acceptance campaign (1000+ pilot, 200+ facility trials) runs from
   the CLI and in CI's campaign-smoke job.

   Campaigns are executed with [jobs = 1]: the registry sweep already
   parallelises over experiments on the shared task pool, which is not
   reentrant.  Determinism across job counts is covered by the test
   suite, which runs campaigns on the pool directly. *)

let pilot_trials = 24
let facility_trials = 6
let campaign_seed = 0xCA40_5EEDL

let run () =
  let pilot = Mmt_pilot.Chaos_run.campaign_target () in
  let facility = Mmt_facility.Chaos.campaign_target () in
  let reports =
    List.map
      (fun (target, trials) ->
        Mmt_fault.Campaign.run target ~trials ~seed:campaign_seed)
      [ (pilot, pilot_trials); (facility, facility_trials) ]
  in
  let table =
    Table.create ~title:"E-R2: randomized chaos campaigns (seeded fuzzing)"
      ~columns:
        [
          ("target", Table.Left);
          ("trials", Table.Right);
          ("ok", Table.Right);
          ("violating", Table.Right);
          ("fault events", Table.Right);
          ("engine events", Table.Right);
        ]
      ()
  in
  let totals =
    List.map
      (fun (r : Mmt_fault.Campaign.report) ->
        let bad = List.length (Mmt_fault.Campaign.violating r) in
        let faults =
          Array.fold_left
            (fun acc (t : Mmt_fault.Campaign.trial) ->
              acc + t.exec.Mmt_fault.Campaign.faults_applied)
            0 r.results
        and events =
          Array.fold_left
            (fun acc (t : Mmt_fault.Campaign.trial) ->
              acc + t.exec.Mmt_fault.Campaign.events)
            0 r.results
        in
        Table.add_row table
          [
            r.Mmt_fault.Campaign.target;
            string_of_int r.trials;
            string_of_int (r.trials - bad);
            string_of_int bad;
            string_of_int faults;
            string_of_int events;
          ];
        (r, bad, faults))
      reports
  in
  let violating = List.fold_left (fun acc (_, bad, _) -> acc + bad) 0 totals in
  let faults = List.fold_left (fun acc (_, _, f) -> acc + f) 0 totals in
  let trials = pilot_trials + facility_trials in
  (* Byte-determinism: the same campaign seed must render the same
     report — this is what makes a corpus seed a name. *)
  let replay = Mmt_fault.Campaign.run pilot ~trials:pilot_trials ~seed:campaign_seed in
  let first_render =
    match reports with r :: _ -> Mmt_fault.Campaign.render r | [] -> ""
  in
  let deterministic = Mmt_fault.Campaign.render replay = first_render in
  let profiles_exercised =
    match reports with
    | r :: _ ->
        Array.exists
          (fun (t : Mmt_fault.Campaign.trial) ->
            t.profile = Mmt_fault.Generator.Degrading)
          r.results
        && Array.exists
             (fun (t : Mmt_fault.Campaign.trial) ->
               t.profile = Mmt_fault.Generator.Lossy)
             r.results
    | [] -> false
  in
  let rows =
    [
      Mmt_telemetry.Report.check ~metric:"invariants survive random chaos"
        ~expected:"every generated plan leaves the ledger clean"
        ~measured:
          (Printf.sprintf "%d violation(s) across %d trials (%d fault events)"
             violating trials faults)
        (violating = 0);
      Mmt_telemetry.Report.check ~metric:"campaigns actually inject"
        ~expected:"the fuzzer produces live fault schedules, not empty plans"
        ~measured:(Printf.sprintf "%d fault events applied" faults)
        (faults > trials);
      Mmt_telemetry.Report.check ~metric:"both profiles exercised"
        ~expected:"pilot trials split between lossy and degrading plans"
        ~measured:
          (match reports with
          | r :: _ ->
              let d =
                Array.fold_left
                  (fun acc (t : Mmt_fault.Campaign.trial) ->
                    if t.profile = Mmt_fault.Generator.Degrading then acc + 1
                    else acc)
                  0 r.results
              in
              Printf.sprintf "%d lossy / %d degrading" (pilot_trials - d) d
          | [] -> "no report")
        profiles_exercised;
      Mmt_telemetry.Report.check ~metric:"a seed names its campaign"
        ~expected:"same seed, same rendered report, byte for byte"
        ~measured:(if deterministic then "replay identical" else "replay DIVERGED")
        deterministic;
    ]
  in
  let report =
    {
      Mmt_telemetry.Report.id = "E-R2";
      title = "randomized chaos campaigns: seeded fault-plan fuzzing (robustness)";
      note =
        Some
          "Plans are pure functions of their trial seed; violating seeds \
           shrink to minimal counterexamples and land in test/chaos_corpus/.";
      rows;
    }
  in
  ( Table.render table ^ "\n" ^ Mmt_telemetry.Report.render report,
    Mmt_telemetry.Report.all_ok report )
