open Mmt_util
module Scenario = Mmt_facility.Scenario
module Sweep = Mmt_facility.Sweep
module Metrics = Mmt_facility.Metrics

(* The registry run keeps the emission window short: the sweep's
   shape (contention growing with flow count) is visible at 3 ms, and
   the full-window run stays available via `shapeshift facility`. *)
let default_base = { Scenario.default with Scenario.duration = Units.Time.ms 3. }
let default_points = Sweep.log_points ~lo:10 ~hi:1000 ()

let pct x = Printf.sprintf "%.2f%%" (100. *. x)

let report ?(jobs = 1) ?(shards = 1) ?(pooling = true) ?(fusing = true) ?gc
    ?(base = default_base) ?(points = default_points) () =
  let results = Sweep.run ~jobs ~shards ~pooling ~fusing ?gc ~base ~points () in
  let table =
    Table.create
      ~title:
        (Printf.sprintf
           "E-F5 facility sweep: wan %s, loss %.3g%%, window %s, seed %Ld"
           (Units.Rate.to_string base.Scenario.wan_rate)
           (base.Scenario.wan_loss *. 100.)
           (Units.Time.to_string base.Scenario.duration)
           base.Scenario.seed)
      ~columns:
        [
          ("flows", Table.Right);
          ("goodput", Table.Right);
          ("fairness", Table.Right);
          ("deadline", Table.Right);
          ("recovered", Table.Right);
          ("lost", Table.Right);
          ("retx HW", Table.Right);
          ("NAK HW", Table.Right);
          ("events", Table.Right);
        ]
      ()
  in
  List.iter
    (fun (flows, (r : Scenario.result)) ->
      let s = r.Scenario.summary in
      Table.add_row table
        [
          string_of_int flows;
          Units.Rate.to_string s.Metrics.goodput;
          Printf.sprintf "%.4f" s.Metrics.fairness;
          pct s.Metrics.deadline_hit_rate;
          string_of_int s.Metrics.recovered;
          string_of_int s.Metrics.lost;
          Printf.sprintf "%dKiB" (s.Metrics.retx_occupancy_hw / 1024);
          string_of_int s.Metrics.nak_state_hw;
          string_of_int r.Scenario.events;
        ])
    results;
  let first = List.hd results in
  let last = List.nth results (List.length results - 1) in
  let summary_of (_, (r : Scenario.result)) = r.Scenario.summary in
  let goodput r = Units.Rate.to_bps (summary_of r).Metrics.goodput in
  let total_gaps =
    List.fold_left
      (fun acc r ->
        acc + (summary_of r).Metrics.recovered + (summary_of r).Metrics.lost)
      0 results
  in
  let max_nak_hw =
    List.fold_left (fun acc r -> max acc (summary_of r).Metrics.nak_state_hw) 0 results
  in
  let rerun =
    Scenario.run ~pooling ~fusing { base with Scenario.flows = fst first }
  in
  let report =
    {
      Mmt_telemetry.Report.id = "E-F5";
      title = "facility fan-in: 10 -> ~1000 elephant flows over one shared WAN";
      note =
        Some
          (Printf.sprintf "per-flow nominal %s bulk / %s telemetry, fan-in degree %d, %d sinks"
             (Units.Rate.to_string base.Scenario.bulk_rate)
             (Units.Rate.to_string base.Scenario.telemetry_rate)
             base.Scenario.degree base.Scenario.sinks);
      rows =
        [
          Mmt_telemetry.Report.check ~metric:"aggregate goodput scales with fan-in"
            ~expected:"more elephants move more data (§ 2.1) until the WAN saturates"
            ~measured:
              (Printf.sprintf "%d flows: %s; %d flows: %s" (fst first)
                 (Units.Rate.to_string (summary_of first).Metrics.goodput)
                 (fst last)
                 (Units.Rate.to_string (summary_of last).Metrics.goodput))
            (goodput last > goodput first);
          Mmt_telemetry.Report.check ~metric:"goodput bounded by the shared WAN"
            ~expected:"never exceeds the bottleneck line rate"
            ~measured:
              (Printf.sprintf "max %s of %s"
                 (Units.Rate.to_string
                    (Units.Rate.bps
                       (List.fold_left (fun acc r -> Float.max acc (goodput r)) 0. results)))
                 (Units.Rate.to_string base.Scenario.wan_rate))
            (List.for_all
               (fun r -> goodput r <= Units.Rate.to_bps base.Scenario.wan_rate)
               results);
          Mmt_telemetry.Report.check ~metric:"fairness uncontended"
            ~expected:"Jain index ~1.0 when the WAN has headroom"
            ~measured:(Printf.sprintf "%.4f at %d flows" (summary_of first).Metrics.fairness (fst first))
            ((summary_of first).Metrics.fairness >= 0.99);
          Mmt_telemetry.Report.check ~metric:"recovery machinery exercised"
            ~expected:"loss opens gaps; NAKs and retx buffers close them (§ 5.3)"
            ~measured:
              (Printf.sprintf "%d gaps across the sweep, NAK-state high water %d"
                 total_gaps max_nak_hw)
            (total_gaps > 0 && max_nak_hw > 0);
          Mmt_telemetry.Report.check ~metric:"deterministic at fixed seed"
            ~expected:"re-running a point reproduces its summary exactly"
            ~measured:(Printf.sprintf "%d-flow point re-run" (fst first))
            (rerun.Scenario.summary = (snd first).Scenario.summary);
          Mmt_telemetry.Report.info ~metric:"deadline hit-rate, min -> max flows"
            ~measured:
              (Printf.sprintf "%s -> %s"
                 (pct (summary_of first).Metrics.deadline_hit_rate)
                 (pct (summary_of last).Metrics.deadline_hit_rate));
          Mmt_telemetry.Report.info ~metric:"retx-buffer byte high water (max flow)"
            ~measured:
              (Printf.sprintf "%d KiB at %d flows"
                 ((summary_of last).Metrics.retx_occupancy_hw / 1024)
                 (fst last));
        ];
    }
  in
  let ok = Mmt_telemetry.Report.all_ok report in
  (Table.render table ^ "\n\n" ^ Mmt_telemetry.Report.render report, ok)

let run () = report ()
