open Mmt_util

let buffer_placement () =
  let positions = [ 0.0; 0.25; 0.5; 0.75; 0.9 ] in
  let outcomes =
    List.map
      (fun position ->
        ( position,
          Mmt_pilot.Runners.Placement_run.run
            (Mmt_pilot.Runners.Placement_run.params ~buffer_position:position
               ~fragment_count:4000 ~loss:0.005 ()) ))
      positions
  in
  let table =
    Table.create ~title:"E-A1: buffer placement sweep (13 ms WAN RTT, 0.5% loss)"
      ~columns:
        [
          ("buffer position", Table.Right);
          ("theoretical recovery RTT", Table.Right);
          ("delivered", Table.Right);
          ("recovered", Table.Right);
          ("max latency", Table.Right);
          ("p99 latency", Table.Right);
        ]
      ()
  in
  List.iter
    (fun (position, (o : Mmt_pilot.Runners.Placement_run.outcome)) ->
      Table.add_row table
        [
          Printf.sprintf "%.0f%% of path" (position *. 100.);
          Units.Time.to_string o.Mmt_pilot.Runners.Placement_run.recovery_rtt;
          string_of_int o.Mmt_pilot.Runners.Placement_run.delivered;
          string_of_int o.Mmt_pilot.Runners.Placement_run.recovered;
          Printf.sprintf "%.2f ms" (o.Mmt_pilot.Runners.Placement_run.latency_max *. 1e3);
          Printf.sprintf "%.2f ms" (o.Mmt_pilot.Runners.Placement_run.latency_p99 *. 1e3);
        ])
    outcomes;
  let first = snd (List.hd outcomes) in
  let last = snd (List.nth outcomes (List.length outcomes - 1)) in
  let ok =
    last.Mmt_pilot.Runners.Placement_run.latency_max
    < first.Mmt_pilot.Runners.Placement_run.latency_max
    && List.for_all
         (fun (_, (o : Mmt_pilot.Runners.Placement_run.outcome)) ->
           o.Mmt_pilot.Runners.Placement_run.delivered = 4000)
         outcomes
  in
  let report =
    {
      Mmt_telemetry.Report.id = "E-A1";
      title = "buffer placement ablation";
      note = None;
      rows =
        [
          Mmt_telemetry.Report.check ~metric:"worst-case latency vs placement"
            ~expected:"shrinks as the buffer nears the destination (§ 1, § 5.1)"
            ~measured:
              (Printf.sprintf "max %.2f ms at source vs %.2f ms at 90%%"
                 (first.Mmt_pilot.Runners.Placement_run.latency_max *. 1e3)
                 (last.Mmt_pilot.Runners.Placement_run.latency_max *. 1e3))
            ok;
        ];
    }
  in
  ( Table.render table ^ "\n" ^ Mmt_telemetry.Report.render report,
    Mmt_telemetry.Report.all_ok report )

let loss_sweep () =
  let rate = Units.Rate.gbps 100. in
  let rtt = Units.Time.ms 13. in
  let bdp = Units.Rate.bytes_in rate rtt in
  let losses = [ 0.; 1e-4; 1e-3; 5e-3 ] in
  let tcp_fct ?algorithm loss =
    let config = Mmt_tcp.Connection.tuned_config ~bdp in
    let config =
      match algorithm with
      | Some algorithm -> { config with Mmt_tcp.Connection.algorithm }
      | None -> config
    in
    let o =
      Mmt_pilot.Runners.Tcp_run.run
        (Mmt_pilot.Runners.Tcp_run.params ~rate ~rtt ~loss
           ~transfer:(Units.Size.mib 256) ~config ())
    in
    Option.map Units.Time.to_float_s o.Mmt_pilot.Runners.Tcp_run.fct
  in
  let mmt_fct loss =
    let o =
      Mmt_pilot.Runners.Placement_run.run
        (Mmt_pilot.Runners.Placement_run.params ~rate ~rtt ~loss
           ~fragment_count:10_000 ~fragment_size:(Units.Size.bytes 7200) ())
    in
    Option.map Units.Time.to_float_s o.Mmt_pilot.Runners.Placement_run.fct
  in
  let rows_data =
    List.map
      (fun loss ->
        ( loss,
          tcp_fct loss,
          tcp_fct ~algorithm:Mmt_tcp.Congestion.Bbr loss,
          mmt_fct loss ))
      losses
  in
  let table =
    Table.create
      ~title:
        "E-A2: loss sweep — tuned Cubic vs BBR [73] (256 MiB) vs multi-modal          (10000 x 7200 B), same path"
      ~columns:
        [
          ("loss rate", Table.Right);
          ("Cubic FCT", Table.Right);
          ("BBR FCT", Table.Right);
          ("MMT FCT", Table.Right);
        ]
      ()
  in
  let show = function Some s -> Printf.sprintf "%.3f s" s | None -> "DNF" in
  List.iter
    (fun (loss, tcp, bbr, mmt) ->
      Table.add_row table [ Printf.sprintf "%g" loss; show tcp; show bbr; show mmt ])
    rows_data;
  let at loss select =
    match List.find_opt (fun (l, _, _, _) -> l = loss) rows_data with
    | Some row -> select row
    | None -> None
  in
  let ratio_at loss = at loss (fun (_, tcp, _, _) -> tcp) in
  let bbr_at loss = at loss (fun (_, _, bbr, _) -> bbr) in
  let mmt_at loss = at loss (fun (_, _, _, mmt) -> mmt) in
  let tcp_clean = ratio_at 0. in
  let tcp_lossy = ratio_at 5e-3 in
  let mmt_all = List.filter_map (fun (_, _, _, m) -> m) rows_data in
  (* The multi-modal transport pays a bounded, additive recovery cost
     (a few local recovery RTTs at the stream tail), never a
     multiplicative collapse. *)
  let mmt_extra_cost =
    match mmt_all with
    | [] -> infinity
    | xs -> List.fold_left Float.max 0. xs -. List.fold_left Float.min infinity xs
  in
  let tcp_degrades =
    match (tcp_clean, tcp_lossy) with
    | Some clean, Some lossy -> lossy > 3. *. clean
    | Some _, None -> true (* did not finish: maximal degradation *)
    | _ -> false
  in
  let report =
    {
      Mmt_telemetry.Report.id = "E-A2";
      title = "loss sweep: who tolerates corruption loss";
      note = None;
      rows =
        [
          Mmt_telemetry.Report.check ~metric:"TCP under corruption loss"
            ~expected:"FCT degrades sharply (window collapse, § 4.1)"
            ~measured:
              (Printf.sprintf "clean %s -> 0.5%% loss %s" (show tcp_clean) (show tcp_lossy))
            tcp_degrades;
          Mmt_telemetry.Report.check ~metric:"multi-modal under corruption loss"
            ~expected:"bounded additive recovery cost, no collapse (§ 5.1)"
            ~measured:
              (Printf.sprintf "FCT grows by at most %.0f ms across the sweep"
                 (mmt_extra_cost *. 1e3))
            (mmt_extra_cost < 0.12);
          (let ordering =
             match (ratio_at 1e-3, bbr_at 1e-3, mmt_at 1e-3) with
             | Some cubic, Some bbr, Some mmt -> bbr < cubic /. 10. && mmt < bbr
             | _ -> false
           in
           Mmt_telemetry.Report.check ~metric:"BBR sits between Cubic and MMT"
             ~expected:
               "model-based control tolerates loss [73], local recovery beats both"
             ~measured:
               (Printf.sprintf "at 0.1%% loss: Cubic %s, BBR %s, MMT %s"
                  (show (ratio_at 1e-3)) (show (bbr_at 1e-3)) (show (mmt_at 1e-3)))
             ordering);
        ];
    }
  in
  ( Table.render table ^ "\n" ^ Mmt_telemetry.Report.render report,
    Mmt_telemetry.Report.all_ok report )

let deadline_sweep () =
  let budgets_ms = [ 3.; 6.; 8.; 12.; 30. ] in
  let late_fraction budget_ms =
    let config =
      {
        Mmt_pilot.Pilot.default_config with
        Mmt_pilot.Pilot.fragment_count = 800;
        wan_loss = 0.;
        wan_corrupt = 0.;
        deadline_budget = Some (Units.Time.ms budget_ms);
        payload = Mmt_daq.Workload.Synthetic (Units.Size.bytes 1024);
      }
    in
    let pilot = Mmt_pilot.Pilot.build config in
    Mmt_pilot.Pilot.run pilot;
    let r = (Mmt_pilot.Pilot.results pilot).Mmt_pilot.Pilot.receiver in
    float_of_int r.Mmt.Receiver.late /. float_of_int (max 1 r.Mmt.Receiver.delivered)
  in
  let sweep = List.map (fun b -> (b, late_fraction b)) budgets_ms in
  let table =
    Table.create
      ~title:"E-A4: deadline budget sweep (13 ms WAN RTT, one-way ~6.5 ms)"
      ~columns:[ ("budget", Table.Right); ("late fraction", Table.Right) ]
      ()
  in
  List.iter
    (fun (b, f) ->
      Table.add_row table [ Printf.sprintf "%.0f ms" b; Printf.sprintf "%.1f%%" (f *. 100.) ])
    sweep;
  let monotone_non_increasing =
    let rec check = function
      | (_, a) :: ((_, b) :: _ as rest) -> a >= b -. 1e-9 && check rest
      | _ -> true
    in
    check sweep
  in
  let tight = snd (List.hd sweep) in
  let loose = snd (List.nth sweep (List.length sweep - 1)) in
  let report =
    {
      Mmt_telemetry.Report.id = "E-A4";
      title = "deadline budget ablation";
      note = None;
      rows =
        [
          Mmt_telemetry.Report.check ~metric:"late fraction vs budget"
            ~expected:"falls from ~100% to 0 as the budget crosses path latency (Req 3)"
            ~measured:
              (Printf.sprintf "%.0f%% at %g ms -> %.0f%% at %g ms%s" (tight *. 100.)
                 (List.hd budgets_ms) (loose *. 100.)
                 (List.nth budgets_ms (List.length budgets_ms - 1))
                 (if monotone_non_increasing then ", monotone" else ""))
            (tight > 0.99 && loose = 0. && monotone_non_increasing);
        ];
    }
  in
  ( Table.render table ^ "\n" ^ Mmt_telemetry.Report.render report,
    Mmt_telemetry.Report.all_ok report )

let priority_queue () =
  let run deadline_aware =
    Mmt_pilot.Runners.Priority_run.run
      (Mmt_pilot.Runners.Priority_run.params ~deadline_aware ())
  in
  let droptail = run false in
  let edf = run true in
  let table =
    Table.create
      ~title:
        "E-A5: alert stream sharing a congested 10 GbE hop with a 12 Gbps bulk burst"
      ~columns:
        [
          ("queue", Table.Left);
          ("alerts delivered", Table.Right);
          ("alerts late", Table.Right);
          ("alert p99 latency", Table.Right);
          ("bulk delivered", Table.Right);
        ]
      ()
  in
  let add name (o : Mmt_pilot.Runners.Priority_run.outcome) =
    Table.add_row table
      [
        name;
        string_of_int o.Mmt_pilot.Runners.Priority_run.alerts_delivered;
        string_of_int o.Mmt_pilot.Runners.Priority_run.alerts_late;
        Printf.sprintf "%.2f ms" (o.Mmt_pilot.Runners.Priority_run.alert_latency_p99 *. 1e3);
        string_of_int o.Mmt_pilot.Runners.Priority_run.bulk_delivered;
      ]
  in
  add "drop-tail" droptail;
  add "deadline-aware (EDF)" edf;
  let report =
    {
      Mmt_telemetry.Report.id = "E-A5";
      title = "deadline-aware AQM ablation";
      note = None;
      rows =
        [
          Mmt_telemetry.Report.check ~metric:"late alerts under congestion"
            ~expected:"EDF serves deadline-bearing packets first (§ 5.3)"
            ~measured:
              (Printf.sprintf "drop-tail: %d late; EDF: %d late"
                 droptail.Mmt_pilot.Runners.Priority_run.alerts_late
                 edf.Mmt_pilot.Runners.Priority_run.alerts_late)
            (droptail.Mmt_pilot.Runners.Priority_run.alerts_late > 0
            && edf.Mmt_pilot.Runners.Priority_run.alerts_late = 0);
          Mmt_telemetry.Report.check ~metric:"bulk stream unharmed"
            ~expected:"prioritization reorders, it does not starve"
            ~measured:
              (Printf.sprintf "bulk delivered %d vs %d"
                 edf.Mmt_pilot.Runners.Priority_run.bulk_delivered
                 droptail.Mmt_pilot.Runners.Priority_run.bulk_delivered)
            (edf.Mmt_pilot.Runners.Priority_run.bulk_delivered
            = droptail.Mmt_pilot.Runners.Priority_run.bulk_delivered);
        ];
    }
  in
  ( Table.render table ^ "\n" ^ Mmt_telemetry.Report.render report,
    Mmt_telemetry.Report.all_ok report )

let int_localization () =
  (* Run the identical lossless stream on both hardware profiles with
     in-band telemetry on, and let the INT decomposition localize where
     the latency difference actually lives: device residency (hardware
     class) vs path segments (propagation, identical RTT). *)
  let probe (profile : Mmt_pilot.Profile.t) =
    let config =
      {
        Mmt_pilot.Pilot.default_config with
        Mmt_pilot.Pilot.profile;
        fragment_count = 400;
        wan_loss = 0.;
        wan_corrupt = 0.;
        int_telemetry = true;
        payload = Mmt_daq.Workload.Synthetic (Units.Size.bytes 1024);
      }
    in
    let pilot = Mmt_pilot.Pilot.build config in
    Mmt_pilot.Pilot.run pilot;
    Option.get (Mmt_pilot.Pilot.int_collector pilot)
  in
  let fabric = probe Mmt_pilot.Profile.fabric_virtual in
  let physical = probe Mmt_pilot.Profile.physical_100gbe in
  let mean_ns = function
    | Some summary when Stats.Summary.count summary > 0 -> Stats.Summary.mean summary
    | _ -> nan
  in
  let show ns =
    if Float.is_nan ns then "-"
    else Units.Time.to_string (Units.Time.ns (int_of_float ns))
  in
  let components =
    [
      ( "dtn1 residency",
        (fun c -> mean_ns (Mmt_int.Collector.hop_residency c 1)) );
      ( "tofino2 residency",
        (fun c -> mean_ns (Mmt_int.Collector.hop_residency c 2)) );
      ( "segment dtn1 -> tofino2",
        (fun c -> mean_ns (Mmt_int.Collector.segment_latency c ~src:1 ~dst:2)) );
      ( "segment tofino2 -> dtn2",
        (fun c -> mean_ns (Mmt_int.Collector.segment_latency c ~src:2 ~dst:3)) );
      ( "covered end-to-end",
        (fun c -> mean_ns (Some (Mmt_int.Collector.e2e c))) );
    ]
  in
  let table =
    Table.create
      ~title:"E-A6: INT latency localization — fabric-virtual vs physical-100gbe"
      ~columns:
        [
          ("component (mean)", Table.Left);
          ("fabric-virtual", Table.Right);
          ("physical-100gbe", Table.Right);
          ("ratio", Table.Right);
        ]
      ()
  in
  List.iter
    (fun (name, f) ->
      let a = f fabric and b = f physical in
      Table.add_row table
        [ name; show a; show b; Printf.sprintf "%.1fx" (a /. b) ])
    components;
  let switch_ratio =
    mean_ns (Mmt_int.Collector.hop_residency fabric 2)
    /. mean_ns (Mmt_int.Collector.hop_residency physical 2)
  in
  let segment_invariant =
    List.for_all
      (fun (src, dst) ->
        let a = mean_ns (Mmt_int.Collector.segment_latency fabric ~src ~dst) in
        let b = mean_ns (Mmt_int.Collector.segment_latency physical ~src ~dst) in
        Float.abs (a -. b) /. b < 0.10)
      [ (1, 2); (2, 3) ]
  in
  let drift =
    max
      (Mmt_int.Collector.max_inconsistency_ns fabric)
      (Mmt_int.Collector.max_inconsistency_ns physical)
  in
  let report =
    {
      Mmt_telemetry.Report.id = "E-A6";
      title = "INT latency localization ablation";
      note = Some "lossless, 400 fragments per profile, same 13 ms WAN RTT";
      rows =
        [
          Mmt_telemetry.Report.check ~metric:"per-packet accounting closes"
            ~expected:"hop residencies + segment gaps telescope to the covered span"
            ~measured:(Printf.sprintf "max drift %dns across both profiles" drift)
            (drift <= 1);
          Mmt_telemetry.Report.check ~metric:"switch residency localizes hardware class"
            ~expected:"software switch slower than Tofino2 by >=10x (20 us vs 450 ns)"
            ~measured:(Printf.sprintf "%.1fx" switch_ratio)
            (switch_ratio >= 10.);
          Mmt_telemetry.Report.check ~metric:"path segments are profile-invariant"
            ~expected:"same WAN RTT, so segment means within 10%"
            ~measured:
              (Printf.sprintf "dtn1->tofino2 %s vs %s; tofino2->dtn2 %s vs %s"
                 (show (mean_ns (Mmt_int.Collector.segment_latency fabric ~src:1 ~dst:2)))
                 (show (mean_ns (Mmt_int.Collector.segment_latency physical ~src:1 ~dst:2)))
                 (show (mean_ns (Mmt_int.Collector.segment_latency fabric ~src:2 ~dst:3)))
                 (show (mean_ns (Mmt_int.Collector.segment_latency physical ~src:2 ~dst:3))))
            segment_invariant;
        ];
    }
  in
  ( Table.render table ^ "\n" ^ Mmt_telemetry.Report.render report,
    Mmt_telemetry.Report.all_ok report )
