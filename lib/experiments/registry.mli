(** Registry of every table/figure reproduction. *)

type entry = {
  id : string;  (** DESIGN.md experiment id, e.g. "E-F3" *)
  title : string;
  run : unit -> string * bool;
      (** rendered output and whether every shape check passed *)
}

val all : entry list
val find : string -> entry option
(** Case-insensitive lookup by id (with or without the "E-" prefix). *)

val effective_jobs : int -> int
(** The domain count a sweep actually uses for a requested job count:
    capped at [Domain.recommended_domain_count ()] (more domains than
    cores only contend for the minor heap) and at the number of
    experiments.  [0] means "the recommended count". *)

val run_collect :
  ?jobs:int -> unit -> (entry * (string * bool) * float) list
(** Run every experiment and return [(entry, (output, ok), wall_s)] in
    registry order.  With [jobs > 1] the sweep runs on
    [effective_jobs jobs] domains from the shared
    {!Mmt_util.Task_pool}; each experiment is a self-contained
    deterministic simulation (own engine, own seeded Rng), so results
    are identical to the sequential sweep regardless of scheduling.
    [jobs = 0] selects the machine's recommended count. *)

val run_all : ?jobs:int -> unit -> bool
(** Run every experiment, printing each report; [true] when every
    shape check in every experiment passed.  With [jobs > 1] the
    experiments run in parallel and the reports are printed afterwards
    in registry order — the output is byte-identical to [jobs = 1]. *)
