open Mmt_util

let feature_matrix () =
  let table =
    Table.create ~title:"Fig. 2 feature matrix: today's DAQ transport"
      ~columns:
        [
          ("segment", Table.Left);
          ("transport", Table.Left);
          ("flow control", Table.Left);
          ("congestion control", Table.Left);
          ("retransmission", Table.Left);
          ("age sensitivity", Table.Left);
          ("loss possible", Table.Left);
        ]
      ()
  in
  List.iter (Table.add_row table)
    [
      [ "DAQ network (1->2)"; "UDP / raw Ethernet"; "no"; "no"; "no"; "no"; "no (planned)" ];
      [ "DAQ->WAN (2->4)"; "tuned TCP"; "yes"; "yes"; "from source"; "no"; "corruption" ];
      [ "WAN->campus (4->5)"; "tuned TCP"; "yes"; "yes"; "from source"; "no"; "corruption" ];
    ];
  Table.render table

(* Single-stream throughput at three tuning levels (§ 4.1: ~30 Gbps
   production single stream, 55 Gbps tuned testbed, untuned defaults far
   below). *)
let rate = Units.Rate.gbps 100.
let rtt = Units.Time.ms 13.
let bdp = Units.Rate.bytes_in rate rtt

let autotuned_config =
  (* A general-purpose OS default: 16 MiB buffers, Cubic. *)
  {
    Mmt_tcp.Connection.default_config with
    Mmt_tcp.Connection.max_window = 16 * 1024 * 1024;
    algorithm = Mmt_tcp.Congestion.Cubic;
    min_rto = Units.Time.ms 20.;
  }

let single_stream config transfer =
  Mmt_pilot.Runners.Tcp_run.run
    (Mmt_pilot.Runners.Tcp_run.params ~rate ~rtt ~transfer ~config ())

let multi_stream ~streams ~per_stream_transfer =
  (* N tuned connections sharing one 100 GbE link, demuxed by port. *)
  let engine = Mmt_sim.Engine.create () in
  let topo = Mmt_sim.Topology.create ~engine () in
  let fresh_id () = Mmt_sim.Topology.fresh_packet_id topo in
  let a = Mmt_sim.Topology.add_node topo ~name:"src" in
  let b = Mmt_sim.Topology.add_node topo ~name:"dst" in
  let half = Units.Time.scale rtt 0.5 in
  let queue () =
    Mmt_sim.Queue_model.droptail
      ~capacity:(Units.Size.bytes (2 * Units.Size.to_bytes bdp))
      ()
  in
  let forward =
    Mmt_sim.Topology.connect topo ~src:a ~dst:b ~rate ~propagation:half
      ~queue:(queue ()) ()
  in
  let reverse =
    Mmt_sim.Topology.connect topo ~src:b ~dst:a ~rate ~propagation:half
      ~queue:(queue ()) ()
  in
  (* Per-stream windows sized so the aggregate fits the pipe. *)
  let per_stream_bdp = Units.Size.bytes (Units.Size.to_bytes bdp / streams) in
  let config = Mmt_tcp.Connection.tuned_config ~bdp:per_stream_bdp in
  let pairs =
    List.init streams (fun i ->
        let port = i + 1 in
        let sender =
          Mmt_tcp.Connection.create ~engine ~fresh_id ~config ~port
            ~tx:(Mmt_sim.Link.send forward) ()
        in
        let receiver =
          Mmt_tcp.Connection.create ~engine ~fresh_id ~config ~port
            ~tx:(Mmt_sim.Link.send reverse) ()
        in
        (sender, receiver))
  in
  Mmt_sim.Node.set_handler a (fun packet ->
      List.iter (fun (s, _) -> Mmt_tcp.Connection.on_packet s packet) pairs);
  Mmt_sim.Node.set_handler b (fun packet ->
      List.iter (fun (_, r) -> Mmt_tcp.Connection.on_packet r packet) pairs);
  List.iter
    (fun (sender, _) ->
      Mmt_tcp.Connection.write sender (Units.Size.to_bytes per_stream_transfer);
      Mmt_tcp.Connection.finish sender)
    pairs;
  Mmt_sim.Engine.run ~until:(Units.Time.seconds 120.) engine;
  let fcts =
    List.filter_map
      (fun (sender, _) ->
        (Mmt_tcp.Connection.stats sender).Mmt_tcp.Connection.completed_at)
      pairs
  in
  if List.length fcts < streams then None
  else
    let slowest = List.fold_left Units.Time.max Units.Time.zero fcts in
    let total_bytes = streams * Units.Size.to_bytes per_stream_transfer in
    Some (Units.Rate.of_size_per_time (Units.Size.bytes total_bytes) slowest)

let run () =
  let untuned =
    single_stream Mmt_tcp.Connection.default_config (Units.Size.mib 16)
  in
  let autotuned = single_stream autotuned_config (Units.Size.mib 256) in
  let dtn_tuned =
    single_stream (Mmt_tcp.Connection.tuned_config ~bdp) (Units.Size.gib 2)
  in
  let aggregate =
    multi_stream ~streams:4 ~per_stream_transfer:(Units.Size.mib 512)
  in
  (* HoL study: messages offered at 500 Mbps, far below what the tuned
     stream sustains, so any latency inflation is queueing behind a
     retransmission hole rather than slow-start backlog. *)
  let hol_params loss =
    Mmt_pilot.Runners.Tcp_run.params ~rate ~rtt ~loss
      ~transfer:(Units.Size.mib 64) ~message_size:(Units.Size.kib 64)
      ~offered:(Units.Rate.mbps 500.) ()
  in
  let hol_clean = Mmt_pilot.Runners.Tcp_run.run (hol_params 0.) in
  let hol_lossy = Mmt_pilot.Runners.Tcp_run.run (hol_params 0.001) in
  let udp = Mmt_pilot.Runners.Udp_run.run ~loss:0.001 ~datagrams:20_000 () in
  let gbps o =
    Units.Rate.to_gbps o.Mmt_pilot.Runners.Tcp_run.throughput
  in
  let rows =
    [
      Mmt_telemetry.Report.check ~metric:"untuned TCP single stream"
        ~expected:"defaults are far below link rate (§ 4.1)"
        ~measured:(Printf.sprintf "%.3f Gbps (64 KiB window, Reno)" (gbps untuned))
        (gbps untuned < 1.);
      Mmt_telemetry.Report.check ~metric:"autotuned TCP single stream"
        ~expected:"single-digit Gbps without operator tuning"
        ~measured:(Printf.sprintf "%.2f Gbps (16 MiB buffers, Cubic)" (gbps autotuned))
        (gbps autotuned > 1. && gbps autotuned < 15.);
      Mmt_telemetry.Report.check ~metric:"DTN-tuned TCP single stream"
        ~expected:"~30 Gbps production / 55 Gbps testbed [46, 66]"
        ~measured:
          (Printf.sprintf "%.1f Gbps (BDP windows, jumbo MSS, 2 GiB transfer)"
             (gbps dtn_tuned))
        (gbps dtn_tuned > 25.);
      (match aggregate with
      | Some rate ->
          Mmt_telemetry.Report.check ~metric:"4 tuned streams, one 100 GbE link"
            ~expected:"multiple streams approach line rate (~100 Gbps) [46]"
            ~measured:(Printf.sprintf "%.1f Gbps aggregate" (Units.Rate.to_gbps rate))
            (Units.Rate.to_gbps rate > Units.Rate.to_gbps dtn_tuned.Mmt_pilot.Runners.Tcp_run.throughput
            && Units.Rate.to_gbps rate > 40.)
      | None ->
          Mmt_telemetry.Report.check ~metric:"4 tuned streams"
            ~expected:"complete" ~measured:"did not complete" false);
      Mmt_telemetry.Report.check ~metric:"message p99 latency, clean path"
        ~expected:"about one-way latency (~6.5 ms)"
        ~measured:(Printf.sprintf "%.2f ms" (hol_clean.Mmt_pilot.Runners.Tcp_run.message_latency_p99 *. 1e3))
        (hol_clean.Mmt_pilot.Runners.Tcp_run.message_latency_p99 < 0.012);
      Mmt_telemetry.Report.check ~metric:"message max latency, 0.1% loss"
        ~expected:"head-of-line blocking inflates tail (§ 4.1 point 1)"
        ~measured:
          (Printf.sprintf "%.2f ms vs %.2f ms clean"
             (hol_lossy.Mmt_pilot.Runners.Tcp_run.message_latency_max *. 1e3)
             (hol_clean.Mmt_pilot.Runners.Tcp_run.message_latency_max *. 1e3))
        (hol_lossy.Mmt_pilot.Runners.Tcp_run.message_latency_max
        > 2. *. hol_clean.Mmt_pilot.Runners.Tcp_run.message_latency_max);
      Mmt_telemetry.Report.check ~metric:"UDP in the DAQ segment"
        ~expected:"loss is unrecoverable (no retransmission at stage 1)"
        ~measured:
          (Printf.sprintf "%d of %d datagrams lost forever"
             udp.Mmt_pilot.Runners.Udp_run.lost udp.Mmt_pilot.Runners.Udp_run.sent)
        (udp.Mmt_pilot.Runners.Udp_run.lost > 0);
    ]
  in
  let report =
    {
      Mmt_telemetry.Report.id = "E-F2";
      title = "Fig. 2 / § 4.1: today's transport (TCP/UDP baselines)";
      note = Some "100 GbE, 13 ms WAN RTT; throughputs include slow-start ramp";
      rows;
    }
  in
  ( feature_matrix () ^ "\n" ^ Mmt_telemetry.Report.render report,
    Mmt_telemetry.Report.all_ok report )
