(** E-F5: the facility-scale fan-in flow-count sweep.

    Sweeps the {!Mmt_facility.Scenario} generator from 10 to ~1000
    elephant flows over one shared WAN bottleneck and reports aggregate
    goodput, Jain fairness, deadline hit-rate, and transport soft-state
    high-water marks per point. *)

val report :
  ?jobs:int ->
  ?shards:int ->
  ?pooling:bool ->
  ?fusing:bool ->
  ?gc:Mmt_sim.Shard.gc_tuning ->
  ?base:Mmt_facility.Scenario.config ->
  ?points:int list ->
  unit ->
  string * bool
(** Render the sweep (optionally across domains — [jobs] parallelizes
    over sweep points, [shards] parallelizes within each point; output
    is byte-identical to the sequential run either way) plus the shape
    checks.  [pooling], [fusing] (both default on) and [gc] pass
    through to every
    point's {!Mmt_facility.Scenario.run} — neither changes a byte of
    output.  The determinism check re-runs the first point on a plain
    sequential engine, so a sharded sweep is cross-checked against
    sequential execution on every invocation. *)

val run : unit -> string * bool
(** The registry entry: [report] with the default configuration. *)
