(** E-R1 — chaos series (robustness).

    Runs the failover pilot topology under seven declarative fault
    plans ({!Mmt_fault.Plan}): none, active-buffer fail-stop, on-wire
    header bit-flips, a link flap, a rate brown-out, a control-plane
    advert blackhole, and the combined kill + flip plan.  Every run is
    checked against the delivery invariants; header corruption is
    caught by the real ones'-complement header checksum in-network and
    at the receiver. *)

val scenarios : (string * Mmt_pilot.Chaos_run.params) list
(** The fault plans of the series, in run order — also driven
    individually by [shapeshift chaos]. *)

val run : unit -> string * bool
