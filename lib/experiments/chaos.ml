open Mmt_util

(* E-R1: the chaos series.  One topology, one workload, seven fault
   plans — every run checked against the delivery invariants. *)

module C = Mmt_pilot.Chaos_run
module P = Mmt_fault.Plan

let ms = Units.Time.ms

let scenarios =
  [
    ("baseline (no faults)", C.params ());
    ( "kill active buffer",
      C.params
        ~plan:(P.make [ P.event ~at:(ms 5.) (P.Fail_element "buffer-a") ])
        () );
    ( "header bit-flips",
      C.params
        ~plan:
          (P.make
             [
               P.event ~at:Units.Time.zero
                 (P.Corrupt_headers
                    { link = "buffer-a->buffer-b"; probability = 0.005; bits = 1 });
               P.event ~at:Units.Time.zero
                 (P.Corrupt_headers
                    { link = "buffer-b->sink"; probability = 0.005; bits = 1 });
             ])
        () );
    ( "link flap",
      C.params
        ~plan:
          (P.make
             [
               P.event ~at:(ms 4.) (P.Link_down "buffer-b->sink");
               P.event ~at:(ms 5.) (P.Link_up "buffer-b->sink");
             ])
        () );
    ( "rate brown-out",
      C.params
        ~plan:
          (P.make
             [
               P.event ~at:(ms 4.)
                 (P.Degrade_rate { link = "buffer-b->sink"; factor = 0.05 });
               P.event ~at:(ms 8.) (P.Restore_rate "buffer-b->sink");
             ])
        () );
    ( "advert blackhole",
      C.params ~loss:0. ~advert_period:(ms 2.) ~track_total:false
        ~plan:
          (P.make
             [
               P.event ~at:(ms 1.) (P.Blackhole_adverts "control");
               P.event ~at:(ms 14.) (P.Unblackhole_adverts "control");
             ])
        () );
    ( "kill buffer + bit-flips",
      C.params
        ~plan:
          (P.make
             [
               P.event ~at:Units.Time.zero
                 (P.Corrupt_headers
                    { link = "buffer-b->sink"; probability = 0.005; bits = 1 });
               P.event ~at:(ms 5.) (P.Fail_element "buffer-a");
             ])
        () );
  ]

let detections (o : C.outcome) = o.C.verify_failed_innet + o.C.checksum_failed_rx

let run () =
  let outcomes = List.map (fun (name, params) -> (name, C.run params)) scenarios in
  let table =
    Table.create
      ~title:"E-R1: chaos series (6000 fragments, 0.2% loss unless noted)"
      ~columns:
        [
          ("scenario", Table.Left);
          ("emitted", Table.Right);
          ("delivered", Table.Right);
          ("degraded", Table.Right);
          ("recovered", Table.Right);
          ("lost", Table.Right);
          ("flipped", Table.Right);
          ("detected", Table.Right);
          ("fault drops", Table.Right);
          ("final buffer", Table.Right);
          ("violations", Table.Right);
        ]
      ()
  in
  List.iter
    (fun (name, (o : C.outcome)) ->
      Table.add_row table
        [
          name;
          string_of_int o.C.emitted;
          string_of_int o.C.delivered;
          string_of_int o.C.degraded_delivered;
          string_of_int o.C.recovered;
          string_of_int (o.C.lost + o.C.unrecoverable);
          string_of_int o.C.tampered;
          string_of_int (detections o);
          string_of_int o.C.fault_drops;
          o.C.final_buffer;
          string_of_int (List.length o.C.violations);
        ])
    outcomes;
  let find name = List.assoc name outcomes in
  let baseline = find "baseline (no faults)" in
  let killed = find "kill active buffer" in
  let flipped = find "header bit-flips" in
  let flapped = find "link flap" in
  let browned = find "rate brown-out" in
  let blackholed = find "advert blackhole" in
  let combined = find "kill buffer + bit-flips" in
  let total_violations =
    List.fold_left (fun acc (_, o) -> acc + List.length o.C.violations) 0 outcomes
  in
  let rows =
    [
      Mmt_telemetry.Report.check ~metric:"baseline is fault-free"
        ~expected:"empty plan injects nothing and loses nothing"
        ~measured:
          (Printf.sprintf "%d delivered, %d lost, %d faults applied"
             baseline.C.delivered baseline.C.lost baseline.C.faults_applied)
        (baseline.C.faults_applied = 0
        && baseline.C.tampered = 0 && baseline.C.fault_drops = 0
        && baseline.C.lost + baseline.C.unrecoverable = 0
        && baseline.C.final_buffer = "A");
      Mmt_telemetry.Report.check ~metric:"failover re-targets without operator"
        ~expected:"soft-state expiry + replan points recovery at buffer B"
        ~measured:
          (Printf.sprintf "final buffer %s after %d mode change(s), %d NAKs served by B"
             killed.C.final_buffer killed.C.mode_changes killed.C.naks_served_by_b)
        (killed.C.final_buffer = "B"
        && killed.C.mode_changes >= 1
        && killed.C.naks_served_by_b > 0
        && killed.C.lost + killed.C.unrecoverable = 0);
      Mmt_telemetry.Report.check ~metric:"bit-flips never poison state"
        ~expected:
          "tampered headers are dropped by checksum verification (or were \
           benign), then re-fetched"
        ~measured:
          (Printf.sprintf "%d flipped; %d caught in-network, %d at the receiver"
             flipped.C.tampered flipped.C.verify_failed_innet
             flipped.C.checksum_failed_rx)
        (flipped.C.tampered > 0
        && flipped.C.verify_failed_innet > 0
        && flipped.C.checksum_failed_rx > 0
        && flipped.C.delivered = 6000
        && flipped.C.lost + flipped.C.unrecoverable = 0);
      Mmt_telemetry.Report.check ~metric:"link flap is absorbed"
        ~expected:"frames destroyed by the downed link are re-fetched"
        ~measured:
          (Printf.sprintf "%d fault drops, %d recovered, %d lost"
             flapped.C.fault_drops flapped.C.recovered flapped.C.lost)
        (flapped.C.fault_drops > 0
        && flapped.C.recovered > 0
        && flapped.C.lost + flapped.C.unrecoverable = 0);
      Mmt_telemetry.Report.check ~metric:"rate brown-out only delays"
        ~expected:"a degraded link queues instead of losing"
        ~measured:
          (Printf.sprintf "%d delivered, %d lost, completion %s"
             browned.C.delivered browned.C.lost
             (match browned.C.completion with
             | Some t -> Units.Time.to_string t
             | None -> "none"))
        (browned.C.delivered = 6000
        && browned.C.lost + browned.C.unrecoverable = 0
        && browned.C.completion <> None);
      Mmt_telemetry.Report.check ~metric:"advert blackhole degrades gracefully"
        ~expected:
          "expired map strips frames to safe mode; service reconverges after"
        ~measured:
          (Printf.sprintf
             "%d degraded deliveries, %d sequenced; final buffer %s"
             blackholed.C.degraded_delivered blackholed.C.emitted
             blackholed.C.final_buffer)
        (blackholed.C.degraded_rewrites > 0
        && blackholed.C.degraded_delivered > 0
        && blackholed.C.delivered = 6000
        && blackholed.C.emitted = 6000 - blackholed.C.degraded_delivered
        && blackholed.C.final_buffer = "A");
      Mmt_telemetry.Report.check ~metric:"combined chaos survives"
        ~expected:
          "active buffer killed + headers flipped: detect, re-plan, recover"
        ~measured:
          (Printf.sprintf
             "%d flipped (%d detected), final buffer %s, %d lost"
             combined.C.tampered (detections combined) combined.C.final_buffer
             (combined.C.lost + combined.C.unrecoverable))
        (combined.C.tampered > 0
        && detections combined > 0
        && combined.C.final_buffer = "B"
        && combined.C.mode_changes >= 1
        && combined.C.lost + combined.C.unrecoverable = 0);
      Mmt_telemetry.Report.check ~metric:"delivery invariants hold everywhere"
        ~expected:
          "each sequenced frame ends delivered, lost or abandoned — exactly once"
        ~measured:
          (Printf.sprintf "%d violation(s) across %d scenarios" total_violations
             (List.length outcomes))
        (total_violations = 0);
    ]
  in
  let report =
    {
      Mmt_telemetry.Report.id = "E-R1";
      title = "chaos series: faults, corruption, degradation (robustness)";
      note =
        Some
          "Every scenario runs the failover topology under a declarative \
           fault plan; header corruption is detected by a real ones'-\n\
           complement checksum, not a simulator oracle.";
      rows;
    }
  in
  ( Table.render table ^ "\n" ^ Mmt_telemetry.Report.render report,
    Mmt_telemetry.Report.all_ok report )
