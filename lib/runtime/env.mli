(** Protocol runtime environment.

    Transport endpoints (both the multi-modal transport and the TCP/UDP
    baselines) are written against this capability record instead of a
    concrete topology: a clock and timers from the simulation engine,
    an IP-addressed send primitive, fresh packet identities, and — when
    the topology pools — the host's shard-local packet {!Mmt_sim.Ring}.
    The pilot layer constructs one per host from a
    {!Mmt_sim.Topology}. *)

open Mmt_util
open Mmt_frame

type t = {
  engine : Mmt_sim.Engine.t;
  local_ip : Addr.Ip.t;
  send : Addr.Ip.t -> Mmt_sim.Packet.t -> unit;
      (** Route a packet toward a destination IP and transmit it on the
          corresponding link.  Unroutable destinations are counted and
          dropped by the implementation. *)
  fresh_id : unit -> int;  (** Fresh packet identity. *)
  ring : Mmt_sim.Ring.t option;
      (** The shard-local packet ring: new packets take slots from it
          and consumed packets retire into it.  [None] (pooling off)
          falls back to plain heap packets everywhere. *)
}

val now : t -> Units.Time.t
val after : t -> Units.Time.t -> (unit -> unit) -> Mmt_sim.Engine.handle

val packet : t -> ?padding:int -> bytes -> Mmt_sim.Packet.t
(** Wrap a frame into a packet born now with a fresh identity — a ring
    slot when the environment has a ring, a floating record
    otherwise. *)

val packet_sized : t -> ?padding:int -> int -> Mmt_sim.Packet.t
(** A packet born now whose frame is a pool buffer of exactly the
    given length, contents unspecified: the caller must overwrite
    every byte.  The allocation-free way to build a frame in place. *)

val retire : t -> Mmt_sim.Packet.t -> unit
(** Declare the packet fully consumed: return its slot and frame to
    the ring.  No-op without a ring.  The caller must be the packet's
    last holder. *)

val pool : t -> Mmt_sim.Pool.t option
(** The ring's embedded frame pool, for copy paths that recycle bare
    frames. *)

val loopback :
  ?local_ip:Addr.Ip.t ->
  ?ring:Mmt_sim.Ring.t ->
  Mmt_sim.Engine.t ->
  t * Mmt_sim.Packet.t Queue.t
(** Test helper: an environment whose [send] appends to the returned
    queue regardless of destination. *)
