open Mmt_frame

type t = {
  engine : Mmt_sim.Engine.t;
  local_ip : Addr.Ip.t;
  send : Addr.Ip.t -> Mmt_sim.Packet.t -> unit;
  fresh_id : unit -> int;
  ring : Mmt_sim.Ring.t option;
}

let now t = Mmt_sim.Engine.now t.engine
let after t delay fn = Mmt_sim.Engine.schedule_after t.engine ~delay fn

let packet t ?(padding = 0) frame =
  match t.ring with
  | Some ring ->
      Mmt_sim.Ring.alloc ring ~padding ~id:(t.fresh_id ()) ~born:(now t) frame
  | None ->
      Mmt_sim.Packet.create ~padding ~id:(t.fresh_id ()) ~born:(now t) frame

let packet_sized t ?(padding = 0) len =
  match t.ring with
  | Some ring ->
      Mmt_sim.Ring.in_packet ring ~padding ~id:(t.fresh_id ()) ~born:(now t)
        len
  | None ->
      Mmt_sim.Packet.create ~padding ~id:(t.fresh_id ()) ~born:(now t)
        (Bytes.create len)

let retire t packet =
  match t.ring with
  | Some ring -> Mmt_sim.Ring.in_packet_done ring packet
  | None -> ()

let pool t = Option.map Mmt_sim.Ring.pool t.ring

let loopback ?(local_ip = Addr.Ip.of_octets 127 0 0 1) ?ring engine =
  let queue = Queue.create () in
  let counter = ref 0 in
  let fresh_id () =
    let id = !counter in
    incr counter;
    id
  in
  let send _dst pkt = Queue.push pkt queue in
  ({ engine; local_ip; send; fresh_id; ring }, queue)
