(** Deterministic domain-per-shard parallel execution.

    A topology is cut at its boundary links (propagation delay at or
    above {!Link.cut_threshold}); the components that remain connected
    by fast links are grouped onto N shards, each with its own
    {!Engine} running on its own domain.  Shards advance through
    conservative time windows of width w = the minimum propagation
    delay over cross-shard links: a window [T, T+w) is safe to execute
    without coordination because anything another shard transmits
    during it arrives at T+w or later.  In-flight packets cross
    between shards through per-cut-edge SPSC mailboxes
    ({!Mmt_util.Mailbox}), carrying the exact arrival time and
    boundary-lane key a sequential run would have used — so the merged
    execution is byte-identical to running the whole topology on one
    engine (see {!Engine.schedule_boundary} for the key construction).

    Construction is two-pass: {!build} first runs the caller's build
    function against a throwaway single-engine topology to learn the
    graph, partitions it, then runs the same build function again
    against per-shard engines.  When the graph yields fewer than two
    components (or [shards < 2]) it falls back to a plain sequential
    topology — same build function, no runner. *)

open Mmt_util

type t
(** A wired sharded runner: engines, cross-shard mailboxes, window. *)

val build :
  shards:int ->
  ?pool:(unit -> Pool.t) ->
  ?pooling:bool ->
  ?fusing:bool ->
  (Topology.t -> 'a) ->
  Topology.t * 'a * t option
(** [build ~shards build_fn] constructs the caller's topology for
    parallel execution.  [build_fn] must be deterministic and
    self-contained: it creates nodes and links through the topology it
    is given, attaches components to {!Topology.node_engine} of each
    node, and returns whatever handles the caller needs to read
    results later.  Pooling is on by default: every shard owns a
    packet {!Ring} (see {!Topology.create}); [pooling:false] opts out.
    [pool], when given, is a factory invoked once per shard so every
    domain recycles frames through its own pool — frames that cross a
    shard mailbox are detached from the source ring and later retired
    into the {e receiving} shard's pool, never the sender's.  Fusing
    (collapsing uncongested hops into single engine events, see
    {!Link.create}) is likewise on by default and applies only to
    intra-shard links — cut edges always use the boundary key lane —
    so a fused sharded run remains byte-identical to a fused
    sequential one; [fusing:false] opts out.

    Returns [(topo, result, runner)]; [runner] is [None] when the run
    fell back to sequential (fewer than two cut components, or
    [shards < 2]), in which case the caller drives
    [Topology.engine topo] directly as always. *)

type gc_tuning = {
  minor_heap_kb : int option;  (** Per-domain minor heap size, in KiB. *)
  space_overhead : int option;  (** Major-GC [space_overhead] percent. *)
}
(** GC parameters applied to every domain of a sharded run ([None]
    fields keep the runtime default).  A bigger minor heap amortizes
    OCaml 5's stop-the-world minor collections across windows — the
    dominant sharding overhead on few-core boxes. *)

val default_gc : gc_tuning
(** All fields [None]: leave the runtime configuration alone. *)

val apply_gc : gc_tuning -> unit
(** Apply the tuning to the calling domain (used by sequential runners
    that want the same parameters as a sharded run would get). *)

val run : ?until:Units.Time.t -> ?gc:gc_tuning -> t -> unit
(** Execute all shards to quiescence (or to [until]), spawning one
    domain per shard beyond the caller's.  Matches
    {!Engine.run}'s clock-clamp semantics: with [until] every shard's
    clock ends at [until] exactly as a sequential run's would.
    Without [until], use {!last_event_at} rather than {!Engine.now}
    for end-of-run timestamps — window caps advance each engine's
    clock past its last event.

    If a shard raises, the remaining shards finish their window, the
    run shuts down at the next barrier, and the exception is re-raised
    here with its original backtrace. *)

val nshards : t -> int

val events : t -> int
(** Total events executed, summed over shards.  Equal to the
    sequential run's {!Engine.processed} count: the same simulation
    events run, merely distributed, and the barrier machinery executes
    outside the heaps. *)

val last_event_at : t -> Units.Time.t
(** Latest {!Engine.last_event_at} over all shards — the sharded
    equivalent of reading {!Engine.now} after a sequential
    run-to-quiescence. *)

val components : Topology.t -> int
(** Number of groups the topology's non-boundary edges form — the
    upper bound on useful shards.  Exposed for tests and for callers
    that want to report why a run fell back to sequential. *)
