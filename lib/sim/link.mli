(** Unidirectional point-to-point links.

    A link owns an output queue, a transmitter that serializes packets
    at the link rate, an impairment model applied as packets leave the
    wire, and a fixed propagation delay.  Delivery invokes a callback —
    the topology layer wires callbacks to node handlers. *)

open Mmt_util

type t

type event =
  | Sent  (** handed to the link (pre-queue) *)
  | Queue_dropped
  | Transmitted  (** finished serialization *)
  | Loss_dropped
  | Corrupted  (** delivered corrupted: flagged by the loss model, or
                   real bits flipped by a fault tamperer *)
  | Delivered
  | Fault_dropped  (** destroyed because the link was down *)

type stats = {
  offered : int;  (** packets handed to [send] *)
  transmitted : int;  (** packets that finished serialization *)
  delivered : int;  (** packets handed to the delivery callback *)
  queue_drops : int;
  loss_drops : int;
  corrupted : int;  (** oracle-flagged by the loss model *)
  fault_drops : int;  (** destroyed while the link was down *)
  tampered : int;  (** delivered with genuinely flipped bits *)
  delivered_bytes : int;
  busy : Units.Time.t;  (** cumulative serialization time *)
}

val create :
  engine:Engine.t ->
  name:string ->
  rate:Units.Rate.t ->
  propagation:Units.Time.t ->
  ?loss:Loss.t ->
  ?queue:Queue_model.t ->
  ?pool:Pool.t ->
  ?observer:(event -> Packet.t -> unit) ->
  deliver:(Packet.t -> unit) ->
  unit ->
  t
(** Default impairment is {!Loss.perfect}; default queue is a 4 MiB
    drop-tail.  A zero [rate] means an ideal link (no serialization
    delay).  [observer] sees every per-packet event as it happens —
    tracing taps into it.  With [pool], frames of packets the link
    destroys (queue drops and loss drops) are recycled after the
    observer has seen the event; delivered packets belong to the
    receiver. *)

val send : t -> Packet.t -> unit
(** Enqueue for transmission; drops (with accounting) if the queue is
    full. *)

val name : t -> string
val rate : t -> Units.Rate.t
val propagation : t -> Units.Time.t
val queue : t -> Queue_model.t

(** {2 Fault hooks}

    The fault-injection layer ({!Mmt_fault}) drives links through
    these; all default to the healthy state, in which the link
    behaves exactly as it always did. *)

val is_up : t -> bool

val set_up : t -> bool -> unit
(** A downed link destroys traffic with [Fault_dropped] accounting:
    packets offered while down never enter the queue, and packets
    finishing serialization while down die at the wire.  Queued
    packets survive a short outage and transmit once the link is
    back up. *)

val set_rate : t -> Units.Rate.t -> unit
(** Degrade or restore the serialization rate; takes effect from the
    next packet to start serializing. *)

val set_tamper : t -> (Packet.t -> bool) option -> unit
(** Install a corruptor consulted for every packet that survives the
    loss model.  Returning [true] means it mutated the frame's bytes
    in place; the packet is delivered (the corrupted oracle flag is
    NOT set — detection must come from checksums). *)

val stats : t -> stats
val utilization : t -> over:Units.Time.t -> float
(** Fraction of [over] the transmitter spent serializing. *)
