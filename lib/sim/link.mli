(** Unidirectional point-to-point links.

    A link owns an output queue, a transmitter that serializes packets
    at the link rate, an impairment model applied as packets leave the
    wire, and a fixed propagation delay.  Delivery invokes a callback —
    the topology layer wires callbacks to node handlers.

    Links whose propagation delay reaches {!cut_threshold} are
    {e boundary} links: the topology gives each a cut-edge id, and
    their deliveries are scheduled in the engine's boundary sequence
    lane ({!Engine.schedule_boundary}) under a key packed from
    (cut-edge id, per-edge FIFO sequence).  That keyed order is
    mode-independent, which is what lets the sharded runner
    ({!Shard}) cut a topology at these links and still reproduce the
    sequential run byte for byte. *)

open Mmt_util

type t

type event =
  | Sent  (** handed to the link (pre-queue) *)
  | Queue_dropped
  | Transmitted  (** finished serialization *)
  | Loss_dropped
  | Corrupted  (** delivered corrupted: flagged by the loss model, or
                   real bits flipped by a fault tamperer *)
  | Delivered
  | Fault_dropped  (** destroyed because the link was down *)

type stats = {
  offered : int;  (** packets handed to [send] *)
  transmitted : int;  (** packets that finished serialization *)
  delivered : int;  (** packets handed to the delivery callback *)
  queue_drops : int;
  loss_drops : int;
  corrupted : int;  (** oracle-flagged by the loss model *)
  fault_drops : int;  (** destroyed while the link was down *)
  tampered : int;  (** delivered with genuinely flipped bits *)
  delivered_bytes : int;
  busy : Units.Time.t;  (** cumulative serialization time *)
}

val cut_threshold : Units.Time.t
(** Propagation delay (1 ms) at or above which a link is treated as a
    boundary link.  Anything this slow dwarfs intra-site switching
    latencies, so cutting a topology there gives the sharded runner a
    conservative lookahead window that costs nothing in fidelity. *)

val create :
  engine:Engine.t ->
  name:string ->
  rate:Units.Rate.t ->
  propagation:Units.Time.t ->
  ?loss:Loss.t ->
  ?queue:Queue_model.t ->
  ?pool:Pool.t ->
  ?ring:Ring.t ->
  ?observer:(event -> Packet.t -> unit) ->
  ?boundary:int ->
  ?fusing:bool ->
  deliver:(Packet.t -> unit) ->
  unit ->
  t
(** Default impairment is {!Loss.perfect}; default queue is a 4 MiB
    drop-tail.  A zero [rate] means an ideal link (no serialization
    delay).  [observer] sees every per-packet event as it happens —
    tracing taps into it.  With [ring] (preferred) or [pool], packets
    the link destroys (queue drops, loss drops, fault drops) are
    retired after the observer has seen the event; delivered packets
    belong to the receiver.  [boundary] is the link's cut-edge id
    ([-1], the default, marks an ordinary link); {!Topology.connect}
    assigns ids in creation order to every link at or above
    {!cut_threshold}.

    [fusing] (default [true]) enables the fused hop: each packet's
    serialize and propagate events collapse into a single {e staged}
    engine event ({!Engine.schedule_staged}).  Its stage phase fires
    at serialize-completion time and runs the serialize-time semantics
    verbatim — up check, loss draw, tamper, observer callbacks, stats,
    and the tail poll for the next packet — then re-arms the same heap
    entry as the propagate event instead of scheduling a second one,
    saving a heap push, a pop and a slot recycle per hop.  Every
    decision still executes at the same instant with the same link
    state and the same sequence-number draws as the two-event path, so
    fused and unfused runs are byte-identical under congestion,
    faults, impairment, and tracing alike.  Boundary cut edges never
    fuse: their deliveries must carry the boundary-lane key in every
    mode.  [fusing:false] opts out entirely (the [--no-fuse]
    differential switch). *)

val send : t -> Packet.t -> unit
(** Enqueue for transmission; drops (with accounting) if the queue is
    full. *)

val name : t -> string
val rate : t -> Units.Rate.t
val propagation : t -> Units.Time.t
val queue : t -> Queue_model.t

(** {2 Fault hooks}

    The fault-injection layer ({!Mmt_fault}) drives links through
    these; all default to the healthy state, in which the link
    behaves exactly as it always did.  The hooks need no special
    handling for fused hops: a fused hop's serialize-time decisions
    run inside the staged event at serialize-completion time, reading
    link state {e then} — so a hook firing mid-hop is observed by
    in-flight packets exactly as the two-event path would observe it,
    and a brown-out produces the identical ledger either way. *)

val is_up : t -> bool

val set_up : t -> bool -> unit
(** A downed link destroys traffic with [Fault_dropped] accounting:
    packets offered while down never enter the queue, and packets
    finishing serialization while down die at the wire.  Queued
    packets survive a short outage and transmit once the link is
    back up. *)

val set_rate : t -> Units.Rate.t -> unit
(** Degrade or restore the serialization rate; takes effect from the
    next packet to start serializing. *)

val set_tamper : t -> (Packet.t -> bool) option -> unit
(** Install a corruptor consulted for every packet that survives the
    loss model.  Returning [true] means it mutated the frame's bytes
    in place; the packet is delivered (the corrupted oracle flag is
    NOT set — detection must come from checksums). *)

(** {2 Sharding hooks}

    Used by {!Shard} to route a boundary link's deliveries through a
    cross-shard mailbox; plain sequential runs never touch these. *)

val is_boundary : t -> bool
(** Whether the link's propagation reached {!cut_threshold} at
    construction (equivalently: it holds a cut-edge id). *)

val boundary_id : t -> int
(** The link's cut-edge id, or [-1] for an ordinary link. *)

val set_boundary_exit :
  t -> (at:Units.Time.t -> key:int -> Packet.t -> unit) option -> unit
(** Install (or clear) the exit hook.  With a hook installed, packets
    finishing propagation are handed to it — carrying the same arrival
    time and boundary-lane key a sequential run would have scheduled —
    instead of entering this engine's heap.  The sharded runner's hook
    pushes into the edge's mailbox; the receiving shard re-schedules
    under the identical [(at, key)] via {!deliver_now}.
    @raise Invalid_argument on a non-boundary link. *)

val deliver_now : t -> Packet.t -> unit
(** Complete a delivery immediately: account it, bump the packet's hop
    count, notify the observer, and invoke the delivery callback.
    Only the sharded runner calls this, from the boundary event it
    schedules on the receiving shard's engine. *)

val stats : t -> stats
val utilization : t -> over:Units.Time.t -> float
(** Fraction of [over] the transmitter spent serializing. *)
