(** Unidirectional point-to-point links.

    A link owns an output queue, a transmitter that serializes packets
    at the link rate, an impairment model applied as packets leave the
    wire, and a fixed propagation delay.  Delivery invokes a callback —
    the topology layer wires callbacks to node handlers. *)

open Mmt_util

type t

type event =
  | Sent  (** handed to the link (pre-queue) *)
  | Queue_dropped
  | Transmitted  (** finished serialization *)
  | Loss_dropped
  | Corrupted  (** delivered with the corrupted flag *)
  | Delivered

type stats = {
  offered : int;  (** packets handed to [send] *)
  transmitted : int;  (** packets that finished serialization *)
  delivered : int;  (** packets handed to the delivery callback *)
  queue_drops : int;
  loss_drops : int;
  corrupted : int;
  delivered_bytes : int;
  busy : Units.Time.t;  (** cumulative serialization time *)
}

val create :
  engine:Engine.t ->
  name:string ->
  rate:Units.Rate.t ->
  propagation:Units.Time.t ->
  ?loss:Loss.t ->
  ?queue:Queue_model.t ->
  ?pool:Pool.t ->
  ?observer:(event -> Packet.t -> unit) ->
  deliver:(Packet.t -> unit) ->
  unit ->
  t
(** Default impairment is {!Loss.perfect}; default queue is a 4 MiB
    drop-tail.  A zero [rate] means an ideal link (no serialization
    delay).  [observer] sees every per-packet event as it happens —
    tracing taps into it.  With [pool], frames of packets the link
    destroys (queue drops and loss drops) are recycled after the
    observer has seen the event; delivered packets belong to the
    receiver. *)

val send : t -> Packet.t -> unit
(** Enqueue for transmission; drops (with accounting) if the queue is
    full. *)

val name : t -> string
val rate : t -> Units.Rate.t
val propagation : t -> Units.Time.t
val queue : t -> Queue_model.t
val stats : t -> stats
val utilization : t -> over:Units.Time.t -> float
(** Fraction of [over] the transmitter spent serializing. *)
