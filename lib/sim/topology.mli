(** Topology construction: nodes wired by links, plus shared identity
    allocation for packets.

    Topologies in this reproduction are the paper's: linear
    sensor → DTN → switch → DTN chains with optional fan-out to
    downstream researchers (Fig. 1, Fig. 4). *)

open Mmt_util

type t

val create : engine:Engine.t -> ?trace:Trace.t -> ?pool:Pool.t -> unit -> t
(** When [trace] is given, every link created through this topology
    records its packet events into it.  When [pool] is given, every
    link recycles the frames of packets it drops into it (see
    {!Link.create}). *)

val engine : t -> Engine.t
val trace : t -> Trace.t option
val pool : t -> Pool.t option

val fresh_packet_id : t -> int
(** Globally unique (per topology) packet identity. *)

val add_node : t -> name:string -> Node.t
(** @raise Invalid_argument on duplicate names. *)

val find_node : t -> string -> Node.t
(** @raise Not_found for unknown names. *)

val connect :
  t ->
  src:Node.t ->
  dst:Node.t ->
  rate:Units.Rate.t ->
  propagation:Units.Time.t ->
  ?loss:Loss.t ->
  ?queue:Queue_model.t ->
  unit ->
  Link.t
(** Unidirectional [src -> dst] link delivering into [dst]'s handler. *)

val duplex :
  t ->
  a:Node.t ->
  b:Node.t ->
  rate:Units.Rate.t ->
  propagation:Units.Time.t ->
  ?loss_ab:Loss.t ->
  ?loss_ba:Loss.t ->
  ?queue_ab:Queue_model.t ->
  ?queue_ba:Queue_model.t ->
  unit ->
  Link.t * Link.t
(** Two links: [(a_to_b, b_to_a)]. *)

val links : t -> Link.t list
(** All links in creation order. *)

val nodes : t -> Node.t list
(** All nodes in creation order. *)
