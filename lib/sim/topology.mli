(** Topology construction: nodes wired by links, plus shared identity
    allocation for packets.

    Topologies in this reproduction are the paper's: linear
    sensor → DTN → switch → DTN chains with optional fan-out to
    downstream researchers (Fig. 1, Fig. 4), and the facility
    generator's multi-site fan-in trees.

    A topology can span several engines.  {!create} is the ordinary
    single-engine form; {!create_sharded} places every node on one of
    N engines (one per shard) and every link on its source node's
    engine.  Links at or above {!Link.cut_threshold} receive a
    cut-edge id in creation order — in {e every} mode, so their
    keyed delivery order is identical whether the topology runs on one
    engine or many — and they are the only links allowed to cross
    shards. *)

open Mmt_util

type t

val create :
  engine:Engine.t ->
  ?trace:Trace.t ->
  ?pool:Pool.t ->
  ?ring:Ring.t ->
  ?pooling:bool ->
  ?fusing:bool ->
  unit ->
  t
(** When [trace] is given, every link created through this topology
    records its packet events into it.  Pooling is on by default:
    unless [pooling:false], the topology owns a packet {!Ring} (either
    [ring] or a fresh one wrapping [pool] when given) and every link
    retires the packets it drops into it; {!pool} then exposes the
    ring's embedded frame pool for copy paths.  [pooling:false]
    restores the legacy behaviour: no ring, and frames recycle only
    when an explicit [pool] was given.  Fusing is likewise on by
    default: links collapse uncongested hops into single engine events
    (see {!Link.create}); [fusing:false] opts every link out — the
    [--no-fuse] differential switch. *)

val create_sharded :
  engines:Engine.t array ->
  assign:(string -> int) ->
  ?pools:Pool.t array ->
  ?rings:Ring.t array ->
  ?pooling:bool ->
  ?fusing:bool ->
  unit ->
  t
(** A topology spread over one engine per shard.  [assign] maps a node
    name to its shard (consulted once, at {!add_node}).  Each shard
    gets its own packet ring (default) or pool, so no allocation state
    is shared between domains — slots must never cross a shard
    boundary ({!Ring.detach}).  Tracing is unavailable in sharded
    mode.
    @raise Invalid_argument if [engines] is empty or [pools]/[rings]
    has a different length. *)

val engine : t -> Engine.t
(** Shard 0's engine — the only engine of a {!create}d topology. *)

val nshards : t -> int

val node_engine : t -> Node.t -> Engine.t
(** The engine of the shard [node] lives on.  Components attached to
    [node] must schedule their events here. *)

val shard_of_node : t -> Node.t -> int

val trace : t -> Trace.t option
val pool : t -> Pool.t option
(** Shard 0's frame pool, if any (a ring's embedded pool when the
    topology owns a ring). *)

val pool_of_shard : t -> int -> Pool.t option

val ring : t -> Ring.t option
(** Shard 0's packet ring, if any. *)

val ring_of_shard : t -> int -> Ring.t option

val fresh_packet_id : t -> int
(** Unique (per topology) packet identity, drawn from shard 0's
    counter.  Sequential callers use this; sharded construction sites
    use {!id_source} so each domain draws from its own counter. *)

val id_source : t -> Node.t -> unit -> int
(** [id_source t node] is an allocator of topology-unique packet ids
    safe to call from [node]'s shard: shard [s] draws ids in the
    residue class [s mod nshards], so no counter is shared between
    domains.  Ids are pure identity — nothing orders on them — so the
    different numbering of a sharded run does not affect reports. *)

val add_node : t -> name:string -> Node.t
(** @raise Invalid_argument on duplicate names, or (sharded) when
    [assign] returns an out-of-range shard. *)

val find_node : t -> string -> Node.t
(** @raise Not_found for unknown names. *)

val connect :
  t ->
  src:Node.t ->
  dst:Node.t ->
  rate:Units.Rate.t ->
  propagation:Units.Time.t ->
  ?loss:Loss.t ->
  ?queue:Queue_model.t ->
  unit ->
  Link.t
(** Unidirectional [src -> dst] link delivering into [dst]'s handler.
    The link lives on [src]'s engine.  Links with [propagation] at or
    above {!Link.cut_threshold} are created as boundary links with the
    next cut-edge id.
    @raise Invalid_argument if [src] and [dst] sit on different shards
    and [propagation] is below the cut threshold — only WAN-class
    links may cross shards. *)

val duplex :
  t ->
  a:Node.t ->
  b:Node.t ->
  rate:Units.Rate.t ->
  propagation:Units.Time.t ->
  ?loss_ab:Loss.t ->
  ?loss_ba:Loss.t ->
  ?queue_ab:Queue_model.t ->
  ?queue_ba:Queue_model.t ->
  unit ->
  Link.t * Link.t
(** Two links: [(a_to_b, b_to_a)]. *)

val links : t -> Link.t list
(** All links in creation order. *)

val nodes : t -> Node.t list
(** All nodes in creation order. *)

val edges : t -> (Node.t * Node.t * Link.t) list
(** All links with their endpoints, in creation order.  The sharded
    runner walks this to find the cut edges whose mailboxes it must
    wire. *)
