type t = {
  engine : Engine.t;
  trace : Trace.t option;
  pool : Pool.t option;
  mutable next_packet_id : int;
  node_by_name : (string, Node.t) Hashtbl.t;
  mutable node_order : Node.t list; (* reversed *)
  mutable link_order : Link.t list; (* reversed *)
}

let create ~engine ?trace ?pool () =
  {
    engine;
    trace;
    pool;
    next_packet_id = 0;
    node_by_name = Hashtbl.create 16;
    node_order = [];
    link_order = [];
  }

let engine t = t.engine
let trace t = t.trace
let pool t = t.pool

let fresh_packet_id t =
  let id = t.next_packet_id in
  t.next_packet_id <- id + 1;
  id

let add_node t ~name =
  if Hashtbl.mem t.node_by_name name then
    invalid_arg ("Topology.add_node: duplicate node " ^ name);
  let node = Node.create ~name in
  Hashtbl.replace t.node_by_name name node;
  t.node_order <- node :: t.node_order;
  node

let find_node t name =
  match Hashtbl.find_opt t.node_by_name name with
  | Some node -> node
  | None -> raise Not_found

let connect t ~src ~dst ~rate ~propagation ?loss ?queue () =
  let name = Node.name src ^ "->" ^ Node.name dst in
  let observer =
    Option.map
      (fun trace -> Trace.observer trace ~engine:t.engine ~link:name)
      t.trace
  in
  let link =
    Link.create ~engine:t.engine ~name ~rate ~propagation ?loss ?queue
      ?pool:t.pool ?observer ~deliver:(Node.handle dst) ()
  in
  t.link_order <- link :: t.link_order;
  link

let duplex t ~a ~b ~rate ~propagation ?loss_ab ?loss_ba ?queue_ab ?queue_ba () =
  let ab = connect t ~src:a ~dst:b ~rate ~propagation ?loss:loss_ab ?queue:queue_ab () in
  let ba = connect t ~src:b ~dst:a ~rate ~propagation ?loss:loss_ba ?queue:queue_ba () in
  (ab, ba)

let links t = List.rev t.link_order
let nodes t = List.rev t.node_order
