open Mmt_util

type t = {
  engines : Engine.t array;
  assign : (string -> int) option; (* node name -> shard; None = all on 0 *)
  trace : Trace.t option;
  fusing : bool; (* links created through this topology may fuse hops *)
  pools : Pool.t option array; (* per shard, same length as [engines] *)
  rings : Ring.t option array; (* per shard, same length as [engines] *)
  next_ids : int array; (* per-shard packet-id counters *)
  node_by_name : (string, Node.t) Hashtbl.t;
  shard_by_name : (string, int) Hashtbl.t;
  mutable node_order : Node.t list; (* reversed *)
  mutable link_order : Link.t list; (* reversed *)
  mutable edge_order : (Node.t * Node.t * Link.t) list; (* reversed *)
  mutable next_boundary : int;
}

let make ~engines ~assign ~trace ~fusing ~pools ~rings =
  {
    engines;
    assign;
    trace;
    fusing;
    pools;
    rings;
    next_ids = Array.make (Array.length engines) 0;
    node_by_name = Hashtbl.create 16;
    shard_by_name = Hashtbl.create 16;
    node_order = [];
    link_order = [];
    edge_order = [];
    next_boundary = 0;
  }

(* Pooling is the default: unless the caller opts out (or supplied its
   own ring), every shard gets a packet ring whose embedded pool also
   serves the copy paths that only want frames. *)
let ring_for ~pooling ~ring ~pool =
  match ring with
  | Some _ -> ring
  | None -> if pooling then Some (Ring.create ?pool ()) else None

let pool_behind ~ring ~pool =
  match ring with Some r -> Some (Ring.pool r) | None -> pool

let create ~engine ?trace ?pool ?ring ?(pooling = true) ?(fusing = true) () =
  let ring = ring_for ~pooling ~ring ~pool in
  let pool = pool_behind ~ring ~pool in
  make ~engines:[| engine |] ~assign:None ~trace ~fusing ~pools:[| pool |]
    ~rings:[| ring |]

let create_sharded ~engines ~assign ?pools ?rings ?(pooling = true)
    ?(fusing = true) () =
  if Array.length engines = 0 then
    invalid_arg "Topology.create_sharded: no engines";
  let n = Array.length engines in
  let pools =
    match pools with
    | Some pools ->
        if Array.length pools <> n then
          invalid_arg "Topology.create_sharded: one pool per engine required";
        Array.map Option.some pools
    | None -> Array.make n None
  in
  let rings =
    match rings with
    | Some rings ->
        if Array.length rings <> n then
          invalid_arg "Topology.create_sharded: one ring per engine required";
        Array.map Option.some rings
    | None ->
        Array.init n (fun i -> ring_for ~pooling ~ring:None ~pool:pools.(i))
  in
  let pools =
    Array.init n (fun i -> pool_behind ~ring:rings.(i) ~pool:pools.(i))
  in
  make ~engines ~assign:(Some assign) ~trace:None ~fusing ~pools ~rings

let engine t = t.engines.(0)
let nshards t = Array.length t.engines
let trace t = t.trace
let pool t = t.pools.(0)
let pool_of_shard t shard = t.pools.(shard)
let ring t = t.rings.(0)
let ring_of_shard t shard = t.rings.(shard)

let shard_of_node t node =
  match t.assign with
  | None -> 0
  | Some _ -> Hashtbl.find t.shard_by_name (Node.name node)

let node_engine t node = t.engines.(shard_of_node t node)

(* Packet ids are unique across shards by construction — shard [s]
   draws from the residue class [s mod nshards] — and each counter is
   touched only by the domain running that shard.  The values differ
   between a 1-shard and an N-shard run of the same scenario, which is
   fine because ids are pure identity: nothing in the protocol stack
   or the reports orders on them. *)
let fresh_id_for t shard =
  let n = t.next_ids.(shard) in
  t.next_ids.(shard) <- n + 1;
  (n * Array.length t.engines) + shard

let fresh_packet_id t = fresh_id_for t 0

let id_source t node =
  let shard = shard_of_node t node in
  fun () -> fresh_id_for t shard

let add_node t ~name =
  if Hashtbl.mem t.node_by_name name then
    invalid_arg ("Topology.add_node: duplicate node " ^ name);
  let node = Node.create ~name in
  Hashtbl.replace t.node_by_name name node;
  (match t.assign with
  | None -> ()
  | Some assign ->
      let shard = assign name in
      if shard < 0 || shard >= Array.length t.engines then
        invalid_arg ("Topology.add_node: shard out of range for " ^ name);
      Hashtbl.replace t.shard_by_name name shard);
  t.node_order <- node :: t.node_order;
  node

let find_node t name =
  match Hashtbl.find_opt t.node_by_name name with
  | Some node -> node
  | None -> raise Not_found

let connect t ~src ~dst ~rate ~propagation ?loss ?queue () =
  let name = Node.name src ^ "->" ^ Node.name dst in
  let shard = shard_of_node t src in
  let engine = t.engines.(shard) in
  (* Boundary ids are assigned in creation order to every link at or
     above the cut threshold, in every mode — identical construction
     order therefore yields identical delivery keys, sharded or not. *)
  let boundary =
    if Units.Time.(propagation >= Link.cut_threshold) then begin
      let id = t.next_boundary in
      t.next_boundary <- id + 1;
      id
    end
    else begin
      if shard_of_node t dst <> shard then
        invalid_arg
          ("Topology.connect: " ^ name
         ^ " crosses shards below the cut threshold");
      -1
    end
  in
  let observer =
    Option.map (fun trace -> Trace.observer trace ~engine ~link:name) t.trace
  in
  let link =
    Link.create ~engine ~name ~rate ~propagation ?loss ?queue
      ?pool:t.pools.(shard) ?ring:t.rings.(shard) ?observer ~boundary
      ~fusing:t.fusing ~deliver:(Node.handle dst) ()
  in
  t.link_order <- link :: t.link_order;
  t.edge_order <- (src, dst, link) :: t.edge_order;
  link

let duplex t ~a ~b ~rate ~propagation ?loss_ab ?loss_ba ?queue_ab ?queue_ba () =
  let ab = connect t ~src:a ~dst:b ~rate ~propagation ?loss:loss_ab ?queue:queue_ab () in
  let ba = connect t ~src:b ~dst:a ~rate ~propagation ?loss:loss_ba ?queue:queue_ba () in
  (ab, ba)

let links t = List.rev t.link_order
let nodes t = List.rev t.node_order
let edges t = List.rev t.edge_order
