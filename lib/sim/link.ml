open Mmt_util

type event =
  | Sent
  | Queue_dropped
  | Transmitted
  | Loss_dropped
  | Corrupted
  | Delivered
  | Fault_dropped

type stats = {
  offered : int;
  transmitted : int;
  delivered : int;
  queue_drops : int;
  loss_drops : int;
  corrupted : int;
  fault_drops : int;
  tampered : int;
  delivered_bytes : int;
  busy : Units.Time.t;
}

(* Links whose propagation is at least this long are "boundary" links:
   their deliveries are scheduled in the engine's boundary sequence
   lane under a (cut-edge id, FIFO seq) key instead of the global
   scheduling counter.  The threshold marks where the sharded runner
   may cut a topology — the propagation delay is then the conservative
   lookahead that makes cross-shard windows safe — and boundary links
   use the keyed lane in *every* mode, sharded or not, so that
   same-instant tie-breaking is identical everywhere. *)
let cut_threshold = Units.Time.ms 1.

let dummy_packet = Packet.create ~id:(-1) ~born:Units.Time.zero Pool.retired

(* Default observer: a shared sentinel, compared physically, so call
   sites on untraced links skip the indirect call entirely.  Topology
   only installs a real observer when tracing is on, making this the
   common case. *)
let no_observer (_ : event) (_ : Packet.t) = ()

type t = {
  engine : Engine.t;
  name : string;
  mutable rate : Units.Rate.t;
  propagation : Units.Time.t;
  loss : Loss.t;
  queue : Queue_model.t;
  pool : Pool.t option;
  ring : Ring.t option;
  observer : event -> Packet.t -> unit;
  deliver : Packet.t -> unit;
  boundary : int; (* cut-edge id, or -1 for an ordinary link *)
  mutable next_eseq : int; (* per-edge FIFO sequence for boundary keys *)
  mutable exit : (at:Units.Time.t -> key:int -> Packet.t -> unit) option;
  mutable transmitting : bool;
  mutable serializing : Packet.t; (* the packet on the transmitter *)
  mutable on_serialized : unit -> unit; (* preallocated; set in create *)
  mutable on_propagated : unit -> unit; (* preallocated; set in create *)
  mutable on_staged : unit -> unit; (* preallocated; set in create *)
  fusable : bool; (* hops may fuse: fusing enabled and ordinary lane *)
  (* In-flight circular FIFO.  Propagation is constant per link and
     engine time is monotonic, so deliveries complete in the order
     serializations complete: the delivery closures can be one shared
     preallocated closure popping this queue instead of a fresh
     closure capturing each packet. *)
  mutable flight : Packet.t array;
  mutable flight_head : int;
  mutable flight_len : int;
  mutable up : bool;
  mutable tamper : (Packet.t -> bool) option;
  mutable offered : int;
  mutable transmitted : int;
  mutable delivered : int;
  mutable loss_drops : int;
  mutable corrupted : int;
  mutable fault_drops : int;
  mutable tampered : int;
  mutable delivered_bytes : int;
  mutable busy : Units.Time.t;
  (* Serialization-time memo.  Traffic on a link is overwhelmingly
     same-sized frames at an unchanged rate, so the float divide +
     round inside [Units.Rate.transmission_time] is paid once per
     (rate, size) change instead of per packet.  Purely a cache: the
     memoized value is exactly what the computation would return. *)
  mutable tt_rate : float;
  mutable tt_bits : int;
  mutable tt_time : Units.Time.t;
}

(* The link was the packet's last holder: recycle the slot + frame. *)
let retire t packet =
  match t.ring with
  | Some ring -> Ring.in_packet_done ring packet
  | None -> Option.iter (fun pool -> Pool.release_packet pool packet) t.pool

let[@inline] observe link ev packet =
  if link.observer != no_observer then link.observer ev packet

(* Index wrap by compare-and-subtract, as in [Queue_model]'s FIFO: the
   operands stay in [0, 2*cap) and the branch predicts, where [mod] is
   an integer division on the per-packet path. *)
let flight_push t packet =
  let cap = Array.length t.flight in
  if t.flight_len = cap then begin
    let grown = Array.make (cap * 2) dummy_packet in
    for i = 0 to t.flight_len - 1 do
      let src = t.flight_head + i in
      grown.(i) <- t.flight.(if src >= cap then src - cap else src)
    done;
    t.flight <- grown;
    t.flight_head <- 0
  end;
  let cap = Array.length t.flight in
  let tail = t.flight_head + t.flight_len in
  t.flight.(if tail >= cap then tail - cap else tail) <- packet;
  t.flight_len <- t.flight_len + 1

let flight_pop t =
  let packet = t.flight.(t.flight_head) in
  t.flight.(t.flight_head) <- dummy_packet;
  let next = t.flight_head + 1 in
  t.flight_head <- (if next >= Array.length t.flight then 0 else next);
  t.flight_len <- t.flight_len - 1;
  packet

let deliver_now t packet =
  t.delivered <- t.delivered + 1;
  t.delivered_bytes <-
    t.delivered_bytes + Units.Size.to_bytes (Packet.wire_size packet);
  packet.Packet.hops <- packet.Packet.hops + 1;
  observe t Delivered packet;
  t.deliver packet

let deliver_after_propagation t packet =
  if t.boundary < 0 then begin
    flight_push t packet;
    ignore (Engine.schedule_after t.engine ~delay:t.propagation t.on_propagated)
  end
  else begin
    (* Boundary link: the delivery key is (cut-edge id, per-edge FIFO
       sequence) — data that does not depend on which engine runs the
       delivery, so a sequential run and a sharded run order
       same-instant deliveries identically.  When a shard runner has
       installed an exit hook the packet leaves through its mailbox
       instead of this engine's heap; the receiving shard re-schedules
       it under the same (at, key). *)
    let at = Units.Time.add (Engine.now t.engine) t.propagation in
    let key = (t.boundary lsl 40) lor t.next_eseq in
    t.next_eseq <- t.next_eseq + 1;
    match t.exit with
    | Some exit -> exit ~at ~key packet
    | None ->
        flight_push t packet;
        ignore (Engine.schedule_boundary t.engine ~at ~key t.on_propagated)
  end

let serialization_time t packet =
  let size = Packet.wire_size packet in
  let bits = Units.Size.to_bits size in
  if bits = t.tt_bits && Float.equal t.tt_rate (t.rate :> float) then t.tt_time
  else begin
    let time = Units.Rate.transmission_time t.rate size in
    t.tt_rate <- (t.rate :> float);
    t.tt_bits <- bits;
    t.tt_time <- time;
    time
  end

let start_serializing t packet =
  t.transmitting <- true;
  t.serializing <- packet;
  let serialization = serialization_time t packet in
  t.busy <- Units.Time.add t.busy serialization;
  if t.fusable then
    (* Fused hop: one staged engine event covers serialization and
       propagation.  Its stage phase runs [staged_serialized] — the
       serialize-time semantics, verbatim — and re-arms the same
       heap entry as the propagate event instead of scheduling a
       second one. *)
    ignore
      (Engine.schedule_staged t.engine
         ~at:(Units.Time.add (Engine.now t.engine) serialization)
         t.on_staged)
  else
    ignore (Engine.schedule_after t.engine ~delay:serialization t.on_serialized)

let transmit_next t =
  let packet = Queue_model.poll t.queue ~now:(Engine.now t.engine) in
  if packet == Queue_model.empty then t.transmitting <- false
  else start_serializing t packet

let serialized t =
  let packet = t.serializing in
  t.serializing <- dummy_packet;
  t.transmitted <- t.transmitted + 1;
  observe t Transmitted packet;
  (if not t.up then begin
     (* A downed link destroys whatever leaves its transmitter, like an
        unplugged fibre. *)
     t.fault_drops <- t.fault_drops + 1;
     observe t Fault_dropped packet;
     retire t packet
   end
   else
     match Loss.decide t.loss with
     | Loss.Drop ->
         t.loss_drops <- t.loss_drops + 1;
         observe t Loss_dropped packet;
         retire t packet
     | Loss.Corrupt ->
         packet.Packet.corrupted <- true;
         t.corrupted <- t.corrupted + 1;
         observe t Corrupted packet;
         deliver_after_propagation t packet
     | Loss.Deliver -> (
         match t.tamper with
         | Some tamper when tamper packet ->
             (* Real bits were flipped in the frame: the packet still
                arrives; detection is the receiver's problem
                (checksums, not oracles). *)
             t.tampered <- t.tampered + 1;
             observe t Corrupted packet;
             deliver_after_propagation t packet
         | Some _ | None -> deliver_after_propagation t packet));
  transmit_next t

let propagated t = deliver_now t (flight_pop t)

(* Stage phase of a fused hop: [serialized] verbatim, except that a
   surviving packet re-arms the staged event as the propagate event
   ([Engine.advance_current]) instead of scheduling a fresh one.  The
   advance draws its sequence number at this instant — exactly where
   [deliver_after_propagation] would have drawn it — and every other
   decision (up check, loss draw, tamper, observer, stats, the tail
   call into [transmit_next]) runs here at serialize-completion time
   with current link state, so a fused run is byte-identical to an
   unfused one under faults, impairment, and tracing alike.  Only
   ordinary-lane links fuse, so the boundary branch of
   [deliver_after_propagation] is never bypassed. *)
let advance_propagation t packet =
  flight_push t packet;
  Engine.advance_current t.engine
    ~at:(Units.Time.add (Engine.now t.engine) t.propagation)
    t.on_propagated

let staged_serialized t =
  let packet = t.serializing in
  t.serializing <- dummy_packet;
  t.transmitted <- t.transmitted + 1;
  observe t Transmitted packet;
  (if not t.up then begin
     t.fault_drops <- t.fault_drops + 1;
     observe t Fault_dropped packet;
     retire t packet
   end
   else
     match Loss.decide t.loss with
     | Loss.Drop ->
         t.loss_drops <- t.loss_drops + 1;
         observe t Loss_dropped packet;
         retire t packet
     | Loss.Corrupt ->
         packet.Packet.corrupted <- true;
         t.corrupted <- t.corrupted + 1;
         observe t Corrupted packet;
         advance_propagation t packet
     | Loss.Deliver -> (
         match t.tamper with
         | Some tamper when tamper packet ->
             t.tampered <- t.tampered + 1;
             observe t Corrupted packet;
             advance_propagation t packet
         | Some _ | None -> advance_propagation t packet));
  transmit_next t

let create ~engine ~name ~rate ~propagation ?(loss = Loss.perfect)
    ?(queue = Queue_model.droptail ~capacity:(Units.Size.mib 4) ())
    ?pool ?ring ?(observer = no_observer) ?(boundary = -1) ?(fusing = true)
    ~deliver () =
  let t =
    {
      engine;
      name;
      rate;
      propagation;
      loss;
      queue;
      pool;
      ring;
      observer;
      deliver;
      boundary;
      next_eseq = 0;
      exit = None;
      transmitting = false;
      serializing = dummy_packet;
      on_serialized = ignore;
      on_propagated = ignore;
      on_staged = ignore;
      (* Fusion never touches the boundary key lane: a cut edge's
         deliveries must carry the (edge id, FIFO seq) key in every
         mode. *)
      fusable = fusing && boundary < 0;
      flight = Array.make 16 dummy_packet;
      flight_head = 0;
      flight_len = 0;
      up = true;
      tamper = None;
      offered = 0;
      transmitted = 0;
      delivered = 0;
      loss_drops = 0;
      corrupted = 0;
      fault_drops = 0;
      tampered = 0;
      delivered_bytes = 0;
      busy = Units.Time.zero;
      tt_rate = 0.;
      tt_bits = -1;
      tt_time = Units.Time.zero;
    }
  in
  t.on_serialized <- (fun () -> serialized t);
  t.on_propagated <- (fun () -> propagated t);
  t.on_staged <- (fun () -> staged_serialized t);
  t

let send t packet =
  t.offered <- t.offered + 1;
  observe t Sent packet;
  if not t.up then begin
    t.fault_drops <- t.fault_drops + 1;
    observe t Fault_dropped packet;
    retire t packet
  end
  else if (not t.transmitting) && Queue_model.passes_when_empty t.queue packet
  then
    (* Idle transmitter, empty FIFO, packet fits: the enqueue would be
       followed by an immediate poll returning this very packet, with
       no observable step in between — skip the round-trip. *)
    start_serializing t packet
  else begin
    let now = Engine.now t.engine in
    match Queue_model.enqueue t.queue ~now packet with
    | `Dropped ->
        observe t Queue_dropped packet;
        retire t packet
    | `Accepted -> if not t.transmitting then transmit_next t
  end

let name t = t.name
let rate t = t.rate
let propagation t = t.propagation
let queue t = t.queue
let is_boundary t = t.boundary >= 0
let boundary_id t = t.boundary
let set_boundary_exit t exit =
  if t.boundary < 0 then
    invalid_arg ("Link.set_boundary_exit: " ^ t.name ^ " is not a boundary link");
  t.exit <- exit
let is_up t = t.up
let set_up t up = t.up <- up
let set_rate t rate = t.rate <- rate
let set_tamper t tamper = t.tamper <- tamper

let stats t =
  {
    offered = t.offered;
    transmitted = t.transmitted;
    delivered = t.delivered;
    queue_drops = Queue_model.overflow_drops t.queue;
    loss_drops = t.loss_drops;
    corrupted = t.corrupted;
    fault_drops = t.fault_drops;
    tampered = t.tampered;
    delivered_bytes = t.delivered_bytes;
    busy = t.busy;
  }

let utilization t ~over =
  let window = Units.Time.to_float_s over in
  if window <= 0. then 0. else Units.Time.to_float_s t.busy /. window
