open Mmt_util

type entry = {
  at : Units.Time.t;
  link : string;
  event : Link.event;
  packet_id : int;
  size : Units.Size.t;
}

type fault_entry = { fault_at : Units.Time.t; what : string }

type t = {
  capacity : int;
  buffer : entry Queue.t;
  faults : fault_entry Queue.t;
  mutable truncated : int;
}

let create ?(capacity = 100_000) () =
  { capacity; buffer = Queue.create (); faults = Queue.create (); truncated = 0 }

let record t ~at ~link event packet =
  if Queue.length t.buffer >= t.capacity then begin
    ignore (Queue.pop t.buffer);
    t.truncated <- t.truncated + 1
  end;
  Queue.push
    {
      at;
      link;
      event;
      packet_id = packet.Packet.id;
      size = Packet.wire_size packet;
    }
    t.buffer

let observer t ~engine ~link event packet =
  record t ~at:(Engine.now engine) ~link event packet

let record_fault t ~at ~what =
  if Queue.length t.faults < t.capacity then
    Queue.push { fault_at = at; what } t.faults

let faults t = List.of_seq (Queue.to_seq t.faults)
let fault_count t = Queue.length t.faults

let render_faults t =
  let buffer = Buffer.create 256 in
  Queue.iter
    (fun f ->
      Buffer.add_string buffer
        (Printf.sprintf "%-12s FAULT %s\n" (Units.Time.to_string f.fault_at)
           f.what))
    t.faults;
  Buffer.contents buffer

let entries t = List.of_seq (Queue.to_seq t.buffer)

let count t ?link event =
  Queue.fold
    (fun acc entry ->
      if
        entry.event = event
        && match link with None -> true | Some l -> l = entry.link
      then acc + 1
      else acc)
    0 t.buffer

let truncated t = t.truncated

let event_to_string : Link.event -> string = function
  | Link.Sent -> "sent"
  | Link.Queue_dropped -> "queue-drop"
  | Link.Transmitted -> "transmitted"
  | Link.Loss_dropped -> "loss-drop"
  | Link.Corrupted -> "corrupted"
  | Link.Delivered -> "delivered"
  | Link.Fault_dropped -> "fault-drop"

let packet_history t ~packet_id =
  List.filter (fun entry -> entry.packet_id = packet_id) (entries t)

let render ?(limit = 50) t =
  let buffer = Buffer.create 1024 in
  let shown = ref 0 in
  Queue.iter
    (fun entry ->
      if !shown < limit then begin
        incr shown;
        Buffer.add_string buffer
          (Printf.sprintf "%-12s %-20s %-12s pkt#%-6d %s\n"
             (Units.Time.to_string entry.at)
             entry.link
             (event_to_string entry.event)
             entry.packet_id
             (Units.Size.to_string entry.size))
      end)
    t.buffer;
  if Queue.length t.buffer > limit then
    Buffer.add_string buffer
      (Printf.sprintf "... (%d more entries)\n" (Queue.length t.buffer - limit));
  Buffer.contents buffer
