(** Size-classed frame pool.

    Simulation workloads allocate millions of short-lived frames
    ([bytes]) that die at well-known points: loss drops and queue drops
    inside {!Link}, expired-deadline drops inside {!Queue_model}, and
    the copy sources of the in-network duplicator and the
    retransmission buffer.  Recycling them through a pool keeps the
    per-packet hot path off the minor heap.

    Classes are keyed by exact frame length ([bytes] cannot be
    resized), each class a bounded stack, so [acquire]/[release] are
    O(1) and perform no allocation once a class is warm.

    Pooling is opt-in: every integration point takes [?pool] and
    behaves byte-identically without one.  {!release_packet} is the
    generation-stamped safe path: it retires the packet's frame (the
    packet is left holding the shared zero-length {!retired} sentinel
    and its [gen] is bumped), so releasing twice is a no-op and a
    recycled buffer can never be reached through the dead packet. *)

type t

type stats = {
  acquired : int;  (** Total [acquire] calls. *)
  recycled : int;  (** Acquires served from the pool (no allocation). *)
  released : int;  (** Frames accepted back into the pool. *)
  dropped : int;  (** Releases discarded because the class was full. *)
  pooled_bytes : int;  (** Bytes currently held, summed over classes. *)
}

val create : ?max_per_class:int -> unit -> t
(** [max_per_class] bounds each size class (default 256 frames), so a
    burst of one frame size cannot pin unbounded memory. *)

val retired : bytes
(** The shared zero-length sentinel installed into packets whose frame
    was released.  Touching it instead of real payload makes
    use-after-release loud (length 0) rather than silently corrupt. *)

val acquire : t -> int -> bytes
(** [acquire t len] returns a frame of exactly [len] bytes — recycled
    when the class has one, freshly allocated otherwise.  Contents are
    unspecified (matching [Bytes.create]); the caller overwrites. *)

val release : t -> bytes -> unit
(** Return a frame to its size class.  Only for buffers the caller
    exclusively owns (e.g. scratch copies); frames still referenced by
    a live {!Packet.t} must go through {!release_packet}. *)

val release_packet : t -> Packet.t -> unit
(** Retire [packet]'s frame into the pool: the frame is swapped for
    {!retired} and the packet's generation is bumped first, so a second
    call (or a stale alias) cannot hand the same buffer out twice. *)

val stats : t -> stats
