open Mmt_util

(* Structure-of-arrays binary min-heap ordered by (at, seq).

   The hot path — schedule, sift, pop, run — touches only immediate
   [int] arrays plus one closure array, so scheduling an event performs
   no heap allocation beyond the caller's callback: timestamps are
   unboxed nanosecond ints ({!Mmt_util.Units.Time}), handles are packed
   slot+generation ints, and sifting swaps parallel array elements with
   int temporaries.

   Layout: three parallel arrays indexed by heap position hold the key
   ([h_at], [h_seq]) and the owning slot id ([h_slot]).  A slot table
   indexed by slot id carries the callback ([s_fn]) and the handle
   generation ([s_gen]); free slots are chained through [s_free].
   Cancellation replaces the slot's callback with a private sentinel
   closure — O(1), no heap walk — and exact dead-weight accounting
   triggers an in-place compaction when cancelled entries exceed half
   the heap, so cancel-heavy workloads (timeouts, retransmit timers)
   cannot grow the queue without bound. *)

type t = {
  (* heap arrays, parallel, indexed by heap position *)
  mutable h_at : int array;
  mutable h_seq : int array;
  mutable h_slot : int array;
  mutable size : int;
  (* slot table, parallel, indexed by slot id *)
  mutable s_fn : (unit -> unit) array;
  mutable s_gen : int array;
  mutable s_next : int array; (* equal-time chain successor; -1 terminates *)
  mutable s_free : int array; (* freelist chain; -1 terminates *)
  mutable free_head : int;
  mutable clock : int; (* ns *)
  mutable next_seq : int;
  mutable live : int;
  mutable processed : int;
  mutable last_at : int; (* ns timestamp of the last executed event *)
  mutable cancelled_in_heap : int;
  (* Same-timestamp batching cache.  [cache_tail] is the slot holding
     the highest ordinary sequence number at instant [cache_at], or -1
     when no such slot is known.  An ordinary schedule at exactly
     [cache_at] appends to that slot's intrusive [s_next] chain instead
     of pushing a fresh heap entry: the chain rides on the heap entry
     that heads it, so N same-instant events cost one sift-up (the
     head's) plus one final sift-down instead of N of each.  Appending
     preserves the total (at, seq) order because sequence numbers are
     assigned in scheduling order: while the cache is valid, *every*
     ordinary schedule at [cache_at] lands on the chain, so the chain
     is exactly the ascending-seq suffix of that instant and no other
     heap entry's key can fall inside it.  [free_slot] invalidates the
     cache the moment the tail slot dies, which is the only way it can
     go stale. *)
  mutable cache_at : int;
  mutable cache_tail : int;
  (* Staged (two-phase) events.  A staged entry fires twice from one
     heap slot: when it first reaches the root its callback runs *in
     place* -- the entry is not popped -- and may call advance_current
     to re-arm the same entry at a later instant with a freshly drawn
     sequence number and a new callback.  The re-key is one sift-down
     instead of the pop + push + slot-recycle a second event would
     cost, and because the sequence number is drawn at the stage
     instant, the (at, seq) keys the heap sees are exactly those of
     the two-event schedule.  [staging] guards advance_current;
     [adv_at] < 0 after the callback returns means the event dies. *)
  mutable s_staged : bool array;
  mutable staging : bool;
  mutable adv_at : int;
  mutable adv_seq : int;
  mutable adv_fn : unit -> unit;
}

(* The (at, seq) key space is split into two lanes.  Ordinary events
   draw seq from a counter starting at [boundary_seq_limit], so any
   caller-supplied key below the limit sorts ahead of every ordinary
   event at the same instant.  Boundary links (see {!Link}) use that
   low lane with keys derived from (edge id, per-edge FIFO seq) — a
   total order both the sequential engine and the sharded runner
   ({!Shard}) can compute identically, which is what makes sharded
   execution byte-for-byte equal to sequential execution. *)
let boundary_seq_limit = 1 lsl 60

type handle = int
(* [(slot lsl 31) lor generation]: immediate, so scheduling returns
   without allocating.  A slot's generation bumps every time the slot
   is freed, so handles to events that already ran (or were cancelled)
   go stale and [cancel] ignores them. *)

let null : handle = -1
let gen_mask = 0x7FFF_FFFF

(* Distinct top-level closures: [no_fn] fills empty slots, [cancelled_fn]
   marks cancelled ones.  Physical identity distinguishes them from any
   user callback (including [Stdlib.ignore]). *)
let no_fn = fun () -> ()
let cancelled_fn = fun () -> ()

let initial_capacity = 64

let create () =
  let cap = initial_capacity in
  let s_free = Array.init cap (fun i -> if i = cap - 1 then -1 else i + 1) in
  {
    h_at = Array.make cap 0;
    h_seq = Array.make cap 0;
    h_slot = Array.make cap 0;
    size = 0;
    s_fn = Array.make cap no_fn;
    s_gen = Array.make cap 0;
    s_next = Array.make cap (-1);
    s_free;
    free_head = 0;
    clock = 0;
    next_seq = boundary_seq_limit;
    live = 0;
    processed = 0;
    last_at = 0;
    cancelled_in_heap = 0;
    cache_at = min_int;
    cache_tail = -1;
    s_staged = Array.make cap false;
    staging = false;
    adv_at = -1;
    adv_seq = 0;
    adv_fn = no_fn;
  }

let now t : Units.Time.t = Units.Time.of_int_ns t.clock

(* (at, seq) lexicographic order between heap positions i and j. *)
let earlier t i j =
  let ai = t.h_at.(i) and aj = t.h_at.(j) in
  if ai <> aj then ai < aj else t.h_seq.(i) < t.h_seq.(j)

let swap t i j =
  let at = t.h_at.(i) in
  t.h_at.(i) <- t.h_at.(j);
  t.h_at.(j) <- at;
  let seq = t.h_seq.(i) in
  t.h_seq.(i) <- t.h_seq.(j);
  t.h_seq.(j) <- seq;
  let slot = t.h_slot.(i) in
  t.h_slot.(i) <- t.h_slot.(j);
  t.h_slot.(j) <- slot

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if earlier t i parent then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let left = (2 * i) + 1 in
  let right = left + 1 in
  let smallest = ref i in
  if left < t.size && earlier t left !smallest then smallest := left;
  if right < t.size && earlier t right !smallest then smallest := right;
  if !smallest <> i then begin
    swap t i !smallest;
    sift_down t !smallest
  end

(* Double every array; free slots above the old capacity join the
   freelist.  Amortized over the doubling, schedule stays O(log n)
   with no per-event allocation. *)
let grow t =
  let old = Array.length t.h_at in
  let cap = 2 * old in
  let extend_int a fill =
    let b = Array.make cap fill in
    Array.blit a 0 b 0 old;
    b
  in
  t.h_at <- extend_int t.h_at 0;
  t.h_seq <- extend_int t.h_seq 0;
  t.h_slot <- extend_int t.h_slot 0;
  let fns = Array.make cap no_fn in
  Array.blit t.s_fn 0 fns 0 old;
  t.s_fn <- fns;
  t.s_gen <- extend_int t.s_gen 0;
  t.s_next <- extend_int t.s_next (-1);
  let staged = Array.make cap false in
  Array.blit t.s_staged 0 staged 0 old;
  t.s_staged <- staged;
  t.s_free <- extend_int t.s_free 0;
  for i = old to cap - 1 do
    t.s_free.(i) <- (if i = cap - 1 then t.free_head else i + 1)
  done;
  t.free_head <- old

let alloc_slot t =
  if t.free_head = -1 then grow t;
  let slot = t.free_head in
  t.free_head <- t.s_free.(slot);
  slot

(* Bump the generation (staling every outstanding handle) and release
   the callback so the GC can collect it.  Freeing the batching cache's
   tail slot is the only way the cache can go stale, so invalidate it
   here and nowhere else. *)
let free_slot t slot =
  if slot = t.cache_tail then t.cache_tail <- -1;
  t.s_gen.(slot) <- (t.s_gen.(slot) + 1) land gen_mask;
  t.s_fn.(slot) <- no_fn;
  t.s_next.(slot) <- -1;
  t.s_staged.(slot) <- false;
  t.s_free.(slot) <- t.free_head;
  t.free_head <- slot

(* Shared tail of [schedule] and [schedule_boundary]: push (at, seq)
   into the heap with callback [fn]. *)
let schedule_keyed t ~at ~seq fn =
  let slot = alloc_slot t in
  t.s_fn.(slot) <- fn;
  (* Heap arrays share capacity with the slot table and at most one
     slot per heap entry is live, so after [alloc_slot] there is room. *)
  let i = t.size in
  t.h_at.(i) <- at;
  t.h_seq.(i) <- seq;
  t.h_slot.(i) <- slot;
  t.size <- i + 1;
  t.live <- t.live + 1;
  sift_up t i;
  (slot lsl 31) lor t.s_gen.(slot)

let schedule t ~at fn =
  let at = Stdlib.max (Units.Time.to_ns at) t.clock in
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  if at = t.cache_at && t.cache_tail >= 0 then begin
    (* Same instant as the last ordinary schedule and its slot is still
       pending: append to the equal-time chain — no heap traffic. *)
    let slot = alloc_slot t in
    t.s_fn.(slot) <- fn;
    t.s_next.(t.cache_tail) <- slot;
    t.cache_tail <- slot;
    t.live <- t.live + 1;
    (slot lsl 31) lor t.s_gen.(slot)
  end
  else begin
    let handle = schedule_keyed t ~at ~seq fn in
    t.cache_at <- at;
    t.cache_tail <- handle lsr 31;
    handle
  end

let schedule_after t ~delay fn =
  schedule t ~at:(Units.Time.add (now t) delay) fn

(* A staged entry must stay individually addressable by the heap -- its
   re-key moves only itself -- so it neither joins an equal-time chain
   nor registers as the chain cache's tail (chain members ride their
   head's key, which advancing would drag along with it). *)
let schedule_staged t ~at fn =
  let at = Stdlib.max (Units.Time.to_ns at) t.clock in
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  let handle = schedule_keyed t ~at ~seq fn in
  t.s_staged.(handle lsr 31) <- true;
  handle

(* The sequence number is drawn here, at call time, not when [step]
   applies the re-key after the callback returns: the callback may go
   on to schedule further events (the link's transmit chain does), and
   those must draw later numbers -- exactly as if the advance had been
   an ordinary [schedule] at this point in the callback. *)
let advance_current t ~at fn =
  if not t.staging then
    invalid_arg "Engine.advance_current: no staged event is executing";
  let at = Stdlib.max (Units.Time.to_ns at) t.clock in
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  t.adv_at <- at;
  t.adv_seq <- seq;
  t.adv_fn <- fn

let schedule_boundary t ~at ~key fn =
  if key < 0 || key >= boundary_seq_limit then
    invalid_arg "Engine.schedule_boundary: key outside the boundary lane";
  let at = Stdlib.max (Units.Time.to_ns at) t.clock in
  schedule_keyed t ~at ~seq:key fn

(* Remove the root; returns its slot.  The caller decides whether the
   event runs or was dead weight. *)
let pop t =
  let slot = t.h_slot.(0) in
  let last = t.size - 1 in
  t.h_at.(0) <- t.h_at.(last);
  t.h_seq.(0) <- t.h_seq.(last);
  t.h_slot.(0) <- t.h_slot.(last);
  t.size <- last;
  if last > 0 then sift_down t 0;
  slot

(* Consume the root entry's current slot.  When the slot heads an
   equal-time chain, promote its successor into the root in place —
   same heap position, same (at, seq) key, zero sifts — so a chain of N
   same-instant events pays for one real pop.  Keeping the head's key
   is sound: every sequence number between the head's and a member's
   belongs to the chain itself (same-instant schedules always chained
   while the cache was valid), so no other entry sorts inside it. *)
let take_root t =
  let slot = t.h_slot.(0) in
  let next = t.s_next.(slot) in
  if next >= 0 then begin
    t.h_slot.(0) <- next;
    slot
  end
  else pop t

(* Drop cancelled entries and restore the heap property bottom-up.
   The comparator is a total order, so pop order — and therefore the
   simulation — is unchanged.  Equal-time chains are pruned in place:
   cancelled members are unlinked and freed, and an entry whose chain
   head died promotes the first live member under the original
   (at, seq) key — the same key-preservation argument as {!take_root}. *)
let compact t =
  let n = t.size in
  let kept = ref 0 in
  for i = 0 to n - 1 do
    let head = ref t.h_slot.(i) in
    while !head >= 0 && t.s_fn.(!head) == cancelled_fn do
      let next = t.s_next.(!head) in
      free_slot t !head;
      head := next
    done;
    if !head >= 0 then begin
      let prev = ref !head in
      let cur = ref t.s_next.(!head) in
      while !cur >= 0 do
        let next = t.s_next.(!cur) in
        if t.s_fn.(!cur) == cancelled_fn then begin
          t.s_next.(!prev) <- next;
          free_slot t !cur
        end
        else prev := !cur;
        cur := next
      done;
      let k = !kept in
      t.h_at.(k) <- t.h_at.(i);
      t.h_seq.(k) <- t.h_seq.(i);
      t.h_slot.(k) <- !head;
      incr kept
    end
  done;
  t.size <- !kept;
  t.cancelled_in_heap <- 0;
  for i = (t.size / 2) - 1 downto 0 do
    sift_down t i
  done

let cancel t handle =
  if handle >= 0 then begin
    let slot = handle lsr 31 in
    let gen = handle land gen_mask in
    if
      slot < Array.length t.s_gen
      && t.s_gen.(slot) = gen
      && t.s_fn.(slot) != cancelled_fn
    then begin
      t.s_fn.(slot) <- cancelled_fn;
      t.live <- t.live - 1;
      t.cancelled_in_heap <- t.cancelled_in_heap + 1;
      if 2 * t.cancelled_in_heap > t.size then compact t
    end
  end

let pending t = t.live
let processed t = t.processed
let last_event_at t = Units.Time.of_int_ns t.last_at

let next_event_ns t = if t.size = 0 then max_int else t.h_at.(0)

(* Top-level recursion (not a local [rec] closure): [step] and [run]
   sit on the per-event hot path, and a closure capturing [t] would be
   allocated on every call. *)
let rec step t =
  if t.size = 0 then false
  else begin
    let slot = t.h_slot.(0) in
    if t.s_staged.(slot) && t.s_fn.(slot) != cancelled_fn then begin
      (* Stage phase: run the callback with the entry still at the
         root.  Nothing the callback is allowed to do can displace it:
         ordinary schedules carry later sequence numbers at this or a
         later instant, and staged callbacks must neither schedule
         boundary events for the current instant nor cancel (a
         compaction would rebuild the heap under us). *)
      let at = t.h_at.(0) in
      t.clock <- at;
      t.last_at <- at;
      t.processed <- t.processed + 1;
      t.s_staged.(slot) <- false;
      t.staging <- true;
      t.adv_at <- -1;
      (t.s_fn.(slot)) ();
      t.staging <- false;
      assert (t.h_slot.(0) = slot);
      if t.adv_at >= 0 then begin
        (* Re-arm in place.  The new key is a later (at, seq), so one
           sift-down restores heap order; and the advanced entry holds
           the newest sequence number at its instant, making it a
           valid equal-time chain tail for subsequent schedules. *)
        t.s_fn.(slot) <- t.adv_fn;
        t.adv_fn <- no_fn;
        t.h_at.(0) <- t.adv_at;
        t.h_seq.(0) <- t.adv_seq;
        sift_down t 0;
        t.cache_at <- t.adv_at;
        t.cache_tail <- slot
      end
      else begin
        t.live <- t.live - 1;
        ignore (pop t);
        free_slot t slot
      end;
      true
    end
    else begin
      let at = t.h_at.(0) in
      let slot = take_root t in
      let fn = t.s_fn.(slot) in
      if fn == cancelled_fn then begin
        t.cancelled_in_heap <- t.cancelled_in_heap - 1;
        free_slot t slot;
        step t
      end
      else begin
        t.clock <- at;
        t.last_at <- at;
        t.live <- t.live - 1;
        t.processed <- t.processed + 1;
        free_slot t slot;
        fn ();
        true
      end
    end
  end

(* The run loop inlines [step]'s dispatch rather than calling it: the
   root peek, the cancelled check and the staged check would otherwise
   each be done twice per event.  Behaviour is identical. *)
let rec run_loop t limit =
  if t.size > 0 then begin
    let slot = t.h_slot.(0) in
    let fn = t.s_fn.(slot) in
    if fn == cancelled_fn then begin
      ignore (take_root t);
      t.cancelled_in_heap <- t.cancelled_in_heap - 1;
      free_slot t slot;
      run_loop t limit
    end
    else begin
      let at = t.h_at.(0) in
      if at <= limit then begin
        if t.s_staged.(slot) then begin
          t.clock <- at;
          t.last_at <- at;
          t.processed <- t.processed + 1;
          t.s_staged.(slot) <- false;
          t.staging <- true;
          t.adv_at <- -1;
          fn ();
          t.staging <- false;
          if t.adv_at >= 0 then begin
            t.s_fn.(slot) <- t.adv_fn;
            t.adv_fn <- no_fn;
            t.h_at.(0) <- t.adv_at;
            t.h_seq.(0) <- t.adv_seq;
            sift_down t 0;
            t.cache_at <- t.adv_at;
            t.cache_tail <- slot
          end
          else begin
            t.live <- t.live - 1;
            ignore (pop t);
            free_slot t slot
          end
        end
        else begin
          ignore (take_root t);
          t.clock <- at;
          t.last_at <- at;
          t.live <- t.live - 1;
          t.processed <- t.processed + 1;
          free_slot t slot;
          fn ()
        end;
        run_loop t limit
      end
    end
  end

let run_ns t limit =
  run_loop t limit;
  if limit <> max_int && t.clock < limit then t.clock <- limit

(* Watchdog variant: same schedule as [run_loop] (so a budget that
   never trips is byte-identical to [run ~until]), but gives up after
   executing [stop - processed] events.  A chaos scenario whose faults
   provoke a zero-delay event livelock would make [run ~until] spin
   forever — the clock never reaches [until] — so the invariant
   checker needs a bound expressed in events, not time.  Kept out of
   [run_loop] itself: that is the benchmarked hot path, and the inner
   [step] here pays a second root peek per event instead.  Cancelled
   roots are drained without consuming budget, mirroring the run loop. *)
let rec run_bounded_loop t limit stop =
  if t.size > 0 then begin
    let slot = t.h_slot.(0) in
    if t.s_fn.(slot) == cancelled_fn then begin
      ignore (take_root t);
      t.cancelled_in_heap <- t.cancelled_in_heap - 1;
      free_slot t slot;
      run_bounded_loop t limit stop
    end
    else if t.h_at.(0) <= limit && t.processed < stop then begin
      ignore (step t);
      run_bounded_loop t limit stop
    end
  end

let run_bounded t ~until ~budget =
  let limit = Units.Time.to_ns until in
  let stop =
    if budget >= max_int - t.processed then max_int else t.processed + budget
  in
  run_bounded_loop t limit stop;
  (* After the loop any remaining root is live, so [h_at] is exact:
     the run terminated iff no live work remains inside the window. *)
  let terminated = t.size = 0 || t.h_at.(0) > limit in
  if terminated && limit <> max_int && t.clock < limit then t.clock <- limit;
  terminated

let run ?until t =
  match until with
  | None -> run_ns t max_int
  | Some l -> run_ns t (Units.Time.to_ns l)

let run_until t ~until = run_ns t (Units.Time.to_ns until)
