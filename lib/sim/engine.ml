open Mmt_util

type event = {
  at : Units.Time.t;
  seq : int;
  fn : unit -> unit;
  mutable cancelled : bool;
  mutable in_heap : bool;
  owner : t option;
}

and t = {
  mutable heap : event array;
  mutable size : int;
  mutable clock : Units.Time.t;
  mutable next_seq : int;
  mutable live : int;
  mutable processed : int;
  mutable cancelled_in_heap : int;
}
(* Array-backed binary min-heap ordered by (at, seq).  Cancelled events
   are counted exactly; when more than half the heap is dead weight the
   heap is compacted in place, so a workload that schedules and cancels
   (timeouts, retransmit timers) cannot grow the queue without bound. *)

type handle = event

let dummy_event =
  {
    at = Units.Time.zero;
    seq = -1;
    fn = ignore;
    cancelled = true;
    in_heap = false;
    owner = None;
  }

let create () =
  {
    heap = Array.make 64 dummy_event;
    size = 0;
    clock = Units.Time.zero;
    next_seq = 0;
    live = 0;
    processed = 0;
    cancelled_in_heap = 0;
  }

let now t = t.clock

let earlier a b =
  let c = Units.Time.compare a.at b.at in
  if c <> 0 then c < 0 else a.seq < b.seq

let swap t i j =
  let tmp = t.heap.(i) in
  t.heap.(i) <- t.heap.(j);
  t.heap.(j) <- tmp

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if earlier t.heap.(i) t.heap.(parent) then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let left = (2 * i) + 1 in
  let right = left + 1 in
  let smallest = ref i in
  if left < t.size && earlier t.heap.(left) t.heap.(!smallest) then smallest := left;
  if right < t.size && earlier t.heap.(right) t.heap.(!smallest) then
    smallest := right;
  if !smallest <> i then begin
    swap t i !smallest;
    sift_down t !smallest
  end

let push t event =
  if t.size = Array.length t.heap then begin
    let bigger = Array.make (2 * t.size) dummy_event in
    Array.blit t.heap 0 bigger 0 t.size;
    t.heap <- bigger
  end;
  t.heap.(t.size) <- event;
  t.size <- t.size + 1;
  sift_up t (t.size - 1)

let pop t =
  let top = t.heap.(0) in
  t.size <- t.size - 1;
  t.heap.(0) <- t.heap.(t.size);
  t.heap.(t.size) <- dummy_event;
  if t.size > 0 then sift_down t 0;
  top.in_heap <- false;
  if top.cancelled then t.cancelled_in_heap <- t.cancelled_in_heap - 1;
  top

(* Drop cancelled events and restore the heap property bottom-up.
   The comparator is a total order, so pop order — and therefore the
   simulation — is unchanged. *)
let compact t =
  let n = t.size in
  let kept = ref 0 in
  for i = 0 to n - 1 do
    let e = t.heap.(i) in
    if e.cancelled then e.in_heap <- false
    else begin
      t.heap.(!kept) <- e;
      incr kept
    end
  done;
  for i = !kept to n - 1 do
    t.heap.(i) <- dummy_event
  done;
  t.size <- !kept;
  t.cancelled_in_heap <- 0;
  for i = (t.size / 2) - 1 downto 0 do
    sift_down t i
  done

let schedule t ~at fn =
  let at = Units.Time.max at t.clock in
  let event =
    { at; seq = t.next_seq; fn; cancelled = false; in_heap = true; owner = Some t }
  in
  t.next_seq <- t.next_seq + 1;
  t.live <- t.live + 1;
  push t event;
  event

let schedule_after t ~delay fn = schedule t ~at:(Units.Time.add t.clock delay) fn

let cancel handle =
  if not handle.cancelled then begin
    handle.cancelled <- true;
    match handle.owner with
    | None -> ()
    | Some t ->
        if handle.in_heap then begin
          t.live <- t.live - 1;
          t.cancelled_in_heap <- t.cancelled_in_heap + 1;
          if 2 * t.cancelled_in_heap > t.size then compact t
        end
  end

let pending t = t.live
let processed t = t.processed

let step t =
  let rec next () =
    if t.size = 0 then false
    else begin
      let event = pop t in
      if event.cancelled then next ()
      else begin
        t.clock <- event.at;
        t.live <- t.live - 1;
        t.processed <- t.processed + 1;
        event.fn ();
        true
      end
    end
  in
  next ()

let run ?until t =
  let fits event =
    match until with
    | None -> true
    | Some limit -> Units.Time.(event.at <= limit)
  in
  let rec loop () =
    if t.size > 0 then begin
      let top = t.heap.(0) in
      if top.cancelled then begin
        ignore (pop t);
        loop ()
      end
      else if fits top then begin
        ignore (step t);
        loop ()
      end
    end
  in
  loop ();
  match until with
  | Some limit when Units.Time.(t.clock < limit) -> t.clock <- limit
  | _ -> ()
