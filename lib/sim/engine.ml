open Mmt_util

(* Structure-of-arrays binary min-heap ordered by (at, seq).

   The hot path — schedule, sift, pop, run — touches only immediate
   [int] arrays plus one closure array, so scheduling an event performs
   no heap allocation beyond the caller's callback: timestamps are
   unboxed nanosecond ints ({!Mmt_util.Units.Time}), handles are packed
   slot+generation ints, and sifting swaps parallel array elements with
   int temporaries.

   Layout: three parallel arrays indexed by heap position hold the key
   ([h_at], [h_seq]) and the owning slot id ([h_slot]).  A slot table
   indexed by slot id carries the callback ([s_fn]) and the handle
   generation ([s_gen]); free slots are chained through [s_free].
   Cancellation replaces the slot's callback with a private sentinel
   closure — O(1), no heap walk — and exact dead-weight accounting
   triggers an in-place compaction when cancelled entries exceed half
   the heap, so cancel-heavy workloads (timeouts, retransmit timers)
   cannot grow the queue without bound. *)

type t = {
  (* heap arrays, parallel, indexed by heap position *)
  mutable h_at : int array;
  mutable h_seq : int array;
  mutable h_slot : int array;
  mutable size : int;
  (* slot table, parallel, indexed by slot id *)
  mutable s_fn : (unit -> unit) array;
  mutable s_gen : int array;
  mutable s_free : int array; (* freelist chain; -1 terminates *)
  mutable free_head : int;
  mutable clock : int; (* ns *)
  mutable next_seq : int;
  mutable live : int;
  mutable processed : int;
  mutable last_at : int; (* ns timestamp of the last executed event *)
  mutable cancelled_in_heap : int;
}

(* The (at, seq) key space is split into two lanes.  Ordinary events
   draw seq from a counter starting at [boundary_seq_limit], so any
   caller-supplied key below the limit sorts ahead of every ordinary
   event at the same instant.  Boundary links (see {!Link}) use that
   low lane with keys derived from (edge id, per-edge FIFO seq) — a
   total order both the sequential engine and the sharded runner
   ({!Shard}) can compute identically, which is what makes sharded
   execution byte-for-byte equal to sequential execution. *)
let boundary_seq_limit = 1 lsl 60

type handle = int
(* [(slot lsl 31) lor generation]: immediate, so scheduling returns
   without allocating.  A slot's generation bumps every time the slot
   is freed, so handles to events that already ran (or were cancelled)
   go stale and [cancel] ignores them. *)

let null : handle = -1
let gen_mask = 0x7FFF_FFFF

(* Distinct top-level closures: [no_fn] fills empty slots, [cancelled_fn]
   marks cancelled ones.  Physical identity distinguishes them from any
   user callback (including [Stdlib.ignore]). *)
let no_fn = fun () -> ()
let cancelled_fn = fun () -> ()

let initial_capacity = 64

let create () =
  let cap = initial_capacity in
  let s_free = Array.init cap (fun i -> if i = cap - 1 then -1 else i + 1) in
  {
    h_at = Array.make cap 0;
    h_seq = Array.make cap 0;
    h_slot = Array.make cap 0;
    size = 0;
    s_fn = Array.make cap no_fn;
    s_gen = Array.make cap 0;
    s_free;
    free_head = 0;
    clock = 0;
    next_seq = boundary_seq_limit;
    live = 0;
    processed = 0;
    last_at = 0;
    cancelled_in_heap = 0;
  }

let now t : Units.Time.t = Units.Time.of_int_ns t.clock

(* (at, seq) lexicographic order between heap positions i and j. *)
let earlier t i j =
  let ai = t.h_at.(i) and aj = t.h_at.(j) in
  if ai <> aj then ai < aj else t.h_seq.(i) < t.h_seq.(j)

let swap t i j =
  let at = t.h_at.(i) in
  t.h_at.(i) <- t.h_at.(j);
  t.h_at.(j) <- at;
  let seq = t.h_seq.(i) in
  t.h_seq.(i) <- t.h_seq.(j);
  t.h_seq.(j) <- seq;
  let slot = t.h_slot.(i) in
  t.h_slot.(i) <- t.h_slot.(j);
  t.h_slot.(j) <- slot

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if earlier t i parent then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let left = (2 * i) + 1 in
  let right = left + 1 in
  let smallest = ref i in
  if left < t.size && earlier t left !smallest then smallest := left;
  if right < t.size && earlier t right !smallest then smallest := right;
  if !smallest <> i then begin
    swap t i !smallest;
    sift_down t !smallest
  end

(* Double every array; free slots above the old capacity join the
   freelist.  Amortized over the doubling, schedule stays O(log n)
   with no per-event allocation. *)
let grow t =
  let old = Array.length t.h_at in
  let cap = 2 * old in
  let extend_int a fill =
    let b = Array.make cap fill in
    Array.blit a 0 b 0 old;
    b
  in
  t.h_at <- extend_int t.h_at 0;
  t.h_seq <- extend_int t.h_seq 0;
  t.h_slot <- extend_int t.h_slot 0;
  let fns = Array.make cap no_fn in
  Array.blit t.s_fn 0 fns 0 old;
  t.s_fn <- fns;
  t.s_gen <- extend_int t.s_gen 0;
  t.s_free <- extend_int t.s_free 0;
  for i = old to cap - 1 do
    t.s_free.(i) <- (if i = cap - 1 then t.free_head else i + 1)
  done;
  t.free_head <- old

let alloc_slot t =
  if t.free_head = -1 then grow t;
  let slot = t.free_head in
  t.free_head <- t.s_free.(slot);
  slot

(* Bump the generation (staling every outstanding handle) and release
   the callback so the GC can collect it. *)
let free_slot t slot =
  t.s_gen.(slot) <- (t.s_gen.(slot) + 1) land gen_mask;
  t.s_fn.(slot) <- no_fn;
  t.s_free.(slot) <- t.free_head;
  t.free_head <- slot

(* Shared tail of [schedule] and [schedule_boundary]: push (at, seq)
   into the heap with callback [fn]. *)
let schedule_keyed t ~at ~seq fn =
  let slot = alloc_slot t in
  t.s_fn.(slot) <- fn;
  (* Heap arrays share capacity with the slot table and at most one
     slot per heap entry is live, so after [alloc_slot] there is room. *)
  let i = t.size in
  t.h_at.(i) <- at;
  t.h_seq.(i) <- seq;
  t.h_slot.(i) <- slot;
  t.size <- i + 1;
  t.live <- t.live + 1;
  sift_up t i;
  (slot lsl 31) lor t.s_gen.(slot)

let schedule t ~at fn =
  let at = Stdlib.max (Units.Time.to_ns at) t.clock in
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  schedule_keyed t ~at ~seq fn

let schedule_after t ~delay fn =
  schedule t ~at:(Units.Time.add (now t) delay) fn

let schedule_boundary t ~at ~key fn =
  if key < 0 || key >= boundary_seq_limit then
    invalid_arg "Engine.schedule_boundary: key outside the boundary lane";
  let at = Stdlib.max (Units.Time.to_ns at) t.clock in
  schedule_keyed t ~at ~seq:key fn

(* Remove the root; returns its slot.  The caller decides whether the
   event runs or was dead weight. *)
let pop t =
  let slot = t.h_slot.(0) in
  let last = t.size - 1 in
  t.h_at.(0) <- t.h_at.(last);
  t.h_seq.(0) <- t.h_seq.(last);
  t.h_slot.(0) <- t.h_slot.(last);
  t.size <- last;
  if last > 0 then sift_down t 0;
  slot

(* Drop cancelled entries and restore the heap property bottom-up.
   The comparator is a total order, so pop order — and therefore the
   simulation — is unchanged. *)
let compact t =
  let n = t.size in
  let kept = ref 0 in
  for i = 0 to n - 1 do
    let slot = t.h_slot.(i) in
    if t.s_fn.(slot) == cancelled_fn then free_slot t slot
    else begin
      let k = !kept in
      t.h_at.(k) <- t.h_at.(i);
      t.h_seq.(k) <- t.h_seq.(i);
      t.h_slot.(k) <- slot;
      incr kept
    end
  done;
  t.size <- !kept;
  t.cancelled_in_heap <- 0;
  for i = (t.size / 2) - 1 downto 0 do
    sift_down t i
  done

let cancel t handle =
  if handle >= 0 then begin
    let slot = handle lsr 31 in
    let gen = handle land gen_mask in
    if
      slot < Array.length t.s_gen
      && t.s_gen.(slot) = gen
      && t.s_fn.(slot) != cancelled_fn
    then begin
      t.s_fn.(slot) <- cancelled_fn;
      t.live <- t.live - 1;
      t.cancelled_in_heap <- t.cancelled_in_heap + 1;
      if 2 * t.cancelled_in_heap > t.size then compact t
    end
  end

let pending t = t.live
let processed t = t.processed
let last_event_at t = Units.Time.of_int_ns t.last_at

let next_event_ns t = if t.size = 0 then max_int else t.h_at.(0)

(* Top-level recursion (not a local [rec] closure): [step] and [run]
   sit on the per-event hot path, and a closure capturing [t] would be
   allocated on every call. *)
let rec step t =
  if t.size = 0 then false
  else begin
    let at = t.h_at.(0) in
    let slot = pop t in
    let fn = t.s_fn.(slot) in
    if fn == cancelled_fn then begin
      t.cancelled_in_heap <- t.cancelled_in_heap - 1;
      free_slot t slot;
      step t
    end
    else begin
      t.clock <- at;
      t.last_at <- at;
      t.live <- t.live - 1;
      t.processed <- t.processed + 1;
      free_slot t slot;
      fn ();
      true
    end
  end

let rec run_loop t limit =
  if t.size > 0 then begin
    let slot = t.h_slot.(0) in
    if t.s_fn.(slot) == cancelled_fn then begin
      ignore (pop t);
      t.cancelled_in_heap <- t.cancelled_in_heap - 1;
      free_slot t slot;
      run_loop t limit
    end
    else if t.h_at.(0) <= limit then begin
      ignore (step t);
      run_loop t limit
    end
  end

let run_ns t limit =
  run_loop t limit;
  if limit <> max_int && t.clock < limit then t.clock <- limit

let run ?until t =
  match until with
  | None -> run_ns t max_int
  | Some l -> run_ns t (Units.Time.to_ns l)

let run_until t ~until = run_ns t (Units.Time.to_ns until)
