(** Link impairment models.

    The paper's WAN segments are capacity-planned (no congestion loss)
    but "can occasionally lose packets from corruption" (§ 4); DAQ
    networks are lossless.  [Gilbert_elliott] adds bursty loss for
    stress tests beyond the paper's assumptions. *)

open Mmt_util

type decision =
  | Deliver
  | Corrupt  (** delivered with the corrupted flag set: receivers discard *)
  | Drop  (** silently lost *)

type t

val perfect : t
(** Never impairs. *)

val bernoulli : drop:float -> corrupt:float -> rng:Rng.t -> t
(** Independent per-packet probabilities.  @raise Invalid_argument if
    either probability is outside [\[0, 1\]] or they sum above 1. *)

val gilbert_elliott :
  ?corrupt_in_bad:float ->
  p_good_to_bad:float ->
  p_bad_to_good:float ->
  drop_in_bad:float ->
  rng:Rng.t ->
  unit ->
  t
(** Two-state burst-loss chain; lossless in the good state.  In the
    bad state each packet is dropped with [drop_in_bad], delivered
    corrupted with [corrupt_in_bad] (default 0), and delivered clean
    otherwise.  @raise Invalid_argument if any probability is outside
    [\[0, 1\]] or [drop_in_bad +. corrupt_in_bad] exceeds 1. *)

val decide : t -> decision
(** Consume one trial. *)

val describe : t -> string
