open Mmt_util

type decision = Deliver | Corrupt | Drop

type model =
  | Perfect
  | Bernoulli of { drop : float; corrupt : float; rng : Rng.t }
  | Gilbert of {
      p_good_to_bad : float;
      p_bad_to_good : float;
      drop_in_bad : float;
      corrupt_in_bad : float;
      rng : Rng.t;
      mutable bad : bool;
    }

type t = model

let perfect = Perfect

let bernoulli ~drop ~corrupt ~rng =
  let bad p = p < 0. || p > 1. in
  if bad drop || bad corrupt || drop +. corrupt > 1. then
    invalid_arg "Loss.bernoulli: bad probabilities";
  Bernoulli { drop; corrupt; rng }

let gilbert_elliott ?(corrupt_in_bad = 0.) ~p_good_to_bad ~p_bad_to_good
    ~drop_in_bad ~rng () =
  let bad p = p < 0. || p > 1. in
  if
    bad p_good_to_bad || bad p_bad_to_good || bad drop_in_bad
    || bad corrupt_in_bad
    || drop_in_bad +. corrupt_in_bad > 1.
  then invalid_arg "Loss.gilbert_elliott: bad probabilities";
  Gilbert
    { p_good_to_bad; p_bad_to_good; drop_in_bad; corrupt_in_bad; rng;
      bad = false }

let decide t =
  match t with
  | Perfect -> Deliver
  | Bernoulli { drop; corrupt; rng } ->
      let u = Rng.float rng in
      if u < drop then Drop
      else if u < drop +. corrupt then Corrupt
      else Deliver
  | Gilbert g ->
      (* Advance the state chain, then draw within the state. *)
      if g.bad then begin
        if Rng.bernoulli g.rng ~p:g.p_bad_to_good then g.bad <- false
      end
      else if Rng.bernoulli g.rng ~p:g.p_good_to_bad then g.bad <- true;
      if not g.bad then Deliver
      else if g.corrupt_in_bad = 0. then
        (* Keep the historic draw pattern exactly: byte-identity of
           existing experiment reports depends on the RNG stream. *)
        if Rng.bernoulli g.rng ~p:g.drop_in_bad then Drop else Deliver
      else
        let u = Rng.float g.rng in
        if u < g.drop_in_bad then Drop
        else if u < g.drop_in_bad +. g.corrupt_in_bad then Corrupt
        else Deliver

let describe = function
  | Perfect -> "perfect"
  | Bernoulli { drop; corrupt; _ } ->
      Printf.sprintf "bernoulli(drop=%g, corrupt=%g)" drop corrupt
  | Gilbert { p_good_to_bad; p_bad_to_good; drop_in_bad; corrupt_in_bad; _ }
    ->
      if corrupt_in_bad = 0. then
        Printf.sprintf "gilbert(g->b=%g, b->g=%g, drop|bad=%g)" p_good_to_bad
          p_bad_to_good drop_in_bad
      else
        Printf.sprintf "gilbert(g->b=%g, b->g=%g, drop|bad=%g, corrupt|bad=%g)"
          p_good_to_bad p_bad_to_good drop_in_bad corrupt_in_bad
