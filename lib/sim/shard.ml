open Mmt_util

(* Conservative topology-partitioned parallel execution.

   The topology is cut at boundary links (propagation >= 1 ms, see
   {!Link.cut_threshold}); each resulting component group runs its own
   SoA event heap on its own domain, and domains advance in lockstep
   time windows of width w = the minimum propagation delay over
   cross-shard links.  A window [T, T+w) is safe to run without
   hearing from other shards: any packet another shard finishes
   transmitting during the window arrives no earlier than T + w.
   Packets crossing a cut edge travel through that edge's SPSC
   mailbox, carrying the arrival time and boundary-lane key the
   sequential engine would have used — so when the receiving shard
   re-schedules them, same-instant ordering (and therefore the whole
   execution) is byte-identical to a sequential run.

   Synchronization is a sense-reversing barrier (one mutex, one
   condition variable): two crossings per window, one after runs and
   one after mailbox drains, with the last arriver of the second
   crossing computing the next window cap while it still holds the
   mutex.  The mutex acquire/release pairs provide every
   happens-before edge the mailbox phase discipline needs, and a
   barrier crossing allocates nothing — the per-window cost is two
   lock round-trips per domain. *)

(* Fills vacated mailbox cells; never delivered. *)
let dummy_packet = Packet.create ~id:(-1) ~born:Units.Time.zero Pool.retired

type barrier = {
  mutex : Mutex.t;
  cond : Condition.t;
  parties : int;
  mutable arrived : int;
  mutable sense : bool;
}

let barrier_create parties =
  {
    mutex = Mutex.create ();
    cond = Condition.create ();
    parties;
    arrived = 0;
    sense = false;
  }

(* The last arriver runs [serial] under the mutex before releasing the
   others — the leader section that computes the next window. *)
let barrier_wait b serial =
  Mutex.lock b.mutex;
  let s = b.sense in
  b.arrived <- b.arrived + 1;
  if b.arrived = b.parties then begin
    serial ();
    b.arrived <- 0;
    b.sense <- not s;
    Condition.broadcast b.cond
  end
  else
    while b.sense = s do
      Condition.wait b.cond b.mutex
    done;
  Mutex.unlock b.mutex

let no_serial () = ()

(* One cross-shard cut edge, as seen by its receiving shard: the
   mailbox its source shard pushes into, and a preallocated injector
   that re-schedules a drained message on the receiving engine under
   the (at, key) it crossed with. *)
type route = {
  mailbox : Packet.t Mailbox.t;
  inject : at:int -> key:int -> Packet.t -> unit;
}

type t = {
  engines : Engine.t array;
  incoming : route array array; (* per receiving shard *)
  window_ns : int; (* max_int when no link crosses shards *)
  barrier : barrier;
  mutable cap_ns : int; (* current window cap, written by the leader *)
  mutable until_ns : int;
  mutable finished : bool;
  mutable failed : (int * exn * Printexc.raw_backtrace) option;
}

let nshards t = Array.length t.engines

let events t =
  Array.fold_left (fun acc e -> acc + Engine.processed e) 0 t.engines

let last_event_at t =
  Array.fold_left
    (fun acc e -> Units.Time.max acc (Engine.last_event_at e))
    Units.Time.zero t.engines

(* Union-find over nodes joined by non-boundary edges: the groups that
   must share an engine.  Components are numbered in node-creation
   order of their first member, so the numbering is deterministic. *)
let component_map topo =
  let nodes = Array.of_list (Topology.nodes topo) in
  let n = Array.length nodes in
  let index = Hashtbl.create n in
  Array.iteri (fun i node -> Hashtbl.replace index (Node.name node) i) nodes;
  let parent = Array.init n Fun.id in
  let rec find i =
    if parent.(i) = i then i
    else begin
      let root = find parent.(i) in
      parent.(i) <- root;
      root
    end
  in
  List.iter
    (fun (src, dst, link) ->
      if not (Link.is_boundary link) then begin
        let a = find (Hashtbl.find index (Node.name src))
        and b = find (Hashtbl.find index (Node.name dst)) in
        if a <> b then parent.(Stdlib.max a b) <- Stdlib.min a b
      end)
    (Topology.edges topo);
  let comp_of_root = Hashtbl.create 8 in
  let ncomp = ref 0 in
  let comp_by_name = Hashtbl.create n in
  Array.iter
    (fun node ->
      let root = find (Hashtbl.find index (Node.name node)) in
      let comp =
        match Hashtbl.find_opt comp_of_root root with
        | Some c -> c
        | None ->
            let c = !ncomp in
            incr ncomp;
            Hashtbl.replace comp_of_root root c;
            c
      in
      Hashtbl.replace comp_by_name (Node.name node) comp)
    nodes;
  (comp_by_name, !ncomp)

let components topo = snd (component_map topo)

let wire topo engines =
  let nshards = Array.length engines in
  let incoming = Array.make nshards [] in
  let window = ref max_int in
  List.iter
    (fun (src, dst, link) ->
      if Link.is_boundary link then begin
        let ssrc = Topology.shard_of_node topo src
        and sdst = Topology.shard_of_node topo dst in
        if ssrc <> sdst then begin
          window :=
            Stdlib.min !window (Units.Time.to_ns (Link.propagation link));
          let mailbox = Mailbox.create ~dummy:dummy_packet in
          (* Ring slots never cross domains: detach frees the source
             shard's slot and sends a floating record through the
             mailbox; the receiving shard retires it into its own
             ring's pool (receiving-shard frame ownership, as with
             plain pools). *)
          let src_ring = Topology.ring_of_shard topo ssrc in
          Link.set_boundary_exit link
            (Some
               (fun ~at ~key packet ->
                 let packet =
                   match src_ring with
                   | Some ring -> Ring.detach ring packet
                   | None -> packet
                 in
                 Mailbox.push mailbox ~at:(Units.Time.to_ns at) ~key packet));
          let engine = engines.(sdst) in
          let inject ~at ~key packet =
            ignore
              (Engine.schedule_boundary engine ~at:(Units.Time.of_int_ns at)
                 ~key (fun () -> Link.deliver_now link packet))
          in
          incoming.(sdst) <- { mailbox; inject } :: incoming.(sdst)
        end
      end)
    (Topology.edges topo);
  let incoming = Array.map (fun l -> Array.of_list (List.rev l)) incoming in
  {
    engines;
    incoming;
    window_ns = !window;
    barrier = barrier_create nshards;
    cap_ns = 0;
    until_ns = max_int;
    finished = false;
    failed = None;
  }

let build ~shards ?pool ?(pooling = true) ?(fusing = true) build_fn =
  (* Two-pass construction: build once on a throwaway engine to learn
     the graph, partition it, then rebuild for real on per-shard
     engines.  Sharing [build_fn] between the passes (and between the
     sequential fallback and the sharded path) structurally guarantees
     both modes construct the identical topology — same nodes, links,
     and cut-edge ids in the same order. *)
  let sequential () =
    let engine = Engine.create () in
    let topo =
      Topology.create ~engine
        ?pool:(Option.map (fun f -> f ()) pool)
        ~pooling ~fusing ()
    in
    let result = build_fn topo in
    (topo, result, None)
  in
  if shards < 2 then sequential ()
  else begin
    (* The probe topology is thrown away unrun: no rings or pools. *)
    let probe = Topology.create ~engine:(Engine.create ()) ~pooling:false () in
    ignore (build_fn probe);
    let comp_by_name, ncomp = component_map probe in
    if ncomp < 2 then sequential ()
    else begin
      let nshards = Stdlib.min shards ncomp in
      let assign name = Hashtbl.find comp_by_name name mod nshards in
      let engines = Array.init nshards (fun _ -> Engine.create ()) in
      let pools =
        Option.map (fun f -> Array.init nshards (fun _ -> f ())) pool
      in
      let topo =
        Topology.create_sharded ~engines ~assign ?pools ~pooling ~fusing ()
      in
      let result = build_fn topo in
      (topo, result, Some (wire topo engines))
    end
  end

(* Minimum next-event time over all engines.  Top-level and
   tail-recursive on an int accumulator: the leader calls this on every
   window and a barrier crossing must not allocate (a local [rec]
   closure or a ref cell would). *)
let rec min_next_ns engines i acc =
  if i >= Array.length engines then acc
  else
    min_next_ns engines (i + 1)
      (Stdlib.min acc (Engine.next_event_ns engines.(i)))

let fail t shard exn bt =
  Mutex.lock t.barrier.mutex;
  if t.failed = None then t.failed <- Some (shard, exn, bt);
  Mutex.unlock t.barrier.mutex

type gc_tuning = { minor_heap_kb : int option; space_overhead : int option }

let default_gc = { minor_heap_kb = None; space_overhead = None }

let apply_gc g =
  match (g.minor_heap_kb, g.space_overhead) with
  | None, None -> ()
  | minor, overhead ->
      let params = Gc.get () in
      let minor_heap_size =
        match minor with
        | Some kb when kb > 0 -> kb * 1024 / (Sys.word_size / 8)
        | _ -> params.Gc.minor_heap_size
      in
      let space_overhead =
        match overhead with
        | Some pct when pct > 0 -> pct
        | _ -> params.Gc.space_overhead
      in
      Gc.set { params with Gc.minor_heap_size; space_overhead }

let run ?until ?(gc = default_gc) t =
  t.until_ns <-
    (match until with None -> max_int | Some u -> Units.Time.to_ns u);
  t.finished <- false;
  t.failed <- None;
  (* Leader section, run by the last domain into the post-drain
     barrier: every mailbox is empty (drained into its engine), so the
     global minimum next-event time over the heaps is exact.  The next
     window cap is T_min + w - 1: an event at time tau <= cap can only
     be affected by a cross-shard packet arriving at tau' >= T_min + w
     > cap, so the window runs without further coordination. *)
  let compute () =
    if t.failed <> None then t.finished <- true
    else begin
      let tmin_ns = min_next_ns t.engines 0 max_int in
      if tmin_ns = max_int || tmin_ns > t.until_ns then t.finished <- true
      else begin
        let cap =
          if t.window_ns = max_int then max_int else tmin_ns + t.window_ns - 1
        in
        t.cap_ns <- Stdlib.min cap t.until_ns
      end
    end
  in
  let worker shard =
    let engine = t.engines.(shard) in
    let routes = t.incoming.(shard) in
    let dead = ref false in
    let continue = ref true in
    while !continue do
      (* Crossing 1: every producer has parked, so draining is safe. *)
      barrier_wait t.barrier no_serial;
      Array.iter (fun r -> Mailbox.drain r.mailbox r.inject) routes;
      (* Crossing 2: every drain has landed; the leader computes. *)
      barrier_wait t.barrier compute;
      if t.finished then continue := false
      else if not !dead then begin
        try Engine.run_until engine ~until:(Units.Time.of_int_ns t.cap_ns)
        with exn ->
          let bt = Printexc.get_raw_backtrace () in
          fail t shard exn bt;
          (* Keep crossing barriers so the others are not stranded;
             the leader declares the run finished at the next window. *)
          dead := true
      end
    done;
    (* Match the sequential clock-clamp semantics of [run ~until]: the
       loop may have quiesced before the caller's horizon. *)
    if t.until_ns <> max_int && not !dead then
      Engine.run ~until:(Units.Time.of_int_ns t.until_ns) engine
  in
  let crew =
    Array.init
      (Array.length t.engines - 1)
      (fun i ->
        Domain.spawn (fun () ->
            (* Spawned domains die with the run; no restore needed. *)
            apply_gc gc;
            worker (i + 1)))
  in
  (* Domain 0 is the caller's: save and restore its GC parameters. *)
  let saved =
    if gc.minor_heap_kb <> None || gc.space_overhead <> None then
      Some (Gc.get ())
    else None
  in
  apply_gc gc;
  Fun.protect
    ~finally:(fun () -> Option.iter Gc.set saved)
    (fun () ->
      worker 0;
      Array.iter Domain.join crew);
  match t.failed with
  | Some (_, exn, bt) -> Printexc.raise_with_backtrace exn bt
  | None -> ()
