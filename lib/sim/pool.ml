(* Size classes are exact frame lengths: [bytes] cannot be resized, and
   simulated traffic is dominated by a handful of fixed frame shapes
   (header sizes x payload sizes), so exact-length classes hit almost
   always without wasting slack bytes.  Each class is a bounded stack
   backed by a bytes array — push/pop touch no list cells, so a warm
   acquire/release pair allocates nothing. *)

type stack = { mutable items : bytes array; mutable len : int }

type stats = {
  acquired : int;
  recycled : int;
  released : int;
  dropped : int;
  pooled_bytes : int;
}

type t = {
  classes : (int, stack) Hashtbl.t;
  max_per_class : int;
  mutable acquired : int;
  mutable recycled : int;
  mutable released : int;
  mutable dropped : int;
}

let retired = Bytes.create 0

let create ?(max_per_class = 256) () =
  if max_per_class < 1 then invalid_arg "Pool.create: max_per_class < 1";
  {
    classes = Hashtbl.create 16;
    max_per_class;
    acquired = 0;
    recycled = 0;
    released = 0;
    dropped = 0;
  }

let acquire t len =
  t.acquired <- t.acquired + 1;
  match Hashtbl.find_opt t.classes len with
  | Some s when s.len > 0 ->
      s.len <- s.len - 1;
      let frame = s.items.(s.len) in
      s.items.(s.len) <- retired;
      t.recycled <- t.recycled + 1;
      frame
  | Some _ | None -> Bytes.create len

let release t frame =
  let len = Bytes.length frame in
  if len > 0 then begin
    let s =
      match Hashtbl.find_opt t.classes len with
      | Some s -> s
      | None ->
          let s = { items = Array.make 8 retired; len = 0 } in
          Hashtbl.add t.classes len s;
          s
    in
    if s.len >= t.max_per_class then t.dropped <- t.dropped + 1
    else begin
      if s.len = Array.length s.items then begin
        let bigger = Array.make (2 * s.len) retired in
        Array.blit s.items 0 bigger 0 s.len;
        s.items <- bigger
      end;
      s.items.(s.len) <- frame;
      s.len <- s.len + 1;
      t.released <- t.released + 1
    end
  end

let release_packet t (packet : Packet.t) =
  let frame = packet.Packet.frame in
  if frame != retired && Bytes.length frame > 0 then begin
    (* Swap in the sentinel and bump the generation *before* the frame
       re-enters the pool: any alias still holding the packet sees a
       stale generation and an empty frame, never recycled payload. *)
    packet.Packet.frame <- retired;
    packet.Packet.gen <- packet.Packet.gen + 1;
    release t frame
  end

let stats t =
  let pooled_bytes =
    Hashtbl.fold (fun len s acc -> acc + (len * s.len)) t.classes 0
  in
  ({
     acquired = t.acquired;
     recycled = t.recycled;
     released = t.released;
     dropped = t.dropped;
     pooled_bytes;
   }
    : stats)
