(* Size classes are exact frame lengths: [bytes] cannot be resized, and
   simulated traffic is dominated by a handful of fixed frame shapes
   (header sizes x payload sizes), so exact-length classes hit almost
   always without wasting slack bytes.  Each class is a bounded stack
   backed by a bytes array — push/pop touch no list cells, so a warm
   acquire/release pair allocates nothing. *)

type stack = { mutable items : bytes array; mutable len : int }

type stats = {
  acquired : int;
  recycled : int;
  released : int;
  dropped : int;
  pooled_bytes : int;
}

type t = {
  classes : (int, stack) Hashtbl.t;
  max_per_class : int;
  (* Single-entry class cache: steady-state traffic on a link is one
     frame shape, so the common acquire/release pair skips both
     hashtable probes. *)
  mutable last_len : int;
  mutable last_class : stack;
  mutable acquired : int;
  mutable recycled : int;
  mutable released : int;
  mutable dropped : int;
}

let retired = Bytes.create 0

(* Shared sentinel for "no such size class": always empty, never added
   to any table, so acquire falls through to a fresh allocation and
   release replaces it with a real class. *)
let empty_class = { items = [||]; len = 0 }

let create ?(max_per_class = 256) () =
  if max_per_class < 1 then invalid_arg "Pool.create: max_per_class < 1";
  {
    classes = Hashtbl.create 16;
    max_per_class;
    last_len = -1;
    last_class = empty_class;
    acquired = 0;
    recycled = 0;
    released = 0;
    dropped = 0;
  }

(* [Hashtbl.find] + [Not_found] rather than [find_opt]: the hot path
   must not build a [Some] box per acquire/release. *)
let find_class t len =
  if len = t.last_len then t.last_class
  else
    match Hashtbl.find t.classes len with
    | s ->
        t.last_len <- len;
        t.last_class <- s;
        s
    | exception Not_found -> empty_class

let acquire t len =
  t.acquired <- t.acquired + 1;
  let s = find_class t len in
  if s.len > 0 then begin
    s.len <- s.len - 1;
    let frame = s.items.(s.len) in
    s.items.(s.len) <- retired;
    t.recycled <- t.recycled + 1;
    frame
  end
  else Bytes.create len

let release t frame =
  let len = Bytes.length frame in
  if len > 0 then begin
    let s =
      let s = find_class t len in
      if s != empty_class then s
      else begin
        let s = { items = Array.make 8 retired; len = 0 } in
        Hashtbl.add t.classes len s;
        t.last_len <- len;
        t.last_class <- s;
        s
      end
    in
    if s.len >= t.max_per_class then t.dropped <- t.dropped + 1
    else begin
      if s.len = Array.length s.items then begin
        let bigger = Array.make (2 * s.len) retired in
        Array.blit s.items 0 bigger 0 s.len;
        s.items <- bigger
      end;
      s.items.(s.len) <- frame;
      s.len <- s.len + 1;
      t.released <- t.released + 1
    end
  end

let release_packet t (packet : Packet.t) =
  let frame = packet.Packet.frame in
  if frame != retired && Bytes.length frame > 0 then begin
    (* Swap in the sentinel and bump the generation *before* the frame
       re-enters the pool: any alias still holding the packet sees a
       stale generation and an empty frame, never recycled payload. *)
    packet.Packet.frame <- retired;
    packet.Packet.gen <- packet.Packet.gen + 1;
    release t frame
  end

let stats t =
  let pooled_bytes =
    Hashtbl.fold (fun len s acc -> acc + (len * s.len)) t.classes 0
  in
  ({
     acquired = t.acquired;
     recycled = t.recycled;
     released = t.released;
     dropped = t.dropped;
     pooled_bytes;
   }
    : stats)
