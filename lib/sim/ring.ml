open Mmt_util

type stats = {
  capacity : int;
  in_use : int;
  acquired : int;
  retired : int;
  double_done : int;
  overflow : int;
  detached : int;
}

type t = {
  pool : Pool.t;
  max_slots : int;
  mutable slots : Packet.t array;
  mutable live : bool array;
  mutable free : int array;
  mutable free_top : int;
  mutable acquired : int;
  mutable retired_count : int;
  mutable double_done : int;
  mutable overflow : int;
  mutable detached : int;
}

let fresh_slot i =
  let p = Packet.create ~id:(-1) ~born:Units.Time.zero Pool.retired in
  p.Packet.slot <- i;
  p

let create ?(slots = 1024) ?(max_slots = 1 lsl 16) ?pool () =
  if slots < 1 then invalid_arg "Ring.create: slots < 1";
  let max_slots = max max_slots slots in
  let pool = match pool with Some p -> p | None -> Pool.create () in
  {
    pool;
    max_slots;
    slots = Array.init slots fresh_slot;
    live = Array.make slots false;
    (* Reverse order so slot 0 pops first. *)
    free = Array.init slots (fun i -> slots - 1 - i);
    free_top = slots;
    acquired = 0;
    retired_count = 0;
    double_done = 0;
    overflow = 0;
    detached = 0;
  }

let pool t = t.pool

let grow t =
  let old_cap = Array.length t.slots in
  let new_cap = min t.max_slots (old_cap * 2) in
  if new_cap > old_cap then begin
    let slots =
      Array.init new_cap (fun i ->
          if i < old_cap then t.slots.(i) else fresh_slot i)
    in
    let live = Array.make new_cap false in
    Array.blit t.live 0 live 0 old_cap;
    let free = Array.make new_cap 0 in
    let added = new_cap - old_cap in
    for k = 0 to added - 1 do
      free.(k) <- new_cap - 1 - k
    done;
    t.slots <- slots;
    t.live <- live;
    t.free <- free;
    t.free_top <- added
  end

let install p ~id ~padding ~born frame =
  p.Packet.id <- id;
  p.Packet.frame <- frame;
  p.Packet.padding <- padding;
  p.Packet.born <- born;
  p.Packet.corrupted <- false;
  p.Packet.hops <- 0;
  p

(* No option on the acquire path: a [Some] box per packet would defeat
   the whole point of the ring. *)
let alloc t ?(padding = 0) ~id ~born frame =
  if padding < 0 then invalid_arg "Ring.alloc: negative padding";
  t.acquired <- t.acquired + 1;
  if t.free_top = 0 && Array.length t.slots < t.max_slots then grow t;
  if t.free_top = 0 then begin
    t.overflow <- t.overflow + 1;
    Packet.create ~padding ~id ~born frame
  end
  else begin
    t.free_top <- t.free_top - 1;
    let i = t.free.(t.free_top) in
    t.live.(i) <- true;
    install t.slots.(i) ~id ~padding ~born frame
  end

let in_packet t ?(padding = 0) ~id ~born len =
  alloc t ~padding ~id ~born (Pool.acquire t.pool len)

let clone t src ~id =
  let len = Bytes.length src.Packet.frame in
  let p =
    in_packet t ~padding:src.Packet.padding ~id ~born:src.Packet.born len
  in
  Bytes.blit src.Packet.frame 0 p.Packet.frame 0 len;
  p.Packet.corrupted <- src.Packet.corrupted;
  p.Packet.hops <- src.Packet.hops;
  p

let free_slot t i =
  t.live.(i) <- false;
  t.free.(t.free_top) <- i;
  t.free_top <- t.free_top + 1

let in_packet_done t p =
  let s = p.Packet.slot in
  if s < 0 then begin
    if p.Packet.frame != Pool.retired && Bytes.length p.Packet.frame > 0 then begin
      t.retired_count <- t.retired_count + 1;
      Pool.release_packet t.pool p
    end
  end
  else if s < Array.length t.slots && t.live.(s) && t.slots.(s) == p then begin
    t.retired_count <- t.retired_count + 1;
    Pool.release_packet t.pool p;
    free_slot t s
  end
  else t.double_done <- t.double_done + 1

let detach t p =
  let s = p.Packet.slot in
  if s < 0 then p
  else if s < Array.length t.slots && t.live.(s) && t.slots.(s) == p then begin
    t.detached <- t.detached + 1;
    let floating = Packet.clone p ~id:p.Packet.id ~frame:p.Packet.frame in
    (* Free the slot without recycling the frame: ownership of the
       buffer travels with the floating record. *)
    p.Packet.frame <- Pool.retired;
    p.Packet.gen <- p.Packet.gen + 1;
    free_slot t s;
    floating
  end
  else p

let stats t =
  {
    capacity = Array.length t.slots;
    in_use = Array.length t.slots - t.free_top;
    acquired = t.acquired;
    retired = t.retired_count;
    double_done = t.double_done;
    overflow = t.overflow;
    detached = t.detached;
  }
