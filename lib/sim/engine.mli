(** Deterministic discrete-event simulation engine.

    Events are closures keyed by (time, insertion sequence): two events
    scheduled for the same instant fire in the order they were
    scheduled, so runs are exactly reproducible.  Time is
    {!Mmt_util.Units.Time} (integer nanoseconds). *)

open Mmt_util

type t

type handle
(** Cancellation token for a scheduled event. *)

val create : unit -> t
(** A fresh engine at time zero with an empty event queue. *)

val now : t -> Units.Time.t

val schedule : t -> at:Units.Time.t -> (unit -> unit) -> handle
(** [schedule t ~at fn] runs [fn] when the clock reaches [at].
    Scheduling in the past (before [now t]) runs at the current time
    instead — a common idiom for "immediately, but after the current
    event finishes". *)

val schedule_after : t -> delay:Units.Time.t -> (unit -> unit) -> handle

val cancel : handle -> unit
(** Cancelled events are skipped; cancelling twice is harmless, as is
    cancelling an event that has already run.  When cancelled entries
    outnumber live ones the queue is compacted, so cancel-heavy
    workloads (timeouts, retransmit timers) stay bounded. *)

val pending : t -> int
(** Live (uncancelled) events still queued.  O(1). *)

val processed : t -> int
(** Events executed so far. *)

val run : ?until:Units.Time.t -> t -> unit
(** Execute events in order until the queue empties, or until the next
    event lies strictly beyond [until] (clock then advances to [until]).
    Re-entrant scheduling from inside events is the normal mode of
    operation. *)

val step : t -> bool
(** Execute exactly one event; [false] when the queue is empty. *)
