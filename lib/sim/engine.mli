(** Deterministic discrete-event simulation engine.

    Events are closures keyed by (time, insertion sequence): two events
    scheduled for the same instant fire in the order they were
    scheduled, so runs are exactly reproducible.  Time is
    {!Mmt_util.Units.Time} (unboxed integer nanoseconds).

    The queue is a structure-of-arrays binary heap: timestamps and
    sequence numbers live in parallel [int] arrays, callbacks in one
    closure array, and handles are packed slot+generation ints — so
    {!schedule} performs no heap allocation beyond the caller's
    callback closure. *)

open Mmt_util

type t

type handle = private int
(** Cancellation token for a scheduled event: an immediate
    slot+generation int.  Stale handles (events that already ran or
    were cancelled) are recognized by their generation and ignored. *)

val null : handle
(** A handle that never matches any event; {!cancel} ignores it.  Use
    as the initial value of a timer field instead of wrapping handles
    in [option] (which would box them). *)

val create : unit -> t
(** A fresh engine at time zero with an empty event queue. *)

val now : t -> Units.Time.t

val schedule : t -> at:Units.Time.t -> (unit -> unit) -> handle
(** [schedule t ~at fn] runs [fn] when the clock reaches [at].
    Scheduling in the past (before [now t]) runs at the current time
    instead — a common idiom for "immediately, but after the current
    event finishes". *)

val schedule_after : t -> delay:Units.Time.t -> (unit -> unit) -> handle

val cancel : t -> handle -> unit
(** [cancel t h] — [h] must come from this engine.  Cancelled events
    are skipped; cancelling twice is harmless, as is cancelling an
    event that has already run (the handle's generation went stale).
    When cancelled entries outnumber live ones the queue is compacted,
    so cancel-heavy workloads (timeouts, retransmit timers) stay
    bounded. *)

val pending : t -> int
(** Live (uncancelled) events still queued.  O(1). *)

val processed : t -> int
(** Events executed so far. *)

val run : ?until:Units.Time.t -> t -> unit
(** Execute events in order until the queue empties, or until the next
    event lies strictly beyond [until] (clock then advances to [until]).
    Re-entrant scheduling from inside events is the normal mode of
    operation. *)

val step : t -> bool
(** Execute exactly one event; [false] when the queue is empty. *)
