(** Deterministic discrete-event simulation engine.

    Events are closures keyed by (time, sequence): two events scheduled
    for the same instant fire in sequence order, so runs are exactly
    reproducible.  Time is {!Mmt_util.Units.Time} (unboxed integer
    nanoseconds).

    The sequence space has two lanes.  Ordinary events ({!schedule})
    draw sequence numbers from a counter that starts above every
    possible boundary key, so among themselves they fire in the order
    they were scheduled.  Boundary events ({!schedule_boundary}) carry
    a caller-chosen key below that counter's floor, so at any given
    instant every boundary event fires before every ordinary event,
    ordered among themselves by key alone.  The point of the low lane:
    a boundary key is derived from data both the sequential engine and
    the sharded runner ({!Shard}) compute identically — (cut-edge id,
    per-edge FIFO sequence) — whereas the ordinary counter reflects
    global scheduling order, which only exists in a single-engine run.
    This is what makes a sharded run byte-identical to a sequential
    one.

    The queue is a structure-of-arrays binary heap: timestamps and
    sequence numbers live in parallel [int] arrays, callbacks in one
    closure array, and handles are packed slot+generation ints — so
    {!schedule} performs no heap allocation beyond the caller's
    callback closure.

    Same-instant ordinary events are batched through an intrusive
    equal-time chain: consecutive {!schedule} calls for the same
    timestamp append to the previous event's chain instead of pushing
    fresh heap entries, and execution promotes chain successors into
    the root in place — N simultaneous deliveries (a facility incast)
    cost one sift-up plus one sift-down instead of N of each.  The
    chain drains in exactly the (time, sequence) order the unbatched
    heap would have produced: sequence numbers are assigned in
    scheduling order and every same-instant ordinary schedule joins
    the chain while it is open, so the chain is precisely the
    ascending-sequence suffix of that instant.  Boundary events never
    chain — their caller-chosen keys sort below the ordinary lane and
    must remain individually addressable by the heap. *)

open Mmt_util

type t

type handle = private int
(** Cancellation token for a scheduled event: an immediate
    slot+generation int.  Stale handles (events that already ran or
    were cancelled) are recognized by their generation and ignored. *)

val null : handle
(** A handle that never matches any event; {!cancel} ignores it.  Use
    as the initial value of a timer field instead of wrapping handles
    in [option] (which would box them). *)

val create : unit -> t
(** A fresh engine at time zero with an empty event queue. *)

val now : t -> Units.Time.t

val schedule : t -> at:Units.Time.t -> (unit -> unit) -> handle
(** [schedule t ~at fn] runs [fn] when the clock reaches [at].
    Scheduling in the past (before [now t]) runs at the current time
    instead — a common idiom for "immediately, but after the current
    event finishes". *)

val schedule_after : t -> delay:Units.Time.t -> (unit -> unit) -> handle

val schedule_staged : t -> at:Units.Time.t -> (unit -> unit) -> handle
(** A {e staged} (two-phase) event: one heap entry that can fire twice.
    At [at] the callback runs with the entry still at the heap root —
    it may call {!advance_current} to re-arm the very same entry at a
    later instant with a new callback; if it does not, the entry dies
    as a normal one-shot event.  The fused link hop ({!Link}) is the
    client: serialize + propagate become one scheduled entry, saving a
    push, a pop and a slot recycle per hop, while the (time, sequence)
    keys the heap orders on are exactly those the two-event schedule
    would have produced — so fused execution order is byte-identical.

    Constraints on the staged callback (it runs in place, with the
    entry still occupying the root): it must not cancel events (a
    compaction would rebuild the heap around the in-flight root) and
    must not schedule boundary events for the current instant (their
    low-lane keys would displace the root).  Ordinary {!schedule} /
    {!schedule_after} calls are fine. *)

val advance_current : t -> at:Units.Time.t -> (unit -> unit) -> unit
(** Re-arm the staged event whose callback is currently executing: the
    same heap entry becomes a pending event at [at] (clamped to now)
    running the new callback, under a sequence number drawn at this
    call — the exact number an ordinary [schedule] here would have
    drawn, which is what keeps fused and unfused runs identical.
    @raise Invalid_argument outside a staged callback. *)

val boundary_seq_limit : int
(** Exclusive upper bound of the boundary lane: every
    {!schedule_boundary} key lies in [\[0, boundary_seq_limit)], and
    ordinary sequence numbers start at [boundary_seq_limit]. *)

val schedule_boundary : t -> at:Units.Time.t -> key:int -> (unit -> unit) -> handle
(** [schedule_boundary t ~at ~key fn] schedules [fn] in the boundary
    lane: at instant [at] it fires before every ordinary event
    scheduled for [at], and boundary events at the same instant fire
    in increasing [key] order.  Keys must be unique per (engine,
    instant) — {!Link} guarantees this by packing (cut-edge id,
    per-edge FIFO sequence) into the key.  Used by boundary links in
    sequential runs and by the sharded runner's mailbox injection, so
    both produce the same execution order.
    @raise Invalid_argument if [key] is outside the boundary lane. *)

val cancel : t -> handle -> unit
(** [cancel t h] — [h] must come from this engine.  Cancelled events
    are skipped; cancelling twice is harmless, as is cancelling an
    event that has already run (the handle's generation went stale).
    When cancelled entries outnumber live ones the queue is compacted,
    so cancel-heavy workloads (timeouts, retransmit timers) stay
    bounded. *)

val pending : t -> int
(** Live (uncancelled) events still queued.  O(1). *)

val processed : t -> int
(** Events executed so far. *)

val last_event_at : t -> Units.Time.t
(** Timestamp of the most recently executed event (zero before any
    event has run).  Unlike {!now}, this is never advanced by
    [run ~until]'s clock clamp, so it reads the same whether the run
    was windowed by the sharded runner or executed in one piece. *)

val next_event_ns : t -> int
(** Nanosecond timestamp of the earliest queued entry, or [max_int]
    when the queue is empty.  The root may be a cancelled entry, in
    which case this is a lower bound on the next live event — still
    safe for the sharded runner's conservative window computation,
    which only ever needs "no event runs before this time". *)

val run : ?until:Units.Time.t -> t -> unit
(** Execute events in order until the queue empties, or until the next
    event lies strictly beyond [until] (clock then advances to [until]).
    Re-entrant scheduling from inside events is the normal mode of
    operation. *)

val run_until : t -> until:Units.Time.t -> unit
(** [run ~until] without the option box: the sharded runner calls this
    once per time window, and a barrier crossing must not allocate. *)

val step : t -> bool
(** Execute exactly one event; [false] when the queue is empty. *)

val run_bounded : t -> until:Units.Time.t -> budget:int -> bool
(** [run ~until] with a watchdog: execute at most [budget] events, in
    exactly the order [run ~until] would (a budget that never trips is
    byte-identical, clock clamp included).  Returns [true] when the
    run terminated — the queue emptied or the next live event lies
    beyond [until] — and [false] when the budget expired with live
    work still inside the window, which is how a chaos campaign
    detects an event livelock that a pure time cap would spin on
    forever.  On [false] the clock is left where the budget ran out. *)
