(** Simulated packets.

    A packet carries its real on-wire frame as [bytes] (the header
    stack that in-network elements parse and rewrite) plus an optional
    [padding] byte count so that jumbo-frame payloads can be modelled
    without materializing them: the wire size used for serialization
    delay is [Bytes.length frame + padding]. *)

open Mmt_util

type t = {
  mutable id : int;
  mutable frame : bytes;
  mutable padding : int;
  mutable born : Units.Time.t;
  mutable corrupted : bool;
  mutable hops : int;
  mutable gen : int;
      (** Frame generation, bumped by {!Pool.release_packet} when the
          frame is recycled.  A holder that recorded [gen] at hand-off
          can detect that the frame under it was retired. *)
  mutable slot : int;
      (** Ring-slot index when the record is a {!Ring} arena slot,
          [-1] for a floating (heap-allocated) packet.  Only {!Ring}
          writes this field. *)
}

val create :
  ?padding:int -> id:int -> born:Units.Time.t -> bytes -> t
(** @raise Invalid_argument if [padding < 0]. *)

val wire_size : t -> Units.Size.t
val frame : t -> bytes
val set_frame : t -> bytes -> unit
(** Replace the frame (used when a mode change grows or shrinks the
    header stack).  Padding is preserved. *)

val copy : t -> id:int -> t
(** Deep copy with a new identity (in-network duplication).  The copy
    is always floating ([slot = -1]). *)

val clone : t -> id:int -> frame:bytes -> t
(** Like {!copy} but adopting [frame] (e.g. a pool-acquired buffer the
    caller already filled) instead of copying the original's. *)

val pp : Format.formatter -> t -> unit
