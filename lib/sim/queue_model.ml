open Mmt_util

let dummy_packet = Packet.create ~id:(-1) ~born:Units.Time.zero Pool.retired

(* Circular packet FIFO: steady-state push/pop allocate nothing
   (stdlib [Queue] allocates a cell per push). *)
type fifo = {
  mutable buf : Packet.t array;
  mutable head : int;
  mutable len : int;
}

(* EDF heap as parallel arrays (SoA, mirroring the engine heap) so an
   enqueue allocates no entry record.  [deadlines] holds raw ns;
   deadline-free packets carry [no_deadline] = [max_int], which both
   sorts them after every deadline-bearing packet and makes the
   tie-break fall through to [seqs] — exactly the option semantics the
   record version had. *)
let no_deadline = max_int

type edf = {
  mutable packets : Packet.t array;
  mutable deadlines : int array;
  mutable seqs : int array;
  mutable size : int;
  drop_expired : bool;
  deadline_of : Packet.t -> Units.Time.t option;
}

type discipline = Fifo of fifo | Edf of edf

type t = {
  capacity : Units.Size.t;
  discipline : discipline;
  pool : Pool.t option;
  ring : Ring.t option;
      (* retires packets this queue destroys (expired drops); overflow
         drops never enter the queue and stay the caller's to retire *)
  mutable bytes : int;
  mutable next_seq : int;
  mutable overflow_drops : int;
  mutable expired_drops : int;
}

let droptail ?pool ?ring ~capacity () =
  {
    capacity;
    discipline = Fifo { buf = Array.make 64 dummy_packet; head = 0; len = 0 };
    pool;
    ring;
    bytes = 0;
    next_seq = 0;
    overflow_drops = 0;
    expired_drops = 0;
  }

let deadline_aware ?pool ?ring ~capacity ~drop_expired ~deadline_of () =
  {
    capacity;
    discipline =
      Edf
        {
          packets = Array.make 64 dummy_packet;
          deadlines = Array.make 64 no_deadline;
          seqs = Array.make 64 (-1);
          size = 0;
          drop_expired;
          deadline_of;
        };
    pool;
    ring;
    bytes = 0;
    next_seq = 0;
    overflow_drops = 0;
    expired_drops = 0;
  }

let retire t packet =
  match t.ring with
  | Some ring -> Ring.in_packet_done ring packet
  | None -> Option.iter (fun pool -> Pool.release_packet pool packet) t.pool

(* Index wrap by compare-and-subtract: the operands are always in
   [0, 2*cap), and a predictable branch beats the integer division a
   [mod] costs on the per-packet path. *)
let fifo_push f packet =
  let cap = Array.length f.buf in
  if f.len = cap then begin
    let grown = Array.make (cap * 2) dummy_packet in
    for i = 0 to f.len - 1 do
      let src = f.head + i in
      grown.(i) <- f.buf.(if src >= cap then src - cap else src)
    done;
    f.buf <- grown;
    f.head <- 0
  end;
  let cap = Array.length f.buf in
  let tail = f.head + f.len in
  f.buf.(if tail >= cap then tail - cap else tail) <- packet;
  f.len <- f.len + 1

let fifo_pop f =
  let packet = f.buf.(f.head) in
  f.buf.(f.head) <- dummy_packet;
  let next = f.head + 1 in
  f.head <- (if next >= Array.length f.buf then 0 else next);
  f.len <- f.len - 1;
  packet

(* EDF ordering: deadline-bearing packets first (earliest wins), then
   deadline-free packets in arrival order. *)
let entry_before edf i j =
  let di = edf.deadlines.(i) and dj = edf.deadlines.(j) in
  if di <> dj then di < dj else edf.seqs.(i) < edf.seqs.(j)

let swap edf i j =
  let p = edf.packets.(i) in
  edf.packets.(i) <- edf.packets.(j);
  edf.packets.(j) <- p;
  let d = edf.deadlines.(i) in
  edf.deadlines.(i) <- edf.deadlines.(j);
  edf.deadlines.(j) <- d;
  let s = edf.seqs.(i) in
  edf.seqs.(i) <- edf.seqs.(j);
  edf.seqs.(j) <- s

let heap_push edf packet deadline seq =
  if edf.size = Array.length edf.packets then begin
    let cap = 2 * edf.size in
    let packets = Array.make cap dummy_packet in
    let deadlines = Array.make cap no_deadline in
    let seqs = Array.make cap (-1) in
    Array.blit edf.packets 0 packets 0 edf.size;
    Array.blit edf.deadlines 0 deadlines 0 edf.size;
    Array.blit edf.seqs 0 seqs 0 edf.size;
    edf.packets <- packets;
    edf.deadlines <- deadlines;
    edf.seqs <- seqs
  end;
  edf.packets.(edf.size) <- packet;
  edf.deadlines.(edf.size) <- deadline;
  edf.seqs.(edf.size) <- seq;
  edf.size <- edf.size + 1;
  let i = ref (edf.size - 1) in
  while !i > 0 && entry_before edf !i ((!i - 1) / 2) do
    let parent = (!i - 1) / 2 in
    swap edf !i parent;
    i := parent
  done

(* Pops the root into the caller's hands: packet + deadline. *)
(* The caller reads [edf.deadlines.(0)] before popping — returning a
   (packet, deadline) pair here would be a tuple per dequeue. *)
let heap_pop edf =
  let packet = edf.packets.(0) in
  edf.size <- edf.size - 1;
  edf.packets.(0) <- edf.packets.(edf.size);
  edf.deadlines.(0) <- edf.deadlines.(edf.size);
  edf.seqs.(0) <- edf.seqs.(edf.size);
  edf.packets.(edf.size) <- dummy_packet;
  edf.deadlines.(edf.size) <- no_deadline;
  edf.seqs.(edf.size) <- -1;
  let rec sift i =
    let left = (2 * i) + 1 in
    let right = left + 1 in
    let smallest = ref i in
    if left < edf.size && entry_before edf left !smallest then smallest := left;
    if right < edf.size && entry_before edf right !smallest then
      smallest := right;
    if !smallest <> i then begin
      swap edf i !smallest;
      sift !smallest
    end
  in
  if edf.size > 0 then sift 0;
  packet

(* True when handing [packet] to an [enqueue] immediately followed by a
   [poll] would return exactly this packet with no other observable
   effect — an empty FIFO that the packet fits into.  The link uses
   this to bypass the queue entirely when its transmitter is idle:
   nothing can run between the enqueue and the poll (no event boundary,
   no callback), so skipping the round-trip is invisible.  EDF queues
   never qualify: a poll may expire the freshly enqueued packet
   ([drop_expired] with a deadline already in the past), which is a
   real decision the bypass must not skip. *)
let passes_when_empty t packet =
  match t.discipline with
  | Fifo f ->
      f.len = 0
      && Units.Size.to_bytes (Packet.wire_size packet)
         <= Units.Size.to_bytes t.capacity
  | Edf _ -> false

let enqueue t ~now:_ packet =
  let size = Units.Size.to_bytes (Packet.wire_size packet) in
  if t.bytes + size > Units.Size.to_bytes t.capacity then begin
    t.overflow_drops <- t.overflow_drops + 1;
    `Dropped
  end
  else begin
    t.bytes <- t.bytes + size;
    (match t.discipline with
    | Fifo f -> fifo_push f packet
    | Edf edf ->
        let deadline =
          match edf.deadline_of packet with
          | Some d -> Units.Time.to_ns d
          | None -> no_deadline
        in
        let seq = t.next_seq in
        t.next_seq <- t.next_seq + 1;
        heap_push edf packet deadline seq);
    `Accepted
  end

(* Returned by [poll] on an empty queue: a shared inert record (compare
   physically), so the link's transmit loop never builds a [Some] box
   per forwarded packet. *)
let empty = Packet.create ~id:(-1) ~born:Units.Time.zero Pool.retired

let rec poll t ~now =
  match t.discipline with
  | Fifo f ->
      if f.len = 0 then empty
      else begin
        let packet = fifo_pop f in
        t.bytes <- t.bytes - Units.Size.to_bytes (Packet.wire_size packet);
        packet
      end
  | Edf edf ->
      if edf.size = 0 then empty
      else begin
        let deadline = edf.deadlines.(0) in
        let packet = heap_pop edf in
        t.bytes <- t.bytes - Units.Size.to_bytes (Packet.wire_size packet);
        if
          edf.drop_expired && deadline <> no_deadline
          && deadline < Units.Time.to_ns now
        then begin
          t.expired_drops <- t.expired_drops + 1;
          retire t packet;
          poll t ~now
        end
        else packet
      end

let dequeue t ~now =
  let packet = poll t ~now in
  if packet == empty then None else Some packet

let length t =
  match t.discipline with Fifo f -> f.len | Edf edf -> edf.size

let queued_bytes t = Units.Size.bytes t.bytes
let overflow_drops t = t.overflow_drops
let expired_drops t = t.expired_drops

let describe t =
  match t.discipline with
  | Fifo _ -> Printf.sprintf "droptail(%s)" (Units.Size.to_string t.capacity)
  | Edf { drop_expired; _ } ->
      Printf.sprintf "edf(%s%s)"
        (Units.Size.to_string t.capacity)
        (if drop_expired then ", drop-expired" else "")
