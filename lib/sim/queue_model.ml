open Mmt_util

type entry = {
  packet : Packet.t;
  deadline : Units.Time.t option;
  seq : int;
}

type edf = {
  mutable heap : entry array;
  mutable size : int;
  drop_expired : bool;
  deadline_of : Packet.t -> Units.Time.t option;
}

type discipline = Fifo of Packet.t Queue.t | Edf of edf

type t = {
  capacity : Units.Size.t;
  discipline : discipline;
  pool : Pool.t option;
      (* recycles frames of packets this queue destroys (expired
         drops); overflow drops never enter the queue and stay the
         caller's to recycle *)
  mutable bytes : int;
  mutable next_seq : int;
  mutable overflow_drops : int;
  mutable expired_drops : int;
}

let dummy_entry () =
  {
    packet = Packet.create ~id:(-1) ~born:Units.Time.zero (Bytes.create 0);
    deadline = None;
    seq = -1;
  }

let droptail ?pool ~capacity () =
  {
    capacity;
    discipline = Fifo (Queue.create ());
    pool;
    bytes = 0;
    next_seq = 0;
    overflow_drops = 0;
    expired_drops = 0;
  }

let deadline_aware ?pool ~capacity ~drop_expired ~deadline_of () =
  {
    capacity;
    discipline =
      Edf { heap = Array.make 64 (dummy_entry ()); size = 0; drop_expired; deadline_of };
    pool;
    bytes = 0;
    next_seq = 0;
    overflow_drops = 0;
    expired_drops = 0;
  }

(* EDF ordering: deadline-bearing packets first (earliest wins), then
   deadline-free packets in arrival order. *)
let entry_before a b =
  match (a.deadline, b.deadline) with
  | Some da, Some db ->
      let c = Units.Time.compare da db in
      if c <> 0 then c < 0 else a.seq < b.seq
  | Some _, None -> true
  | None, Some _ -> false
  | None, None -> a.seq < b.seq

let heap_push edf entry =
  if edf.size = Array.length edf.heap then begin
    let bigger = Array.make (2 * edf.size) (dummy_entry ()) in
    Array.blit edf.heap 0 bigger 0 edf.size;
    edf.heap <- bigger
  end;
  edf.heap.(edf.size) <- entry;
  edf.size <- edf.size + 1;
  let i = ref (edf.size - 1) in
  while !i > 0 && entry_before edf.heap.(!i) edf.heap.((!i - 1) / 2) do
    let parent = (!i - 1) / 2 in
    let tmp = edf.heap.(!i) in
    edf.heap.(!i) <- edf.heap.(parent);
    edf.heap.(parent) <- tmp;
    i := parent
  done

let heap_pop edf =
  let top = edf.heap.(0) in
  edf.size <- edf.size - 1;
  edf.heap.(0) <- edf.heap.(edf.size);
  edf.heap.(edf.size) <- dummy_entry ();
  let rec sift i =
    let left = (2 * i) + 1 in
    let right = left + 1 in
    let smallest = ref i in
    if left < edf.size && entry_before edf.heap.(left) edf.heap.(!smallest) then
      smallest := left;
    if right < edf.size && entry_before edf.heap.(right) edf.heap.(!smallest) then
      smallest := right;
    if !smallest <> i then begin
      let tmp = edf.heap.(i) in
      edf.heap.(i) <- edf.heap.(!smallest);
      edf.heap.(!smallest) <- tmp;
      sift !smallest
    end
  in
  if edf.size > 0 then sift 0;
  top

let enqueue t ~now:_ packet =
  let size = Units.Size.to_bytes (Packet.wire_size packet) in
  if t.bytes + size > Units.Size.to_bytes t.capacity then begin
    t.overflow_drops <- t.overflow_drops + 1;
    `Dropped
  end
  else begin
    t.bytes <- t.bytes + size;
    (match t.discipline with
    | Fifo q -> Queue.push packet q
    | Edf edf ->
        let entry =
          { packet; deadline = edf.deadline_of packet; seq = t.next_seq }
        in
        t.next_seq <- t.next_seq + 1;
        heap_push edf entry);
    `Accepted
  end

let rec dequeue t ~now =
  match t.discipline with
  | Fifo q ->
      if Queue.is_empty q then None
      else begin
        let packet = Queue.pop q in
        t.bytes <- t.bytes - Units.Size.to_bytes (Packet.wire_size packet);
        Some packet
      end
  | Edf edf ->
      if edf.size = 0 then None
      else begin
        let entry = heap_pop edf in
        t.bytes <- t.bytes - Units.Size.to_bytes (Packet.wire_size entry.packet);
        match entry.deadline with
        | Some deadline when edf.drop_expired && Units.Time.(deadline < now) ->
            t.expired_drops <- t.expired_drops + 1;
            Option.iter (fun pool -> Pool.release_packet pool entry.packet) t.pool;
            dequeue t ~now
        | _ -> Some entry.packet
      end

let length t =
  match t.discipline with Fifo q -> Queue.length q | Edf edf -> edf.size

let queued_bytes t = Units.Size.bytes t.bytes
let overflow_drops t = t.overflow_drops
let expired_drops t = t.expired_drops

let describe t =
  match t.discipline with
  | Fifo _ -> Printf.sprintf "droptail(%s)" (Units.Size.to_string t.capacity)
  | Edf { drop_expired; _ } ->
      Printf.sprintf "edf(%s%s)"
        (Units.Size.to_string t.capacity)
        (if drop_expired then ", drop-expired" else "")
