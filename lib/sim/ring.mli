(** Preallocated packet ring (lib_ethernet MII idiom).

    A growable arena of preallocated {!Packet.t} records plus an
    embedded frame {!Pool}.  The hot path hands the *same* record —
    identified by its slot index ([Packet.slot]) — from link to element
    pipeline to receiver, and recycles both the record and its frame at
    the retirement point with {!in_packet_done}; steady-state forwarding
    therefore does zero minor allocation.

    Ownership protocol (MII [in_packet]/[in_packet_done]):

    - {!in_packet} / {!alloc} / {!clone} acquire a live slot; exactly
      one component owns it at a time.  Ownership moves with the
      packet: scheduling a delivery transfers it to the delivery
      closure, [Element.process] transfers it to the element for the
      duration of the call and back to the switch with the outcome.
    - The owner at a packet's end of life calls {!in_packet_done}
      (delivery consumed, loss/queue/fault drop, dedup, discard).
      Holding a reference after that point is a use-after-free bug:
      the slot's [gen] was bumped and the record will be rewritten by
      a future acquire.  Double-done is a counted no-op.
    - A slot must never cross a shard boundary: domains own disjoint
      rings.  {!detach} converts a slot packet into a floating record
      (the frame travels, the slot frees immediately) right before a
      mailbox push.

    Every operation falls back gracefully: past [max_slots] the ring
    hands out floating heap records (counted in [overflow]), and
    {!in_packet_done} on a floating packet just recycles its frame, so
    correctness never depends on capacity tuning. *)

open Mmt_util

type t

type stats = {
  capacity : int;  (** Current arena size (slots). *)
  in_use : int;  (** Live slots right now. *)
  acquired : int;  (** Total acquires (slots + overflow fallbacks). *)
  retired : int;  (** Total {!in_packet_done} retirements. *)
  double_done : int;  (** Redundant/stale retirements (no-ops). *)
  overflow : int;  (** Acquires served as floating records. *)
  detached : int;  (** Slot packets converted for shard crossing. *)
}

val create : ?slots:int -> ?max_slots:int -> ?pool:Pool.t -> unit -> t
(** [create ()] preallocates [slots] packet records (default 1024) and
    doubles on demand up to [max_slots] (default 65536).  [pool]
    supplies/receives the frames (fresh private pool by default).
    @raise Invalid_argument if [slots < 1]. *)

val pool : t -> Pool.t

val in_packet :
  t -> ?padding:int -> id:int -> born:Units.Time.t -> int -> Packet.t
(** [in_packet t ~id ~born len] acquires a slot holding a pool frame of
    exactly [len] bytes.  Contents are unspecified; the caller must
    overwrite every byte. *)

val alloc :
  t -> ?padding:int -> id:int -> born:Units.Time.t -> bytes -> Packet.t
(** Like {!in_packet} but adopting a caller-built frame (which will be
    recycled into the ring's pool at retirement). *)

val clone : t -> Packet.t -> id:int -> Packet.t
(** Slot-allocated deep copy (in-network duplication): pool frame,
    contents/padding/born/corrupted/hops copied from the source. *)

val in_packet_done : t -> Packet.t -> unit
(** Retire a packet: recycle its frame into the pool and free its slot.
    Safe on floating packets (frame recycle only) and idempotent — a
    second call on the same incarnation is a counted no-op. *)

val detach : t -> Packet.t -> Packet.t
(** [detach t p] frees [p]'s slot and returns a floating record that
    adopts [p]'s frame — used when a packet leaves this ring's domain
    through a shard mailbox.  Identity on already-floating packets. *)

val stats : t -> stats
