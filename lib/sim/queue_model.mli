(** Output-port queue disciplines.

    [droptail] is the commodity default.  [deadline_aware] implements
    the paper's § 5.3 idea that explicit transport deadlines are "an
    input to active queue management": earliest-deadline-first service,
    with optional dropping of already-expired packets. *)

open Mmt_util

type t

val droptail : ?pool:Pool.t -> ?ring:Ring.t -> capacity:Units.Size.t -> unit -> t
(** FIFO bounded by queued bytes; arrivals that would overflow are
    dropped. *)

val deadline_aware :
  ?pool:Pool.t ->
  ?ring:Ring.t ->
  capacity:Units.Size.t ->
  drop_expired:bool ->
  deadline_of:(Packet.t -> Units.Time.t option) ->
  unit ->
  t
(** Earliest-deadline-first; packets without a deadline are served
    after all deadline-bearing packets, among themselves in FIFO order.
    When [drop_expired], packets whose deadline already passed are
    discarded at dequeue time instead of transmitted — and retired into
    [ring] (or their frames recycled into [pool]) when one is given
    (the queue is the last holder of an expired packet). *)

val enqueue : t -> now:Units.Time.t -> Packet.t -> [ `Accepted | `Dropped ]

val passes_when_empty : t -> Packet.t -> bool
(** Whether an {!enqueue} of [packet] followed immediately by a {!poll}
    would hand back exactly this packet with no other observable effect
    — an empty FIFO the packet fits into.  Lets an idle transmitter
    bypass the queue round-trip; always [false] for deadline-aware
    queues, whose poll may legitimately expire the fresh packet. *)

val empty : Packet.t
(** The inert record {!poll} returns on an empty queue; compare
    physically ([==]).  Never a real packet. *)

val poll : t -> now:Units.Time.t -> Packet.t
(** Allocation-free dequeue: the head packet, or {!empty} when the
    queue has none.  The hot path ({!Link}) uses this — {!dequeue} is
    the same operation behind an option. *)

val dequeue : t -> now:Units.Time.t -> Packet.t option
val length : t -> int
val queued_bytes : t -> Units.Size.t
val overflow_drops : t -> int
val expired_drops : t -> int
val describe : t -> string
