(** Packet tracing.

    A trace records per-packet link events (send, transmit, deliver,
    drops, corruption) with timestamps — the simulator's equivalent of
    a pcap, used for debugging topologies and auditing experiment
    behaviour.  {!observer} plugs into {!Link.create}'s [?observer]
    hook; entries accumulate in time order and can be filtered, counted
    and rendered. *)

open Mmt_util

type entry = {
  at : Units.Time.t;
  link : string;
  event : Link.event;
  packet_id : int;
  size : Units.Size.t;
}

type t

val create : ?capacity:int -> unit -> t
(** [capacity] (default 100_000) bounds memory: the oldest entries are
    discarded once full and {!truncated} counts them. *)

val observer :
  t -> engine:Engine.t -> link:string -> Link.event -> Packet.t -> unit
(** Partially applied, this is a {!Link.create} observer:
    [~observer:(Trace.observer trace ~engine ~link:"a->b")]. *)

val record :
  t -> at:Units.Time.t -> link:string -> Link.event -> Packet.t -> unit
(** Manual recording, for components that are not links. *)

val entries : t -> entry list
(** In recording order. *)

val count : t -> ?link:string -> Link.event -> int
val truncated : t -> int
val event_to_string : Link.event -> string

val packet_history : t -> packet_id:int -> entry list
(** Every recorded event for one packet — its journey. *)

(** {2 Fault events}

    Fault injection ({!Mmt_fault}) records what it did to the topology
    in a separate stream, so a chaos run's report can show the fault
    timeline next to the packet timeline. *)

type fault_entry = { fault_at : Units.Time.t; what : string }

val record_fault : t -> at:Units.Time.t -> what:string -> unit
val faults : t -> fault_entry list
val fault_count : t -> int

val render_faults : t -> string
(** One line per fault, oldest first. *)

val render : ?limit:int -> t -> string
(** One line per entry, oldest first; [limit] (default 50) bounds the
    output. *)
