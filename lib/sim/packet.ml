open Mmt_util

type t = {
  mutable id : int;
  mutable frame : bytes;
  mutable padding : int;
  mutable born : Units.Time.t;
  mutable corrupted : bool;
  mutable hops : int;
  mutable gen : int;
  mutable slot : int;
}

let create ?(padding = 0) ~id ~born frame =
  if padding < 0 then invalid_arg "Packet.create: negative padding";
  { id; frame; padding; born; corrupted = false; hops = 0; gen = 0; slot = -1 }

let wire_size t = Units.Size.bytes (Bytes.length t.frame + t.padding)
let frame t = t.frame
let set_frame t frame = t.frame <- frame

let copy t ~id =
  {
    id;
    frame = Bytes.copy t.frame;
    padding = t.padding;
    born = t.born;
    corrupted = t.corrupted;
    hops = t.hops;
    gen = 0;
    slot = -1;
  }

let clone t ~id ~frame = { t with id; frame; gen = 0; slot = -1 }

let pp fmt t =
  Format.fprintf fmt "pkt#%d{%a%s, %d hops}" t.id Units.Size.pp (wire_size t)
    (if t.corrupted then ", corrupted" else "")
    t.hops
