type t = { mutable value : int; mutable high_water : int }

let create () = { value = 0; high_water = 0 }

let set t v =
  t.value <- v;
  if v > t.high_water then t.high_water <- v

let add t delta = set t (t.value + delta)
let value t = t.value
let high_water t = t.high_water
