open Mmt_util

type t = {
  bin : Units.Time.t;
  bins : (int, int) Hashtbl.t; (* bin index -> bytes *)
  mutable total : int;
  mutable max_bin : int;
}

let create ~bin =
  if Units.Time.is_zero bin then invalid_arg "Flow_meter.create: zero bin";
  { bin; bins = Hashtbl.create 256; total = 0; max_bin = -1 }

let index t now = Units.Time.to_ns now / Units.Time.to_ns t.bin

let record t ~now ~bytes =
  let i = index t now in
  let current = Option.value ~default:0 (Hashtbl.find_opt t.bins i) in
  Hashtbl.replace t.bins i (current + bytes);
  t.total <- t.total + bytes;
  if i > t.max_bin then t.max_bin <- i

let total_bytes t = t.total

let bin_rate t bytes = Units.Rate.of_size_per_time (Units.Size.bytes bytes) t.bin

let series t =
  if t.max_bin < 0 then []
  else
    List.init (t.max_bin + 1) (fun i ->
        let bytes = Option.value ~default:0 (Hashtbl.find_opt t.bins i) in
        ( Units.Time.ns (i * Units.Time.to_ns t.bin),
          bin_rate t bytes ))

let peak t =
  Hashtbl.fold (fun _i bytes best -> max bytes best) t.bins 0 |> bin_rate t

let average t ~over = Units.Rate.of_size_per_time (Units.Size.bytes t.total) over
