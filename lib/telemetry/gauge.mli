(** High-water-mark gauges over integer quantities.

    A gauge tracks the current value of some occupancy — bytes in a
    retransmission buffer, open gaps in a receiver's NAK map — together
    with the highest value it ever reached.  Facility-scale experiments
    (E-F5) read the high-water mark directly from the transport's own
    soft state instead of re-deriving it from event logs, so the metric
    stays honest as the implementation changes. *)

type t

val create : unit -> t
(** A gauge at zero with a zero high-water mark. *)

val set : t -> int -> unit
(** Replace the current value, raising the high-water mark if the new
    value exceeds it. *)

val add : t -> int -> unit
(** [add t delta] adjusts the current value by [delta] (which may be
    negative); the high-water mark only ever rises. *)

val value : t -> int
val high_water : t -> int
