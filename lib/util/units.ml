module Time = struct
  type t = int

  let zero = 0
  let ns x = x
  let of_int_ns x = x
  let of_int64_ns x = Int64.to_int x
  let to_int64_ns t = Int64.of_int t
  let us x = int_of_float (x *. 1e3)
  let ms x = int_of_float (x *. 1e6)
  let seconds x = int_of_float (x *. 1e9)
  let to_ns t = t
  let to_float_s t = float_of_int t *. 1e-9
  let add = ( + )

  let sub a b = if a <= b then 0 else a - b
  let diff later earlier = sub later earlier

  let scale t k =
    let scaled = float_of_int t *. k in
    if scaled <= 0. then 0 else int_of_float scaled

  let compare = Int.compare
  let ( < ) (a : t) (b : t) = Stdlib.( < ) a b
  let ( <= ) (a : t) (b : t) = Stdlib.( <= ) a b
  let ( > ) (a : t) (b : t) = Stdlib.( > ) a b
  let ( >= ) (a : t) (b : t) = Stdlib.( >= ) a b
  let equal = Int.equal
  let min (a : t) (b : t) = if Stdlib.( <= ) a b then a else b
  let max (a : t) (b : t) = if Stdlib.( >= ) a b then a else b
  let is_zero (t : t) = t = 0

  let pp fmt t =
    let f = float_of_int t in
    if t < 1_000 then Format.fprintf fmt "%dns" t
    else if t < 1_000_000 then Format.fprintf fmt "%.3gus" (f /. 1e3)
    else if t < 1_000_000_000 then Format.fprintf fmt "%.4gms" (f /. 1e6)
    else Format.fprintf fmt "%.4gs" (f /. 1e9)

  let to_string t = Format.asprintf "%a" pp t
end

module Size = struct
  type t = int

  let zero = 0
  let bytes x = x
  let kib x = x * 1024
  let mib x = x * 1024 * 1024
  let gib x = x * 1024 * 1024 * 1024
  let to_bytes t = t
  let to_bits t = t * 8
  let add = ( + )
  let sub a b = Stdlib.max 0 (a - b)
  let compare = Int.compare
  let equal = Int.equal

  let pp fmt t =
    let f = float_of_int t in
    if t < 1024 then Format.fprintf fmt "%dB" t
    else if t < 1024 * 1024 then Format.fprintf fmt "%.3gKiB" (f /. 1024.)
    else if t < 1024 * 1024 * 1024 then Format.fprintf fmt "%.4gMiB" (f /. 1048576.)
    else Format.fprintf fmt "%.4gGiB" (f /. 1073741824.)

  let to_string t = Format.asprintf "%a" pp t
end

module Rate = struct
  type t = float

  let zero = 0.
  let bps x = x
  let kbps x = x *. 1e3
  let mbps x = x *. 1e6
  let gbps x = x *. 1e9
  let tbps x = x *. 1e12
  let to_bps t = t
  let to_gbps t = t /. 1e9
  let scale t k = t *. k
  let add = ( +. )
  let compare = Float.compare
  let is_zero t = t = 0.

  let transmission_time rate size =
    if rate <= 0. then Time.zero
    else
      let bits = float_of_int (Size.to_bits size) in
      Time.ns (int_of_float (Float.round (bits /. rate *. 1e9)))

  let bytes_in rate window =
    let seconds = Time.to_float_s window in
    Size.bytes (int_of_float (rate *. seconds /. 8.))

  let of_size_per_time size window =
    let seconds = Time.to_float_s window in
    if seconds <= 0. then 0.
    else float_of_int (Size.to_bits size) /. seconds

  let pp fmt t =
    if t < 1e3 then Format.fprintf fmt "%.3gbps" t
    else if t < 1e6 then Format.fprintf fmt "%.4gKbps" (t /. 1e3)
    else if t < 1e9 then Format.fprintf fmt "%.4gMbps" (t /. 1e6)
    else if t < 1e12 then Format.fprintf fmt "%.4gGbps" (t /. 1e9)
    else Format.fprintf fmt "%.4gTbps" (t /. 1e12)

  let to_string t = Format.asprintf "%a" pp t
end
