(** Single-producer single-consumer message buffer for the sharded
    simulation runner.

    One mailbox carries the in-flight packets of one cross-shard link:
    the sending shard {!push}es (timestamp, key, value) triples as its
    transmitter finishes packets during a time window, and the
    receiving shard {!drain}s them at the next barrier, re-scheduling
    each as a boundary event on its own engine.

    There is deliberately no locking here.  Correctness rests on a
    phase discipline the runner enforces: within any window exactly one
    domain touches the mailbox (the producer between barriers, the
    consumer at the barrier), and the barrier's mutex provides the
    happens-before edge that publishes the producer's writes to the
    consumer.  Keeping the arrays plain in turn keeps {!push}
    allocation-free at steady state — the structure-of-arrays layout
    stores timestamps and keys as immediate ints.

    Entries drain in push order, which for a single link is
    (timestamp, FIFO sequence) order — the same total order the
    boundary-lane key encodes, so draining preserves determinism. *)

type 'a t

val create : dummy:'a -> 'a t
(** [dummy] fills vacated value cells so drained messages do not keep
    their payloads alive. *)

val push : 'a t -> at:int -> key:int -> 'a -> unit
(** Append one message.  [at] is the delivery timestamp in
    nanoseconds; [key] is the boundary-lane sequence key (see
    {!Mmt_sim.Engine.schedule_boundary} — packed by the link from its
    cut-edge id and per-edge FIFO sequence). *)

val drain : 'a t -> (at:int -> key:int -> 'a -> unit) -> unit
(** Visit every buffered message in push order, then clear the
    mailbox.  The callback typically re-schedules the message as a
    boundary event on the consuming shard's engine. *)

val length : 'a t -> int
