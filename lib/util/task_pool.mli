(** Persistent domain pool for parallel sweeps.

    Spawning domains per batch is what made the parallel experiment
    sweep slower than the sequential one: every [run_collect] paid
    domain start-up and tear-down, and asking for more domains than
    the machine has cores ([Domain.recommended_domain_count]) made
    them fight over the minor heap.  This pool spawns workers once,
    parks them on a condition variable between batches, and never
    engages more than the recommended count. *)

type t

val recommended_jobs : unit -> int
(** [Domain.recommended_domain_count ()]: the largest worthwhile
    parallel job count on this machine (1 on a single-core host). *)

val create : ?max_workers:int -> unit -> t
(** A private pool.  [max_workers] bounds the extra domains {!run}
    will engage (default [recommended_jobs () - 1]); tests pass an
    explicit bound to exercise the worker machinery regardless of the
    host's core count.  Prefer {!shared} outside tests. *)

val shutdown : t -> unit
(** Stop and join the pool's workers.  The pool degrades to running
    everything on the caller afterwards. *)

val shared : unit -> t
(** The process-wide pool.  Workers are spawned lazily on first use
    and reused by every subsequent batch; they are stopped and joined
    at exit. *)

val run : t -> extra:int -> (unit -> unit) -> unit
(** [run t ~extra fn] executes [fn] on the calling domain and on
    [extra] pool workers concurrently, returning when every instance
    has finished.  [fn] is typically a work-stealing loop over an
    atomic index.  [extra] is clamped to [recommended_jobs () - 1];
    with [extra <= 0] this is just [fn ()].  If any instance raises,
    one such exception is re-raised in the caller after all instances
    finish.  Not reentrant: do not call [run] from inside [fn]. *)
