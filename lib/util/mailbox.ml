(* Single-producer single-consumer message buffer with phase-separated
   access: the producer pushes while the consumer is parked, the
   consumer drains while the producer is parked, and the hand-off
   between phases happens under the caller's synchronization (the
   sharded runner's barrier mutex).  There are no atomics here on
   purpose — the barrier's mutex acquire/release publishes every write,
   and keeping the arrays plain keeps push allocation-free once the
   buffer has reached its working-set capacity. *)

type 'a t = {
  mutable at : int array;
  mutable key : int array;
  mutable v : 'a array;
  dummy : 'a;
  mutable len : int;
}

let initial_capacity = 16

let create ~dummy =
  {
    at = Array.make initial_capacity 0;
    key = Array.make initial_capacity 0;
    v = Array.make initial_capacity dummy;
    dummy;
    len = 0;
  }

let length t = t.len

let grow t =
  let cap = 2 * Array.length t.at in
  let extend_int a =
    let b = Array.make cap 0 in
    Array.blit a 0 b 0 t.len;
    b
  in
  t.at <- extend_int t.at;
  t.key <- extend_int t.key;
  let v = Array.make cap t.dummy in
  Array.blit t.v 0 v 0 t.len;
  t.v <- v

let push t ~at ~key v =
  if t.len = Array.length t.at then grow t;
  let i = t.len in
  t.at.(i) <- at;
  t.key.(i) <- key;
  t.v.(i) <- v;
  t.len <- i + 1

let drain t f =
  let n = t.len in
  for i = 0 to n - 1 do
    let v = t.v.(i) in
    t.v.(i) <- t.dummy;
    f ~at:t.at.(i) ~key:t.key.(i) v
  done;
  t.len <- 0
