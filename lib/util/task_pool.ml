type t = {
  mutex : Mutex.t;
  wake : Condition.t; (* new batch, or stop *)
  rest : Condition.t; (* batch finished *)
  mutable task : (unit -> unit) option;
  mutable epoch : int; (* bumped once per batch *)
  mutable to_run : int; (* workers that must still pick up this batch *)
  mutable running : int; (* workers currently inside the task *)
  mutable error : exn option; (* first exception of the batch *)
  mutable stop : bool;
  mutable workers : unit Domain.t list;
  max_workers : int;
}

let recommended_jobs () = Domain.recommended_domain_count ()

let create ?max_workers () =
  let max_workers =
    match max_workers with
    | Some n -> max 0 n
    | None -> recommended_jobs () - 1
  in
  {
    mutex = Mutex.create ();
    wake = Condition.create ();
    rest = Condition.create ();
    task = None;
    epoch = 0;
    to_run = 0;
    running = 0;
    error = None;
    stop = false;
    workers = [];
    max_workers;
  }

(* Each worker remembers the last epoch it served so it runs a batch's
   task at most once, then parks on [wake] until the next batch. *)
let worker t =
  let last = ref 0 in
  Mutex.lock t.mutex;
  let rec loop () =
    if t.stop then Mutex.unlock t.mutex
    else if t.epoch > !last && t.to_run > 0 then begin
      last := t.epoch;
      t.to_run <- t.to_run - 1;
      t.running <- t.running + 1;
      let fn = Option.get t.task in
      Mutex.unlock t.mutex;
      let error = match fn () with () -> None | exception e -> Some e in
      Mutex.lock t.mutex;
      (match error with
      | Some e when t.error = None -> t.error <- Some e
      | _ -> ());
      t.running <- t.running - 1;
      if t.running = 0 && t.to_run = 0 then Condition.broadcast t.rest;
      loop ()
    end
    else begin
      Condition.wait t.wake t.mutex;
      loop ()
    end
  in
  loop ()

let ensure_workers t wanted =
  let have = List.length t.workers in
  if wanted > have then
    for _ = have + 1 to wanted do
      t.workers <- Domain.spawn (fun () -> worker t) :: t.workers
    done

let shutdown t =
  Mutex.lock t.mutex;
  t.stop <- true;
  Condition.broadcast t.wake;
  Mutex.unlock t.mutex;
  List.iter Domain.join t.workers;
  t.workers <- []

let shared_pool =
  lazy
    (let t = create () in
     at_exit (fun () -> shutdown t);
     t)

let shared () = Lazy.force shared_pool

let run t ~extra fn =
  let extra = min extra t.max_workers in
  if extra <= 0 || t.stop then fn ()
  else begin
    Mutex.lock t.mutex;
    ensure_workers t extra;
    t.task <- Some fn;
    t.epoch <- t.epoch + 1;
    t.to_run <- extra;
    t.error <- None;
    Condition.broadcast t.wake;
    Mutex.unlock t.mutex;
    let caller_error = match fn () with () -> None | exception e -> Some e in
    Mutex.lock t.mutex;
    while t.to_run > 0 || t.running > 0 do
      Condition.wait t.rest t.mutex
    done;
    t.task <- None;
    let error = match caller_error with Some _ -> caller_error | None -> t.error in
    Mutex.unlock t.mutex;
    match error with Some e -> raise e | None -> ()
  end
