(** Physical units used across the simulator and protocol layers.

    Time is an immediate [int] count of nanoseconds — 63 bits cover
    ~146 years of simulated time at exact integer precision, which
    keeps event ordering deterministic (no float drift) and keeps every
    timestamp unboxed: arithmetic and comparisons on [Time.t] never
    allocate, unlike the boxed [int64] representation this replaced.
    The on-wire format is still a 64-bit field; {!Time.of_int64_ns} and
    {!Time.to_int64_ns} convert at the codec boundary.  Data sizes are
    byte counts; rates are bits per second. *)

module Time : sig
  type t = private int
  (** Nanoseconds since simulation start.  Immediate (unboxed). *)

  val zero : t
  val ns : int -> t
  val of_int_ns : int -> t
  val of_int64_ns : int64 -> t
  (** Wire-format decode; truncates to 63 bits. *)

  val to_int64_ns : t -> int64
  (** Wire-format encode. *)

  val us : float -> t
  val ms : float -> t
  val seconds : float -> t
  val to_ns : t -> int
  val to_float_s : t -> float
  val add : t -> t -> t
  val sub : t -> t -> t
  (** Saturates at zero rather than going negative. *)

  val diff : t -> t -> t
  (** [diff later earlier]; saturates at zero. *)

  val scale : t -> float -> t
  val compare : t -> t -> int
  val ( < ) : t -> t -> bool
  val ( <= ) : t -> t -> bool
  val ( > ) : t -> t -> bool
  val ( >= ) : t -> t -> bool
  val equal : t -> t -> bool
  val min : t -> t -> t
  val max : t -> t -> t
  val is_zero : t -> bool
  val pp : Format.formatter -> t -> unit
  (** Human-scaled rendering: "1.5ms", "2.3s", "250ns", ... *)

  val to_string : t -> string
end

module Size : sig
  type t = private int
  (** A byte count. *)

  val zero : t
  val bytes : int -> t
  val kib : int -> t
  val mib : int -> t
  val gib : int -> t
  val to_bytes : t -> int
  val to_bits : t -> int
  val add : t -> t -> t
  val sub : t -> t -> t
  (** Saturates at zero. *)

  val compare : t -> t -> int
  val equal : t -> t -> bool
  val pp : Format.formatter -> t -> unit
  val to_string : t -> string
end

module Rate : sig
  type t = private float
  (** Bits per second. *)

  val zero : t
  val bps : float -> t
  val kbps : float -> t
  val mbps : float -> t
  val gbps : float -> t
  val tbps : float -> t
  val to_bps : t -> float
  val to_gbps : t -> float
  val scale : t -> float -> t
  val add : t -> t -> t
  val compare : t -> t -> int
  val is_zero : t -> bool
  val transmission_time : t -> Size.t -> Time.t
  (** [transmission_time rate size] is the serialization delay of
      [size] bytes at [rate]; [Time.zero] for a zero rate (treated as
      infinitely fast, used by ideal links). *)

  val bytes_in : t -> Time.t -> Size.t
  (** [bytes_in rate window] is how many whole bytes fit in [window]. *)

  val of_size_per_time : Size.t -> Time.t -> t
  (** Measured rate: bytes transferred over elapsed time. *)

  val pp : Format.formatter -> t -> unit
  val to_string : t -> string
end
