open Mmt_util
open Mmt_frame
module Cursor = Mmt_wire.Cursor

type age = {
  age_us : int;
  budget_us : int;
  aged : bool;
  hop_count : int;
  last_touch_ns : Units.Time.t;
}

type timely = { deadline : Units.Time.t; notify : Addr.Ip.t }

type int_record = {
  node_id : int;
  mode_id : int;
  hop_index : int;
  queue_depth : int;
  ingress_ns : Units.Time.t;
  egress_ns : Units.Time.t;
}

type int_stack = { records : int_record list; overflowed : bool }

let empty_int_stack = { records = []; overflowed = false }

type t = {
  config_id : int;
  kind : Feature.Kind.t;
  features : Feature.Set.t;
  experiment : Experiment_id.t;
  sequence : int option;
  retransmit_from : Addr.Ip.t option;
  timely : timely option;
  age : age option;
  pace_mbps : int option;
  backpressure_to : Addr.Ip.t option;
  int_stack : int_stack option;
}

let core_size = 8
let checksum_size = 4
let sequence_size = 4
let retransmit_size = 4
let timely_size = 12
let age_size = 20
let pace_size = 4
let backpressure_size = 4
let max_int_hops = 4
let int_record_size = 24
let int_ext_size = 4 + (max_int_hops * int_record_size)

let check_u32 what v =
  if v < 0 || v > 0xFFFFFFFF then
    invalid_arg (Printf.sprintf "Header: %s out of u32 range" what)

let check_u24 what v =
  if v < 0 || v > 0xFFFFFF then
    invalid_arg (Printf.sprintf "Header: %s out of u24 range" what)

let check_u16 what v =
  if v < 0 || v > 0xFFFF then
    invalid_arg (Printf.sprintf "Header: %s out of u16 range" what)

let check_u8 what v =
  if v < 0 || v > 0xFF then
    invalid_arg (Printf.sprintf "Header: %s out of u8 range" what)

let check_int_stack stack =
  if List.length stack.records > max_int_hops then
    invalid_arg
      (Printf.sprintf "Header: INT stack deeper than %d hops" max_int_hops);
  List.iter
    (fun r ->
      check_u16 "int.node_id" r.node_id;
      check_u8 "int.mode_id" r.mode_id;
      check_u8 "int.hop_index" r.hop_index;
      check_u32 "int.queue_depth" r.queue_depth)
    stack.records

let features_of_fields ~sequence ~retransmit_from ~timely ~age ~pace_mbps
    ~backpressure_to ~int_stack ~extra =
  let maybe feature opt set =
    match opt with Some _ -> Feature.Set.add feature set | None -> set
  in
  let base =
    Feature.Set.empty
    |> maybe Feature.Sequenced sequence
    |> maybe Feature.Reliable retransmit_from
    |> maybe Feature.Timely timely
    |> maybe Feature.Age_tracked age
    |> maybe Feature.Paced pace_mbps
    |> maybe Feature.Backpressured backpressure_to
    |> maybe Feature.Int_telemetry int_stack
  in
  List.fold_left
    (fun set feature ->
      match feature with
      | Feature.Duplicated | Feature.Encrypted | Feature.Checksummed ->
          Feature.Set.add feature set
      | Feature.Sequenced | Feature.Reliable | Feature.Timely
      | Feature.Age_tracked | Feature.Paced | Feature.Backpressured
      | Feature.Int_telemetry ->
          invalid_arg
            (Printf.sprintf
               "Header.create: feature %s carries a field; pass its value"
               (Feature.to_string feature)))
    base extra

let create ?(kind = Feature.Kind.Data) ?sequence ?retransmit_from ?timely ?age
    ?pace_mbps ?backpressure_to ?int_stack ?(extra_features = []) ~experiment () =
  Option.iter (check_u32 "sequence") sequence;
  Option.iter (fun a ->
      check_u32 "age_us" a.age_us;
      check_u32 "budget_us" a.budget_us;
      check_u24 "hop_count" a.hop_count)
    age;
  Option.iter (check_u32 "pace_mbps") pace_mbps;
  Option.iter check_int_stack int_stack;
  let features =
    features_of_fields ~sequence ~retransmit_from ~timely ~age ~pace_mbps
      ~backpressure_to ~int_stack ~extra:extra_features
  in
  {
    config_id = Feature.config_id_v1;
    kind;
    features;
    experiment;
    sequence;
    retransmit_from;
    timely;
    age;
    pace_mbps;
    backpressure_to;
    int_stack;
  }

let mode0 ~experiment = create ~experiment ()

let size t =
  let ext feature width = if Feature.Set.mem feature t.features then width else 0 in
  core_size
  + ext Feature.Checksummed checksum_size
  + ext Feature.Sequenced sequence_size
  + ext Feature.Reliable retransmit_size
  + ext Feature.Timely timely_size
  + ext Feature.Age_tracked age_size
  + ext Feature.Paced pace_size
  + ext Feature.Backpressured backpressure_size
  + ext Feature.Int_telemetry int_ext_size

let encode_int_stack w stack =
  Cursor.Writer.u8 w (List.length stack.records);
  Cursor.Writer.u8 w (if stack.overflowed then 1 else 0);
  Cursor.Writer.u16 w 0;
  List.iter
    (fun r ->
      Cursor.Writer.u16 w r.node_id;
      Cursor.Writer.u8 w r.mode_id;
      Cursor.Writer.u8 w r.hop_index;
      Cursor.Writer.u32_int w r.queue_depth;
      Cursor.Writer.u64 w (Units.Time.to_int64_ns r.ingress_ns);
      Cursor.Writer.u64 w (Units.Time.to_int64_ns r.egress_ns))
    stack.records;
  let unused = max_int_hops - List.length stack.records in
  if unused > 0 then Cursor.Writer.bytes w (Bytes.make (unused * int_record_size) '\000')

(* The checksum extension is the FIRST extension (right after the core)
   so a P4 verify stage finds it at a constant offset.  It is laid out
   as [u16 checksum | u16 zero-pad]; the checksum is the RFC 1071
   ones'-complement sum over the whole fixed header with the checksum
   field itself zeroed, which makes "sum over header = 0" the verify
   property. *)

let checksum_field_off ~off = off + core_size

let seal_in_place frame ~off ~size =
  let at = checksum_field_off ~off in
  Bytes.set_uint16_be frame at 0;
  Bytes.set_uint16_be frame at (Cursor.checksum frame ~off ~len:size)

let verify_in_place frame ~off ~size = Cursor.checksum frame ~off ~len:size = 0

let encode_into_raw w t =
  Cursor.Writer.u8 w t.config_id;
  Cursor.Writer.u24 w (Feature.encode_config_data ~kind:t.kind t.features);
  Cursor.Writer.u32 w (Experiment_id.to_int32 t.experiment);
  if Feature.Set.mem Feature.Checksummed t.features then begin
    (* Placeholder; [encode] seals once the header is fully written. *)
    Cursor.Writer.u16 w 0;
    Cursor.Writer.u16 w 0
  end;
  Option.iter (fun s -> Cursor.Writer.u32_int w s) t.sequence;
  Option.iter (fun ip -> Cursor.Writer.u32 w (Addr.Ip.to_int32 ip)) t.retransmit_from;
  Option.iter
    (fun tl ->
      Cursor.Writer.u64 w (Units.Time.to_int64_ns tl.deadline);
      Cursor.Writer.u32 w (Addr.Ip.to_int32 tl.notify))
    t.timely;
  Option.iter
    (fun a ->
      Cursor.Writer.u32_int w a.age_us;
      Cursor.Writer.u32_int w a.budget_us;
      Cursor.Writer.u8 w (if a.aged then 1 else 0);
      Cursor.Writer.u24 w a.hop_count;
      Cursor.Writer.u64 w (Units.Time.to_int64_ns a.last_touch_ns))
    t.age;
  Option.iter (fun p -> Cursor.Writer.u32_int w p) t.pace_mbps;
  Option.iter (fun ip -> Cursor.Writer.u32 w (Addr.Ip.to_int32 ip)) t.backpressure_to;
  Option.iter (encode_int_stack w) t.int_stack

let encode t =
  let w = Cursor.Writer.create (size t) in
  encode_into_raw w t;
  let frame = Cursor.Writer.contents w in
  if Feature.Set.mem Feature.Checksummed t.features then
    seal_in_place frame ~off:0 ~size:(size t);
  frame

let encode_into w t =
  if Feature.Set.mem Feature.Checksummed t.features then
    (* Sealing needs the finished bytes; build then splice. *)
    Cursor.Writer.bytes w (encode t)
  else encode_into_raw w t

let decode r =
  match
    let config_id = Cursor.Reader.u8 r in
    if config_id <> Feature.config_id_v1 then
      Error (Printf.sprintf "unknown configuration identifier %d" config_id)
    else
      match Feature.decode_config_data (Cursor.Reader.u24 r) with
      | Error e -> Error e
      | Ok (kind, features) ->
          let experiment = Experiment_id.of_int32 (Cursor.Reader.u32 r) in
          if Feature.Set.mem Feature.Checksummed features then
            (* Wire artifact only: integrity is checked on the raw
               bytes (View.verify / Header.verify) before decoding. *)
            Cursor.Reader.skip r checksum_size;
          let if_feature feature read =
            if Feature.Set.mem feature features then Some (read ()) else None
          in
          let sequence = if_feature Feature.Sequenced (fun () -> Cursor.Reader.u32_int r) in
          let retransmit_from =
            if_feature Feature.Reliable (fun () ->
                Addr.Ip.of_int32 (Cursor.Reader.u32 r))
          in
          let timely =
            if_feature Feature.Timely (fun () ->
                let deadline = Units.Time.of_int64_ns (Cursor.Reader.u64 r) in
                let notify = Addr.Ip.of_int32 (Cursor.Reader.u32 r) in
                { deadline; notify })
          in
          let age =
            if_feature Feature.Age_tracked (fun () ->
                let age_us = Cursor.Reader.u32_int r in
                let budget_us = Cursor.Reader.u32_int r in
                let flags = Cursor.Reader.u8 r in
                let hop_count = Cursor.Reader.u24 r in
                let last_touch_ns = Units.Time.of_int64_ns (Cursor.Reader.u64 r) in
                { age_us; budget_us; aged = flags land 1 = 1; hop_count; last_touch_ns })
          in
          let pace_mbps = if_feature Feature.Paced (fun () -> Cursor.Reader.u32_int r) in
          let backpressure_to =
            if_feature Feature.Backpressured (fun () ->
                Addr.Ip.of_int32 (Cursor.Reader.u32 r))
          in
          let int_stack =
            if not (Feature.Set.mem Feature.Int_telemetry features) then Ok None
            else begin
              let count = Cursor.Reader.u8 r in
              let flags = Cursor.Reader.u8 r in
              let _reserved = Cursor.Reader.u16 r in
              if count > max_int_hops then
                Error (Printf.sprintf "INT stack count %d exceeds %d" count max_int_hops)
              else begin
                let records =
                  List.init count (fun _ ->
                      let node_id = Cursor.Reader.u16 r in
                      let mode_id = Cursor.Reader.u8 r in
                      let hop_index = Cursor.Reader.u8 r in
                      let queue_depth = Cursor.Reader.u32_int r in
                      let ingress_ns = Units.Time.of_int64_ns (Cursor.Reader.u64 r) in
                      let egress_ns = Units.Time.of_int64_ns (Cursor.Reader.u64 r) in
                      { node_id; mode_id; hop_index; queue_depth; ingress_ns; egress_ns })
                in
                Cursor.Reader.skip r ((max_int_hops - count) * int_record_size);
                Ok (Some { records; overflowed = flags land 1 = 1 })
              end
            end
          in
          match int_stack with
          | Error e -> Error e
          | Ok int_stack ->
              Ok
                {
                  config_id;
                  kind;
                  features;
                  experiment;
                  sequence;
                  retransmit_from;
                  timely;
                  age;
                  pace_mbps;
                  backpressure_to;
                  int_stack;
                }
  with
  | result -> result
  | exception Cursor.Out_of_bounds what -> Error ("truncated header: " ^ what)

let decode_bytes ?(off = 0) buf =
  decode (Cursor.Reader.of_bytes ~off buf)

(* Field surgery: each [with_*] re-derives the feature bit. *)

let with_feature t feature =
  { t with features = Feature.Set.add feature t.features }

let with_sequence t sequence =
  check_u32 "sequence" sequence;
  { (with_feature t Feature.Sequenced) with sequence = Some sequence }

let with_retransmit_from t ip =
  { (with_feature t Feature.Reliable) with retransmit_from = Some ip }

let with_timely t timely = { (with_feature t Feature.Timely) with timely = Some timely }

let with_age t age =
  check_u32 "age_us" age.age_us;
  check_u32 "budget_us" age.budget_us;
  check_u24 "hop_count" age.hop_count;
  { (with_feature t Feature.Age_tracked) with age = Some age }

let with_pace t pace =
  check_u32 "pace_mbps" pace;
  { (with_feature t Feature.Paced) with pace_mbps = Some pace }

let with_backpressure_to t ip =
  { (with_feature t Feature.Backpressured) with backpressure_to = Some ip }

let with_int_stack t stack =
  check_int_stack stack;
  { (with_feature t Feature.Int_telemetry) with int_stack = Some stack }

let with_checksummed t = with_feature t Feature.Checksummed

let with_kind t kind = { t with kind }

let strip t feature =
  let features = Feature.Set.remove feature t.features in
  match feature with
  | Feature.Sequenced -> { t with features; sequence = None }
  | Feature.Reliable -> { t with features; retransmit_from = None }
  | Feature.Timely -> { t with features; timely = None }
  | Feature.Age_tracked -> { t with features; age = None }
  | Feature.Paced -> { t with features; pace_mbps = None }
  | Feature.Backpressured -> { t with features; backpressure_to = None }
  | Feature.Int_telemetry -> { t with features; int_stack = None }
  | Feature.Duplicated | Feature.Encrypted | Feature.Checksummed ->
      { t with features }

let offset_of_age t =
  if not (Feature.Set.mem Feature.Age_tracked t.features) then None
  else begin
    let skip feature width =
      if Feature.Set.mem feature t.features then width else 0
    in
    Some
      (core_size
      + skip Feature.Checksummed checksum_size
      + skip Feature.Sequenced sequence_size
      + skip Feature.Reliable retransmit_size
      + skip Feature.Timely timely_size)
  end

let offset_of_int t =
  if not (Feature.Set.mem Feature.Int_telemetry t.features) then None
  else begin
    let skip feature width =
      if Feature.Set.mem feature t.features then width else 0
    in
    Some
      (core_size
      + skip Feature.Checksummed checksum_size
      + skip Feature.Sequenced sequence_size
      + skip Feature.Reliable retransmit_size
      + skip Feature.Timely timely_size
      + skip Feature.Age_tracked age_size
      + skip Feature.Paced pace_size
      + skip Feature.Backpressured backpressure_size)
  end

let push_int_record_in_place frame ~ext_off ~node_id ~mode_id ~queue_depth
    ~ingress ~egress =
  (* Layout: u8 count | u8 flags | u16 reserved | max_int_hops x
     (u16 node | u8 mode | u8 hop | u32 queue | u64 ingress | u64 egress) *)
  let count = Char.code (Bytes.get frame ext_off) in
  if count >= max_int_hops then begin
    let flags = Char.code (Bytes.get frame (ext_off + 1)) in
    Bytes.set frame (ext_off + 1) (Char.chr (flags lor 1));
    None
  end
  else begin
    let slot = ext_off + 4 + (count * int_record_size) in
    Bytes.set_uint16_be frame slot (node_id land 0xFFFF);
    Bytes.set frame (slot + 2) (Char.chr (mode_id land 0xFF));
    Bytes.set frame (slot + 3) (Char.chr (count land 0xFF));
    Bytes.set_int32_be frame (slot + 4)
      (Int32.of_int (min queue_depth 0xFFFFFFFF));
    Bytes.set_int64_be frame (slot + 8) (Units.Time.to_int64_ns ingress);
    Bytes.set_int64_be frame (slot + 16) (Units.Time.to_int64_ns egress);
    Bytes.set frame ext_off (Char.chr (count + 1));
    Some count
  end

let touch_age_in_place frame ~ext_off ~now =
  (* Layout: u32 age_us | u32 budget_us | u8 flags | u24 hops | u64 touch *)
  let age_us = Int32.to_int (Bytes.get_int32_be frame ext_off) land 0xFFFFFFFF in
  let budget_us =
    Int32.to_int (Bytes.get_int32_be frame (ext_off + 4)) land 0xFFFFFFFF
  in
  let flags = Char.code (Bytes.get frame (ext_off + 8)) in
  let hops =
    (Char.code (Bytes.get frame (ext_off + 9)) lsl 16)
    lor Bytes.get_uint16_be frame (ext_off + 10)
  in
  let last_touch = Int64.to_int (Bytes.get_int64_be frame (ext_off + 12)) in
  let now_ns = Units.Time.to_ns now in
  let elapsed_ns = max 0 (now_ns - last_touch) in
  let age_us = age_us + (elapsed_ns / 1_000) in
  let age_us = min age_us 0xFFFFFFFF in
  let aged = flags land 1 = 1 || age_us > budget_us in
  let hops = min (hops + 1) 0xFFFFFF in
  Bytes.set_int32_be frame ext_off (Int32.of_int age_us);
  Bytes.set frame (ext_off + 8) (Char.chr (if aged then flags lor 1 else flags));
  Bytes.set frame (ext_off + 9) (Char.chr ((hops lsr 16) land 0xFF));
  Bytes.set_uint16_be frame (ext_off + 10) (hops land 0xFFFF);
  Bytes.set_int64_be frame (ext_off + 12) (Int64.of_int now_ns);
  (age_us, aged)

(* Zero-copy header views ------------------------------------------------ *)

module View = struct
  type t = {
    frame : bytes;
    base : int;
    kind : Feature.Kind.t;
    features : Feature.Set.t;
    size : int;
    (* Absolute byte offsets of each extension within [frame]; -1 when
       the feature bit is clear.  Computed once from the feature bits,
       exactly as a P4 parser state machine would. *)
    off_checksum : int;
    off_sequence : int;
    off_retransmit : int;
    off_timely : int;
    off_age : int;
    off_pace : int;
    off_backpressure : int;
    off_int : int;
  }

  let of_frame ?(off = 0) frame =
    if off < 0 || Bytes.length frame - off < core_size then
      Error
        (Printf.sprintf "truncated header: need %d bytes, have %d" core_size
           (Bytes.length frame - off))
    else begin
      let config_id = Char.code (Bytes.get frame off) in
      if config_id <> Feature.config_id_v1 then
        Error (Printf.sprintf "unknown configuration identifier %d" config_id)
      else
        let data =
          (Char.code (Bytes.get frame (off + 1)) lsl 16)
          lor Bytes.get_uint16_be frame (off + 2)
        in
        match Feature.decode_config_data data with
        | Error e -> Error e
        | Ok (kind, features) ->
            let cursor = ref (off + core_size) in
            let place feature width =
              if Feature.Set.mem feature features then begin
                let at = !cursor in
                cursor := at + width;
                at
              end
              else -1
            in
            let off_checksum = place Feature.Checksummed checksum_size in
            let off_sequence = place Feature.Sequenced sequence_size in
            let off_retransmit = place Feature.Reliable retransmit_size in
            let off_timely = place Feature.Timely timely_size in
            let off_age = place Feature.Age_tracked age_size in
            let off_pace = place Feature.Paced pace_size in
            let off_backpressure = place Feature.Backpressured backpressure_size in
            let off_int = place Feature.Int_telemetry int_ext_size in
            let size = !cursor - off in
            if Bytes.length frame - off < size then
              Error
                (Printf.sprintf "truncated header: need %d bytes, have %d" size
                   (Bytes.length frame - off))
            else if
              off_int >= 0 && Char.code (Bytes.get frame off_int) > max_int_hops
            then
              Error
                (Printf.sprintf "INT stack count %d exceeds %d"
                   (Char.code (Bytes.get frame off_int))
                   max_int_hops)
            else
              Ok
                {
                  frame;
                  base = off;
                  kind;
                  features;
                  size;
                  off_checksum;
                  off_sequence;
                  off_retransmit;
                  off_timely;
                  off_age;
                  off_pace;
                  off_backpressure;
                  off_int;
                }
    end

  let kind v = v.kind
  let features v = v.features
  let size v = v.size
  let has v feature = Feature.Set.mem feature v.features

  let missing what = invalid_arg ("Header.View." ^ what ^ ": feature not present")
  let need at what = if at < 0 then missing what

  let u32_at frame at = Int32.to_int (Bytes.get_int32_be frame at) land 0xFFFFFFFF
  let set_u32_at frame at v = Bytes.set_int32_be frame at (Int32.of_int v)

  (* Every mutator reseals when the header is checksummed — in P4 this
     is the deparser's checksum-update stage.  Non-checksummed headers
     pay a single branch. *)
  let reseal v =
    if v.off_checksum >= 0 then seal_in_place v.frame ~off:v.base ~size:v.size

  let checksum v =
    need v.off_checksum "checksum";
    Bytes.get_uint16_be v.frame v.off_checksum

  let verify v =
    v.off_checksum < 0 || verify_in_place v.frame ~off:v.base ~size:v.size

  let experiment v = Experiment_id.of_int32 (Bytes.get_int32_be v.frame (v.base + 4))

  let sequence v =
    need v.off_sequence "sequence";
    u32_at v.frame v.off_sequence

  let set_sequence v s =
    need v.off_sequence "set_sequence";
    check_u32 "sequence" s;
    set_u32_at v.frame v.off_sequence s;
    reseal v

  let retransmit_from v =
    need v.off_retransmit "retransmit_from";
    Addr.Ip.of_int32 (Bytes.get_int32_be v.frame v.off_retransmit)

  let set_retransmit_from v ip =
    need v.off_retransmit "set_retransmit_from";
    Bytes.set_int32_be v.frame v.off_retransmit (Addr.Ip.to_int32 ip);
    reseal v

  let deadline_ns v =
    need v.off_timely "deadline_ns";
    Units.Time.of_int64_ns (Bytes.get_int64_be v.frame v.off_timely)

  let set_deadline_ns v deadline =
    need v.off_timely "set_deadline_ns";
    Bytes.set_int64_be v.frame v.off_timely (Units.Time.to_int64_ns deadline);
    reseal v

  let notify v =
    need v.off_timely "notify";
    Addr.Ip.of_int32 (Bytes.get_int32_be v.frame (v.off_timely + 8))

  let set_notify v ip =
    need v.off_timely "set_notify";
    Bytes.set_int32_be v.frame (v.off_timely + 8) (Addr.Ip.to_int32 ip);
    reseal v

  let age_us v =
    need v.off_age "age_us";
    u32_at v.frame v.off_age

  let budget_us v =
    need v.off_age "budget_us";
    u32_at v.frame (v.off_age + 4)

  let aged v =
    need v.off_age "aged";
    Char.code (Bytes.get v.frame (v.off_age + 8)) land 1 = 1

  let hop_count v =
    need v.off_age "hop_count";
    (Char.code (Bytes.get v.frame (v.off_age + 9)) lsl 16)
    lor Bytes.get_uint16_be v.frame (v.off_age + 10)

  let last_touch_ns v =
    need v.off_age "last_touch_ns";
    Units.Time.of_int64_ns (Bytes.get_int64_be v.frame (v.off_age + 12))

  let touch_age v ~now =
    need v.off_age "touch_age";
    let result = touch_age_in_place v.frame ~ext_off:v.off_age ~now in
    reseal v;
    result

  let pace_mbps v =
    need v.off_pace "pace_mbps";
    u32_at v.frame v.off_pace

  let set_pace_mbps v pace =
    need v.off_pace "set_pace_mbps";
    check_u32 "pace_mbps" pace;
    set_u32_at v.frame v.off_pace pace;
    reseal v

  let backpressure_to v =
    need v.off_backpressure "backpressure_to";
    Addr.Ip.of_int32 (Bytes.get_int32_be v.frame v.off_backpressure)

  let set_backpressure_to v ip =
    need v.off_backpressure "set_backpressure_to";
    Bytes.set_int32_be v.frame v.off_backpressure (Addr.Ip.to_int32 ip);
    reseal v

  let int_count v =
    need v.off_int "int_count";
    Char.code (Bytes.get v.frame v.off_int)

  let int_overflowed v =
    need v.off_int "int_overflowed";
    Char.code (Bytes.get v.frame (v.off_int + 1)) land 1 = 1

  let int_record v i =
    need v.off_int "int_record";
    if i < 0 || i >= int_count v then
      invalid_arg
        (Printf.sprintf "Header.View.int_record: slot %d of %d" i (int_count v));
    let slot = v.off_int + 4 + (i * int_record_size) in
    {
      node_id = Bytes.get_uint16_be v.frame slot;
      mode_id = Char.code (Bytes.get v.frame (slot + 2));
      hop_index = Char.code (Bytes.get v.frame (slot + 3));
      queue_depth = u32_at v.frame (slot + 4);
      ingress_ns = Units.Time.of_int64_ns (Bytes.get_int64_be v.frame (slot + 8));
      egress_ns = Units.Time.of_int64_ns (Bytes.get_int64_be v.frame (slot + 16));
    }

  let int_records v = List.init (int_count v) (int_record v)

  let push_int_record v ~node_id ~mode_id ~queue_depth ~ingress ~egress =
    need v.off_int "push_int_record";
    let result =
      push_int_record_in_place v.frame ~ext_off:v.off_int ~node_id ~mode_id
        ~queue_depth ~ingress ~egress
    in
    reseal v;
    result

  let set_duplicated v =
    let data =
      Feature.encode_config_data ~kind:v.kind
        (Feature.Set.add Feature.Duplicated v.features)
    in
    Bytes.set v.frame (v.base + 1) (Char.chr ((data lsr 16) land 0xFF));
    Bytes.set_uint16_be v.frame (v.base + 2) (data land 0xFFFF);
    reseal v

  let stripped_int_length v =
    need v.off_int "stripped_int_length";
    Bytes.length v.frame - v.base - int_ext_size

  let strip_int_into v out ~off =
    need v.off_int "strip_int_into";
    let frame_len = Bytes.length v.frame in
    let head_len = v.off_int - v.base in
    let tail_off = v.off_int + int_ext_size in
    let tail_len = frame_len - tail_off in
    Bytes.blit v.frame v.base out off head_len;
    Bytes.blit v.frame tail_off out (off + head_len) tail_len;
    let data =
      Feature.encode_config_data ~kind:v.kind
        (Feature.Set.remove Feature.Int_telemetry v.features)
    in
    Bytes.set out (off + 1) (Char.chr ((data lsr 16) land 0xFF));
    Bytes.set_uint16_be out (off + 2) (data land 0xFFFF);
    if v.off_checksum >= 0 then
      seal_in_place out ~off ~size:(v.size - int_ext_size)

  let strip_int v =
    let out = Bytes.create (stripped_int_length v) in
    strip_int_into v out ~off:0;
    out
end

let equal a b =
  a.config_id = b.config_id
  && Feature.Kind.equal a.kind b.kind
  && Feature.Set.equal a.features b.features
  && Experiment_id.equal a.experiment b.experiment
  && a.sequence = b.sequence
  && Option.equal Addr.Ip.equal a.retransmit_from b.retransmit_from
  && Option.equal
       (fun (x : timely) y ->
         Units.Time.equal x.deadline y.deadline && Addr.Ip.equal x.notify y.notify)
       a.timely b.timely
  && Option.equal
       (fun (x : age) y ->
         x.age_us = y.age_us && x.budget_us = y.budget_us && x.aged = y.aged
         && x.hop_count = y.hop_count
         && Units.Time.equal x.last_touch_ns y.last_touch_ns)
       a.age b.age
  && a.pace_mbps = b.pace_mbps
  && Option.equal Addr.Ip.equal a.backpressure_to b.backpressure_to
  && Option.equal
       (fun (x : int_stack) y ->
         x.overflowed = y.overflowed
         && List.equal
              (fun (p : int_record) q ->
                p.node_id = q.node_id && p.mode_id = q.mode_id
                && p.hop_index = q.hop_index
                && p.queue_depth = q.queue_depth
                && Units.Time.equal p.ingress_ns q.ingress_ns
                && Units.Time.equal p.egress_ns q.egress_ns)
              x.records y.records)
       a.int_stack b.int_stack

let pp fmt t =
  Format.fprintf fmt "@[mmt{%s %a %a" (Feature.Kind.to_string t.kind)
    Experiment_id.pp t.experiment Feature.Set.pp t.features;
  Option.iter (fun s -> Format.fprintf fmt " seq=%d" s) t.sequence;
  Option.iter (fun ip -> Format.fprintf fmt " rtx=%a" Addr.Ip.pp ip) t.retransmit_from;
  Option.iter
    (fun tl ->
      Format.fprintf fmt " deadline=%a notify=%a" Units.Time.pp tl.deadline
        Addr.Ip.pp tl.notify)
    t.timely;
  Option.iter
    (fun a ->
      Format.fprintf fmt " age=%dus/%dus%s hops=%d" a.age_us a.budget_us
        (if a.aged then "(AGED)" else "")
        a.hop_count)
    t.age;
  Option.iter (fun p -> Format.fprintf fmt " pace=%dMbps" p) t.pace_mbps;
  Option.iter
    (fun ip -> Format.fprintf fmt " bp=%a" Addr.Ip.pp ip)
    t.backpressure_to;
  Option.iter
    (fun stack ->
      Format.fprintf fmt " int=%d/%d%s"
        (List.length stack.records)
        max_int_hops
        (if stack.overflowed then "(OVERFLOW)" else ""))
    t.int_stack;
  Format.fprintf fmt "}@]"
