(** Retransmission-buffer host.

    The network element role played by DTN 1 in the pilot (§ 5.4): it
    keeps recently forwarded frames in a {!Retx_buffer} and answers
    NAKs by resending the stored frames to the requester.  "This
    buffering reduces the flow-completion time since a re-transmission
    would originate from a closer source" (§ 5.1).

    When a requested frame has already been evicted, the NAK is
    escalated to an optional upstream buffer (ultimately the source) —
    the hop-by-hop generalization of X.25 the paper describes. *)

open Mmt_util
open Mmt_frame

type stats = {
  naks_received : int;
  frames_resent : int;
  escalated : int;  (** sequences forwarded to the upstream buffer *)
  unserviceable : int;  (** missing with no upstream to ask *)
  buffer : Retx_buffer.stats;
}

type t

val create :
  env:Mmt_runtime.Env.t ->
  capacity:Units.Size.t ->
  ?upstream:Addr.Ip.t ->
  ?pool:Mmt_sim.Pool.t ->
  unit ->
  t
(** With [pool], resent frames are copied into pool-acquired buffers
    instead of fresh allocations. *)

val store : t -> seq:int -> born:Mmt_util.Units.Time.t -> bytes -> unit
(** Record a frame as forwarded downstream under sequence [seq].  The
    frame must be the full wire frame (encapsulation included) so a
    resend is byte-identical; [born] is the original packet's birth
    time, preserved across retransmission for honest latency
    accounting. *)

val on_packet : t -> Mmt_sim.Packet.t -> unit
(** Feed a control packet; only NAKs addressed to this buffer are
    acted on. *)

val advert : t -> rtt_hint:Units.Time.t -> Control.Buffer_advert.t
(** Control-plane advertisement of this buffer (§ 6 challenge 1). *)

val stats : t -> stats
