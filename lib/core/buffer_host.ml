open Mmt_frame

type stats = {
  naks_received : int;
  frames_resent : int;
  escalated : int;
  unserviceable : int;
  buffer : Retx_buffer.stats;
}

type t = {
  env : Mmt_runtime.Env.t;
  buffer : Retx_buffer.t;
  upstream : Addr.Ip.t option;
  pool : Mmt_sim.Pool.t option;
  mutable naks_received : int;
  mutable frames_resent : int;
  mutable escalated : int;
  mutable unserviceable : int;
}

let create ~env ~capacity ?upstream ?pool () =
  {
    env;
    buffer = Retx_buffer.create ~capacity;
    upstream;
    pool;
    naks_received = 0;
    frames_resent = 0;
    escalated = 0;
    unserviceable = 0;
  }

let store t ~seq ~born frame = Retx_buffer.store t.buffer ~seq ~born frame

let resend t ~requester (entry : Retx_buffer.entry) =
  (* Preserve the original birth time: a recovered message's latency is
     end-to-end, not resend-to-delivery. *)
  let src = entry.Retx_buffer.frame in
  let len = Bytes.length src in
  let packet =
    match t.env.Mmt_runtime.Env.ring with
    | Some ring ->
        let p =
          Mmt_sim.Ring.in_packet ring
            ~id:(t.env.Mmt_runtime.Env.fresh_id ())
            ~born:entry.Retx_buffer.born len
        in
        Bytes.blit src 0 (Mmt_sim.Packet.frame p) 0 len;
        p
    | None ->
        let frame =
          match t.pool with
          | None -> Bytes.copy src
          | Some pool ->
              let out = Mmt_sim.Pool.acquire pool len in
              Bytes.blit src 0 out 0 len;
              out
        in
        Mmt_sim.Packet.create
          ~id:(t.env.Mmt_runtime.Env.fresh_id ())
          ~born:entry.Retx_buffer.born frame
  in
  t.frames_resent <- t.frames_resent + 1;
  t.env.Mmt_runtime.Env.send requester packet

let escalate t ~requester seqs =
  match (t.upstream, seqs) with
  | _, [] -> ()
  | None, seqs -> t.unserviceable <- t.unserviceable + List.length seqs
  | Some upstream, seqs ->
      t.escalated <- t.escalated + List.length seqs;
      let nak =
        {
          Control.Nak.requester;
          ranges = Control.Nak.ranges_of_sorted (List.sort compare seqs);
        }
      in
      let header =
        Header.with_kind
          (Header.mode0
             ~experiment:(Experiment_id.make ~experiment:0 ~slice:0))
          Feature.Kind.Nak
      in
      let mmt = Header.encode header in
      let payload = Control.Nak.encode nak in
      let frame = Bytes.create (Bytes.length mmt + Bytes.length payload) in
      Bytes.blit mmt 0 frame 0 (Bytes.length mmt);
      Bytes.blit payload 0 frame (Bytes.length mmt) (Bytes.length payload);
      let wrapped =
        Encap.wrap
          (Encap.Over_ipv4
             {
               src = t.env.Mmt_runtime.Env.local_ip;
               dst = upstream;
               dscp = 0;
               ttl = 64;
             })
          frame
      in
      t.env.Mmt_runtime.Env.send upstream (Mmt_runtime.Env.packet t.env wrapped)

let handle_nak t nak =
  t.naks_received <- t.naks_received + 1;
  let missing = ref [] in
  List.iter
    (fun (first, last) ->
      for seq = first to last do
        match Retx_buffer.fetch t.buffer ~seq with
        | Some entry -> resend t ~requester:nak.Control.Nak.requester entry
        | None -> missing := seq :: !missing
      done)
    nak.Control.Nak.ranges;
  escalate t ~requester:nak.Control.Nak.requester (List.rev !missing)

let on_packet t packet =
  (if not packet.Mmt_sim.Packet.corrupted then
     match Encap.strip (Mmt_sim.Packet.frame packet) with
     | Error _ -> ()
     | Ok (_encap, mmt_frame) -> (
         match Header.decode_bytes mmt_frame with
         | Error _ -> ()
         | Ok header -> (
             match header.Header.kind with
             | Feature.Kind.Nak -> (
                 let payload =
                   Bytes.sub mmt_frame (Header.size header)
                     (Bytes.length mmt_frame - Header.size header)
                 in
                 match Control.Nak.decode payload with
                 | Error _ -> ()
                 | Ok nak -> handle_nak t nak)
             | Feature.Kind.Data | Feature.Kind.Deadline_exceeded
             | Feature.Kind.Backpressure | Feature.Kind.Buffer_advert ->
                 ())));
  (* The buffer host consumes whatever reaches it (NAKs and strays). *)
  Mmt_runtime.Env.retire t.env packet

let advert t ~rtt_hint =
  {
    Control.Buffer_advert.buffer = t.env.Mmt_runtime.Env.local_ip;
    capacity = Retx_buffer.capacity t.buffer;
    rtt_hint;
  }

let stats t =
  {
    naks_received = t.naks_received;
    frames_resent = t.frames_resent;
    escalated = t.escalated;
    unserviceable = t.unserviceable;
    buffer = Retx_buffer.stats t.buffer;
  }
