open Mmt_frame
module Cursor = Mmt_wire.Cursor

type t =
  | Raw
  | Over_ethernet of { src : Addr.Mac.t; dst : Addr.Mac.t }
  | Over_ipv4 of { src : Addr.Ip.t; dst : Addr.Ip.t; dscp : int; ttl : int }

let overhead = function
  | Raw -> 0
  | Over_ethernet _ -> Ethernet.header_size
  | Over_ipv4 _ -> Ipv4.header_size

let wrap_into t ~mmt_length out =
  match t with
  | Raw -> ()
  | Over_ethernet { src; dst } ->
      let w = Cursor.Writer.over out in
      Ethernet.write w { Ethernet.src; dst; ethertype = Ethernet.ethertype_mmt }
  | Over_ipv4 { src; dst; dscp; ttl } ->
      let w = Cursor.Writer.over out in
      Ipv4.write w
        {
          Ipv4.dscp;
          ttl;
          protocol = Ipv4.protocol_mmt;
          src;
          dst;
          payload_length = mmt_length;
        }

let wrap t mmt_frame =
  match t with
  | Raw -> mmt_frame
  | _ ->
      let off = overhead t in
      let out = Bytes.create (off + Bytes.length mmt_frame) in
      wrap_into t ~mmt_length:(Bytes.length mmt_frame) out;
      Bytes.blit mmt_frame 0 out off (Bytes.length mmt_frame);
      out

let locate frame =
  if Bytes.length frame = 0 then Error "empty frame"
  else
    match Char.code (Bytes.get frame 0) with
    | 0x01 -> Ok (Raw, 0)
    | 0x45 -> (
        match Ipv4.read (Cursor.Reader.of_bytes frame) with
        | exception Cursor.Out_of_bounds _ -> Error "truncated IPv4 header"
        | exception Failure e -> Error e
        | ip ->
            if ip.Ipv4.protocol <> Ipv4.protocol_mmt then
              Error (Printf.sprintf "IPv4 protocol %d is not MMT" ip.Ipv4.protocol)
            else
              Ok
                ( Over_ipv4
                    {
                      src = ip.Ipv4.src;
                      dst = ip.Ipv4.dst;
                      dscp = ip.Ipv4.dscp;
                      ttl = ip.Ipv4.ttl;
                    },
                  Ipv4.header_size ))
    | _ -> (
        match Ethernet.read (Cursor.Reader.of_bytes frame) with
        | exception Cursor.Out_of_bounds _ -> Error "truncated Ethernet header"
        | eth ->
            if eth.Ethernet.ethertype = Ethernet.ethertype_mmt then
              Ok
                ( Over_ethernet { src = eth.Ethernet.src; dst = eth.Ethernet.dst },
                  Ethernet.header_size )
            else if eth.Ethernet.ethertype = Ethernet.ethertype_ipv4 then
              match
                Ipv4.read (Cursor.Reader.of_bytes ~off:Ethernet.header_size frame)
              with
              | exception Cursor.Out_of_bounds _ -> Error "truncated inner IPv4"
              | exception Failure e -> Error e
              | ip ->
                  if ip.Ipv4.protocol <> Ipv4.protocol_mmt then
                    Error "inner IPv4 protocol is not MMT"
                  else
                    Ok
                      ( Over_ipv4
                          {
                            src = ip.Ipv4.src;
                            dst = ip.Ipv4.dst;
                            dscp = ip.Ipv4.dscp;
                            ttl = ip.Ipv4.ttl;
                          },
                        Ethernet.header_size + Ipv4.header_size )
            else
              Error
                (Printf.sprintf "ethertype 0x%04x is not MMT" eth.Ethernet.ethertype))

let strip frame =
  match locate frame with
  | Error _ as e -> e
  | Ok (encap, off) ->
      Ok (encap, Bytes.sub frame off (Bytes.length frame - off))

let rewrap_into ~old_frame ~mmt_offset ~mmt_length out =
  Bytes.blit old_frame 0 out 0 mmt_offset;
  (* Fix the IPv4 total length + checksum if an IPv4 header ends exactly
     at the transport offset. *)
  let ip_off =
    if mmt_offset = Ipv4.header_size then Some 0
    else if mmt_offset = Ethernet.header_size + Ipv4.header_size then
      Some Ethernet.header_size
    else None
  in
  match ip_off with
  | Some off when Char.code (Bytes.get out off) = 0x45 ->
      Bytes.set_uint16_be out (off + 2) (Ipv4.header_size + mmt_length);
      Bytes.set_uint16_be out (off + 10) 0;
      let csum = Cursor.checksum out ~off ~len:Ipv4.header_size in
      Bytes.set_uint16_be out (off + 10) csum
  | _ -> ()

let rewrap ~old_frame ~mmt_offset new_mmt =
  let out = Bytes.create (mmt_offset + Bytes.length new_mmt) in
  Bytes.blit new_mmt 0 out mmt_offset (Bytes.length new_mmt);
  rewrap_into ~old_frame ~mmt_offset ~mmt_length:(Bytes.length new_mmt) out;
  out

let describe = function
  | Raw -> "raw"
  | Over_ethernet { src; dst } ->
      Printf.sprintf "ethernet(%s -> %s)" (Addr.Mac.to_string src)
        (Addr.Mac.to_string dst)
  | Over_ipv4 { src; dst; _ } ->
      Printf.sprintf "ipv4(%s -> %s)" (Addr.Ip.to_string src)
        (Addr.Ip.to_string dst)
