open Mmt_util
open Mmt_frame
module Gauge = Mmt_telemetry.Gauge

type config = {
  experiment : Experiment_id.t;
  nak_delay : Units.Time.t;
  nak_retry_timeout : Units.Time.t;
  max_nak_retries : int;
  expected_total : int option;
}

type meta = {
  header : Header.t;
  arrival : Units.Time.t;
  transport_latency : Units.Time.t;
  recovered : bool;
  late : bool;
  aged : bool;
  age_us : int option;
}

type stats = {
  delivered : int;
  delivered_bytes : int;
  duplicates : int;
  corrupted : int;
  checksum_failed : int;
  implausible : int;
  unsequenced : int;
  gaps_detected : int;
  recovered : int;
  lost : int;
  unrecoverable : int;
  naks_sent : int;
  nak_sequences_requested : int;
  late : int;
  aged : int;
  deadline_notices_sent : int;
  out_of_order : int;
  source_updates : int;  (* retargeted by buffer advertisements *)
  resurrected : int;
      (* abandoned gaps a straggler retransmission delivered anyway *)
  first_arrival : Units.Time.t option;
  last_arrival : Units.Time.t option;
  completion : Units.Time.t option;
  still_missing : int;
  nak_state_high_water : int;
}

type gap = { mutable retries : int; mutable last_nak : Units.Time.t option }

(* Plausibility bound on the per-packet gap span.  A sequence number is
   attacker- (or bit-flip-) controlled input: accepting one far beyond
   the frontier would open millions of tracked gaps and NAK them all.
   Nothing reorders by anywhere near this much in practice, so a frame
   implying a wider jump is discarded as corrupt and, if it was real,
   recovered like any other loss once honest frames advance the
   frontier. *)
let max_gap_span = 1 lsl 16

type t = {
  env : Mmt_runtime.Env.t;
  config : config;
  deliver : meta -> bytes -> unit;
  received : (int, unit) Hashtbl.t;
  missing : (int, gap) Hashtbl.t;
  nak_state : Gauge.t;
      (* occupancy of [missing]: the receiver's recovery soft state *)
  given_up : (int, unit) Hashtbl.t;
  mutable next_expected : int option;
  mutable retransmit_source : Addr.Ip.t option;
  mutable flush_scheduled : bool;
  mutable tail_timer : Mmt_sim.Engine.handle;
  latencies : Stats.Summary.t;
  recovered_latencies : Stats.Summary.t;
  ages : Stats.Summary.t;
  mutable delivered : int;
  mutable delivered_bytes : int;
  mutable duplicates : int;
  mutable corrupted : int;
  mutable checksum_failed : int;
  mutable implausible : int;
  mutable unsequenced : int;
  mutable gaps_detected : int;
  mutable recovered : int;
  mutable lost : int;
  mutable unrecoverable : int;
  mutable naks_sent : int;
  mutable nak_sequences_requested : int;
  mutable late : int;
  mutable aged : int;
  mutable deadline_notices_sent : int;
  mutable out_of_order : int;
  mutable source_updates : int;
  mutable resurrected : int;
  mutable first_arrival : Units.Time.t option;
  mutable last_arrival : Units.Time.t option;
  mutable completion : Units.Time.t option;
}

let create ~env config ~deliver =
  {
    env;
    config;
    deliver;
    received = Hashtbl.create 4096;
    missing = Hashtbl.create 64;
    nak_state = Gauge.create ();
    given_up = Hashtbl.create 16;
    next_expected = None;
    retransmit_source = None;
    flush_scheduled = false;
    tail_timer = Mmt_sim.Engine.null;
    latencies = Stats.Summary.create ();
    recovered_latencies = Stats.Summary.create ();
    ages = Stats.Summary.create ();
    delivered = 0;
    delivered_bytes = 0;
    duplicates = 0;
    corrupted = 0;
    checksum_failed = 0;
    implausible = 0;
    unsequenced = 0;
    gaps_detected = 0;
    recovered = 0;
    lost = 0;
    unrecoverable = 0;
    naks_sent = 0;
    nak_sequences_requested = 0;
    late = 0;
    aged = 0;
    deadline_notices_sent = 0;
    out_of_order = 0;
    source_updates = 0;
    resurrected = 0;
    first_arrival = None;
    last_arrival = None;
    completion = None;
  }

let send_control t ~dst ~kind payload =
  let header =
    Header.with_kind (Header.mode0 ~experiment:t.config.experiment) kind
  in
  let mmt = Header.encode header in
  let frame = Bytes.create (Bytes.length mmt + Bytes.length payload) in
  Bytes.blit mmt 0 frame 0 (Bytes.length mmt);
  Bytes.blit payload 0 frame (Bytes.length mmt) (Bytes.length payload);
  let wrapped =
    Encap.wrap
      (Encap.Over_ipv4
         { src = t.env.Mmt_runtime.Env.local_ip; dst; dscp = 0; ttl = 64 })
      frame
  in
  t.env.Mmt_runtime.Env.send dst (Mmt_runtime.Env.packet t.env wrapped)

(* NAK machinery ------------------------------------------------------- *)

let sample_nak_state t = Gauge.set t.nak_state (Hashtbl.length t.missing)

let rec flush_naks t =
  t.flush_scheduled <- false;
  let now = Mmt_runtime.Env.now t.env in
  (* Retire hopeless gaps, collect the ones due for a (re-)NAK. *)
  let due = ref [] in
  let abandoned = ref [] in
  Hashtbl.iter
    (fun seq gap ->
      let nak_due =
        match gap.last_nak with
        | None -> true
        | Some last -> Units.Time.(Units.Time.diff now last >= t.config.nak_retry_timeout)
      in
      if nak_due then
        if gap.retries >= t.config.max_nak_retries then abandoned := seq :: !abandoned
        else due := seq :: !due)
    t.missing;
  List.iter
    (fun seq ->
      Hashtbl.remove t.missing seq;
      Hashtbl.replace t.given_up seq ();
      t.lost <- t.lost + 1)
    !abandoned;
  (match (!due, t.retransmit_source) with
  | [], _ -> ()
  | seqs, None ->
      (* No buffer named in any header seen so far: nothing to NAK. *)
      List.iter
        (fun seq ->
          Hashtbl.remove t.missing seq;
          t.unrecoverable <- t.unrecoverable + 1)
        seqs
  | seqs, Some buffer ->
      let sorted = List.sort compare seqs in
      let ranges = Control.Nak.ranges_of_sorted sorted in
      let nak =
        { Control.Nak.requester = t.env.Mmt_runtime.Env.local_ip; ranges }
      in
      send_control t ~dst:buffer ~kind:Feature.Kind.Nak (Control.Nak.encode nak);
      t.naks_sent <- t.naks_sent + 1;
      t.nak_sequences_requested <-
        t.nak_sequences_requested + Control.Nak.sequence_count nak;
      List.iter
        (fun seq ->
          match Hashtbl.find_opt t.missing seq with
          | None -> ()
          | Some gap ->
              gap.retries <- gap.retries + 1;
              gap.last_nak <- Some now)
        sorted);
  sample_nak_state t;
  if Hashtbl.length t.missing > 0 then schedule_flush t t.config.nak_retry_timeout

and schedule_flush t delay =
  if not t.flush_scheduled then begin
    t.flush_scheduled <- true;
    ignore (Mmt_runtime.Env.after t.env delay (fun () -> flush_naks t))
  end

(* Tail-loss detection --------------------------------------------------

   A gap is only visible when a later sequence arrives; losses at the
   very end of a stream would go unnoticed.  When the expected total is
   known, a quiescence timer re-armed on every arrival declares the
   unseen tail missing and NAKs it. *)

let tail_timeout t =
  Units.Time.max t.config.nak_retry_timeout (Units.Time.scale t.config.nak_delay 4.)

let rec arm_tail_check t =
  Mmt_sim.Engine.cancel t.env.Mmt_runtime.Env.engine t.tail_timer;
  t.tail_timer <- Mmt_sim.Engine.null;
  match (t.config.expected_total, t.completion) with
  | Some _, None ->
      t.tail_timer <-
        Mmt_runtime.Env.after t.env (tail_timeout t) (fun () ->
            t.tail_timer <- Mmt_sim.Engine.null;
            tail_check t)
  | _ -> ()

and tail_check t =
  match (t.config.expected_total, t.completion, t.next_expected) with
  | Some total, None, Some next_expected ->
      let unseen =
        total - t.delivered - Hashtbl.length t.missing - Hashtbl.length t.given_up
      in
      if unseen > 0 then begin
        for seq = next_expected to next_expected + unseen - 1 do
          if not (Hashtbl.mem t.received seq) && not (Hashtbl.mem t.given_up seq)
          then begin
            Hashtbl.replace t.missing seq { retries = 0; last_nak = None };
            t.gaps_detected <- t.gaps_detected + 1
          end
        done;
        sample_nak_state t;
        t.next_expected <- Some (next_expected + unseen);
        schedule_flush t t.config.nak_delay
      end
  | _ -> ()

(* Data path ----------------------------------------------------------- *)

let check_completion t now =
  match (t.config.expected_total, t.completion) with
  | Some total, None when t.delivered >= total -> t.completion <- Some now
  | _ -> ()

let timeliness_check t (header : Header.t) now =
  (* Returns (late, aged, final_age_us) and emits notifications. *)
  let late =
    match header.Header.timely with
    | None -> false
    | Some { Header.deadline; notify } ->
        if Units.Time.(now > deadline) then begin
          let sequence = Option.value ~default:0xFFFFFFFF header.Header.sequence in
          let notice =
            { Control.Deadline_exceeded.sequence; deadline; observed = now }
          in
          if not (Addr.Ip.is_any notify) then begin
            send_control t ~dst:notify ~kind:Feature.Kind.Deadline_exceeded
              (Control.Deadline_exceeded.encode notice);
            t.deadline_notices_sent <- t.deadline_notices_sent + 1
          end;
          true
        end
        else false
  in
  let aged, age_us =
    match header.Header.age with
    | None -> (false, None)
    | Some age ->
        (* Final accumulation: the destination is the last "element". *)
        let elapsed_ns =
          Units.Time.to_ns (Units.Time.diff now age.Header.last_touch_ns)
        in
        let final_age = age.Header.age_us + (elapsed_ns / 1_000) in
        (age.Header.aged || final_age > age.Header.budget_us, Some final_age)
  in
  if late then t.late <- t.late + 1;
  if aged then t.aged <- t.aged + 1;
  Option.iter (fun a -> Stats.Summary.add t.ages (float_of_int a)) age_us;
  (late, aged, age_us)

let deliver_message t packet (header : Header.t) payload ~recovered =
  let now = Mmt_runtime.Env.now t.env in
  let late, aged, age_us = timeliness_check t header now in
  let transport_latency = Units.Time.diff now packet.Mmt_sim.Packet.born in
  Stats.Summary.add t.latencies (Units.Time.to_float_s transport_latency);
  if recovered then
    Stats.Summary.add t.recovered_latencies (Units.Time.to_float_s transport_latency);
  t.delivered <- t.delivered + 1;
  t.delivered_bytes <-
    t.delivered_bytes + Units.Size.to_bytes (Mmt_sim.Packet.wire_size packet);
  if t.first_arrival = None then t.first_arrival <- Some now;
  t.last_arrival <- Some now;
  check_completion t now;
  arm_tail_check t;
  t.deliver
    { header; arrival = now; transport_latency; recovered; late; aged; age_us }
    payload

let implausible_seq t seq =
  let frontier = match t.next_expected with None -> 0 | Some e -> e in
  seq < 0
  || seq - frontier > max_gap_span
  ||
  match t.config.expected_total with
  | Some total -> seq >= total
  | None -> false

let handle_sequenced t packet header payload seq =
  if implausible_seq t seq then begin
    t.corrupted <- t.corrupted + 1;
    t.implausible <- t.implausible + 1
  end
  else begin
  Option.iter (fun ip -> t.retransmit_source <- Some ip)
    header.Header.retransmit_from;
  if Hashtbl.mem t.received seq then t.duplicates <- t.duplicates + 1
  else begin
    Hashtbl.replace t.received seq ();
    match t.next_expected with
    | None ->
        t.next_expected <- Some (seq + 1);
        (* Streams are sequenced from zero (PROTOCOL.md § 5): anything
           below the first arrival is head loss, recoverable like any
           other gap. *)
        if seq > 0 then begin
          for gap_seq = 0 to seq - 1 do
            Hashtbl.replace t.missing gap_seq { retries = 0; last_nak = None };
            t.gaps_detected <- t.gaps_detected + 1
          done;
          sample_nak_state t;
          schedule_flush t t.config.nak_delay
        end;
        deliver_message t packet header payload ~recovered:false
    | Some expected ->
        if seq >= expected then begin
          if seq > expected then begin
            for gap_seq = expected to seq - 1 do
              if not (Hashtbl.mem t.received gap_seq) then begin
                Hashtbl.replace t.missing gap_seq { retries = 0; last_nak = None };
                t.gaps_detected <- t.gaps_detected + 1
              end
            done;
            sample_nak_state t;
            schedule_flush t t.config.nak_delay
          end;
          t.next_expected <- Some (seq + 1);
          deliver_message t packet header payload ~recovered:false
        end
        else begin
          (* Before the frontier: either recovery of a known gap or
             plain reordering. *)
          t.out_of_order <- t.out_of_order + 1;
          let recovered = Hashtbl.mem t.missing seq in
          if recovered then begin
            Hashtbl.remove t.missing seq;
            sample_nak_state t;
            t.recovered <- t.recovered + 1
          end
          else if Hashtbl.mem t.given_up seq then begin
            (* A straggler arrived after we abandoned the gap: it now
               has two terminal states, which the accounting must
               know about or a chaos run's books will not balance. *)
            Hashtbl.remove t.given_up seq;
            t.resurrected <- t.resurrected + 1
          end;
          deliver_message t packet header payload ~recovered
        end
  end
  end

let consume t packet =
  if packet.Mmt_sim.Packet.corrupted then t.corrupted <- t.corrupted + 1
  else
    match Encap.strip (Mmt_sim.Packet.frame packet) with
    | Error _ -> t.corrupted <- t.corrupted + 1
    | Ok (_encap, mmt_frame) -> (
        match Header.View.of_frame mmt_frame with
        | Ok view when not (Header.View.verify view) ->
            (* Real corruption detection: the stored header checksum
               no longer sums clean over the received bytes. *)
            t.corrupted <- t.corrupted + 1;
            t.checksum_failed <- t.checksum_failed + 1
        | Ok _ | Error _ -> (
        match Header.decode_bytes mmt_frame with
        | Error _ -> t.corrupted <- t.corrupted + 1
        | Ok header -> (
            match header.Header.kind with
            | Feature.Kind.Data -> (
                let payload =
                  Bytes.sub mmt_frame (Header.size header)
                    (Bytes.length mmt_frame - Header.size header)
                in
                match header.Header.sequence with
                | Some seq -> handle_sequenced t packet header payload seq
                | None ->
                    t.unsequenced <- t.unsequenced + 1;
                    deliver_message t packet header payload ~recovered:false)
            | Feature.Kind.Buffer_advert -> (
                (* The control plane retargeting recovery: a buffer
                   advertisement pushed downstream (e.g. after a
                   failover) updates where NAKs go, even when no new
                   data arrives to carry the change. *)
                let payload =
                  Bytes.sub mmt_frame (Header.size header)
                    (Bytes.length mmt_frame - Header.size header)
                in
                match Control.Buffer_advert.decode payload with
                | Error _ -> ()
                | Ok advert ->
                    t.retransmit_source <- Some advert.Control.Buffer_advert.buffer;
                    t.source_updates <- t.source_updates + 1;
                    (* Re-aim pending recovery at the new buffer now:
                       an explicit retarget flushes immediately rather
                       than waiting out the retry timer. *)
                    if Hashtbl.length t.missing > 0 then begin
                      Hashtbl.iter (fun _seq gap -> gap.last_nak <- None) t.missing;
                      flush_naks t
                    end)
            | Feature.Kind.Nak | Feature.Kind.Deadline_exceeded
            | Feature.Kind.Backpressure ->
                (* Control traffic not for the data sink. *)
                ())))

let on_packet t packet =
  consume t packet;
  (* The receiver is the end of the line on every path — delivery,
     duplicate, corruption, control — everything it needs outlives the
     packet (payloads are copied out, stats are scalars). *)
  Mmt_runtime.Env.retire t.env packet

let stats t =
  {
    delivered = t.delivered;
    delivered_bytes = t.delivered_bytes;
    duplicates = t.duplicates;
    corrupted = t.corrupted;
    checksum_failed = t.checksum_failed;
    implausible = t.implausible;
    unsequenced = t.unsequenced;
    gaps_detected = t.gaps_detected;
    recovered = t.recovered;
    lost = t.lost;
    unrecoverable = t.unrecoverable;
    naks_sent = t.naks_sent;
    nak_sequences_requested = t.nak_sequences_requested;
    late = t.late;
    aged = t.aged;
    deadline_notices_sent = t.deadline_notices_sent;
    out_of_order = t.out_of_order;
    source_updates = t.source_updates;
    resurrected = t.resurrected;
    first_arrival = t.first_arrival;
    last_arrival = t.last_arrival;
    completion = t.completion;
    still_missing = Hashtbl.length t.missing;
    nak_state_high_water = Gauge.high_water t.nak_state;
  }

let latency_summary t = t.latencies
let recovered_latency_summary t = t.recovered_latencies
let age_summary t = t.ages

let goodput t =
  match (t.first_arrival, t.last_arrival) with
  | Some first, Some last when Units.Time.(last > first) ->
      Units.Rate.of_size_per_time
        (Units.Size.bytes t.delivered_bytes)
        (Units.Time.diff last first)
  | _ -> Units.Rate.zero
