open Mmt_util
module Gauge = Mmt_telemetry.Gauge

type stats = {
  stored : int;
  evicted : int;
  hits : int;
  misses : int;
  occupancy : Units.Size.t;
  entries : int;
  occupancy_high_water : Units.Size.t;
  entries_high_water : int;
}

type entry = { frame : bytes; born : Units.Time.t }

type t = {
  capacity : int;
  frames : (int, entry) Hashtbl.t;
  order : int Queue.t; (* insertion order of sequence numbers *)
  bytes : Gauge.t;
  entries : Gauge.t;
  mutable stored : int;
  mutable evicted : int;
  mutable hits : int;
  mutable misses : int;
}

let create ~capacity =
  {
    capacity = Units.Size.to_bytes capacity;
    frames = Hashtbl.create 1024;
    order = Queue.create ();
    bytes = Gauge.create ();
    entries = Gauge.create ();
    stored = 0;
    evicted = 0;
    hits = 0;
    misses = 0;
  }

let evict_one t =
  match Queue.take_opt t.order with
  | None -> ()
  | Some seq -> (
      match Hashtbl.find_opt t.frames seq with
      | None -> () (* already overwritten; its queue entry was stale *)
      | Some entry ->
          Hashtbl.remove t.frames seq;
          Gauge.add t.bytes (-Bytes.length entry.frame);
          Gauge.add t.entries (-1);
          t.evicted <- t.evicted + 1)

let store t ~seq ~born frame =
  let size = Bytes.length frame in
  t.stored <- t.stored + 1;
  if size > t.capacity then t.evicted <- t.evicted + 1
  else begin
    (match Hashtbl.find_opt t.frames seq with
    | Some old ->
        Gauge.add t.bytes (-Bytes.length old.frame);
        Gauge.add t.entries (-1);
        Hashtbl.remove t.frames seq
    | None -> ());
    while Gauge.value t.bytes + size > t.capacity do
      evict_one t
    done;
    Hashtbl.replace t.frames seq { frame; born };
    Queue.push seq t.order;
    Gauge.add t.bytes size;
    Gauge.add t.entries 1
  end

let fetch t ~seq =
  match Hashtbl.find_opt t.frames seq with
  | Some entry ->
      t.hits <- t.hits + 1;
      Some entry
  | None ->
      t.misses <- t.misses + 1;
      None

let contains t ~seq = Hashtbl.mem t.frames seq

let stats t =
  {
    stored = t.stored;
    evicted = t.evicted;
    hits = t.hits;
    misses = t.misses;
    occupancy = Units.Size.bytes (Gauge.value t.bytes);
    entries = Hashtbl.length t.frames;
    occupancy_high_water = Units.Size.bytes (Gauge.high_water t.bytes);
    entries_high_water = Gauge.high_water t.entries;
  }

let capacity t = Units.Size.bytes t.capacity
