open Mmt_util
open Mmt_frame
module Cursor = Mmt_wire.Cursor

let decode_guard what f buf =
  match f (Cursor.Reader.of_bytes buf) with
  | value -> Ok value
  | exception Cursor.Out_of_bounds _ -> Error ("truncated " ^ what)

module Nak = struct
  type t = { requester : Addr.Ip.t; ranges : (int * int) list }

  let encode t =
    let w = Cursor.Writer.create (4 + 2 + (8 * List.length t.ranges)) in
    Cursor.Writer.u32 w (Addr.Ip.to_int32 t.requester);
    Cursor.Writer.u16 w (List.length t.ranges);
    List.iter
      (fun (first, last) ->
        Cursor.Writer.u32_int w first;
        Cursor.Writer.u32_int w last)
      t.ranges;
    Cursor.Writer.contents w

  let decode buf =
    decode_guard "nak"
      (fun r ->
        let requester = Addr.Ip.of_int32 (Cursor.Reader.u32 r) in
        let count = Cursor.Reader.u16 r in
        let ranges =
          List.init count (fun _ ->
              let first = Cursor.Reader.u32_int r in
              let last = Cursor.Reader.u32_int r in
              (first, last))
        in
        { requester; ranges })
      buf

  let sequence_count t =
    List.fold_left (fun acc (first, last) -> acc + last - first + 1) 0 t.ranges

  let ranges_of_sorted seqs =
    let rec build acc current seqs =
      match (current, seqs) with
      | None, [] -> List.rev acc
      | Some range, [] -> List.rev (range :: acc)
      | None, s :: rest -> build acc (Some (s, s)) rest
      | Some (first, last), s :: rest ->
          if s = last + 1 then build acc (Some (first, s)) rest
          else build ((first, last) :: acc) (Some (s, s)) rest
    in
    build [] None seqs

  let equal a b = Addr.Ip.equal a.requester b.requester && a.ranges = b.ranges

  let pp fmt t =
    Format.fprintf fmt "nak{to %a:" Addr.Ip.pp t.requester;
    List.iter (fun (first, last) -> Format.fprintf fmt " %d-%d" first last) t.ranges;
    Format.fprintf fmt "}"
end

module Deadline_exceeded = struct
  type t = { sequence : int; deadline : Units.Time.t; observed : Units.Time.t }

  let encode t =
    let w = Cursor.Writer.create 20 in
    Cursor.Writer.u32_int w t.sequence;
    Cursor.Writer.u64 w (Units.Time.to_int64_ns t.deadline);
    Cursor.Writer.u64 w (Units.Time.to_int64_ns t.observed);
    Cursor.Writer.contents w

  let decode buf =
    decode_guard "deadline-exceeded"
      (fun r ->
        let sequence = Cursor.Reader.u32_int r in
        let deadline = Units.Time.of_int64_ns (Cursor.Reader.u64 r) in
        let observed = Units.Time.of_int64_ns (Cursor.Reader.u64 r) in
        { sequence; deadline; observed })
      buf

  let lateness t = Units.Time.diff t.observed t.deadline

  let equal a b =
    a.sequence = b.sequence
    && Units.Time.equal a.deadline b.deadline
    && Units.Time.equal a.observed b.observed

  let pp fmt t =
    Format.fprintf fmt "deadline-exceeded{seq %d, late by %a}" t.sequence
      Units.Time.pp (lateness t)
end

module Backpressure = struct
  type t = { origin : Addr.Ip.t; advised_pace_mbps : int; severity : int }

  let encode t =
    let w = Cursor.Writer.create 9 in
    Cursor.Writer.u32 w (Addr.Ip.to_int32 t.origin);
    Cursor.Writer.u32_int w t.advised_pace_mbps;
    Cursor.Writer.u8 w t.severity;
    Cursor.Writer.contents w

  let decode buf =
    decode_guard "backpressure"
      (fun r ->
        let origin = Addr.Ip.of_int32 (Cursor.Reader.u32 r) in
        let advised_pace_mbps = Cursor.Reader.u32_int r in
        let severity = Cursor.Reader.u8 r in
        { origin; advised_pace_mbps; severity })
      buf

  let equal a b =
    Addr.Ip.equal a.origin b.origin
    && a.advised_pace_mbps = b.advised_pace_mbps
    && a.severity = b.severity

  let pp fmt t =
    Format.fprintf fmt "backpressure{from %a, pace %dMbps, severity %d}"
      Addr.Ip.pp t.origin t.advised_pace_mbps t.severity
end

module Buffer_advert = struct
  type t = { buffer : Addr.Ip.t; capacity : Units.Size.t; rtt_hint : Units.Time.t }

  let encode t =
    let w = Cursor.Writer.create 20 in
    Cursor.Writer.u32 w (Addr.Ip.to_int32 t.buffer);
    Cursor.Writer.u64 w (Int64.of_int (Units.Size.to_bytes t.capacity));
    Cursor.Writer.u64 w (Units.Time.to_int64_ns t.rtt_hint);
    Cursor.Writer.contents w

  let decode buf =
    decode_guard "buffer-advert"
      (fun r ->
        let buffer = Addr.Ip.of_int32 (Cursor.Reader.u32 r) in
        let capacity = Units.Size.bytes (Int64.to_int (Cursor.Reader.u64 r)) in
        let rtt_hint = Units.Time.of_int64_ns (Cursor.Reader.u64 r) in
        { buffer; capacity; rtt_hint })
      buf

  let equal a b =
    Addr.Ip.equal a.buffer b.buffer
    && Units.Size.equal a.capacity b.capacity
    && Units.Time.equal a.rtt_hint b.rtt_hint

  let pp fmt t =
    Format.fprintf fmt "buffer-advert{%a, %a, rtt %a}" Addr.Ip.pp t.buffer
      Units.Size.pp t.capacity Units.Time.pp t.rtt_hint
end
