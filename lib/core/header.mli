(** The multi-modal transport header (§ 5.2 of the paper).

    Core header — 8 bytes, present in every packet:

    {v
      u8   configuration identifier (version of the next field)
      u24  configuration data (message kind + feature bits, {!Feature})
      u32  experiment identifier ({!Experiment_id})
    v}

    Followed by fixed-size optional extension fields {e in a fixed
    order}, present exactly when the corresponding feature bit is set:

    {v
      sequence          u32                      (Sequenced)
      retransmit_from   u32 IPv4                 (Reliable)
      deadline, notify  u64 ns, u32 IPv4         (Timely)
      age               u32 age_us, u32 budget_us,
                        u8 flags (bit0 = aged),
                        u24 hop count, u64 last-touch ns   (Age_tracked)
      pace              u32 Mbps                 (Paced)
      backpressure_to   u32 IPv4                 (Backpressured)
      int stack         u8 count, u8 flags (bit0 = overflow),
                        u16 reserved, then {!max_int_hops} fixed
                        24-byte slots: u16 node id, u8 mode id,
                        u8 hop index, u32 queue depth (bytes),
                        u64 ingress ns, u64 egress ns   (Int_telemetry)
    v}

    The header is designed for conservative, header-only rewriting in
    P4 hardware: every field is a fixed-width integer at an offset
    computable from the feature bits alone, and the hot-path age update
    has an in-place primitive ({!touch_age_in_place}). *)

open Mmt_util
open Mmt_frame

type age = {
  age_us : int;  (** accumulated one-way age, microseconds *)
  budget_us : int;  (** threshold after which the aged flag is set *)
  aged : bool;
  hop_count : int;
  last_touch_ns : Units.Time.t;
      (** when an element last accumulated age into this header *)
}

type timely = {
  deadline : Units.Time.t;  (** absolute delivery deadline *)
  notify : Addr.Ip.t;  (** where deadline-exceeded messages go *)
}

type int_record = {
  node_id : int;  (** stable identity of the stamping device, u16 *)
  mode_id : int;  (** which mode segment the hop serves, u8 *)
  hop_index : int;  (** position in the stack at stamping time *)
  queue_depth : int;  (** egress queue occupancy in bytes, u32 saturating *)
  ingress_ns : Units.Time.t;  (** when the packet entered the device *)
  egress_ns : Units.Time.t;  (** when it left the pipeline *)
}
(** One hop's in-band telemetry stamp (INT "embedded stack" style). *)

type int_stack = {
  records : int_record list;  (** oldest hop first; at most {!max_int_hops} *)
  overflowed : bool;
      (** a hop wanted to stamp but the stack was full (INT E-bit) *)
}

val empty_int_stack : int_stack

type t = private {
  config_id : int;
  kind : Feature.Kind.t;
  features : Feature.Set.t;
  experiment : Experiment_id.t;
  sequence : int option;
  retransmit_from : Addr.Ip.t option;
  timely : timely option;
  age : age option;
  pace_mbps : int option;
  backpressure_to : Addr.Ip.t option;
  int_stack : int_stack option;
}

val create :
  ?kind:Feature.Kind.t ->
  ?sequence:int ->
  ?retransmit_from:Addr.Ip.t ->
  ?timely:timely ->
  ?age:age ->
  ?pace_mbps:int ->
  ?backpressure_to:Addr.Ip.t ->
  ?int_stack:int_stack ->
  ?extra_features:Feature.t list ->
  experiment:Experiment_id.t ->
  unit ->
  t
(** The feature set is derived from which optional arguments are
    given, plus [extra_features] for value-less features (Duplicated,
    Encrypted).  [Reliable] implies [Sequenced] in any well-formed
    header, but [create] does not add it implicitly — pass both.
    @raise Invalid_argument on out-of-range field values or if
    [extra_features] names a feature that carries a field. *)

val mode0 : experiment:Experiment_id.t -> t
(** Mode 0: identification only — how DAQ data leaves the sensor. *)

val size : t -> int
(** Encoded size in bytes. *)

val core_size : int
(** 8. *)

val max_int_hops : int
(** 4 — the bounded depth of the in-band telemetry stack.  A fixed
    bound keeps the extension a constant-size header field, as a P4
    parser requires. *)

val int_record_size : int
(** 24 — encoded bytes per telemetry record. *)

val int_ext_size : int
(** Encoded size of the whole INT extension (count/flags word plus
    {!max_int_hops} slots), feature-independent. *)

val encode : t -> bytes
val encode_into : Mmt_wire.Cursor.Writer.t -> t -> unit

val decode : Mmt_wire.Cursor.Reader.t -> (t, string) result
(** Consumes exactly [size] bytes on success. *)

val decode_bytes : ?off:int -> bytes -> (t, string) result

(* Field surgery *)

val with_sequence : t -> int -> t
val with_retransmit_from : t -> Addr.Ip.t -> t
val with_timely : t -> timely -> t
val with_age : t -> age -> t
val with_pace : t -> int -> t
val with_backpressure_to : t -> Addr.Ip.t -> t
val with_int_stack : t -> int_stack -> t
val with_kind : t -> Feature.Kind.t -> t
val strip : t -> Feature.t -> t
(** Remove a feature and its field; no-op if absent. *)

val offset_of_age : t -> int option
(** Byte offset of the age extension from the header start, when
    present — computable from the feature bits alone, as a P4 parser
    would. *)

val touch_age_in_place :
  bytes -> ext_off:int -> now:Units.Time.t -> int * bool
(** [touch_age_in_place frame ~ext_off ~now] accumulates
    [now - last_touch] into the age field, updates last-touch, sets the
    aged flag if the budget is exceeded and increments the hop count —
    all by in-place byte surgery, the way a switch pipeline would.
    Returns [(age_us, aged)].  The caller supplies [ext_off] as the
    header start offset within [frame] plus {!offset_of_age}. *)

val offset_of_int : t -> int option
(** Byte offset of the INT extension from the header start, when
    present — computable from the feature bits alone. *)

val push_int_record_in_place :
  bytes ->
  ext_off:int ->
  node_id:int ->
  mode_id:int ->
  queue_depth:int ->
  ingress:Units.Time.t ->
  egress:Units.Time.t ->
  int option
(** Append one telemetry record to the stack by in-place byte surgery
    (the INT transit-hop fast path).  Returns [Some hop_index] when
    stamped; when the stack is already {!max_int_hops} deep it sets the
    overflow flag instead and returns [None].  Out-of-range node/mode
    ids are masked to field width and [queue_depth] saturates, as
    fixed-width ALU writes would. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
