(** The multi-modal transport header (§ 5.2 of the paper).

    Core header — 8 bytes, present in every packet:

    {v
      u8   configuration identifier (version of the next field)
      u24  configuration data (message kind + feature bits, {!Feature})
      u32  experiment identifier ({!Experiment_id})
    v}

    Followed by fixed-size optional extension fields {e in a fixed
    order}, present exactly when the corresponding feature bit is set:

    {v
      checksum          u16 checksum, u16 zero pad   (Checksummed)
      sequence          u32                      (Sequenced)
      retransmit_from   u32 IPv4                 (Reliable)
      deadline, notify  u64 ns, u32 IPv4         (Timely)
      age               u32 age_us, u32 budget_us,
                        u8 flags (bit0 = aged),
                        u24 hop count, u64 last-touch ns   (Age_tracked)
      pace              u32 Mbps                 (Paced)
      backpressure_to   u32 IPv4                 (Backpressured)
      int stack         u8 count, u8 flags (bit0 = overflow),
                        u16 reserved, then {!max_int_hops} fixed
                        24-byte slots: u16 node id, u8 mode id,
                        u8 hop index, u32 queue depth (bytes),
                        u64 ingress ns, u64 egress ns   (Int_telemetry)
    v}

    The checksum extension comes {e first} (constant offset
    {!core_size} whenever present): a 16-bit RFC 1071 ones'-complement
    sum over the entire fixed header with the checksum field zeroed.
    Verification is therefore "ones'-complement sum over the header
    equals zero" — a constant-offset integer computation a P4 verify
    stage performs without parsing the payload.

    The header is designed for conservative, header-only rewriting in
    P4 hardware: every field is a fixed-width integer at an offset
    computable from the feature bits alone, and the hot-path age update
    has an in-place primitive ({!touch_age_in_place}). *)

open Mmt_util
open Mmt_frame

type age = {
  age_us : int;  (** accumulated one-way age, microseconds *)
  budget_us : int;  (** threshold after which the aged flag is set *)
  aged : bool;
  hop_count : int;
  last_touch_ns : Units.Time.t;
      (** when an element last accumulated age into this header *)
}

type timely = {
  deadline : Units.Time.t;  (** absolute delivery deadline *)
  notify : Addr.Ip.t;  (** where deadline-exceeded messages go *)
}

type int_record = {
  node_id : int;  (** stable identity of the stamping device, u16 *)
  mode_id : int;  (** which mode segment the hop serves, u8 *)
  hop_index : int;  (** position in the stack at stamping time *)
  queue_depth : int;  (** egress queue occupancy in bytes, u32 saturating *)
  ingress_ns : Units.Time.t;  (** when the packet entered the device *)
  egress_ns : Units.Time.t;  (** when it left the pipeline *)
}
(** One hop's in-band telemetry stamp (INT "embedded stack" style). *)

type int_stack = {
  records : int_record list;  (** oldest hop first; at most {!max_int_hops} *)
  overflowed : bool;
      (** a hop wanted to stamp but the stack was full (INT E-bit) *)
}

val empty_int_stack : int_stack

type t = private {
  config_id : int;
  kind : Feature.Kind.t;
  features : Feature.Set.t;
  experiment : Experiment_id.t;
  sequence : int option;
  retransmit_from : Addr.Ip.t option;
  timely : timely option;
  age : age option;
  pace_mbps : int option;
  backpressure_to : Addr.Ip.t option;
  int_stack : int_stack option;
}

val create :
  ?kind:Feature.Kind.t ->
  ?sequence:int ->
  ?retransmit_from:Addr.Ip.t ->
  ?timely:timely ->
  ?age:age ->
  ?pace_mbps:int ->
  ?backpressure_to:Addr.Ip.t ->
  ?int_stack:int_stack ->
  ?extra_features:Feature.t list ->
  experiment:Experiment_id.t ->
  unit ->
  t
(** The feature set is derived from which optional arguments are
    given, plus [extra_features] for value-less features (Duplicated,
    Encrypted).  [Reliable] implies [Sequenced] in any well-formed
    header, but [create] does not add it implicitly — pass both.
    @raise Invalid_argument on out-of-range field values or if
    [extra_features] names a feature that carries a field. *)

val mode0 : experiment:Experiment_id.t -> t
(** Mode 0: identification only — how DAQ data leaves the sensor. *)

val size : t -> int
(** Encoded size in bytes. *)

val core_size : int
(** 8. *)

val checksum_size : int
(** 4 — u16 checksum plus u16 zero pad, keeping extensions 32-bit
    aligned. *)

val max_int_hops : int
(** 4 — the bounded depth of the in-band telemetry stack.  A fixed
    bound keeps the extension a constant-size header field, as a P4
    parser requires. *)

val int_record_size : int
(** 24 — encoded bytes per telemetry record. *)

val int_ext_size : int
(** Encoded size of the whole INT extension (count/flags word plus
    {!max_int_hops} slots), feature-independent. *)

val encode : t -> bytes
(** Seals the checksum when the Checksummed feature is active. *)

val encode_into : Mmt_wire.Cursor.Writer.t -> t -> unit

val seal_in_place : bytes -> off:int -> size:int -> unit
(** Recompute and store the checksum of the header spanning
    [\[off, off + size)]; the caller asserts the Checksummed feature is
    active (the field lives at [off + core_size]). *)

val verify_in_place : bytes -> off:int -> size:int -> bool
(** True iff the ones'-complement sum over the header window is zero —
    the sealed-and-uncorrupted property. *)

val decode : Mmt_wire.Cursor.Reader.t -> (t, string) result
(** Consumes exactly [size] bytes on success. *)

val decode_bytes : ?off:int -> bytes -> (t, string) result

(* Field surgery *)

val with_sequence : t -> int -> t
val with_retransmit_from : t -> Addr.Ip.t -> t
val with_timely : t -> timely -> t
val with_age : t -> age -> t
val with_pace : t -> int -> t
val with_backpressure_to : t -> Addr.Ip.t -> t
val with_int_stack : t -> int_stack -> t
val with_checksummed : t -> t
(** Activate the Checksummed feature; {!encode} then seals the header. *)

val with_kind : t -> Feature.Kind.t -> t
val strip : t -> Feature.t -> t
(** Remove a feature and its field; no-op if absent. *)

val offset_of_age : t -> int option
(** Byte offset of the age extension from the header start, when
    present — computable from the feature bits alone, as a P4 parser
    would. *)

val touch_age_in_place :
  bytes -> ext_off:int -> now:Units.Time.t -> int * bool
(** [touch_age_in_place frame ~ext_off ~now] accumulates
    [now - last_touch] into the age field, updates last-touch, sets the
    aged flag if the budget is exceeded and increments the hop count —
    all by in-place byte surgery, the way a switch pipeline would.
    Returns [(age_us, aged)].  The caller supplies [ext_off] as the
    header start offset within [frame] plus {!offset_of_age}. *)

val offset_of_int : t -> int option
(** Byte offset of the INT extension from the header start, when
    present — computable from the feature bits alone. *)

val push_int_record_in_place :
  bytes ->
  ext_off:int ->
  node_id:int ->
  mode_id:int ->
  queue_depth:int ->
  ingress:Units.Time.t ->
  egress:Units.Time.t ->
  int option
(** Append one telemetry record to the stack by in-place byte surgery
    (the INT transit-hop fast path).  Returns [Some hop_index] when
    stamped; when the stack is already {!max_int_hops} deep it sets the
    overflow flag instead and returns [None].  Out-of-range node/mode
    ids are masked to field width and [queue_depth] saturates, as
    fixed-width ALU writes would. *)

(** Zero-copy header views — the simulated equivalent of a Tofino
    match-action stage's header vector (§ 5.3 "conservative,
    header-based processing").

    A view parses only the 8-byte core (configuration identifier +
    configuration data) and derives the byte offset of every extension
    from the feature bits alone — exactly the arithmetic a P4 parser
    state machine performs.  All reads and writes are then fixed-offset
    integer accesses directly into the frame's [Bytes.t]: no record is
    materialised, no list is built, nothing is re-encoded.  The
    per-packet in-network elements use views; the full {!decode} is
    reserved for endpoints and the rare mode-rewrite slow path that
    changes the header's shape. *)
module View : sig
  type nonrec t
  (** A validated window onto one encoded header inside a frame.
      Creating a view performs no allocation beyond the view record
      itself; accessors never allocate except where documented. *)

  val of_frame : ?off:int -> bytes -> (t, string) result
  (** Validate the core header at [off] and compute extension offsets.
      Fails on an unknown configuration identifier, reserved
      configuration bits, a truncated frame, or an out-of-range INT
      stack count — the same conditions {!decode} rejects. *)

  val kind : t -> Feature.Kind.t
  val features : t -> Feature.Set.t
  val has : t -> Feature.t -> bool

  val size : t -> int
  (** Encoded header size implied by the feature bits; the payload
      starts at [off + size]. *)

  val experiment : t -> Experiment_id.t

  (** Field accessors below raise [Invalid_argument] when the feature
      is absent — check {!has} first on paths where that is possible.
      Setters mask/validate exactly like the record-level [with_*]
      functions, and never change the header's size.  When the
      Checksummed feature is active, every setter reseals the checksum
      (the deparser's checksum-update stage); otherwise setters pay a
      single branch. *)

  val checksum : t -> int
  (** Stored checksum value (u16). *)

  val verify : t -> bool
  (** True when the Checksummed feature is absent, or when the stored
      checksum matches the header bytes.  Corrupt feature bits
      themselves are caught earlier: they change the implied size or
      trip {!of_frame}'s validation, or turn the header into one whose
      checksum no longer sums to zero. *)

  val sequence : t -> int
  val set_sequence : t -> int -> unit
  val retransmit_from : t -> Addr.Ip.t
  val set_retransmit_from : t -> Addr.Ip.t -> unit
  val deadline_ns : t -> Units.Time.t
  val set_deadline_ns : t -> Units.Time.t -> unit
  val notify : t -> Addr.Ip.t
  val set_notify : t -> Addr.Ip.t -> unit
  val age_us : t -> int
  val budget_us : t -> int
  val aged : t -> bool
  val hop_count : t -> int
  val last_touch_ns : t -> Units.Time.t

  val touch_age : t -> now:Units.Time.t -> int * bool
  (** {!touch_age_in_place} at the view's age offset. *)

  val pace_mbps : t -> int
  val set_pace_mbps : t -> int -> unit
  val backpressure_to : t -> Addr.Ip.t
  val set_backpressure_to : t -> Addr.Ip.t -> unit

  val int_count : t -> int
  val int_overflowed : t -> bool

  val int_record : t -> int -> int_record
  (** Read one stamped slot (allocates the record).
      @raise Invalid_argument outside [0 .. int_count - 1]. *)

  val int_records : t -> int_record list
  (** All stamped slots, oldest hop first (allocates; sink-only). *)

  val push_int_record :
    t ->
    node_id:int ->
    mode_id:int ->
    queue_depth:int ->
    ingress:Units.Time.t ->
    egress:Units.Time.t ->
    int option
  (** {!push_int_record_in_place} at the view's INT offset. *)

  val set_duplicated : t -> unit
  (** Set the Duplicated bit in the configuration data in place (the
      bit is value-less, so the header size is unchanged). *)

  val strip_int : t -> bytes
  (** A fresh MMT frame (header plus payload) with the INT extension
      removed and its feature bit cleared — two blits and a two-byte
      patch, no decode.  The INT extension is the last extension, so
      the strip is a contiguous cut. *)

  val stripped_int_length : t -> int
  (** Byte length {!strip_int} would return — lets a caller size a
      pool buffer before {!strip_int_into}. *)

  val strip_int_into : t -> bytes -> off:int -> unit
  (** {!strip_int} written at [off] of a caller-owned buffer (e.g. a
      pool frame with the encapsulation prefix already in place), so
      the per-packet strip at an INT sink allocates nothing. *)
end

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
