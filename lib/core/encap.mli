(** Encapsulation of the multi-modal transport (Req 1).

    The protocol "works both directly on Ethernet and on IP" (§ 5.3):
    inside a DAQ network frames may be raw transport datagrams or ride
    an Ethernet frame with {!Mmt_frame.Ethernet.ethertype_mmt}; across
    a WAN they ride IPv4 with {!Mmt_frame.Ipv4.protocol_mmt}.

    In-network elements use {!locate} to find the transport header
    inside an arbitrary frame without decapsulating — exactly what a P4
    parser does.

    Disambiguation rule for bare frames: the first byte of a raw
    transport frame is the configuration identifier (1); an IPv4 header
    starts 0x45; anything else is treated as Ethernet.  The simulator
    never uses multicast source/destination MACs whose first octet
    collides with these values. *)

open Mmt_frame

type t =
  | Raw  (** transport header first — straight off a sensor *)
  | Over_ethernet of { src : Addr.Mac.t; dst : Addr.Mac.t }
  | Over_ipv4 of { src : Addr.Ip.t; dst : Addr.Ip.t; dscp : int; ttl : int }

val wrap : t -> bytes -> bytes
(** Prepend the encapsulation headers to an MMT frame
    (header ++ payload). *)

val overhead : t -> int
(** Byte length of the encapsulation prefix {!wrap} prepends. *)

val wrap_into : t -> mmt_length:int -> bytes -> unit
(** Serialize the encapsulation header for an [mmt_length]-byte
    transport frame at offset 0 of a caller-owned buffer (at least
    [overhead t + mmt_length] long).  The caller blits the transport
    frame at [overhead t]; together with a pool buffer this is the
    allocation-free counterpart of {!wrap}. *)

val locate : bytes -> (t * int, string) result
(** [locate frame] identifies the encapsulation and returns the byte
    offset of the transport header. *)

val strip : bytes -> (t * bytes, string) result
(** [locate] plus copying out the transport frame. *)

val rewrap : old_frame:bytes -> mmt_offset:int -> bytes -> bytes
(** [rewrap ~old_frame ~mmt_offset new_mmt] keeps the encapsulation
    bytes of [old_frame] (fixing the IPv4 length/checksum when present)
    and replaces everything from [mmt_offset] with [new_mmt] — how an
    element swaps a grown or shrunk transport header without touching
    the outer routing. *)

val rewrap_into :
  old_frame:bytes -> mmt_offset:int -> mmt_length:int -> bytes -> unit
(** Allocation-free counterpart of {!rewrap}: copy [old_frame]'s
    encapsulation prefix into a caller-owned buffer of length
    [mmt_offset + mmt_length] and apply the IPv4 length/checksum fix.
    The caller blits the [mmt_length]-byte replacement transport frame
    at [mmt_offset] (before or after — the fix touches only the
    prefix). *)

val describe : t -> string
