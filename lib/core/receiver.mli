(** Data sink endpoint.

    Implements the destination behaviour of the pilot study (§ 5.4):
    loss detection from in-network-assigned sequence numbers, NAK-based
    recovery against the retransmission buffer named in the header
    (mode 2), and the timeliness check (mode 3): final age
    accumulation, deadline comparison, and deadline-exceeded
    notifications toward the configured address.

    Messages are delivered to the application immediately on arrival,
    out of order — the message abstraction (Req 7) means there is no
    head-of-line blocking; recovered messages are delivered late and
    flagged. *)

open Mmt_util

type config = {
  experiment : Experiment_id.t;
  nak_delay : Units.Time.t;
      (** debounce between detecting a gap and sending the first NAK *)
  nak_retry_timeout : Units.Time.t;
      (** re-NAK period for still-missing sequences *)
  max_nak_retries : int;  (** give up (count as lost) after this many NAKs *)
  expected_total : int option;
      (** when known, completion time is recorded at full delivery *)
}

type meta = {
  header : Header.t;
  arrival : Units.Time.t;
  transport_latency : Units.Time.t;  (** arrival - packet birth *)
  recovered : bool;  (** this message previously appeared as a gap *)
  late : bool;  (** arrived past its deadline *)
  aged : bool;  (** age budget exceeded by final accumulation *)
  age_us : int option;  (** final accumulated age, when age-tracked *)
}

type stats = {
  delivered : int;
  delivered_bytes : int;
  duplicates : int;
  corrupted : int;
      (** discarded on arrival: oracle-flagged, undecodable, or failed
          checksum verification *)
  checksum_failed : int;
      (** subset of [corrupted] caught by real header-checksum
          verification (Checksummed feature) rather than the
          simulator's oracle flag *)
  implausible : int;
      (** subset of [corrupted] rejected by the sequence-plausibility
          bound: the frame implied a gap span no honest reordering
          produces, so it is treated as undetected header corruption
          instead of opening (and NAKing) millions of phantom gaps *)
  unsequenced : int;
  gaps_detected : int;
  recovered : int;
  lost : int;  (** gaps abandoned after [max_nak_retries] *)
  unrecoverable : int;  (** gaps with no retransmission source in the header *)
  naks_sent : int;
  nak_sequences_requested : int;
  late : int;
  aged : int;
  deadline_notices_sent : int;
  out_of_order : int;
  source_updates : int;
      (** retransmission source retargeted by buffer advertisements
          (e.g. after an in-network buffer failover) *)
  resurrected : int;
      (** sequences abandoned (counted in [lost]) that a straggling
          retransmission later delivered anyway — invariant checkers
          subtract these so every frame nets exactly one terminal
          state *)
  first_arrival : Units.Time.t option;
  last_arrival : Units.Time.t option;
  completion : Units.Time.t option;
  still_missing : int;
  nak_state_high_water : int;
      (** most sequences simultaneously tracked as missing — the
          receiver-side soft-state footprint a hardware NAK engine
          would have to provision for *)
}

type t

val create :
  env:Mmt_runtime.Env.t ->
  config ->
  deliver:(meta -> bytes -> unit) ->
  t

val on_packet : t -> Mmt_sim.Packet.t -> unit
(** Feed an arriving packet (any encapsulation).  Corrupted packets
    are discarded, as a failed frame check would. *)

val stats : t -> stats

val latency_summary : t -> Stats.Summary.t
(** Transport latency of every delivered message. *)

val recovered_latency_summary : t -> Stats.Summary.t
(** Transport latency of recovered (previously missing) messages
    only — the observable behind the buffer-placement argument. *)

val age_summary : t -> Stats.Summary.t
(** Final age (microseconds) of every age-tracked delivery. *)

val goodput : t -> Units.Rate.t
(** Delivered bytes over the first-to-last arrival window. *)
