(** Transport features and the 24-bit configuration-data encoding.

    The core header carries an 8-bit configuration identifier (a
    version for interpreting the next field) and 24 bits of
    configuration data (§ 5.2 of the paper).  Under configuration
    identifier 1 — the only one defined here — the configuration data
    is laid out as:

    {v
      bits 0..15   feature activation bits (one per feature below)
      bits 16..19  reserved (must be zero)
      bits 20..23  message kind (data / control discriminator)
    v}

    A {e mode} is a configuration identifier plus an activated feature
    set plus the values of the features' extension fields; changing any
    of these mid-path is a mode change (§ 5). *)

type t =
  | Sequenced  (** packets carry a per-stream sequence number *)
  | Reliable
      (** loss is recoverable by NAK to an explicit retransmission
          source (the header names the buffer's IP) *)
  | Timely  (** a delivery deadline plus a notification address *)
  | Age_tracked
      (** network elements accumulate an age field and set the [aged]
          flag past a budget (§ 5.4) *)
  | Paced  (** sender honours an advised pace *)
  | Backpressured
      (** on-path elements may relay congestion back to the sender *)
  | Duplicated
      (** the stream is duplicated in-network to extra consumers *)
  | Encrypted  (** payload is encrypted (Req 5) *)
  | Int_telemetry
      (** the header carries a bounded in-band-telemetry stack that
          each programmable hop stamps with its identity, timestamps
          and queue depth (§ 6: per-hop observability) *)
  | Checksummed
      (** the header carries a 16-bit ones'-complement checksum over
          the fixed MMT header; receivers and P4-realizable verify
          elements detect on-the-wire corruption instead of trusting
          a simulator oracle (§ 5.3: fixed-size header fields keep
          this a constant-offset integer computation) *)

val all : t list
val to_string : t -> string
val bit : t -> int
(** Bit position inside the feature field; stable across versions. *)

module Set : sig
  type feature := t
  type t
  (** An immutable feature set (bitmask). *)

  val empty : t
  val of_list : feature list -> t
  val to_list : t -> feature list
  val mem : feature -> t -> bool
  val add : feature -> t -> t
  val remove : feature -> t -> t
  val union : t -> t -> t
  val equal : t -> t -> bool
  val subset : t -> t -> bool
  val cardinal : t -> int
  val pp : Format.formatter -> t -> unit
end

module Kind : sig
  type t =
    | Data
    | Nak  (** request for retransmission of sequence ranges *)
    | Deadline_exceeded  (** notification toward the configured address *)
    | Backpressure  (** advised pace relayed toward the sender *)
    | Buffer_advert
        (** control-plane advertisement of an in-network retransmission
            buffer (§ 6 challenge 1) *)

  val to_int : t -> int
  val of_int : int -> t option
  val to_string : t -> string
  val equal : t -> t -> bool
end

val config_id_v1 : int

val encode_config_data : kind:Kind.t -> Set.t -> int
(** Pack kind and features into the 24-bit configuration data. *)

val decode_config_data : int -> (Kind.t * Set.t, string) result
(** Reject unknown kinds and non-zero reserved bits. *)
