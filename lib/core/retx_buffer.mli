(** Retransmission buffers.

    The paper replaces TCP's retransmit-from-the-source with explicit
    on-path buffers: "a more 'recent' (lower RTT) retransmission
    buffer" (§ 1), named in the header so a receiver NAKs the nearest
    copy (§ 5.3).  A buffer stores full transport frames keyed by
    sequence number, bounded by bytes, evicting oldest-first — matching
    an FPGA ring buffer. *)

open Mmt_util

type t

type entry = {
  frame : bytes;
  born : Units.Time.t;
      (** birth time of the original packet, preserved so a
          retransmission reports end-to-end (not resend-to-delivery)
          latency *)
}

type stats = {
  stored : int;  (** frames ever inserted *)
  evicted : int;
  hits : int;
  misses : int;
  occupancy : Units.Size.t;
  entries : int;
  occupancy_high_water : Units.Size.t;
      (** most bytes the buffer ever held at once — the FPGA ring's
          required depth for this workload *)
  entries_high_water : int;
}

val create : capacity:Units.Size.t -> t

val store : t -> seq:int -> born:Units.Time.t -> bytes -> unit
(** Insert (or overwrite) the frame for [seq]; evicts oldest entries
    until the new frame fits.  Frames larger than the whole capacity
    are rejected silently (counted as immediate eviction). *)

val fetch : t -> seq:int -> entry option
(** Lookup; counts a hit or a miss. *)

val contains : t -> seq:int -> bool
(** Lookup without touching hit/miss accounting. *)

val stats : t -> stats
val capacity : t -> Units.Size.t
