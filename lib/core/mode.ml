open Mmt_util
open Mmt_frame

type t = {
  name : string;
  features : Feature.Set.t;
  retransmit_from : Addr.Ip.t option;
  deadline_budget : Units.Time.t option;
  notify : Addr.Ip.t option;
  age_budget_us : int option;
  pace_mbps : int option;
  backpressure_to : Addr.Ip.t option;
}

let identification =
  {
    name = "mode0/identification";
    features = Feature.Set.empty;
    retransmit_from = None;
    deadline_budget = None;
    notify = None;
    age_budget_us = None;
    pace_mbps = None;
    backpressure_to = None;
  }

let make ~name ?reliable ?deadline_budget ?age_budget_us ?pace_mbps
    ?backpressure_to ?(duplicated = false) ?(encrypted = false)
    ?(int_telemetry = false) ?(checksummed = false) () =
  let features = ref Feature.Set.empty in
  let activate feature = features := Feature.Set.add feature !features in
  Option.iter (fun _ -> activate Feature.Sequenced; activate Feature.Reliable) reliable;
  Option.iter (fun _ -> activate Feature.Timely) deadline_budget;
  Option.iter (fun _ -> activate Feature.Age_tracked) age_budget_us;
  Option.iter (fun _ -> activate Feature.Paced) pace_mbps;
  Option.iter (fun _ -> activate Feature.Backpressured) backpressure_to;
  if duplicated then activate Feature.Duplicated;
  if encrypted then activate Feature.Encrypted;
  if int_telemetry then activate Feature.Int_telemetry;
  if checksummed then activate Feature.Checksummed;
  {
    name;
    features = !features;
    retransmit_from = reliable;
    deadline_budget = Option.map fst deadline_budget;
    notify = Option.map snd deadline_budget;
    age_budget_us;
    pace_mbps;
    backpressure_to;
  }

let check t =
  let mem f = Feature.Set.mem f t.features in
  let require condition message = if condition then Ok () else Error message in
  let ( let* ) r f = Result.bind r f in
  let* () =
    require
      (not (mem Feature.Reliable) || mem Feature.Sequenced)
      (t.name ^ ": Reliable requires Sequenced")
  in
  let* () =
    require
      (mem Feature.Reliable = Option.is_some t.retransmit_from)
      (t.name ^ ": Reliable iff a retransmission buffer address")
  in
  let* () =
    require
      (mem Feature.Timely = (Option.is_some t.deadline_budget && Option.is_some t.notify))
      (t.name ^ ": Timely iff deadline budget and notify address")
  in
  let* () =
    require
      (mem Feature.Age_tracked = Option.is_some t.age_budget_us)
      (t.name ^ ": Age_tracked iff an age budget")
  in
  let* () =
    require
      (mem Feature.Paced = Option.is_some t.pace_mbps)
      (t.name ^ ": Paced iff a pace value")
  in
  require
    (mem Feature.Backpressured = Option.is_some t.backpressure_to)
    (t.name ^ ": Backpressured iff a sender control address")

let transition_legal ~from_mode ~to_mode =
  let from_has f = Feature.Set.mem f from_mode.features in
  let to_has f = Feature.Set.mem f to_mode.features in
  if to_has Feature.Reliable && not (to_has Feature.Sequenced) then
    Error
      (Printf.sprintf "%s -> %s: Reliable without Sequenced" from_mode.name
         to_mode.name)
  else if
    from_has Feature.Reliable
    && not (to_has Feature.Reliable)
    && to_has Feature.Sequenced
  then
    Error
      (Printf.sprintf
         "%s -> %s: stripping Reliable but keeping Sequenced strands \
          unrecoverable gaps"
         from_mode.name to_mode.name)
  else Ok ()

let pp fmt t =
  Format.fprintf fmt "mode{%s %a" t.name Feature.Set.pp t.features;
  Option.iter (fun ip -> Format.fprintf fmt " buffer=%a" Addr.Ip.pp ip)
    t.retransmit_from;
  Option.iter
    (fun budget -> Format.fprintf fmt " deadline+%a" Units.Time.pp budget)
    t.deadline_budget;
  Option.iter (fun b -> Format.fprintf fmt " age<=%dus" b) t.age_budget_us;
  Option.iter (fun p -> Format.fprintf fmt " pace=%dMbps" p) t.pace_mbps;
  Format.fprintf fmt "}"
