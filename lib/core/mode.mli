(** Transport modes and per-segment mode plans (§ 5.3).

    A mode names the feature combination and feature configuration a
    flow uses while crossing one network segment.  Network elements at
    segment boundaries rewrite headers from one mode to the next; the
    {!Mmt_innet} library hosts the rewriting machinery, this module
    holds the pure description plus the legality rules. *)

open Mmt_util
open Mmt_frame

type t = {
  name : string;
  features : Feature.Set.t;
  retransmit_from : Addr.Ip.t option;
      (** buffer serving NAKs within this segment (Reliable) *)
  deadline_budget : Units.Time.t option;
      (** relative budget; an element entering the segment sets the
          absolute deadline to ingress time + budget (Timely) *)
  notify : Addr.Ip.t option;  (** deadline-exceeded sink (Timely) *)
  age_budget_us : int option;  (** max age before the aged flag (Age_tracked) *)
  pace_mbps : int option;  (** advised pace (Paced) *)
  backpressure_to : Addr.Ip.t option;  (** sender control address (Backpressured) *)
}

val identification : t
(** Mode 0: experiment identification only — no features.  How data
    leaves the sensor (§ 5.3: "DAQ data starts out in mode 0"). *)

val make :
  name:string ->
  ?reliable:Addr.Ip.t ->
  ?deadline_budget:Units.Time.t * Addr.Ip.t ->
  ?age_budget_us:int ->
  ?pace_mbps:int ->
  ?backpressure_to:Addr.Ip.t ->
  ?duplicated:bool ->
  ?encrypted:bool ->
  ?int_telemetry:bool ->
  ?checksummed:bool ->
  unit ->
  t
(** Derives the feature set from the supplied configuration.
    [reliable] implies [Sequenced].  [int_telemetry] activates the
    in-band telemetry stack: the element entering the segment inserts
    an empty stack, every programmable hop stamps it, a sink strips
    it.  [checksummed] activates the header checksum: senders and
    rewriters seal it, receivers and verify elements discard frames
    whose fixed header no longer sums clean. *)

val check : t -> (unit, string) result
(** Well-formedness: [Reliable] requires [Sequenced] and a buffer
    address; [Timely] requires budget and notify; etc. *)

val transition_legal : from_mode:t -> to_mode:t -> (unit, string) result
(** Mode-change legality at a segment boundary.  The one hard rule:
    a segment must not strip [Sequenced] while keeping [Reliable], and
    must not strip [Reliable] while unrecovered state may exist
    upstream — conservatively, stripping [Reliable] is only legal when
    also stripping [Sequenced] (the stream leaves the recoverable
    region whole). *)

val pp : Format.formatter -> t -> unit
