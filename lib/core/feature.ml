type t =
  | Sequenced
  | Reliable
  | Timely
  | Age_tracked
  | Paced
  | Backpressured
  | Duplicated
  | Encrypted
  | Int_telemetry
  | Checksummed

let all =
  [ Sequenced; Reliable; Timely; Age_tracked; Paced; Backpressured; Duplicated;
    Encrypted; Int_telemetry; Checksummed ]

let to_string = function
  | Sequenced -> "sequenced"
  | Reliable -> "reliable"
  | Timely -> "timely"
  | Age_tracked -> "age-tracked"
  | Paced -> "paced"
  | Backpressured -> "backpressured"
  | Duplicated -> "duplicated"
  | Encrypted -> "encrypted"
  | Int_telemetry -> "int-telemetry"
  | Checksummed -> "checksummed"

let bit = function
  | Sequenced -> 0
  | Reliable -> 1
  | Timely -> 2
  | Age_tracked -> 3
  | Paced -> 4
  | Backpressured -> 5
  | Duplicated -> 6
  | Encrypted -> 7
  | Int_telemetry -> 8
  | Checksummed -> 9

module Set = struct
  type feature = t
  type t = int

  let empty = 0
  let mem feature set = set land (1 lsl bit feature) <> 0
  let add feature set = set lor (1 lsl bit feature)
  let remove feature set = set land lnot (1 lsl bit feature)
  let of_list features = List.fold_left (fun set f -> add f set) empty features
  let to_list set = List.filter (fun f -> mem f set) all
  let union = ( lor )
  let equal = Int.equal
  let subset a b = a land b = a
  let cardinal set = List.length (to_list set)

  let pp fmt set =
    match to_list set with
    | [] -> Format.pp_print_string fmt "{}"
    | features ->
        Format.fprintf fmt "{%s}"
          (String.concat ", " (List.map (fun (f : feature) -> to_string f) features))
end

module Kind = struct
  type t = Data | Nak | Deadline_exceeded | Backpressure | Buffer_advert

  let to_int = function
    | Data -> 0
    | Nak -> 1
    | Deadline_exceeded -> 2
    | Backpressure -> 3
    | Buffer_advert -> 4

  let of_int = function
    | 0 -> Some Data
    | 1 -> Some Nak
    | 2 -> Some Deadline_exceeded
    | 3 -> Some Backpressure
    | 4 -> Some Buffer_advert
    | _ -> None

  let to_string = function
    | Data -> "data"
    | Nak -> "nak"
    | Deadline_exceeded -> "deadline-exceeded"
    | Backpressure -> "backpressure"
    | Buffer_advert -> "buffer-advert"

  let equal a b = to_int a = to_int b
end

let config_id_v1 = 1
let feature_mask = 0xFFFF
let reserved_mask = 0xF0000
let kind_shift = 20

let encode_config_data ~kind set =
  (Kind.to_int kind lsl kind_shift) lor (set land feature_mask)

let decode_config_data data =
  if data land reserved_mask <> 0 then Error "reserved configuration bits set"
  else
    match Kind.of_int (data lsr kind_shift) with
    | None -> Error (Printf.sprintf "unknown message kind %d" (data lsr kind_shift))
    | Some kind -> Ok (kind, data land feature_mask)
