open Mmt_util
module Op = Mmt_innet.Op
module Element = Mmt_innet.Element

type stats = { stamped : int; overflowed : int; untracked : int }

type t = {
  node_id : int;
  mode_id : int;
  residency : Units.Time.t;
  queue_depth : unit -> int;
  mutable stamped : int;
  mutable overflowed : int;
  mutable untracked : int;
  element : Element.t Lazy.t;
}

let program =
  {
    Op.name = "int-stamper";
    ops =
      [
        Op.Extract "config_data";
        Op.Compare "features.int_telemetry";
        Op.Extract "int.count";
        Op.Compare "int.max_hops";
        Op.Set_field "int.slot.node_id";
        Op.Set_field "int.slot.mode_id";
        Op.Set_field "int.slot.hop_index";
        Op.Set_field "int.slot.queue_depth";
        Op.Set_field "int.slot.ingress";
        Op.Set_field "int.slot.egress";
        Op.Add_to_field "int.count";
      ];
  }

let process t ~now packet =
  let frame = Mmt_sim.Packet.frame packet in
  (match Mmt.Encap.locate frame with
  | Error _ -> t.untracked <- t.untracked + 1
  | Ok (_encap, mmt_offset) -> (
      match Mmt.Header.View.of_frame ~off:mmt_offset frame with
      | Error _ -> t.untracked <- t.untracked + 1
      | Ok view ->
          if not (Mmt.Header.View.has view Mmt.Feature.Int_telemetry) then
            t.untracked <- t.untracked + 1
          else begin
            match
              Mmt.Header.View.push_int_record view ~node_id:t.node_id
                ~mode_id:t.mode_id
                ~queue_depth:(t.queue_depth ())
                ~ingress:(Units.Time.diff now t.residency)
                ~egress:now
            with
            | Some _hop -> t.stamped <- t.stamped + 1
            | None -> t.overflowed <- t.overflowed + 1
          end));
  Element.Forward packet

let create ~node_id ~mode_id ?(residency = Units.Time.zero)
    ?(queue_depth = fun () -> 0) () =
  let rec t =
    {
      node_id;
      mode_id;
      residency;
      queue_depth;
      stamped = 0;
      overflowed = 0;
      untracked = 0;
      element =
        lazy
          {
            Element.name = Printf.sprintf "int-stamper(node %d)" node_id;
            program;
            process = (fun ~now packet -> process t ~now packet);
          };
    }
  in
  t

let element t = Lazy.force t.element

let stats t =
  { stamped = t.stamped; overflowed = t.overflowed; untracked = t.untracked }
