open Mmt_util

type t = {
  experiment : Mmt.Experiment_id.t;
  sequence : int option;
  records : Mmt.Header.int_record list;
  overflowed : bool;
  sink_node : int;
  sink_at : Units.Time.t;
}

let hops t = List.length t.records

let covered_span t =
  match t.records with
  | [] -> None
  | first :: _ -> Some (Units.Time.diff t.sink_at first.Mmt.Header.ingress_ns)

let segment_sum t =
  match t.records with
  | [] -> None
  | _ :: _ ->
      let ns time = Units.Time.to_ns time in
      let residency (r : Mmt.Header.int_record) =
        ns r.Mmt.Header.egress_ns - ns r.Mmt.Header.ingress_ns
      in
      let rec pieces acc = function
        | [] -> acc
        | [ (last : Mmt.Header.int_record) ] ->
            acc + residency last + (ns t.sink_at - ns last.Mmt.Header.egress_ns)
        | (a : Mmt.Header.int_record) :: (b :: _ as rest) ->
            let gap = ns b.Mmt.Header.ingress_ns - ns a.Mmt.Header.egress_ns in
            pieces (acc + residency a + gap) rest
      in
      Some (Units.Time.ns (max 0 (pieces 0 t.records)))

let pp fmt t =
  Format.fprintf fmt "@[int-digest{%a" Mmt.Experiment_id.pp t.experiment;
  Option.iter (fun s -> Format.fprintf fmt " seq=%d" s) t.sequence;
  Format.fprintf fmt " hops=%d%s sink=%d @@%a"
    (hops t)
    (if t.overflowed then "(OVERFLOW)" else "")
    t.sink_node Units.Time.pp t.sink_at;
  List.iter
    (fun (r : Mmt.Header.int_record) ->
      Format.fprintf fmt "@ [%d] node=%d mode=%d q=%dB %a->%a" r.Mmt.Header.hop_index
        r.Mmt.Header.node_id r.Mmt.Header.mode_id r.Mmt.Header.queue_depth
        Units.Time.pp r.Mmt.Header.ingress_ns Units.Time.pp r.Mmt.Header.egress_ns)
    t.records;
  Format.fprintf fmt "}@]"
