(** The INT transit hop: stamp the telemetry stack in place.

    An [Int_stamper] is an in-network element hosted on a programmable
    device.  For every data packet whose header activates
    [Int_telemetry] it appends one {!Mmt.Header.int_record} — node id,
    mode id, ingress/egress timestamps, egress queue depth, hop index —
    by fixed-offset byte surgery ({!Mmt.Header.push_int_record_in_place}),
    never growing the packet.  The stack itself is inserted by the mode
    rewriter at the telemetry domain's edge, exactly as a P4 INT source
    inserts the INT header.

    Its per-packet program stays within {!Mmt_innet.Op.realizable}:
    integer-only, header-only, bounded work. *)

open Mmt_util

type stats = {
  stamped : int;  (** records appended *)
  overflowed : int;  (** packets whose stack was already full *)
  untracked : int;  (** packets without the Int_telemetry feature *)
}

type t

val create :
  node_id:int ->
  mode_id:int ->
  ?residency:Units.Time.t ->
  ?queue_depth:(unit -> int) ->
  unit ->
  t
(** [residency] (default zero) is the device's pipeline latency.  The
    hosting {!Mmt_innet.Switch} runs its element chain {e after} the
    pipeline delay, so the stamper records [egress = now] and backdates
    [ingress = now - residency] to the packet's arrival at the device.
    [queue_depth] (default constant 0) samples the egress queue
    occupancy in bytes at stamping time, the way switch hardware
    exposes queue depth as intrinsic metadata. *)

val element : t -> Mmt_innet.Element.t
val program : Mmt_innet.Op.program
val stats : t -> stats
