(** INT digests ("postcards").

    When a flow leaves the telemetry domain, the {!Sink} strips the
    per-hop stack from the header and condenses it into one of these
    control-plane messages.  The digest is the unit the {!Collector}
    aggregates; it also carries the arithmetic used by the consistency
    checks: the per-segment pieces of a packet's journey must add up to
    the end-to-end span the stack covers. *)

open Mmt_util

type t = {
  experiment : Mmt.Experiment_id.t;
  sequence : int option;  (** in-network-assigned sequence, when present *)
  records : Mmt.Header.int_record list;  (** oldest hop first *)
  overflowed : bool;  (** some hop could not stamp (stack full) *)
  sink_node : int;  (** node id of the stripping sink *)
  sink_at : Units.Time.t;  (** when the sink processed the packet *)
}

val covered_span : t -> Units.Time.t option
(** [sink_at - first stamp's ingress]: the end-to-end latency of the
    INT-covered part of the path.  [None] for an empty stack. *)

val segment_sum : t -> Units.Time.t option
(** Sum of every per-hop piece: device residencies (egress - ingress),
    inter-hop gaps (next ingress - previous egress) and the final leg
    (sink_at - last egress).  Equals {!covered_span} up to integer
    rounding — the invariant the collector audits. *)

val hops : t -> int
val pp : Format.formatter -> t -> unit
