open Mmt_util

type stats = { digests : int; overflowed : int; empty : int }

type hop = {
  residency : Stats.Summary.t;
  queue_depth : Stats.Summary.t;
  mutable stamps : int;
}

type t = {
  names : (int, string) Hashtbl.t;
  hops : (int, hop) Hashtbl.t;
  segments : (int * int, Stats.Summary.t) Hashtbl.t;
  e2e : Stats.Summary.t;
  mutable digests : int;
  mutable overflowed : int;
  mutable empty : int;
  mutable max_inconsistency_ns : int;
}

let create ?(nodes = []) () =
  let names = Hashtbl.create 8 in
  List.iter (fun (id, name) -> Hashtbl.replace names id name) nodes;
  {
    names;
    hops = Hashtbl.create 8;
    segments = Hashtbl.create 8;
    e2e = Stats.Summary.create ();
    digests = 0;
    overflowed = 0;
    empty = 0;
    max_inconsistency_ns = 0;
  }

let node_name t id =
  match Hashtbl.find_opt t.names id with
  | Some name -> name
  | None -> Printf.sprintf "node-%d" id

let hop_for t id =
  match Hashtbl.find_opt t.hops id with
  | Some hop -> hop
  | None ->
      let hop =
        {
          residency = Stats.Summary.create ();
          queue_depth = Stats.Summary.create ();
          stamps = 0;
        }
      in
      Hashtbl.replace t.hops id hop;
      hop

let segment_for t key =
  match Hashtbl.find_opt t.segments key with
  | Some summary -> summary
  | None ->
      let summary = Stats.Summary.create () in
      Hashtbl.replace t.segments key summary;
      summary

let ns = Units.Time.to_ns

let add t (digest : Digest.t) =
  t.digests <- t.digests + 1;
  if digest.Digest.overflowed then t.overflowed <- t.overflowed + 1;
  match digest.Digest.records with
  | [] -> t.empty <- t.empty + 1
  | records ->
      List.iter
        (fun (r : Mmt.Header.int_record) ->
          let hop = hop_for t r.Mmt.Header.node_id in
          hop.stamps <- hop.stamps + 1;
          Stats.Summary.add hop.residency
            (float_of_int (ns r.Mmt.Header.egress_ns - ns r.Mmt.Header.ingress_ns));
          Stats.Summary.add hop.queue_depth (float_of_int r.Mmt.Header.queue_depth))
        records;
      let rec walk = function
        | [] -> ()
        | [ (last : Mmt.Header.int_record) ] ->
            Stats.Summary.add
              (segment_for t (last.Mmt.Header.node_id, digest.Digest.sink_node))
              (float_of_int
                 (ns digest.Digest.sink_at - ns last.Mmt.Header.egress_ns))
        | (a : Mmt.Header.int_record) :: (b :: _ as rest) ->
            Stats.Summary.add
              (segment_for t (a.Mmt.Header.node_id, b.Mmt.Header.node_id))
              (float_of_int
                 (ns b.Mmt.Header.ingress_ns - ns a.Mmt.Header.egress_ns));
            walk rest
      in
      walk records;
      (match (Digest.covered_span digest, Digest.segment_sum digest) with
      | Some covered, Some pieces ->
          Stats.Summary.add t.e2e (float_of_int (ns covered));
          let drift = abs (ns covered - ns pieces) in
          if drift > t.max_inconsistency_ns then t.max_inconsistency_ns <- drift
      | _ -> ())

let stats t = { digests = t.digests; overflowed = t.overflowed; empty = t.empty }

let hop_ids t = List.sort compare (Hashtbl.fold (fun id _ acc -> id :: acc) t.hops [])

let hop_stamps t id =
  match Hashtbl.find_opt t.hops id with Some hop -> hop.stamps | None -> 0

let hop_residency t id =
  Option.map (fun hop -> hop.residency) (Hashtbl.find_opt t.hops id)

let hop_queue_depth t id =
  Option.map (fun hop -> hop.queue_depth) (Hashtbl.find_opt t.hops id)

let segment_ids t =
  List.sort compare (Hashtbl.fold (fun key _ acc -> key :: acc) t.segments [])

let segment_latency t ~src ~dst = Hashtbl.find_opt t.segments (src, dst)

let e2e t = t.e2e
let max_inconsistency_ns t = t.max_inconsistency_ns

let time_of_ns_float v =
  Units.Time.to_string (Units.Time.ns (int_of_float (Float.max 0. v)))

let summary_cells summary =
  if Stats.Summary.count summary = 0 then ("-", "-", "-")
  else
    ( time_of_ns_float (Stats.Summary.median summary),
      time_of_ns_float (Stats.Summary.mean summary),
      time_of_ns_float (Stats.Summary.quantile summary 0.99) )

let hop_table t =
  let table =
    Table.create ~title:"INT per-hop breakdown"
      ~columns:
        [
          ("hop", Table.Left);
          ("stamps", Table.Right);
          ("residency p50", Table.Right);
          ("residency mean", Table.Right);
          ("residency p99", Table.Right);
          ("queue p50", Table.Right);
          ("queue max", Table.Right);
        ]
      ()
  in
  List.iter
    (fun id ->
      let hop = Hashtbl.find t.hops id in
      let p50, mean, p99 = summary_cells hop.residency in
      let queue_p50, queue_max =
        if Stats.Summary.count hop.queue_depth = 0 then ("-", "-")
        else
          ( Printf.sprintf "%.0f B" (Stats.Summary.median hop.queue_depth),
            Printf.sprintf "%.0f B" (Stats.Summary.max hop.queue_depth) )
      in
      Table.add_row table
        [ node_name t id; string_of_int hop.stamps; p50; mean; p99; queue_p50; queue_max ])
    (hop_ids t);
  table

let segment_table t =
  let table =
    Table.create ~title:"INT per-segment latency"
      ~columns:
        [
          ("segment", Table.Left);
          ("samples", Table.Right);
          ("p50", Table.Right);
          ("mean", Table.Right);
          ("p99", Table.Right);
        ]
      ()
  in
  List.iter
    (fun (src, dst) ->
      let summary = Hashtbl.find t.segments (src, dst) in
      let p50, mean, p99 = summary_cells summary in
      Table.add_row table
        [
          Printf.sprintf "%s -> %s" (node_name t src) (node_name t dst);
          string_of_int (Stats.Summary.count summary);
          p50;
          mean;
          p99;
        ])
    (segment_ids t);
  table

let render t =
  let buffer = Buffer.create 1024 in
  Buffer.add_string buffer (Table.render (hop_table t));
  Buffer.add_char buffer '\n';
  Buffer.add_string buffer (Table.render (segment_table t));
  Buffer.add_char buffer '\n';
  let p50, mean, p99 = summary_cells t.e2e in
  Buffer.add_string buffer
    (Printf.sprintf
       "%d digests (%d overflowed, %d empty); covered end-to-end p50 %s, mean \
        %s, p99 %s; max per-packet drift %dns\n"
       t.digests t.overflowed t.empty p50 mean p99 t.max_inconsistency_ns);
  Buffer.contents buffer

let report ?(id = "INT") ?(title = "in-band telemetry per-hop breakdown") t =
  let rows = ref [] in
  let push row = rows := row :: !rows in
  push
    (Mmt_telemetry.Report.info ~metric:"digests collected"
       ~measured:
         (Printf.sprintf "%d (%d overflowed, %d empty)" t.digests t.overflowed
            t.empty));
  List.iter
    (fun node ->
      let hop = Hashtbl.find t.hops node in
      let p50, mean, p99 = summary_cells hop.residency in
      push
        (Mmt_telemetry.Report.info
           ~metric:(Printf.sprintf "hop %s residency" (node_name t node))
           ~measured:
             (Printf.sprintf "p50 %s / mean %s / p99 %s over %d stamps" p50 mean
                p99 hop.stamps));
      if Stats.Summary.count hop.queue_depth > 0 then
        push
          (Mmt_telemetry.Report.info
             ~metric:(Printf.sprintf "hop %s queue depth" (node_name t node))
             ~measured:
               (Printf.sprintf "p50 %.0f B / max %.0f B"
                  (Stats.Summary.median hop.queue_depth)
                  (Stats.Summary.max hop.queue_depth))))
    (hop_ids t);
  List.iter
    (fun (src, dst) ->
      let summary = Hashtbl.find t.segments (src, dst) in
      let p50, mean, p99 = summary_cells summary in
      push
        (Mmt_telemetry.Report.info
           ~metric:(Printf.sprintf "segment %s -> %s" (node_name t src) (node_name t dst))
           ~measured:(Printf.sprintf "p50 %s / mean %s / p99 %s" p50 mean p99)))
    (segment_ids t);
  let e2e_p50, e2e_mean, e2e_p99 = summary_cells t.e2e in
  push
    (Mmt_telemetry.Report.info ~metric:"covered end-to-end"
       ~measured:(Printf.sprintf "p50 %s / mean %s / p99 %s" e2e_p50 e2e_mean e2e_p99));
  push
    (Mmt_telemetry.Report.check ~metric:"segment sums vs end-to-end"
       ~expected:"telescoping sum, zero drift"
       ~measured:(Printf.sprintf "max drift %dns" t.max_inconsistency_ns)
       (t.max_inconsistency_ns <= 1));
  { Mmt_telemetry.Report.id; title; note = None; rows = List.rev !rows }
