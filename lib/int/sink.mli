(** The INT sink: strip the stack at a segment/flow boundary.

    An [Int_sink] sits where a flow leaves the telemetry domain
    (typically the destination DTN's smartNIC).  It pops the whole
    per-hop stack out of the header — restoring the packet to its
    pre-telemetry size before the endpoint sees it — and condenses the
    stack into a {!Digest.t} "postcard" handed to [emit] (the
    control-plane path toward a {!Collector}).

    Packets without the feature, and control traffic, pass untouched. *)

type stats = {
  stripped : int;  (** stacks removed and digested *)
  passed : int;  (** packets without a stack *)
}

type t

val create :
  node_id:int -> emit:(Digest.t -> unit) -> ?pool:Mmt_sim.Pool.t -> unit -> t
(** With [pool], the stripped replacement frame is acquired from it and
    the pre-strip frame released back, keeping the per-packet strip
    allocation-free. *)

val element : t -> Mmt_innet.Element.t
val program : Mmt_innet.Op.program
val stats : t -> stats
