module Op = Mmt_innet.Op
module Element = Mmt_innet.Element

type stats = { stripped : int; passed : int }

type t = {
  node_id : int;
  emit : Digest.t -> unit;
  pool : Mmt_sim.Pool.t option;
  mutable stripped : int;
  mutable passed : int;
  element : Element.t Lazy.t;
}

let program =
  {
    Op.name = "int-sink";
    ops =
      [
        Op.Extract "config_data";
        Op.Compare "features.int_telemetry";
        Op.Extract "int.stack";
        Op.Emit_digest "int-postcard";
        Op.Set_field "config_data";
      ];
  }

let process_clean t ~now packet =
  let frame = Mmt_sim.Packet.frame packet in
  match Mmt.Encap.locate frame with
  | Error _ ->
      t.passed <- t.passed + 1;
      Element.Forward packet
  | Ok (_encap, mmt_offset) -> (
      match Mmt.Header.View.of_frame ~off:mmt_offset frame with
      | Error _ ->
          t.passed <- t.passed + 1;
          Element.Forward packet
      | Ok view ->
          if
            Mmt.Header.View.kind view = Mmt.Feature.Kind.Data
            && Mmt.Header.View.has view Mmt.Feature.Int_telemetry
          then begin
            t.emit
              {
                Digest.experiment = Mmt.Header.View.experiment view;
                sequence =
                  (if Mmt.Header.View.has view Mmt.Feature.Sequenced then
                     Some (Mmt.Header.View.sequence view)
                   else None);
                records = Mmt.Header.View.int_records view;
                overflowed = Mmt.Header.View.int_overflowed view;
                sink_node = t.node_id;
                sink_at = now;
              };
            (* The INT stack is the last extension, so stripping it is a
               contiguous cut — no decode or re-encode.  Build the
               stripped frame in a pool buffer and recycle the old one
               (set_frame used to leak it to the GC). *)
            let mmt_length = Mmt.Header.View.stripped_int_length view in
            let out =
              match t.pool with
              | Some pool ->
                  Mmt_sim.Pool.acquire pool (mmt_offset + mmt_length)
              | None -> Bytes.create (mmt_offset + mmt_length)
            in
            Mmt.Encap.rewrap_into ~old_frame:frame ~mmt_offset ~mmt_length out;
            Mmt.Header.View.strip_int_into view out ~off:mmt_offset;
            Mmt_sim.Packet.set_frame packet out;
            (match t.pool with
            | Some pool when frame != out -> Mmt_sim.Pool.release pool frame
            | _ -> ());
            t.stripped <- t.stripped + 1;
            Element.Forward packet
          end
          else begin
            t.passed <- t.passed + 1;
            Element.Forward packet
          end)

let process t ~now packet =
  if packet.Mmt_sim.Packet.corrupted then begin
    (* A corrupted frame fails its integrity check downstream; do not
       let its stack pollute the telemetry. *)
    t.passed <- t.passed + 1;
    Element.Forward packet
  end
  else process_clean t ~now packet

let create ~node_id ~emit ?pool () =
  let rec t =
    {
      node_id;
      emit;
      pool;
      stripped = 0;
      passed = 0;
      element =
        lazy
          {
            Element.name = Printf.sprintf "int-sink(node %d)" node_id;
            program;
            process = (fun ~now packet -> process t ~now packet);
          };
    }
  in
  t

let element t = Lazy.force t.element
let stats t = { stripped = t.stripped; passed = t.passed }
