(** INT digest aggregation: per-hop and per-segment distributions.

    The collector is the control-plane endpoint for {!Sink} postcards.
    From each digest it accumulates, per stamping device, residency
    (egress - ingress) and egress queue-depth distributions; per
    adjacent device pair, the inter-hop ("segment") latency — including
    the final leg from the last stamp to the sink; and the end-to-end
    span each stack covers.  It also audits the telescoping invariant:
    for every packet the per-segment pieces must sum to the end-to-end
    span ({!max_inconsistency_ns} stays at zero but for integer
    rounding).

    Everything aggregates through {!Mmt_util.Stats.Summary} and renders
    through {!Mmt_util.Table} / {!Mmt_telemetry.Report}. *)

open Mmt_util

type stats = {
  digests : int;
  overflowed : int;  (** digests whose stack had dropped a hop *)
  empty : int;  (** digests with no records at all *)
}

type t

val create : ?nodes:(int * string) list -> unit -> t
(** [nodes] maps node ids to names for rendering; unnamed ids render
    as [node-<id>]. *)

val add : t -> Digest.t -> unit
val stats : t -> stats

val node_name : t -> int -> string
val hop_ids : t -> int list
(** Stamping devices seen so far, ascending id. *)

val hop_stamps : t -> int -> int
val hop_residency : t -> int -> Stats.Summary.t option
(** Nanoseconds spent inside the device, per stamp. *)

val hop_queue_depth : t -> int -> Stats.Summary.t option
(** Egress queue occupancy in bytes, per stamp. *)

val segment_ids : t -> (int * int) list
val segment_latency : t -> src:int -> dst:int -> Stats.Summary.t option
(** Nanoseconds from [src]'s egress stamp to [dst]'s ingress stamp (or
    to the sink's strip time for the final leg). *)

val e2e : t -> Stats.Summary.t
(** End-to-end covered span (first ingress to sink), nanoseconds. *)

val max_inconsistency_ns : t -> int
(** Worst per-packet |end-to-end - sum of segments| observed. *)

val hop_table : t -> Table.t
val segment_table : t -> Table.t
val render : t -> string
(** Both tables plus the end-to-end summary line. *)

val report : ?id:string -> ?title:string -> t -> Mmt_telemetry.Report.t
(** The per-hop breakdown as a standard experiment report, with a
    checked row asserting the telescoping invariant. *)
