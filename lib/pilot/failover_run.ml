open Mmt_util
open Mmt_frame

type params = {
  fragment_count : int;
  fragment_size : Units.Size.t;
  loss : float;
  fail_buffer_a_at : Units.Time.t option;
  advert_period : Units.Time.t;
  seed : int64;
}

let params ?(fragment_count = 12000) ?(fragment_size = Units.Size.bytes 4096)
    ?(loss = 0.005) ?fail_buffer_a_at ?(advert_period = Units.Time.ms 5.)
    ?(seed = 31L) () =
  { fragment_count; fragment_size; loss; fail_buffer_a_at; advert_period; seed }

type outcome = {
  delivered : int;
  recovered : int;
  lost : int;
  naks_served_by_a : int;
  naks_served_by_b : int;
  mode_changes : int;
  final_buffer : string;
  adverts_received : int;
  receiver : Mmt.Receiver.stats;
}

let source_ip = Addr.Ip.of_octets 10 8 0 1
let ingress_ip = Addr.Ip.of_octets 10 8 0 2
let buffer_a_ip = Addr.Ip.of_octets 10 8 0 3
let buffer_b_ip = Addr.Ip.of_octets 10 8 0 4
let sink_ip = Addr.Ip.of_octets 10 8 0 5

let experiment = Mmt.Experiment_id.make ~experiment:8 ~slice:0

(* A snooping buffer point: stores every passing sequenced data frame,
   serves NAKs addressed to it, advertises itself — and can fail. *)
type buffer_point = {
  host : Mmt.Buffer_host.t;
  mutable alive : bool;
  ip : Addr.Ip.t;
  rtt_hint : Units.Time.t;
}

let snoop_element point =
  {
    Mmt_innet.Element.name = "buffer-snoop";
    program =
      {
        Mmt_innet.Op.name = "buffer-snoop";
        ops =
          [
            Mmt_innet.Op.Extract "config_data";
            Mmt_innet.Op.Compare "features.sequenced";
            Mmt_innet.Op.Extract "sequence";
            Mmt_innet.Op.Emit_digest "frame-to-buffer-memory";
          ];
      };
    process =
      (fun ~now:_ packet ->
        (if point.alive then
           let frame = Mmt_sim.Packet.frame packet in
           match Mmt.Encap.locate frame with
           | Error _ -> ()
           | Ok (_encap, off) -> (
               match Mmt.Header.View.of_frame ~off frame with
               | Ok view
                 when Mmt.Header.View.kind view = Mmt.Feature.Kind.Data
                      && Mmt.Header.View.has view Mmt.Feature.Sequenced ->
                   Mmt.Buffer_host.store point.host
                     ~seq:(Mmt.Header.View.sequence view)
                     ~born:packet.Mmt_sim.Packet.born (Bytes.copy frame)
               | Ok _ | Error _ -> ()));
        Mmt_innet.Element.Forward packet);
  }

let run p =
  let engine = Mmt_sim.Engine.create () in
  let topo = Mmt_sim.Topology.create ~engine () in
  let fresh_id () = Mmt_sim.Topology.fresh_packet_id topo in
  let rng = Rng.create ~seed:p.seed in
  let loss_rng = Rng.split rng in
  let rate = Units.Rate.gbps 100. in
  let src = Mmt_sim.Topology.add_node topo ~name:"source" in
  let ingress = Mmt_sim.Topology.add_node topo ~name:"ingress" in
  let node_a = Mmt_sim.Topology.add_node topo ~name:"buffer-a" in
  let node_b = Mmt_sim.Topology.add_node topo ~name:"buffer-b" in
  let sink = Mmt_sim.Topology.add_node topo ~name:"sink" in
  let hop = Units.Time.ms 1. in
  let src_to_ing = Mmt_sim.Topology.connect topo ~src ~dst:ingress ~rate ~propagation:(Units.Time.us 10.) () in
  let ing_to_a = Mmt_sim.Topology.connect topo ~src:ingress ~dst:node_a ~rate ~propagation:hop () in
  let a_to_b = Mmt_sim.Topology.connect topo ~src:node_a ~dst:node_b ~rate ~propagation:hop () in
  let b_to_sink =
    Mmt_sim.Topology.connect topo ~src:node_b ~dst:sink ~rate ~propagation:hop
      ~loss:(Mmt_sim.Loss.bernoulli ~drop:p.loss ~corrupt:0. ~rng:loss_rng)
      ()
  in
  (* Reverse path for NAKs / control. *)
  let sink_to_b = Mmt_sim.Topology.connect topo ~src:sink ~dst:node_b ~rate ~propagation:hop () in
  let b_to_a = Mmt_sim.Topology.connect topo ~src:node_b ~dst:node_a ~rate ~propagation:hop () in
  let a_to_ing = Mmt_sim.Topology.connect topo ~src:node_a ~dst:ingress ~rate ~propagation:hop () in

  (* Buffer points. *)
  let make_buffer ~ip ~rtt_hint ~env =
    {
      host = Mmt.Buffer_host.create ~env ~capacity:(Units.Size.mib 256) ();
      alive = true;
      ip;
      rtt_hint;
    }
  in
  let router_a = Router.create () in
  let env_a = Router.env router_a ~engine ~fresh_id ~local_ip:buffer_a_ip in
  let buffer_a = make_buffer ~ip:buffer_a_ip ~rtt_hint:(Units.Time.ms 2.) ~env:env_a in
  let router_b = Router.create () in
  let env_b = Router.env router_b ~engine ~fresh_id ~local_ip:buffer_b_ip in
  let buffer_b = make_buffer ~ip:buffer_b_ip ~rtt_hint:(Units.Time.ms 4.) ~env:env_b in
  (* Buffer A resends toward the sink via B; B directly. *)
  Router.add router_a sink_ip (Mmt_sim.Link.send a_to_b);
  Router.add router_a ingress_ip (Mmt_sim.Link.send a_to_ing);
  Router.add router_b sink_ip (Mmt_sim.Link.send b_to_sink);
  Router.add router_b ingress_ip (Mmt_sim.Link.send b_to_a);

  (* Ingress: control-plane participant + planned rewriter. *)
  let router_ing = Router.create ~default:(Mmt_sim.Link.send ing_to_a) () in
  let env_ing = Router.env router_ing ~engine ~fresh_id ~local_ip:ingress_ip in
  let control =
    Mmt_innet.Control_plane.create ~env:env_ing ~period:p.advert_period ~peers:[] ()
  in
  let requirement =
    Mmt_innet.Planner.requirement ~name:"wan/discovered" ~reliability:true
      ~age_budget_us:50_000 ()
  in
  (* Initial plan needs a live map: seed it with both adverts. *)
  Mmt_innet.Resource_map.learn (Mmt_innet.Control_plane.map control)
    ~now:Units.Time.zero
    (Mmt.Buffer_host.advert buffer_a.host ~rtt_hint:buffer_a.rtt_hint);
  Mmt_innet.Resource_map.learn (Mmt_innet.Control_plane.map control)
    ~now:Units.Time.zero
    (Mmt.Buffer_host.advert buffer_b.host ~rtt_hint:buffer_b.rtt_hint);
  let initial_mode =
    match
      Mmt_innet.Planner.plan requirement ~map:(Mmt_innet.Control_plane.map control)
        ~now:Units.Time.zero
    with
    | Ok mode -> mode
    | Error reason -> invalid_arg reason
  in
  let rewriter =
    Mmt_innet.Mode_rewriter.create ~mode:initial_mode
      ~re_encap:(Mmt.Encap.Over_ipv4 { src = ingress_ip; dst = sink_ip; dscp = 0; ttl = 64 })
      ()
  in
  let mode_changes = ref 0 in
  (* On a mode change, push the new buffer's advertisement downstream so
     receivers re-aim pending NAKs even if no further data flows. *)
  let announce_new_buffer buffer_ip =
    let entry =
      Mmt_innet.Resource_map.lookup (Mmt_innet.Control_plane.map control) buffer_ip
    in
    Option.iter
      (fun (entry : Mmt_innet.Resource_map.entry) ->
        let header =
          Mmt.Header.with_kind
            (Mmt.Header.mode0 ~experiment:(Mmt.Experiment_id.make ~experiment:0 ~slice:0))
            Mmt.Feature.Kind.Buffer_advert
        in
        let frame =
          Mmt.Encap.wrap
            (Mmt.Encap.Over_ipv4
               { src = ingress_ip; dst = sink_ip; dscp = 0; ttl = 64 })
            (Bytes.cat (Mmt.Header.encode header)
               (Mmt.Control.Buffer_advert.encode entry.Mmt_innet.Resource_map.advert))
        in
        env_ing.Mmt_runtime.Env.send sink_ip (Mmt_runtime.Env.packet env_ing frame))
      entry
  in
  let rec replan_loop () =
    let now = Mmt_sim.Engine.now engine in
    let before = (Mmt_innet.Mode_rewriter.mode rewriter).Mmt.Mode.retransmit_from in
    (match
       Mmt_innet.Planner.replan_rewriter requirement ~rewriter
         ~map:(Mmt_innet.Control_plane.map control) ~now
     with
    | Ok mode ->
        if
          not
            (Option.equal Addr.Ip.equal before mode.Mmt.Mode.retransmit_from)
        then begin
          incr mode_changes;
          Option.iter announce_new_buffer mode.Mmt.Mode.retransmit_from
        end
    | Error _ -> () (* nothing live yet: keep the old mode *));
    if Units.Time.(now < Units.Time.seconds 10.) then
      ignore
        (Mmt_sim.Engine.schedule_after engine ~delay:p.advert_period (fun () ->
             replan_loop ()))
  in
  (* Advertisement providers respect buffer liveness. *)
  Mmt_innet.Control_plane.add_local control (fun () ->
      if buffer_a.alive then
        Some (Mmt.Buffer_host.advert buffer_a.host ~rtt_hint:buffer_a.rtt_hint)
      else None);
  Mmt_innet.Control_plane.add_local control (fun () ->
      if buffer_b.alive then
        Some (Mmt.Buffer_host.advert buffer_b.host ~rtt_hint:buffer_b.rtt_hint)
      else None);
  Mmt_innet.Control_plane.start control;
  replan_loop ();

  let ingress_route packet =
    let frame = Mmt_sim.Packet.frame packet in
    match Mmt.Encap.locate frame with
    | Ok (Mmt.Encap.Over_ipv4 { dst; _ }, _) when Addr.Ip.equal dst source_ip ->
        Some ignore
    | _ -> Some (Mmt_sim.Link.send ing_to_a)
  in
  let _ingress_switch =
    Mmt_innet.Switch.attach ~engine ~node:ingress ~profile:Mmt_innet.Switch.tofino2
      ~elements:[ Mmt_innet.Mode_rewriter.element rewriter ]
      ~route:ingress_route ()
  in

  (* Buffer nodes: snoop + local NAK service. *)
  let buffer_route (point : buffer_point) ~forward packet =
    let frame = Mmt_sim.Packet.frame packet in
    match Mmt.Encap.locate frame with
    | Ok (Mmt.Encap.Over_ipv4 { dst; _ }, off) -> (
        match Mmt.Header.View.of_frame ~off frame with
        | Ok view
          when Mmt.Header.View.kind view = Mmt.Feature.Kind.Nak
               && Addr.Ip.equal dst point.ip ->
            Some
              (fun packet ->
                if point.alive then Mmt.Buffer_host.on_packet point.host packet)
        | _ -> Some forward)
    | _ -> Some forward
  in
  let _switch_a =
    Mmt_innet.Switch.attach ~engine ~node:node_a ~profile:Mmt_innet.Switch.alveo_smartnic
      ~elements:[ snoop_element buffer_a ]
      ~route:(fun packet ->
        (* NAKs for B travel sink -> B directly; anything for the
           ingress goes upstream. *)
        let frame = Mmt_sim.Packet.frame packet in
        match Mmt.Encap.locate frame with
        | Ok (Mmt.Encap.Over_ipv4 { dst; _ }, _)
          when Addr.Ip.equal dst ingress_ip || Addr.Ip.equal dst source_ip ->
            Some (Mmt_sim.Link.send a_to_ing)
        | _ -> buffer_route buffer_a ~forward:(Mmt_sim.Link.send a_to_b) packet)
      ()
  in
  let _switch_b =
    Mmt_innet.Switch.attach ~engine ~node:node_b ~profile:Mmt_innet.Switch.alveo_smartnic
      ~elements:[ snoop_element buffer_b ]
      ~route:(fun packet ->
        let frame = Mmt_sim.Packet.frame packet in
        match Mmt.Encap.locate frame with
        | Ok (Mmt.Encap.Over_ipv4 { dst; _ }, _)
          when Addr.Ip.equal dst buffer_a_ip || Addr.Ip.equal dst ingress_ip
               || Addr.Ip.equal dst source_ip ->
            Some (Mmt_sim.Link.send b_to_a)
        | _ -> buffer_route buffer_b ~forward:(Mmt_sim.Link.send b_to_sink) packet)
      ()
  in

  (* Sink: receiver; NAKs toward whichever buffer the header names. *)
  let router_sink = Router.create () in
  Router.add router_sink buffer_a_ip (Mmt_sim.Link.send sink_to_b);
  Router.add router_sink buffer_b_ip (Mmt_sim.Link.send sink_to_b);
  Router.add router_sink ingress_ip (Mmt_sim.Link.send sink_to_b);
  Router.add router_sink source_ip (Mmt_sim.Link.send sink_to_b);
  let env_sink = Router.env router_sink ~engine ~fresh_id ~local_ip:sink_ip in
  let receiver =
    Mmt.Receiver.create ~env:env_sink
      {
        Mmt.Receiver.experiment;
        nak_delay = Units.Time.ms 1.;
        nak_retry_timeout = Units.Time.ms 15.;
        max_nak_retries = 10;
        expected_total = Some p.fragment_count;
      }
      ~deliver:(fun _ _ -> ())
  in
  Mmt_sim.Node.set_handler sink (Mmt.Receiver.on_packet receiver);

  (* The control plane participant also lives at the ingress node — but
     adverts are local (peers = []); the map is fed by the providers.
     Failure injection: buffer A dies — expressed as a declarative
     fault plan armed through the deterministic injector. *)
  let injector = Mmt_fault.Injector.of_topology topo in
  Mmt_fault.Injector.register_element injector "buffer-a"
    ~fail:(fun () ->
      buffer_a.alive <- false;
      (* Hard failure: its soft state must also disappear from
         the map as if adverts stopped reaching the ingress. *)
      ignore
        (Mmt_innet.Resource_map.expire
           (Mmt_innet.Control_plane.map control)
           ~now:(Mmt_sim.Engine.now engine)))
    ~restart:(fun () -> buffer_a.alive <- true);
  Option.iter
    (fun at ->
      Mmt_fault.Injector.arm injector
        (Mmt_fault.Plan.make
           [ Mmt_fault.Plan.event ~at (Mmt_fault.Plan.Fail_element "buffer-a") ]))
    p.fail_buffer_a_at;

  (* Source: mode-0 sender. *)
  let router_src = Router.create ~default:(Mmt_sim.Link.send src_to_ing) () in
  let env_src = Router.env router_src ~engine ~fresh_id ~local_ip:source_ip in
  let sender =
    Mmt.Sender.create ~env:env_src
      {
        Mmt.Sender.experiment;
        destination = sink_ip;
        encap = Mmt.Encap.Raw;
        deadline_budget = None;
        backpressure_to = None;
        pace = None;
        padding = 0;
      }
  in
  let payload = Bytes.make (Units.Size.to_bytes p.fragment_size) '\xEE' in
  let gap = Units.Rate.transmission_time (Units.Rate.scale rate 0.1) p.fragment_size in
  for i = 0 to p.fragment_count - 1 do
    ignore
      (Mmt_sim.Engine.schedule engine
         ~at:(Units.Time.scale gap (float_of_int i))
         (fun () -> Mmt.Sender.send sender (Bytes.copy payload)))
  done;
  Mmt_sim.Engine.run ~until:(Units.Time.seconds 12.) engine;
  Mmt_innet.Control_plane.stop control;
  let stats = Mmt.Receiver.stats receiver in
  let a_stats = Mmt.Buffer_host.stats buffer_a.host in
  let b_stats = Mmt.Buffer_host.stats buffer_b.host in
  {
    delivered = stats.Mmt.Receiver.delivered;
    recovered = stats.Mmt.Receiver.recovered;
    lost = stats.Mmt.Receiver.lost;
    naks_served_by_a = a_stats.Mmt.Buffer_host.frames_resent;
    naks_served_by_b = b_stats.Mmt.Buffer_host.frames_resent;
    mode_changes = !mode_changes;
    final_buffer =
      (match (Mmt_innet.Mode_rewriter.mode rewriter).Mmt.Mode.retransmit_from with
      | Some ip when Addr.Ip.equal ip buffer_a_ip -> "A"
      | Some ip when Addr.Ip.equal ip buffer_b_ip -> "B"
      | Some _ -> "other"
      | None -> "none");
    adverts_received = (Mmt_innet.Control_plane.stats control).Mmt_innet.Control_plane.adverts_received;
    receiver = stats;
  }
