(** Chaos pilot: the failover topology under a declarative fault plan.

    A five-node path (source → ingress → buffer A → buffer B → sink)
    with a checksumming, liveness-aware ingress rewriter, in-network
    checksum verification ahead of both retransmission-buffer snoops,
    a soft-state control plane, and a {!Mmt_fault.Injector} armed with
    an arbitrary {!Mmt_fault.Plan}.  Every run is checked against the
    delivery invariants ({!Mmt_fault.Invariant}): each sequenced frame
    ends in exactly one of delivered / lost / abandoned, nothing is
    delivered to the application twice, and the run terminates. *)

open Mmt_util

type defect = No_defect | Broken_restart

type params = {
  fragment_count : int;
  fragment_size : Units.Size.t;
  loss : float;  (** random drop on the buffer-b → sink link *)
  advert_period : Units.Time.t;
  run_until : Units.Time.t;
  seed : int64;  (** workload / loss RNG seed *)
  fault_seed : int64;  (** injector bit-flip RNG seed *)
  track_total : bool;
      (** give the receiver [expected_total] for tail-loss detection;
          turn off for plans that degrade frames to unsequenced, where
          the sequenced stream is legitimately shorter than the
          fragment count *)
  watchdog : int;
      (** event budget for the run (default 20M, orders of magnitude
          above any honest trial): exhausting it marks the run
          non-terminated instead of spinning on an event livelock *)
  defect : defect;
      (** [Broken_restart] plants a test-only bug — buffer A's restart
          handler replays sequence 0 into the application — so shrink
          tests have a scenario that genuinely violates *)
  plan : Mmt_fault.Plan.t;
}

val params :
  ?fragment_count:int ->
  ?fragment_size:Units.Size.t ->
  ?loss:float ->
  ?advert_period:Units.Time.t ->
  ?run_until:Units.Time.t ->
  ?seed:int64 ->
  ?fault_seed:int64 ->
  ?track_total:bool ->
  ?watchdog:int ->
  ?defect:defect ->
  ?plan:Mmt_fault.Plan.t ->
  unit ->
  params

type outcome = {
  emitted : int;  (** sequence numbers assigned by the ingress rewriter *)
  delivered : int;
  degraded_delivered : int;  (** delivered unsequenced (degraded mode) *)
  recovered : int;
  lost : int;
  unrecoverable : int;
  resurrected : int;
  duplicates : int;
  checksum_failed_rx : int;  (** receiver-side checksum discards *)
  verify_failed_innet : int;  (** in-network verify-element discards *)
  tampered : int;  (** frames the injector bit-flipped on the wire *)
  fault_drops : int;  (** frames destroyed by downed links *)
  degraded_rewrites : int;
  mode_changes : int;  (** replans that re-targeted the buffer *)
  final_buffer : string;  (** "A", "B", "none" *)
  naks_served_by_a : int;
  naks_served_by_b : int;
  goodput : Units.Rate.t;
  completion : Units.Time.t option;
  faults_applied : int;
  fault_log : (Units.Time.t * string) list;
  events : int;  (** engine events processed *)
  invariant : Mmt_fault.Invariant.outcome;
  violations : string list;  (** empty iff all invariants held *)
  receiver : Mmt.Receiver.stats;
}

val run : ?pooling:bool -> ?fusing:bool -> params -> outcome
(** Execute the plan.  [fusing] (default on) toggles the fused hop
    ({!Mmt_sim.Link.create}); either setting yields byte-identical
    outcomes.  [pooling] (default on) toggles the packet rings
    behind the topology's links; the outcome is byte-identical either
    way — the E-R1 differential test holds the scenario fixed and
    flips only this switch. *)

(** {2 Campaign wiring}

    The pilot as a {!Mmt_fault.Campaign} fuzzing target.  Campaign
    trials use smaller parameter bases than E-R1 (1500 fragments, 1 s
    cap) so thousands stay cheap; the lossy profile keeps tracked
    totals and the default loss, the degrading profile switches loss
    off, stops tracking totals and advertises every 400 µs so soft
    state can expire inside the fault horizon. *)

val campaign_trial : ?fragment_count:int -> unit -> params
(** Lossy-profile base parameters (no plan installed yet). *)

val campaign_trial_degrading : ?fragment_count:int -> unit -> params
(** Degrading-profile base parameters. *)

val emission_span : params -> Units.Time.t
(** Length of the workload's emission window under [params] — the
    quantity campaign horizons are derived from. *)

val campaign_universe : params -> Mmt_fault.Generator.universe
(** The pilot topology's resolved name universe: flap/degrade/
    partition/corruption pools on the post-sequencing path, buffer
    fail/restart subjects, and the emission-reducing names (source
    link, ingress rewriter, advert control) gated degrading-only. *)

val campaign_target :
  ?fragment_count:int -> ?defect:defect -> unit -> Mmt_fault.Campaign.target
(** The pilot target: executes each generated plan against the profile-
    matched parameter base.  [defect] plants {!Broken_restart} into
    both bases (shrink tests only). *)
