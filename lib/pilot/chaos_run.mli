(** Chaos pilot: the failover topology under a declarative fault plan.

    A five-node path (source → ingress → buffer A → buffer B → sink)
    with a checksumming, liveness-aware ingress rewriter, in-network
    checksum verification ahead of both retransmission-buffer snoops,
    a soft-state control plane, and a {!Mmt_fault.Injector} armed with
    an arbitrary {!Mmt_fault.Plan}.  Every run is checked against the
    delivery invariants ({!Mmt_fault.Invariant}): each sequenced frame
    ends in exactly one of delivered / lost / abandoned, nothing is
    delivered to the application twice, and the run terminates. *)

open Mmt_util

type params = {
  fragment_count : int;
  fragment_size : Units.Size.t;
  loss : float;  (** random drop on the buffer-b → sink link *)
  advert_period : Units.Time.t;
  run_until : Units.Time.t;
  seed : int64;  (** workload / loss RNG seed *)
  fault_seed : int64;  (** injector bit-flip RNG seed *)
  track_total : bool;
      (** give the receiver [expected_total] for tail-loss detection;
          turn off for plans that degrade frames to unsequenced, where
          the sequenced stream is legitimately shorter than the
          fragment count *)
  plan : Mmt_fault.Plan.t;
}

val params :
  ?fragment_count:int ->
  ?fragment_size:Units.Size.t ->
  ?loss:float ->
  ?advert_period:Units.Time.t ->
  ?run_until:Units.Time.t ->
  ?seed:int64 ->
  ?fault_seed:int64 ->
  ?track_total:bool ->
  ?plan:Mmt_fault.Plan.t ->
  unit ->
  params

type outcome = {
  emitted : int;  (** sequence numbers assigned by the ingress rewriter *)
  delivered : int;
  degraded_delivered : int;  (** delivered unsequenced (degraded mode) *)
  recovered : int;
  lost : int;
  unrecoverable : int;
  resurrected : int;
  duplicates : int;
  checksum_failed_rx : int;  (** receiver-side checksum discards *)
  verify_failed_innet : int;  (** in-network verify-element discards *)
  tampered : int;  (** frames the injector bit-flipped on the wire *)
  fault_drops : int;  (** frames destroyed by downed links *)
  degraded_rewrites : int;
  mode_changes : int;  (** replans that re-targeted the buffer *)
  final_buffer : string;  (** "A", "B", "none" *)
  naks_served_by_a : int;
  naks_served_by_b : int;
  goodput : Units.Rate.t;
  completion : Units.Time.t option;
  faults_applied : int;
  fault_log : (Units.Time.t * string) list;
  invariant : Mmt_fault.Invariant.outcome;
  violations : string list;  (** empty iff all invariants held *)
  receiver : Mmt.Receiver.stats;
}

val run : ?pooling:bool -> ?fusing:bool -> params -> outcome
(** Execute the plan.  [fusing] (default on) toggles the fused hop
    ({!Mmt_sim.Link.create}); either setting yields byte-identical
    outcomes.  [pooling] (default on) toggles the packet rings
    behind the topology's links; the outcome is byte-identical either
    way — the E-R1 differential test holds the scenario fixed and
    flips only this switch. *)
