open Mmt_util

type config = {
  profile : Profile.t;
  experiment : Mmt_daq.Experiment.t;
  scale : float;
  fragment_count : int;
  payload : Mmt_daq.Workload.payload;
  wan_rtt : Units.Time.t;
  wan_loss : float;
  wan_corrupt : float;
  deadline_budget : Units.Time.t option;
  age_budget_us : int;
  nak_delay : Units.Time.t;
  nak_retry_timeout : Units.Time.t;
  max_nak_retries : int;
  slices : int;
  event_timeout : Units.Time.t;
  researchers : int;
  timeliness_policy : Mmt_innet.Timeliness_checker.policy;
  backpressure : bool;
  wan_bottleneck : float;
  int_telemetry : bool;
  seed : int64;
}

let default_config =
  {
    profile = Profile.physical_100gbe;
    experiment = Mmt_daq.Experiment.find Mmt_daq.Experiment.Dune;
    scale = 1e-4;
    fragment_count = 2000;
    payload = Mmt_daq.Workload.Synthetic (Units.Size.bytes 7200);
    wan_rtt = Units.Time.ms 13.;
    wan_loss = 0.002;
    wan_corrupt = 0.0005;
    deadline_budget = None;
    age_budget_us = 20_000;
    nak_delay = Units.Time.ms 1.;
    nak_retry_timeout = Units.Time.ms 20.;
    max_nak_retries = 8;
    slices = 1;
    event_timeout = Units.Time.ms 100.;
    researchers = 0;
    timeliness_policy = Mmt_innet.Timeliness_checker.Mark;
    backpressure = false;
    wan_bottleneck = 1.0;
    int_telemetry = false;
    seed = 42L;
  }

(* INT node identities: stable ids for the stamping devices and the
   sink, matching Fig. 4's path order. *)
let int_nodes = [ (1, "dtn1"); (2, "tofino2"); (3, "dtn2") ]

type int_state = {
  collector : Mmt_int.Collector.t;
  dtn1_stamper : Mmt_int.Stamper.t;
  tofino_stamper : Mmt_int.Stamper.t;
  sink : Mmt_int.Sink.t;
}

type t = {
  config : config;
  engine : Mmt_sim.Engine.t;
  runner : Mmt_sim.Shard.t option;
  topo : Mmt_sim.Topology.t;
  sender : Mmt.Sender.t;
  workloads : Mmt_daq.Workload.t list;
  receiver : Mmt.Receiver.t;
  event_builder : Mmt_daq.Event_builder.t;
  buffer : Mmt.Buffer_host.t;
  rewriter : Mmt_innet.Mode_rewriter.t;
  age_tracker : Mmt_innet.Age_tracker.t;
  timeliness : Mmt_innet.Timeliness_checker.t;
  bp_monitor : Mmt_innet.Backpressure_monitor.t option;
  dtn1_switch : Mmt_innet.Switch.t;
  tofino_switch : Mmt_innet.Switch.t;
  wan_a : Mmt_sim.Link.t;
  wan_b : Mmt_sim.Link.t;
  researcher_receivers : Mmt.Receiver.t list;
  int_state : int_state option;
}

(* Frame inspection used by switch routing: the encapsulation's IP
   destination and the transport kind. *)
let frame_address frame =
  match Mmt.Encap.locate frame with
  | Error _ -> None
  | Ok (encap, mmt_offset) ->
      let dst =
        match encap with
        | Mmt.Encap.Over_ipv4 { dst; _ } -> Some dst
        | Mmt.Encap.Raw | Mmt.Encap.Over_ethernet _ -> None
      in
      let kind =
        match Mmt.Header.View.of_frame ~off:mmt_offset frame with
        | Ok view -> Some (Mmt.Header.View.kind view)
        | Error _ -> None
      in
      Some (dst, kind)

let receiver_config config =
  {
    Mmt.Receiver.experiment = config.experiment.Mmt_daq.Experiment.id;
    nak_delay = config.nak_delay;
    nak_retry_timeout = config.nak_retry_timeout;
    max_nak_retries = config.max_nak_retries;
    expected_total = Some (config.fragment_count * max 1 config.slices);
  }

(* Build the pilot against whatever topology it is given — a plain
   single-engine one or a sharded one.  Every component schedules on
   its own node's engine ({!Mmt_sim.Topology.node_engine}) and draws
   packet ids from its node's allocator, so the same function serves
   both the sequential path and {!Mmt_sim.Shard.build}'s two passes. *)
let construct config topo =
  let rng = Rng.create ~seed:config.seed in
  let loss_rng_a = Rng.split rng in
  let loss_rng_b = Rng.split rng in
  let workload_rng = Rng.split rng in

  (* Nodes *)
  let sensor = Mmt_sim.Topology.add_node topo ~name:"sensor" in
  let dtn1 = Mmt_sim.Topology.add_node topo ~name:"dtn1" in
  let tofino = Mmt_sim.Topology.add_node topo ~name:"tofino2" in
  let dtn2 = Mmt_sim.Topology.add_node topo ~name:"dtn2" in
  let researchers =
    List.init config.researchers (fun i ->
        Mmt_sim.Topology.add_node topo ~name:(Printf.sprintf "researcher%d" i))
  in
  let e_sensor = Mmt_sim.Topology.node_engine topo sensor in
  let e_d1 = Mmt_sim.Topology.node_engine topo dtn1 in
  let e_sw = Mmt_sim.Topology.node_engine topo tofino in
  let e_d2 = Mmt_sim.Topology.node_engine topo dtn2 in
  (* Each host hands its shard's packet ring to its router, switch and
     elements, so every retirement point recycles into the right
     domain-local arena. *)
  let node_ring node =
    Mmt_sim.Topology.ring_of_shard topo (Mmt_sim.Topology.shard_of_node topo node)
  in
  let node_pool node = Option.map Mmt_sim.Ring.pool (node_ring node) in

  (* Links.  Data direction carries the WAN impairments; the control
     (reverse) direction is clean, NAK retries cover the rest. *)
  let wan_loss rng =
    if config.wan_loss = 0. && config.wan_corrupt = 0. then Mmt_sim.Loss.perfect
    else Mmt_sim.Loss.bernoulli ~drop:config.wan_loss ~corrupt:config.wan_corrupt ~rng
  in
  let quarter = Units.Time.scale config.wan_rtt 0.25 in
  let p = config.profile in
  let s_to_d1 =
    Mmt_sim.Topology.connect topo ~src:sensor ~dst:dtn1 ~rate:p.Profile.daq_link_rate
      ~propagation:p.Profile.daq_propagation ()
  in
  let d1_to_s =
    Mmt_sim.Topology.connect topo ~src:dtn1 ~dst:sensor ~rate:p.Profile.daq_link_rate
      ~propagation:p.Profile.daq_propagation ()
  in
  let d1_to_sw =
    Mmt_sim.Topology.connect topo ~src:dtn1 ~dst:tofino ~rate:p.Profile.wan_link_rate
      ~propagation:quarter ~loss:(wan_loss loss_rng_a) ()
  in
  let sw_to_d1 =
    Mmt_sim.Topology.connect topo ~src:tofino ~dst:dtn1 ~rate:p.Profile.wan_link_rate
      ~propagation:quarter ()
  in
  let sw_to_d2 =
    (* The bottleneck multiplier narrows the second WAN hop so that
       congestion (and hence back-pressure) can be exercised. *)
    Mmt_sim.Topology.connect topo ~src:tofino ~dst:dtn2
      ~rate:(Units.Rate.scale p.Profile.wan_link_rate config.wan_bottleneck)
      ~propagation:quarter ~loss:(wan_loss loss_rng_b) ()
  in
  let d2_to_sw =
    Mmt_sim.Topology.connect topo ~src:dtn2 ~dst:tofino ~rate:p.Profile.wan_link_rate
      ~propagation:quarter ()
  in
  let researcher_links =
    List.map
      (fun node ->
        Mmt_sim.Topology.connect topo ~src:tofino ~dst:node
          ~rate:p.Profile.wan_link_rate ~propagation:(Units.Time.ms 2.) ())
      researchers
  in

  (* In-band telemetry (off by default): a collector fed by the DTN 2
     sink, with transit stampers on the two programmable devices.  The
     stampers sample the egress queue of the link they feed, the way
     switch hardware exposes queue depth as intrinsic metadata. *)
  let int_state =
    if not config.int_telemetry then None
    else
      let collector = Mmt_int.Collector.create ~nodes:int_nodes () in
      let dtn1_stamper =
        Mmt_int.Stamper.create ~node_id:1 ~mode_id:1
          ~residency:p.Profile.nic.Mmt_innet.Switch.pipeline_latency
          ~queue_depth:(fun () ->
            Units.Size.to_bytes
              (Mmt_sim.Queue_model.queued_bytes (Mmt_sim.Link.queue d1_to_sw)))
          ()
      in
      let tofino_stamper =
        Mmt_int.Stamper.create ~node_id:2 ~mode_id:1
          ~residency:p.Profile.switch.Mmt_innet.Switch.pipeline_latency
          ~queue_depth:(fun () ->
            Units.Size.to_bytes
              (Mmt_sim.Queue_model.queued_bytes (Mmt_sim.Link.queue sw_to_d2)))
          ()
      in
      let sink =
        Mmt_int.Sink.create ~node_id:3
          ~emit:(Mmt_int.Collector.add collector)
          ?pool:(node_pool dtn2) ()
      in
      Some { collector; dtn1_stamper; tofino_stamper; sink }
  in
  let int_element stamper =
    match int_state with
    | Some state -> [ Mmt_int.Stamper.element (stamper state) ]
    | None -> []
  in

  (* DTN 1: buffer host + mode-0 -> mode-1 rewriter. *)
  let router_d1 = Router.create ?ring:(node_ring dtn1) () in
  Router.add router_d1 Address.dtn2_ip (Mmt_sim.Link.send d1_to_sw);
  Router.add router_d1 Address.sensor_ip (Mmt_sim.Link.send d1_to_s);
  List.iteri
    (fun i _ -> Router.add router_d1 (Address.researcher_ip i) (Mmt_sim.Link.send d1_to_sw))
    researchers;
  let env_d1 =
    Router.env router_d1 ~engine:e_d1
      ~fresh_id:(Mmt_sim.Topology.id_source topo dtn1)
      ~local_ip:Address.dtn1_ip
  in
  let buffer =
    Mmt.Buffer_host.create ~env:env_d1 ~capacity:(Units.Size.mib 256)
      ~upstream:Address.sensor_ip ()
  in
  let wan_mode =
    Mmt.Mode.make ~name:"mode1/wan" ~reliable:Address.dtn1_ip
      ?deadline_budget:
        (Option.map (fun budget -> (budget, Address.sensor_ip)) config.deadline_budget)
      ~age_budget_us:config.age_budget_us
      ?backpressure_to:(if config.backpressure then Some Address.sensor_ip else None)
      ~int_telemetry:config.int_telemetry ()
  in
  let rewriter =
    Mmt_innet.Mode_rewriter.create ~mode:wan_mode
      ~re_encap:
        (Mmt.Encap.Over_ipv4
           { src = Address.dtn1_ip; dst = Address.dtn2_ip; dscp = 0; ttl = 64 })
      ?pool:(node_pool dtn1)
      ~on_rewrite:(fun ~seq ~born frame ->
        match seq with
        | Some seq -> Mmt.Buffer_host.store buffer ~seq ~born frame
        | None -> ())
      ()
  in
  let dtn1_route packet =
    let frame = Mmt_sim.Packet.frame packet in
    match frame_address frame with
    | Some (Some dst, Some Mmt.Feature.Kind.Nak)
      when Mmt_frame.Addr.Ip.equal dst Address.dtn1_ip ->
        Some (Mmt.Buffer_host.on_packet buffer)
    | Some (Some dst, _) when Mmt_frame.Addr.Ip.equal dst Address.sensor_ip ->
        Some (Mmt_sim.Link.send d1_to_s)
    | Some (Some _, _) -> Some (Mmt_sim.Link.send d1_to_sw)
    | Some (None, _) -> Some (Mmt_sim.Link.send d1_to_sw)
    | None -> None
  in
  let dtn1_switch =
    Mmt_innet.Switch.attach ~engine:e_d1 ~node:dtn1 ~profile:p.Profile.nic
      ?ring:(node_ring dtn1)
      ~elements:
        (Mmt_innet.Mode_rewriter.element rewriter
        :: int_element (fun state -> state.dtn1_stamper))
      ~route:dtn1_route ()
  in

  (* Tofino2: age tracking, optional duplication / back-pressure /
     in-network timeliness. *)
  let router_sw = Router.create ?ring:(node_ring tofino) () in
  Router.add router_sw Address.dtn1_ip (Mmt_sim.Link.send sw_to_d1);
  Router.add router_sw Address.dtn2_ip (Mmt_sim.Link.send sw_to_d2);
  Router.add router_sw Address.sensor_ip (Mmt_sim.Link.send sw_to_d1);
  List.iteri
    (fun i link -> Router.add router_sw (Address.researcher_ip i) (Mmt_sim.Link.send link))
    researcher_links;
  let env_sw =
    Router.env router_sw ~engine:e_sw
      ~fresh_id:(Mmt_sim.Topology.id_source topo tofino)
      ~local_ip:(Mmt_frame.Addr.Ip.of_octets 10 0 2 1)
  in
  let age_tracker = Mmt_innet.Age_tracker.create () in
  let timeliness =
    Mmt_innet.Timeliness_checker.create ~env:env_sw ~policy:config.timeliness_policy ()
  in
  let duplicator =
    if config.researchers > 0 then
      Some
        (Mmt_innet.Duplicator.create ~env:env_sw
           ~consumers:(List.init config.researchers Address.researcher_ip)
           ())
    else None
  in
  let bp_monitor =
    if config.backpressure then
      Some
        (Mmt_innet.Backpressure_monitor.create ~env:env_sw
           {
             Mmt_innet.Backpressure_monitor.high_watermark = Units.Size.mib 2;
             low_watermark = Units.Size.kib 256;
             advised_pace_mbps =
               (* Advise half of the *bottleneck* hop, so the sender
                  actually relieves the congested queue. *)
               int_of_float
                 (Units.Rate.to_bps p.Profile.wan_link_rate
                  *. config.wan_bottleneck /. 2e6);
             min_signal_gap = Units.Time.ms 1.;
           }
           ~queue_depth:(fun () ->
             Mmt_sim.Queue_model.queued_bytes (Mmt_sim.Link.queue sw_to_d2))
           ())
    else None
  in
  let tofino_elements =
    [ Mmt_innet.Age_tracker.element age_tracker ]
    @ (match bp_monitor with
      | Some monitor -> [ Mmt_innet.Backpressure_monitor.element monitor ]
      | None -> [])
    @ [ Mmt_innet.Timeliness_checker.element timeliness ]
    @ (match duplicator with
      | Some dup -> [ Mmt_innet.Duplicator.element dup ]
      | None -> [])
    @ int_element (fun state -> state.tofino_stamper)
  in
  let tofino_route packet =
    let frame = Mmt_sim.Packet.frame packet in
    match frame_address frame with
    | Some (Some dst, _) ->
        (* router_sw already holds every destination (DTNs, sensor,
           researchers); an O(1) lookup replaces the old linear scan
           over researcher links that cost O(consumers) per packet. *)
        Router.find router_sw dst
    | Some (None, _) -> Some (Mmt_sim.Link.send sw_to_d2)
    | None -> None
  in
  let tofino_switch =
    Mmt_innet.Switch.attach ~engine:e_sw ~node:tofino ~profile:p.Profile.switch
      ?ring:(node_ring tofino) ~elements:tofino_elements ~route:tofino_route ()
  in

  (* DTN 2: the receiving endpoint (mode 3 timeliness check happens in
     the receiver). *)
  let router_d2 = Router.create ?ring:(node_ring dtn2) () in
  Router.add router_d2 Address.dtn1_ip (Mmt_sim.Link.send d2_to_sw);
  Router.add router_d2 Address.sensor_ip (Mmt_sim.Link.send d2_to_sw);
  let env_d2 =
    Router.env router_d2 ~engine:e_d2
      ~fresh_id:(Mmt_sim.Topology.id_source topo dtn2)
      ~local_ip:Address.dtn2_ip
  in
  let event_builder =
    Mmt_daq.Event_builder.create
      ~slices:(List.init (max 1 config.slices) Fun.id)
      ~timeout:config.event_timeout
  in
  let receiver =
    Mmt.Receiver.create ~env:env_d2 (receiver_config config)
      ~deliver:(fun _meta payload ->
        match Mmt_daq.Fragment.decode payload with
        | Ok fragment ->
            ignore
              (Mmt_daq.Event_builder.add event_builder
                 ~now:(Mmt_sim.Engine.now e_d2) fragment)
        | Error _ -> ())
  in
  let to_receiver packet =
    ignore
      (Mmt_sim.Engine.schedule_after e_d2 ~delay:p.Profile.host_overhead
         (fun () -> Mmt.Receiver.on_packet receiver packet))
  in
  (match int_state with
  | Some state ->
      (* The smartNIC hosts the INT sink: strip the stack and digest it
         before the packet crosses into the host. *)
      ignore
        (Mmt_innet.Switch.attach ~engine:e_d2 ~node:dtn2 ~profile:p.Profile.nic
           ?ring:(node_ring dtn2)
           ~elements:[ Mmt_int.Sink.element state.sink ]
           ~route:(fun _packet -> Some to_receiver)
           ())
  | None -> Mmt_sim.Node.set_handler dtn2 to_receiver);

  (* Researchers: plain receivers on the duplicated stream. *)
  let researcher_receivers =
    List.mapi
      (fun i node ->
        (* Keep the historic drop-silently default but recycle the
           dropped packet (same unrouted accounting either way). *)
        let default =
          match node_ring node with
          | Some ring -> fun packet -> Mmt_sim.Ring.in_packet_done ring packet
          | None -> ignore
        in
        let router = Router.create ~default ?ring:(node_ring node) () in
        let env =
          Router.env router
            ~engine:(Mmt_sim.Topology.node_engine topo node)
            ~fresh_id:(Mmt_sim.Topology.id_source topo node)
            ~local_ip:(Address.researcher_ip i)
        in
        let r =
          Mmt.Receiver.create ~env
            { (receiver_config config) with Mmt.Receiver.expected_total = None }
            ~deliver:(fun _meta _payload -> ())
        in
        Mmt_sim.Node.set_handler node (Mmt.Receiver.on_packet r);
        r)
      researchers
  in

  (* Sensor: mode-0 sender fed by the DAQ workload. *)
  let router_s =
    Router.create ~default:(Mmt_sim.Link.send s_to_d1) ?ring:(node_ring sensor)
      ()
  in
  let env_s =
    Router.env router_s ~engine:e_sensor
      ~fresh_id:(Mmt_sim.Topology.id_source topo sensor)
      ~local_ip:Address.sensor_ip
  in
  let sender =
    Mmt.Sender.create ~env:env_s
      {
        Mmt.Sender.experiment = config.experiment.Mmt_daq.Experiment.id;
        destination = Address.dtn2_ip;
        encap =
          Mmt.Encap.Over_ethernet
            { src = Address.sensor_mac; dst = Address.dtn1_mac };
        deadline_budget = None;
        backpressure_to = None;
        pace = None;
        padding = 0;
      }
  in
  let sensor_ring = node_ring sensor in
  Mmt_sim.Node.set_handler sensor (fun packet ->
      (if not packet.Mmt_sim.Packet.corrupted then
         match Mmt.Encap.strip (Mmt_sim.Packet.frame packet) with
         | Error _ -> ()
         | Ok (_encap, mmt_frame) -> (
             match Mmt.Header.decode_bytes mmt_frame with
             | Error _ -> ()
             | Ok header ->
                 let payload =
                   Bytes.sub mmt_frame (Mmt.Header.size header)
                     (Bytes.length mmt_frame - Mmt.Header.size header)
                 in
                 Mmt.Sender.on_control sender header payload));
      (* The sensor consumes whatever reaches it (control + strays). *)
      match sensor_ring with
      | Some ring -> Mmt_sim.Ring.in_packet_done ring packet
      | None -> ());

  (* One workload per instrument slice, each the catalog shape; the
     event builder at DTN 2 reunites their matching trigger numbers. *)
  let workload_config slice =
    {
      Mmt_daq.Workload.experiment = config.experiment;
      scale = config.scale;
      profile = Mmt_daq.Workload.Steady;
      payload = config.payload;
      run = 1;
      slice;
    }
  in
  let interval = Mmt_daq.Workload.expected_interval (workload_config 0) in
  let until = Units.Time.scale interval (float_of_int (config.fragment_count - 1)) in
  let workloads =
    List.init (max 1 config.slices) (fun slice ->
        Mmt_daq.Workload.start ~engine:e_sensor
          ~rng:(Rng.split workload_rng)
          (workload_config slice)
          ~emit:(fun fragment ->
            Mmt.Sender.send sender (Mmt_daq.Fragment.encode fragment))
          ~until)
  in

  {
    config;
    engine = Mmt_sim.Topology.engine topo;
    runner = None;
    topo;
    sender;
    workloads;
    receiver;
    event_builder;
    buffer;
    rewriter;
    age_tracker;
    timeliness;
    bp_monitor;
    dtn1_switch;
    tofino_switch;
    wan_a = d1_to_sw;
    wan_b = sw_to_d2;
    researcher_receivers;
    int_state;
  }

let build ?(shards = 1) ?(pooling = true) ?(fusing = true) config =
  let _topo, t, runner =
    Mmt_sim.Shard.build ~shards ~pooling ~fusing (construct config)
  in
  { t with runner }

let run ?gc t =
  match t.runner with
  | Some runner -> Mmt_sim.Shard.run ?gc runner
  | None -> (
      match gc with
      | None -> Mmt_sim.Engine.run t.engine
      | Some tuning ->
          let saved = Gc.get () in
          Fun.protect
            ~finally:(fun () -> Gc.set saved)
            (fun () ->
              Mmt_sim.Shard.apply_gc tuning;
              Mmt_sim.Engine.run t.engine))

let nshards t =
  match t.runner with Some runner -> Mmt_sim.Shard.nshards runner | None -> 1

(* End-of-run clock.  [Engine.now] is unusable in sharded mode (window
   caps advance each shard's clock past its last event), so both paths
   read the last executed event's timestamp — identical values, by the
   determinism contract. *)
let finished_at t =
  match t.runner with
  | Some runner -> Mmt_sim.Shard.last_event_at runner
  | None -> Mmt_sim.Engine.last_event_at t.engine

type results = {
  emitted : int;
  sender : Mmt.Sender.stats;
  receiver : Mmt.Receiver.stats;
  goodput : Units.Rate.t;
  buffer : Mmt.Buffer_host.stats;
  rewriter : Mmt_innet.Mode_rewriter.stats;
  age : Mmt_innet.Age_tracker.stats;
  timeliness : Mmt_innet.Timeliness_checker.stats;
  dtn1_switch : Mmt_innet.Switch.stats;
  tofino_switch : Mmt_innet.Switch.stats;
  wan_a : Mmt_sim.Link.stats;
  wan_b : Mmt_sim.Link.stats;
  researcher_stats : Mmt.Receiver.stats list;
  backpressure_stats : Mmt_innet.Backpressure_monitor.stats option;
  events : Mmt_daq.Event_builder.stats;
  finished_at : Units.Time.t;
}

let results t =
  let finished_at = finished_at t in
  ignore (Mmt_daq.Event_builder.sweep t.event_builder ~now:finished_at);
  {
    emitted =
      List.fold_left
        (fun acc w ->
          acc + (Mmt_daq.Workload.stats w).Mmt_daq.Workload.fragments_emitted)
        0 t.workloads;
    sender = Mmt.Sender.stats t.sender;
    receiver = Mmt.Receiver.stats t.receiver;
    goodput = Mmt.Receiver.goodput t.receiver;
    buffer = Mmt.Buffer_host.stats t.buffer;
    rewriter = Mmt_innet.Mode_rewriter.stats t.rewriter;
    age = Mmt_innet.Age_tracker.stats t.age_tracker;
    timeliness = Mmt_innet.Timeliness_checker.stats t.timeliness;
    dtn1_switch = Mmt_innet.Switch.stats t.dtn1_switch;
    tofino_switch = Mmt_innet.Switch.stats t.tofino_switch;
    wan_a = Mmt_sim.Link.stats t.wan_a;
    wan_b = Mmt_sim.Link.stats t.wan_b;
    researcher_stats = List.map Mmt.Receiver.stats t.researcher_receivers;
    backpressure_stats = Option.map Mmt_innet.Backpressure_monitor.stats t.bp_monitor;
    events = Mmt_daq.Event_builder.stats t.event_builder;
    finished_at;
  }

let receiver (t : t) = t.receiver
let researcher_receivers (t : t) = t.researcher_receivers
let config (t : t) = t.config
let engine (t : t) = t.engine

let ring_stats (t : t) =
  List.filter_map
    (fun shard -> Option.map Mmt_sim.Ring.stats (Mmt_sim.Topology.ring_of_shard t.topo shard))
    (List.init (Mmt_sim.Topology.nshards t.topo) Fun.id)

let int_collector (t : t) =
  Option.map (fun state -> state.collector) t.int_state

let int_stamper_stats (t : t) =
  match t.int_state with
  | None -> []
  | Some state ->
      [
        ("dtn1", Mmt_int.Stamper.stats state.dtn1_stamper);
        ("tofino2", Mmt_int.Stamper.stats state.tofino_stamper);
      ]

let int_sink_stats (t : t) =
  Option.map (fun state -> Mmt_int.Sink.stats state.sink) t.int_state
