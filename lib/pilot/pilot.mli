(** The pilot study topology (Fig. 4, § 5.4).

    {v
      sensor --DAQ Ethernet--> DTN 1 --WAN--> Tofino2 --WAN--> DTN 2
      (LArTPC)   mode 0        Alveo U280      switch          Alveo U55C
                               mode 0 -> 1   age tracking     mode 3 check
                               + retx buffer  (+fan-out)
    v}

    Three modes, exactly as the paper's pilot: (1) unreliable transport
    sensor → DTN 1; (2) age-sensitive, recoverable-loss transport
    DTN 1 → DTN 2 with the retransmission buffer at DTN 1; (3) a
    timeliness check at the destination.  Mode changes are performed
    entirely by network elements.

    Optional extensions used by the figure reproductions: in-network
    duplication toward downstream researchers, and back-pressure from
    the switch to the sensor. *)

open Mmt_util

type config = {
  profile : Profile.t;
  experiment : Mmt_daq.Experiment.t;
  scale : float;  (** Table 1 rate multiplier *)
  fragment_count : int;
  payload : Mmt_daq.Workload.payload;
  wan_rtt : Units.Time.t;  (** DTN 1 <-> DTN 2 round trip *)
  wan_loss : float;  (** drop probability per WAN data packet *)
  wan_corrupt : float;
  deadline_budget : Units.Time.t option;
      (** activate Timely at DTN 1 with this budget *)
  age_budget_us : int;
  nak_delay : Units.Time.t;
  nak_retry_timeout : Units.Time.t;
  max_nak_retries : int;
  slices : int;
      (** instrument partitions streaming simultaneously (Req 8); each
          emits [fragment_count] fragments and DTN 2 reassembles
          complete events from matching trigger numbers (Req 9) *)
  event_timeout : Units.Time.t;  (** event-builder completion window *)
  researchers : int;  (** duplicated-stream consumers at the switch *)
  timeliness_policy : Mmt_innet.Timeliness_checker.policy;
  backpressure : bool;
  wan_bottleneck : float;
      (** rate multiplier for the switch -> DTN 2 hop; below 1.0 it
          creates a congestion point for back-pressure experiments *)
  int_telemetry : bool;
      (** activate in-band telemetry: DTN 1's rewriter inserts the INT
          stack, DTN 1 and the Tofino2 stamp it, and a sink on DTN 2's
          smartNIC strips it into a {!Mmt_int.Collector} *)
  seed : int64;
}

val default_config : config
(** Physical profile, DUNE workload at 1e-4 scale, 2000 fragments,
    13 ms WAN RTT, 0.2 % WAN loss, no researchers. *)

type t

val build : ?shards:int -> ?pooling:bool -> ?fusing:bool -> config -> t
(** Construct the pilot.  [shards] (default 1) asks for domain-per-core
    parallel execution: the topology is cut at its WAN links (all at or
    above {!Mmt_sim.Link.cut_threshold}) and the resulting components —
    {e sensor+DTN 1}, {e switch}, {e DTN 2}, and each researcher — are
    spread over up to [shards] engines via {!Mmt_sim.Shard.build}.
    Results are byte-identical to the sequential run.  Falls back to
    sequential when [shards < 2] or the cut yields fewer than two
    components (e.g. a sub-millisecond [wan_rtt]).  [fusing] (default
    [true]) lets uncongested intra-site hops collapse into single
    engine events ({!Mmt_sim.Link.create}); [fusing:false] is the
    [--no-fuse] differential switch — both settings produce
    byte-identical results.  [pooling] (default
    [true]) gives every shard a packet {!Mmt_sim.Ring}; [pooling:false]
    opts out — either way the results are byte-identical. *)

val run : ?gc:Mmt_sim.Shard.gc_tuning -> t -> unit
(** Drive the simulation to quiescence — on one engine, or on one
    domain per shard when [build] was given [~shards].  [gc] applies
    per-domain GC tuning for the duration of the run (restored
    afterwards on the calling domain). *)

val nshards : t -> int
(** Engines actually engaged: 1 after a sequential fallback. *)

type results = {
  emitted : int;  (** across all slices *)
  sender : Mmt.Sender.stats;
  receiver : Mmt.Receiver.stats;
  goodput : Units.Rate.t;
  buffer : Mmt.Buffer_host.stats;
  rewriter : Mmt_innet.Mode_rewriter.stats;
  age : Mmt_innet.Age_tracker.stats;
  timeliness : Mmt_innet.Timeliness_checker.stats;
  dtn1_switch : Mmt_innet.Switch.stats;
  tofino_switch : Mmt_innet.Switch.stats;
  wan_a : Mmt_sim.Link.stats;  (** DTN 1 -> switch *)
  wan_b : Mmt_sim.Link.stats;  (** switch -> DTN 2 *)
  researcher_stats : Mmt.Receiver.stats list;
  backpressure_stats : Mmt_innet.Backpressure_monitor.stats option;
  events : Mmt_daq.Event_builder.stats;
      (** physics events reassembled at DTN 2 from the slices *)
  finished_at : Units.Time.t;
}

val results : t -> results
val receiver : t -> Mmt.Receiver.t
val researcher_receivers : t -> Mmt.Receiver.t list
val config : t -> config

val engine : t -> Mmt_sim.Engine.t
(** Shard 0's engine.  Sequential builds have exactly one engine, so
    callers that schedule extra probes here should build without
    [~shards]. *)

val ring_stats : t -> Mmt_sim.Ring.stats list
(** Per-shard packet-ring statistics (recycle ratios for the bench
    report); empty when built with [~pooling:false]. *)

val int_nodes : (int * string) list
(** INT node ids used by the topology: dtn1 = 1, tofino2 = 2,
    dtn2 (sink) = 3, in path order. *)

val int_collector : t -> Mmt_int.Collector.t option
(** The digest aggregate, when [int_telemetry] was set. *)

val int_stamper_stats : t -> (string * Mmt_int.Stamper.stats) list
val int_sink_stats : t -> Mmt_int.Sink.stats option
