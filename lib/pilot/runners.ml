open Mmt_util

module Tcp_run = struct
  type params = {
    rate : Units.Rate.t;
    rtt : Units.Time.t;
    loss : float;
    transfer : Units.Size.t;
    message_size : Units.Size.t;
    offered : Units.Rate.t;  (* application's message pace *)
    config : Mmt_tcp.Connection.config;
    queue_capacity : Units.Size.t;
    seed : int64;
  }

  let params ?(rate = Units.Rate.gbps 100.) ?(rtt = Units.Time.ms 13.)
      ?(loss = 0.) ?(transfer = Units.Size.mib 64)
      ?(message_size = Units.Size.mib 1) ?offered ?config ?(seed = 11L) () =
    let bdp = Units.Rate.bytes_in rate rtt in
    let config =
      match config with
      | Some config -> config
      | None -> Mmt_tcp.Connection.tuned_config ~bdp
    in
    {
      rate;
      rtt;
      loss;
      transfer;
      message_size;
      offered = Option.value ~default:rate offered;
      config;
      queue_capacity = Units.Size.bytes (2 * Units.Size.to_bytes bdp + 1_000_000);
      seed;
    }

  type outcome = {
    fct : Units.Time.t option;
    throughput : Units.Rate.t;
    stats : Mmt_tcp.Connection.stats;
    message_latency_p50 : float;
    message_latency_p99 : float;
    message_latency_max : float;
    messages_completed : int;
  }

  let run p =
    let engine = Mmt_sim.Engine.create () in
    let topo = Mmt_sim.Topology.create ~engine () in
    let fresh_id () = Mmt_sim.Topology.fresh_packet_id topo in
    let rng = Rng.create ~seed:p.seed in
    let a = Mmt_sim.Topology.add_node topo ~name:"dtn-src" in
    let b = Mmt_sim.Topology.add_node topo ~name:"dtn-dst" in
    let half = Units.Time.scale p.rtt 0.5 in
    let forward =
      Mmt_sim.Topology.connect topo ~src:a ~dst:b ~rate:p.rate ~propagation:half
        ~loss:
          (if p.loss > 0. then Mmt_sim.Loss.bernoulli ~drop:p.loss ~corrupt:0. ~rng
           else Mmt_sim.Loss.perfect)
        ~queue:(Mmt_sim.Queue_model.droptail ~capacity:p.queue_capacity ())
        ()
    in
    let reverse =
      Mmt_sim.Topology.connect topo ~src:b ~dst:a ~rate:p.rate ~propagation:half ()
    in
    let framing = Mmt_tcp.Framing.create () in
    let sender =
      Mmt_tcp.Connection.create ~engine ~fresh_id ~config:p.config
        ~tx:(Mmt_sim.Link.send forward) ()
    in
    let receiver =
      Mmt_tcp.Connection.create ~engine ~fresh_id ~config:p.config
        ~tx:(Mmt_sim.Link.send reverse)
        ~deliver:(fun n ->
          ignore
            (Mmt_tcp.Framing.on_delivered framing ~now:(Mmt_sim.Engine.now engine) n))
        ()
    in
    Mmt_sim.Node.set_handler a (Mmt_tcp.Connection.on_packet sender);
    Mmt_sim.Node.set_handler b (Mmt_tcp.Connection.on_packet receiver);
    (* Write message-by-message at the sending application's natural
       pace (one message per message-transmission-time), recording send
       instants for HoL latency. *)
    let total = Units.Size.to_bytes p.transfer in
    let msg = max 1 (Units.Size.to_bytes p.message_size) in
    let message_count = max 1 (total / msg) in
    let gap = Units.Rate.transmission_time p.offered p.message_size in
    let send_times = Array.make message_count Units.Time.zero in
    for i = 0 to message_count - 1 do
      ignore
        (Mmt_sim.Engine.schedule engine
           ~at:(Units.Time.scale gap (float_of_int i))
           (fun () ->
             send_times.(i) <- Mmt_sim.Engine.now engine;
             Mmt_tcp.Framing.mark_message framing ~size:msg;
             Mmt_tcp.Connection.write sender msg;
             if i = message_count - 1 then Mmt_tcp.Connection.finish sender))
    done;
    Mmt_sim.Engine.run ~until:(Units.Time.seconds 600.) engine;
    let stats = Mmt_tcp.Connection.stats sender in
    let fct = stats.Mmt_tcp.Connection.completed_at in
    let sent_bytes = msg * message_count in
    let throughput =
      match fct with
      | Some t when not (Units.Time.is_zero t) ->
          Units.Rate.of_size_per_time (Units.Size.bytes sent_bytes) t
      | _ -> Units.Rate.zero
    in
    let completions = Mmt_tcp.Framing.completion_times framing in
    (* Skip the first 20% of messages: slow-start backlog is a ramp
       artifact, and the HoL observable is steady-state behaviour. *)
    let warmup = message_count / 5 in
    let latencies = Stats.Summary.create () in
    Array.iteri
      (fun i done_at ->
        if i >= warmup && i < message_count then
          Stats.Summary.add latencies
            (Units.Time.to_float_s (Units.Time.diff done_at send_times.(i))))
      completions;
    {
      fct;
      throughput;
      stats;
      message_latency_p50 =
        (if Stats.Summary.count latencies = 0 then nan
         else Stats.Summary.quantile latencies 0.5);
      message_latency_p99 =
        (if Stats.Summary.count latencies = 0 then nan
         else Stats.Summary.quantile latencies 0.99);
      message_latency_max =
        (if Stats.Summary.count latencies = 0 then nan
         else Stats.Summary.max latencies);
      messages_completed = Mmt_tcp.Framing.messages_completed framing;
    }
end

module Udp_run = struct
  type outcome = {
    sent : int;
    received : int;
    lost : int;
    goodput : Units.Rate.t;
  }

  let run ?(rate = Units.Rate.gbps 100.) ?(loss = 0.001) ?(datagrams = 10_000)
      ?(size = Units.Size.bytes 7200) ?(seed = 3L) () =
    let engine = Mmt_sim.Engine.create () in
    let topo = Mmt_sim.Topology.create ~engine () in
    let fresh_id () = Mmt_sim.Topology.fresh_packet_id topo in
    let rng = Rng.create ~seed in
    let a = Mmt_sim.Topology.add_node topo ~name:"sensor" in
    let b = Mmt_sim.Topology.add_node topo ~name:"dtn" in
    let link =
      Mmt_sim.Topology.connect topo ~src:a ~dst:b ~rate
        ~propagation:(Units.Time.us 5.)
        ~loss:
          (if loss > 0. then Mmt_sim.Loss.bernoulli ~drop:loss ~corrupt:0. ~rng
           else Mmt_sim.Loss.perfect)
        ()
    in
    let receiver =
      Mmt_tcp.Udp_transport.create_receiver
        ~deliver:(fun ~src:_ ~src_port:_ _payload -> ())
        ()
    in
    Mmt_sim.Node.set_handler b (Mmt_tcp.Udp_transport.on_packet receiver);
    let sender =
      Mmt_tcp.Udp_transport.create_sender ~engine ~fresh_id
        ~src:(Mmt_frame.Addr.Ip.of_octets 10 0 0 1)
        ~dst:(Mmt_frame.Addr.Ip.of_octets 10 0 0 2)
        ~src_port:4000 ~dst_port:4001 ~tx:(Mmt_sim.Link.send link) ()
    in
    let payload = Bytes.make (Units.Size.to_bytes size) '\x5A' in
    let gap = Units.Rate.transmission_time rate size in
    for i = 0 to datagrams - 1 do
      ignore
        (Mmt_sim.Engine.schedule engine
           ~at:(Units.Time.scale gap (float_of_int i))
           (fun () -> Mmt_tcp.Udp_transport.send sender payload))
    done;
    Mmt_sim.Engine.run engine;
    let s = Mmt_tcp.Udp_transport.sender_stats sender in
    let r = Mmt_tcp.Udp_transport.receiver_stats receiver in
    let duration = Mmt_sim.Engine.now engine in
    {
      sent = s.Mmt_tcp.Udp_transport.datagrams_sent;
      received = r.Mmt_tcp.Udp_transport.datagrams_received;
      lost =
        s.Mmt_tcp.Udp_transport.datagrams_sent
        - r.Mmt_tcp.Udp_transport.datagrams_received;
      goodput = Mmt_tcp.Udp_transport.receiver_goodput receiver ~over:duration;
    }
end

module Placement_run = struct
  type params = {
    rate : Units.Rate.t;
    rtt : Units.Time.t;
    buffer_position : float;
    loss : float;
    bursty : bool;  (* Gilbert-Elliott burst loss instead of Bernoulli *)
    buffer_capacity : Units.Size.t;
    fragment_count : int;
    fragment_size : Units.Size.t;
    nak_delay : Units.Time.t;
    age_budget_us : int;
    seed : int64;
  }

  let params ?(rate = Units.Rate.gbps 100.) ?(rtt = Units.Time.ms 13.)
      ?(buffer_position = 0.) ?(loss = 0.003) ?(bursty = false)
      ?(buffer_capacity = Units.Size.mib 512) ?(fragment_count = 3000)
      ?(fragment_size = Units.Size.bytes 7200) ?(nak_delay = Units.Time.ms 1.)
      ?(age_budget_us = 50_000) ?(seed = 17L) () =
    if buffer_position < 0. || buffer_position > 1. then
      invalid_arg "Placement_run.params: buffer_position outside [0, 1]";
    {
      rate;
      rtt;
      buffer_position;
      loss;
      bursty;
      buffer_capacity;
      fragment_count;
      fragment_size;
      nak_delay;
      age_budget_us;
      seed;
    }

  type outcome = {
    delivered : int;
    recovered : int;
    lost : int;
    fct : Units.Time.t option;
    latency_p50 : float;
    latency_p99 : float;
    latency_max : float;
    recovery_rtt : Units.Time.t;
    receiver : Mmt.Receiver.stats;
  }

  let source_ip = Mmt_frame.Addr.Ip.of_octets 10 9 0 1
  let buffer_ip = Mmt_frame.Addr.Ip.of_octets 10 9 0 2
  let sink_ip = Mmt_frame.Addr.Ip.of_octets 10 9 0 3

  let run p =
    let engine = Mmt_sim.Engine.create () in
    let topo = Mmt_sim.Topology.create ~engine () in
    let fresh_id () = Mmt_sim.Topology.fresh_packet_id topo in
    let rng = Rng.create ~seed:p.seed in
    let loss_rng = Rng.split rng in
    let src = Mmt_sim.Topology.add_node topo ~name:"source" in
    let buf = Mmt_sim.Topology.add_node topo ~name:"buffer-point" in
    let dst = Mmt_sim.Topology.add_node topo ~name:"sink" in
    let one_way = Units.Time.scale p.rtt 0.5 in
    let prop_a = Units.Time.scale one_way p.buffer_position in
    let prop_b = Units.Time.scale one_way (1. -. p.buffer_position) in
    let src_to_buf =
      Mmt_sim.Topology.connect topo ~src ~dst:buf ~rate:p.rate ~propagation:prop_a ()
    in
    let loss_model =
      if p.loss <= 0. then Mmt_sim.Loss.perfect
      else if p.bursty then
        (* Mean burst length ~5 packets at the requested average rate. *)
        Mmt_sim.Loss.gilbert_elliott
          ~p_good_to_bad:(p.loss /. 4.)
          ~p_bad_to_good:0.2 ~drop_in_bad:0.9 ~rng:loss_rng ()
      else Mmt_sim.Loss.bernoulli ~drop:p.loss ~corrupt:0. ~rng:loss_rng
    in
    let buf_to_dst =
      Mmt_sim.Topology.connect topo ~src:buf ~dst ~rate:p.rate ~propagation:prop_b
        ~loss:loss_model ()
    in
    let dst_to_buf =
      Mmt_sim.Topology.connect topo ~src:dst ~dst:buf ~rate:p.rate ~propagation:prop_b ()
    in
    let _buf_to_src =
      Mmt_sim.Topology.connect topo ~src:buf ~dst:src ~rate:p.rate ~propagation:prop_a ()
    in
    (* Buffer point: mode rewriter (sequencing, naming itself as the
       retransmission source) + the buffer host. *)
    let router_buf = Router.create () in
    Router.add router_buf sink_ip (Mmt_sim.Link.send buf_to_dst);
    let env_buf = Router.env router_buf ~engine ~fresh_id ~local_ip:buffer_ip in
    let buffer =
      Mmt.Buffer_host.create ~env:env_buf ~capacity:p.buffer_capacity ()
    in
    let mode =
      Mmt.Mode.make ~name:"placement/wan" ~reliable:buffer_ip
        ~age_budget_us:p.age_budget_us ()
    in
    let rewriter =
      Mmt_innet.Mode_rewriter.create ~mode
        ~re_encap:
          (Mmt.Encap.Over_ipv4 { src = buffer_ip; dst = sink_ip; dscp = 0; ttl = 64 })
        ~on_rewrite:(fun ~seq ~born frame ->
          match seq with
          | Some seq -> Mmt.Buffer_host.store buffer ~seq ~born frame
          | None -> ())
        ()
    in
    let route packet =
      let frame = Mmt_sim.Packet.frame packet in
      match Mmt.Encap.locate frame with
      | Error _ -> None
      | Ok (Mmt.Encap.Over_ipv4 { dst; _ }, mmt_offset) -> (
          match Mmt.Header.View.of_frame ~off:mmt_offset frame with
          | Ok view
            when Mmt.Header.View.kind view = Mmt.Feature.Kind.Nak
                 && Mmt_frame.Addr.Ip.equal dst buffer_ip ->
              Some (Mmt.Buffer_host.on_packet buffer)
          | _ -> Some (Mmt_sim.Link.send buf_to_dst))
      | Ok ((Mmt.Encap.Raw | Mmt.Encap.Over_ethernet _), _) ->
          Some (Mmt_sim.Link.send buf_to_dst)
    in
    let _switch =
      Mmt_innet.Switch.attach ~engine ~node:buf ~profile:Mmt_innet.Switch.tofino2
        ~elements:[ Mmt_innet.Mode_rewriter.element rewriter ]
        ~route ()
    in
    (* Sink: plain receiver. *)
    let router_dst = Router.create () in
    Router.add router_dst buffer_ip (Mmt_sim.Link.send dst_to_buf);
    let env_dst = Router.env router_dst ~engine ~fresh_id ~local_ip:sink_ip in
    let receiver =
      Mmt.Receiver.create ~env:env_dst
        {
          Mmt.Receiver.experiment = Mmt.Experiment_id.make ~experiment:9 ~slice:0;
          nak_delay = p.nak_delay;
          nak_retry_timeout = Units.Time.scale p.rtt 2.;
          max_nak_retries = 10;
          expected_total = Some p.fragment_count;
        }
        ~deliver:(fun _meta _payload -> ())
    in
    Mmt_sim.Node.set_handler dst (Mmt.Receiver.on_packet receiver);
    (* Source: mode-0 sender paced at 20% of line rate. *)
    let router_src = Router.create ~default:(Mmt_sim.Link.send src_to_buf) () in
    let env_src = Router.env router_src ~engine ~fresh_id ~local_ip:source_ip in
    let sender =
      Mmt.Sender.create ~env:env_src
        {
          Mmt.Sender.experiment = Mmt.Experiment_id.make ~experiment:9 ~slice:0;
          destination = sink_ip;
          encap = Mmt.Encap.Raw;
          deadline_budget = None;
          backpressure_to = None;
          pace = None;
          padding = 0;
        }
    in
    let payload = Bytes.make (Units.Size.to_bytes p.fragment_size) '\xC3' in
    let gap =
      Units.Rate.transmission_time (Units.Rate.scale p.rate 0.2) p.fragment_size
    in
    for i = 0 to p.fragment_count - 1 do
      ignore
        (Mmt_sim.Engine.schedule engine
           ~at:(Units.Time.scale gap (float_of_int i))
           (fun () -> Mmt.Sender.send sender (Bytes.copy payload)))
    done;
    Mmt_sim.Engine.run ~until:(Units.Time.seconds 600.) engine;
    let stats = Mmt.Receiver.stats receiver in
    let latencies = Mmt.Receiver.latency_summary receiver in
    {
      delivered = stats.Mmt.Receiver.delivered;
      recovered = stats.Mmt.Receiver.recovered;
      lost = stats.Mmt.Receiver.lost;
      fct = stats.Mmt.Receiver.completion;
      latency_p50 =
        (if Stats.Summary.count latencies = 0 then nan
         else Stats.Summary.quantile latencies 0.5);
      latency_p99 =
        (if Stats.Summary.count latencies = 0 then nan
         else Stats.Summary.quantile latencies 0.99);
      latency_max =
        (if Stats.Summary.count latencies = 0 then nan
         else Stats.Summary.max latencies);
      recovery_rtt =
        Units.Time.add
          (Units.Time.scale one_way (2. *. (1. -. p.buffer_position)))
          p.nak_delay;
      receiver = stats;
    }
end

module Priority_run = struct
  type params = {
    link_rate : Units.Rate.t;
    bulk_rate : Units.Rate.t;
    bulk_count : int;
    alert_count : int;
    alert_deadline : Units.Time.t;
    deadline_aware : bool;
    seed : int64;
  }

  let params ?(link_rate = Units.Rate.gbps 10.) ?(bulk_rate = Units.Rate.gbps 12.)
      ?(bulk_count = 10_000) ?(alert_count = 1_000)
      ?(alert_deadline = Units.Time.ms 12.) ?(deadline_aware = false)
      ?(seed = 5L) () =
    { link_rate; bulk_rate; bulk_count; alert_count; alert_deadline; deadline_aware; seed }

  type outcome = {
    alerts_delivered : int;
    alerts_late : int;
    bulk_delivered : int;
    alert_latency_p99 : float;
  }

  let telescope_ip = Mmt_frame.Addr.Ip.of_octets 10 7 0 1
  let archive_ip = Mmt_frame.Addr.Ip.of_octets 10 7 0 2

  let deadline_of packet =
    match Mmt.Encap.locate (Mmt_sim.Packet.frame packet) with
    | Error _ -> None
    | Ok (_encap, off) -> (
        match Mmt.Header.View.of_frame ~off (Mmt_sim.Packet.frame packet) with
        | Ok view when Mmt.Header.View.has view Mmt.Feature.Timely ->
            Some (Mmt.Header.View.deadline_ns view)
        | Ok _ | Error _ -> None)

  let run p =
    let engine = Mmt_sim.Engine.create () in
    let topo = Mmt_sim.Topology.create ~engine () in
    let fresh_id () = Mmt_sim.Topology.fresh_packet_id topo in
    let telescope = Mmt_sim.Topology.add_node topo ~name:"telescope" in
    let archive = Mmt_sim.Topology.add_node topo ~name:"archive" in
    let queue =
      if p.deadline_aware then
        Mmt_sim.Queue_model.deadline_aware ~capacity:(Units.Size.mib 64)
          ~drop_expired:false ~deadline_of ()
      else Mmt_sim.Queue_model.droptail ~capacity:(Units.Size.mib 64) ()
    in
    let wan =
      Mmt_sim.Topology.connect topo ~src:telescope ~dst:archive ~rate:p.link_rate
        ~propagation:(Units.Time.ms 5.) ~queue ()
    in
    let router = Router.create ~default:(Mmt_sim.Link.send wan) () in
    let env = Router.env router ~engine ~fresh_id ~local_ip:telescope_ip in
    let experiment = Mmt.Experiment_id.make ~experiment:5 ~slice:0 in
    let sender_config ?deadline_budget slice =
      {
        Mmt.Sender.experiment = Mmt.Experiment_id.with_slice experiment slice;
        destination = archive_ip;
        encap =
          Mmt.Encap.Over_ipv4
            { src = telescope_ip; dst = archive_ip; dscp = 0; ttl = 64 };
        deadline_budget;
        backpressure_to = None;
        pace = None;
        padding = 0;
      }
    in
    let bulk_sender = Mmt.Sender.create ~env (sender_config 0) in
    let alert_sender =
      Mmt.Sender.create ~env
        (sender_config ~deadline_budget:(p.alert_deadline, Mmt_frame.Addr.Ip.any) 1)
    in
    let receiver_config expected =
      {
        Mmt.Receiver.experiment;
        nak_delay = Units.Time.ms 1.;
        nak_retry_timeout = Units.Time.ms 20.;
        max_nak_retries = 3;
        expected_total = Some expected;
      }
    in
    let env_archive =
      Router.env (Router.create ~default:ignore ()) ~engine ~fresh_id
        ~local_ip:archive_ip
    in
    let bulk_rx =
      Mmt.Receiver.create ~env:env_archive (receiver_config p.bulk_count)
        ~deliver:(fun _ _ -> ())
    in
    let alert_rx =
      Mmt.Receiver.create ~env:env_archive (receiver_config p.alert_count)
        ~deliver:(fun _ _ -> ())
    in
    Mmt_sim.Node.set_handler archive (fun packet ->
        match Mmt.Encap.locate (Mmt_sim.Packet.frame packet) with
        | Error _ -> ()
        | Ok (_encap, off) -> (
            match Mmt.Header.View.of_frame ~off (Mmt_sim.Packet.frame packet) with
            | Ok view
              when Mmt.Experiment_id.slice (Mmt.Header.View.experiment view) = 1
              ->
                Mmt.Receiver.on_packet alert_rx packet
            | Ok _ -> Mmt.Receiver.on_packet bulk_rx packet
            | Error _ -> ()));
    let bulk_payload = Bytes.make 8192 'B' in
    let bulk_gap = Units.Rate.transmission_time p.bulk_rate (Units.Size.bytes 8192) in
    for i = 0 to p.bulk_count - 1 do
      ignore
        (Mmt_sim.Engine.schedule engine
           ~at:(Units.Time.scale bulk_gap (float_of_int i))
           (fun () -> Mmt.Sender.send bulk_sender (Bytes.copy bulk_payload)))
    done;
    let alert_payload = Bytes.make 1024 'A' in
    let alert_gap =
      Units.Rate.transmission_time (Units.Rate.mbps 200.) (Units.Size.bytes 1024)
    in
    for i = 0 to p.alert_count - 1 do
      ignore
        (Mmt_sim.Engine.schedule engine
           ~at:(Units.Time.scale alert_gap (float_of_int i))
           (fun () -> Mmt.Sender.send alert_sender (Bytes.copy alert_payload)))
    done;
    Mmt_sim.Engine.run ~until:(Units.Time.seconds 60.) engine;
    let alerts = Mmt.Receiver.stats alert_rx in
    let latencies = Mmt.Receiver.latency_summary alert_rx in
    {
      alerts_delivered = alerts.Mmt.Receiver.delivered;
      alerts_late = alerts.Mmt.Receiver.late;
      bulk_delivered = (Mmt.Receiver.stats bulk_rx).Mmt.Receiver.delivered;
      alert_latency_p99 =
        (if Stats.Summary.count latencies = 0 then nan
         else Stats.Summary.quantile latencies 0.99);
    }
end
