open Mmt_util
open Mmt_frame

type defect = No_defect | Broken_restart

type params = {
  fragment_count : int;
  fragment_size : Units.Size.t;
  loss : float;
  advert_period : Units.Time.t;
  run_until : Units.Time.t;
  seed : int64;
  fault_seed : int64;
  track_total : bool;
  watchdog : int;
  defect : defect;
  plan : Mmt_fault.Plan.t;
}

let params ?(fragment_count = 6000) ?(fragment_size = Units.Size.bytes 4096)
    ?(loss = 0.002) ?(advert_period = Units.Time.ms 5.)
    ?(run_until = Units.Time.seconds 12.) ?(seed = 47L) ?(fault_seed = 0xFA17L)
    ?(track_total = true) ?(watchdog = 20_000_000) ?(defect = No_defect)
    ?(plan = Mmt_fault.Plan.empty) () =
  {
    fragment_count;
    fragment_size;
    loss;
    advert_period;
    run_until;
    seed;
    fault_seed;
    track_total;
    watchdog;
    defect;
    plan;
  }

type outcome = {
  emitted : int;  (** sequence numbers assigned by the ingress rewriter *)
  delivered : int;
  degraded_delivered : int;  (** delivered unsequenced (degraded mode) *)
  recovered : int;
  lost : int;
  unrecoverable : int;
  resurrected : int;
  duplicates : int;
  checksum_failed_rx : int;
  verify_failed_innet : int;
  tampered : int;
  fault_drops : int;
  degraded_rewrites : int;
  mode_changes : int;
  final_buffer : string;
  naks_served_by_a : int;
  naks_served_by_b : int;
  goodput : Units.Rate.t;
  completion : Units.Time.t option;
  faults_applied : int;
  fault_log : (Units.Time.t * string) list;
  events : int;
  invariant : Mmt_fault.Invariant.outcome;
  violations : string list;
  receiver : Mmt.Receiver.stats;
}

let source_ip = Addr.Ip.of_octets 10 9 0 1
let ingress_ip = Addr.Ip.of_octets 10 9 0 2
let buffer_a_ip = Addr.Ip.of_octets 10 9 0 3
let buffer_b_ip = Addr.Ip.of_octets 10 9 0 4
let sink_ip = Addr.Ip.of_octets 10 9 0 5

let experiment = Mmt.Experiment_id.make ~experiment:9 ~slice:0

(* A restartable buffer point: fail-stop loses the host's entire
   retransmission memory — a restart builds a {e fresh}
   {!Mmt.Buffer_host}, exactly like a process that came back with an
   empty [Retx_buffer]. *)
type buffer_point = {
  mutable host : Mmt.Buffer_host.t;
  mutable alive : bool;
  ip : Addr.Ip.t;
  rtt_hint : Units.Time.t;
  env : Mmt_runtime.Env.t;
}

let snoop_element (point : buffer_point) =
  {
    Mmt_innet.Element.name = "buffer-snoop";
    program =
      {
        Mmt_innet.Op.name = "buffer-snoop";
        ops =
          [
            Mmt_innet.Op.Extract "config_data";
            Mmt_innet.Op.Compare "features.sequenced";
            Mmt_innet.Op.Extract "sequence";
            Mmt_innet.Op.Emit_digest "frame-to-buffer-memory";
          ];
      };
    process =
      (fun ~now:_ packet ->
        (if point.alive then
           let frame = Mmt_sim.Packet.frame packet in
           match Mmt.Encap.locate frame with
           | Error _ -> ()
           | Ok (_encap, off) -> (
               match Mmt.Header.View.of_frame ~off frame with
               | Ok view
                 when Mmt.Header.View.kind view = Mmt.Feature.Kind.Data
                      && Mmt.Header.View.has view Mmt.Feature.Sequenced ->
                   Mmt.Buffer_host.store point.host
                     ~seq:(Mmt.Header.View.sequence view)
                     ~born:packet.Mmt_sim.Packet.born (Bytes.copy frame)
               | Ok _ | Error _ -> ()));
        Mmt_innet.Element.Forward packet);
  }

let run ?(pooling = true) ?(fusing = true) p =
  let engine = Mmt_sim.Engine.create () in
  let trace = Mmt_sim.Trace.create ~capacity:10_000 () in
  let topo = Mmt_sim.Topology.create ~engine ~pooling ~fusing () in
  let fresh_id () = Mmt_sim.Topology.fresh_packet_id topo in
  let rng = Rng.create ~seed:p.seed in
  let loss_rng = Rng.split rng in
  let rate = Units.Rate.gbps 100. in
  let src = Mmt_sim.Topology.add_node topo ~name:"source" in
  let ingress = Mmt_sim.Topology.add_node topo ~name:"ingress" in
  let node_a = Mmt_sim.Topology.add_node topo ~name:"buffer-a" in
  let node_b = Mmt_sim.Topology.add_node topo ~name:"buffer-b" in
  let sink = Mmt_sim.Topology.add_node topo ~name:"sink" in
  let hop = Units.Time.ms 1. in
  let src_to_ing =
    Mmt_sim.Topology.connect topo ~src ~dst:ingress ~rate
      ~propagation:(Units.Time.us 10.) ()
  in
  let ing_to_a =
    Mmt_sim.Topology.connect topo ~src:ingress ~dst:node_a ~rate
      ~propagation:hop ()
  in
  let a_to_b =
    Mmt_sim.Topology.connect topo ~src:node_a ~dst:node_b ~rate
      ~propagation:hop ()
  in
  let b_to_sink =
    Mmt_sim.Topology.connect topo ~src:node_b ~dst:sink ~rate ~propagation:hop
      ~loss:(Mmt_sim.Loss.bernoulli ~drop:p.loss ~corrupt:0. ~rng:loss_rng)
      ()
  in
  (* Reverse path for NAKs / control. *)
  let sink_to_b =
    Mmt_sim.Topology.connect topo ~src:sink ~dst:node_b ~rate ~propagation:hop
      ()
  in
  let b_to_a =
    Mmt_sim.Topology.connect topo ~src:node_b ~dst:node_a ~rate
      ~propagation:hop ()
  in
  let a_to_ing =
    Mmt_sim.Topology.connect topo ~src:node_a ~dst:ingress ~rate
      ~propagation:hop ()
  in

  (* Buffer points. *)
  let make_buffer ~ip ~rtt_hint ~env =
    {
      host = Mmt.Buffer_host.create ~env ~capacity:(Units.Size.mib 256) ();
      alive = true;
      ip;
      rtt_hint;
      env;
    }
  in
  let router_a = Router.create () in
  let env_a = Router.env router_a ~engine ~fresh_id ~local_ip:buffer_a_ip in
  let buffer_a =
    make_buffer ~ip:buffer_a_ip ~rtt_hint:(Units.Time.ms 2.) ~env:env_a
  in
  let router_b = Router.create () in
  let env_b = Router.env router_b ~engine ~fresh_id ~local_ip:buffer_b_ip in
  let buffer_b =
    make_buffer ~ip:buffer_b_ip ~rtt_hint:(Units.Time.ms 4.) ~env:env_b
  in
  Router.add router_a sink_ip (Mmt_sim.Link.send a_to_b);
  Router.add router_a ingress_ip (Mmt_sim.Link.send a_to_ing);
  Router.add router_b sink_ip (Mmt_sim.Link.send b_to_sink);
  Router.add router_b ingress_ip (Mmt_sim.Link.send b_to_a);

  (* Ingress: control-plane participant + planned, liveness-aware,
     checksumming rewriter. *)
  let router_ing = Router.create ~default:(Mmt_sim.Link.send ing_to_a) () in
  let env_ing = Router.env router_ing ~engine ~fresh_id ~local_ip:ingress_ip in
  let control =
    Mmt_innet.Control_plane.create ~env:env_ing ~period:p.advert_period
      ~peers:[] ()
  in
  let map = Mmt_innet.Control_plane.map control in
  let requirement =
    Mmt_innet.Planner.requirement ~name:"wan/chaos" ~reliability:true
      ~checksummed:true ()
  in
  Mmt_innet.Resource_map.learn map ~now:Units.Time.zero
    (Mmt.Buffer_host.advert buffer_a.host ~rtt_hint:buffer_a.rtt_hint);
  Mmt_innet.Resource_map.learn map ~now:Units.Time.zero
    (Mmt.Buffer_host.advert buffer_b.host ~rtt_hint:buffer_b.rtt_hint);
  let boot_mode =
    match Mmt_innet.Planner.plan requirement ~map ~now:Units.Time.zero with
    | Ok mode -> mode
    | Error reason -> invalid_arg reason
  in
  let rewriter =
    Mmt_innet.Mode_rewriter.create ~mode:boot_mode
      ~re_encap:
        (Mmt.Encap.Over_ipv4 { src = ingress_ip; dst = sink_ip; dscp = 0; ttl = 64 })
      ~liveness:(fun ip ~now -> Mmt_innet.Resource_map.is_live map ~now ip)
      ()
  in
  let mode_changes = ref 0 in
  let announce_new_buffer buffer_ip =
    let entry = Mmt_innet.Resource_map.lookup map buffer_ip in
    Option.iter
      (fun (entry : Mmt_innet.Resource_map.entry) ->
        let header =
          Mmt.Header.with_kind
            (Mmt.Header.mode0
               ~experiment:(Mmt.Experiment_id.make ~experiment:0 ~slice:0))
            Mmt.Feature.Kind.Buffer_advert
        in
        let frame =
          Mmt.Encap.wrap
            (Mmt.Encap.Over_ipv4
               { src = ingress_ip; dst = sink_ip; dscp = 0; ttl = 64 })
            (Bytes.cat (Mmt.Header.encode header)
               (Mmt.Control.Buffer_advert.encode
                  entry.Mmt_innet.Resource_map.advert))
        in
        env_ing.Mmt_runtime.Env.send sink_ip (Mmt_runtime.Env.packet env_ing frame))
      entry
  in
  let rec replan_loop () =
    let now = Mmt_sim.Engine.now engine in
    let before =
      (Mmt_innet.Mode_rewriter.mode rewriter).Mmt.Mode.retransmit_from
    in
    (match Mmt_innet.Planner.replan_rewriter requirement ~rewriter ~map ~now with
    | Ok mode ->
        if not (Option.equal Addr.Ip.equal before mode.Mmt.Mode.retransmit_from)
        then begin
          incr mode_changes;
          Option.iter announce_new_buffer mode.Mmt.Mode.retransmit_from
        end
    | Error _ -> () (* nothing live yet: keep the old mode *));
    if Units.Time.(now < p.run_until) then
      ignore
        (Mmt_sim.Engine.schedule_after engine ~delay:p.advert_period (fun () ->
             replan_loop ()))
  in
  Mmt_innet.Control_plane.add_local control (fun () ->
      if buffer_a.alive then
        Some (Mmt.Buffer_host.advert buffer_a.host ~rtt_hint:buffer_a.rtt_hint)
      else None);
  Mmt_innet.Control_plane.add_local control (fun () ->
      if buffer_b.alive then
        Some (Mmt.Buffer_host.advert buffer_b.host ~rtt_hint:buffer_b.rtt_hint)
      else None);
  Mmt_innet.Control_plane.start control;
  replan_loop ();

  (* Ingress switch: fail-stoppable gate ahead of the rewriter. *)
  let rewriter_alive = ref true in
  let gate =
    {
      Mmt_innet.Element.name = "ingress-gate";
      program = { Mmt_innet.Op.name = "ingress-gate"; ops = [] };
      process =
        (fun ~now:_ packet ->
          if !rewriter_alive then Mmt_innet.Element.Forward packet
          else Mmt_innet.Element.Discard "ingress-gate: element failed");
    }
  in
  let ingress_route packet =
    let frame = Mmt_sim.Packet.frame packet in
    match Mmt.Encap.locate frame with
    | Ok (Mmt.Encap.Over_ipv4 { dst; _ }, _) when Addr.Ip.equal dst source_ip ->
        Some ignore
    | _ -> Some (Mmt_sim.Link.send ing_to_a)
  in
  let _ingress_switch =
    Mmt_innet.Switch.attach ~engine ~node:ingress
      ~profile:Mmt_innet.Switch.tofino2
      ~elements:[ gate; Mmt_innet.Mode_rewriter.element rewriter ]
      ~route:ingress_route ()
  in

  (* Buffer nodes: checksum verification ahead of the snoop, so frames
     corrupted upstream never enter retransmission memory. *)
  let verify_a = Mmt_innet.Checksum_verify.create ~require:true () in
  let verify_b = Mmt_innet.Checksum_verify.create ~require:true () in
  let buffer_route (point : buffer_point) ~forward packet =
    let frame = Mmt_sim.Packet.frame packet in
    match Mmt.Encap.locate frame with
    | Ok (Mmt.Encap.Over_ipv4 { dst; _ }, off) -> (
        match Mmt.Header.View.of_frame ~off frame with
        | Ok view
          when Mmt.Header.View.kind view = Mmt.Feature.Kind.Nak
               && Addr.Ip.equal dst point.ip ->
            Some
              (fun packet ->
                if point.alive then Mmt.Buffer_host.on_packet point.host packet)
        | _ -> Some forward)
    | _ -> Some forward
  in
  let _switch_a =
    Mmt_innet.Switch.attach ~engine ~node:node_a
      ~profile:Mmt_innet.Switch.alveo_smartnic
      ~elements:
        [ Mmt_innet.Checksum_verify.element verify_a; snoop_element buffer_a ]
      ~route:(fun packet ->
        let frame = Mmt_sim.Packet.frame packet in
        match Mmt.Encap.locate frame with
        | Ok (Mmt.Encap.Over_ipv4 { dst; _ }, _)
          when Addr.Ip.equal dst ingress_ip || Addr.Ip.equal dst source_ip ->
            Some (Mmt_sim.Link.send a_to_ing)
        | _ -> buffer_route buffer_a ~forward:(Mmt_sim.Link.send a_to_b) packet)
      ()
  in
  let _switch_b =
    Mmt_innet.Switch.attach ~engine ~node:node_b
      ~profile:Mmt_innet.Switch.alveo_smartnic
      ~elements:
        [ Mmt_innet.Checksum_verify.element verify_b; snoop_element buffer_b ]
      ~route:(fun packet ->
        let frame = Mmt_sim.Packet.frame packet in
        match Mmt.Encap.locate frame with
        | Ok (Mmt.Encap.Over_ipv4 { dst; _ }, _)
          when Addr.Ip.equal dst buffer_a_ip || Addr.Ip.equal dst ingress_ip
               || Addr.Ip.equal dst source_ip ->
            Some (Mmt_sim.Link.send b_to_a)
        | _ -> buffer_route buffer_b ~forward:(Mmt_sim.Link.send b_to_sink) packet)
      ()
  in

  (* Sink: receiver wrapped in the invariant ledger. *)
  let router_sink = Router.create () in
  Router.add router_sink buffer_a_ip (Mmt_sim.Link.send sink_to_b);
  Router.add router_sink buffer_b_ip (Mmt_sim.Link.send sink_to_b);
  Router.add router_sink ingress_ip (Mmt_sim.Link.send sink_to_b);
  Router.add router_sink source_ip (Mmt_sim.Link.send sink_to_b);
  let env_sink = Router.env router_sink ~engine ~fresh_id ~local_ip:sink_ip in
  let ledger = Mmt_fault.Invariant.ledger () in
  let degraded_delivered = ref 0 in
  let receiver =
    Mmt.Receiver.create ~env:env_sink
      {
        Mmt.Receiver.experiment;
        nak_delay = Units.Time.ms 1.;
        nak_retry_timeout = Units.Time.ms 15.;
        max_nak_retries = 10;
        expected_total = (if p.track_total then Some p.fragment_count else None);
      }
      ~deliver:(fun meta _payload ->
        match meta.Mmt.Receiver.header.Mmt.Header.sequence with
        | Some seq -> Mmt_fault.Invariant.delivered ledger ~seq
        | None -> incr degraded_delivered)
  in
  Mmt_sim.Node.set_handler sink (Mmt.Receiver.on_packet receiver);

  (* The fault plan. *)
  let injector =
    Mmt_fault.Injector.of_topology ~trace ~seed:p.fault_seed topo
  in
  Mmt_fault.Injector.register_element injector "buffer-a"
    ~fail:(fun () ->
      buffer_a.alive <- false;
      ignore
        (Mmt_innet.Resource_map.expire map ~now:(Mmt_sim.Engine.now engine)))
    ~restart:(fun () ->
      (* State loss: the restarted host has an empty Retx_buffer. *)
      buffer_a.host <-
        Mmt.Buffer_host.create ~env:buffer_a.env ~capacity:(Units.Size.mib 256)
          ();
      buffer_a.alive <- true;
      (* Test-only planted bug: a "restart handler" that replays a
         frame into the application.  Any plan containing this restart
         then violates the no-duplicate-delivery invariant, giving the
         shrinker a deterministic target to converge on. *)
      if p.defect = Broken_restart then
        Mmt_fault.Invariant.delivered ledger ~seq:0);
  Mmt_fault.Injector.register_element injector "buffer-b"
    ~fail:(fun () ->
      buffer_b.alive <- false;
      ignore
        (Mmt_innet.Resource_map.expire map ~now:(Mmt_sim.Engine.now engine)))
    ~restart:(fun () ->
      buffer_b.host <-
        Mmt.Buffer_host.create ~env:buffer_b.env ~capacity:(Units.Size.mib 256)
          ();
      buffer_b.alive <- true);
  Mmt_fault.Injector.register_element injector "ingress-rewriter"
    ~fail:(fun () -> rewriter_alive := false)
    ~restart:(fun () ->
      rewriter_alive := true;
      (* Boot-mode revert: a restarted element forgets control-plane
         reconfiguration; the replan loop re-points it. *)
      ignore (Mmt_innet.Mode_rewriter.set_mode rewriter boot_mode));
  Mmt_fault.Injector.register_control injector "control"
    (Mmt_innet.Control_plane.set_blackholed control);
  Mmt_fault.Injector.arm injector p.plan;

  (* Source: mode-0 sender. *)
  let router_src = Router.create ~default:(Mmt_sim.Link.send src_to_ing) () in
  let env_src = Router.env router_src ~engine ~fresh_id ~local_ip:source_ip in
  let sender =
    Mmt.Sender.create ~env:env_src
      {
        Mmt.Sender.experiment;
        destination = sink_ip;
        encap = Mmt.Encap.Raw;
        deadline_budget = None;
        backpressure_to = None;
        pace = None;
        padding = 0;
      }
  in
  let payload = Bytes.make (Units.Size.to_bytes p.fragment_size) '\xEE' in
  let gap =
    Units.Rate.transmission_time (Units.Rate.scale rate 0.1) p.fragment_size
  in
  for i = 0 to p.fragment_count - 1 do
    ignore
      (Mmt_sim.Engine.schedule engine
         ~at:(Units.Time.scale gap (float_of_int i))
         (fun () -> Mmt.Sender.send sender (Bytes.copy payload)))
  done;
  (* Watchdog-bounded run: a fault mix that provoked a zero-delay
     event livelock would spin a pure time cap forever; the budget
     turns that into a checkable "run did not terminate" violation. *)
  let terminated =
    Mmt_sim.Engine.run_bounded engine ~until:p.run_until ~budget:p.watchdog
  in
  Mmt_innet.Control_plane.stop control;

  let stats = Mmt.Receiver.stats receiver in
  let rw = Mmt_innet.Mode_rewriter.stats rewriter in
  let a_stats = Mmt.Buffer_host.stats buffer_a.host in
  let b_stats = Mmt.Buffer_host.stats buffer_b.host in
  let va = Mmt_innet.Checksum_verify.stats verify_a in
  let vb = Mmt_innet.Checksum_verify.stats verify_b in
  let link_stats =
    List.map Mmt_sim.Link.stats
      [ src_to_ing; ing_to_a; a_to_b; b_to_sink; sink_to_b; b_to_a; a_to_ing ]
  in
  let tampered =
    List.fold_left (fun acc (s : Mmt_sim.Link.stats) -> acc + s.tampered) 0
      link_stats
  in
  let fault_drops =
    List.fold_left (fun acc (s : Mmt_sim.Link.stats) -> acc + s.fault_drops) 0
      link_stats
  in
  (* Frames a dead buffer point dropped NAKs for are accounted by the
     receiver as lost/unrecoverable; here we reconcile the ledger. *)
  let invariant =
    Mmt_fault.Invariant.outcome
      ~emitted:rw.Mmt_innet.Mode_rewriter.sequenced
      ~abandoned:(stats.Mmt.Receiver.lost + stats.Mmt.Receiver.unrecoverable)
      ~resurrected:stats.Mmt.Receiver.resurrected
      ~pending:stats.Mmt.Receiver.still_missing ~terminated ledger
  in
  let violations = Mmt_fault.Invariant.check invariant in
  {
    emitted = rw.Mmt_innet.Mode_rewriter.sequenced;
    delivered = stats.Mmt.Receiver.delivered;
    degraded_delivered = !degraded_delivered;
    recovered = stats.Mmt.Receiver.recovered;
    lost = stats.Mmt.Receiver.lost;
    unrecoverable = stats.Mmt.Receiver.unrecoverable;
    resurrected = stats.Mmt.Receiver.resurrected;
    duplicates = stats.Mmt.Receiver.duplicates;
    checksum_failed_rx = stats.Mmt.Receiver.checksum_failed;
    verify_failed_innet =
      va.Mmt_innet.Checksum_verify.failed + vb.Mmt_innet.Checksum_verify.failed;
    tampered;
    fault_drops;
    degraded_rewrites = rw.Mmt_innet.Mode_rewriter.degraded;
    mode_changes = !mode_changes;
    final_buffer =
      (match
         (Mmt_innet.Mode_rewriter.mode rewriter).Mmt.Mode.retransmit_from
       with
      | Some ip when Addr.Ip.equal ip buffer_a_ip -> "A"
      | Some ip when Addr.Ip.equal ip buffer_b_ip -> "B"
      | Some _ -> "other"
      | None -> "none");
    naks_served_by_a = a_stats.Mmt.Buffer_host.frames_resent;
    naks_served_by_b = b_stats.Mmt.Buffer_host.frames_resent;
    goodput = Mmt.Receiver.goodput receiver;
    completion = stats.Mmt.Receiver.completion;
    faults_applied = Mmt_fault.Injector.applied injector;
    fault_log = Mmt_fault.Injector.log injector;
    events = Mmt_sim.Engine.processed engine;
    invariant;
    violations;
    receiver = stats;
  }

(* ------------------------------------------------------------------ *)
(* Campaign wiring: the pilot as a fuzzing target.                     *)

(* Campaign trials are deliberately smaller than the hand-written E-R1
   scenarios — a quarter of the fragments and a 1 s cap — so thousands
   of them stay cheap; the 1 s cap still dominates the worst NAK-retry
   chain (10 x 15 ms) by a wide margin. *)
let campaign_trial ?(fragment_count = 1500) () =
  params ~fragment_count ~run_until:(Units.Time.seconds 1.) ()

(* Degrading-profile base: random loss off and totals untracked (the
   sequenced stream is legitimately short when frames degrade), and a
   fast advert cadence so soft state (TTL = 4 periods) can actually
   expire inside the fault horizon — with the default 5 ms period the
   20 ms TTL outlives the whole emission span and a blackhole would be
   a no-op. *)
let campaign_trial_degrading ?(fragment_count = 1500) () =
  params ~fragment_count ~run_until:(Units.Time.seconds 1.) ~loss:0.
    ~track_total:false
    ~advert_period:(Units.Time.us 400.)
    ()

let emission_span (p : params) =
  let gap =
    Units.Rate.transmission_time
      (Units.Rate.scale (Units.Rate.gbps 100.) 0.1)
      p.fragment_size
  in
  Units.Time.scale gap (float_of_int p.fragment_count)

(* Every name below is resolved against the topology [run] builds:
   links carry the auto-assigned "src->dst" names, elements and the
   control plane the names registered with the injector.  The
   partition between the plain pools and the degrading-only pools is
   the accounting argument from the module docs: faults ahead of the
   ingress rewriter shrink the sequenced stream itself, which tracked
   totals would misread as tail loss. *)
let campaign_universe (p : params) =
  {
    Mmt_fault.Generator.horizon = Units.Time.scale (emission_span p) 0.75;
    flap_links =
      [
        "ingress->buffer-a"; "buffer-a->buffer-b"; "buffer-b->sink";
        "sink->buffer-b"; "buffer-b->buffer-a"; "buffer-a->ingress";
      ];
    degrade_links =
      [
        "ingress->buffer-a"; "buffer-a->buffer-b"; "buffer-b->sink";
        "sink->buffer-b";
      ];
    partitions =
      [
        [ "buffer-b->sink"; "sink->buffer-b" ];
        [ "buffer-a->buffer-b"; "buffer-b->buffer-a" ];
        [ "ingress->buffer-a"; "buffer-a->ingress" ];
      ];
    corrupt_links = [ "buffer-a->buffer-b"; "buffer-b->sink" ];
    restart_elements = [ "buffer-a"; "buffer-b" ];
    degrading_flaps = [ "source->ingress" ];
    degrading_degrades = [ "source->ingress" ];
    degrading_elements = [ "ingress-rewriter" ];
    controls = [ "control" ];
  }

let campaign_exec (o : outcome) =
  {
    Mmt_fault.Campaign.outcome = o.invariant;
    violations = o.violations;
    faults_applied = o.faults_applied;
    events = o.events;
  }

let campaign_target ?fragment_count ?(defect = No_defect) () =
  let lossy = { (campaign_trial ?fragment_count ()) with defect } in
  let degrading =
    { (campaign_trial_degrading ?fragment_count ()) with defect }
  in
  {
    Mmt_fault.Campaign.name =
      (match defect with
      | No_defect -> "pilot"
      | Broken_restart -> "pilot+broken-restart");
    universe = campaign_universe lossy;
    execute =
      (fun profile plan ->
        let base =
          match profile with
          | Mmt_fault.Generator.Lossy -> lossy
          | Mmt_fault.Generator.Degrading -> degrading
        in
        campaign_exec (run { base with plan }));
  }
