open Mmt_frame

type t = {
  table : (Addr.Ip.t, Mmt_sim.Packet.t -> unit) Hashtbl.t;
  default : (Mmt_sim.Packet.t -> unit) option;
  mutable unrouted : int;
}

let create ?default () = { table = Hashtbl.create 8; default; unrouted = 0 }

let add t ip sink = Hashtbl.replace t.table ip sink
let find t ip = Hashtbl.find_opt t.table ip

let send t ip packet =
  match Hashtbl.find_opt t.table ip with
  | Some sink -> sink packet
  | None -> (
      match t.default with
      | Some sink -> sink packet
      | None -> t.unrouted <- t.unrouted + 1)

let unrouted t = t.unrouted

let env t ~engine ~fresh_id ~local_ip =
  { Mmt_runtime.Env.engine; local_ip; send = send t; fresh_id }
