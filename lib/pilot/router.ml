open Mmt_frame

type t = {
  table : (Addr.Ip.t, Mmt_sim.Packet.t -> unit) Hashtbl.t;
  default : (Mmt_sim.Packet.t -> unit) option;
  ring : Mmt_sim.Ring.t option;
  mutable unrouted : int;
}

let create ?default ?ring () =
  { table = Hashtbl.create 8; default; ring; unrouted = 0 }

let add t ip sink = Hashtbl.replace t.table ip sink
let find t ip = Hashtbl.find_opt t.table ip

let send t ip packet =
  match Hashtbl.find_opt t.table ip with
  | Some sink -> sink packet
  | None -> (
      match t.default with
      | Some sink -> sink packet
      | None ->
          t.unrouted <- t.unrouted + 1;
          (* The router was the last holder of an unroutable packet. *)
          Option.iter
            (fun ring -> Mmt_sim.Ring.in_packet_done ring packet)
            t.ring)

let unrouted t = t.unrouted

let env t ~engine ~fresh_id ~local_ip =
  { Mmt_runtime.Env.engine; local_ip; send = send t; fresh_id; ring = t.ring }
