(** Per-host static routing and environment construction.

    Each host in a pilot topology owns a router: a map from destination
    IP to a sink (usually [Link.send] of the next-hop link).  The
    router also manufactures the {!Mmt_runtime.Env.t} handed to the
    protocol endpoints living on that host. *)

open Mmt_frame

type t

val create :
  ?default:(Mmt_sim.Packet.t -> unit) -> ?ring:Mmt_sim.Ring.t -> unit -> t
(** [ring] is the host's shard-local packet ring: packets with no
    route and no default sink retire into it (the router was their
    last holder), and {!env} hands it to the endpoints living on the
    host. *)

val add : t -> Addr.Ip.t -> (Mmt_sim.Packet.t -> unit) -> unit
val send : t -> Addr.Ip.t -> Mmt_sim.Packet.t -> unit

(** O(1) table lookup without the default fallback or unrouted
    accounting — the shape switch [route] callbacks need.  Replaces the
    per-packet linear scans that degraded super-linearly with fan-out
    (every data packet paid O(consumers) at the switch). *)
val find : t -> Addr.Ip.t -> (Mmt_sim.Packet.t -> unit) option
val unrouted : t -> int

val env :
  t ->
  engine:Mmt_sim.Engine.t ->
  fresh_id:(unit -> int) ->
  local_ip:Addr.Ip.t ->
  Mmt_runtime.Env.t
