open Mmt_util
open Mmt_sim

let () =
  let e = Engine.create () in
  let log = Buffer.create 16 in
  let at = Units.Time.of_int_ns 100 in
  (* seq order of scheduling: A (ordinary), B (staged, no advance), C (ordinary) *)
  ignore (Engine.schedule e ~at (fun () -> Buffer.add_string log "A"));
  ignore (Engine.schedule_staged e ~at (fun () -> Buffer.add_string log "B"));
  ignore (Engine.schedule e ~at (fun () -> Buffer.add_string log "C"));
  Engine.run e;
  Printf.printf "order=%s (expected ABC)\n" (Buffer.contents log)
