(* Benchmark harness: regenerates every table and figure of the paper
   (sections E-T1, E-F1..E-F4, E-A1/A2/A4 via Mmt_experiments.Registry)
   and then runs the E-A3 micro-benchmarks: per-packet header and
   pipeline costs, the P4-realizability proxy. *)

open Mmt_util
open Bechamel
open Toolkit

let experiment = Mmt.Experiment_id.make ~experiment:2 ~slice:1
let buffer_ip = Mmt_frame.Addr.Ip.of_octets 10 0 1 1
let notify_ip = Mmt_frame.Addr.Ip.of_octets 10 0 0 1

let full_header =
  Mmt.Header.create ~sequence:123456
    ~retransmit_from:buffer_ip
    ~timely:{ Mmt.Header.deadline = Units.Time.ms 20.; notify = notify_ip }
    ~age:
      {
        Mmt.Header.age_us = 10;
        budget_us = 20_000;
        aged = false;
        hop_count = 1;
        last_touch_ns = Units.Time.us 3.;
      }
    ~experiment ()

let encoded_full = Mmt.Header.encode full_header
let mode0_header = Mmt.Header.mode0 ~experiment
let encoded_mode0 = Mmt.Header.encode mode0_header

let age_frame = Bytes.copy encoded_full
let age_offset = Option.get (Mmt.Header.offset_of_age full_header)

let wan_mode =
  Mmt.Mode.make ~name:"bench-wan" ~reliable:buffer_ip
    ~deadline_budget:(Units.Time.ms 20., notify_ip)
    ~age_budget_us:20_000 ()

let rewriter = Mmt_innet.Mode_rewriter.create ~mode:wan_mode ()
let rewriter_element = Mmt_innet.Mode_rewriter.element rewriter

let mode0_frame = Bytes.cat encoded_mode0 (Bytes.make 1024 'p')

let fragment =
  {
    Mmt_daq.Fragment.run = 1;
    trigger = 42;
    timestamp = Units.Time.us 17.;
    experiment;
    detector =
      Mmt_daq.Fragment.Wib_ethernet
        { crate = 1; slot = 2; fiber = 3; first_channel = 0; channel_count = 64 };
    payload = Bytes.make 7200 'x';
  }

let encoded_fragment = Mmt_daq.Fragment.encode fragment

let lartpc_config =
  { Mmt_daq.Lartpc.iceberg with Mmt_daq.Lartpc.channels = 8; samples_per_channel = 64 }

let int_header =
  Mmt.Header.create ~sequence:123456 ~experiment
    ~int_stack:
      {
        Mmt.Header.records =
          List.init Mmt.Header.max_int_hops (fun i ->
              {
                Mmt.Header.node_id = i + 1;
                mode_id = 1;
                hop_index = i;
                queue_depth = 4096;
                ingress_ns = Units.Time.us 10.;
                egress_ns = Units.Time.us 12.;
              });
        overflowed = false;
      }
    ()

let encoded_int = Mmt.Header.encode int_header

let int_stamp_frame =
  Mmt.Header.encode
    (Mmt.Header.create ~experiment ~int_stack:Mmt.Header.empty_int_stack ())

let int_offset =
  Option.get
    (Mmt.Header.offset_of_int
       (Mmt.Header.create ~experiment ~int_stack:Mmt.Header.empty_int_stack ()))

let stamper = Mmt_int.Stamper.create ~node_id:2 ~mode_id:1 ()
let stamper_element = Mmt_int.Stamper.element stamper
let int_packet_frame = Bytes.cat int_stamp_frame (Bytes.make 1024 'p')

let bench_tests =
  Test.make_grouped ~name:"E-A3"
    [
      Test.make ~name:"header encode (mode 0, 8 B)" (Staged.stage (fun () ->
           ignore (Mmt.Header.encode mode0_header)));
      Test.make ~name:"header encode (full, 48 B)" (Staged.stage (fun () ->
           ignore (Mmt.Header.encode full_header)));
      Test.make ~name:"header decode (mode 0)" (Staged.stage (fun () ->
           ignore (Mmt.Header.decode_bytes encoded_mode0)));
      Test.make ~name:"header decode (full)" (Staged.stage (fun () ->
           ignore (Mmt.Header.decode_bytes encoded_full)));
      Test.make ~name:"age touch in place (ALU path)" (Staged.stage (fun () ->
           ignore
             (Mmt.Header.touch_age_in_place age_frame ~ext_off:age_offset
                ~now:(Units.Time.us 100.))));
      Test.make ~name:"mode rewrite (mode 0 -> 1, 1 KiB frame)" (Staged.stage (fun () ->
           let packet =
             Mmt_sim.Packet.create ~id:0 ~born:Units.Time.zero (Bytes.copy mode0_frame)
           in
           ignore (rewriter_element.Mmt_innet.Element.process ~now:Units.Time.zero packet)));
      Test.make ~name:"INT header encode (4-hop stack)" (Staged.stage (fun () ->
           ignore (Mmt.Header.encode int_header)));
      Test.make ~name:"INT header decode (4-hop stack)" (Staged.stage (fun () ->
           ignore (Mmt.Header.decode_bytes encoded_int)));
      Test.make ~name:"INT stamp append (in-place ALU path)" (Staged.stage (fun () ->
           (* reset the hop count so every iteration measures a real append *)
           Bytes.set int_stamp_frame int_offset '\000';
           ignore
             (Mmt.Header.push_int_record_in_place int_stamp_frame
                ~ext_off:int_offset ~node_id:2 ~mode_id:1 ~queue_depth:4096
                ~ingress:(Units.Time.us 10.) ~egress:(Units.Time.us 12.))));
      Test.make ~name:"INT stamper element (per packet, 1 KiB frame)"
        (Staged.stage (fun () ->
             Bytes.set int_packet_frame int_offset '\000';
             let packet =
               Mmt_sim.Packet.create ~id:0 ~born:Units.Time.zero int_packet_frame
             in
             ignore
               (stamper_element.Mmt_innet.Element.process ~now:(Units.Time.us 100.)
                  packet)));
      Test.make ~name:"fragment encode (7200 B payload)" (Staged.stage (fun () ->
           ignore (Mmt_daq.Fragment.encode fragment)));
      Test.make ~name:"fragment decode" (Staged.stage (fun () ->
           ignore (Mmt_daq.Fragment.decode encoded_fragment)));
      Test.make ~name:"LArTPC window synthesis (8ch x 64)"
        (let rng = Rng.create ~seed:5L in
         Staged.stage (fun () ->
             ignore
               (Mmt_daq.Lartpc.generate_window lartpc_config rng
                  ~activity:Mmt_daq.Lartpc.Cosmic)));
      Test.make ~name:"engine schedule+run event" (Staged.stage (fun () ->
           let engine = Mmt_sim.Engine.create () in
           ignore (Mmt_sim.Engine.schedule engine ~at:Units.Time.zero ignore);
           Mmt_sim.Engine.run engine));
    ]

let run_micro_benchmarks () =
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.25) ~stabilize:true ()
  in
  let raw = Benchmark.all cfg instances bench_tests in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let table =
    Table.create
      ~title:
        "E-A3 micro-benchmarks: per-packet header/pipeline costs (host CPU; a \
         Tofino pipeline does the same field ops at line rate)"
      ~columns:[ ("operation", Table.Left); ("time per op", Table.Right) ]
      ()
  in
  let rows = ref [] in
  Hashtbl.iter
    (fun name ols_result ->
      let per_run =
        match Analyze.OLS.estimates ols_result with
        | Some (value :: _) -> Printf.sprintf "%.0f ns" value
        | Some [] | None -> "n/a"
      in
      rows := (name, per_run) :: !rows)
    results;
  List.iter
    (fun (name, per_run) -> Table.add_row table [ name; per_run ])
    (List.sort compare !rows);
  Table.print table

let () =
  print_endline "=== Shape-shifting Elephants: experiment reproductions ===";
  print_newline ();
  let all_ok = Mmt_experiments.Registry.run_all () in
  print_endline "### E-A3 — micro-benchmarks";
  print_newline ();
  run_micro_benchmarks ();
  print_newline ();
  if all_ok then print_endline "ALL SHAPE CHECKS PASSED"
  else begin
    print_endline "SOME SHAPE CHECKS FAILED";
    exit 1
  end
