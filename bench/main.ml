(* Benchmark harness: regenerates every table and figure of the paper
   (sections E-T1, E-F1..E-F4, E-A1/A2/A4 via Mmt_experiments.Registry)
   and then runs the E-A3 micro-benchmarks: per-packet header and
   pipeline costs, the P4-realizability proxy.

   `--json FILE` additionally writes the per-op estimates and sweep
   wall-clocks as machine-readable JSON (the committed BENCH_pr3.json
   baseline).  `--jobs N` times the experiment sweep on N domains and
   checks the parallel reports against the sequential ones. *)

open Mmt_util
open Bechamel
open Toolkit

let experiment = Mmt.Experiment_id.make ~experiment:2 ~slice:1
let buffer_ip = Mmt_frame.Addr.Ip.of_octets 10 0 1 1
let notify_ip = Mmt_frame.Addr.Ip.of_octets 10 0 0 1

let full_header =
  Mmt.Header.create ~sequence:123456
    ~retransmit_from:buffer_ip
    ~timely:{ Mmt.Header.deadline = Units.Time.ms 20.; notify = notify_ip }
    ~age:
      {
        Mmt.Header.age_us = 10;
        budget_us = 20_000;
        aged = false;
        hop_count = 1;
        last_touch_ns = Units.Time.us 3.;
      }
    ~experiment ()

let encoded_full = Mmt.Header.encode full_header
let mode0_header = Mmt.Header.mode0 ~experiment
let encoded_mode0 = Mmt.Header.encode mode0_header

let age_frame = Bytes.copy encoded_full
let age_offset = Option.get (Mmt.Header.offset_of_age full_header)

let wan_mode =
  Mmt.Mode.make ~name:"bench-wan" ~reliable:buffer_ip
    ~deadline_budget:(Units.Time.ms 20., notify_ip)
    ~age_budget_us:20_000 ()

let rewriter = Mmt_innet.Mode_rewriter.create ~mode:wan_mode ()
let rewriter_element = Mmt_innet.Mode_rewriter.element rewriter

let mode0_frame = Bytes.cat encoded_mode0 (Bytes.make 1024 'p')

(* A frame already in the rewriter's target shape: the fast path. *)
let wan_header =
  Mmt.Header.create ~sequence:123456
    ~retransmit_from:buffer_ip
    ~timely:{ Mmt.Header.deadline = Units.Time.ms 20.; notify = notify_ip }
    ~age:
      {
        Mmt.Header.age_us = 10;
        budget_us = 20_000;
        aged = false;
        hop_count = 1;
        last_touch_ns = Units.Time.us 3.;
      }
    ~experiment ()

let wan_frame = Bytes.cat (Mmt.Header.encode wan_header) (Bytes.make 1024 'p')

let fragment =
  {
    Mmt_daq.Fragment.run = 1;
    trigger = 42;
    timestamp = Units.Time.us 17.;
    experiment;
    detector =
      Mmt_daq.Fragment.Wib_ethernet
        { crate = 1; slot = 2; fiber = 3; first_channel = 0; channel_count = 64 };
    payload = Bytes.make 7200 'x';
  }

let encoded_fragment = Mmt_daq.Fragment.encode fragment

let lartpc_config =
  { Mmt_daq.Lartpc.iceberg with Mmt_daq.Lartpc.channels = 8; samples_per_channel = 64 }

let int_header =
  Mmt.Header.create ~sequence:123456 ~experiment
    ~int_stack:
      {
        Mmt.Header.records =
          List.init Mmt.Header.max_int_hops (fun i ->
              {
                Mmt.Header.node_id = i + 1;
                mode_id = 1;
                hop_index = i;
                queue_depth = 4096;
                ingress_ns = Units.Time.us 10.;
                egress_ns = Units.Time.us 12.;
              });
        overflowed = false;
      }
    ()

let encoded_int = Mmt.Header.encode int_header
let int_strip_frame = Bytes.cat encoded_int (Bytes.make 1024 'p')

let int_stamp_frame =
  Mmt.Header.encode
    (Mmt.Header.create ~experiment ~int_stack:Mmt.Header.empty_int_stack ())

let int_offset =
  Option.get
    (Mmt.Header.offset_of_int
       (Mmt.Header.create ~experiment ~int_stack:Mmt.Header.empty_int_stack ()))

let stamper = Mmt_int.Stamper.create ~node_id:2 ~mode_id:1 ()
let stamper_element = Mmt_int.Stamper.element stamper
let int_packet_frame = Bytes.cat int_stamp_frame (Bytes.make 1024 'p')

(* E-F5 facility demux: the facility edge resolves a destination
   address to a per-flow handler on every packet.  The legacy shape — a
   per-flow association list probed with [Addr.Ip.equal] — is O(flows)
   per packet (super-linear work across the facility); the shipped
   shape decodes the flow id from the address bits and indexes a dense
   [Flow_table].  Both are measured on the worst case, the last flow. *)
let facility_flows = 1000

let facility_demux_assoc =
  List.init facility_flows (fun f -> (Mmt_facility.Address.flow_ip f, f))

let facility_last_ip = Mmt_facility.Address.flow_ip (facility_flows - 1)

let facility_table =
  Mmt_facility.Flow_table.init ~flows:facility_flows (fun f -> f)

let facility_demux_legacy = "facility edge demux, list scan (1000 flows, legacy)"
let facility_demux_current = "facility edge demux, classify + flow table"

let view_of_frame frame =
  match Mmt.Header.View.of_frame frame with
  | Ok view -> view
  | Error reason -> failwith ("bench: view failed: " ^ reason)

let bench_tests =
  Test.make_grouped ~name:"E-A3"
    [
      Test.make ~name:"header encode (mode 0, 8 B)" (Staged.stage (fun () ->
           ignore (Mmt.Header.encode mode0_header)));
      Test.make ~name:"header encode (full, 48 B)" (Staged.stage (fun () ->
           ignore (Mmt.Header.encode full_header)));
      Test.make ~name:"header decode (mode 0)" (Staged.stage (fun () ->
           ignore (Mmt.Header.decode_bytes encoded_mode0)));
      Test.make ~name:"header decode (full)" (Staged.stage (fun () ->
           ignore (Mmt.Header.decode_bytes encoded_full)));
      Test.make ~name:"header view (mode 0)" (Staged.stage (fun () ->
           ignore (Mmt.Header.View.of_frame encoded_mode0)));
      Test.make ~name:"header view (full)" (Staged.stage (fun () ->
           ignore (Mmt.Header.View.of_frame encoded_full)));
      Test.make ~name:"deadline read via decode (legacy)" (Staged.stage (fun () ->
           match Mmt.Header.decode_bytes encoded_full with
           | Ok { Mmt.Header.timely = Some { Mmt.Header.deadline; _ }; _ } ->
               ignore deadline
           | Ok _ | Error _ -> ()));
      Test.make ~name:"deadline read via view" (Staged.stage (fun () ->
           match Mmt.Header.View.of_frame encoded_full with
           | Ok view when Mmt.Header.View.has view Mmt.Feature.Timely ->
               ignore (Mmt.Header.View.deadline_ns view)
           | Ok _ | Error _ -> ()));
      Test.make ~name:"age touch in place (ALU path)" (Staged.stage (fun () ->
           ignore
             (Mmt.Header.touch_age_in_place age_frame ~ext_off:age_offset
                ~now:(Units.Time.us 100.))));
      Test.make ~name:"age touch via view" (Staged.stage (fun () ->
           let view = view_of_frame age_frame in
           ignore (Mmt.Header.View.touch_age view ~now:(Units.Time.us 100.))));
      Test.make ~name:"age touch via decode/re-encode (legacy)"
        (Staged.stage (fun () ->
             match Mmt.Header.decode_bytes age_frame with
             | Ok ({ Mmt.Header.age = Some age; _ } as header) ->
                 let header =
                   Mmt.Header.with_age header
                     {
                       age with
                       Mmt.Header.age_us = age.Mmt.Header.age_us + 97;
                       last_touch_ns = Units.Time.us 100.;
                       hop_count = age.Mmt.Header.hop_count + 1;
                     }
                 in
                 ignore (Mmt.Header.encode header)
             | Ok _ | Error _ -> ()));
      Test.make ~name:"mode rewrite slow path (mode 0 -> 1, 1 KiB frame)"
        (Staged.stage (fun () ->
             let packet =
               Mmt_sim.Packet.create ~id:0 ~born:Units.Time.zero
                 (Bytes.copy mode0_frame)
             in
             ignore
               (rewriter_element.Mmt_innet.Element.process ~now:Units.Time.zero
                  packet)));
      Test.make ~name:"mode rewrite fast path (already in mode, 1 KiB frame)"
        (Staged.stage (fun () ->
             let packet =
               Mmt_sim.Packet.create ~id:0 ~born:Units.Time.zero wan_frame
             in
             ignore
               (rewriter_element.Mmt_innet.Element.process ~now:Units.Time.zero
                  packet)));
      Test.make ~name:"INT header encode (4-hop stack)" (Staged.stage (fun () ->
           ignore (Mmt.Header.encode int_header)));
      Test.make ~name:"INT header decode (4-hop stack)" (Staged.stage (fun () ->
           ignore (Mmt.Header.decode_bytes encoded_int)));
      Test.make ~name:"INT strip via decode/re-encode (legacy)"
        (Staged.stage (fun () ->
             match Mmt.Header.decode_bytes int_strip_frame with
             | Ok header ->
                 let stripped =
                   Mmt.Header.strip header Mmt.Feature.Int_telemetry
                 in
                 let payload_offset = Mmt.Header.size header in
                 let payload =
                   Bytes.sub int_strip_frame payload_offset
                     (Bytes.length int_strip_frame - payload_offset)
                 in
                 ignore (Bytes.cat (Mmt.Header.encode stripped) payload)
             | Error _ -> ()));
      Test.make ~name:"INT strip via view" (Staged.stage (fun () ->
           let view = view_of_frame int_strip_frame in
           ignore (Mmt.Header.View.strip_int view)));
      Test.make ~name:"INT stamp append (in-place ALU path)" (Staged.stage (fun () ->
           (* reset the hop count so every iteration measures a real append *)
           Bytes.set int_stamp_frame int_offset '\000';
           ignore
             (Mmt.Header.push_int_record_in_place int_stamp_frame
                ~ext_off:int_offset ~node_id:2 ~mode_id:1 ~queue_depth:4096
                ~ingress:(Units.Time.us 10.) ~egress:(Units.Time.us 12.))));
      Test.make ~name:"INT stamp via decode + offset (legacy)"
        (Staged.stage (fun () ->
             Bytes.set int_stamp_frame int_offset '\000';
             match Mmt.Header.decode_bytes int_stamp_frame with
             | Ok header -> (
                 match Mmt.Header.offset_of_int header with
                 | Some off ->
                     ignore
                       (Mmt.Header.push_int_record_in_place int_stamp_frame
                          ~ext_off:off ~node_id:2 ~mode_id:1 ~queue_depth:4096
                          ~ingress:(Units.Time.us 10.)
                          ~egress:(Units.Time.us 12.))
                 | None -> ())
             | Error _ -> ()));
      Test.make ~name:"INT stamp via view" (Staged.stage (fun () ->
           Bytes.set int_stamp_frame int_offset '\000';
           let view = view_of_frame int_stamp_frame in
           ignore
             (Mmt.Header.View.push_int_record view ~node_id:2 ~mode_id:1
                ~queue_depth:4096 ~ingress:(Units.Time.us 10.)
                ~egress:(Units.Time.us 12.))));
      Test.make ~name:"INT stamper element (per packet, 1 KiB frame)"
        (Staged.stage (fun () ->
             Bytes.set int_packet_frame int_offset '\000';
             let packet =
               Mmt_sim.Packet.create ~id:0 ~born:Units.Time.zero int_packet_frame
             in
             ignore
               (stamper_element.Mmt_innet.Element.process ~now:(Units.Time.us 100.)
                  packet)));
      Test.make ~name:"fragment encode (7200 B payload)" (Staged.stage (fun () ->
           ignore (Mmt_daq.Fragment.encode fragment)));
      Test.make ~name:"fragment decode" (Staged.stage (fun () ->
           ignore (Mmt_daq.Fragment.decode encoded_fragment)));
      Test.make ~name:"LArTPC window synthesis (8ch x 64)"
        (let rng = Rng.create ~seed:5L in
         Staged.stage (fun () ->
             ignore
               (Mmt_daq.Lartpc.generate_window lartpc_config rng
                  ~activity:Mmt_daq.Lartpc.Cosmic)));
      Test.make ~name:"engine schedule+run event"
        (let engine = Mmt_sim.Engine.create () in
         Staged.stage (fun () ->
             ignore
               (Mmt_sim.Engine.schedule engine
                  ~at:(Mmt_sim.Engine.now engine)
                  ignore);
             ignore (Mmt_sim.Engine.step engine)));
      Test.make ~name:"engine create+schedule+run (cold)"
        (Staged.stage (fun () ->
             let engine = Mmt_sim.Engine.create () in
             ignore (Mmt_sim.Engine.schedule engine ~at:Units.Time.zero ignore);
             Mmt_sim.Engine.run engine));
      Test.make ~name:facility_demux_legacy (Staged.stage (fun () ->
           ignore
             (List.find_opt
                (fun (ip, _) -> Mmt_frame.Addr.Ip.equal ip facility_last_ip)
                facility_demux_assoc)));
      Test.make ~name:facility_demux_current (Staged.stage (fun () ->
           match Mmt_facility.Address.classify facility_last_ip with
           | Mmt_facility.Address.Flow f ->
               ignore (Mmt_facility.Flow_table.get facility_table f)
           | _ -> ()));
    ]

(* E-F5 per-packet cost: one small facility point, wall clock divided
   by engine events.  Measured outside bechamel — a whole scenario per
   iteration would blow the quota. *)
let facility_per_event () =
  let config =
    {
      Mmt_facility.Scenario.default with
      Mmt_facility.Scenario.flows = 100;
      duration = Units.Time.ms 1.;
    }
  in
  (* Warm once so allocator/page-cache effects land outside the timing. *)
  ignore (Mmt_facility.Scenario.run config);
  let started = Unix.gettimeofday () in
  let result = Mmt_facility.Scenario.run config in
  let wall = Unix.gettimeofday () -. started in
  let events = result.Mmt_facility.Scenario.events in
  let ns = wall *. 1e9 /. float_of_int events in
  Printf.printf "facility per-event cost: %.0f ns over %d events (100 flows)\n"
    ns events;
  ("facility scenario per-event (100 flows, 1 ms)", ns)

let print_demux_note micro =
  (* bechamel prefixes every test with its group name *)
  match
    (List.assoc_opt ("E-A3/" ^ facility_demux_legacy) micro,
     List.assoc_opt ("E-A3/" ^ facility_demux_current) micro)
  with
  | Some old_ns, Some new_ns when new_ns > 0. ->
      Printf.printf
        "facility demux before/after: list scan %.0f ns -> classify + \
         flow table %.0f ns per packet at %d flows (%.0fx)\n"
        old_ns new_ns facility_flows (old_ns /. new_ns)
  | _ -> ()

(* E-F5 sharded vs sequential: the largest sweep point, run whole on
   one engine and cut at its WAN-class links onto 4 domains.  The
   results must match field for field; the gate holds the sharded
   wall-clock to the sequential one (near-linear scaling needs real
   cores — this machine may have one — but the barrier overhead must
   never make sharding a pessimization). *)
let run_sharded_facility () =
  let flows = 1000 in
  let shards = 4 in
  let config =
    {
      Mmt_facility.Scenario.default with
      Mmt_facility.Scenario.flows;
      duration = Units.Time.ms 3.;
    }
  in
  let time f =
    let started = Unix.gettimeofday () in
    let result = f () in
    (result, Unix.gettimeofday () -. started)
  in
  let seq, seq_wall = time (fun () -> Mmt_facility.Scenario.run config) in
  let sh, sh_wall =
    time (fun () -> Mmt_facility.Scenario.run ~shards config)
  in
  let identical =
    seq.Mmt_facility.Scenario.summary = sh.Mmt_facility.Scenario.summary
    && seq.Mmt_facility.Scenario.samples = sh.Mmt_facility.Scenario.samples
    && seq.Mmt_facility.Scenario.sim_time = sh.Mmt_facility.Scenario.sim_time
    && seq.Mmt_facility.Scenario.events = sh.Mmt_facility.Scenario.events
  in
  let cores = Domain.recommended_domain_count () in
  Printf.printf
    "sharded E-F5 (%d flows): sequential %.2f s, %d shards %.2f s (%.2fx), \
     %d core(s), results %s\n"
    flows seq_wall shards sh_wall (seq_wall /. sh_wall) cores
    (if identical then "identical" else "DIFFER");
  (flows, shards, cores, seq_wall, sh_wall, identical)

(* Allocation audit for the sharded runner: a barrier crossing must
   not allocate.  Two idle components trade 10k windows with almost no
   events, so per-window allocation on this domain is the barrier
   machinery's own (the one-off Domain.spawn cost amortizes away). *)
let check_barrier_allocation () =
  let windows = 10_000 in
  let build topo =
    let a = Mmt_sim.Topology.add_node topo ~name:"a" in
    let b = Mmt_sim.Topology.add_node topo ~name:"b" in
    ignore
      (Mmt_sim.Topology.connect topo ~src:a ~dst:b
         ~rate:(Units.Rate.gbps 10.) ~propagation:(Units.Time.ms 2.) ());
    ignore
      (Mmt_sim.Topology.connect topo ~src:b ~dst:a
         ~rate:(Units.Rate.gbps 10.) ~propagation:(Units.Time.ms 2.) ());
    (* One no-op event per 5 ms on each shard: every window moves the
       clock, none moves a packet. *)
    let ea = Mmt_sim.Topology.node_engine topo a in
    let eb = Mmt_sim.Topology.node_engine topo b in
    for i = 0 to windows - 1 do
      let at = Units.Time.of_int_ns (i * 5_000_000) in
      ignore (Mmt_sim.Engine.schedule ea ~at ignore);
      ignore (Mmt_sim.Engine.schedule eb ~at ignore)
    done
  in
  let make () =
    match Mmt_sim.Shard.build ~shards:2 build with
    | _, (), Some runner -> runner
    | _, (), None -> failwith "bench: barrier audit fell back to sequential"
  in
  Mmt_sim.Shard.run (make ()) (* warm: domain and allocator startup *);
  let runner = make () in
  (* Counters read around the run only — construction may allocate,
     the window loop may not (Domain.spawn's one-off cost amortizes
     over the 10k windows). *)
  let before = Gc.minor_words () in
  Mmt_sim.Shard.run runner;
  let after = Gc.minor_words () in
  let words_per_window = (after -. before) /. float_of_int windows in
  Printf.printf "barrier crossing allocation: %.3f minor words/window %s\n"
    words_per_window
    (if words_per_window < 0.5 then "(allocation-free)" else "(ALLOCATES)");
  words_per_window

(* Forward-path cost: the ring-buffer packet path end to end.  A
   steady-state send -> link -> deliver loop over ring-slot packets:
   each iteration acquires a slot (recycled frame), pushes it down a
   pooled link, and the delivery retires it back into the ring.  The
   per-packet wall-clock must stay within 2x the raw engine event cost
   and the loop must not touch the minor heap. *)
let forward_path_measure ~fusing =
  let engine = Mmt_sim.Engine.create () in
  let ring = Mmt_sim.Ring.create () in
  let pool = Mmt_sim.Ring.pool ring in
  let delivered = ref 0 in
  let link =
    Mmt_sim.Link.create ~engine ~name:"fwd" ~rate:(Units.Rate.gbps 100.)
      ~propagation:(Units.Time.us 1.) ~pool ~ring ~fusing
      ~deliver:(fun p ->
        incr delivered;
        Mmt_sim.Ring.in_packet_done ring p)
      ()
  in
  let forward i =
    let p =
      Mmt_sim.Ring.in_packet ring ~id:i ~born:(Mmt_sim.Engine.now engine) 1024
    in
    Mmt_sim.Link.send link p;
    Mmt_sim.Engine.run engine
  in
  (* Warm: ring arena, pool fill, engine heap growth. *)
  for i = 0 to 9_999 do
    forward i
  done;
  (* Best-of-reps: the micro side of the forward/event ratio comes
     from bechamel's statistically robust estimate, so the forward
     side must not be a single timing window that a descheduling blip
     can inflate past the gate's ceiling.  The allocation audit spans
     every rep — it must be exactly zero regardless. *)
  let reps = 5 and n = 40_000 in
  let before_words = Gc.minor_words () in
  let best = ref infinity in
  for _rep = 1 to reps do
    let started = Unix.gettimeofday () in
    for i = 0 to n - 1 do
      forward i
    done;
    let wall = Unix.gettimeofday () -. started in
    let ns = wall *. 1e9 /. float_of_int n in
    if ns < !best then best := ns
  done;
  let after_words = Gc.minor_words () in
  let ns = !best in
  let words = (after_words -. before_words) /. float_of_int (reps * n) in
  let rstats = Mmt_sim.Ring.stats ring in
  let pstats = Mmt_sim.Pool.stats pool in
  let recycle_ratio =
    if pstats.Mmt_sim.Pool.acquired = 0 then 0.
    else
      float_of_int pstats.Mmt_sim.Pool.recycled
      /. float_of_int pstats.Mmt_sim.Pool.acquired
  in
  (ns, words, rstats, recycle_ratio, !delivered, Mmt_sim.Link.stats link)

let check_forward_path () =
  let f_ns, f_words, f_ring, f_recycle, f_delivered, f_stats =
    forward_path_measure ~fusing:true
  in
  let u_ns, u_words, _, _, u_delivered, u_stats =
    forward_path_measure ~fusing:false
  in
  (* The CLI-level byte-identity of fused vs unfused runs is covered by
     the test suite; here the two loops just ran the same traffic, so
     their ledgers must agree exactly. *)
  let identical = f_delivered = u_delivered && f_stats = u_stats in
  Printf.printf
    "forward path fused (ring slot -> link -> deliver -> retire): %.0f ns, \
     %.3f minor words/packet %s\n"
    f_ns f_words
    (if f_words < 0.5 then "(allocation-free)" else "(ALLOCATES)");
  Printf.printf
    "forward path unfused: %.0f ns, %.3f minor words/packet %s; ledgers %s\n"
    u_ns u_words
    (if u_words < 0.5 then "(allocation-free)" else "(ALLOCATES)")
    (if identical then "identical" else "DIFFER");
  Printf.printf
    "forward-path ring: %d slots, %d acquires, %d retired, %d overflow; pool \
     recycle ratio %.3f\n"
    f_ring.Mmt_sim.Ring.capacity f_ring.Mmt_sim.Ring.acquired
    f_ring.Mmt_sim.Ring.retired f_ring.Mmt_sim.Ring.overflow f_recycle;
  (f_ns, f_words, f_ring, f_recycle, u_ns, u_words, identical)

(* Where the per-hop nanoseconds go: each component of the forward path
   measured in isolation with the same timed-loop method.  The residual
   against the fused total is the link bookkeeping proper (stats,
   transmit chain, flight queue, dispatch). *)
let check_forward_breakdown ~forward_ns () =
  let n = 200_000 in
  let time f =
    let started = Unix.gettimeofday () in
    f n;
    (Unix.gettimeofday () -. started) *. 1e9 /. float_of_int n
  in
  let engine = Mmt_sim.Engine.create () in
  let heap_loop k =
    for i = 0 to k - 1 do
      ignore
        (Mmt_sim.Engine.schedule engine ~at:(Units.Time.of_int_ns i) ignore);
      Mmt_sim.Engine.run engine
    done
  in
  heap_loop 10_000 (* warm *);
  let heap_ns = time heap_loop in
  let ring = Mmt_sim.Ring.create () in
  let slot_loop k =
    for i = 0 to k - 1 do
      Mmt_sim.Ring.in_packet_done ring
        (Mmt_sim.Ring.in_packet ring ~id:i ~born:Units.Time.zero 1024)
    done
  in
  slot_loop 10_000;
  let slot_ns = time slot_loop in
  let queue =
    Mmt_sim.Queue_model.droptail ~capacity:(Units.Size.mib 4) ()
  in
  let qp = Mmt_sim.Ring.in_packet ring ~id:0 ~born:Units.Time.zero 1024 in
  let queue_loop k =
    for _ = 1 to k do
      ignore (Mmt_sim.Queue_model.enqueue queue ~now:Units.Time.zero qp);
      ignore (Mmt_sim.Queue_model.poll queue ~now:Units.Time.zero)
    done
  in
  queue_loop 10_000;
  let queue_ns = time queue_loop in
  Mmt_sim.Ring.in_packet_done ring qp;
  let loss =
    Mmt_sim.Loss.bernoulli ~drop:0.001 ~corrupt:0.001
      ~rng:(Mmt_util.Rng.create ~seed:7L)
  in
  let loss_loop k =
    for _ = 1 to k do
      ignore (Mmt_sim.Loss.decide loss)
    done
  in
  loss_loop 10_000;
  let loss_ns = time loss_loop in
  (* The fused hop pays for two event executions (stage + final); the
     perfect loss model of the forward link draws nothing, so the loss
     line is informative rather than a component of the total. *)
  let accounted = (2. *. heap_ns) +. slot_ns +. queue_ns in
  let residual = Stdlib.max 0. (forward_ns -. accounted) in
  Printf.printf "forward-path breakdown (per hop, fused total %.0f ns):\n"
    forward_ns;
  Printf.printf "  heap ops (2 events: stage + final): %.1f ns\n"
    (2. *. heap_ns);
  Printf.printf "  ring slot acquire + retire: %.1f ns\n" slot_ns;
  Printf.printf "  queue enqueue + poll: %.1f ns\n" queue_ns;
  Printf.printf "  link bookkeeping residual: %.1f ns\n" residual;
  Printf.printf "  (bernoulli loss draw, when impaired: %.1f ns)\n" loss_ns;
  [
    ("heap_ops_2_events", 2. *. heap_ns);
    ("ring_slot_cycle", slot_ns);
    ("queue_enqueue_poll", queue_ns);
    ("link_bookkeeping_residual", residual);
    ("loss_draw_bernoulli", loss_ns);
  ]

(* E-F4 pilot allocation audit: the whole pilot (senders, links,
   rewriter, INT path, receiver, event builder) with pools on vs off.
   Pooling must cut minor-heap traffic and the ring must account for
   (and retire) the packets it handed out. *)
let pilot_audit_config =
  {
    Mmt_pilot.Pilot.default_config with
    Mmt_pilot.Pilot.fragment_count = 1500;
    payload = Mmt_daq.Workload.Synthetic (Units.Size.bytes 4096);
    wan_loss = 0.003;
    wan_corrupt = 0.001;
    int_telemetry = true;
  }

let check_pilot_allocation () =
  let measure ~pooling =
    let pilot = Mmt_pilot.Pilot.build ~pooling pilot_audit_config in
    Gc.full_major ();
    let before = Gc.minor_words () in
    Mmt_pilot.Pilot.run pilot;
    let after = Gc.minor_words () in
    (after -. before, pilot)
  in
  ignore (measure ~pooling:true) (* warm *);
  let pooled_words, pilot = measure ~pooling:true in
  let plain_words, _ = measure ~pooling:false in
  let events = Mmt_sim.Engine.processed (Mmt_pilot.Pilot.engine pilot) in
  let delivered =
    (Mmt_pilot.Pilot.results pilot).Mmt_pilot.Pilot.receiver
      .Mmt.Receiver.delivered
  in
  let ring =
    match Mmt_pilot.Pilot.ring_stats pilot with s :: _ -> Some s | [] -> None
  in
  let recycle_ratio =
    match ring with
    | Some r when r.Mmt_sim.Ring.acquired > 0 ->
        float_of_int r.Mmt_sim.Ring.retired
        /. float_of_int r.Mmt_sim.Ring.acquired
    | Some _ | None -> 0.
  in
  Printf.printf
    "E-F4 pilot minor words: pooled %.2e, pool-off %.2e (%.2fx less), %.1f \
     words/event pooled over %d events, %d delivered\n"
    pooled_words plain_words
    (if pooled_words > 0. then plain_words /. pooled_words else 0.)
    (pooled_words /. float_of_int events)
    events delivered;
  (match ring with
  | Some r ->
      Printf.printf
        "E-F4 pilot ring: %d acquires, %d retired (recycle ratio %.3f), %d \
         in use at quiescence, %d overflow, %d detached\n"
        r.Mmt_sim.Ring.acquired r.Mmt_sim.Ring.retired recycle_ratio
        r.Mmt_sim.Ring.in_use r.Mmt_sim.Ring.overflow r.Mmt_sim.Ring.detached
  | None -> ());
  (pooled_words, plain_words, events, delivered, ring, recycle_ratio)

(* Allocation audit: `Engine.schedule` must not allocate beyond the
   caller's callback.  Measured outside bechamel so the measurement
   itself cannot allocate between the two counter reads. *)
let check_schedule_allocation () =
  let engine = Mmt_sim.Engine.create () in
  (* Warm up past all array growth: 4096 in-flight events. *)
  for i = 0 to 4_095 do
    ignore (Mmt_sim.Engine.schedule engine ~at:(Units.Time.of_int_ns i) ignore)
  done;
  Mmt_sim.Engine.run engine;
  for i = 0 to 99 do
    ignore (Mmt_sim.Engine.schedule engine ~at:(Units.Time.of_int_ns i) ignore)
  done;
  let before = Gc.minor_words () in
  for i = 0 to 999 do
    ignore (Mmt_sim.Engine.schedule engine ~at:(Units.Time.of_int_ns i) ignore)
  done;
  let after = Gc.minor_words () in
  Mmt_sim.Engine.run engine;
  let words_per_schedule = (after -. before) /. 1000. in
  Printf.printf "engine schedule allocation: %.3f minor words/event %s\n\n"
    words_per_schedule
    (if words_per_schedule < 0.5 then "(allocation-free)" else "(ALLOCATES)");
  words_per_schedule

let run_micro_benchmarks ~quota ~limit () =
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit ~quota:(Time.second quota) ~stabilize:true () in
  let raw = Benchmark.all cfg instances bench_tests in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let table =
    Table.create
      ~title:
        "E-A3 micro-benchmarks: per-packet header/pipeline costs (host CPU; a \
         Tofino pipeline does the same field ops at line rate)"
      ~columns:[ ("operation", Table.Left); ("time per op", Table.Right) ]
      ()
  in
  let rows = ref [] in
  Hashtbl.iter
    (fun name ols_result ->
      let estimate =
        match Analyze.OLS.estimates ols_result with
        | Some (value :: _) -> Some value
        | Some [] | None -> None
      in
      rows := (name, estimate) :: !rows)
    results;
  let rows = List.sort compare !rows in
  List.iter
    (fun (name, estimate) ->
      let per_run =
        match estimate with
        | Some value -> Printf.sprintf "%.0f ns" value
        | None -> "n/a"
      in
      Table.add_row table [ name; per_run ])
    rows;
  Table.print table;
  List.filter_map
    (fun (name, estimate) -> Option.map (fun ns -> (name, ns)) estimate)
    rows

(* --- sweep ------------------------------------------------------------- *)

let render_sweep results =
  let buf = Buffer.create 4096 in
  List.iter
    (fun ((entry : Mmt_experiments.Registry.entry), (output, ok), _wall_s) ->
      Buffer.add_string buf
        (Printf.sprintf "### %s — %s\n\n" entry.Mmt_experiments.Registry.id
           entry.Mmt_experiments.Registry.title);
      Buffer.add_string buf output;
      if not ok then
        Buffer.add_string buf
          (Printf.sprintf "!! %s: some shape checks FAILED\n"
             entry.Mmt_experiments.Registry.id);
      Buffer.add_char buf '\n')
    results;
  Buffer.contents buf

let run_sweep ~jobs () =
  let started = Unix.gettimeofday () in
  let sequential = Mmt_experiments.Registry.run_collect ~jobs:1 () in
  let sequential_wall = Unix.gettimeofday () -. started in
  print_string (render_sweep sequential);
  let parallel =
    if jobs = 1 then None
    else begin
      let effective = Mmt_experiments.Registry.effective_jobs jobs in
      let started = Unix.gettimeofday () in
      let results = Mmt_experiments.Registry.run_collect ~jobs () in
      let wall = Unix.gettimeofday () -. started in
      let identical =
        String.equal (render_sweep sequential) (render_sweep results)
      in
      Printf.printf
        "sweep: sequential %.2f s, %d domains (%d requested) %.2f s, \
         reports %s\n\n"
        sequential_wall effective jobs wall
        (if identical then "byte-identical" else "DIFFER");
      Some (effective, wall, identical)
    end
  in
  let all_ok =
    List.for_all (fun (_, (_, ok), _) -> ok) sequential
    && match parallel with Some (_, _, identical) -> identical | None -> true
  in
  (sequential, sequential_wall, parallel, all_ok)

(* --- JSON -------------------------------------------------------------- *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let write_json ~path ~quota ~limit ~jobs ~micro ~alloc_words ~sharded
    ~barrier_words ~forward ~breakdown ~pilot_audit ~sweep =
  let results, sequential_wall, parallel, _ = sweep in
  let sh_flows, sh_shards, sh_cores, sh_seq_wall, sh_wall, sh_identical =
    sharded
  in
  let ( fwd_ns,
        fwd_words,
        (fwd_ring : Mmt_sim.Ring.stats),
        fwd_recycle,
        fwd_unfused_ns,
        fwd_unfused_words,
        fwd_identical ) =
    forward
  in
  let pa_pooled, pa_plain, pa_events, pa_delivered, pa_ring, pa_recycle =
    pilot_audit
  in
  let gc = Gc.get () in
  let ring_json (r : Mmt_sim.Ring.stats) =
    Printf.sprintf
      "{ \"capacity\": %d, \"acquired\": %d, \"retired\": %d, \
       \"double_done\": %d, \"overflow\": %d, \"detached\": %d, \
       \"in_use\": %d }"
      r.Mmt_sim.Ring.capacity r.Mmt_sim.Ring.acquired
      r.Mmt_sim.Ring.retired r.Mmt_sim.Ring.double_done
      r.Mmt_sim.Ring.overflow r.Mmt_sim.Ring.detached r.Mmt_sim.Ring.in_use
  in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf
    (Printf.sprintf "  \"config\": { \"quota_s\": %g, \"limit\": %d, \"jobs\": %d },\n"
       quota limit jobs);
  Buffer.add_string buf
    (Printf.sprintf
       "  \"gc\": { \"minor_heap_kb\": %d, \"space_overhead\": %d },\n"
       (gc.Gc.minor_heap_size * Sys.word_size / 8 / 1024)
       gc.Gc.space_overhead);
  Buffer.add_string buf "  \"forward\": {\n";
  Buffer.add_string buf
    (Printf.sprintf "    \"ns_per_packet\": %.1f,\n" fwd_ns);
  Buffer.add_string buf
    (Printf.sprintf "    \"alloc_minor_words_per_packet\": %.3f,\n" fwd_words);
  Buffer.add_string buf
    (Printf.sprintf "    \"pool_recycle_ratio\": %.4f,\n" fwd_recycle);
  Buffer.add_string buf
    (Printf.sprintf "    \"ns_per_packet_unfused\": %.1f,\n" fwd_unfused_ns);
  Buffer.add_string buf
    (Printf.sprintf "    \"alloc_minor_words_per_packet_unfused\": %.3f,\n"
       fwd_unfused_words);
  Buffer.add_string buf
    (Printf.sprintf "    \"fused_unfused_identical\": %b,\n" fwd_identical);
  Buffer.add_string buf
    (Printf.sprintf "    \"ring\": %s\n" (ring_json fwd_ring));
  Buffer.add_string buf "  },\n";
  Buffer.add_string buf "  \"forward_breakdown_ns\": {\n";
  let nb = List.length breakdown in
  List.iteri
    (fun i (name, ns) ->
      Buffer.add_string buf
        (Printf.sprintf "    \"%s\": %.1f%s\n" (json_escape name) ns
           (if i = nb - 1 then "" else ",")))
    breakdown;
  Buffer.add_string buf "  },\n";
  Buffer.add_string buf "  \"pilot_audit\": {\n";
  Buffer.add_string buf
    (Printf.sprintf "    \"minor_words_pooled\": %.0f,\n" pa_pooled);
  Buffer.add_string buf
    (Printf.sprintf "    \"minor_words_plain\": %.0f,\n" pa_plain);
  Buffer.add_string buf
    (Printf.sprintf "    \"minor_words_per_event_pooled\": %.2f,\n"
       (pa_pooled /. float_of_int pa_events));
  Buffer.add_string buf (Printf.sprintf "    \"events\": %d,\n" pa_events);
  Buffer.add_string buf
    (Printf.sprintf "    \"delivered\": %d,\n" pa_delivered);
  Buffer.add_string buf
    (Printf.sprintf "    \"ring_recycle_ratio\": %.4f%s\n" pa_recycle
       (if pa_ring = None then "" else ","));
  Option.iter
    (fun r ->
      Buffer.add_string buf
        (Printf.sprintf "    \"ring\": %s\n" (ring_json r)))
    pa_ring;
  Buffer.add_string buf "  },\n";
  Buffer.add_string buf
    (Printf.sprintf "  \"schedule_alloc_minor_words\": %.3f,\n" alloc_words);
  Buffer.add_string buf "  \"micro_ns\": {\n";
  let n = List.length micro in
  List.iteri
    (fun i (name, ns) ->
      Buffer.add_string buf
        (Printf.sprintf "    \"%s\": %.1f%s\n" (json_escape name) ns
           (if i = n - 1 then "" else ",")))
    micro;
  Buffer.add_string buf "  },\n";
  Buffer.add_string buf "  \"sharded\": {\n";
  Buffer.add_string buf (Printf.sprintf "    \"flows\": %d,\n" sh_flows);
  Buffer.add_string buf (Printf.sprintf "    \"shards\": %d,\n" sh_shards);
  Buffer.add_string buf (Printf.sprintf "    \"cores\": %d,\n" sh_cores);
  Buffer.add_string buf
    (Printf.sprintf "    \"sequential_wall_s\": %.3f,\n" sh_seq_wall);
  Buffer.add_string buf (Printf.sprintf "    \"sharded_wall_s\": %.3f,\n" sh_wall);
  Buffer.add_string buf
    (Printf.sprintf "    \"results_identical\": %b,\n" sh_identical);
  Buffer.add_string buf
    (Printf.sprintf "    \"barrier_alloc_minor_words_per_window\": %.3f\n"
       barrier_words);
  Buffer.add_string buf "  },\n";
  Buffer.add_string buf "  \"sweep\": {\n";
  Buffer.add_string buf
    (Printf.sprintf "    \"sequential_wall_s\": %.3f,\n" sequential_wall);
  (match parallel with
  | Some (effective, wall, identical) ->
      Buffer.add_string buf
        (Printf.sprintf "    \"parallel_jobs\": %d,\n" jobs);
      Buffer.add_string buf
        (Printf.sprintf "    \"parallel_jobs_effective\": %d,\n" effective);
      Buffer.add_string buf
        (Printf.sprintf "    \"parallel_wall_s\": %.3f,\n" wall);
      Buffer.add_string buf
        (Printf.sprintf "    \"reports_identical\": %b,\n" identical)
  | None -> ());
  Buffer.add_string buf "    \"experiments\": [\n";
  let n = List.length results in
  List.iteri
    (fun i ((entry : Mmt_experiments.Registry.entry), (_, ok), wall_s) ->
      Buffer.add_string buf
        (Printf.sprintf
           "      { \"id\": \"%s\", \"title\": \"%s\", \"ok\": %b, \"wall_s\": %.3f }%s\n"
           (json_escape entry.Mmt_experiments.Registry.id)
           (json_escape entry.Mmt_experiments.Registry.title)
           ok wall_s
           (if i = n - 1 then "" else ",")))
    results;
  Buffer.add_string buf "    ]\n";
  Buffer.add_string buf "  }\n";
  Buffer.add_string buf "}\n";
  let oc = open_out path in
  output_string oc (Buffer.contents buf);
  close_out oc;
  Printf.printf "wrote %s\n" path

(* --- CLI --------------------------------------------------------------- *)

let run json jobs quota limit =
  print_endline "=== Shape-shifting Elephants: experiment reproductions ===";
  print_newline ();
  let sweep = run_sweep ~jobs () in
  print_endline "### E-A3 — micro-benchmarks";
  print_newline ();
  let micro = run_micro_benchmarks ~quota ~limit () in
  print_newline ();
  print_demux_note micro;
  let micro = micro @ [ facility_per_event () ] in
  print_newline ();
  let sharded = run_sharded_facility () in
  let barrier_words = check_barrier_allocation () in
  print_newline ();
  let forward = check_forward_path () in
  let forward_ns, _, _, _, _, _, _ = forward in
  let breakdown = check_forward_breakdown ~forward_ns () in
  print_newline ();
  let pilot_audit = check_pilot_allocation () in
  print_newline ();
  let alloc_words = check_schedule_allocation () in
  Option.iter
    (fun path ->
      write_json ~path ~quota ~limit ~jobs ~micro ~alloc_words ~sharded
        ~barrier_words ~forward ~breakdown ~pilot_audit ~sweep)
    json;
  let _, _, _, all_ok = sweep in
  let _, _, _, _, _, sharded_identical = sharded in
  let all_ok = all_ok && sharded_identical in
  if all_ok then begin
    print_endline "ALL SHAPE CHECKS PASSED";
    0
  end
  else begin
    print_endline "SOME SHAPE CHECKS FAILED";
    1
  end

let () =
  let open Cmdliner in
  let json =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"FILE"
          ~doc:"Write per-op estimates and sweep wall-clocks as JSON.")
  in
  let jobs =
    Arg.(
      value & opt int 1
      & info [ "jobs"; "j" ] ~docv:"N"
          ~doc:
            "Also time the experiment sweep on $(docv) domains and check \
             the reports against the sequential sweep.")
  in
  let quota =
    Arg.(
      value & opt float 0.25
      & info [ "quota" ] ~docv:"SECONDS"
          ~doc:"Bechamel time budget per micro-benchmark.")
  in
  let limit =
    Arg.(
      value & opt int 2000
      & info [ "limit" ] ~docv:"N"
          ~doc:"Bechamel iteration limit per micro-benchmark.")
  in
  let cmd =
    Cmd.v
      (Cmd.info "bench"
         ~doc:"Reproduce the paper's tables/figures and micro-benchmarks.")
      Term.(const run $ json $ jobs $ quota $ limit)
  in
  exit (Cmd.eval' cmd)
