(* Vera Rubin's two concurrent streams (§ 2.1): the nightly 30 TB bulk
   capture and the 5.4 Gbps alert burst stream that must reach
   researchers within milliseconds.  Alerts carry the Timely feature;
   the bottleneck link runs either a plain drop-tail queue or the
   deadline-aware queue of § 5.3 ("explicit transport deadlines ...
   an input to active queue management").

   The run shows the deadline-aware queue letting alerts overtake bulk
   data under congestion, cutting the late fraction to zero.

   Run with: dune exec examples/vera_rubin_nightly.exe *)

open Mmt_util
open Mmt_frame

let telescope_ip = Addr.Ip.of_octets 10 2 0 1
let archive_ip = Addr.Ip.of_octets 10 2 0 2
let link_rate = Units.Rate.gbps 10.
let alert_deadline = Units.Time.ms 12.
let alert_count = 1000
let bulk_count = 10000

(* Deadline extraction for the queue: parse the frame like a switch
   pipeline would and use the Timely extension when present. *)
let deadline_of packet =
  match Mmt.Encap.locate (Mmt_sim.Packet.frame packet) with
  | Error _ -> None
  | Ok (_encap, off) -> (
      match Mmt.Header.decode_bytes ~off (Mmt_sim.Packet.frame packet) with
      | Ok { Mmt.Header.timely = Some { Mmt.Header.deadline; _ }; _ } -> Some deadline
      | Ok _ | Error _ -> None)

let run ~deadline_aware =
  let engine = Mmt_sim.Engine.create () in
  let topo = Mmt_sim.Topology.create ~engine () in
  let fresh_id () = Mmt_sim.Topology.fresh_packet_id topo in
  let telescope = Mmt_sim.Topology.add_node topo ~name:"telescope" in
  let archive = Mmt_sim.Topology.add_node topo ~name:"archive" in
  let queue =
    if deadline_aware then
      Mmt_sim.Queue_model.deadline_aware ~capacity:(Units.Size.mib 32)
        ~drop_expired:false ~deadline_of ()
    else Mmt_sim.Queue_model.droptail ~capacity:(Units.Size.mib 32) ()
  in
  let wan =
    Mmt_sim.Topology.connect topo ~src:telescope ~dst:archive ~rate:link_rate
      ~propagation:(Units.Time.ms 5.) ~queue ()
  in
  ignore
    (Mmt_sim.Topology.connect topo ~src:archive ~dst:telescope ~rate:link_rate
       ~propagation:(Units.Time.ms 5.) ());
  let router = Mmt_pilot.Router.create ~default:(Mmt_sim.Link.send wan) () in
  let env = Mmt_pilot.Router.env router ~engine ~fresh_id ~local_ip:telescope_ip in
  let vera_rubin = Mmt_daq.Experiment.find Mmt_daq.Experiment.Vera_rubin in
  let bulk_sender =
    Mmt.Sender.create ~env
      {
        Mmt.Sender.experiment = vera_rubin.Mmt_daq.Experiment.id;
        destination = archive_ip;
        encap = Mmt.Encap.Over_ipv4
            { src = telescope_ip; dst = archive_ip; dscp = 0; ttl = 64 };
        deadline_budget = None;
        backpressure_to = None;
        pace = None;
        padding = 0;
      }
  in
  let alert_sender =
    Mmt.Sender.create ~env
      {
        Mmt.Sender.experiment =
          Mmt.Experiment_id.with_slice vera_rubin.Mmt_daq.Experiment.id 1;
        destination = archive_ip;
        encap = Mmt.Encap.Over_ipv4
            { src = telescope_ip; dst = archive_ip; dscp = 46; ttl = 64 };
        deadline_budget = Some (alert_deadline, Addr.Ip.any);
        backpressure_to = None;
        pace = None;
        padding = 0;
      }
  in
  (* Receivers: alerts vs bulk, demuxed by instrument slice. *)
  let receiver_config expected =
    {
      Mmt.Receiver.experiment = vera_rubin.Mmt_daq.Experiment.id;
      nak_delay = Units.Time.ms 1.;
      nak_retry_timeout = Units.Time.ms 20.;
      max_nak_retries = 3;
      expected_total = Some expected;
    }
  in
  let env_archive =
    Mmt_pilot.Router.env (Mmt_pilot.Router.create ~default:ignore ()) ~engine ~fresh_id
      ~local_ip:archive_ip
  in
  let bulk_rx = Mmt.Receiver.create ~env:env_archive (receiver_config bulk_count)
      ~deliver:(fun _ _ -> ()) in
  let alert_rx = Mmt.Receiver.create ~env:env_archive (receiver_config alert_count)
      ~deliver:(fun _ _ -> ()) in
  Mmt_sim.Node.set_handler archive (fun packet ->
      match Mmt.Encap.locate (Mmt_sim.Packet.frame packet) with
      | Error _ -> ()
      | Ok (_encap, off) -> (
          match Mmt.Header.decode_bytes ~off (Mmt_sim.Packet.frame packet) with
          | Ok header when Mmt.Experiment_id.slice header.Mmt.Header.experiment = 1 ->
              Mmt.Receiver.on_packet alert_rx packet
          | Ok _ -> Mmt.Receiver.on_packet bulk_rx packet
          | Error _ -> ()));
  (* Offered load: bulk at 12 Gbps (oversubscribing the 10 GbE WAN for a
     burst, as the nightly transfer does), alerts at their 5.4 Gbps
     burst shape scaled down. *)
  let bulk_payload = Bytes.make 8192 'B' in
  let bulk_gap = Units.Rate.transmission_time (Units.Rate.gbps 12.) (Units.Size.bytes 8192) in
  for i = 0 to bulk_count - 1 do
    ignore
      (Mmt_sim.Engine.schedule engine
         ~at:(Units.Time.scale bulk_gap (float_of_int i))
         (fun () -> Mmt.Sender.send bulk_sender (Bytes.copy bulk_payload)))
  done;
  let alert_payload = Bytes.make 1024 'A' in
  let alert_gap = Units.Rate.transmission_time (Units.Rate.mbps 200.) (Units.Size.bytes 1024) in
  for i = 0 to alert_count - 1 do
    ignore
      (Mmt_sim.Engine.schedule engine
         ~at:(Units.Time.scale alert_gap (float_of_int i))
         (fun () -> Mmt.Sender.send alert_sender (Bytes.copy alert_payload)))
  done;
  Mmt_sim.Engine.run ~until:(Units.Time.seconds 30.) engine;
  (Mmt.Receiver.stats alert_rx, Mmt.Receiver.stats bulk_rx)

let () =
  print_endline "Vera Rubin: nightly bulk capture + deadline-bearing alert stream";
  print_endline "-----------------------------------------------------------------";
  Printf.printf "WAN: %s, alerts carry a %s delivery deadline\n\n"
    (Units.Rate.to_string link_rate)
    (Units.Time.to_string alert_deadline);
  let describe name (alerts : Mmt.Receiver.stats) (bulk : Mmt.Receiver.stats) =
    Printf.printf "%-22s alerts: %d/%d delivered, %d late | bulk: %d delivered\n" name
      alerts.Mmt.Receiver.delivered alert_count alerts.Mmt.Receiver.late
      bulk.Mmt.Receiver.delivered
  in
  let alerts_dt, bulk_dt = run ~deadline_aware:false in
  describe "drop-tail queue:" alerts_dt bulk_dt;
  let alerts_edf, bulk_edf = run ~deadline_aware:true in
  describe "deadline-aware queue:" alerts_edf bulk_edf;
  print_newline ();
  Printf.printf
    "Deadline-aware queueing (deadlines as input to AQM, § 5.3) cut late\n\
     alerts from %d to %d while the bulk stream still delivered %d fragments.\n"
    alerts_dt.Mmt.Receiver.late alerts_edf.Mmt.Receiver.late
    bulk_edf.Mmt.Receiver.delivered
