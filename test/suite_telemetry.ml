(* Telemetry primitives: the flow meter's binning edge cases. *)
open Mmt_util

let test_flow_meter_rejects_zero_bin () =
  Alcotest.check_raises "zero bin"
    (Invalid_argument "Flow_meter.create: zero bin") (fun () ->
      ignore (Mmt_telemetry.Flow_meter.create ~bin:Units.Time.zero))

let test_flow_meter_fills_empty_bins_with_zero () =
  let bin = Units.Time.ms 1. in
  let meter = Mmt_telemetry.Flow_meter.create ~bin in
  Mmt_telemetry.Flow_meter.record meter ~now:Units.Time.zero ~bytes:1000;
  (* Skip two whole bins, then record again in the fourth. *)
  Mmt_telemetry.Flow_meter.record meter ~now:(Units.Time.ms 3.2) ~bytes:2000;
  let series = Mmt_telemetry.Flow_meter.series meter in
  Alcotest.(check int) "four bins, gaps included" 4 (List.length series);
  let rates = List.map (fun (_, rate) -> Units.Rate.to_bps rate) series in
  Alcotest.(check bool) "first bin active" true (List.nth rates 0 > 0.);
  Alcotest.(check (float 0.)) "second bin zero" 0. (List.nth rates 1);
  Alcotest.(check (float 0.)) "third bin zero" 0. (List.nth rates 2);
  Alcotest.(check bool) "fourth bin active" true (List.nth rates 3 > 0.);
  Alcotest.(check int) "total bytes" 3000 (Mmt_telemetry.Flow_meter.total_bytes meter);
  (* Bin starts line up on the bin grid. *)
  List.iteri
    (fun i (start, _) ->
      Alcotest.(check int)
        (Printf.sprintf "bin %d start" i)
        (i * Units.Time.to_ns bin)
        (Units.Time.to_ns start))
    series

let test_flow_meter_empty_series () =
  let meter = Mmt_telemetry.Flow_meter.create ~bin:(Units.Time.ms 1.) in
  Alcotest.(check int) "no bins before any record" 0
    (List.length (Mmt_telemetry.Flow_meter.series meter));
  Alcotest.(check int) "no bytes" 0 (Mmt_telemetry.Flow_meter.total_bytes meter)

let test_gauge_high_water () =
  let g = Mmt_telemetry.Gauge.create () in
  Alcotest.(check int) "starts at zero" 0 (Mmt_telemetry.Gauge.value g);
  Mmt_telemetry.Gauge.set g 5;
  Mmt_telemetry.Gauge.add g 3;
  Alcotest.(check int) "value tracks" 8 (Mmt_telemetry.Gauge.value g);
  Alcotest.(check int) "high water rises" 8 (Mmt_telemetry.Gauge.high_water g);
  Mmt_telemetry.Gauge.set g 2;
  Mmt_telemetry.Gauge.add g (-2);
  Alcotest.(check int) "value falls" 0 (Mmt_telemetry.Gauge.value g);
  Alcotest.(check int) "high water holds" 8 (Mmt_telemetry.Gauge.high_water g)

let suite =
  [
    Alcotest.test_case "gauge high-water mark" `Quick test_gauge_high_water;
    Alcotest.test_case "flow meter rejects zero bin" `Quick
      test_flow_meter_rejects_zero_bin;
    Alcotest.test_case "flow meter zero-fills empty bins" `Quick
      test_flow_meter_fills_empty_bins_with_zero;
    Alcotest.test_case "flow meter empty series" `Quick test_flow_meter_empty_series;
  ]
