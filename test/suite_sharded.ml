(* The sharded runner's contract: running a topology cut at its WAN
   links across N domains produces byte-for-byte the execution a
   single engine would have produced.  The tests here build the same
   scenario through [Shard.build] at different shard counts and
   compare everything observable — event logs, stats, event counts —
   plus the pool-recycling hazard at the domain boundary. *)
open Mmt_util
open Mmt_sim

(* A star of [islands] islands around a hub, each joined to the hub by
   a WAN-class duplex pair (so every island is a cut component).
   Island sources fire packets at the hub; the hub bounces every
   packet back to its origin.  All observable activity funnels into
   per-node logs keyed by node name, merged in name order, so the
   transcript is a total record of delivery order and timing. *)
let build_star ?(impair = false) ?(faults = false) ~islands ~packets ~lognow
    topo =
  let hub = Topology.add_node topo ~name:"hub" in
  let logs = Hashtbl.create 8 in
  let log_of name =
    match Hashtbl.find_opt logs name with
    | Some b -> b
    | None ->
        let b = Buffer.create 256 in
        Hashtbl.replace logs name b;
        b
  in
  let back = Hashtbl.create 8 in
  Node.set_handler hub (fun p ->
      let now = lognow (Topology.node_engine topo hub) in
      Buffer.add_string (log_of "hub")
        (Printf.sprintf "%s len=%d hops=%d\n" (Units.Time.to_string now)
           (Bytes.length (Packet.frame p))
           p.Packet.hops);
      (* Bounce home: frame byte 0 names the island. *)
      let island = Char.code (Bytes.get (Packet.frame p) 0) in
      Link.send (Hashtbl.find back island) p);
  for i = 0 to islands - 1 do
    let name = Printf.sprintf "island%d" i in
    let node = Topology.add_node topo ~name in
    (* Per-link impairment state is link-local (each rng is consumed
       only by its link's transmitter, in transmit order), so a lossy
       run is as deterministic as a clean one. *)
    let loss () =
      if impair then
        Loss.bernoulli ~drop:0.05 ~corrupt:0.02
          ~rng:(Rng.create ~seed:(Int64.of_int (1000 + i)))
      else Loss.perfect
    in
    let up, down =
      Topology.duplex topo ~a:node ~b:hub ~rate:(Units.Rate.gbps 10.)
        ~propagation:(Units.Time.ms (2. +. float_of_int i))
        ~loss_ab:(loss ()) ~loss_ba:(loss ()) ()
    in
    Hashtbl.replace back i down;
    if faults then begin
      (* A fault plan in miniature: down the uplink mid-run, restore it
         later, scheduled on the link's owning (source-side) engine as
         the chaos injector does. *)
      let engine_up = Topology.node_engine topo node in
      let down_at = Units.Time.ms (3. +. float_of_int i) in
      let up_at = Units.Time.ms (6. +. (2. *. float_of_int i)) in
      ignore (Engine.schedule engine_up ~at:down_at (fun () -> Link.set_up up false));
      ignore (Engine.schedule engine_up ~at:up_at (fun () -> Link.set_up up true))
    end;
    Node.set_handler node (fun p ->
        let now = lognow (Topology.node_engine topo node) in
        Buffer.add_string (log_of name)
          (Printf.sprintf "%s len=%d hops=%d\n" (Units.Time.to_string now)
             (Bytes.length (Packet.frame p))
             p.Packet.hops));
    let engine = Topology.node_engine topo node in
    let ids = Topology.id_source topo node in
    for k = 0 to packets - 1 do
      ignore
        (Engine.schedule engine
           ~at:(Units.Time.us (float_of_int ((k * 137) + (i * 31))))
           (fun () ->
             let frame = Bytes.create (64 + k) in
             Bytes.set frame 0 (Char.chr i);
             let p =
               Packet.create ~id:(ids ()) ~born:(Engine.now engine) frame
             in
             Link.send up p))
    done
  done;
  logs

let transcript topo logs =
  let nodes =
    Hashtbl.fold (fun name b acc -> (name, Buffer.contents b) :: acc) logs []
    |> List.sort compare
    |> List.map (fun (name, s) -> "== " ^ name ^ " ==\n" ^ s)
    |> String.concat ""
  in
  (* Link stats in creation order: loss, fault and queue accounting
     must match mode-for-mode, not just the delivered payloads. *)
  let stats =
    Topology.links topo
    |> List.map (fun link ->
           let s = Link.stats link in
           Printf.sprintf
             "%s offered=%d transmitted=%d delivered=%d qdrop=%d loss=%d \
              corrupt=%d fault=%d bytes=%d\n"
             (Link.name link) s.Link.offered s.Link.transmitted
             s.Link.delivered s.Link.queue_drops s.Link.loss_drops
             s.Link.corrupted s.Link.fault_drops s.Link.delivered_bytes)
    |> String.concat ""
  in
  nodes ^ "== links ==\n" ^ stats

(* With [until], every engine's clock is clamped to the horizon in
   both modes, so [Engine.now] inside handlers is directly
   comparable.  Without a horizon, handlers must not read [now] (the
   sharded engines' clocks advance in window caps) — [run_to_quiescence]
   below exercises that path with time-free logs. *)
let run_star ?until ?impair ?faults ?fusing ~islands ~packets ~lognow shards =
  let topo, logs, runner =
    Shard.build ~shards ?fusing
      (build_star ?impair ?faults ~islands ~packets ~lognow)
  in
  (match runner with
  | None -> Engine.run ?until (Topology.engine topo)
  | Some r -> Shard.run ?until r);
  let events =
    match runner with
    | None -> Engine.processed (Topology.engine topo)
    | Some r -> Shard.events r
  in
  let finished =
    match runner with
    | None -> Engine.last_event_at (Topology.engine topo)
    | Some r -> Shard.last_event_at r
  in
  (transcript topo logs, events, finished, runner)

let test_star_differential () =
  let until = Units.Time.seconds 1. in
  let lognow = Engine.now in
  let seq, ev_seq, fin_seq, r0 =
    run_star ~until ~islands:3 ~packets:40 ~lognow 1
  in
  Alcotest.(check bool) "shards=1 falls back to sequential" true (r0 = None);
  List.iter
    (fun shards ->
      let par, ev_par, fin_par, runner =
        run_star ~until ~islands:3 ~packets:40 ~lognow shards
      in
      let label = Printf.sprintf "shards=%d" shards in
      Alcotest.(check string) (label ^ " transcript identical") seq par;
      Alcotest.(check int) (label ^ " event count identical") ev_seq ev_par;
      Alcotest.(check bool)
        (label ^ " last event time identical")
        true
        (Units.Time.equal fin_seq fin_par);
      match runner with
      | None -> Alcotest.fail (label ^ " unexpectedly sequential")
      | Some r ->
          (* 3 islands + hub = 4 components; shards beyond that fold. *)
          Alcotest.(check int)
            (label ^ " shard count")
            (Stdlib.min shards 4) (Shard.nshards r))
    [ 2; 3; 4 ]

let test_star_fusing_differential () =
  (* Fused hops must never apply on a cut edge, and must not change a
     single transcript byte in any mode.  Fused runs at 1..4 shards —
     with impairment on and the fault plan flapping the cut links
     mid-window — must match the unfused sequential run exactly,
     link stat for link stat (the transcript includes per-link loss,
     fault and queue accounting). *)
  let until = Units.Time.seconds 1. in
  let lognow = Engine.now in
  let unfused, ev_u, fin_u, _ =
    run_star ~until ~impair:true ~faults:true ~fusing:false ~islands:3
      ~packets:40 ~lognow 1
  in
  List.iter
    (fun shards ->
      let fused, ev_f, fin_f, _ =
        run_star ~until ~impair:true ~faults:true ~islands:3 ~packets:40
          ~lognow shards
      in
      let label = Printf.sprintf "fused shards=%d" shards in
      Alcotest.(check string)
        (label ^ " transcript identical to unfused sequential")
        unfused fused;
      Alcotest.(check int) (label ^ " event count identical") ev_u ev_f;
      Alcotest.(check bool)
        (label ^ " last event time identical")
        true
        (Units.Time.equal fin_u fin_f))
    [ 1; 2; 3; 4 ]

let test_star_quiescence () =
  (* No [until]: the runner must detect global quiescence through the
     barrier, and [last_event_at] must agree with sequential. *)
  let lognow e = ignore e; Units.Time.zero in
  let seq, ev_seq, fin_seq, _ = run_star ~islands:2 ~packets:10 ~lognow 1 in
  let par, ev_par, fin_par, _ = run_star ~islands:2 ~packets:10 ~lognow 3 in
  Alcotest.(check string) "transcript identical" seq par;
  Alcotest.(check int) "event count identical" ev_seq ev_par;
  Alcotest.(check bool) "last event time identical" true
    (Units.Time.equal fin_seq fin_par)

(* Frames that cross a shard mailbox must not be recycled through the
   sending shard's pool: each shard owns a pool, receivers release
   into their own side, and a crossed frame's bytes must still be
   intact when delivered.  (Regression for the release-at-boundary
   hazard: a sender-side release would retire the frame while it sits
   in the mailbox.) *)
let test_pool_boundary_crossing () =
  let build topo =
    let a = Topology.add_node topo ~name:"a" in
    let b = Topology.add_node topo ~name:"b" in
    let ab, _ =
      Topology.duplex topo ~a ~b ~rate:(Units.Rate.gbps 1.)
        ~propagation:(Units.Time.ms 5.) ()
    in
    let delivered = ref 0 in
    let intact = ref true in
    Node.set_handler b (fun p ->
        let frame = Packet.frame p in
        if Bytes.length frame <> 256 then intact := false
        else if Bytes.get frame 17 <> 'x' then intact := false;
        incr delivered;
        (* Receiver done with the frame: release into *its* pool. *)
        match Topology.pool_of_shard topo (Topology.shard_of_node topo b) with
        | Some pool -> Pool.release_packet pool p
        | None -> ());
    let engine = Topology.node_engine topo a in
    let ids = Topology.id_source topo a in
    let pool_a () =
      Option.get (Topology.pool_of_shard topo (Topology.shard_of_node topo a))
    in
    for k = 0 to 99 do
      ignore
        (Engine.schedule engine
           ~at:(Units.Time.us (float_of_int (k * 10)))
           (fun () ->
             let frame = Pool.acquire (pool_a ()) 256 in
             Bytes.fill frame 0 256 'x';
             let p =
               Packet.create ~id:(ids ()) ~born:(Engine.now engine) frame
             in
             Link.send ab p))
    done;
    (delivered, intact)
  in
  let topo, (delivered, intact), runner =
    Shard.build ~shards:2 ~pool:(fun () -> Pool.create ()) build
  in
  let r = Option.get runner in
  Shard.run r;
  Alcotest.(check int) "all packets delivered" 100 !delivered;
  Alcotest.(check bool) "frames intact after crossing" true !intact;
  let stats shard = Pool.stats (Option.get (Topology.pool_of_shard topo shard)) in
  let a = stats 0 and b = stats 1 in
  Alcotest.(check int) "sender pool acquired all frames" 100 a.Pool.acquired;
  Alcotest.(check int) "sender pool got no releases" 0 a.Pool.released;
  Alcotest.(check int) "receiver pool got all releases" 100 b.Pool.released

(* Random island topologies with random fault toggles: the strongest
   form of the determinism contract.  Fault plans flip link state at
   scheduled times on the owning shard's engine — the same mechanism
   the chaos experiments use — so loss accounting must also match.
   The baseline runs with fusing *off* while the sharded run keeps the
   default fused hops: one property covers both the shard cut and the
   fused/unfused differential, and in particular that fusion never
   applies on a cut edge (whose flapping is part of the fault plan). *)
let test_fuzz_differential =
  QCheck.Test.make ~count:20
    ~name:"random star: unfused sequential = fused sharded"
    QCheck.(
      quad (int_range 2 4) (int_range 1 30) (int_range 2 4) (pair bool bool))
    (fun (islands, packets, shards, (impair, faults)) ->
      let until = Units.Time.ms 500. in
      let lognow = Engine.now in
      let seq, ev_seq, _, _ =
        run_star ~until ~impair ~faults ~fusing:false ~islands ~packets ~lognow
          1
      in
      let par, ev_par, _, _ =
        run_star ~until ~impair ~faults ~islands ~packets ~lognow shards
      in
      seq = par && ev_seq = ev_par)

let suite =
  [
    Alcotest.test_case "star: sequential vs shards 2..4" `Quick
      test_star_differential;
    Alcotest.test_case "star: fused = unfused under cut-link faults" `Quick
      test_star_fusing_differential;
    Alcotest.test_case "star: quiescence without horizon" `Quick
      test_star_quiescence;
    Alcotest.test_case "pool: frames crossing shards stay intact" `Quick
      test_pool_boundary_crossing;
    QCheck_alcotest.to_alcotest test_fuzz_differential;
  ]
