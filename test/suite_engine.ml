open Mmt_util
module Engine = Mmt_sim.Engine

let time = Alcotest.testable Units.Time.pp Units.Time.equal

let test_runs_in_time_order () =
  let engine = Engine.create () in
  let order = ref [] in
  ignore (Engine.schedule engine ~at:(Units.Time.us 30.) (fun () -> order := 3 :: !order));
  ignore (Engine.schedule engine ~at:(Units.Time.us 10.) (fun () -> order := 1 :: !order));
  ignore (Engine.schedule engine ~at:(Units.Time.us 20.) (fun () -> order := 2 :: !order));
  Engine.run engine;
  Alcotest.(check (list int)) "time order" [ 1; 2; 3 ] (List.rev !order)

let test_fifo_for_equal_times () =
  let engine = Engine.create () in
  let order = ref [] in
  for i = 1 to 50 do
    ignore (Engine.schedule engine ~at:(Units.Time.us 5.) (fun () -> order := i :: !order))
  done;
  Engine.run engine;
  Alcotest.(check (list int)) "insertion order" (List.init 50 (fun i -> i + 1))
    (List.rev !order)

let test_clock_advances () =
  let engine = Engine.create () in
  let seen = ref Units.Time.zero in
  ignore (Engine.schedule engine ~at:(Units.Time.ms 2.) (fun () -> seen := Engine.now engine));
  Engine.run engine;
  Alcotest.check time "clock at event time" (Units.Time.ms 2.) !seen;
  Alcotest.check time "clock stays" (Units.Time.ms 2.) (Engine.now engine)

let test_past_events_run_now () =
  let engine = Engine.create () in
  ignore (Engine.schedule engine ~at:(Units.Time.ms 1.) (fun () -> ()));
  Engine.run engine;
  let fired_at = ref Units.Time.zero in
  ignore
    (Engine.schedule engine ~at:Units.Time.zero (fun () -> fired_at := Engine.now engine));
  Engine.run engine;
  Alcotest.check time "not in the past" (Units.Time.ms 1.) !fired_at

let test_reentrant_scheduling () =
  let engine = Engine.create () in
  let count = ref 0 in
  let rec chain n =
    if n > 0 then begin
      incr count;
      ignore (Engine.schedule_after engine ~delay:(Units.Time.us 1.) (fun () -> chain (n - 1)))
    end
  in
  chain 100;
  Engine.run engine;
  Alcotest.(check int) "all chained events ran" 100 !count;
  Alcotest.check time "clock" (Units.Time.us 100.) (Engine.now engine)

let test_cancellation () =
  let engine = Engine.create () in
  let fired = ref false in
  let handle = Engine.schedule engine ~at:(Units.Time.ms 1.) (fun () -> fired := true) in
  Engine.cancel engine handle;
  Engine.cancel engine handle;
  Engine.run engine;
  Alcotest.(check bool) "cancelled event skipped" false !fired

let test_run_until () =
  let engine = Engine.create () in
  let fired = ref [] in
  ignore (Engine.schedule engine ~at:(Units.Time.ms 1.) (fun () -> fired := 1 :: !fired));
  ignore (Engine.schedule engine ~at:(Units.Time.ms 5.) (fun () -> fired := 5 :: !fired));
  Engine.run ~until:(Units.Time.ms 2.) engine;
  Alcotest.(check (list int)) "only first fired" [ 1 ] !fired;
  Alcotest.check time "clock advanced to until" (Units.Time.ms 2.) (Engine.now engine);
  Engine.run engine;
  Alcotest.(check (list int)) "rest fired later" [ 5; 1 ] !fired

let test_pending_and_processed () =
  let engine = Engine.create () in
  let h1 = Engine.schedule engine ~at:(Units.Time.ms 1.) ignore in
  ignore (Engine.schedule engine ~at:(Units.Time.ms 2.) ignore);
  Alcotest.(check int) "pending" 2 (Engine.pending engine);
  Engine.cancel engine h1;
  Alcotest.(check int) "pending after cancel" 1 (Engine.pending engine);
  Engine.run engine;
  Alcotest.(check int) "processed" 1 (Engine.processed engine);
  Alcotest.(check int) "pending drained" 0 (Engine.pending engine)

let test_step () =
  let engine = Engine.create () in
  ignore (Engine.schedule engine ~at:(Units.Time.us 1.) ignore);
  ignore (Engine.schedule engine ~at:(Units.Time.us 2.) ignore);
  Alcotest.(check bool) "step 1" true (Engine.step engine);
  Alcotest.(check bool) "step 2" true (Engine.step engine);
  Alcotest.(check bool) "step empty" false (Engine.step engine)

let test_heap_stress () =
  let engine = Engine.create () in
  let rng = Rng.create ~seed:77L in
  let last = ref Units.Time.zero in
  let monotone = ref true in
  for _ = 1 to 10_000 do
    let at = Units.Time.of_int_ns (Rng.int rng ~bound:1_000_000) in
    ignore
      (Engine.schedule engine ~at (fun () ->
           if Units.Time.(Engine.now engine < !last) then monotone := false;
           last := Engine.now engine))
  done;
  Engine.run engine;
  Alcotest.(check bool) "clock monotone over 10k random events" true !monotone;
  Alcotest.(check int) "all processed" 10_000 (Engine.processed engine)

let test_mass_cancellation () =
  let engine = Engine.create () in
  let fired = ref 0 in
  let handles =
    List.init 1000 (fun i ->
        Engine.schedule engine
          ~at:(Units.Time.of_int_ns (i + 1))
          (fun () -> incr fired))
  in
  (* Cancel 600 of 1000: every event except those with index mod 5 < 2. *)
  List.iteri (fun i h -> if i mod 5 >= 2 then Engine.cancel engine h) handles;
  Alcotest.(check int) "pending reflects cancellations exactly" 400
    (Engine.pending engine);
  Engine.run engine;
  Alcotest.(check int) "only live events ran" 400 !fired;
  Alcotest.(check int) "processed" 400 (Engine.processed engine);
  Alcotest.(check int) "drained" 0 (Engine.pending engine)

let test_cancel_after_run () =
  let engine = Engine.create () in
  let handle = Engine.schedule engine ~at:(Units.Time.us 1.) ignore in
  ignore (Engine.schedule engine ~at:(Units.Time.us 2.) ignore);
  Engine.run engine;
  (* Cancelling a handle whose event already ran must not corrupt the
     live/pending accounting. *)
  Engine.cancel engine handle;
  Engine.cancel engine handle;
  Alcotest.(check int) "pending unaffected" 0 (Engine.pending engine);
  ignore (Engine.schedule engine ~at:(Units.Time.us 3.) ignore);
  Alcotest.(check int) "new event counted" 1 (Engine.pending engine);
  Engine.run engine;
  Alcotest.(check int) "all three processed" 3 (Engine.processed engine)

let test_compaction_preserves_order () =
  let engine = Engine.create () in
  let rng = Rng.create ~seed:41L in
  let last = ref Units.Time.zero in
  let monotone = ref true in
  let fired = ref 0 in
  let handles = ref [] in
  for i = 1 to 2_000 do
    let at = Units.Time.of_int_ns (Rng.int rng ~bound:100_000) in
    let h =
      Engine.schedule engine ~at (fun () ->
          if Units.Time.(Engine.now engine < !last) then monotone := false;
          last := Engine.now engine;
          incr fired)
    in
    handles := (i, h) :: !handles
  done;
  (* Cancel two thirds to force several compactions mid-stream. *)
  List.iter (fun (i, h) -> if i mod 3 <> 0 then Engine.cancel engine h) !handles;
  let expected_live = List.length (List.filter (fun (i, _) -> i mod 3 = 0) !handles) in
  Alcotest.(check int) "pending after burst" expected_live (Engine.pending engine);
  Engine.run engine;
  Alcotest.(check bool) "clock monotone through compactions" true !monotone;
  Alcotest.(check int) "survivors all ran" expected_live (Engine.processed engine);
  Alcotest.(check int) "survivor set fired" expected_live !fired

(* Differential fuzz: drive the SoA heap and a naive reference model
   (linear scan for the minimum (at, seq) live event) through the same
   random schedule/cancel/step stream and demand identical pop order,
   clocks and pending counts — across array growth and the compactions
   the cancel bursts trigger. *)
type model_event = {
  m_at : int; (* effective fire time, clamped at schedule *)
  m_seq : int;
  m_id : int;
  mutable m_cancelled : bool;
  mutable m_popped : bool;
}

let model_pop events clock =
  let best =
    List.fold_left
      (fun acc e ->
        if e.m_cancelled || e.m_popped then acc
        else
          match acc with
          | None -> Some e
          | Some b ->
              if e.m_at < b.m_at || (e.m_at = b.m_at && e.m_seq < b.m_seq)
              then Some e
              else acc)
      None events
  in
  match best with
  | None -> None
  | Some e ->
      e.m_popped <- true;
      clock := e.m_at;
      Some e.m_id

let test_fuzz_matches_reference_model () =
  List.iter
    (fun seed ->
      let rng = Rng.create ~seed in
      let engine = Engine.create () in
      let by_id : (int, Engine.handle * model_event) Hashtbl.t =
        Hashtbl.create 256
      in
      let events = ref [] in
      let model_clock = ref 0 in
      let next_id = ref 0 in
      let next_seq = ref 0 in
      let engine_pops = ref [] in
      let model_pops = ref [] in
      let schedule () =
        let at_req = Rng.int rng ~bound:50_000 in
        let id = !next_id in
        incr next_id;
        let handle =
          Engine.schedule engine
            ~at:(Units.Time.of_int_ns at_req)
            (fun () -> engine_pops := id :: !engine_pops)
        in
        let event =
          {
            m_at = max at_req !model_clock;
            m_seq = !next_seq;
            m_id = id;
            m_cancelled = false;
            m_popped = false;
          }
        in
        incr next_seq;
        events := event :: !events;
        Hashtbl.replace by_id id (handle, event)
      in
      let cancel () =
        if !next_id > 0 then begin
          (* Any id ever issued: live, already-run and already-cancelled
             handles all get exercised. *)
          let victim = Rng.int rng ~bound:!next_id in
          let handle, event = Hashtbl.find by_id victim in
          Engine.cancel engine handle;
          if not (event.m_popped || event.m_cancelled) then
            event.m_cancelled <- true
        end
      in
      let pop () =
        let stepped = Engine.step engine in
        let model = model_pop !events model_clock in
        Alcotest.(check bool)
          "step mirrors model emptiness" (model <> None) stepped;
        Option.iter (fun id -> model_pops := id :: !model_pops) model
      in
      for _ = 1 to 3_000 do
        let r = Rng.int rng ~bound:100 in
        if r < 55 then schedule () else if r < 85 then cancel () else pop ()
      done;
      (* Drain both completely. *)
      let continue = ref true in
      while !continue do
        let stepped = Engine.step engine in
        let model = model_pop !events model_clock in
        Alcotest.(check bool)
          "drain mirrors model emptiness" (model <> None) stepped;
        Option.iter (fun id -> model_pops := id :: !model_pops) model;
        continue := stepped
      done;
      Alcotest.(check (list int))
        (Printf.sprintf "pop order (seed %Ld)" seed)
        (List.rev !model_pops) (List.rev !engine_pops);
      Alcotest.(check int)
        "final clock" !model_clock
        (Units.Time.to_ns (Engine.now engine));
      Alcotest.(check int) "drained" 0 (Engine.pending engine))
    [ 3L; 17L; 99L; 4242L ]

let qcheck_event_order =
  QCheck.Test.make ~name:"events always fire in schedule order" ~count:100
    QCheck.(list_of_size (Gen.int_range 1 100) (int_range 0 1_000))
    (fun delays ->
      let engine = Engine.create () in
      let fired = ref [] in
      List.iteri
        (fun i d ->
          ignore
            (Engine.schedule engine ~at:(Units.Time.of_int_ns d) (fun () ->
                 fired := (d, i) :: !fired)))
        delays;
      Engine.run engine;
      let result = List.rev !fired in
      let sorted = List.stable_sort (fun (a, _) (b, _) -> compare a b)
          (List.mapi (fun i d -> (d, i)) delays)
      in
      result = sorted)

let test_boundary_lane_orders_before_ordinary () =
  (* At one instant: boundary events fire first (their keys sit below
     the ordinary lane's floor), ordered by key — not by insertion —
     while ordinary events keep FIFO among themselves. *)
  let engine = Engine.create () in
  let at = Units.Time.us 5. in
  let order = ref [] in
  let mark tag () = order := tag :: !order in
  ignore (Engine.schedule engine ~at (mark "ord1"));
  ignore (Engine.schedule_boundary engine ~at ~key:7 (mark "key7"));
  ignore (Engine.schedule engine ~at (mark "ord2"));
  ignore (Engine.schedule_boundary engine ~at ~key:3 (mark "key3"));
  Engine.run engine;
  Alcotest.(check (list string))
    "boundary lane first, by key; ordinary lane FIFO"
    [ "key3"; "key7"; "ord1"; "ord2" ]
    (List.rev !order)

let test_boundary_key_validation () =
  let engine = Engine.create () in
  let invalid key =
    Alcotest.check_raises
      (Printf.sprintf "key %d rejected" key)
      (Invalid_argument "Engine.schedule_boundary: key outside the boundary lane")
      (fun () ->
        ignore
          (Engine.schedule_boundary engine ~at:Units.Time.zero ~key (fun () -> ())))
  in
  invalid (-1);
  invalid (1 lsl 60);
  (* The lane edges are usable. *)
  ignore (Engine.schedule_boundary engine ~at:Units.Time.zero ~key:0 (fun () -> ()));
  ignore
    (Engine.schedule_boundary engine ~at:Units.Time.zero
       ~key:((1 lsl 60) - 1)
       (fun () -> ()));
  Engine.run engine;
  Alcotest.(check int) "both ran" 2 (Engine.processed engine)

let test_last_event_at_survives_clamp () =
  let engine = Engine.create () in
  ignore (Engine.schedule engine ~at:(Units.Time.us 3.) (fun () -> ()));
  Engine.run ~until:(Units.Time.ms 1.) engine;
  Alcotest.check time "clock clamped to the horizon" (Units.Time.ms 1.)
    (Engine.now engine);
  Alcotest.check time "last event time preserved" (Units.Time.us 3.)
    (Engine.last_event_at engine)

let suite =
  [
    Alcotest.test_case "time order" `Quick test_runs_in_time_order;
    Alcotest.test_case "fifo for ties" `Quick test_fifo_for_equal_times;
    Alcotest.test_case "clock advances" `Quick test_clock_advances;
    Alcotest.test_case "past events run now" `Quick test_past_events_run_now;
    Alcotest.test_case "re-entrant scheduling" `Quick test_reentrant_scheduling;
    Alcotest.test_case "cancellation" `Quick test_cancellation;
    Alcotest.test_case "run until" `Quick test_run_until;
    Alcotest.test_case "pending/processed" `Quick test_pending_and_processed;
    Alcotest.test_case "step" `Quick test_step;
    Alcotest.test_case "heap stress" `Quick test_heap_stress;
    Alcotest.test_case "mass cancellation" `Quick test_mass_cancellation;
    Alcotest.test_case "cancel after run" `Quick test_cancel_after_run;
    Alcotest.test_case "compaction preserves order" `Quick
      test_compaction_preserves_order;
    Alcotest.test_case "fuzz vs reference model" `Quick
      test_fuzz_matches_reference_model;
    Alcotest.test_case "boundary lane ordering" `Quick
      test_boundary_lane_orders_before_ordinary;
    Alcotest.test_case "boundary key validation" `Quick
      test_boundary_key_validation;
    Alcotest.test_case "last_event_at vs clock clamp" `Quick
      test_last_event_at_survives_clamp;
    QCheck_alcotest.to_alcotest qcheck_event_order;
  ]
