(* The chaos-campaign subsystem: plan conflict validation, the seeded
   generator, the campaign runner (sequential vs. pooled
   byte-identity), the shrinker against a known-violating defect, the
   watchdog, the shared invariant formatters, and the standing
   regression corpus under test/chaos_corpus/. *)
open Mmt_util
module Fault = Mmt_fault
module C = Mmt_pilot.Chaos_run

let us = Units.Time.us
let ms = Units.Time.ms

(* Plan validation: the deterministic accept/reject surface ---------------- *)

let rejects events =
  match Fault.Plan.make events with
  | _ -> false
  | exception Invalid_argument _ -> true

let test_plan_rejects_nan () =
  Alcotest.(check bool) "NaN factor rejected" true
    (rejects
       [
         Fault.Plan.event ~at:Units.Time.zero
           (Fault.Plan.Degrade_rate { link = "l"; factor = Float.nan });
       ]);
  Alcotest.(check bool) "NaN probability rejected" true
    (rejects
       [
         Fault.Plan.event ~at:Units.Time.zero
           (Fault.Plan.Corrupt_headers
              { link = "l"; probability = Float.nan; bits = 1 });
       ])

let test_plan_rejects_same_instant_conflicts () =
  let conflict a b =
    rejects [ Fault.Plan.event ~at:(ms 1.) a; Fault.Plan.event ~at:(ms 1.) b ]
  in
  Alcotest.(check bool) "down vs up" true
    (conflict (Fault.Plan.Link_down "l") (Fault.Plan.Link_up "l"));
  Alcotest.(check bool) "degrade vs restore" true
    (conflict
       (Fault.Plan.Degrade_rate { link = "l"; factor = 0.5 })
       (Fault.Plan.Restore_rate "l"));
  Alcotest.(check bool) "fail vs restart" true
    (conflict (Fault.Plan.Fail_element "e") (Fault.Plan.Restart_element "e"));
  Alcotest.(check bool) "blackhole vs unblackhole" true
    (conflict
       (Fault.Plan.Blackhole_adverts "c")
       (Fault.Plan.Unblackhole_adverts "c"));
  Alcotest.(check bool) "corrupt vs stop" true
    (conflict
       (Fault.Plan.Corrupt_headers { link = "l"; probability = 0.1; bits = 1 })
       (Fault.Plan.Stop_corrupting "l"));
  (* A partition opens every member link: a same-instant Link_up on a
     member is the same down-vs-up conflict. *)
  Alcotest.(check bool) "partition vs member up" true
    (conflict (Fault.Plan.Partition [ "a"; "b" ]) (Fault.Plan.Link_up "a"))

let test_plan_accepts_benign_same_instant () =
  let accepts a b = not (rejects [ Fault.Plan.event ~at:(ms 1.) a; Fault.Plan.event ~at:(ms 1.) b ]) in
  (* Idempotent duplicates agree on polarity. *)
  Alcotest.(check bool) "duplicate down" true
    (accepts (Fault.Plan.Link_down "l") (Fault.Plan.Link_down "l"));
  Alcotest.(check bool) "duplicate degrade" true
    (accepts
       (Fault.Plan.Degrade_rate { link = "l"; factor = 0.5 })
       (Fault.Plan.Degrade_rate { link = "l"; factor = 0.2 }));
  (* Different subjects never conflict. *)
  Alcotest.(check bool) "down a, up b" true
    (accepts (Fault.Plan.Link_down "a") (Fault.Plan.Link_up "b"));
  (* Different families on one name never conflict: rate vs liveness. *)
  Alcotest.(check bool) "down vs restore-rate" true
    (accepts (Fault.Plan.Link_down "l") (Fault.Plan.Restore_rate "l"));
  (* Same pair at different instants is the normal case. *)
  Alcotest.(check bool) "window" true
    (not
       (rejects
          [
            Fault.Plan.event ~at:(ms 1.) (Fault.Plan.Link_down "l");
            Fault.Plan.event ~at:(ms 2.) (Fault.Plan.Link_up "l");
          ]))

(* Invariant formatters ---------------------------------------------------- *)

let sample_outcome () =
  let ledger = Fault.Invariant.ledger () in
  Fault.Invariant.delivered ledger ~seq:1;
  Fault.Invariant.delivered ledger ~seq:2;
  Fault.Invariant.delivered ledger ~seq:2;
  Fault.Invariant.outcome ~emitted:3 ~abandoned:1 ~resurrected:0 ~pending:0
    ~terminated:true ledger

let test_invariant_to_string () =
  Alcotest.(check string) "stable one-liner"
    "emitted=3 delivered=2 duplicates=1 abandoned=1 resurrected=0 pending=0 \
     terminated=true"
    (Fault.Invariant.to_string (sample_outcome ()))

let test_invariant_to_json () =
  Alcotest.(check string) "stable json"
    "{\"emitted\":3,\"delivered\":2,\"duplicates\":1,\"abandoned\":1,\
     \"resurrected\":0,\"pending\":0,\"terminated\":true}"
    (Fault.Invariant.to_json (sample_outcome ()))

(* Watchdog ---------------------------------------------------------------- *)

let test_run_bounded_watchdog () =
  let module Engine = Mmt_sim.Engine in
  (* A self-rescheduling livelock never drains; the budget must trip. *)
  let engine = Engine.create () in
  let rec tick () =
    ignore (Engine.schedule_after engine ~delay:(us 1.) tick)
  in
  tick ();
  Alcotest.(check bool) "livelock trips the budget" false
    (Engine.run_bounded engine ~until:(ms 10.) ~budget:1000);
  (* An honest run under budget terminates and matches [run ~until]. *)
  let finite = Engine.create () in
  let fired = ref 0 in
  for i = 1 to 5 do
    ignore
      (Engine.schedule finite
         ~at:(us (float_of_int i))
         (fun () -> incr fired))
  done;
  Alcotest.(check bool) "finite run terminates" true
    (Engine.run_bounded finite ~until:(ms 1.) ~budget:1_000_000);
  Alcotest.(check int) "all events ran" 5 !fired;
  Alcotest.(check bool) "clock pinned to the cap" true
    (Units.Time.equal (Engine.now finite) (ms 1.))

(* Generator --------------------------------------------------------------- *)

let pilot_universe () = C.campaign_universe (C.campaign_trial ())

let test_generator_deterministic () =
  let u = pilot_universe () in
  let p1, plan1 = Fault.Generator.generate u ~seed:0xFEEDL in
  let p2, plan2 = Fault.Generator.generate u ~seed:0xFEEDL in
  Alcotest.(check bool) "profile equal" true (p1 = p2);
  Alcotest.(check string) "plan equal" (Fault.Plan.describe plan1)
    (Fault.Plan.describe plan2)

let test_generator_validity () =
  let u = pilot_universe () in
  let horizon = Units.Time.to_ns u.Fault.Generator.horizon in
  for seed = 0 to 199 do
    let profile, plan =
      Fault.Generator.generate u ~seed:(Int64.of_int seed)
    in
    let events = Fault.Plan.events plan in
    Alcotest.(check bool) "non-empty" true (events <> []);
    List.iter
      (fun (e : Fault.Plan.event) ->
        if Units.Time.to_ns e.Fault.Plan.at > horizon then
          Alcotest.failf "seed %d: event past the horizon" seed;
        match e.Fault.Plan.action with
        | Fault.Plan.Corrupt_headers { bits; probability; _ } ->
            Alcotest.(check bool) "single-bit storms" true (bits = 1);
            Alcotest.(check bool) "probability bounded" true
              (probability <= Fault.Generator.default_config.max_corrupt_probability)
        | Fault.Plan.Blackhole_adverts _ | Fault.Plan.Fail_element "ingress-rewriter"
        | Fault.Plan.Link_down "source->ingress" ->
            Alcotest.(check bool) "emission faults only when degrading" true
              (profile = Fault.Generator.Degrading)
        | _ -> ())
      events;
    (* Every opener has a later closer on the same subject: the last
       event for any subject is a closer, so faults cannot outlive the
       horizon.  Spot-check link liveness. *)
    let final = Hashtbl.create 8 in
    List.iter
      (fun (e : Fault.Plan.event) ->
        match e.Fault.Plan.action with
        | Fault.Plan.Link_down l -> Hashtbl.replace final l false
        | Fault.Plan.Link_up l -> Hashtbl.replace final l true
        | Fault.Plan.Partition ls ->
            List.iter (fun l -> Hashtbl.replace final l false) ls
        | Fault.Plan.Heal ls ->
            List.iter (fun l -> Hashtbl.replace final l true) ls
        | _ -> ())
      events;
    Hashtbl.iter
      (fun l up -> if not up then Alcotest.failf "seed %d: %s left down" seed l)
      final
  done

let test_generator_lossy_only_universe () =
  (* No degrading subjects on offer (the facility shape): the profile
     is pinned to lossy. *)
  let u = Mmt_facility.Chaos.universe Mmt_facility.Chaos.default in
  for seed = 0 to 49 do
    let profile, _ = Fault.Generator.generate u ~seed:(Int64.of_int seed) in
    Alcotest.(check bool) "lossy" true (profile = Fault.Generator.Lossy)
  done

let test_generator_rejects_hopeless_universe () =
  Alcotest.check_raises "no families"
    (Invalid_argument "Fault.Generator: universe offers no fault family")
    (fun () ->
      ignore
        (Fault.Generator.generate Fault.Generator.empty_universe ~seed:1L))

(* Campaigns --------------------------------------------------------------- *)

let small_target ?defect () = C.campaign_target ~fragment_count:400 ?defect ()

let test_campaign_trial_seeds_stable () =
  let a = Fault.Campaign.trial_seeds ~seed:9L ~trials:5 in
  let b = Fault.Campaign.trial_seeds ~seed:9L ~trials:5 in
  Alcotest.(check (array int64)) "stable schedule" a b;
  (* A prefix property would let corpora survive trial-count changes;
     the schedule is drawn up front, so it holds by construction. *)
  let c = Fault.Campaign.trial_seeds ~seed:9L ~trials:3 in
  Alcotest.(check (array int64)) "prefix" c (Array.sub a 0 3)

let test_campaign_jobs_byte_identical () =
  let target = small_target () in
  let seq = Fault.Campaign.run target ~trials:8 ~seed:0xCA17L in
  let par = Fault.Campaign.run ~jobs:4 target ~trials:8 ~seed:0xCA17L in
  Alcotest.(check string) "reports byte-identical"
    (Fault.Campaign.render ~verbose:true seq)
    (Fault.Campaign.render ~verbose:true par);
  Alcotest.(check bool) "clean" true (Fault.Campaign.all_ok seq)

let test_campaign_detects_planted_defect () =
  (* Broken_restart replays sequence 0 into the application from
     buffer A's restart handler: any plan that restarts buffer-a must
     violate, and only those plans may. *)
  let target = small_target ~defect:C.Broken_restart () in
  let report = Fault.Campaign.run target ~trials:12 ~seed:0xDEFEC7L in
  let restarts_a (t : Fault.Campaign.trial) =
    List.exists
      (fun (e : Fault.Plan.event) ->
        e.Fault.Plan.action = Fault.Plan.Restart_element "buffer-a")
      (Fault.Plan.events t.Fault.Campaign.plan)
  in
  let bad = Fault.Campaign.violating report in
  Alcotest.(check bool) "campaign catches the defect" true (bad <> []);
  Array.iter
    (fun (t : Fault.Campaign.trial) ->
      Alcotest.(check bool)
        (Printf.sprintf "trial %d verdict matches plan" t.Fault.Campaign.index)
        (restarts_a t)
        (t.Fault.Campaign.exec.Fault.Campaign.violations <> []))
    report.Fault.Campaign.results

(* Shrinking --------------------------------------------------------------- *)

let violating_oracle target profile candidate =
  (target.Fault.Campaign.execute profile candidate).Fault.Campaign.violations
  <> []

let test_shrink_converges_to_minimal () =
  let target = small_target ~defect:C.Broken_restart () in
  let plan =
    Fault.Plan.make
      [
        Fault.Plan.event ~at:(us 100.) (Fault.Plan.Link_down "buffer-b->sink");
        Fault.Plan.event ~at:(us 300.) (Fault.Plan.Link_up "buffer-b->sink");
        Fault.Plan.event ~at:(us 200.) (Fault.Plan.Fail_element "buffer-a");
        Fault.Plan.event ~at:(us 500.)
          (Fault.Plan.Restart_element "buffer-a");
        Fault.Plan.event ~at:(us 400.)
          (Fault.Plan.Degrade_rate
             { link = "ingress->buffer-a"; factor = 0.5 });
        Fault.Plan.event ~at:(us 600.)
          (Fault.Plan.Restore_rate "ingress->buffer-a");
      ]
  in
  let violating = violating_oracle target Fault.Generator.Lossy in
  Alcotest.(check bool) "plan violates under the defect" true (violating plan);
  let r1 = Fault.Shrink.run ~violating plan in
  let r2 = Fault.Shrink.run ~violating plan in
  Alcotest.(check int) "minimal: one event" 1
    (Fault.Plan.length r1.Fault.Shrink.plan);
  (match Fault.Plan.events r1.Fault.Shrink.plan with
  | [ e ] ->
      Alcotest.(check bool) "the culprit survives" true
        (e.Fault.Plan.action = Fault.Plan.Restart_element "buffer-a");
      Alcotest.(check bool) "advanced to t=0" true
        (Units.Time.is_zero e.Fault.Plan.at)
  | _ -> Alcotest.fail "expected a single event");
  Alcotest.(check string) "shrink is deterministic"
    (Fault.Plan.describe r1.Fault.Shrink.plan)
    (Fault.Plan.describe r2.Fault.Shrink.plan);
  Alcotest.(check int) "same move sequence" r1.Fault.Shrink.steps
    r2.Fault.Shrink.steps;
  Alcotest.(check int) "same oracle cost" r1.Fault.Shrink.attempts
    r2.Fault.Shrink.attempts

let test_shrink_keeps_progress_on_budget () =
  let target = small_target ~defect:C.Broken_restart () in
  let plan =
    Fault.Plan.make
      [
        Fault.Plan.event ~at:(us 200.) (Fault.Plan.Fail_element "buffer-a");
        Fault.Plan.event ~at:(us 500.)
          (Fault.Plan.Restart_element "buffer-a");
        Fault.Plan.event ~at:(us 100.) (Fault.Plan.Link_down "buffer-b->sink");
        Fault.Plan.event ~at:(us 300.) (Fault.Plan.Link_up "buffer-b->sink");
      ]
  in
  let violating = violating_oracle target Fault.Generator.Lossy in
  let full = Fault.Shrink.run ~violating plan in
  let capped = Fault.Shrink.run ~max_attempts:4 ~violating plan in
  Alcotest.(check bool) "budget bounds the oracle" true
    (capped.Fault.Shrink.attempts <= 4);
  Alcotest.(check bool) "partial progress is kept" true
    (Fault.Plan.length capped.Fault.Shrink.plan
    <= Fault.Plan.length plan);
  Alcotest.(check bool) "full shrink is no larger" true
    (Fault.Plan.length full.Fault.Shrink.plan
    <= Fault.Plan.length capped.Fault.Shrink.plan)

let test_shrink_not_violating_is_identity () =
  let plan =
    Fault.Plan.make
      [ Fault.Plan.event ~at:(us 100.) (Fault.Plan.Link_down "l") ]
  in
  let r = Fault.Shrink.run ~violating:(fun _ -> false) plan in
  Alcotest.(check int) "no steps" 0 r.Fault.Shrink.steps;
  Alcotest.(check string) "unchanged" (Fault.Plan.describe plan)
    (Fault.Plan.describe r.Fault.Shrink.plan)

(* Facility target --------------------------------------------------------- *)

let test_facility_empty_plan_clean () =
  let o = Mmt_facility.Chaos.run Mmt_facility.Chaos.default Fault.Plan.empty in
  Alcotest.(check (list string)) "no violations" [] o.Mmt_facility.Chaos.violations;
  Alcotest.(check int) "no faults" 0 o.Mmt_facility.Chaos.faults_applied;
  Alcotest.(check bool) "emission happened" true (o.Mmt_facility.Chaos.emitted > 0);
  (* Loss is off and no faults ran: every sequenced frame (including
     the tail probes) must land. *)
  Alcotest.(check int) "all delivered" o.Mmt_facility.Chaos.emitted
    o.Mmt_facility.Chaos.delivered

let test_facility_wan_partition_recovers () =
  let o =
    Mmt_facility.Chaos.run Mmt_facility.Chaos.default
      (Fault.Plan.make
         [
           Fault.Plan.event ~at:(ms 2.)
             (Fault.Plan.Partition [ "edge-in->edge-out"; "edge-out->edge-in" ]);
           Fault.Plan.event ~at:(ms 4.)
             (Fault.Plan.Heal [ "edge-in->edge-out"; "edge-out->edge-in" ]);
         ])
  in
  Alcotest.(check int) "both cut events applied" 2
    o.Mmt_facility.Chaos.faults_applied;
  Alcotest.(check (list string)) "invariants survive the cut" []
    o.Mmt_facility.Chaos.violations

(* Regression corpus ------------------------------------------------------- *)

(* `dune runtest` runs from _build/default/test (where the dune deps
   glob stages the corpus); a bare `dune exec test/...` runs from the
   project root. *)
let corpus_path () =
  List.find Sys.file_exists
    [ "chaos_corpus/corpus.txt"; "test/chaos_corpus/corpus.txt" ]

let read_corpus () =
  let ic = open_in (corpus_path ()) in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let rec go acc =
        match input_line ic with
        | exception End_of_file -> List.rev acc
        | line -> (
            let line = String.trim line in
            if line = "" || line.[0] = '#' then go acc
            else
              match String.split_on_char ' ' line with
              | target :: seed :: _ -> go ((target, Int64.of_string seed) :: acc)
              | _ -> failwith ("malformed corpus line: " ^ line))
      in
      go [])

let test_corpus_replays_clean () =
  let entries = read_corpus () in
  Alcotest.(check bool) "corpus is not empty" true (entries <> []);
  let pilot = lazy (small_target ()) in
  let facility = lazy (Mmt_facility.Chaos.campaign_target ()) in
  List.iter
    (fun (name, seed) ->
      let target =
        match name with
        | "pilot" -> Lazy.force pilot
        | "facility" -> Lazy.force facility
        | other -> failwith ("corpus names unknown target: " ^ other)
      in
      let profile, plan =
        Fault.Generator.generate target.Fault.Campaign.universe ~seed
      in
      let exec = target.Fault.Campaign.execute profile plan in
      match exec.Fault.Campaign.violations with
      | [] -> ()
      | vs ->
          Alcotest.failf "corpus seed %s 0x%LX regressed: %s" name seed
            (String.concat "; " vs))
    entries

let suite =
  [
    Alcotest.test_case "plan rejects NaN parameters" `Quick
      test_plan_rejects_nan;
    Alcotest.test_case "plan rejects same-instant conflicts" `Quick
      test_plan_rejects_same_instant_conflicts;
    Alcotest.test_case "plan accepts benign same-instant pairs" `Quick
      test_plan_accepts_benign_same_instant;
    Alcotest.test_case "invariant to_string stable" `Quick
      test_invariant_to_string;
    Alcotest.test_case "invariant to_json stable" `Quick test_invariant_to_json;
    Alcotest.test_case "run_bounded watchdog" `Quick test_run_bounded_watchdog;
    Alcotest.test_case "generator deterministic" `Quick
      test_generator_deterministic;
    Alcotest.test_case "generator plans are valid" `Quick
      test_generator_validity;
    Alcotest.test_case "generator pins lossy-only universes" `Quick
      test_generator_lossy_only_universe;
    Alcotest.test_case "generator rejects hopeless universe" `Quick
      test_generator_rejects_hopeless_universe;
    Alcotest.test_case "trial seed schedule stable" `Quick
      test_campaign_trial_seeds_stable;
    Alcotest.test_case "campaign sequential vs jobs byte-identical" `Slow
      test_campaign_jobs_byte_identical;
    Alcotest.test_case "campaign detects planted defect" `Slow
      test_campaign_detects_planted_defect;
    Alcotest.test_case "shrink converges to the minimal plan" `Slow
      test_shrink_converges_to_minimal;
    Alcotest.test_case "shrink keeps progress on budget" `Slow
      test_shrink_keeps_progress_on_budget;
    Alcotest.test_case "shrink of a passing plan is identity" `Quick
      test_shrink_not_violating_is_identity;
    Alcotest.test_case "facility empty plan is clean" `Slow
      test_facility_empty_plan_clean;
    Alcotest.test_case "facility WAN partition recovers" `Slow
      test_facility_wan_partition_recovers;
    Alcotest.test_case "regression corpus replays clean" `Slow
      test_corpus_replays_clean;
  ]
