(* The in-band telemetry subsystem: stack codec, in-place stamping,
   element realizability, and the pilot integration where the per-hop
   decomposition must telescope to the end-to-end latency. *)
open Mmt_util

let experiment = Mmt.Experiment_id.make ~experiment:2 ~slice:0

let record i =
  {
    Mmt.Header.node_id = i + 1;
    mode_id = 1;
    hop_index = i;
    queue_depth = 512 * (i + 1);
    ingress_ns = Units.Time.us (float_of_int (10 * (i + 1)));
    egress_ns = Units.Time.us (float_of_int (10 * (i + 1) + 2));
  }

(* Codec ------------------------------------------------------------- *)

let test_int_stack_roundtrip () =
  let stack =
    { Mmt.Header.records = List.init 3 record; overflowed = false }
  in
  let header = Mmt.Header.create ~sequence:7 ~experiment ~int_stack:stack () in
  let decoded =
    match Mmt.Header.decode_bytes (Mmt.Header.encode header) with
    | Ok h -> h
    | Error e -> Alcotest.failf "decode: %s" e
  in
  Alcotest.(check bool) "round-trip" true (Mmt.Header.equal header decoded);
  match decoded.Mmt.Header.int_stack with
  | None -> Alcotest.fail "stack lost"
  | Some s ->
      Alcotest.(check int) "records" 3 (List.length s.Mmt.Header.records);
      Alcotest.(check bool) "not overflowed" false s.Mmt.Header.overflowed

let test_int_stack_overflow_flag_roundtrip () =
  let stack =
    {
      Mmt.Header.records = List.init Mmt.Header.max_int_hops record;
      overflowed = true;
    }
  in
  let header = Mmt.Header.create ~experiment ~int_stack:stack () in
  match Mmt.Header.decode_bytes (Mmt.Header.encode header) with
  | Error e -> Alcotest.failf "decode: %s" e
  | Ok h -> (
      match h.Mmt.Header.int_stack with
      | Some s -> Alcotest.(check bool) "E bit survives" true s.Mmt.Header.overflowed
      | None -> Alcotest.fail "stack lost")

let test_int_stack_bad_count_rejected () =
  let header =
    Mmt.Header.create ~experiment ~int_stack:Mmt.Header.empty_int_stack ()
  in
  let frame = Mmt.Header.encode header in
  let off = Option.get (Mmt.Header.offset_of_int header) in
  Bytes.set frame off (Char.chr (Mmt.Header.max_int_hops + 3));
  Alcotest.(check bool) "oversized count rejected" true
    (match Mmt.Header.decode_bytes frame with Error _ -> true | Ok _ -> false)

let test_int_ext_is_fixed_size () =
  let empty =
    Mmt.Header.create ~experiment ~int_stack:Mmt.Header.empty_int_stack ()
  in
  let full =
    Mmt.Header.create ~experiment
      ~int_stack:
        {
          Mmt.Header.records = List.init Mmt.Header.max_int_hops record;
          overflowed = false;
        }
      ()
  in
  Alcotest.(check int) "size independent of fill level" (Mmt.Header.size empty)
    (Mmt.Header.size full);
  Alcotest.(check int) "size = core + ext"
    (Mmt.Header.size (Mmt.Header.create ~experiment ()) + Mmt.Header.int_ext_size)
    (Mmt.Header.size empty)

(* In-place stamping -------------------------------------------------- *)

let push frame ~off i =
  Mmt.Header.push_int_record_in_place frame ~ext_off:off ~node_id:(i + 1)
    ~mode_id:1 ~queue_depth:(64 * i)
    ~ingress:(Units.Time.us (float_of_int (5 * i)))
    ~egress:(Units.Time.us (float_of_int ((5 * i) + 1)))

let test_push_in_place_appends () =
  let header =
    Mmt.Header.create ~experiment ~int_stack:Mmt.Header.empty_int_stack ()
  in
  let frame = Mmt.Header.encode header in
  let off = Option.get (Mmt.Header.offset_of_int header) in
  Alcotest.(check (option int)) "first slot" (Some 0) (push frame ~off 0);
  Alcotest.(check (option int)) "second slot" (Some 1) (push frame ~off 1);
  match Mmt.Header.decode_bytes frame with
  | Error e -> Alcotest.failf "decode after push: %s" e
  | Ok h -> (
      match h.Mmt.Header.int_stack with
      | None -> Alcotest.fail "stack lost"
      | Some s ->
          Alcotest.(check int) "two records" 2 (List.length s.Mmt.Header.records);
          let second = List.nth s.Mmt.Header.records 1 in
          Alcotest.(check int) "node id" 2 second.Mmt.Header.node_id;
          Alcotest.(check int) "hop index" 1 second.Mmt.Header.hop_index;
          Alcotest.(check bool) "no overflow" false s.Mmt.Header.overflowed)

let test_push_in_place_overflow_sets_e_bit () =
  let header =
    Mmt.Header.create ~experiment ~int_stack:Mmt.Header.empty_int_stack ()
  in
  let frame = Mmt.Header.encode header in
  let off = Option.get (Mmt.Header.offset_of_int header) in
  for i = 0 to Mmt.Header.max_int_hops - 1 do
    Alcotest.(check (option int))
      (Printf.sprintf "slot %d" i)
      (Some i) (push frame ~off i)
  done;
  Alcotest.(check (option int)) "full stack refuses" None
    (push frame ~off Mmt.Header.max_int_hops);
  match Mmt.Header.decode_bytes frame with
  | Error e -> Alcotest.failf "decode after overflow: %s" e
  | Ok h -> (
      match h.Mmt.Header.int_stack with
      | None -> Alcotest.fail "stack lost"
      | Some s ->
          Alcotest.(check int) "stack still full" Mmt.Header.max_int_hops
            (List.length s.Mmt.Header.records);
          Alcotest.(check bool) "E bit set" true s.Mmt.Header.overflowed)

(* Realizability (alongside the shipped-element checks) --------------- *)

let test_int_elements_realizable () =
  List.iter
    (fun (name, program) ->
      match Mmt_innet.Op.realizable program with
      | Ok () -> ()
      | Error e -> Alcotest.failf "%s not realizable: %s" name e)
    [
      ("int-stamper", Mmt_int.Stamper.program);
      ("int-sink", Mmt_int.Sink.program);
    ]

let test_int_elements_attachable () =
  (* Switch.attach re-checks realizability; attaching must not raise. *)
  let engine = Mmt_sim.Engine.create () in
  let topo = Mmt_sim.Topology.create ~engine () in
  let node = Mmt_sim.Topology.add_node topo ~name:"sw" in
  let stamper = Mmt_int.Stamper.create ~node_id:1 ~mode_id:1 () in
  let sink = Mmt_int.Sink.create ~node_id:2 ~emit:ignore () in
  let _sw =
    Mmt_innet.Switch.attach ~engine ~node ~profile:Mmt_innet.Switch.tofino2
      ~elements:[ Mmt_int.Stamper.element stamper; Mmt_int.Sink.element sink ]
      ~route:(fun _ -> None)
      ()
  in
  ()

(* Digest arithmetic -------------------------------------------------- *)

let test_digest_telescopes () =
  let digest =
    {
      Mmt_int.Digest.experiment;
      sequence = Some 9;
      records = List.init 3 record;
      overflowed = false;
      sink_node = 7;
      sink_at = Units.Time.us 40.;
    }
  in
  let covered = Option.get (Mmt_int.Digest.covered_span digest) in
  let pieces = Option.get (Mmt_int.Digest.segment_sum digest) in
  Alcotest.(check int) "telescoping sum is exact"
    (Units.Time.to_ns covered) (Units.Time.to_ns pieces);
  Alcotest.(check int) "covered = sink - first ingress"
    (Units.Time.to_ns (Units.Time.us 40.) - Units.Time.to_ns (Units.Time.us 10.))
    (Units.Time.to_ns covered)

(* Pilot integration -------------------------------------------------- *)

let lossless_int_config ?profile () =
  {
    Mmt_pilot.Pilot.default_config with
    Mmt_pilot.Pilot.fragment_count = 200;
    wan_loss = 0.;
    wan_corrupt = 0.;
    int_telemetry = true;
    profile =
      Option.value ~default:Mmt_pilot.Pilot.default_config.Mmt_pilot.Pilot.profile
        profile;
    payload = Mmt_daq.Workload.Synthetic (Units.Size.bytes 1024);
  }

let test_pilot_int_consistency () =
  let pilot = Mmt_pilot.Pilot.build (lossless_int_config ()) in
  Mmt_pilot.Pilot.run pilot;
  let r = Mmt_pilot.Pilot.results pilot in
  let receiver = r.Mmt_pilot.Pilot.receiver in
  Alcotest.(check int) "all delivered" 200 receiver.Mmt.Receiver.delivered;
  let collector =
    match Mmt_pilot.Pilot.int_collector pilot with
    | Some c -> c
    | None -> Alcotest.fail "collector missing with int_telemetry on"
  in
  let stats = Mmt_int.Collector.stats collector in
  Alcotest.(check int) "one digest per delivered fragment" 200
    stats.Mmt_int.Collector.digests;
  Alcotest.(check int) "no overflow on the 2-stamper path" 0
    stats.Mmt_int.Collector.overflowed;
  Alcotest.(check int) "no empty stacks" 0 stats.Mmt_int.Collector.empty;
  (* Every data packet was stamped at both programmable devices. *)
  Alcotest.(check int) "dtn1 stamps" 200 (Mmt_int.Collector.hop_stamps collector 1);
  Alcotest.(check int) "tofino stamps" 200 (Mmt_int.Collector.hop_stamps collector 2);
  (* The acceptance invariant: per-segment sums equal the end-to-end
     covered span, exactly, for every packet. *)
  Alcotest.(check int) "zero telescoping drift" 0
    (Mmt_int.Collector.max_inconsistency_ns collector);
  (* Residency medians are the device pipeline latencies. *)
  let p = Mmt_pilot.Pilot.default_config.Mmt_pilot.Pilot.profile in
  let median id =
    int_of_float
      (Stats.Summary.median (Option.get (Mmt_int.Collector.hop_residency collector id)))
  in
  Alcotest.(check int) "dtn1 residency = NIC pipeline"
    (Units.Time.to_ns p.Mmt_pilot.Profile.nic.Mmt_innet.Switch.pipeline_latency)
    (median 1);
  Alcotest.(check int) "tofino residency = switch pipeline"
    (Units.Time.to_ns p.Mmt_pilot.Profile.switch.Mmt_innet.Switch.pipeline_latency)
    (median 2);
  (* The collector's covered end-to-end agrees with the receiver's
     independently measured transport latency: the uncovered pieces
     (sensor -> DTN1 leg, final host overhead) are well under 1 ms. *)
  let receiver_mean =
    (* the receiver's summary is in seconds; the collector's in ns *)
    Stats.Summary.mean (Mmt.Receiver.latency_summary (Mmt_pilot.Pilot.receiver pilot))
    *. 1e9
  in
  let covered_mean = Stats.Summary.mean (Mmt_int.Collector.e2e collector) in
  Alcotest.(check bool) "covered span below transport latency" true
    (covered_mean < receiver_mean);
  Alcotest.(check bool) "uncovered remainder under 1 ms" true
    (receiver_mean -. covered_mean < 1e6);
  (* Sink accounting and report health. *)
  (match Mmt_pilot.Pilot.int_sink_stats pilot with
  | None -> Alcotest.fail "sink stats missing"
  | Some s -> Alcotest.(check int) "sink stripped every stack" 200 s.Mmt_int.Sink.stripped);
  Alcotest.(check bool) "report all ok" true
    (Mmt_telemetry.Report.all_ok (Mmt_int.Collector.report collector))

let test_pilot_int_strips_before_endpoint () =
  (* The receiver sees no Int_telemetry feature: the sink stripped it. *)
  let pilot = Mmt_pilot.Pilot.build (lossless_int_config ()) in
  Mmt_pilot.Pilot.run pilot;
  let stampers = Mmt_pilot.Pilot.int_stamper_stats pilot in
  Alcotest.(check int) "two stampers" 2 (List.length stampers);
  List.iter
    (fun (name, (s : Mmt_int.Stamper.stats)) ->
      Alcotest.(check int) (name ^ " stamped every data packet") 200
        s.Mmt_int.Stamper.stamped;
      Alcotest.(check int) (name ^ " no overflow") 0 s.Mmt_int.Stamper.overflowed)
    stampers

let test_pilot_int_off_is_inert () =
  let config = { (lossless_int_config ()) with Mmt_pilot.Pilot.int_telemetry = false } in
  let pilot = Mmt_pilot.Pilot.build config in
  Mmt_pilot.Pilot.run pilot;
  let r = Mmt_pilot.Pilot.results pilot in
  Alcotest.(check int) "all delivered" 200
    r.Mmt_pilot.Pilot.receiver.Mmt.Receiver.delivered;
  Alcotest.(check bool) "no collector" true
    (Mmt_pilot.Pilot.int_collector pilot = None);
  Alcotest.(check bool) "no stamper stats" true
    (Mmt_pilot.Pilot.int_stamper_stats pilot = [])

let test_pilot_int_fabric_profile () =
  let pilot =
    Mmt_pilot.Pilot.build
      (lossless_int_config ~profile:Mmt_pilot.Profile.fabric_virtual ())
  in
  Mmt_pilot.Pilot.run pilot;
  let collector = Option.get (Mmt_pilot.Pilot.int_collector pilot) in
  Alcotest.(check int) "zero drift on fabric too" 0
    (Mmt_int.Collector.max_inconsistency_ns collector);
  let median id =
    int_of_float
      (Stats.Summary.median (Option.get (Mmt_int.Collector.hop_residency collector id)))
  in
  Alcotest.(check int) "software-switch residency"
    (Units.Time.to_ns Mmt_innet.Switch.software_switch.Mmt_innet.Switch.pipeline_latency)
    (median 2)

let suite =
  [
    Alcotest.test_case "stack round-trip" `Quick test_int_stack_roundtrip;
    Alcotest.test_case "overflow flag round-trip" `Quick
      test_int_stack_overflow_flag_roundtrip;
    Alcotest.test_case "bad count rejected" `Quick test_int_stack_bad_count_rejected;
    Alcotest.test_case "fixed-size extension" `Quick test_int_ext_is_fixed_size;
    Alcotest.test_case "push in place appends" `Quick test_push_in_place_appends;
    Alcotest.test_case "push overflow sets E bit" `Quick
      test_push_in_place_overflow_sets_e_bit;
    Alcotest.test_case "stamper/sink realizable" `Quick test_int_elements_realizable;
    Alcotest.test_case "stamper/sink attachable" `Quick test_int_elements_attachable;
    Alcotest.test_case "digest telescopes" `Quick test_digest_telescopes;
    Alcotest.test_case "pilot INT consistency" `Quick test_pilot_int_consistency;
    Alcotest.test_case "pilot INT stamper accounting" `Quick
      test_pilot_int_strips_before_endpoint;
    Alcotest.test_case "pilot INT off is inert" `Quick test_pilot_int_off_is_inert;
    Alcotest.test_case "pilot INT fabric profile" `Quick test_pilot_int_fabric_profile;
  ]
