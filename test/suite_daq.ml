(* Experiment catalog, LArTPC synthesis, fragments, workloads, event builder. *)
open Mmt_util

(* Catalog (Table 1) ------------------------------------------------------- *)

let test_catalog_matches_table1 () =
  let check kind gbps =
    let e = Mmt_daq.Experiment.find kind in
    Alcotest.(check bool)
      (e.Mmt_daq.Experiment.name ^ " rate")
      true
      (Float.abs (Units.Rate.to_gbps e.Mmt_daq.Experiment.daq_rate -. gbps) < 1e-6)
  in
  check Mmt_daq.Experiment.Cms_l1_trigger 63_000.;
  check Mmt_daq.Experiment.Dune 120_000.;
  check Mmt_daq.Experiment.Ecce_detector 100_000.;
  check Mmt_daq.Experiment.Mu2e 160.;
  check Mmt_daq.Experiment.Vera_rubin 400.

let test_catalog_ids_distinct () =
  let ids =
    List.map
      (fun e -> Mmt.Experiment_id.experiment e.Mmt_daq.Experiment.id)
      Mmt_daq.Experiment.all
  in
  Alcotest.(check int) "distinct" (List.length Mmt_daq.Experiment.all)
    (List.length (List.sort_uniq compare ids))

let test_find_by_name () =
  Alcotest.(check bool) "case-insensitive" true
    (Option.is_some (Mmt_daq.Experiment.find_by_name "dune"));
  Alcotest.(check bool) "unknown" true
    (Mmt_daq.Experiment.find_by_name "LIGO" = None)

let test_scaled_rate_and_message_rate () =
  let dune = Mmt_daq.Experiment.find Mmt_daq.Experiment.Dune in
  let scaled = Mmt_daq.Experiment.scaled_rate dune ~scale:1e-6 in
  Alcotest.(check bool) "120 Mbps at 1e-6" true
    (Float.abs (Units.Rate.to_bps scaled -. 120e6) < 1.);
  let mps = Mmt_daq.Experiment.messages_per_second dune ~scale:1e-6 in
  (* 120e6 bps / (7200*8) bits. *)
  Alcotest.(check bool) "messages per second" true (Float.abs (mps -. 2083.33) < 1.)

let test_vera_rubin_alert_stream () =
  let vr = Mmt_daq.Experiment.find Mmt_daq.Experiment.Vera_rubin in
  match vr.Mmt_daq.Experiment.alert_stream with
  | Some rate ->
      Alcotest.(check bool) "5.4 Gbps" true
        (Float.abs (Units.Rate.to_gbps rate -. 5.4) < 1e-9)
  | None -> Alcotest.fail "Vera Rubin must have an alert stream"

(* LArTPC -------------------------------------------------------------------- *)

let config = Mmt_daq.Lartpc.iceberg

let test_waveform_shape () =
  let rng = Rng.create ~seed:1L in
  let w = Mmt_daq.Lartpc.generate_waveform config rng ~activity:Mmt_daq.Lartpc.Quiet in
  Alcotest.(check int) "length" config.Mmt_daq.Lartpc.samples_per_channel (Array.length w);
  Array.iter
    (fun s ->
      Alcotest.(check bool) "within ADC range" true
        (s >= 0 && s <= config.Mmt_daq.Lartpc.adc_max))
    w

let test_quiet_waveform_near_pedestal () =
  let rng = Rng.create ~seed:2L in
  let w = Mmt_daq.Lartpc.generate_waveform config rng ~activity:Mmt_daq.Lartpc.Quiet in
  let acc = Stats.Welford.create () in
  Array.iter (fun s -> Stats.Welford.add acc (float_of_int s)) w;
  Alcotest.(check bool) "mean near pedestal" true
    (Float.abs (Stats.Welford.mean acc -. float_of_int config.Mmt_daq.Lartpc.pedestal) < 5.)

let test_activity_scales_hits () =
  let count_hits activity seed =
    let rng = Rng.create ~seed in
    let window = Mmt_daq.Lartpc.generate_window config rng ~activity in
    Array.to_list window
    |> List.mapi (fun channel w ->
           List.length (Mmt_daq.Lartpc.trigger_primitives config ~threshold:15 ~channel w))
    |> List.fold_left ( + ) 0
  in
  let quiet = count_hits Mmt_daq.Lartpc.Quiet 3L in
  let burst = count_hits Mmt_daq.Lartpc.Supernova_burst 3L in
  Alcotest.(check bool) "supernova much busier than quiet" true (burst > 4 * max 1 quiet)

let test_zero_suppress_keeps_pulses () =
  let rng = Rng.create ~seed:4L in
  let w = Mmt_daq.Lartpc.generate_waveform config rng ~activity:Mmt_daq.Lartpc.Beam_event in
  let regions = Mmt_daq.Lartpc.zero_suppress config ~threshold:15 w in
  List.iter
    (fun (start, samples) ->
      Alcotest.(check bool) "region in range" true
        (start >= 0 && start + Array.length samples <= Array.length w);
      (* every kept region contains at least one above-threshold sample *)
      Alcotest.(check bool) "region has signal" true
        (Array.exists
           (fun s -> s > config.Mmt_daq.Lartpc.pedestal + 15)
           samples))
    regions

let test_zero_suppress_quiet_is_small () =
  let rng = Rng.create ~seed:5L in
  let w = Mmt_daq.Lartpc.generate_waveform config rng ~activity:Mmt_daq.Lartpc.Quiet in
  let regions = Mmt_daq.Lartpc.zero_suppress config ~threshold:20 w in
  let kept = List.fold_left (fun acc (_s, a) -> acc + Array.length a) 0 regions in
  Alcotest.(check bool) "keeps <10% of quiet window" true
    (kept < Array.length w / 10)

let test_trigger_primitives_fields () =
  let rng = Rng.create ~seed:6L in
  let w =
    Mmt_daq.Lartpc.generate_waveform config rng ~activity:Mmt_daq.Lartpc.Supernova_burst
  in
  let hits = Mmt_daq.Lartpc.trigger_primitives config ~threshold:15 ~channel:7 w in
  List.iter
    (fun (h : Mmt_daq.Lartpc.hit) ->
      Alcotest.(check int) "channel" 7 h.Mmt_daq.Lartpc.channel;
      Alcotest.(check bool) "tot positive" true (h.Mmt_daq.Lartpc.time_over_threshold > 0);
      Alcotest.(check bool) "peak above threshold" true (h.Mmt_daq.Lartpc.peak_adc > 15);
      Alcotest.(check bool) "sum >= peak" true
        (h.Mmt_daq.Lartpc.sum_adc >= h.Mmt_daq.Lartpc.peak_adc))
    hits

let test_window_serialization_roundtrip () =
  let rng = Rng.create ~seed:7L in
  let small = { config with Mmt_daq.Lartpc.channels = 4; samples_per_channel = 16 } in
  let window = Mmt_daq.Lartpc.generate_window small rng ~activity:Mmt_daq.Lartpc.Cosmic in
  let buf = Mmt_daq.Lartpc.serialize_window window in
  Alcotest.(check int) "size" (2 * 4 * 16) (Bytes.length buf);
  match Mmt_daq.Lartpc.deserialize_window ~channels:4 ~samples_per_channel:16 buf with
  | Some decoded -> Alcotest.(check bool) "roundtrip" true (decoded = window)
  | None -> Alcotest.fail "expected decode"

let test_hits_serialization_roundtrip () =
  let hits =
    [
      { Mmt_daq.Lartpc.channel = 1; start_tick = 10; time_over_threshold = 3; peak_adc = 50; sum_adc = 120 };
      { Mmt_daq.Lartpc.channel = 63; start_tick = 500; time_over_threshold = 12; peak_adc = 250; sum_adc = 2000 };
    ]
  in
  match Mmt_daq.Lartpc.deserialize_hits (Mmt_daq.Lartpc.serialize_hits hits) with
  | Some decoded -> Alcotest.(check bool) "roundtrip" true (decoded = hits)
  | None -> Alcotest.fail "expected decode"

let test_compression_ratio_sane () =
  let rng = Rng.create ~seed:8L in
  let window = Mmt_daq.Lartpc.generate_window config rng ~activity:Mmt_daq.Lartpc.Cosmic in
  let ratio = Mmt_daq.Lartpc.compression_ratio config ~threshold:15 window in
  Alcotest.(check bool) "zero suppression compresses" true (ratio > 2.)

(* Photon detection system ------------------------------------------------- *)

let pds = Mmt_daq.Photon.dune_pds

let test_photon_dark_window_quiet () =
  let rng = Rng.create ~seed:21L in
  let w = Mmt_daq.Photon.generate pds rng ~photons:0 in
  Alcotest.(check int) "length" pds.Mmt_daq.Photon.samples (Array.length w);
  (* A dark window's estimate is a handful of dark counts at most. *)
  Alcotest.(check bool) "few photons" true
    (Mmt_daq.Photon.estimate_photons pds w < 5)

let test_photon_estimate_tracks_flash () =
  let rng = Rng.create ~seed:22L in
  let estimate photons =
    let acc = Stats.Welford.create () in
    for _ = 1 to 20 do
      Stats.Welford.add acc
        (float_of_int
           (Mmt_daq.Photon.estimate_photons pds
              (Mmt_daq.Photon.generate pds rng ~photons)))
    done;
    Stats.Welford.mean acc
  in
  let small = estimate 20 in
  let large = estimate 200 in
  (* The above-cut integral truncates pulse tails, so the estimator
     reads low but stays roughly linear in the collected light. *)
  Alcotest.(check bool) "small flash visible" true (small > 5. && small < 30.);
  Alcotest.(check bool) "large flash visible" true (large > 80. && large < 260.);
  Alcotest.(check bool) "roughly linear (x10 light in [5x, 20x])" true
    (large > 5. *. small && large < 20. *. small)

let test_photon_serialization_roundtrip () =
  let rng = Rng.create ~seed:23L in
  let w = Mmt_daq.Photon.generate pds rng ~photons:30 in
  match Mmt_daq.Photon.deserialize ~samples:pds.Mmt_daq.Photon.samples
          (Mmt_daq.Photon.serialize w)
  with
  | Some decoded -> Alcotest.(check bool) "roundtrip" true (decoded = w)
  | None -> Alcotest.fail "expected decode"

let test_photon_workload_payload () =
  let engine = Mmt_sim.Engine.create () in
  let rng = Rng.create ~seed:24L in
  let small_pds = { pds with Mmt_daq.Photon.samples = 64; sipms = 8 } in
  let config =
    {
      Mmt_daq.Workload.experiment = Mmt_daq.Experiment.find Mmt_daq.Experiment.Dune;
      scale = 1e-6;
      profile = Mmt_daq.Workload.Steady;
      payload = Mmt_daq.Workload.Photon_flash (small_pds, 40);
      run = 1;
      slice = 3;
    }
  in
  let fragments = ref [] in
  let _w =
    Mmt_daq.Workload.start ~engine ~rng config
      ~emit:(fun f -> fragments := f :: !fragments)
      ~until:(Units.Time.ms 20.)
  in
  Mmt_sim.Engine.run engine;
  Alcotest.(check bool) "emitted" true (!fragments <> []);
  List.iter
    (fun f ->
      (match f.Mmt_daq.Fragment.detector with
      | Mmt_daq.Fragment.Photon_detector { sipm_count; _ } ->
          Alcotest.(check int) "sipm count" 8 sipm_count
      | _ -> Alcotest.fail "expected photon subheader");
      Alcotest.(check int) "payload size" (2 * 64)
        (Bytes.length f.Mmt_daq.Fragment.payload))
    !fragments

(* Fragments -------------------------------------------------------------------- *)

let experiment_id = Mmt.Experiment_id.make ~experiment:2 ~slice:3

let fragment detector payload =
  {
    Mmt_daq.Fragment.run = 42;
    trigger = 1337;
    timestamp = Units.Time.us 123.;
    experiment = experiment_id;
    detector;
    payload;
  }

let detectors =
  [
    Mmt_daq.Fragment.Wib_ethernet
      { crate = 1; slot = 2; fiber = 3; first_channel = 0; channel_count = 64 };
    Mmt_daq.Fragment.Photon_detector { module_id = 9; sipm_count = 48; gain = 1_000_000 };
    Mmt_daq.Fragment.Beam_instrument { device = 7; sample_rate_khz = 2000; adc_bits = 14 };
    Mmt_daq.Fragment.Telescope_alert
      { alert_id = 555; ra_udeg = 0x123456; dec_udeg = 0x0ABCDE; severity = 9 };
  ]

let test_fragment_roundtrip_all_detectors () =
  List.iter
    (fun detector ->
      let f = fragment detector (Bytes.of_string "DATA") in
      match Mmt_daq.Fragment.decode (Mmt_daq.Fragment.encode f) with
      | Ok decoded ->
          Alcotest.(check bool) "roundtrip" true (Mmt_daq.Fragment.equal f decoded)
      | Error e -> Alcotest.fail e)
    detectors

let test_fragment_sizes () =
  let f = fragment (List.hd detectors) (Bytes.make 100 'x') in
  Alcotest.(check int) "total size" (28 + 12 + 100) (Mmt_daq.Fragment.total_size f);
  Alcotest.(check int) "encoded size" (Mmt_daq.Fragment.total_size f)
    (Bytes.length (Mmt_daq.Fragment.encode f))

let test_fragment_bad_magic () =
  let raw = Mmt_daq.Fragment.encode (fragment (List.hd detectors) Bytes.empty) in
  Bytes.set raw 0 '\x00';
  Alcotest.(check bool) "bad magic" true
    (match Mmt_daq.Fragment.decode raw with Error _ -> true | Ok _ -> false)

let test_fragment_truncated_payload () =
  let raw = Mmt_daq.Fragment.encode (fragment (List.hd detectors) (Bytes.make 50 'x')) in
  let cut = Bytes.sub raw 0 (Bytes.length raw - 10) in
  Alcotest.(check bool) "truncated" true
    (match Mmt_daq.Fragment.decode cut with Error _ -> true | Ok _ -> false)

let test_fragment_slice_in_experiment_id () =
  let f = fragment (List.hd detectors) Bytes.empty in
  match Mmt_daq.Fragment.decode (Mmt_daq.Fragment.encode f) with
  | Ok decoded ->
      Alcotest.(check int) "slice preserved" 3
        (Mmt.Experiment_id.slice decoded.Mmt_daq.Fragment.experiment)
  | Error e -> Alcotest.fail e

(* Workload ----------------------------------------------------------------------- *)

let workload_config ?(profile = Mmt_daq.Workload.Steady) ?(scale = 1e-6) () =
  {
    Mmt_daq.Workload.experiment = Mmt_daq.Experiment.find Mmt_daq.Experiment.Dune;
    scale;
    profile;
    payload = Mmt_daq.Workload.Synthetic (Units.Size.bytes 7200);
    run = 1;
    slice = 2;
  }

let run_workload ?profile ?scale ~until () =
  let engine = Mmt_sim.Engine.create () in
  let rng = Rng.create ~seed:11L in
  let fragments = ref [] in
  let w =
    Mmt_daq.Workload.start ~engine ~rng
      (workload_config ?profile ?scale ())
      ~emit:(fun f -> fragments := f :: !fragments)
      ~until
  in
  Mmt_sim.Engine.run engine;
  (w, List.rev !fragments)

let test_steady_rate_matches_catalog () =
  let until = Units.Time.seconds 1. in
  let w, fragments = run_workload ~until () in
  let stats = Mmt_daq.Workload.stats w in
  Alcotest.(check int) "emitted = list" (List.length fragments)
    stats.Mmt_daq.Workload.fragments_emitted;
  let rate = Mmt_daq.Workload.offered_rate w ~over:until in
  (* DUNE at 1e-6 = 120 Mbps. *)
  Alcotest.(check bool) "offered rate within 2% of scaled catalog" true
    (Float.abs ((Units.Rate.to_bps rate /. 120e6) -. 1.) < 0.02)

let test_fragments_well_formed () =
  let _w, fragments = run_workload ~until:(Units.Time.ms 50.) () in
  Alcotest.(check bool) "non-empty" true (fragments <> []);
  List.iteri
    (fun i f ->
      Alcotest.(check int) "monotone trigger" i f.Mmt_daq.Fragment.trigger;
      Alcotest.(check int) "slice" 2 (Mmt.Experiment_id.slice f.Mmt_daq.Fragment.experiment))
    fragments

let test_supernova_burst_raises_rate () =
  let profile =
    Mmt_daq.Workload.Supernova
      { onset = Units.Time.ms 100.; duration = Units.Time.ms 100.; multiplier = 5. }
  in
  let _w, fragments = run_workload ~profile ~until:(Units.Time.ms 300.) () in
  let count_in lo hi =
    List.length
      (List.filter
         (fun f ->
           Units.Time.(f.Mmt_daq.Fragment.timestamp >= Units.Time.ms lo)
           && Units.Time.(f.Mmt_daq.Fragment.timestamp < Units.Time.ms hi))
         fragments)
  in
  let before = count_in 0. 100. in
  let during = count_in 100. 200. in
  Alcotest.(check bool) "burst is ~5x baseline" true
    (during > 3 * before && during < 8 * max 1 before)

let test_poisson_events_bursts () =
  let profile =
    Mmt_daq.Workload.Poisson_events { mean_rate_hz = 50.; fragments_per_event = 4 }
  in
  let w, fragments = run_workload ~profile ~until:(Units.Time.seconds 1.) () in
  let stats = Mmt_daq.Workload.stats w in
  Alcotest.(check int) "fragments = 4 x events"
    (4 * stats.Mmt_daq.Workload.events)
    (List.length fragments);
  Alcotest.(check bool) "roughly 50 events" true
    (stats.Mmt_daq.Workload.events > 25 && stats.Mmt_daq.Workload.events < 90)

let test_periodic_trigger_duty_cycle () =
  let profile =
    Mmt_daq.Workload.Periodic_trigger { window = Units.Time.ms 10.; duty = 0.2 }
  in
  let _w, fragments = run_workload ~profile ~until:(Units.Time.ms 100.) () in
  (* All fragments must sit inside the first 20% of their window. *)
  List.iter
    (fun f ->
      let ns = Units.Time.to_ns f.Mmt_daq.Fragment.timestamp in
      let in_window = ns mod 10_000_000 in
      Alcotest.(check bool) "inside duty window" true (in_window <= 2_100_000))
    fragments

let test_replay_profile_exact () =
  let engine = Mmt_sim.Engine.create () in
  let rng = Rng.create ~seed:31L in
  let records =
    [ (Units.Time.ms 1., 100); (Units.Time.ms 3., 200); (Units.Time.ms 7., 300) ]
  in
  let config =
    { (workload_config ()) with Mmt_daq.Workload.profile = Mmt_daq.Workload.Replay records }
  in
  let got = ref [] in
  let _w =
    Mmt_daq.Workload.start ~engine ~rng config
      ~emit:(fun f ->
        got := (f.Mmt_daq.Fragment.timestamp, Bytes.length f.Mmt_daq.Fragment.payload) :: !got)
      ~until:(Units.Time.ms 5.)
  in
  Mmt_sim.Engine.run engine;
  (* The 7 ms record is beyond [until]. *)
  Alcotest.(check (list (pair string int))) "replayed exactly"
    [ ("1ms", 100); ("3ms", 200) ]
    (List.rev_map (fun (t, n) -> (Units.Time.to_string t, n)) !got)

let test_synthesize_capture_shape () =
  let rng = Rng.create ~seed:32L in
  let dune = Mmt_daq.Experiment.find Mmt_daq.Experiment.Dune in
  let capture =
    Mmt_daq.Workload.synthesize_capture ~rng ~experiment:dune ~scale:1e-6
      ~duration:(Units.Time.ms 100.)
  in
  Alcotest.(check bool) "plausible count" true
    (let n = List.length capture in
     n > 150 && n < 260);
  let sorted = List.sort (fun (a, _) (b, _) -> Units.Time.compare a b) capture in
  Alcotest.(check bool) "time-ordered" true (sorted = capture);
  List.iter
    (fun (_, size) ->
      Alcotest.(check bool) "size near catalog" true (size > 6800 && size < 7600))
    capture;
  (* Replaying the capture reproduces its offered load. *)
  let engine = Mmt_sim.Engine.create () in
  let bytes = ref 0 in
  let config =
    { (workload_config ()) with Mmt_daq.Workload.profile = Mmt_daq.Workload.Replay capture }
  in
  let _w =
    Mmt_daq.Workload.start ~engine ~rng config
      ~emit:(fun f -> bytes := !bytes + Bytes.length f.Mmt_daq.Fragment.payload)
      ~until:(Units.Time.ms 100.)
  in
  Mmt_sim.Engine.run engine;
  let rate = float_of_int (!bytes * 8) /. 0.1 in
  Alcotest.(check bool) "offered load within 10% of scaled DUNE" true
    (Float.abs ((rate /. 120e6) -. 1.) < 0.1)

let test_workload_stop () =
  let engine = Mmt_sim.Engine.create () in
  let rng = Rng.create ~seed:12L in
  let count = ref 0 in
  let w =
    Mmt_daq.Workload.start ~engine ~rng (workload_config ())
      ~emit:(fun _ -> incr count)
      ~until:(Units.Time.seconds 10.)
  in
  ignore
    (Mmt_sim.Engine.schedule engine ~at:(Units.Time.ms 1.) (fun () ->
         Mmt_daq.Workload.stop w));
  Mmt_sim.Engine.run engine;
  let after_stop = !count in
  Alcotest.(check bool) "stopped early" true
    (after_stop < 5000 && Units.Time.(Mmt_sim.Engine.now engine < Units.Time.seconds 10.))

let test_workload_validation () =
  let engine = Mmt_sim.Engine.create () in
  let rng = Rng.create ~seed:1L in
  Alcotest.(check bool) "bad scale" true
    (match
       Mmt_daq.Workload.start ~engine ~rng (workload_config ~scale:0. ())
         ~emit:ignore ~until:Units.Time.zero
     with
    | _ -> false
    | exception Invalid_argument _ -> true)

(* Event builder -------------------------------------------------------------------- *)

let eb_fragment ~trigger ~slice =
  {
    Mmt_daq.Fragment.run = 1;
    trigger;
    timestamp = Units.Time.zero;
    experiment = Mmt.Experiment_id.make ~experiment:2 ~slice;
    detector =
      Mmt_daq.Fragment.Wib_ethernet
        { crate = 0; slot = slice; fiber = 0; first_channel = 0; channel_count = 8 };
    payload = Bytes.empty;
  }

let test_event_builder_completes () =
  let eb = Mmt_daq.Event_builder.create ~slices:[ 0; 1; 2 ] ~timeout:(Units.Time.ms 10.) in
  let now = Units.Time.zero in
  Alcotest.(check bool) "pending" true
    (Mmt_daq.Event_builder.add eb ~now (eb_fragment ~trigger:5 ~slice:0) = None);
  Alcotest.(check bool) "pending" true
    (Mmt_daq.Event_builder.add eb ~now (eb_fragment ~trigger:5 ~slice:2) = None);
  (match Mmt_daq.Event_builder.add eb ~now (eb_fragment ~trigger:5 ~slice:1) with
  | Some event ->
      Alcotest.(check int) "trigger" 5 event.Mmt_daq.Event_builder.trigger;
      Alcotest.(check int) "all slices" 3 (List.length event.Mmt_daq.Event_builder.fragments);
      (* fragments come back in slice order *)
      let slices =
        List.map
          (fun f -> Mmt.Experiment_id.slice f.Mmt_daq.Fragment.experiment)
          event.Mmt_daq.Event_builder.fragments
      in
      Alcotest.(check (list int)) "slice order" [ 0; 1; 2 ] slices
  | None -> Alcotest.fail "expected completion");
  let stats = Mmt_daq.Event_builder.stats eb in
  Alcotest.(check int) "complete" 1 stats.Mmt_daq.Event_builder.complete;
  Alcotest.(check int) "pending drained" 0 stats.Mmt_daq.Event_builder.pending

let test_event_builder_duplicates () =
  let eb = Mmt_daq.Event_builder.create ~slices:[ 0; 1 ] ~timeout:(Units.Time.ms 10.) in
  let now = Units.Time.zero in
  ignore (Mmt_daq.Event_builder.add eb ~now (eb_fragment ~trigger:1 ~slice:0));
  ignore (Mmt_daq.Event_builder.add eb ~now (eb_fragment ~trigger:1 ~slice:0));
  Alcotest.(check int) "duplicate counted" 1
    (Mmt_daq.Event_builder.stats eb).Mmt_daq.Event_builder.duplicates

let test_event_builder_timeout () =
  let eb = Mmt_daq.Event_builder.create ~slices:[ 0; 1 ] ~timeout:(Units.Time.ms 10.) in
  ignore (Mmt_daq.Event_builder.add eb ~now:Units.Time.zero (eb_fragment ~trigger:1 ~slice:0));
  Alcotest.(check int) "nothing stale yet" 0
    (Mmt_daq.Event_builder.sweep eb ~now:(Units.Time.ms 5.));
  Alcotest.(check int) "timed out" 1 (Mmt_daq.Event_builder.sweep eb ~now:(Units.Time.ms 20.));
  let stats = Mmt_daq.Event_builder.stats eb in
  Alcotest.(check int) "counted" 1 stats.Mmt_daq.Event_builder.timed_out;
  (* A late fragment for the swept trigger reopens a fresh event. *)
  Alcotest.(check bool) "reopens" true
    (Mmt_daq.Event_builder.add eb ~now:(Units.Time.ms 21.) (eb_fragment ~trigger:1 ~slice:1)
     = None)

let test_event_builder_rejects_empty_slices () =
  Alcotest.(check bool) "empty rejected" true
    (match Mmt_daq.Event_builder.create ~slices:[] ~timeout:Units.Time.zero with
    | _ -> false
    | exception Invalid_argument _ -> true)

let suite =
  [
    Alcotest.test_case "catalog matches Table 1" `Quick test_catalog_matches_table1;
    Alcotest.test_case "catalog ids distinct" `Quick test_catalog_ids_distinct;
    Alcotest.test_case "find by name" `Quick test_find_by_name;
    Alcotest.test_case "scaled rate" `Quick test_scaled_rate_and_message_rate;
    Alcotest.test_case "vera rubin alert stream" `Quick test_vera_rubin_alert_stream;
    Alcotest.test_case "waveform shape" `Quick test_waveform_shape;
    Alcotest.test_case "quiet near pedestal" `Quick test_quiet_waveform_near_pedestal;
    Alcotest.test_case "activity scales hits" `Quick test_activity_scales_hits;
    Alcotest.test_case "zero suppress keeps pulses" `Quick test_zero_suppress_keeps_pulses;
    Alcotest.test_case "zero suppress quiet small" `Quick test_zero_suppress_quiet_is_small;
    Alcotest.test_case "trigger primitive fields" `Quick test_trigger_primitives_fields;
    Alcotest.test_case "window serialization" `Quick test_window_serialization_roundtrip;
    Alcotest.test_case "hits serialization" `Quick test_hits_serialization_roundtrip;
    Alcotest.test_case "compression ratio" `Quick test_compression_ratio_sane;
    Alcotest.test_case "photon dark window" `Quick test_photon_dark_window_quiet;
    Alcotest.test_case "photon estimate tracks flash" `Quick test_photon_estimate_tracks_flash;
    Alcotest.test_case "photon serialization" `Quick test_photon_serialization_roundtrip;
    Alcotest.test_case "photon workload payload" `Quick test_photon_workload_payload;
    Alcotest.test_case "fragment roundtrip (4 detectors)" `Quick
      test_fragment_roundtrip_all_detectors;
    Alcotest.test_case "fragment sizes" `Quick test_fragment_sizes;
    Alcotest.test_case "fragment bad magic" `Quick test_fragment_bad_magic;
    Alcotest.test_case "fragment truncated" `Quick test_fragment_truncated_payload;
    Alcotest.test_case "fragment slice" `Quick test_fragment_slice_in_experiment_id;
    Alcotest.test_case "steady rate" `Quick test_steady_rate_matches_catalog;
    Alcotest.test_case "fragments well-formed" `Quick test_fragments_well_formed;
    Alcotest.test_case "supernova burst" `Quick test_supernova_burst_raises_rate;
    Alcotest.test_case "poisson events" `Quick test_poisson_events_bursts;
    Alcotest.test_case "periodic trigger duty" `Quick test_periodic_trigger_duty_cycle;
    Alcotest.test_case "replay profile" `Quick test_replay_profile_exact;
    Alcotest.test_case "synthesize capture" `Quick test_synthesize_capture_shape;
    Alcotest.test_case "workload stop" `Quick test_workload_stop;
    Alcotest.test_case "workload validation" `Quick test_workload_validation;
    Alcotest.test_case "event builder completes" `Quick test_event_builder_completes;
    Alcotest.test_case "event builder duplicates" `Quick test_event_builder_duplicates;
    Alcotest.test_case "event builder timeout" `Quick test_event_builder_timeout;
    Alcotest.test_case "event builder empty slices" `Quick test_event_builder_rejects_empty_slices;
  ]
