(* The preallocated packet ring: slot recycling, the in_packet /
   in_packet_done ownership protocol, growth and overflow fallback,
   detach for shard crossings, and an aliasing fuzz in the style of
   suite_sharded's differential checks. *)
open Mmt_util
module Ring = Mmt_sim.Ring
module Pool = Mmt_sim.Pool
module Packet = Mmt_sim.Packet

let test_slot_reuse () =
  let ring = Ring.create ~slots:4 () in
  let p = Ring.in_packet ring ~id:1 ~born:Units.Time.zero 100 in
  Alcotest.(check int) "frame sized exactly" 100 (Bytes.length (Packet.frame p));
  Alcotest.(check bool) "slot assigned" true (p.Packet.slot >= 0);
  let slot = p.Packet.slot in
  let frame = Packet.frame p in
  Ring.in_packet_done ring p;
  let q = Ring.in_packet ring ~id:2 ~born:Units.Time.zero 100 in
  Alcotest.(check bool) "record recycled (LIFO slot reuse)" true (q == p);
  Alcotest.(check int) "same slot index" slot q.Packet.slot;
  Alcotest.(check bool) "frame recycled through the pool" true
    (Packet.frame q == frame);
  Alcotest.(check int) "id rewritten for the new incarnation" 2 q.Packet.id;
  let stats = Ring.stats ring in
  Alcotest.(check int) "two acquires" 2 stats.Ring.acquired;
  Alcotest.(check int) "one retirement" 1 stats.Ring.retired;
  Alcotest.(check int) "one live slot" 1 stats.Ring.in_use

let test_double_done_is_noop () =
  let ring = Ring.create ~slots:4 () in
  let p = Ring.in_packet ring ~id:1 ~born:Units.Time.zero 64 in
  Ring.in_packet_done ring p;
  Ring.in_packet_done ring p;
  Ring.in_packet_done ring p;
  let stats = Ring.stats ring in
  Alcotest.(check int) "retired once" 1 stats.Ring.retired;
  Alcotest.(check int) "extra dones counted, not applied" 2
    stats.Ring.double_done;
  Alcotest.(check int) "no live slots" 0 stats.Ring.in_use;
  (* The freed slot must be handed out exactly once even after the
     redundant dones. *)
  let a = Ring.in_packet ring ~id:2 ~born:Units.Time.zero 64 in
  let b = Ring.in_packet ring ~id:3 ~born:Units.Time.zero 64 in
  Alcotest.(check bool) "subsequent acquires are distinct records" true (a != b)

let test_stale_done_after_reacquire () =
  (* A component that holds a packet past its retirement and calls done
     again after the slot was re-acquired must NOT free the new
     incarnation out from under its owner. *)
  let ring = Ring.create ~slots:4 () in
  let p = Ring.in_packet ring ~id:1 ~born:Units.Time.zero 64 in
  Ring.in_packet_done ring p;
  let q = Ring.in_packet ring ~id:2 ~born:Units.Time.zero 64 in
  Alcotest.(check bool) "slot reused" true (q == p);
  (* [p] and [q] are the same record, so a stale done through the old
     handle is indistinguishable from a legitimate one — the protocol
     point is that the counters stay consistent and a *floating* stale
     handle (from detach) stays inert. *)
  let f = Ring.detach ring q in
  Alcotest.(check int) "slot freed by detach" (-1) f.Packet.slot;
  Alcotest.(check bool) "slot record disarmed (retired sentinel)" true
    (Packet.frame q == Pool.retired);
  let r = Ring.in_packet ring ~id:3 ~born:Units.Time.zero 64 in
  ignore r;
  Ring.in_packet_done ring f;
  (* the floating packet's frame recycles; r's slot must stay live *)
  Alcotest.(check int) "live slot untouched by floating done" 1
    (Ring.stats ring).Ring.in_use

let test_growth_and_overflow () =
  let ring = Ring.create ~slots:2 ~max_slots:4 () in
  let live =
    List.init 4 (fun i -> Ring.in_packet ring ~id:i ~born:Units.Time.zero 32)
  in
  Alcotest.(check int) "arena doubled to max_slots" 4
    (Ring.stats ring).Ring.capacity;
  List.iter
    (fun p -> Alcotest.(check bool) "slot-backed" true (p.Packet.slot >= 0))
    live;
  (* Past max_slots the ring degrades to floating records rather than
     growing without bound. *)
  let extra = Ring.in_packet ring ~id:99 ~born:Units.Time.zero 32 in
  Alcotest.(check int) "overflow packet floats" (-1) extra.Packet.slot;
  Alcotest.(check int) "overflow counted" 1 (Ring.stats ring).Ring.overflow;
  Ring.in_packet_done ring extra;
  List.iter (Ring.in_packet_done ring) live;
  Alcotest.(check int) "all retired" 0 (Ring.stats ring).Ring.in_use

let test_detach_for_shard_crossing () =
  let ring = Ring.create ~slots:4 () in
  let p = Ring.in_packet ring ~id:7 ~born:(Units.Time.us 3.) 48 in
  Bytes.fill (Packet.frame p) 0 48 'z';
  p.Packet.hops <- 5;
  p.Packet.corrupted <- true;
  let frame = Packet.frame p in
  let f = Ring.detach ring p in
  Alcotest.(check bool) "floating record" true (f.Packet.slot = -1);
  Alcotest.(check bool) "frame adopted, not copied" true
    (Packet.frame f == frame);
  Alcotest.(check int) "id carried" 7 f.Packet.id;
  Alcotest.(check int) "hops carried" 5 f.Packet.hops;
  Alcotest.(check bool) "corruption carried" true f.Packet.corrupted;
  Alcotest.(check int) "slot freed immediately" 0 (Ring.stats ring).Ring.in_use;
  Alcotest.(check int) "detach counted" 1 (Ring.stats ring).Ring.detached;
  (* Identity on already-floating packets. *)
  let g = Ring.detach ring f in
  Alcotest.(check bool) "detach of floating is identity" true (g == f)

let test_alloc_adopts_frame () =
  let ring = Ring.create ~slots:4 () in
  let frame = Bytes.make 80 'q' in
  let p = Ring.alloc ring ~id:4 ~born:Units.Time.zero frame in
  Alcotest.(check bool) "adopts the caller's frame" true
    (Packet.frame p == frame);
  Ring.in_packet_done ring p;
  (* The adopted frame lands in the ring's pool for future in_packets. *)
  let q = Ring.in_packet ring ~id:5 ~born:Units.Time.zero 80 in
  Alcotest.(check bool) "adopted frame recycled" true (Packet.frame q == frame)

let test_clone_copies_everything () =
  let ring = Ring.create ~slots:4 () in
  let p = Ring.in_packet ring ~padding:13 ~id:1 ~born:(Units.Time.us 9.) 64 in
  Bytes.fill (Packet.frame p) 0 64 'c';
  p.Packet.hops <- 3;
  let q = Ring.clone ring p ~id:2 in
  Alcotest.(check bool) "distinct records" true (q != p);
  Alcotest.(check bool) "distinct frames" true
    (Packet.frame q != Packet.frame p);
  Alcotest.(check string) "same bytes"
    (Bytes.to_string (Packet.frame p))
    (Bytes.to_string (Packet.frame q));
  Alcotest.(check int) "padding copied" p.Packet.padding q.Packet.padding;
  Alcotest.(check int) "hops copied" 3 q.Packet.hops;
  Alcotest.(check bool) "born copied" true
    (Units.Time.equal p.Packet.born q.Packet.born)

let test_no_aliasing_fuzz () =
  (* Random interleaving of acquires, retirements, stale double-dones,
     detaches and clones.  Invariant: no live packet ever shares a
     record or a frame with another live packet. *)
  let ring = Ring.create ~slots:8 ~max_slots:32 () in
  let rng = Rng.create ~seed:0xA11A5L in
  let live = ref [] in
  let check_fresh i (p : Packet.t) =
    List.iter
      (fun (q : Packet.t) ->
        if q == p then Alcotest.failf "op %d: record aliases live #%d" i q.id;
        if Packet.frame q == Packet.frame p then
          Alcotest.failf "op %d: frame aliases live #%d" i q.id)
      !live;
    live := p :: !live
  in
  for i = 1 to 10_000 do
    match Rng.int rng ~bound:6 with
    | 0 | 1 ->
        let len = 32 + (32 * Rng.int rng ~bound:4) in
        check_fresh i (Ring.in_packet ring ~id:i ~born:Units.Time.zero len)
    | 2 when !live <> [] ->
        let victim = Rng.int rng ~bound:(List.length !live) in
        let p = List.nth !live victim in
        live := List.filteri (fun j _ -> j <> victim) !live;
        Ring.in_packet_done ring p;
        (* a stale retirement through the dead handle must stay inert
           for whatever acquires happened since *)
        if Rng.int rng ~bound:4 = 0 then Ring.in_packet_done ring p
    | 3 when !live <> [] ->
        let victim = Rng.int rng ~bound:(List.length !live) in
        let p = List.nth !live victim in
        live := List.filteri (fun j _ -> j <> victim) !live;
        let f = Ring.detach ring p in
        (* the floating record is still live from the fuzzer's view *)
        live := f :: !live
    | 4 when !live <> [] ->
        let src = List.nth !live (Rng.int rng ~bound:(List.length !live)) in
        check_fresh i (Ring.clone ring src ~id:(100_000 + i))
    | _ -> ()
  done;
  List.iter (Ring.in_packet_done ring) !live;
  let stats = Ring.stats ring in
  Alcotest.(check int) "everything retired" 0 stats.Ring.in_use;
  Alcotest.(check bool) "fuzz exercised slot recycling" true
    (stats.Ring.retired > 1_000);
  Alcotest.(check bool) "fuzz hit stale dones" true (stats.Ring.double_done > 0)

let suite =
  [
    Alcotest.test_case "slot reuse through in_packet_done" `Quick
      test_slot_reuse;
    Alcotest.test_case "double done is a counted no-op" `Quick
      test_double_done_is_noop;
    Alcotest.test_case "stale done after re-acquire stays inert" `Quick
      test_stale_done_after_reacquire;
    Alcotest.test_case "growth doubles, overflow floats" `Quick
      test_growth_and_overflow;
    Alcotest.test_case "detach frees the slot, keeps the frame" `Quick
      test_detach_for_shard_crossing;
    Alcotest.test_case "alloc adopts and recycles the frame" `Quick
      test_alloc_adopts_frame;
    Alcotest.test_case "clone copies contents and metadata" `Quick
      test_clone_copies_everything;
    Alcotest.test_case "no aliasing under fuzz" `Quick test_no_aliasing_fuzz;
  ]
