let () =
  Alcotest.run "shapeshift"
    [
      ("rng", Suite_rng.suite);
      ("stats", Suite_stats.suite);
      ("units", Suite_units.suite);
      ("table", Suite_table.suite);
      ("cursor", Suite_cursor.suite);
      ("frame", Suite_frame.suite);
      ("engine", Suite_engine.suite);
      ("sim-net", Suite_sim_net.suite);
      ("pool", Suite_pool.suite);
      ("ring", Suite_ring.suite);
      ("header", Suite_header.suite);
      ("view", Suite_view.suite);
      ("control", Suite_control.suite);
      ("mode", Suite_mode.suite);
      ("endpoint", Suite_endpoint.suite);
      ("innet", Suite_innet.suite);
      ("int", Suite_int.suite);
      ("telemetry", Suite_telemetry.suite);
      ("daq", Suite_daq.suite);
      ("tcp", Suite_tcp.suite);
      ("pilot", Suite_pilot.suite);
      ("extensions", Suite_extensions.suite);
      ("robustness", Suite_robustness.suite);
      ("fault", Suite_fault.suite);
      ("campaign", Suite_campaign.suite);
      ("fuzz", Suite_fuzz.suite);
      ("sharded", Suite_sharded.suite);
      ("experiments", Suite_experiments.suite);
      ("facility", Suite_facility.suite);
    ]
