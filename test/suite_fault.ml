(* The fault-injection subsystem: plans, the injector, link fault
   hooks, on-the-wire corruption vs. the header checksum, the
   invariant ledger, and end-to-end chaos runs. *)
open Mmt_util
open Mmt_frame
module Sim = Mmt_sim
module Fault = Mmt_fault

let us = Units.Time.us
let ms = Units.Time.ms

let mk_packet ?(id = 0) size =
  Sim.Packet.create ~id ~born:Units.Time.zero (Bytes.create size)

(* Plans ------------------------------------------------------------------ *)

let test_plan_orders_by_time () =
  let plan =
    Fault.Plan.make
      [
        Fault.Plan.event ~at:(ms 5.) (Fault.Plan.Link_up "late");
        Fault.Plan.event ~at:(ms 1.) (Fault.Plan.Link_down "first");
        Fault.Plan.event ~at:(ms 1.) (Fault.Plan.Link_down "second");
      ]
  in
  Alcotest.(check int) "length" 3 (Fault.Plan.length plan);
  Alcotest.(check bool) "not empty" false (Fault.Plan.is_empty plan);
  Alcotest.(check bool) "empty is empty" true
    (Fault.Plan.is_empty Fault.Plan.empty);
  match Fault.Plan.events plan with
  | [ a; b; c ] ->
      Alcotest.(check bool) "earliest first" true
        (a.Fault.Plan.action = Fault.Plan.Link_down "first");
      (* Stable: same-instant events keep authoring order. *)
      Alcotest.(check bool) "stable tie-break" true
        (b.Fault.Plan.action = Fault.Plan.Link_down "second");
      Alcotest.(check bool) "latest last" true
        (c.Fault.Plan.action = Fault.Plan.Link_up "late")
  | _ -> Alcotest.fail "expected three events"

let test_plan_validation () =
  let rejects action =
    match Fault.Plan.make [ Fault.Plan.event ~at:Units.Time.zero action ] with
    | _ -> false
    | exception Invalid_argument _ -> true
  in
  Alcotest.(check bool) "factor > 1 rejected" true
    (rejects (Fault.Plan.Degrade_rate { link = "l"; factor = 1.5 }));
  Alcotest.(check bool) "factor = 0 rejected" true
    (rejects (Fault.Plan.Degrade_rate { link = "l"; factor = 0. }));
  Alcotest.(check bool) "probability > 1 rejected" true
    (rejects
       (Fault.Plan.Corrupt_headers { link = "l"; probability = 1.5; bits = 1 }));
  Alcotest.(check bool) "bits < 1 rejected" true
    (rejects
       (Fault.Plan.Corrupt_headers { link = "l"; probability = 0.5; bits = 0 }));
  Alcotest.(check bool) "factor 1.0 accepted" true
    (not (rejects (Fault.Plan.Degrade_rate { link = "l"; factor = 1.0 })))

(* Injector: link down/up ------------------------------------------------- *)

let test_injector_link_flap () =
  let engine = Sim.Engine.create () in
  let delivered = ref 0 in
  let link =
    Sim.Link.create ~engine ~name:"l" ~rate:Units.Rate.zero
      ~propagation:(us 1.)
      ~deliver:(fun _ -> incr delivered)
      ()
  in
  let injector = Fault.Injector.create ~engine ~links:[ link ] () in
  Fault.Injector.arm injector
    (Fault.Plan.make
       [
         Fault.Plan.event ~at:(us 10.) (Fault.Plan.Link_down "l");
         Fault.Plan.event ~at:(us 30.) (Fault.Plan.Link_up "l");
       ]);
  (* One packet while healthy, one while down, one after recovery. *)
  List.iter
    (fun at ->
      ignore
        (Sim.Engine.schedule engine ~at (fun () ->
             Sim.Link.send link (mk_packet 100))))
    [ us 5.; us 20.; us 40. ];
  Sim.Engine.run engine;
  let stats = Sim.Link.stats link in
  Alcotest.(check int) "two delivered" 2 !delivered;
  Alcotest.(check int) "one fault drop" 1 stats.Sim.Link.fault_drops;
  Alcotest.(check int) "both faults applied" 2 (Fault.Injector.applied injector);
  Alcotest.(check int) "log has two entries" 2
    (List.length (Fault.Injector.log injector));
  Alcotest.(check bool) "link back up" true (Sim.Link.is_up link)

let test_injector_degrade_restore () =
  let engine = Sim.Engine.create () in
  let original = Units.Rate.gbps 1. in
  let link =
    Sim.Link.create ~engine ~name:"l" ~rate:original
      ~propagation:Units.Time.zero
      ~deliver:(fun _ -> ())
      ()
  in
  let injector = Fault.Injector.create ~engine ~links:[ link ] () in
  Fault.Injector.arm injector
    (Fault.Plan.make
       [
         Fault.Plan.event ~at:(us 10.)
           (Fault.Plan.Degrade_rate { link = "l"; factor = 0.5 });
         Fault.Plan.event ~at:(us 30.) (Fault.Plan.Restore_rate "l");
       ]);
  let browned_out = ref None in
  ignore
    (Sim.Engine.schedule engine ~at:(us 20.) (fun () ->
         browned_out := Some (Sim.Link.rate link)));
  Sim.Engine.run engine;
  Alcotest.(check bool) "rate halved mid-run" true
    (match !browned_out with
    | Some rate -> rate = Units.Rate.scale original 0.5
    | None -> false);
  Alcotest.(check bool) "rate restored after" true
    (Sim.Link.rate link = original);
  Alcotest.(check int) "two faults applied" 2 (Fault.Injector.applied injector)

let test_injector_rejects_unknown_names () =
  let engine = Sim.Engine.create () in
  let injector = Fault.Injector.create ~engine ~links:[] () in
  let rejects action =
    match
      Fault.Injector.arm injector
        (Fault.Plan.make [ Fault.Plan.event ~at:Units.Time.zero action ])
    with
    | _ -> false
    | exception Invalid_argument _ -> true
  in
  Alcotest.(check bool) "unknown link" true (rejects (Fault.Plan.Link_down "nope"));
  Alcotest.(check bool) "unregistered element" true
    (rejects (Fault.Plan.Fail_element "nope"));
  Alcotest.(check bool) "unregistered control" true
    (rejects (Fault.Plan.Blackhole_adverts "nope"))

let test_injector_element_and_control_dispatch () =
  let engine = Sim.Engine.create () in
  let injector = Fault.Injector.create ~engine ~links:[] () in
  let alive = ref true and blackholed = ref false in
  Fault.Injector.register_element injector "elt"
    ~fail:(fun () -> alive := false)
    ~restart:(fun () -> alive := true);
  Fault.Injector.register_control injector "cp" (fun b -> blackholed := b);
  Fault.Injector.arm injector
    (Fault.Plan.make
       [
         Fault.Plan.event ~at:(us 1.) (Fault.Plan.Fail_element "elt");
         Fault.Plan.event ~at:(us 2.) (Fault.Plan.Blackhole_adverts "cp");
         Fault.Plan.event ~at:(us 3.) (Fault.Plan.Restart_element "elt");
         Fault.Plan.event ~at:(us 4.) (Fault.Plan.Unblackhole_adverts "cp");
       ]);
  ignore
    (Sim.Engine.schedule engine ~at:(Units.Time.ns 1_500) (fun () ->
         Alcotest.(check bool) "failed at 1.5us" false !alive));
  ignore
    (Sim.Engine.schedule engine ~at:(Units.Time.ns 2_500) (fun () ->
         Alcotest.(check bool) "blackholed at 2.5us" true !blackholed));
  Sim.Engine.run engine;
  Alcotest.(check bool) "restarted" true !alive;
  Alcotest.(check bool) "unblackholed" false !blackholed;
  Alcotest.(check int) "four applied" 4 (Fault.Injector.applied injector)

(* Corruption vs. the header checksum ------------------------------------- *)

let checksummed_frame seq =
  Mmt.Header.encode
    (Mmt.Header.with_checksummed
       (Mmt.Header.create ~sequence:seq
          ~retransmit_from:(Addr.Ip.of_octets 10 0 1 1)
          ~experiment:(Mmt.Experiment_id.make ~experiment:3 ~slice:0)
          ()))

(* Send [n] sealed headers through a link whose tamperer flips one bit
   per frame; classify each arrival.  Returns (caught, benign,
   undetected, digest-of-arrivals). *)
let corrupt_run ~seed n =
  let engine = Sim.Engine.create () in
  let caught = ref 0 and benign = ref 0 and undetected = ref 0 in
  let arrivals = Buffer.create (n * 16) in
  let link =
    Sim.Link.create ~engine ~name:"l" ~rate:Units.Rate.zero
      ~propagation:(us 1.)
      ~deliver:(fun p ->
        let frame = Sim.Packet.frame p in
        Buffer.add_bytes arrivals frame;
        match Mmt.Header.View.of_frame frame with
        | Error _ -> incr caught
        | Ok view ->
            if not (Mmt.Header.View.has view Mmt.Feature.Checksummed) then
              (* The flip erased the feature bit itself: benign alone,
                 but a required-checksum path discards it anyway. *)
              incr benign
            else if Mmt.Header.View.verify view then incr undetected
            else incr caught)
      ()
  in
  let injector = Fault.Injector.create ~seed ~engine ~links:[ link ] () in
  Fault.Injector.arm injector
    (Fault.Plan.make
       [
         Fault.Plan.event ~at:Units.Time.zero
           (Fault.Plan.Corrupt_headers { link = "l"; probability = 1.0; bits = 1 });
       ]);
  for i = 1 to n do
    ignore
      (Sim.Engine.schedule engine ~at:(us (float_of_int i)) (fun () ->
           Sim.Link.send link
             (Sim.Packet.create ~id:i ~born:Units.Time.zero
                (checksummed_frame i))))
  done;
  Sim.Engine.run engine;
  let stats = Sim.Link.stats link in
  ((!caught, !benign, !undetected, stats.Sim.Link.tampered),
   Digest.to_hex (Digest.string (Buffer.contents arrivals)))

let test_corruption_caught_by_checksum () =
  let (caught, benign, undetected, tampered), _ = corrupt_run ~seed:0xFA17L 300 in
  Alcotest.(check int) "every frame tampered" 300 tampered;
  Alcotest.(check int) "no single-bit flip slips through" 0 undetected;
  Alcotest.(check bool) "most are caught by the sum" true (caught > benign);
  Alcotest.(check int) "all arrivals classified" 300 (caught + benign)

let test_corruption_deterministic () =
  let a = corrupt_run ~seed:0xFA17L 100 in
  let b = corrupt_run ~seed:0xFA17L 100 in
  Alcotest.(check bool) "same seed, same bits, same outcomes" true (a = b);
  let _, digest_other = corrupt_run ~seed:1L 100 in
  Alcotest.(check bool) "different seed, different bits" true
    (snd a <> digest_other)

(* Invariant ledger ------------------------------------------------------- *)

let outcome_of ~emitted ~abandoned ?(resurrected = 0) ?(pending = 0)
    ?(terminated = true) ledger =
  Fault.Invariant.check
    (Fault.Invariant.outcome ~emitted ~abandoned ~resurrected ~pending
       ~terminated ledger)

let test_invariant_balanced_books () =
  let ledger = Fault.Invariant.ledger () in
  List.iter (fun seq -> Fault.Invariant.delivered ledger ~seq) [ 0; 1; 2 ];
  Alcotest.(check (list string)) "all delivered" []
    (outcome_of ~emitted:3 ~abandoned:0 ledger);
  let ledger = Fault.Invariant.ledger () in
  List.iter (fun seq -> Fault.Invariant.delivered ledger ~seq) [ 0; 2 ];
  Alcotest.(check (list string)) "one abandoned" []
    (outcome_of ~emitted:3 ~abandoned:1 ledger)

let test_invariant_duplicate_delivery () =
  let ledger = Fault.Invariant.ledger () in
  Fault.Invariant.delivered ledger ~seq:7;
  Fault.Invariant.delivered ledger ~seq:7;
  Alcotest.(check bool) "duplicate flagged" true
    (outcome_of ~emitted:1 ~abandoned:0 ledger <> [])

let test_invariant_limbo_and_mismatch () =
  let ledger = Fault.Invariant.ledger () in
  Fault.Invariant.delivered ledger ~seq:0;
  Alcotest.(check bool) "pending flagged" true
    (outcome_of ~emitted:2 ~abandoned:0 ~pending:1 ledger <> []);
  let ledger = Fault.Invariant.ledger () in
  Fault.Invariant.delivered ledger ~seq:0;
  Alcotest.(check bool) "accounting mismatch flagged" true
    (outcome_of ~emitted:2 ~abandoned:0 ledger <> []);
  Alcotest.(check bool) "non-termination flagged" true
    (outcome_of ~emitted:1 ~abandoned:0 ~terminated:false ledger <> [])

let test_invariant_resurrection_balances () =
  let ledger = Fault.Invariant.ledger () in
  (* All three delivered, but seq 1 was first abandoned and then a
     straggling retransmission landed: the receiver reports it as
     resurrected, and the books still balance. *)
  List.iter (fun seq -> Fault.Invariant.delivered ledger ~seq) [ 0; 1; 2 ];
  Alcotest.(check (list string)) "resurrected compensates" []
    (outcome_of ~emitted:3 ~abandoned:1 ~resurrected:1 ledger)

(* End-to-end chaos runs -------------------------------------------------- *)

module C = Mmt_pilot.Chaos_run

let test_chaos_restart_reconverges () =
  (* Kill the active buffer mid-stream, then bring it back empty: the
     planner must fail over to B, keep the stream whole, and re-adopt
     A once its adverts return. *)
  let outcome =
    C.run
      (C.params ~fragment_count:1500
         ~plan:
           (Fault.Plan.make
              [
                Fault.Plan.event ~at:(ms 2.) (Fault.Plan.Fail_element "buffer-a");
                Fault.Plan.event ~at:(ms 40.)
                  (Fault.Plan.Restart_element "buffer-a");
              ])
         ())
  in
  Alcotest.(check (list string)) "no invariant violations" []
    outcome.C.violations;
  Alcotest.(check int) "all delivered" 1500 outcome.C.delivered;
  Alcotest.(check int) "nothing lost" 0
    (outcome.C.lost + outcome.C.unrecoverable);
  Alcotest.(check bool) "failed over then re-adopted A" true
    (outcome.C.mode_changes >= 2);
  Alcotest.(check string) "A serves again at the end" "A"
    outcome.C.final_buffer;
  Alcotest.(check bool) "B served NAKs during the outage" true
    (outcome.C.naks_served_by_b > 0)

let test_chaos_blackhole_degrades_then_recovers () =
  (* Advert blackhole: soft state genuinely expires, the rewriter
     strips frames to the safe mode instead of pointing at a buffer it
     can no longer trust, and sequencing resumes after the blackhole
     lifts. *)
  let outcome =
    C.run
      (C.params ~fragment_count:1500 ~loss:0. ~advert_period:(ms 1.)
         ~track_total:false
         ~plan:
           (Fault.Plan.make
              [
                (* TTL is 4x the advert period: the t=0 adverts expire
                   at 4 ms, inside the ~5 ms send window. *)
                Fault.Plan.event ~at:(ms 0.5)
                  (Fault.Plan.Blackhole_adverts "control");
                Fault.Plan.event ~at:(ms 8.)
                  (Fault.Plan.Unblackhole_adverts "control");
              ])
         ())
  in
  Alcotest.(check (list string)) "no invariant violations" []
    outcome.C.violations;
  Alcotest.(check bool) "frames degraded while blackholed" true
    (outcome.C.degraded_rewrites > 0 && outcome.C.degraded_delivered > 0);
  (* The receiver's [delivered] counts degraded (unsequenced)
     deliveries too, so the stream is whole iff it reaches the total. *)
  Alcotest.(check int) "every fragment still delivered" 1500
    outcome.C.delivered;
  Alcotest.(check int) "emitted only the sequenced share"
    (1500 - outcome.C.degraded_delivered)
    outcome.C.emitted;
  Alcotest.(check string) "reconverged to A" "A" outcome.C.final_buffer

let test_chaos_empty_plan_is_faultless () =
  let outcome = C.run (C.params ~fragment_count:800 ()) in
  Alcotest.(check int) "no faults applied" 0 outcome.C.faults_applied;
  Alcotest.(check int) "nothing tampered" 0 outcome.C.tampered;
  Alcotest.(check (list string)) "no violations" [] outcome.C.violations;
  Alcotest.(check int) "all delivered" 800 outcome.C.delivered

let test_chaos_pooling_byte_identical () =
  (* Packet rings change the allocator, never the bytes: the same
     fault plan — element death, wire tampering, random loss — must
     produce a field-for-field identical outcome with pooling off. *)
  let p =
    C.params ~fragment_count:1200
      ~plan:
        (Fault.Plan.make
           [
             Fault.Plan.event ~at:(ms 2.) (Fault.Plan.Fail_element "buffer-a");
             Fault.Plan.event ~at:(ms 3.)
               (Fault.Plan.Corrupt_headers
                  { link = "buffer-b->sink"; probability = 0.01; bits = 2 });
             Fault.Plan.event ~at:(ms 20.)
               (Fault.Plan.Stop_corrupting "buffer-b->sink");
             Fault.Plan.event ~at:(ms 40.)
               (Fault.Plan.Restart_element "buffer-a");
           ])
      ()
  in
  let pooled = C.run p in
  let plain = C.run ~pooling:false p in
  Alcotest.(check (list string)) "no invariant violations (pooled)" []
    pooled.C.violations;
  Alcotest.(check bool) "outcomes identical with pools on and off" true
    (pooled = plain)

let test_chaos_fusing_byte_identical () =
  (* Fused hops collapse serialize + propagate into one staged engine
     event.  Under an E-R1-style plan — element death, wire tampering
     on a specific link, random loss — every loss draw, tamper
     decision and recovery race must still land on the same packet at
     the same instant, so the outcome record must be field-for-field
     identical with fusing off. *)
  let p =
    C.params ~fragment_count:1200
      ~plan:
        (Fault.Plan.make
           [
             Fault.Plan.event ~at:(ms 2.) (Fault.Plan.Fail_element "buffer-a");
             Fault.Plan.event ~at:(ms 3.)
               (Fault.Plan.Corrupt_headers
                  { link = "buffer-b->sink"; probability = 0.01; bits = 2 });
             Fault.Plan.event ~at:(ms 20.)
               (Fault.Plan.Stop_corrupting "buffer-b->sink");
             Fault.Plan.event ~at:(ms 40.)
               (Fault.Plan.Restart_element "buffer-a");
           ])
      ()
  in
  let fused = C.run p in
  let unfused = C.run ~fusing:false p in
  Alcotest.(check (list string)) "no invariant violations (fused)" []
    fused.C.violations;
  Alcotest.(check bool) "outcomes identical with fusing on and off" true
    (fused = unfused)

(* Fault hooks firing mid-hop on a fused link ----------------------------- *)

let test_fault_hooks_mid_fused_hop () =
  (* A fused hop's serialize-time decisions run inside the staged
     event at serialize-completion time, reading link state then — so
     a fault hook firing while a packet is on the transmitter must be
     observed by that in-flight packet exactly as the two-event path
     observes it.  Timeline (1000 B at 0.8 Gbps = 10 us on the wire):
     p1 starts at 0, a tamperer lands at 5 us and must hit it at
     10 us; p2 starts at 12 us (tamperer already cleared), the link
     goes down at 15 us and must destroy p2 at the wire at 22 us;
     p3 starts after recovery and survives; p4 starts after a rate
     degrade and serializes at the new rate. *)
  let run ~fusing =
    let engine = Sim.Engine.create () in
    let delivered = ref 0 in
    let link =
      Sim.Link.create ~engine ~name:"l" ~rate:(Units.Rate.gbps 0.8)
        ~propagation:(us 20.) ~fusing
        ~deliver:(fun _ -> incr delivered)
        ()
    in
    let at t fn = ignore (Sim.Engine.schedule engine ~at:t fn) in
    at (us 0.) (fun () -> Sim.Link.send link (mk_packet ~id:1 1000));
    at (us 5.) (fun () -> Sim.Link.set_tamper link (Some (fun _ -> true)));
    at (us 12.) (fun () ->
        Sim.Link.set_tamper link None;
        Sim.Link.send link (mk_packet ~id:2 1000));
    at (us 15.) (fun () -> Sim.Link.set_up link false);
    at (us 25.) (fun () -> Sim.Link.set_up link true);
    at (us 26.) (fun () -> Sim.Link.send link (mk_packet ~id:3 1000));
    at (us 40.) (fun () -> Sim.Link.set_rate link (Units.Rate.gbps 0.4));
    at (us 41.) (fun () -> Sim.Link.send link (mk_packet ~id:4 1000));
    Sim.Engine.run engine;
    (Sim.Link.stats link, Sim.Engine.processed engine, !delivered)
  in
  let f_stats, f_processed, f_delivered = run ~fusing:true in
  let u_stats, u_processed, u_delivered = run ~fusing:false in
  Alcotest.(check bool) "full stats identical fused vs unfused" true
    (f_stats = u_stats);
  Alcotest.(check int) "engine event counts identical" u_processed f_processed;
  Alcotest.(check int) "deliveries identical" u_delivered f_delivered;
  Alcotest.(check int) "tamperer hit the in-flight packet" 1
    f_stats.Sim.Link.tampered;
  Alcotest.(check int) "downed wire destroyed the in-flight packet" 1
    f_stats.Sim.Link.fault_drops;
  Alcotest.(check int) "survivors delivered" 3 f_delivered;
  (* p4 serialized at the degraded rate: its 20 us on the wire is in
     [busy], which the stats identity above already pinned; make the
     absolute value explicit too (10 + 10 + 10 + 20 us). *)
  Alcotest.(check bool) "busy reflects the degraded rate" true
    (Units.Time.equal f_stats.Sim.Link.busy (us 50.))

(* E-R1 determinism ------------------------------------------------------- *)

let test_er1_deterministic_across_domains () =
  (* The whole chaos series is a pure function of (plans, seeds): a
     second run on another domain — the way `shapeshift all --jobs N`
     executes it — must render the byte-identical report. *)
  let sequential = Mmt_experiments.Chaos.run () in
  let on_domain = Domain.spawn (fun () -> Mmt_experiments.Chaos.run ()) in
  let parallel = Domain.join on_domain in
  Alcotest.(check bool) "all checks pass" true (snd sequential);
  Alcotest.(check bool) "byte-identical across domains" true
    (fst sequential = fst parallel)

let suite =
  [
    Alcotest.test_case "plan orders by time" `Quick test_plan_orders_by_time;
    Alcotest.test_case "plan validation" `Quick test_plan_validation;
    Alcotest.test_case "injector link flap" `Quick test_injector_link_flap;
    Alcotest.test_case "injector degrade/restore" `Quick
      test_injector_degrade_restore;
    Alcotest.test_case "injector rejects unknown names" `Quick
      test_injector_rejects_unknown_names;
    Alcotest.test_case "injector element/control dispatch" `Quick
      test_injector_element_and_control_dispatch;
    Alcotest.test_case "corruption caught by checksum" `Quick
      test_corruption_caught_by_checksum;
    Alcotest.test_case "corruption deterministic" `Quick
      test_corruption_deterministic;
    Alcotest.test_case "invariant balanced books" `Quick
      test_invariant_balanced_books;
    Alcotest.test_case "invariant duplicate delivery" `Quick
      test_invariant_duplicate_delivery;
    Alcotest.test_case "invariant limbo and mismatch" `Quick
      test_invariant_limbo_and_mismatch;
    Alcotest.test_case "invariant resurrection balances" `Quick
      test_invariant_resurrection_balances;
    Alcotest.test_case "chaos restart reconverges" `Slow
      test_chaos_restart_reconverges;
    Alcotest.test_case "chaos blackhole degrades then recovers" `Slow
      test_chaos_blackhole_degrades_then_recovers;
    Alcotest.test_case "chaos empty plan is faultless" `Quick
      test_chaos_empty_plan_is_faultless;
    Alcotest.test_case "chaos pool-on/off byte-identical" `Slow
      test_chaos_pooling_byte_identical;
    Alcotest.test_case "chaos fuse-on/off byte-identical" `Slow
      test_chaos_fusing_byte_identical;
    Alcotest.test_case "fault hooks land mid-fused-hop" `Quick
      test_fault_hooks_mid_fused_hop;
    Alcotest.test_case "E-R1 deterministic across domains" `Slow
      test_er1_deterministic_across_domains;
  ]
