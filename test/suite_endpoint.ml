(* Sender, receiver and buffer-host protocol endpoints, driven with
   hand-crafted packets over a loopback environment. *)
open Mmt_util
open Mmt_frame

let experiment = Mmt.Experiment_id.make ~experiment:2 ~slice:0
let buffer_ip = Addr.Ip.of_octets 10 0 1 1
let notify_ip = Addr.Ip.of_octets 10 0 0 9

let receiver_config ?expected_total () =
  {
    Mmt.Receiver.experiment;
    nak_delay = Units.Time.ms 1.;
    nak_retry_timeout = Units.Time.ms 10.;
    max_nak_retries = 3;
    expected_total;
  }

(* Build a data packet the way DTN 1's rewriter would emit it. *)
let data_packet ?(seq : int option) ?timely ?age ~engine ~id payload_size =
  let header = Mmt.Header.mode0 ~experiment in
  let header =
    match seq with
    | Some s -> Mmt.Header.with_retransmit_from (Mmt.Header.with_sequence header s) buffer_ip
    | None -> header
  in
  let header = match timely with Some t -> Mmt.Header.with_timely header t | None -> header in
  let header = match age with Some a -> Mmt.Header.with_age header a | None -> header in
  let payload = Bytes.make payload_size 'd' in
  let frame = Bytes.cat (Mmt.Header.encode header) payload in
  Mmt_sim.Packet.create ~id ~born:(Mmt_sim.Engine.now engine) frame

let drain_queue queue =
  let out = ref [] in
  Queue.iter (fun p -> out := p :: !out) queue;
  Queue.clear queue;
  List.rev !out

let decode_control packet =
  match Mmt.Encap.strip (Mmt_sim.Packet.frame packet) with
  | Error e -> Alcotest.fail e
  | Ok (_encap, mmt) -> (
      match Mmt.Header.decode_bytes mmt with
      | Error e -> Alcotest.fail e
      | Ok header ->
          let payload =
            Bytes.sub mmt (Mmt.Header.size header)
              (Bytes.length mmt - Mmt.Header.size header)
          in
          (header, payload))

(* Receiver --------------------------------------------------------------- *)

let test_in_order_delivery () =
  let engine = Mmt_sim.Engine.create () in
  let env, _queue = Mmt_runtime.Env.loopback engine in
  let delivered = ref [] in
  let receiver =
    Mmt.Receiver.create ~env (receiver_config ())
      ~deliver:(fun meta _payload -> delivered := meta :: !delivered)
  in
  for seq = 0 to 4 do
    Mmt.Receiver.on_packet receiver (data_packet ~seq ~engine ~id:seq 64)
  done;
  Mmt_sim.Engine.run engine;
  let stats = Mmt.Receiver.stats receiver in
  Alcotest.(check int) "delivered" 5 stats.Mmt.Receiver.delivered;
  Alcotest.(check int) "no gaps" 0 stats.Mmt.Receiver.gaps_detected;
  Alcotest.(check int) "no naks" 0 stats.Mmt.Receiver.naks_sent;
  Alcotest.(check bool) "none recovered" true
    (List.for_all (fun (m : Mmt.Receiver.meta) -> not m.Mmt.Receiver.recovered) !delivered)

let test_gap_detection_and_nak () =
  let engine = Mmt_sim.Engine.create () in
  let env, queue = Mmt_runtime.Env.loopback engine in
  let receiver = Mmt.Receiver.create ~env (receiver_config ()) ~deliver:(fun _ _ -> ()) in
  (* 0, 1, then 4: sequences 2 and 3 are missing. *)
  List.iter
    (fun seq -> Mmt.Receiver.on_packet receiver (data_packet ~seq ~engine ~id:seq 64))
    [ 0; 1; 4 ];
  Mmt_sim.Engine.run engine;
  let stats = Mmt.Receiver.stats receiver in
  Alcotest.(check int) "gaps" 2 stats.Mmt.Receiver.gaps_detected;
  Alcotest.(check bool) "naks sent" true (stats.Mmt.Receiver.naks_sent >= 1);
  match drain_queue queue with
  | nak_packet :: _ ->
      let header, payload = decode_control nak_packet in
      Alcotest.(check bool) "kind nak" true
        (header.Mmt.Header.kind = Mmt.Feature.Kind.Nak);
      (match Mmt.Control.Nak.decode payload with
      | Ok nak ->
          Alcotest.(check (list (pair int int))) "range 2-3" [ (2, 3) ]
            nak.Mmt.Control.Nak.ranges
      | Error e -> Alcotest.fail e)
  | [] -> Alcotest.fail "expected a NAK on the wire"

let test_recovery_clears_missing () =
  let engine = Mmt_sim.Engine.create () in
  let env, _queue = Mmt_runtime.Env.loopback engine in
  let recovered_metas = ref [] in
  let receiver =
    Mmt.Receiver.create ~env (receiver_config ())
      ~deliver:(fun (meta : Mmt.Receiver.meta) _ -> if meta.Mmt.Receiver.recovered then recovered_metas := meta :: !recovered_metas)
  in
  List.iter
    (fun seq -> Mmt.Receiver.on_packet receiver (data_packet ~seq ~engine ~id:seq 64))
    [ 0; 2 ];
  (* Recovery of 1 arrives before any give-up. *)
  Mmt.Receiver.on_packet receiver (data_packet ~seq:1 ~engine ~id:99 64);
  Mmt_sim.Engine.run engine;
  let stats = Mmt.Receiver.stats receiver in
  Alcotest.(check int) "recovered" 1 stats.Mmt.Receiver.recovered;
  Alcotest.(check int) "still missing" 0 stats.Mmt.Receiver.still_missing;
  Alcotest.(check int) "out of order" 1 stats.Mmt.Receiver.out_of_order;
  Alcotest.(check int) "recovered delivery flagged" 1 (List.length !recovered_metas)

let test_duplicate_suppression () =
  let engine = Mmt_sim.Engine.create () in
  let env, _queue = Mmt_runtime.Env.loopback engine in
  let receiver = Mmt.Receiver.create ~env (receiver_config ()) ~deliver:(fun _ _ -> ()) in
  Mmt.Receiver.on_packet receiver (data_packet ~seq:0 ~engine ~id:0 64);
  Mmt.Receiver.on_packet receiver (data_packet ~seq:0 ~engine ~id:1 64);
  Mmt_sim.Engine.run engine;
  let stats = Mmt.Receiver.stats receiver in
  Alcotest.(check int) "one delivery" 1 stats.Mmt.Receiver.delivered;
  Alcotest.(check int) "duplicate counted" 1 stats.Mmt.Receiver.duplicates

let test_gives_up_after_max_retries () =
  let engine = Mmt_sim.Engine.create () in
  let env, queue = Mmt_runtime.Env.loopback engine in
  let receiver = Mmt.Receiver.create ~env (receiver_config ()) ~deliver:(fun _ _ -> ()) in
  List.iter
    (fun seq -> Mmt.Receiver.on_packet receiver (data_packet ~seq ~engine ~id:seq 64))
    [ 0; 2 ];
  Mmt_sim.Engine.run engine;
  let stats = Mmt.Receiver.stats receiver in
  Alcotest.(check int) "lost after retries" 1 stats.Mmt.Receiver.lost;
  Alcotest.(check int) "still missing drained" 0 stats.Mmt.Receiver.still_missing;
  (* max_nak_retries NAKs went out. *)
  Alcotest.(check int) "nak retries" 3 (List.length (drain_queue queue))

let test_unsequenced_passthrough () =
  let engine = Mmt_sim.Engine.create () in
  let env, _queue = Mmt_runtime.Env.loopback engine in
  let receiver = Mmt.Receiver.create ~env (receiver_config ()) ~deliver:(fun _ _ -> ()) in
  Mmt.Receiver.on_packet receiver (data_packet ~engine ~id:0 64);
  Mmt.Receiver.on_packet receiver (data_packet ~engine ~id:1 64);
  Mmt_sim.Engine.run engine;
  let stats = Mmt.Receiver.stats receiver in
  Alcotest.(check int) "unsequenced" 2 stats.Mmt.Receiver.unsequenced;
  Alcotest.(check int) "delivered" 2 stats.Mmt.Receiver.delivered;
  Alcotest.(check int) "no naks" 0 stats.Mmt.Receiver.naks_sent

let test_corrupted_dropped () =
  let engine = Mmt_sim.Engine.create () in
  let env, _queue = Mmt_runtime.Env.loopback engine in
  let receiver = Mmt.Receiver.create ~env (receiver_config ()) ~deliver:(fun _ _ -> ()) in
  let packet = data_packet ~seq:0 ~engine ~id:0 64 in
  packet.Mmt_sim.Packet.corrupted <- true;
  Mmt.Receiver.on_packet receiver packet;
  Mmt_sim.Engine.run engine;
  let stats = Mmt.Receiver.stats receiver in
  Alcotest.(check int) "dropped" 0 stats.Mmt.Receiver.delivered;
  Alcotest.(check int) "counted" 1 stats.Mmt.Receiver.corrupted

let test_deadline_notice_emitted () =
  let engine = Mmt_sim.Engine.create () in
  let env, queue = Mmt_runtime.Env.loopback engine in
  let late_seen = ref false in
  let receiver =
    Mmt.Receiver.create ~env (receiver_config ())
      ~deliver:(fun (meta : Mmt.Receiver.meta) _ -> late_seen := meta.Mmt.Receiver.late)
  in
  (* Deadline in the past relative to processing time. *)
  ignore
    (Mmt_sim.Engine.schedule engine ~at:(Units.Time.ms 5.) (fun () ->
         Mmt.Receiver.on_packet receiver
           (data_packet
              ~timely:{ Mmt.Header.deadline = Units.Time.ms 2.; notify = notify_ip }
              ~engine ~id:0 64)));
  Mmt_sim.Engine.run engine;
  let stats = Mmt.Receiver.stats receiver in
  Alcotest.(check int) "late" 1 stats.Mmt.Receiver.late;
  Alcotest.(check bool) "meta flagged" true !late_seen;
  Alcotest.(check int) "notice sent" 1 stats.Mmt.Receiver.deadline_notices_sent;
  match drain_queue queue with
  | [ notice ] ->
      let header, payload = decode_control notice in
      Alcotest.(check bool) "kind" true
        (header.Mmt.Header.kind = Mmt.Feature.Kind.Deadline_exceeded);
      (match Mmt.Control.Deadline_exceeded.decode payload with
      | Ok n ->
          Alcotest.(check string) "late by 3ms" "3ms"
            (Units.Time.to_string (Mmt.Control.Deadline_exceeded.lateness n))
      | Error e -> Alcotest.fail e)
  | _ -> Alcotest.fail "expected exactly one notice"

let test_on_time_no_notice () =
  let engine = Mmt_sim.Engine.create () in
  let env, queue = Mmt_runtime.Env.loopback engine in
  let receiver = Mmt.Receiver.create ~env (receiver_config ()) ~deliver:(fun _ _ -> ()) in
  Mmt.Receiver.on_packet receiver
    (data_packet
       ~timely:{ Mmt.Header.deadline = Units.Time.ms 100.; notify = notify_ip }
       ~engine ~id:0 64);
  Mmt_sim.Engine.run engine;
  Alcotest.(check int) "no late" 0 (Mmt.Receiver.stats receiver).Mmt.Receiver.late;
  Alcotest.(check int) "no notices" 0 (List.length (drain_queue queue))

let test_final_age_accumulation () =
  let engine = Mmt_sim.Engine.create () in
  let env, _queue = Mmt_runtime.Env.loopback engine in
  let observed_age = ref None in
  let receiver =
    Mmt.Receiver.create ~env (receiver_config ())
      ~deliver:(fun (meta : Mmt.Receiver.meta) _ -> observed_age := meta.Mmt.Receiver.age_us)
  in
  ignore
    (Mmt_sim.Engine.schedule engine ~at:(Units.Time.us 700.) (fun () ->
         Mmt.Receiver.on_packet receiver
           (data_packet
              ~age:
                {
                  Mmt.Header.age_us = 100;
                  budget_us = 500;
                  aged = false;
                  hop_count = 1;
                  last_touch_ns = Units.Time.us 200.;
                }
              ~engine ~id:0 64)));
  Mmt_sim.Engine.run engine;
  (* 100 us accumulated + (700 - 200) us since last touch = 600 us > 500 budget. *)
  Alcotest.(check (option int)) "final age" (Some 600) !observed_age;
  Alcotest.(check int) "aged" 1 (Mmt.Receiver.stats receiver).Mmt.Receiver.aged

let test_completion_and_goodput () =
  let engine = Mmt_sim.Engine.create () in
  let env, _queue = Mmt_runtime.Env.loopback engine in
  let receiver =
    Mmt.Receiver.create ~env (receiver_config ~expected_total:3 ())
      ~deliver:(fun _ _ -> ())
  in
  for seq = 0 to 2 do
    ignore
      (Mmt_sim.Engine.schedule engine
         ~at:(Units.Time.ms (float_of_int seq))
         (fun () -> Mmt.Receiver.on_packet receiver (data_packet ~seq ~engine ~id:seq 1000)))
  done;
  Mmt_sim.Engine.run engine;
  let stats = Mmt.Receiver.stats receiver in
  (match stats.Mmt.Receiver.completion with
  | Some t -> Alcotest.(check string) "completion at last arrival" "2ms" (Units.Time.to_string t)
  | None -> Alcotest.fail "expected completion");
  Alcotest.(check bool) "goodput positive" true
    (Units.Rate.to_bps (Mmt.Receiver.goodput receiver) > 0.)

let test_tail_loss_detected () =
  let engine = Mmt_sim.Engine.create () in
  let env, queue = Mmt_runtime.Env.loopback engine in
  let receiver =
    Mmt.Receiver.create ~env (receiver_config ~expected_total:5 ())
      ~deliver:(fun _ _ -> ())
  in
  (* Only 0..2 arrive; 3 and 4 are tail losses that no later packet
     can reveal. *)
  for seq = 0 to 2 do
    Mmt.Receiver.on_packet receiver (data_packet ~seq ~engine ~id:seq 64)
  done;
  Mmt_sim.Engine.run engine;
  let stats = Mmt.Receiver.stats receiver in
  Alcotest.(check int) "tail gaps detected" 2 stats.Mmt.Receiver.gaps_detected;
  Alcotest.(check bool) "tail NAKed" true (stats.Mmt.Receiver.naks_sent >= 1);
  match drain_queue queue with
  | first_nak :: _ -> (
      let _header, payload = decode_control first_nak in
      match Mmt.Control.Nak.decode payload with
      | Ok nak ->
          Alcotest.(check (list (pair int int))) "tail range" [ (3, 4) ]
            nak.Mmt.Control.Nak.ranges
      | Error e -> Alcotest.fail e)
  | [] -> Alcotest.fail "expected tail NAK"

let test_reordering_debounced_no_spurious_nak () =
  (* Mild reordering resolved within the NAK debounce must not reach
     the wire as a retransmission request. *)
  let engine = Mmt_sim.Engine.create () in
  let env, queue = Mmt_runtime.Env.loopback engine in
  let receiver = Mmt.Receiver.create ~env (receiver_config ~expected_total:4 ()) ~deliver:(fun _ _ -> ()) in
  (* 1 before 0, 3 before 2, all within well under nak_delay (1 ms). *)
  List.iteri
    (fun i seq ->
      ignore
        (Mmt_sim.Engine.schedule engine
           ~at:(Units.Time.scale (Units.Time.us 50.) (float_of_int i))
           (fun () -> Mmt.Receiver.on_packet receiver (data_packet ~seq ~engine ~id:seq 64))))
    [ 1; 0; 3; 2 ];
  Mmt_sim.Engine.run engine;
  let stats = Mmt.Receiver.stats receiver in
  Alcotest.(check int) "all delivered" 4 stats.Mmt.Receiver.delivered;
  Alcotest.(check int) "reordering observed" 2 stats.Mmt.Receiver.out_of_order;
  Alcotest.(check int) "no NAK reached the wire" 0 (List.length (drain_queue queue));
  Alcotest.(check bool) "completion" true (stats.Mmt.Receiver.completion <> None)

let test_head_loss_recovered () =
  (* The first packets of the stream are lost: the receiver must NAK
     sequences below its first arrival (streams are sequenced from 0). *)
  let engine = Mmt_sim.Engine.create () in
  let env, queue = Mmt_runtime.Env.loopback engine in
  let receiver = Mmt.Receiver.create ~env (receiver_config ()) ~deliver:(fun _ _ -> ()) in
  Mmt.Receiver.on_packet receiver (data_packet ~seq:3 ~engine ~id:3 64);
  Mmt_sim.Engine.run ~until:(Units.Time.ms 2.) engine;
  let stats = Mmt.Receiver.stats receiver in
  Alcotest.(check int) "head gaps detected" 3 stats.Mmt.Receiver.gaps_detected;
  (match drain_queue queue with
  | nak :: _ -> (
      let _header, payload = decode_control nak in
      match Mmt.Control.Nak.decode payload with
      | Ok nak ->
          Alcotest.(check (list (pair int int))) "head range" [ (0, 2) ]
            nak.Mmt.Control.Nak.ranges
      | Error e -> Alcotest.fail e)
  | [] -> Alcotest.fail "expected a head NAK");
  (* Recovery arrives. *)
  for seq = 0 to 2 do
    Mmt.Receiver.on_packet receiver (data_packet ~seq ~engine ~id:(100 + seq) 64)
  done;
  Mmt_sim.Engine.run engine;
  let stats = Mmt.Receiver.stats receiver in
  Alcotest.(check int) "recovered" 3 stats.Mmt.Receiver.recovered;
  Alcotest.(check int) "delivered all" 4 stats.Mmt.Receiver.delivered

let test_buffer_advert_retargets_recovery () =
  let engine = Mmt_sim.Engine.create () in
  let env, queue = Mmt_runtime.Env.loopback engine in
  let receiver = Mmt.Receiver.create ~env (receiver_config ()) ~deliver:(fun _ _ -> ()) in
  (* Create a gap whose NAKs point at [buffer_ip]. *)
  List.iter
    (fun seq -> Mmt.Receiver.on_packet receiver (data_packet ~seq ~engine ~id:seq 64))
    [ 0; 2 ];
  (* Run just far enough for the first NAK (nak_delay = 1 ms). *)
  Mmt_sim.Engine.run ~until:(Units.Time.ms 2.) engine;
  ignore (drain_queue queue);
  (* A buffer advertisement announces a replacement buffer. *)
  let new_buffer = Addr.Ip.of_octets 10 0 1 99 in
  let advert_header =
    Mmt.Header.with_kind (Mmt.Header.mode0 ~experiment) Mmt.Feature.Kind.Buffer_advert
  in
  let advert_payload =
    Mmt.Control.Buffer_advert.encode
      {
        Mmt.Control.Buffer_advert.buffer = new_buffer;
        capacity = Units.Size.mib 1;
        rtt_hint = Units.Time.ms 1.;
      }
  in
  let advert_packet =
    Mmt_sim.Packet.create ~id:500 ~born:(Mmt_sim.Engine.now engine)
      (Bytes.cat (Mmt.Header.encode advert_header) advert_payload)
  in
  Mmt.Receiver.on_packet receiver advert_packet;
  (* The pending gap is re-NAKed immediately, now toward the new buffer. *)
  Mmt_sim.Engine.run ~until:(Units.Time.ms 4.) engine;
  let stats = Mmt.Receiver.stats receiver in
  Alcotest.(check int) "source update counted" 1 stats.Mmt.Receiver.source_updates;
  (match drain_queue queue with
  | retargeted_nak :: _ -> (
      match Mmt.Encap.strip (Mmt_sim.Packet.frame retargeted_nak) with
      | Ok (Mmt.Encap.Over_ipv4 { dst; _ }, _) ->
          Alcotest.(check bool) "NAK re-aimed" true (Addr.Ip.equal dst new_buffer)
      | _ -> Alcotest.fail "expected IPv4 NAK")
  | [] -> Alcotest.fail "expected a retargeted NAK");
  Mmt_sim.Engine.run engine

(* Sender ------------------------------------------------------------------- *)

let sender_config ?deadline_budget ?backpressure_to ?pace () =
  {
    Mmt.Sender.experiment;
    destination = Addr.Ip.of_octets 10 0 3 1;
    encap = Mmt.Encap.Raw;
    deadline_budget;
    backpressure_to;
    pace;
    padding = 0;
  }

let test_sender_mode0_frames () =
  let engine = Mmt_sim.Engine.create () in
  let env, queue = Mmt_runtime.Env.loopback engine in
  let sender = Mmt.Sender.create ~env (sender_config ()) in
  Mmt.Sender.send sender (Bytes.of_string "payload");
  (match drain_queue queue with
  | [ packet ] ->
      let header, payload = decode_control packet in
      Alcotest.(check bool) "mode 0" true
        (Mmt.Feature.Set.equal header.Mmt.Header.features Mmt.Feature.Set.empty);
      Alcotest.(check bool) "experiment" true
        (Mmt.Experiment_id.equal header.Mmt.Header.experiment experiment);
      Alcotest.(check string) "payload" "payload" (Bytes.to_string payload)
  | _ -> Alcotest.fail "expected one frame");
  Alcotest.(check int) "stats" 1 (Mmt.Sender.stats sender).Mmt.Sender.messages_sent

let test_sender_deadline_budget () =
  let engine = Mmt_sim.Engine.create () in
  let env, queue = Mmt_runtime.Env.loopback engine in
  let sender =
    Mmt.Sender.create ~env
      (sender_config ~deadline_budget:(Units.Time.ms 5., notify_ip) ())
  in
  ignore
    (Mmt_sim.Engine.schedule engine ~at:(Units.Time.ms 2.) (fun () ->
         Mmt.Sender.send sender (Bytes.of_string "x")));
  Mmt_sim.Engine.run engine;
  match drain_queue queue with
  | [ packet ] -> (
      let header, _ = decode_control packet in
      match header.Mmt.Header.timely with
      | Some { Mmt.Header.deadline; notify } ->
          Alcotest.(check string) "deadline = send + budget" "7ms"
            (Units.Time.to_string deadline);
          Alcotest.(check bool) "notify" true (Addr.Ip.equal notify notify_ip)
      | None -> Alcotest.fail "expected timely extension")
  | _ -> Alcotest.fail "expected one frame"

let test_sender_pacing_spacing () =
  let engine = Mmt_sim.Engine.create () in
  let queue = Queue.create () in
  let departures = ref [] in
  let counter = ref 0 in
  let env =
    {
      Mmt_runtime.Env.engine;
      local_ip = Addr.Ip.of_octets 127 0 0 1;
      send =
        (fun _dst p ->
          departures := Mmt_sim.Engine.now engine :: !departures;
          Queue.push p queue);
      fresh_id = (fun () -> incr counter; !counter);
      ring = None;
    }
  in
  (* 1 Mbps pace, ~1000-bit messages -> about 1 ms spacing. *)
  let sender =
    Mmt.Sender.create ~env (sender_config ~pace:(Units.Rate.mbps 1.) ())
  in
  for _ = 1 to 3 do
    Mmt.Sender.send sender (Bytes.make 117 'p')
  done;
  Mmt_sim.Engine.run engine;
  match List.rev !departures with
  | [ a; b; c ] ->
      Alcotest.(check bool) "first immediate" true (Units.Time.is_zero a);
      Alcotest.(check bool) "spaced by about 1ms" true
        Units.Time.(Units.Time.diff b a >= Units.Time.us 900.
                    && Units.Time.diff c b >= Units.Time.us 900.)
  | other ->
      Alcotest.fail (Printf.sprintf "expected 3 departures, saw %d" (List.length other))

let test_sender_backpressure_adjusts_pace () =
  let engine = Mmt_sim.Engine.create () in
  let env, _queue = Mmt_runtime.Env.loopback engine in
  let sender =
    Mmt.Sender.create ~env (sender_config ~backpressure_to:notify_ip ())
  in
  let bp_header =
    Mmt.Header.with_kind (Mmt.Header.mode0 ~experiment) Mmt.Feature.Kind.Backpressure
  in
  let bp =
    { Mmt.Control.Backpressure.origin = buffer_ip; advised_pace_mbps = 250; severity = 150 }
  in
  Mmt.Sender.on_control sender bp_header (Mmt.Control.Backpressure.encode bp);
  let stats = Mmt.Sender.stats sender in
  Alcotest.(check int) "bp counted" 1 stats.Mmt.Sender.backpressure_received;
  (match stats.Mmt.Sender.current_pace with
  | Some pace ->
      Alcotest.(check bool) "pace applied" true
        (Float.abs (Units.Rate.to_bps pace -. 250e6) < 1.)
  | None -> Alcotest.fail "expected a pace");
  (* Severity 0 clears back to the configured pace (none). *)
  let clear = { bp with Mmt.Control.Backpressure.severity = 0 } in
  Mmt.Sender.on_control sender bp_header (Mmt.Control.Backpressure.encode clear);
  Alcotest.(check bool) "pace cleared" true
    ((Mmt.Sender.stats sender).Mmt.Sender.current_pace = None)

(* Buffer host ----------------------------------------------------------------- *)

let nak_packet ~engine ~requester ranges =
  let header =
    Mmt.Header.with_kind (Mmt.Header.mode0 ~experiment) Mmt.Feature.Kind.Nak
  in
  let payload = Mmt.Control.Nak.encode { Mmt.Control.Nak.requester; ranges } in
  let frame =
    Mmt.Encap.wrap
      (Mmt.Encap.Over_ipv4 { src = requester; dst = buffer_ip; dscp = 0; ttl = 64 })
      (Bytes.cat (Mmt.Header.encode header) payload)
  in
  Mmt_sim.Packet.create ~id:1000 ~born:(Mmt_sim.Engine.now engine) frame

let test_buffer_host_serves_nak () =
  let engine = Mmt_sim.Engine.create () in
  let env, queue = Mmt_runtime.Env.loopback engine in
  let host = Mmt.Buffer_host.create ~env ~capacity:(Units.Size.mib 1) () in
  for seq = 0 to 4 do
    Mmt.Buffer_host.store host ~seq ~born:Units.Time.zero (Bytes.make 50 'f')
  done;
  Mmt.Buffer_host.on_packet host
    (nak_packet ~engine ~requester:(Addr.Ip.of_octets 10 0 3 1) [ (1, 2); (4, 4) ]);
  let resent = drain_queue queue in
  Alcotest.(check int) "three frames resent" 3 (List.length resent);
  let stats = Mmt.Buffer_host.stats host in
  Alcotest.(check int) "naks" 1 stats.Mmt.Buffer_host.naks_received;
  Alcotest.(check int) "resent" 3 stats.Mmt.Buffer_host.frames_resent;
  Alcotest.(check int) "no escalation" 0 stats.Mmt.Buffer_host.escalated

let test_buffer_host_escalates_misses () =
  let engine = Mmt_sim.Engine.create () in
  let env, queue = Mmt_runtime.Env.loopback engine in
  let upstream = Addr.Ip.of_octets 10 0 0 1 in
  let host = Mmt.Buffer_host.create ~env ~capacity:(Units.Size.mib 1) ~upstream () in
  let stored_frame =
    Bytes.cat (Mmt.Header.encode (Mmt.Header.mode0 ~experiment)) (Bytes.make 50 'f')
  in
  Mmt.Buffer_host.store host ~seq:0 ~born:Units.Time.zero stored_frame;
  Mmt.Buffer_host.on_packet host
    (nak_packet ~engine ~requester:(Addr.Ip.of_octets 10 0 3 1) [ (0, 2) ]);
  let out = drain_queue queue in
  (* One resend (seq 0) plus one escalated NAK for 1-2. *)
  Alcotest.(check int) "two packets out" 2 (List.length out);
  let stats = Mmt.Buffer_host.stats host in
  Alcotest.(check int) "escalated" 2 stats.Mmt.Buffer_host.escalated;
  (* The escalated NAK covers exactly the missing range. *)
  let escalated_nak =
    List.filter_map
      (fun p ->
        let header, payload = decode_control p in
        if header.Mmt.Header.kind = Mmt.Feature.Kind.Nak then
          match Mmt.Control.Nak.decode payload with Ok n -> Some n | Error _ -> None
        else None)
      out
  in
  match escalated_nak with
  | [ nak ] ->
      Alcotest.(check (list (pair int int))) "missing range" [ (1, 2) ]
        nak.Mmt.Control.Nak.ranges
  | _ -> Alcotest.fail "expected one escalated NAK"

let test_buffer_host_unserviceable_without_upstream () =
  let engine = Mmt_sim.Engine.create () in
  let env, queue = Mmt_runtime.Env.loopback engine in
  let host = Mmt.Buffer_host.create ~env ~capacity:(Units.Size.mib 1) () in
  Mmt.Buffer_host.on_packet host
    (nak_packet ~engine ~requester:(Addr.Ip.of_octets 10 0 3 1) [ (5, 6) ]);
  Alcotest.(check int) "nothing sent" 0 (List.length (drain_queue queue));
  Alcotest.(check int) "unserviceable" 2
    (Mmt.Buffer_host.stats host).Mmt.Buffer_host.unserviceable

let test_buffer_host_advert () =
  let engine = Mmt_sim.Engine.create () in
  let env, _queue = Mmt_runtime.Env.loopback engine in
  let host = Mmt.Buffer_host.create ~env ~capacity:(Units.Size.mib 2) () in
  let advert = Mmt.Buffer_host.advert host ~rtt_hint:(Units.Time.ms 3.) in
  Alcotest.(check bool) "capacity advertised" true
    (Units.Size.equal advert.Mmt.Control.Buffer_advert.capacity (Units.Size.mib 2))

let suite =
  [
    Alcotest.test_case "in-order delivery" `Quick test_in_order_delivery;
    Alcotest.test_case "gap detection + NAK" `Quick test_gap_detection_and_nak;
    Alcotest.test_case "recovery" `Quick test_recovery_clears_missing;
    Alcotest.test_case "duplicate suppression" `Quick test_duplicate_suppression;
    Alcotest.test_case "gives up after retries" `Quick test_gives_up_after_max_retries;
    Alcotest.test_case "unsequenced passthrough" `Quick test_unsequenced_passthrough;
    Alcotest.test_case "corrupted dropped" `Quick test_corrupted_dropped;
    Alcotest.test_case "deadline notice" `Quick test_deadline_notice_emitted;
    Alcotest.test_case "on-time no notice" `Quick test_on_time_no_notice;
    Alcotest.test_case "final age accumulation" `Quick test_final_age_accumulation;
    Alcotest.test_case "completion + goodput" `Quick test_completion_and_goodput;
    Alcotest.test_case "tail loss detected" `Quick test_tail_loss_detected;
    Alcotest.test_case "reordering debounced" `Quick
      test_reordering_debounced_no_spurious_nak;
    Alcotest.test_case "head loss recovered" `Quick test_head_loss_recovered;
    Alcotest.test_case "buffer advert retargets recovery" `Quick
      test_buffer_advert_retargets_recovery;
    Alcotest.test_case "sender mode0 frames" `Quick test_sender_mode0_frames;
    Alcotest.test_case "sender deadline budget" `Quick test_sender_deadline_budget;
    Alcotest.test_case "sender pacing" `Quick test_sender_pacing_spacing;
    Alcotest.test_case "sender backpressure" `Quick test_sender_backpressure_adjusts_pace;
    Alcotest.test_case "buffer host serves NAK" `Quick test_buffer_host_serves_nak;
    Alcotest.test_case "buffer host escalates" `Quick test_buffer_host_escalates_misses;
    Alcotest.test_case "buffer host unserviceable" `Quick
      test_buffer_host_unserviceable_without_upstream;
    Alcotest.test_case "buffer host advert" `Quick test_buffer_host_advert;
  ]
