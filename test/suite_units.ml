open Mmt_util

let time = Alcotest.testable Units.Time.pp Units.Time.equal

let test_time_constructors () =
  Alcotest.check time "us" (Units.Time.ns 1_500) (Units.Time.us 1.5);
  Alcotest.check time "ms" (Units.Time.ns 2_000_000) (Units.Time.ms 2.);
  Alcotest.check time "s" (Units.Time.ns 3_000_000_000) (Units.Time.seconds 3.)

let test_time_saturating_sub () =
  let a = Units.Time.ms 1. in
  let b = Units.Time.ms 5. in
  Alcotest.check time "sub saturates at zero" Units.Time.zero (Units.Time.sub a b);
  Alcotest.check time "diff saturates" Units.Time.zero (Units.Time.diff a b);
  Alcotest.check time "normal diff" (Units.Time.ms 4.) (Units.Time.diff b a)

let test_time_ordering () =
  let open Units.Time in
  Alcotest.(check bool) "<" true (ms 1. < ms 2.);
  Alcotest.(check bool) "<=" true (ms 2. <= ms 2.);
  Alcotest.(check bool) ">" true (ms 3. > ms 2.);
  Alcotest.check time "min" (ms 1.) (min (ms 1.) (ms 2.));
  Alcotest.check time "max" (ms 2.) (max (ms 1.) (ms 2.))

let test_time_scale () =
  Alcotest.check time "scale" (Units.Time.ms 5.)
    (Units.Time.scale (Units.Time.ms 10.) 0.5);
  Alcotest.check time "scale to negative clamps" Units.Time.zero
    (Units.Time.scale (Units.Time.ms 10.) (-1.))

let test_time_pp () =
  Alcotest.(check string) "ns" "250ns" (Units.Time.to_string (Units.Time.ns 250));
  Alcotest.(check string) "us" "1.5us" (Units.Time.to_string (Units.Time.us 1.5));
  Alcotest.(check string) "ms" "13ms" (Units.Time.to_string (Units.Time.ms 13.))

let test_size () =
  Alcotest.(check int) "kib" 2048 (Units.Size.to_bytes (Units.Size.kib 2));
  Alcotest.(check int) "mib" (1024 * 1024) (Units.Size.to_bytes (Units.Size.mib 1));
  Alcotest.(check int) "bits" 80 (Units.Size.to_bits (Units.Size.bytes 10));
  Alcotest.(check int) "sub saturates" 0
    (Units.Size.to_bytes (Units.Size.sub (Units.Size.bytes 1) (Units.Size.bytes 5)))

let test_rate_transmission_time () =
  (* 1250 bytes = 10^4 bits at 10^9 bps -> 10 us. *)
  Alcotest.check time "serialization delay" (Units.Time.us 10.)
    (Units.Rate.transmission_time (Units.Rate.gbps 1.) (Units.Size.bytes 1250));
  Alcotest.check time "zero rate is instantaneous" Units.Time.zero
    (Units.Rate.transmission_time Units.Rate.zero (Units.Size.mib 1))

let test_rate_bytes_in () =
  Alcotest.(check int) "bytes in window" 1250
    (Units.Size.to_bytes (Units.Rate.bytes_in (Units.Rate.gbps 1.) (Units.Time.us 10.)))

let test_rate_measured () =
  let rate =
    Units.Rate.of_size_per_time (Units.Size.bytes 1_250_000) (Units.Time.ms 10.)
  in
  Alcotest.(check bool) "1 Gbps measured" true
    (Float.abs (Units.Rate.to_gbps rate -. 1.) < 1e-9);
  Alcotest.(check bool) "zero window" true
    (Units.Rate.is_zero (Units.Rate.of_size_per_time (Units.Size.mib 1) Units.Time.zero))

let test_rate_pp () =
  Alcotest.(check string) "gbps" "100Gbps" (Units.Rate.to_string (Units.Rate.gbps 100.));
  Alcotest.(check string) "tbps" "120Tbps" (Units.Rate.to_string (Units.Rate.tbps 120.))

let qcheck_transmission_roundtrip =
  QCheck.Test.make ~name:"bytes_in inverts transmission_time" ~count:300
    QCheck.(pair (int_range 1_000 1_000_000) (float_range 1e6 1e11))
    (fun (bytes, bps) ->
      let rate = Units.Rate.bps bps in
      let size = Units.Size.bytes bytes in
      let window = Units.Rate.transmission_time rate size in
      let recovered = Units.Size.to_bytes (Units.Rate.bytes_in rate window) in
      (* rounding to whole nanoseconds bounds the error *)
      abs (recovered - bytes) <= 1 + int_of_float (bps /. 8. *. 1e-9 +. 1.))

let suite =
  [
    Alcotest.test_case "time constructors" `Quick test_time_constructors;
    Alcotest.test_case "time saturating sub" `Quick test_time_saturating_sub;
    Alcotest.test_case "time ordering" `Quick test_time_ordering;
    Alcotest.test_case "time scale" `Quick test_time_scale;
    Alcotest.test_case "time pretty printing" `Quick test_time_pp;
    Alcotest.test_case "size" `Quick test_size;
    Alcotest.test_case "rate transmission time" `Quick test_rate_transmission_time;
    Alcotest.test_case "rate bytes_in" `Quick test_rate_bytes_in;
    Alcotest.test_case "rate measured" `Quick test_rate_measured;
    Alcotest.test_case "rate pretty printing" `Quick test_rate_pp;
    QCheck_alcotest.to_alcotest qcheck_transmission_roundtrip;
  ]
