(* Feature encoding, experiment IDs and the multi-modal header codec. *)
open Mmt_util
open Mmt_frame

(* Feature sets ----------------------------------------------------------- *)

let test_feature_bits_distinct () =
  let bits = List.map Mmt.Feature.bit Mmt.Feature.all in
  Alcotest.(check int) "distinct bits" (List.length Mmt.Feature.all)
    (List.length (List.sort_uniq compare bits))

let test_feature_set_ops () =
  let open Mmt.Feature in
  let s = Set.of_list [ Sequenced; Reliable ] in
  Alcotest.(check bool) "mem" true (Set.mem Sequenced s);
  Alcotest.(check bool) "not mem" false (Set.mem Timely s);
  Alcotest.(check int) "cardinal" 2 (Set.cardinal s);
  let s2 = Set.remove Sequenced s in
  Alcotest.(check bool) "removed" false (Set.mem Sequenced s2);
  Alcotest.(check bool) "subset" true (Set.subset s2 s);
  Alcotest.(check bool) "not subset" false (Set.subset s s2);
  Alcotest.(check bool) "union" true
    (Set.equal (Set.union s2 (Set.of_list [ Sequenced ])) s)

let test_config_data_roundtrip () =
  let open Mmt.Feature in
  List.iter
    (fun kind ->
      let set = Set.of_list [ Sequenced; Timely; Encrypted ] in
      let data = encode_config_data ~kind set in
      match decode_config_data data with
      | Ok (kind', set') ->
          Alcotest.(check bool) "kind" true (Kind.equal kind kind');
          Alcotest.(check bool) "set" true (Set.equal set set')
      | Error e -> Alcotest.fail e)
    [ Kind.Data; Kind.Nak; Kind.Deadline_exceeded; Kind.Backpressure; Kind.Buffer_advert ]

let test_config_data_rejects_reserved () =
  Alcotest.(check bool) "reserved bits rejected" true
    (match Mmt.Feature.decode_config_data 0x10000 with Error _ -> true | Ok _ -> false)

let test_config_data_rejects_unknown_kind () =
  Alcotest.(check bool) "unknown kind rejected" true
    (match Mmt.Feature.decode_config_data (15 lsl 20) with
    | Error _ -> true
    | Ok _ -> false)

(* Experiment IDs ---------------------------------------------------------- *)

let test_experiment_id_fields () =
  let id = Mmt.Experiment_id.make ~experiment:0xABCDEF ~slice:42 in
  Alcotest.(check int) "experiment" 0xABCDEF (Mmt.Experiment_id.experiment id);
  Alcotest.(check int) "slice" 42 (Mmt.Experiment_id.slice id);
  let id' = Mmt.Experiment_id.of_int32 (Mmt.Experiment_id.to_int32 id) in
  Alcotest.(check bool) "int32 roundtrip" true (Mmt.Experiment_id.equal id id')

let test_experiment_id_bounds () =
  Alcotest.(check bool) "experiment too big" true
    (match Mmt.Experiment_id.make ~experiment:0x1000000 ~slice:0 with
    | _ -> false
    | exception Invalid_argument _ -> true);
  Alcotest.(check bool) "slice too big" true
    (match Mmt.Experiment_id.make ~experiment:0 ~slice:256 with
    | _ -> false
    | exception Invalid_argument _ -> true)

let test_with_slice () =
  let id = Mmt.Experiment_id.make ~experiment:7 ~slice:1 in
  let id2 = Mmt.Experiment_id.with_slice id 3 in
  Alcotest.(check int) "same experiment" 7 (Mmt.Experiment_id.experiment id2);
  Alcotest.(check int) "new slice" 3 (Mmt.Experiment_id.slice id2)

(* Header ------------------------------------------------------------------ *)

let experiment = Mmt.Experiment_id.make ~experiment:2 ~slice:1

let full_header =
  Mmt.Header.create ~sequence:12345
    ~retransmit_from:(Addr.Ip.of_octets 10 0 1 1)
    ~timely:
      { Mmt.Header.deadline = Units.Time.ms 42.; notify = Addr.Ip.of_octets 10 0 0 1 }
    ~age:
      {
        Mmt.Header.age_us = 150;
        budget_us = 20_000;
        aged = false;
        hop_count = 2;
        last_touch_ns = Units.Time.us 77.;
      }
    ~pace_mbps:5000
    ~backpressure_to:(Addr.Ip.of_octets 10 0 0 1)
    ~extra_features:[ Mmt.Feature.Encrypted ] ~experiment ()

let check_roundtrip name header =
  match Mmt.Header.decode_bytes (Mmt.Header.encode header) with
  | Ok decoded -> Alcotest.(check bool) name true (Mmt.Header.equal header decoded)
  | Error e -> Alcotest.fail (name ^ ": " ^ e)

let test_mode0_roundtrip () =
  let header = Mmt.Header.mode0 ~experiment in
  Alcotest.(check int) "core size only" Mmt.Header.core_size (Mmt.Header.size header);
  check_roundtrip "mode0" header

let test_full_roundtrip () =
  Alcotest.(check int) "full size" (8 + 4 + 4 + 12 + 20 + 4 + 4)
    (Mmt.Header.size full_header);
  check_roundtrip "full" full_header

let test_each_single_extension () =
  check_roundtrip "seq only" (Mmt.Header.create ~sequence:7 ~experiment ());
  check_roundtrip "timely only"
    (Mmt.Header.create
       ~timely:{ Mmt.Header.deadline = Units.Time.ms 1.; notify = Addr.Ip.any }
       ~experiment ());
  check_roundtrip "pace only" (Mmt.Header.create ~pace_mbps:123 ~experiment ());
  check_roundtrip "bp only"
    (Mmt.Header.create ~backpressure_to:(Addr.Ip.of_octets 1 2 3 4) ~experiment ())

let test_feature_bits_match_fields () =
  let open Mmt.Feature in
  let f = full_header.Mmt.Header.features in
  List.iter
    (fun feature -> Alcotest.(check bool) (to_string feature) true (Set.mem feature f))
    [ Sequenced; Reliable; Timely; Age_tracked; Paced; Backpressured; Encrypted ];
  Alcotest.(check bool) "not duplicated" false (Set.mem Duplicated f)

let test_create_rejects_fielded_extra () =
  Alcotest.(check bool) "extra_features with field rejected" true
    (match
       Mmt.Header.create ~extra_features:[ Mmt.Feature.Sequenced ] ~experiment ()
     with
    | _ -> false
    | exception Invalid_argument _ -> true)

let test_strip () =
  let stripped = Mmt.Header.strip full_header Mmt.Feature.Timely in
  Alcotest.(check bool) "timely gone" true (stripped.Mmt.Header.timely = None);
  Alcotest.(check bool) "bit cleared" false
    (Mmt.Feature.Set.mem Mmt.Feature.Timely stripped.Mmt.Header.features);
  Alcotest.(check int) "size shrank" (Mmt.Header.size full_header - 12)
    (Mmt.Header.size stripped);
  check_roundtrip "stripped" stripped

let test_with_kind () =
  let nak = Mmt.Header.with_kind (Mmt.Header.mode0 ~experiment) Mmt.Feature.Kind.Nak in
  check_roundtrip "nak kind" nak

let test_decode_rejects_bad_version () =
  let raw = Mmt.Header.encode (Mmt.Header.mode0 ~experiment) in
  Bytes.set raw 0 '\x02';
  Alcotest.(check bool) "bad version" true
    (match Mmt.Header.decode_bytes raw with Error _ -> true | Ok _ -> false)

let test_decode_rejects_truncation () =
  let raw = Mmt.Header.encode full_header in
  let truncated = Bytes.sub raw 0 (Bytes.length raw - 5) in
  Alcotest.(check bool) "truncated" true
    (match Mmt.Header.decode_bytes truncated with Error _ -> true | Ok _ -> false)

let test_offset_of_age () =
  Alcotest.(check (option int)) "full header age offset" (Some (8 + 4 + 4 + 12))
    (Mmt.Header.offset_of_age full_header);
  Alcotest.(check (option int)) "no age" None
    (Mmt.Header.offset_of_age (Mmt.Header.mode0 ~experiment));
  let age_only =
    Mmt.Header.create
      ~age:
        {
          Mmt.Header.age_us = 0;
          budget_us = 10;
          aged = false;
          hop_count = 0;
          last_touch_ns = Units.Time.zero;
        }
      ~experiment ()
  in
  Alcotest.(check (option int)) "age right after core" (Some 8)
    (Mmt.Header.offset_of_age age_only)

let test_touch_age_in_place () =
  let header =
    Mmt.Header.create
      ~age:
        {
          Mmt.Header.age_us = 100;
          budget_us = 1_000;
          aged = false;
          hop_count = 3;
          last_touch_ns = Units.Time.us 50.;
        }
      ~experiment ()
  in
  let frame = Mmt.Header.encode header in
  let ext_off = Option.get (Mmt.Header.offset_of_age header) in
  (* 500 us later: age grows by 450 us (from last touch at 50 us). *)
  let age_us, aged = Mmt.Header.touch_age_in_place frame ~ext_off ~now:(Units.Time.us 500.) in
  Alcotest.(check int) "age accumulated" 550 age_us;
  Alcotest.(check bool) "not aged yet" false aged;
  (match Mmt.Header.decode_bytes frame with
  | Ok decoded ->
      let age = Option.get decoded.Mmt.Header.age in
      Alcotest.(check int) "persisted age" 550 age.Mmt.Header.age_us;
      Alcotest.(check int) "hop bumped" 4 age.Mmt.Header.hop_count;
      Alcotest.(check bool) "touch updated" true
        (Units.Time.equal age.Mmt.Header.last_touch_ns (Units.Time.us 500.))
  | Error e -> Alcotest.fail e);
  (* Push past the budget: aged flag latches. *)
  let _, aged = Mmt.Header.touch_age_in_place frame ~ext_off ~now:(Units.Time.us 1200.) in
  Alcotest.(check bool) "aged past budget" true aged;
  let _, still_aged = Mmt.Header.touch_age_in_place frame ~ext_off ~now:(Units.Time.us 1201.) in
  Alcotest.(check bool) "aged flag latches" true still_aged

(* Checksummed headers ----------------------------------------------------- *)

let checksummed_header =
  Mmt.Header.with_checksummed
    (Mmt.Header.create ~sequence:4242
       ~retransmit_from:(Addr.Ip.of_octets 10 0 1 1)
       ~experiment ())

let test_checksummed_roundtrip () =
  let plain =
    Mmt.Header.create ~sequence:4242
      ~retransmit_from:(Addr.Ip.of_octets 10 0 1 1)
      ~experiment ()
  in
  Alcotest.(check int) "adds checksum_size"
    (Mmt.Header.size plain + Mmt.Header.checksum_size)
    (Mmt.Header.size checksummed_header);
  check_roundtrip "checksummed" checksummed_header

let test_checksum_verifies_clean () =
  let frame = Mmt.Header.encode checksummed_header in
  match Mmt.Header.View.of_frame frame with
  | Error e -> Alcotest.fail e
  | Ok view ->
      Alcotest.(check bool) "has feature" true
        (Mmt.Header.View.has view Mmt.Feature.Checksummed);
      Alcotest.(check bool) "sums clean" true (Mmt.Header.View.verify view);
      Alcotest.(check bool) "raw verify" true
        (Mmt.Header.verify_in_place frame ~off:0
           ~size:(Mmt.Header.size checksummed_header))

(* The detection guarantee behind lib/fault's bit-flip corruption: any
   single-bit flip anywhere in a sealed header is either caught (parse
   failure or checksum mismatch) or it erased the Checksummed feature
   bit itself — which a path that requires sealing treats as
   corruption too (Checksum_verify ~require:true). *)
let test_single_bit_flips_caught () =
  let clean = Mmt.Header.encode checksummed_header in
  for byte = 0 to Bytes.length clean - 1 do
    for bit = 0 to 7 do
      let frame = Bytes.copy clean in
      Bytes.set frame byte
        (Char.chr (Char.code (Bytes.get frame byte) lxor (1 lsl bit)));
      let undetected =
        match Mmt.Header.View.of_frame frame with
        | Error _ -> false
        | Ok view ->
            Mmt.Header.View.has view Mmt.Feature.Checksummed
            && Mmt.Header.View.verify view
      in
      if undetected then
        Alcotest.failf "flip of byte %d bit %d went undetected" byte bit
    done
  done

let test_view_setters_reseal () =
  let frame = Mmt.Header.encode checksummed_header in
  match Mmt.Header.View.of_frame frame with
  | Error e -> Alcotest.fail e
  | Ok view ->
      Mmt.Header.View.set_sequence view 99_999;
      Alcotest.(check int) "sequence updated" 99_999
        (Mmt.Header.View.sequence view);
      Alcotest.(check bool) "resealed after set_sequence" true
        (Mmt.Header.View.verify view);
      Mmt.Header.View.set_retransmit_from view (Addr.Ip.of_octets 10 9 9 9);
      Alcotest.(check bool) "resealed after set_retransmit_from" true
        (Mmt.Header.View.verify view);
      (* The reseal must leave the header decodable with the new values. *)
      (match Mmt.Header.decode_bytes frame with
      | Ok decoded ->
          Alcotest.(check (option int)) "decoded sequence" (Some 99_999)
            decoded.Mmt.Header.sequence
      | Error e -> Alcotest.fail e)

let test_strip_checksummed () =
  let stripped = Mmt.Header.strip checksummed_header Mmt.Feature.Checksummed in
  Alcotest.(check bool) "feature gone" false
    (Mmt.Feature.Set.mem Mmt.Feature.Checksummed
       stripped.Mmt.Header.features);
  Alcotest.(check int) "size shrinks"
    (Mmt.Header.size checksummed_header - Mmt.Header.checksum_size)
    (Mmt.Header.size stripped);
  check_roundtrip "stripped still roundtrips" stripped

let qcheck_header_roundtrip =
  let gen =
    QCheck.Gen.(
      let* seq = opt (int_range 0 0xFFFFFFF) in
      let* has_rtx = bool in
      let* has_timely = bool in
      let* has_age = bool in
      let* pace = opt (int_range 0 1_000_000) in
      let* exp_num = int_range 0 0xFFFFFF in
      let* slice = int_range 0 255 in
      return (seq, has_rtx, has_timely, has_age, pace, exp_num, slice))
  in
  QCheck.Test.make ~name:"header roundtrip (random feature subsets)" ~count:500
    (QCheck.make gen)
    (fun (seq, has_rtx, has_timely, has_age, pace, exp_num, slice) ->
      let experiment = Mmt.Experiment_id.make ~experiment:exp_num ~slice in
      let header =
        Mmt.Header.create ?sequence:seq
          ?retransmit_from:(if has_rtx then Some (Addr.Ip.of_octets 10 1 1 1) else None)
          ?timely:
            (if has_timely then
               Some { Mmt.Header.deadline = Units.Time.ms 7.; notify = Addr.Ip.any }
             else None)
          ?age:
            (if has_age then
               Some
                 {
                   Mmt.Header.age_us = 5;
                   budget_us = 10;
                   aged = false;
                   hop_count = 1;
                   last_touch_ns = Units.Time.zero;
                 }
             else None)
          ?pace_mbps:pace ~experiment ()
      in
      match Mmt.Header.decode_bytes (Mmt.Header.encode header) with
      | Ok decoded -> Mmt.Header.equal header decoded
      | Error _ -> false)

let qcheck_size_matches_encode =
  QCheck.Test.make ~name:"size agrees with encoded length" ~count:300
    QCheck.(pair bool (pair bool bool))
    (fun (a, (b, c)) ->
      let header =
        Mmt.Header.create
          ?sequence:(if a then Some 9 else None)
          ?retransmit_from:(if b then Some (Addr.Ip.of_octets 1 1 1 1) else None)
          ?pace_mbps:(if c then Some 77 else None)
          ~experiment ()
      in
      Bytes.length (Mmt.Header.encode header) = Mmt.Header.size header)

let suite =
  [
    Alcotest.test_case "feature bits distinct" `Quick test_feature_bits_distinct;
    Alcotest.test_case "feature set ops" `Quick test_feature_set_ops;
    Alcotest.test_case "config data roundtrip" `Quick test_config_data_roundtrip;
    Alcotest.test_case "reserved bits rejected" `Quick test_config_data_rejects_reserved;
    Alcotest.test_case "unknown kind rejected" `Quick test_config_data_rejects_unknown_kind;
    Alcotest.test_case "experiment id fields" `Quick test_experiment_id_fields;
    Alcotest.test_case "experiment id bounds" `Quick test_experiment_id_bounds;
    Alcotest.test_case "with_slice" `Quick test_with_slice;
    Alcotest.test_case "mode0 roundtrip" `Quick test_mode0_roundtrip;
    Alcotest.test_case "full roundtrip" `Quick test_full_roundtrip;
    Alcotest.test_case "single extensions" `Quick test_each_single_extension;
    Alcotest.test_case "feature bits match fields" `Quick test_feature_bits_match_fields;
    Alcotest.test_case "extra_features validation" `Quick test_create_rejects_fielded_extra;
    Alcotest.test_case "strip" `Quick test_strip;
    Alcotest.test_case "with_kind" `Quick test_with_kind;
    Alcotest.test_case "bad version rejected" `Quick test_decode_rejects_bad_version;
    Alcotest.test_case "truncation rejected" `Quick test_decode_rejects_truncation;
    Alcotest.test_case "offset_of_age" `Quick test_offset_of_age;
    Alcotest.test_case "touch_age_in_place" `Quick test_touch_age_in_place;
    Alcotest.test_case "checksummed roundtrip" `Quick test_checksummed_roundtrip;
    Alcotest.test_case "checksum verifies clean" `Quick test_checksum_verifies_clean;
    Alcotest.test_case "single-bit flips caught" `Quick test_single_bit_flips_caught;
    Alcotest.test_case "view setters reseal" `Quick test_view_setters_reseal;
    Alcotest.test_case "strip checksummed" `Quick test_strip_checksummed;
    QCheck_alcotest.to_alcotest qcheck_header_roundtrip;
    QCheck_alcotest.to_alcotest qcheck_size_matches_encode;
  ]
