(* Differential coverage for the zero-copy Header.View layer: every
   view read must agree with the corresponding [decode] field, and every
   in-place view write must produce exactly the bytes that decode ->
   modify -> encode would. *)
open Mmt_util
open Mmt_frame

let experiment = Mmt.Experiment_id.make ~experiment:2 ~slice:1
let ip1 = Addr.Ip.of_octets 10 0 1 1
let ip2 = Addr.Ip.of_octets 10 0 0 1

let kinds =
  [
    Mmt.Feature.Kind.Data;
    Mmt.Feature.Kind.Nak;
    Mmt.Feature.Kind.Deadline_exceeded;
    Mmt.Feature.Kind.Backpressure;
    Mmt.Feature.Kind.Buffer_advert;
  ]

type spec = {
  seq : int option;
  rtx : bool;
  timely : bool;
  age : bool;
  pace : int option;
  bp : bool;
  int_n : int option;  (* Some n: INT stack with n stamped records *)
  overflowed : bool;
  encrypted : bool;
  duplicated : bool;
  kind_i : int;
  payload_len : int;
  prefix_len : int;  (* leading bytes before the header: tests ~off *)
}

let gen_spec =
  QCheck.Gen.(
    let* seq = opt (int_range 0 0xFFFFFFF) in
    let* rtx = bool in
    let* timely = bool in
    let* age = bool in
    let* pace = opt (int_range 0 1_000_000) in
    let* bp = bool in
    let* int_n = opt (int_range 0 Mmt.Header.max_int_hops) in
    let* overflowed = bool in
    let* encrypted = bool in
    let* duplicated = bool in
    let* kind_i = int_range 0 (List.length kinds - 1) in
    let* payload_len = int_range 0 64 in
    let* prefix_len = int_range 0 16 in
    return
      {
        seq;
        rtx;
        timely;
        age;
        pace;
        bp;
        int_n;
        overflowed;
        encrypted;
        duplicated;
        kind_i;
        payload_len;
        prefix_len;
      })

let header_of_spec s =
  let extra =
    (if s.encrypted then [ Mmt.Feature.Encrypted ] else [])
    @ if s.duplicated then [ Mmt.Feature.Duplicated ] else []
  in
  let int_stack =
    Option.map
      (fun n ->
        {
          Mmt.Header.records =
            List.init n (fun i ->
                {
                  Mmt.Header.node_id = 100 + i;
                  mode_id = i;
                  hop_index = i;
                  queue_depth = 4096 * (i + 1);
                  ingress_ns = Units.Time.us (float_of_int (10 * i));
                  egress_ns = Units.Time.us (float_of_int ((10 * i) + 2));
                });
          overflowed = s.overflowed;
        })
      s.int_n
  in
  let header =
    Mmt.Header.create ?sequence:s.seq
      ?retransmit_from:(if s.rtx then Some ip1 else None)
      ?timely:
        (if s.timely then
           Some { Mmt.Header.deadline = Units.Time.ms 42.; notify = ip2 }
         else None)
      ?age:
        (if s.age then
           Some
             {
               Mmt.Header.age_us = 150;
               budget_us = 20_000;
               aged = false;
               hop_count = 2;
               last_touch_ns = Units.Time.us 77.;
             }
         else None)
      ?pace_mbps:s.pace
      ?backpressure_to:(if s.bp then Some ip2 else None)
      ?int_stack ~extra_features:extra ~experiment ()
  in
  Mmt.Header.with_kind header (List.nth kinds s.kind_i)

(* prefix ^ encoded header ^ payload, returning the header offset. *)
let frame_of_spec s =
  let header = header_of_spec s in
  let frame =
    Bytes.concat Bytes.empty
      [
        Bytes.make s.prefix_len '\x00';
        Mmt.Header.encode header;
        Bytes.make s.payload_len 'p';
      ]
  in
  (frame, s.prefix_len, header)

let view_exn ~off frame =
  match Mmt.Header.View.of_frame ~off frame with
  | Ok view -> view
  | Error reason -> QCheck.Test.fail_reportf "View.of_frame: %s" reason

(* A read that must raise Invalid_argument when the feature is absent,
   and agree with [expected] when present. *)
let agrees present read expected =
  if present then read () = expected ()
  else match read () with _ -> false | exception Invalid_argument _ -> true

let qcheck_reads_match_decode =
  QCheck.Test.make ~name:"view reads = decode fields (all feature combos)"
    ~count:500 (QCheck.make gen_spec) (fun s ->
      let frame, off, _ = frame_of_spec s in
      let header =
        match Mmt.Header.decode_bytes ~off frame with
        | Ok h -> h
        | Error reason -> QCheck.Test.fail_reportf "decode_bytes: %s" reason
      in
      let v = view_exn ~off frame in
      let open Mmt.Header in
      Mmt.Feature.Kind.equal (View.kind v) header.kind
      && Mmt.Feature.Set.equal (View.features v) header.features
      && View.size v = size header
      && Mmt.Experiment_id.equal (View.experiment v) header.experiment
      && agrees (header.sequence <> None)
           (fun () -> View.sequence v)
           (fun () -> Option.get header.sequence)
      && agrees (header.retransmit_from <> None)
           (fun () -> View.retransmit_from v)
           (fun () -> Option.get header.retransmit_from)
      && agrees (header.timely <> None)
           (fun () -> View.deadline_ns v)
           (fun () -> (Option.get header.timely).deadline)
      && agrees (header.timely <> None)
           (fun () -> View.notify v)
           (fun () -> (Option.get header.timely).notify)
      && agrees (header.age <> None)
           (fun () -> View.age_us v)
           (fun () -> (Option.get header.age).age_us)
      && agrees (header.age <> None)
           (fun () -> View.budget_us v)
           (fun () -> (Option.get header.age).budget_us)
      && agrees (header.age <> None)
           (fun () -> View.aged v)
           (fun () -> (Option.get header.age).aged)
      && agrees (header.age <> None)
           (fun () -> View.hop_count v)
           (fun () -> (Option.get header.age).hop_count)
      && agrees (header.age <> None)
           (fun () -> View.last_touch_ns v)
           (fun () -> (Option.get header.age).last_touch_ns)
      && agrees (header.pace_mbps <> None)
           (fun () -> View.pace_mbps v)
           (fun () -> Option.get header.pace_mbps)
      && agrees (header.backpressure_to <> None)
           (fun () -> View.backpressure_to v)
           (fun () -> Option.get header.backpressure_to)
      && agrees (header.int_stack <> None)
           (fun () -> View.int_count v)
           (fun () -> List.length (Option.get header.int_stack).records)
      && agrees (header.int_stack <> None)
           (fun () -> View.int_overflowed v)
           (fun () -> (Option.get header.int_stack).overflowed)
      && agrees (header.int_stack <> None)
           (fun () -> View.int_records v)
           (fun () -> (Option.get header.int_stack).records))

(* Every setter: mutate through the view, then check the whole frame
   (prefix, header and payload) equals decode -> with_* -> encode. *)
let qcheck_writes_match_reencode =
  QCheck.Test.make ~name:"view writes = decode/modify/encode, byte-for-byte"
    ~count:500 (QCheck.make gen_spec) (fun s ->
      let frame, off, _ = frame_of_spec s in
      let header =
        match Mmt.Header.decode_bytes ~off frame with
        | Ok h -> h
        | Error reason -> QCheck.Test.fail_reportf "decode_bytes: %s" reason
      in
      let v = view_exn ~off frame in
      let open Mmt.Header in
      let header = ref header in
      if View.has v Mmt.Feature.Sequenced then begin
        View.set_sequence v 0xABCDEF;
        header := with_sequence !header 0xABCDEF
      end;
      if View.has v Mmt.Feature.Reliable then begin
        View.set_retransmit_from v ip2;
        header := with_retransmit_from !header ip2
      end;
      if View.has v Mmt.Feature.Timely then begin
        View.set_deadline_ns v (Units.Time.ms 99.);
        View.set_notify v ip1;
        header := with_timely !header { deadline = Units.Time.ms 99.; notify = ip1 }
      end;
      if View.has v Mmt.Feature.Paced then begin
        View.set_pace_mbps v 123456;
        header := with_pace !header 123456
      end;
      if View.has v Mmt.Feature.Backpressured then begin
        View.set_backpressure_to v ip1;
        header := with_backpressure_to !header ip1
      end;
      let expected =
        Bytes.concat Bytes.empty
          [
            Bytes.make s.prefix_len '\x00';
            encode !header;
            Bytes.make s.payload_len 'p';
          ]
      in
      Bytes.equal frame expected)

let qcheck_touch_age_matches_primitive =
  QCheck.Test.make ~name:"view touch_age = touch_age_in_place" ~count:200
    (QCheck.make gen_spec) (fun s ->
      let s = { s with age = true } in
      let frame, off, header = frame_of_spec s in
      let reference = Bytes.copy frame in
      let v = view_exn ~off frame in
      let now = Units.Time.us 500. in
      let via_view = Mmt.Header.View.touch_age v ~now in
      let ext_off = off + Option.get (Mmt.Header.offset_of_age header) in
      let via_primitive =
        Mmt.Header.touch_age_in_place reference ~ext_off ~now
      in
      via_view = via_primitive && Bytes.equal frame reference)

let qcheck_push_int_matches_decode =
  QCheck.Test.make ~name:"view push_int_record = decoded append" ~count:300
    (QCheck.make gen_spec) (fun s ->
      let s = { s with int_n = Some (Option.value ~default:0 s.int_n) } in
      let n = Option.get s.int_n in
      let frame, off, _ = frame_of_spec s in
      let v = view_exn ~off frame in
      let pushed =
        Mmt.Header.View.push_int_record v ~node_id:999 ~mode_id:7
          ~queue_depth:123456 ~ingress:(Units.Time.us 50.)
          ~egress:(Units.Time.us 51.)
      in
      let stack =
        match Mmt.Header.decode_bytes ~off frame with
        | Ok { Mmt.Header.int_stack = Some stack; _ } -> stack
        | Ok _ -> QCheck.Test.fail_report "INT stack vanished"
        | Error reason -> QCheck.Test.fail_reportf "decode after push: %s" reason
      in
      if n < Mmt.Header.max_int_hops then
        (* Room left: the stamp lands in slot [n] with hop_index [n]. *)
        pushed = Some n
        && List.length stack.Mmt.Header.records = n + 1
        && stack.Mmt.Header.overflowed = s.overflowed
        && List.nth stack.Mmt.Header.records n
           = {
               Mmt.Header.node_id = 999;
               mode_id = 7;
               hop_index = n;
               queue_depth = 123456;
               ingress_ns = Units.Time.us 50.;
               egress_ns = Units.Time.us 51.;
             }
      else
        (* Full: the push sets the overflow flag instead. *)
        pushed = None
        && List.length stack.Mmt.Header.records = n
        && stack.Mmt.Header.overflowed)

let qcheck_strip_int_matches_reencode =
  QCheck.Test.make ~name:"view strip_int = decode/strip/encode + payload"
    ~count:300 (QCheck.make gen_spec) (fun s ->
      let s = { s with int_n = Some (Option.value ~default:2 s.int_n) } in
      let frame, off, header = frame_of_spec s in
      let v = view_exn ~off frame in
      let stripped = Mmt.Header.View.strip_int v in
      let expected =
        let without = Mmt.Header.strip header Mmt.Feature.Int_telemetry in
        Bytes.cat (Mmt.Header.encode without) (Bytes.make s.payload_len 'p')
      in
      Bytes.equal stripped expected)

let qcheck_set_duplicated_matches_encode =
  QCheck.Test.make ~name:"view set_duplicated = encode with Duplicated"
    ~count:300 (QCheck.make gen_spec) (fun s ->
      let s = { s with duplicated = false; prefix_len = 0; payload_len = 0 } in
      let frame, off, _ = frame_of_spec s in
      let v = view_exn ~off frame in
      Mmt.Header.View.set_duplicated v;
      let expected = Mmt.Header.encode (header_of_spec { s with duplicated = true }) in
      Bytes.equal frame expected)

(* [of_frame] must be total and accept exactly the frames [decode_bytes]
   accepts — same validation, no decode. *)
let qcheck_of_frame_agrees_with_decode =
  let gen =
    QCheck.Gen.(
      let* spec = gen_spec in
      let* mutations =
        list_size (int_range 0 6) (pair (int_range 0 200) (int_range 0 255))
      in
      return (spec, mutations))
  in
  QCheck.Test.make ~name:"of_frame ok-agreement with decode_bytes under mutation"
    ~count:1000 (QCheck.make gen) (fun (s, mutations) ->
      let frame, off, _ = frame_of_spec s in
      List.iter
        (fun (pos, value) ->
          if Bytes.length frame > 0 then
            Bytes.set frame (pos mod Bytes.length frame) (Char.chr value))
        mutations;
      let decoded = Mmt.Header.decode_bytes ~off frame in
      let viewed = Mmt.Header.View.of_frame ~off frame in
      Result.is_ok decoded = Result.is_ok viewed)

let qcheck_of_frame_total_on_garbage =
  QCheck.Test.make ~name:"of_frame never raises on arbitrary bytes" ~count:1000
    QCheck.(string_of_size (QCheck.Gen.int_range 0 200))
    (fun garbage ->
      let frame = Bytes.of_string garbage in
      match Mmt.Header.View.of_frame frame with Ok _ | Error _ -> true)

let suite =
  [
    QCheck_alcotest.to_alcotest qcheck_reads_match_decode;
    QCheck_alcotest.to_alcotest qcheck_writes_match_reencode;
    QCheck_alcotest.to_alcotest qcheck_touch_age_matches_primitive;
    QCheck_alcotest.to_alcotest qcheck_push_int_matches_decode;
    QCheck_alcotest.to_alcotest qcheck_strip_int_matches_reencode;
    QCheck_alcotest.to_alcotest qcheck_set_duplicated_matches_encode;
    QCheck_alcotest.to_alcotest qcheck_of_frame_agrees_with_decode;
    QCheck_alcotest.to_alcotest qcheck_of_frame_total_on_garbage;
  ]
