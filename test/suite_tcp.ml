(* Baseline TCP: segment codec, congestion control, connection dynamics,
   message framing, UDP transport. *)
open Mmt_util

(* Segment --------------------------------------------------------------- *)

let test_segment_roundtrip () =
  let seg =
    Mmt_tcp.Segment.data ~src_port:42 ~dst_port:17 ~seq:123456789012L
      ~ack:987654321098L ~window:1_000_000 (Bytes.of_string "abc")
  in
  match Mmt_tcp.Segment.decode (Mmt_tcp.Segment.encode seg) with
  | Ok decoded -> Alcotest.(check bool) "equal" true (Mmt_tcp.Segment.equal seg decoded)
  | Error e -> Alcotest.fail e

let test_pure_ack_roundtrip () =
  let seg = Mmt_tcp.Segment.pure_ack ~src_port:1 ~dst_port:1 ~ack:55L ~window:4096 in
  match Mmt_tcp.Segment.decode (Mmt_tcp.Segment.encode seg) with
  | Ok decoded ->
      Alcotest.(check bool) "flags" true decoded.Mmt_tcp.Segment.flags.Mmt_tcp.Segment.ack;
      Alcotest.(check int) "no payload" 0 (Bytes.length decoded.Mmt_tcp.Segment.payload)
  | Error e -> Alcotest.fail e

let test_segment_rejects_foreign () =
  Alcotest.(check bool) "mmt frame is not tcp" true
    (match
       Mmt_tcp.Segment.decode
         (Mmt.Header.encode
            (Mmt.Header.mode0 ~experiment:(Mmt.Experiment_id.make ~experiment:1 ~slice:0)))
     with
    | Error _ -> true
    | Ok _ -> false)

(* Congestion control ------------------------------------------------------ *)

let mss = 1000

let make_cc algorithm =
  Mmt_tcp.Congestion.create algorithm ~mss ~initial_window:(4 * mss)
    ~max_window:(1000 * mss)

let test_reno_slow_start () =
  let cc = make_cc Mmt_tcp.Congestion.Reno in
  Alcotest.(check bool) "starts in slow start" true (Mmt_tcp.Congestion.in_slow_start cc);
  let start = Mmt_tcp.Congestion.window cc in
  Mmt_tcp.Congestion.on_ack cc ~acked:start ~now:Units.Time.zero;
  Alcotest.(check int) "doubles per RTT of acks" (2 * start)
    (Mmt_tcp.Congestion.window cc)

let test_reno_fast_retransmit_halves () =
  let cc = make_cc Mmt_tcp.Congestion.Reno in
  for _ = 1 to 6 do
    Mmt_tcp.Congestion.on_ack cc ~acked:(Mmt_tcp.Congestion.window cc) ~now:Units.Time.zero
  done;
  let before = Mmt_tcp.Congestion.window cc in
  Mmt_tcp.Congestion.on_fast_retransmit cc ~now:Units.Time.zero;
  Alcotest.(check int) "halved" (before / 2) (Mmt_tcp.Congestion.window cc);
  Alcotest.(check int) "ssthresh" (before / 2) (Mmt_tcp.Congestion.ssthresh cc)

let test_reno_timeout_collapses () =
  let cc = make_cc Mmt_tcp.Congestion.Reno in
  for _ = 1 to 6 do
    Mmt_tcp.Congestion.on_ack cc ~acked:(Mmt_tcp.Congestion.window cc) ~now:Units.Time.zero
  done;
  Mmt_tcp.Congestion.on_timeout cc ~now:Units.Time.zero;
  Alcotest.(check int) "back to initial" (4 * mss) (Mmt_tcp.Congestion.window cc)

let test_reno_congestion_avoidance_linear () =
  let cc = make_cc Mmt_tcp.Congestion.Reno in
  (* Leave slow start. *)
  Mmt_tcp.Congestion.on_fast_retransmit cc ~now:Units.Time.zero;
  Alcotest.(check bool) "out of slow start" false (Mmt_tcp.Congestion.in_slow_start cc);
  let before = Mmt_tcp.Congestion.window cc in
  (* One RTT of ACKs (cwnd bytes, mss at a time) adds about one mss. *)
  let acks = before / mss in
  for _ = 1 to acks do
    Mmt_tcp.Congestion.on_ack cc ~acked:mss ~now:Units.Time.zero
  done;
  let growth = Mmt_tcp.Congestion.window cc - before in
  Alcotest.(check bool) "additive increase" true (growth >= mss / 2 && growth <= 2 * mss)

let test_cubic_recovers_toward_wmax () =
  let cc = make_cc Mmt_tcp.Congestion.Cubic in
  (* Grow, crash, then watch the cubic curve climb back toward w_max. *)
  for _ = 1 to 8 do
    Mmt_tcp.Congestion.on_ack cc ~acked:(Mmt_tcp.Congestion.window cc) ~now:Units.Time.zero
  done;
  let w_max = Mmt_tcp.Congestion.window cc in
  Mmt_tcp.Congestion.on_fast_retransmit cc ~now:Units.Time.zero;
  let after_crash = Mmt_tcp.Congestion.window cc in
  Alcotest.(check bool) "multiplicative decrease" true (after_crash < w_max);
  let now = ref Units.Time.zero in
  for _ = 1 to 2000 do
    now := Units.Time.add !now (Units.Time.ms 10.);
    Mmt_tcp.Congestion.on_ack cc ~acked:mss ~now:!now
  done;
  let recovered = Mmt_tcp.Congestion.window cc in
  Alcotest.(check bool) "climbed back" true (recovered > after_crash);
  Alcotest.(check bool) "beyond w_max eventually" true (recovered >= w_max)

let test_bbr_ignores_fast_retransmit () =
  let cc = make_cc Mmt_tcp.Congestion.Bbr in
  (* Feed the model so there is an estimate to hold on to. *)
  let now = ref Units.Time.zero in
  for _ = 1 to 50 do
    now := Units.Time.add !now (Units.Time.ms 1.);
    Mmt_tcp.Congestion.on_ack ~rtt_sample:0.01 cc ~acked:(5 * mss) ~now:!now
  done;
  let before = Mmt_tcp.Congestion.window cc in
  Mmt_tcp.Congestion.on_fast_retransmit cc ~now:!now;
  Alcotest.(check int) "no multiplicative decrease" before
    (Mmt_tcp.Congestion.window cc)

let test_bbr_window_tracks_bdp () =
  let cc = make_cc Mmt_tcp.Congestion.Bbr in
  (* Steady 5 MB/s with 10 ms RTT -> BDP = 50 KB; the probe-bw window
     should settle in the small-multiple-of-BDP region. *)
  let now = ref Units.Time.zero in
  for _ = 1 to 400 do
    now := Units.Time.add !now (Units.Time.ms 1.);
    Mmt_tcp.Congestion.on_ack ~rtt_sample:0.01 cc ~acked:5_000 ~now:!now
  done;
  Alcotest.(check bool) "left startup" false (Mmt_tcp.Congestion.in_slow_start cc);
  let w = Mmt_tcp.Congestion.window cc in
  Alcotest.(check bool) "window near 2x BDP" true (w > 50_000 && w < 250_000)

let test_window_never_below_mss () =
  List.iter
    (fun algorithm ->
      let cc =
        Mmt_tcp.Congestion.create algorithm ~mss ~initial_window:mss ~max_window:(10 * mss)
      in
      for _ = 1 to 20 do
        Mmt_tcp.Congestion.on_timeout cc ~now:Units.Time.zero;
        Mmt_tcp.Congestion.on_fast_retransmit cc ~now:Units.Time.zero
      done;
      Alcotest.(check bool) "floor at mss" true (Mmt_tcp.Congestion.window cc >= mss))
    [ Mmt_tcp.Congestion.Reno; Mmt_tcp.Congestion.Cubic ]

let test_window_capped_at_max () =
  let cc = make_cc Mmt_tcp.Congestion.Reno in
  for _ = 1 to 100 do
    Mmt_tcp.Congestion.on_ack cc ~acked:(Mmt_tcp.Congestion.window cc) ~now:Units.Time.zero
  done;
  Alcotest.(check bool) "capped" true (Mmt_tcp.Congestion.window cc <= 1000 * mss)

(* Connection over a simulated path ------------------------------------------ *)

type path = {
  engine : Mmt_sim.Engine.t;
  sender : Mmt_tcp.Connection.t;
  receiver : Mmt_tcp.Connection.t;
}

let make_path ?(rate = Units.Rate.gbps 10.) ?(rtt = Units.Time.ms 10.) ?(loss = 0.)
    ?(config = Mmt_tcp.Connection.default_config) ?(seed = 21L) ?deliver () =
  let engine = Mmt_sim.Engine.create () in
  let topo = Mmt_sim.Topology.create ~engine () in
  let fresh_id () = Mmt_sim.Topology.fresh_packet_id topo in
  let rng = Rng.create ~seed in
  let a = Mmt_sim.Topology.add_node topo ~name:"a" in
  let b = Mmt_sim.Topology.add_node topo ~name:"b" in
  let half = Units.Time.scale rtt 0.5 in
  let forward =
    Mmt_sim.Topology.connect topo ~src:a ~dst:b ~rate ~propagation:half
      ~loss:
        (if loss > 0. then Mmt_sim.Loss.bernoulli ~drop:loss ~corrupt:0. ~rng
         else Mmt_sim.Loss.perfect)
      ~queue:(Mmt_sim.Queue_model.droptail ~capacity:(Units.Size.mib 64) ())
      ()
  in
  let reverse = Mmt_sim.Topology.connect topo ~src:b ~dst:a ~rate ~propagation:half () in
  let sender =
    Mmt_tcp.Connection.create ~engine ~fresh_id ~config ~tx:(Mmt_sim.Link.send forward) ()
  in
  let receiver =
    Mmt_tcp.Connection.create ~engine ~fresh_id ~config ~tx:(Mmt_sim.Link.send reverse)
      ?deliver ()
  in
  Mmt_sim.Node.set_handler a (Mmt_tcp.Connection.on_packet sender);
  Mmt_sim.Node.set_handler b (Mmt_tcp.Connection.on_packet receiver);
  { engine; sender; receiver }

let test_lossless_transfer_completes () =
  let p = make_path () in
  Mmt_tcp.Connection.write p.sender 1_000_000;
  Mmt_tcp.Connection.finish p.sender;
  Mmt_sim.Engine.run ~until:(Units.Time.seconds 60.) p.engine;
  let s = Mmt_tcp.Connection.stats p.sender in
  let r = Mmt_tcp.Connection.stats p.receiver in
  Alcotest.(check bool) "completed" true (s.Mmt_tcp.Connection.completed_at <> None);
  Alcotest.(check int) "all delivered in order" 1_000_000
    r.Mmt_tcp.Connection.bytes_delivered;
  Alcotest.(check int) "no retransmits" 0 s.Mmt_tcp.Connection.retransmits

let test_lossy_transfer_still_completes () =
  let p = make_path ~loss:0.01 () in
  Mmt_tcp.Connection.write p.sender 500_000;
  Mmt_tcp.Connection.finish p.sender;
  Mmt_sim.Engine.run ~until:(Units.Time.seconds 120.) p.engine;
  let s = Mmt_tcp.Connection.stats p.sender in
  let r = Mmt_tcp.Connection.stats p.receiver in
  Alcotest.(check bool) "completed despite loss" true
    (s.Mmt_tcp.Connection.completed_at <> None);
  Alcotest.(check int) "all delivered" 500_000 r.Mmt_tcp.Connection.bytes_delivered;
  Alcotest.(check bool) "recovered via retransmission" true
    (s.Mmt_tcp.Connection.retransmits > 0)

let test_untuned_window_limits_throughput () =
  (* 64 KiB window over 10 ms RTT is ~52 Mbps no matter the link rate. *)
  let p = make_path ~rate:(Units.Rate.gbps 100.) () in
  Mmt_tcp.Connection.write p.sender 5_000_000;
  Mmt_tcp.Connection.finish p.sender;
  Mmt_sim.Engine.run ~until:(Units.Time.seconds 60.) p.engine;
  match (Mmt_tcp.Connection.stats p.sender).Mmt_tcp.Connection.completed_at with
  | None -> Alcotest.fail "did not complete"
  | Some fct ->
      let throughput = 5_000_000. *. 8. /. Units.Time.to_float_s fct in
      Alcotest.(check bool) "window-bound (< 80 Mbps)" true (throughput < 80e6)

let test_tuned_fills_the_pipe () =
  let rate = Units.Rate.gbps 10. in
  let rtt = Units.Time.ms 10. in
  let bdp = Units.Rate.bytes_in rate rtt in
  let p = make_path ~rate ~rtt ~config:(Mmt_tcp.Connection.tuned_config ~bdp) () in
  Mmt_tcp.Connection.write p.sender 50_000_000;
  Mmt_tcp.Connection.finish p.sender;
  Mmt_sim.Engine.run ~until:(Units.Time.seconds 60.) p.engine;
  match (Mmt_tcp.Connection.stats p.sender).Mmt_tcp.Connection.completed_at with
  | None -> Alcotest.fail "did not complete"
  | Some fct ->
      let throughput = 50_000_000. *. 8. /. Units.Time.to_float_s fct in
      Alcotest.(check bool) "above 2 Gbps (ramp included)" true (throughput > 2e9)

let test_rtt_estimation () =
  let p = make_path ~rtt:(Units.Time.ms 10.) () in
  Mmt_tcp.Connection.write p.sender 100_000;
  Mmt_tcp.Connection.finish p.sender;
  Mmt_sim.Engine.run ~until:(Units.Time.seconds 10.) p.engine;
  match (Mmt_tcp.Connection.stats p.sender).Mmt_tcp.Connection.srtt with
  | Some srtt ->
      let s = Units.Time.to_float_s srtt in
      Alcotest.(check bool) "srtt near 10ms" true (s > 0.009 && s < 0.02)
  | None -> Alcotest.fail "expected an RTT estimate"

let test_bbr_completes_lossy_transfer_fast () =
  (* The [73] shape: at 0.1% corruption loss BBR's FCT stays within a
     small multiple of clean, while Cubic collapses. *)
  let bdp = Units.Rate.bytes_in (Units.Rate.gbps 10.) (Units.Time.ms 10.) in
  let bbr_config =
    { (Mmt_tcp.Connection.tuned_config ~bdp) with
      Mmt_tcp.Connection.algorithm = Mmt_tcp.Congestion.Bbr }
  in
  let fct config =
    let p = make_path ~rate:(Units.Rate.gbps 10.) ~rtt:(Units.Time.ms 10.) ~loss:0.001
        ~config () in
    Mmt_tcp.Connection.write p.sender 20_000_000;
    Mmt_tcp.Connection.finish p.sender;
    Mmt_sim.Engine.run ~until:(Units.Time.seconds 200.) p.engine;
    (Mmt_tcp.Connection.stats p.sender).Mmt_tcp.Connection.completed_at
  in
  match (fct bbr_config, fct (Mmt_tcp.Connection.tuned_config ~bdp)) with
  | Some bbr, Some cubic ->
      Alcotest.(check bool) "bbr at least 3x faster under loss" true
        Units.Time.(Units.Time.scale bbr 3. < cubic)
  | Some _, None -> () (* cubic never finished: even stronger *)
  | None, _ -> Alcotest.fail "bbr did not complete"

let test_head_of_line_blocking_visible () =
  (* Under loss, some messages complete far later than the per-message
     pace even though their own bytes arrived — the § 4.1 HoL argument. *)
  let framing = Mmt_tcp.Framing.create () in
  let engine_box = ref None in
  let deliver n =
    match !engine_box with
    | Some engine ->
        ignore (Mmt_tcp.Framing.on_delivered framing ~now:(Mmt_sim.Engine.now engine) n)
    | None -> ()
  in
  let p = make_path ~loss:0.02 ~deliver () in
  engine_box := Some p.engine;
  let message = 10_000 in
  for _ = 1 to 50 do
    Mmt_tcp.Framing.mark_message framing ~size:message;
    Mmt_tcp.Connection.write p.sender message
  done;
  Mmt_tcp.Connection.finish p.sender;
  Mmt_sim.Engine.run ~until:(Units.Time.seconds 60.) p.engine;
  Alcotest.(check int) "all messages eventually complete" 50
    (Mmt_tcp.Framing.messages_completed framing);
  let times = Mmt_tcp.Framing.completion_times framing in
  (* Monotone completion order is the bytestream property. *)
  let monotone = ref true in
  Array.iteri
    (fun i t -> if i > 0 then if Units.Time.(t < times.(i - 1)) then monotone := false)
    times;
  Alcotest.(check bool) "in-order completion (HoL)" true !monotone

(* Framing ---------------------------------------------------------------- *)

let test_framing_counts () =
  let f = Mmt_tcp.Framing.create () in
  Mmt_tcp.Framing.mark_message f ~size:100;
  Mmt_tcp.Framing.mark_message f ~size:50;
  Alcotest.(check int) "marked" 2 (Mmt_tcp.Framing.messages_marked f);
  Alcotest.(check int) "none done" 0
    (Mmt_tcp.Framing.on_delivered f ~now:Units.Time.zero 99);
  Alcotest.(check int) "first done at 100" 1
    (Mmt_tcp.Framing.on_delivered f ~now:(Units.Time.ms 1.) 1);
  Alcotest.(check int) "second done" 1
    (Mmt_tcp.Framing.on_delivered f ~now:(Units.Time.ms 2.) 50);
  Alcotest.(check int) "completed" 2 (Mmt_tcp.Framing.messages_completed f);
  let times = Mmt_tcp.Framing.completion_times f in
  Alcotest.(check int) "two times" 2 (Array.length times);
  Alcotest.(check string) "first" "1ms" (Units.Time.to_string times.(0))

let test_framing_batch_completion () =
  let f = Mmt_tcp.Framing.create () in
  for _ = 1 to 5 do
    Mmt_tcp.Framing.mark_message f ~size:10
  done;
  Alcotest.(check int) "all five at once" 5
    (Mmt_tcp.Framing.on_delivered f ~now:Units.Time.zero 50)

let test_framing_rejects_empty () =
  let f = Mmt_tcp.Framing.create () in
  Alcotest.(check bool) "empty message rejected" true
    (match Mmt_tcp.Framing.mark_message f ~size:0 with
    | () -> false
    | exception Invalid_argument _ -> true)

(* UDP transport -------------------------------------------------------------- *)

let test_udp_end_to_end () =
  let engine = Mmt_sim.Engine.create () in
  let topo = Mmt_sim.Topology.create ~engine () in
  let fresh_id () = Mmt_sim.Topology.fresh_packet_id topo in
  let a = Mmt_sim.Topology.add_node topo ~name:"a" in
  let b = Mmt_sim.Topology.add_node topo ~name:"b" in
  let link =
    Mmt_sim.Topology.connect topo ~src:a ~dst:b ~rate:(Units.Rate.gbps 1.)
      ~propagation:(Units.Time.us 10.) ()
  in
  let got = ref [] in
  let receiver =
    Mmt_tcp.Udp_transport.create_receiver
      ~deliver:(fun ~src:_ ~src_port payload -> got := (src_port, payload) :: !got)
      ()
  in
  Mmt_sim.Node.set_handler b (Mmt_tcp.Udp_transport.on_packet receiver);
  let sender =
    Mmt_tcp.Udp_transport.create_sender ~engine ~fresh_id
      ~src:(Mmt_frame.Addr.Ip.of_octets 10 0 0 1)
      ~dst:(Mmt_frame.Addr.Ip.of_octets 10 0 0 2)
      ~src_port:7777 ~dst_port:8888 ~tx:(Mmt_sim.Link.send link) ()
  in
  Mmt_tcp.Udp_transport.send sender (Bytes.of_string "hello daq");
  Mmt_sim.Engine.run engine;
  (match !got with
  | [ (port, payload) ] ->
      Alcotest.(check int) "src port" 7777 port;
      Alcotest.(check string) "payload" "hello daq" (Bytes.to_string payload)
  | _ -> Alcotest.fail "expected one datagram");
  let r = Mmt_tcp.Udp_transport.receiver_stats receiver in
  Alcotest.(check int) "received" 1 r.Mmt_tcp.Udp_transport.datagrams_received

let test_udp_corrupted_dropped () =
  let receiver =
    Mmt_tcp.Udp_transport.create_receiver ~deliver:(fun ~src:_ ~src_port:_ _ -> ()) ()
  in
  let packet = Mmt_sim.Packet.create ~id:0 ~born:Units.Time.zero (Bytes.create 40) in
  packet.Mmt_sim.Packet.corrupted <- true;
  Mmt_tcp.Udp_transport.on_packet receiver packet;
  let r = Mmt_tcp.Udp_transport.receiver_stats receiver in
  Alcotest.(check int) "corrupted" 1 r.Mmt_tcp.Udp_transport.corrupted;
  Alcotest.(check int) "not delivered" 0 r.Mmt_tcp.Udp_transport.datagrams_received

let suite =
  [
    Alcotest.test_case "segment roundtrip" `Quick test_segment_roundtrip;
    Alcotest.test_case "pure ack roundtrip" `Quick test_pure_ack_roundtrip;
    Alcotest.test_case "segment rejects foreign" `Quick test_segment_rejects_foreign;
    Alcotest.test_case "reno slow start" `Quick test_reno_slow_start;
    Alcotest.test_case "reno fast retransmit" `Quick test_reno_fast_retransmit_halves;
    Alcotest.test_case "reno timeout" `Quick test_reno_timeout_collapses;
    Alcotest.test_case "reno congestion avoidance" `Quick test_reno_congestion_avoidance_linear;
    Alcotest.test_case "cubic recovery curve" `Quick test_cubic_recovers_toward_wmax;
    Alcotest.test_case "bbr ignores fast retransmit" `Quick test_bbr_ignores_fast_retransmit;
    Alcotest.test_case "bbr window tracks bdp" `Quick test_bbr_window_tracks_bdp;
    Alcotest.test_case "bbr lossy transfer" `Slow test_bbr_completes_lossy_transfer_fast;
    Alcotest.test_case "window floor" `Quick test_window_never_below_mss;
    Alcotest.test_case "window cap" `Quick test_window_capped_at_max;
    Alcotest.test_case "lossless transfer" `Quick test_lossless_transfer_completes;
    Alcotest.test_case "lossy transfer completes" `Quick test_lossy_transfer_still_completes;
    Alcotest.test_case "untuned window-bound" `Quick test_untuned_window_limits_throughput;
    Alcotest.test_case "tuned fills pipe" `Quick test_tuned_fills_the_pipe;
    Alcotest.test_case "rtt estimation" `Quick test_rtt_estimation;
    Alcotest.test_case "HoL blocking visible" `Quick test_head_of_line_blocking_visible;
    Alcotest.test_case "framing counts" `Quick test_framing_counts;
    Alcotest.test_case "framing batch" `Quick test_framing_batch_completion;
    Alcotest.test_case "framing rejects empty" `Quick test_framing_rejects_empty;
    Alcotest.test_case "udp end to end" `Quick test_udp_end_to_end;
    Alcotest.test_case "udp corrupted" `Quick test_udp_corrupted_dropped;
  ]
