(* The facility generator: the fairness math, the addressing plan, and
   the determinism contract the E-F5 sweep rests on. *)
open Mmt_util
module Scenario = Mmt_facility.Scenario
module Metrics = Mmt_facility.Metrics
module Sweep = Mmt_facility.Sweep
module Address = Mmt_facility.Address

let feq = Alcotest.(check (float 1e-9))

let test_jain_known_values () =
  feq "equal shares" 1.0 (Metrics.jain [| 1.; 1.; 1.; 1. |]);
  feq "one hog of four" 0.25 (Metrics.jain [| 1.; 0.; 0.; 0. |]);
  (* (4+2)^2 / (2 * (16+4)) = 36/40 *)
  feq "4:2 split" 0.9 (Metrics.jain [| 4.; 2. |]);
  feq "single flow" 1.0 (Metrics.jain [| 0.7 |]);
  feq "empty vector" 1.0 (Metrics.jain [||]);
  feq "all zero" 1.0 (Metrics.jain [| 0.; 0.; 0. |])

let sample ?(kind = "bulk") ?(emitted = 0) ?(emitted_bytes = 0)
    ?(delivered = 0) ?(delivered_bytes = 0) ?(late = 0) ?(lost = 0)
    ?(recovered = 0) ?(retx_occupancy_hw = 0) ?(retx_entries_hw = 0)
    ?(nak_state_hw = 0) () =
  {
    Metrics.kind;
    emitted;
    emitted_bytes;
    delivered;
    delivered_bytes;
    late;
    lost;
    recovered;
    retx_occupancy_hw;
    retx_entries_hw;
    nak_state_hw;
  }

let test_summarize_zero_goodput () =
  let s =
    Metrics.summarize ~window:(Units.Time.ms 1.)
      [| sample ~emitted:10 ~emitted_bytes:10_000 () |]
  in
  Alcotest.(check (float 0.)) "no bytes, no goodput" 0.
    (Units.Rate.to_bps s.Metrics.goodput);
  feq "all-zero ratios are fair" 1.0 s.Metrics.fairness;
  feq "nothing delivered, nothing late" 1.0 s.Metrics.deadline_hit_rate

let test_summarize_single_flow () =
  let s =
    Metrics.summarize ~window:(Units.Time.ms 1.)
      [| sample ~emitted:10 ~delivered:10 ~delivered_bytes:10_000 () |]
  in
  feq "single flow is perfectly fair" 1.0 s.Metrics.fairness;
  (* 10 kB over 1 ms = 80 Mbps *)
  feq "goodput over the window" 80e6 (Units.Rate.to_bps s.Metrics.goodput)

let test_summarize_excludes_idle_flows () =
  let s =
    Metrics.summarize ~window:(Units.Time.ms 1.)
      [|
        sample ~emitted:10 ~delivered:10 ();
        sample ~emitted:10 ~delivered:5 ();
        sample () (* never emitted: must not drag fairness down *);
      |]
  in
  (* ratios 1.0 and 0.5: (1.5)^2 / (2 * 1.25) = 0.9 *)
  feq "idle flow excluded" 0.9 s.Metrics.fairness

let test_levels () =
  Alcotest.(check (list int)) "64/8" [ 8; 1 ] (Scenario.levels ~flows:64 ~degree:8);
  Alcotest.(check (list int)) "9/8" [ 2; 1 ] (Scenario.levels ~flows:9 ~degree:8);
  Alcotest.(check (list int)) "10/4" [ 3; 1 ] (Scenario.levels ~flows:10 ~degree:4);
  Alcotest.(check (list int)) "8/8" [ 1 ] (Scenario.levels ~flows:8 ~degree:8);
  Alcotest.(check (list int)) "single flow, no tree" []
    (Scenario.levels ~flows:1 ~degree:8)

let test_address_round_trip () =
  List.iter
    (fun id ->
      let check name role ip =
        Alcotest.(check bool)
          (Printf.sprintf "%s %d" name id)
          true
          (Address.classify ip = role)
      in
      check "source" (Address.Source id) (Address.source_ip id);
      check "flow" (Address.Flow id) (Address.flow_ip id);
      check "buffer" (Address.Buffer id) (Address.buffer_ip id);
      check "sink" (Address.Sink id) (Address.sink_ip id))
    [ 0; 1; 255; 256; 999; 65535 ];
  Alcotest.(check bool) "foreign prefix" true
    (Address.classify (Mmt_frame.Addr.Ip.of_octets 192 168 1 1) = Address.Other);
  Alcotest.(check bool) "wrong block" true
    (Address.classify (Mmt_frame.Addr.Ip.of_octets 10 0 0 1) = Address.Other)

let test_describe_deterministic () =
  let config = { Scenario.default with Scenario.flows = 100 } in
  Alcotest.(check string) "same config, same plan" (Scenario.describe config)
    (Scenario.describe config)

let small =
  { Scenario.default with Scenario.flows = 10; duration = Units.Time.ms 1. }

let test_run_repeatable () =
  let a = Scenario.run small and b = Scenario.run small in
  Alcotest.(check bool) "summaries equal" true
    (a.Scenario.summary = b.Scenario.summary);
  Alcotest.(check bool) "per-flow samples equal" true
    (a.Scenario.samples = b.Scenario.samples);
  Alcotest.(check int) "event counts equal" a.Scenario.events b.Scenario.events

let test_run_seed_matters () =
  let a = Scenario.run small
  and b = Scenario.run { small with Scenario.seed = 43L } in
  (* Different seeds shift loss and burst arrivals; the runs should not
     be event-for-event identical. *)
  Alcotest.(check bool) "different seed, different run" false
    (a.Scenario.events = b.Scenario.events
    && a.Scenario.samples = b.Scenario.samples)

let test_run_sharded_identical () =
  let config = { small with Scenario.flows = 23 } in
  let seq = Scenario.run config in
  List.iter
    (fun shards ->
      let sh = Scenario.run ~shards config in
      let label = Printf.sprintf "shards=%d" shards in
      Alcotest.(check bool) (label ^ ": summaries equal") true
        (seq.Scenario.summary = sh.Scenario.summary);
      Alcotest.(check bool) (label ^ ": per-flow samples equal") true
        (seq.Scenario.samples = sh.Scenario.samples);
      Alcotest.(check int) (label ^ ": event counts equal") seq.Scenario.events
        sh.Scenario.events)
    [ 2; 3; 4 ]

let test_run_pooling_identical () =
  (* Pools on by default vs. explicitly off, sequentially and sharded:
     the allocator must never show through in the results. *)
  let config = { small with Scenario.flows = 23 } in
  let pooled = Scenario.run config in
  let plain = Scenario.run ~pooling:false config in
  Alcotest.(check bool) "summaries equal" true
    (pooled.Scenario.summary = plain.Scenario.summary);
  Alcotest.(check bool) "per-flow samples equal" true
    (pooled.Scenario.samples = plain.Scenario.samples);
  Alcotest.(check int) "event counts equal" pooled.Scenario.events
    plain.Scenario.events;
  let sharded_plain = Scenario.run ~shards:3 ~pooling:false config in
  Alcotest.(check bool) "sharded pool-off matches too" true
    (pooled.Scenario.summary = sharded_plain.Scenario.summary
    && pooled.Scenario.samples = sharded_plain.Scenario.samples
    && pooled.Scenario.events = sharded_plain.Scenario.events)

let test_run_fusing_identical () =
  (* Fused link hops change event mechanics, never results — and the
     interesting failure mode is congestion, where same-instant
     deliveries into shared downstream queues make ordering mistakes
     cascade.  So this runs the E-F5 fan-in at full scale (1000 flows
     into one shared WAN bottleneck) and demands field-for-field
     identity with fusing off, sequentially and sharded. *)
  let config =
    {
      Scenario.default with
      Scenario.flows = 1000;
      duration = Units.Time.ms 1.;
    }
  in
  let fused = Scenario.run config in
  let unfused = Scenario.run ~fusing:false config in
  Alcotest.(check bool) "summaries equal" true
    (fused.Scenario.summary = unfused.Scenario.summary);
  Alcotest.(check bool) "per-flow samples equal" true
    (fused.Scenario.samples = unfused.Scenario.samples);
  Alcotest.(check int) "event counts equal" fused.Scenario.events
    unfused.Scenario.events;
  let sharded_unfused = Scenario.run ~shards:3 ~fusing:false config in
  Alcotest.(check bool) "sharded fuse-off matches too" true
    (fused.Scenario.summary = sharded_unfused.Scenario.summary
    && fused.Scenario.samples = sharded_unfused.Scenario.samples
    && fused.Scenario.events = sharded_unfused.Scenario.events)

let test_run_gc_tuning_identical () =
  (* Per-domain GC tuning shifts collection points, never results. *)
  let config = { small with Scenario.flows = 23 } in
  let default = Scenario.run config in
  let tuned =
    Scenario.run
      ~gc:{ Mmt_sim.Shard.minor_heap_kb = Some 8192; space_overhead = Some 200 }
      config
  in
  Alcotest.(check bool) "summaries equal" true
    (default.Scenario.summary = tuned.Scenario.summary);
  Alcotest.(check bool) "samples equal" true
    (default.Scenario.samples = tuned.Scenario.samples)

let test_sweep_sharded_identical () =
  let base = { Scenario.default with Scenario.duration = Units.Time.ms 1. } in
  let points = [ 10; 30 ] in
  let seq, seq_ok = Mmt_experiments.Facility.report ~jobs:1 ~base ~points () in
  let sh, sh_ok = Mmt_experiments.Facility.report ~shards:4 ~base ~points () in
  Alcotest.(check string) "sequential vs --shards 4 byte-identical" seq sh;
  Alcotest.(check bool) "verdicts agree" seq_ok sh_ok

let test_sweep_parallel_identical () =
  let base = { Scenario.default with Scenario.duration = Units.Time.ms 1. } in
  let points = [ 10; 30 ] in
  let seq, seq_ok = Mmt_experiments.Facility.report ~jobs:1 ~base ~points () in
  let par, par_ok = Mmt_experiments.Facility.report ~jobs:2 ~base ~points () in
  Alcotest.(check string) "sequential vs --jobs byte-identical" seq par;
  Alcotest.(check bool) "verdicts agree" seq_ok par_ok

let suite =
  [
    Alcotest.test_case "Jain index known values" `Quick test_jain_known_values;
    Alcotest.test_case "summary: zero goodput" `Quick test_summarize_zero_goodput;
    Alcotest.test_case "summary: single flow" `Quick test_summarize_single_flow;
    Alcotest.test_case "summary: idle flows excluded" `Quick
      test_summarize_excludes_idle_flows;
    Alcotest.test_case "fan-in tree levels" `Quick test_levels;
    Alcotest.test_case "addressing plan round-trips" `Quick
      test_address_round_trip;
    Alcotest.test_case "describe is deterministic" `Quick
      test_describe_deterministic;
    Alcotest.test_case "same seed, same run" `Quick test_run_repeatable;
    Alcotest.test_case "different seed, different run" `Quick
      test_run_seed_matters;
    Alcotest.test_case "sweep: sequential vs parallel identical" `Quick
      test_sweep_parallel_identical;
    Alcotest.test_case "run: sequential vs shards 2..4 identical" `Quick
      test_run_sharded_identical;
    Alcotest.test_case "sweep: sequential vs sharded identical" `Quick
      test_sweep_sharded_identical;
    Alcotest.test_case "run: pool-on/off byte-identical" `Quick
      test_run_pooling_identical;
    Alcotest.test_case "run: fuse-on/off byte-identical at E-F5 scale" `Slow
      test_run_fusing_identical;
    Alcotest.test_case "run: gc tuning changes nothing" `Quick
      test_run_gc_tuning_identical;
  ]
