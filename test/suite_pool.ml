open Mmt_util
module Pool = Mmt_sim.Pool
module Packet = Mmt_sim.Packet
module Engine = Mmt_sim.Engine
module Link = Mmt_sim.Link
module Loss = Mmt_sim.Loss
module Queue_model = Mmt_sim.Queue_model

let mk_packet ~id len fill =
  Packet.create ~id ~born:Units.Time.zero (Bytes.make len fill)

(* --- recycle mechanics -------------------------------------------------- *)

let test_release_retires_and_recycles () =
  let pool = Pool.create () in
  let frame = Bytes.make 100 'a' in
  let packet = Packet.create ~id:0 ~born:Units.Time.zero frame in
  let gen0 = packet.Packet.gen in
  Pool.release_packet pool packet;
  Alcotest.(check bool)
    "released packet holds the retired sentinel" true
    (Packet.frame packet == Pool.retired);
  Alcotest.(check int) "generation bumped" (gen0 + 1) packet.Packet.gen;
  let recycled = Pool.acquire pool 100 in
  Alcotest.(check bool)
    "acquire returns the recycled buffer" true (recycled == frame);
  let fresh = Pool.acquire pool 100 in
  Alcotest.(check bool) "pool empty again: fresh buffer" true (fresh != frame);
  let stats = Pool.stats pool in
  Alcotest.(check int) "one recycled acquire" 1 stats.Pool.recycled;
  Alcotest.(check int) "two acquires total" 2 stats.Pool.acquired

let test_double_release_is_noop () =
  let pool = Pool.create () in
  let packet = mk_packet ~id:0 100 'x' in
  Pool.release_packet pool packet;
  Pool.release_packet pool packet;
  Pool.release_packet pool packet;
  let stats = Pool.stats pool in
  Alcotest.(check int) "frame entered the pool once" 1 stats.Pool.released;
  (* The single pooled copy can be handed out exactly once: a double
     release must never let two acquires share one buffer. *)
  let a = Pool.acquire pool 100 in
  let b = Pool.acquire pool 100 in
  Alcotest.(check bool) "acquires are distinct buffers" true (a != b)

let test_size_classes_are_exact () =
  let pool = Pool.create () in
  Pool.release pool (Bytes.make 64 'a');
  let b = Pool.acquire pool 65 in
  Alcotest.(check int) "no cross-class reuse" 65 (Bytes.length b);
  Alcotest.(check int) "64-byte class still holds its frame" 64
    (Bytes.length (Pool.acquire pool 64))

let test_class_capacity_bounded () =
  let pool = Pool.create ~max_per_class:2 () in
  Pool.release pool (Bytes.make 32 'a');
  Pool.release pool (Bytes.make 32 'b');
  Pool.release pool (Bytes.make 32 'c');
  let stats = Pool.stats pool in
  Alcotest.(check int) "third release discarded" 1 stats.Pool.dropped;
  Alcotest.(check int) "class holds two frames" (2 * 32) stats.Pool.pooled_bytes

let test_no_aliasing_fuzz () =
  let pool = Pool.create ~max_per_class:64 () in
  let rng = Rng.create ~seed:7L in
  let sizes = [| 64; 64; 128; 256 |] in
  let live = ref [] in
  for i = 1 to 5_000 do
    if Rng.int rng ~bound:2 = 0 || !live = [] then begin
      let len = sizes.(Rng.int rng ~bound:(Array.length sizes)) in
      let frame = Pool.acquire pool len in
      (* The buffer we just got must not be under any live packet. *)
      List.iter
        (fun p ->
          if Packet.frame p == frame then
            Alcotest.failf "acquire #%d aliases live packet #%d" i
              p.Packet.id)
        !live;
      live := Packet.create ~id:i ~born:Units.Time.zero frame :: !live
    end
    else begin
      let victim = Rng.int rng ~bound:(List.length !live) in
      let packet = List.nth !live victim in
      live := List.filteri (fun j _ -> j <> victim) !live;
      Pool.release_packet pool packet;
      (* A stale second release through the dead packet must stay inert. *)
      if Rng.int rng ~bound:4 = 0 then Pool.release_packet pool packet
    end
  done;
  let stats = Pool.stats pool in
  Alcotest.(check bool) "fuzz exercised recycling" true (stats.Pool.recycled > 0)

(* --- pooling changes no observable behavior ----------------------------- *)

(* A lossy link with a drop-expired EDF queue: every pool recycle point
   in the sim layer fires (queue drops, loss drops, expired drops).
   Delivered frame contents and link/queue statistics must be identical
   with pooling on and off. *)
let run_lossy_scenario ?pool () =
  let engine = Engine.create () in
  let delivered = ref [] in
  let deadline_of (p : Packet.t) =
    if p.Packet.id mod 3 = 0 then
      Some (Units.Time.add p.Packet.born (Units.Time.us 40.))
    else None
  in
  let queue =
    Queue_model.deadline_aware ?pool ~capacity:(Units.Size.bytes 6_000)
      ~drop_expired:true ~deadline_of ()
  in
  let link =
    Link.create ~engine ~name:"lossy" ~rate:(Units.Rate.mbps 50.)
      ~propagation:(Units.Time.us 10.)
      ~loss:(Loss.bernoulli ~drop:0.2 ~corrupt:0.05 ~rng:(Rng.create ~seed:11L))
      ~queue ?pool
      ~deliver:(fun p ->
        delivered :=
          (p.Packet.id, Bytes.to_string (Packet.frame p), p.Packet.corrupted)
          :: !delivered)
      ()
  in
  for i = 0 to 399 do
    ignore
      (Engine.schedule engine
         ~at:(Units.Time.of_int_ns (i * 2_000))
         (fun () ->
           let len = 200 + (100 * (i mod 4)) in
           let frame = Bytes.make len (Char.chr (Char.code 'a' + (i mod 26))) in
           Link.send link (Packet.create ~id:i ~born:(Engine.now engine) frame)))
  done;
  Engine.run engine;
  (List.rev !delivered, Link.stats link, Queue_model.expired_drops queue)

let test_pooling_preserves_behavior () =
  let plain, stats_plain, expired_plain = run_lossy_scenario () in
  let pool = Pool.create () in
  let pooled, stats_pooled, expired_pooled = run_lossy_scenario ~pool () in
  Alcotest.(check int)
    "same delivery count" (List.length plain) (List.length pooled);
  List.iter2
    (fun (id_a, frame_a, corrupt_a) (id_b, frame_b, corrupt_b) ->
      Alcotest.(check int) "same packet order" id_a id_b;
      Alcotest.(check string) "identical delivered frame" frame_a frame_b;
      Alcotest.(check bool) "same corruption flag" corrupt_a corrupt_b)
    plain pooled;
  Alcotest.(check int)
    "same loss drops" stats_plain.Link.loss_drops stats_pooled.Link.loss_drops;
  Alcotest.(check int)
    "same queue drops" stats_plain.Link.queue_drops
    stats_pooled.Link.queue_drops;
  Alcotest.(check int) "same expired drops" expired_plain expired_pooled;
  Alcotest.(check int)
    "same delivered bytes" stats_plain.Link.delivered_bytes
    stats_pooled.Link.delivered_bytes;
  let pstats = Pool.stats pool in
  Alcotest.(check bool)
    "scenario actually recycled frames" true (pstats.Pool.released > 0)

(* --- task pool ---------------------------------------------------------- *)

let test_task_pool_runs_everywhere () =
  let pool = Task_pool.create ~max_workers:2 () in
  let counter = Atomic.make 0 in
  (* Three batches on the same pool: workers must be reusable. *)
  for _ = 1 to 3 do
    let next = Atomic.make 0 in
    let worker () =
      let rec loop () =
        let i = Atomic.fetch_and_add next 1 in
        if i < 100 then begin
          Atomic.incr counter;
          loop ()
        end
      in
      loop ()
    in
    Task_pool.run pool ~extra:2 worker
  done;
  Alcotest.(check int) "every item claimed exactly once" 300
    (Atomic.get counter);
  Task_pool.shutdown pool;
  (* After shutdown the pool degrades to caller-only execution. *)
  let ran = ref false in
  Task_pool.run pool ~extra:2 (fun () -> ran := true);
  Alcotest.(check bool) "degrades after shutdown" true !ran

let test_task_pool_propagates_exception () =
  let pool = Task_pool.create ~max_workers:1 () in
  let raised =
    match Task_pool.run pool ~extra:1 (fun () -> failwith "boom") with
    | () -> false
    | exception Failure _ -> true
  in
  Alcotest.(check bool) "exception reaches the caller" true raised;
  (* The pool survives a failing batch. *)
  let ok = ref 0 in
  Task_pool.run pool ~extra:1 (fun () -> incr ok);
  Alcotest.(check bool) "pool usable after failure" true (!ok >= 1);
  Task_pool.shutdown pool

let suite =
  [
    Alcotest.test_case "release retires and recycles" `Quick
      test_release_retires_and_recycles;
    Alcotest.test_case "double release is a no-op" `Quick
      test_double_release_is_noop;
    Alcotest.test_case "size classes are exact" `Quick
      test_size_classes_are_exact;
    Alcotest.test_case "class capacity bounded" `Quick
      test_class_capacity_bounded;
    Alcotest.test_case "no aliasing under fuzz" `Quick test_no_aliasing_fuzz;
    Alcotest.test_case "pooling preserves behavior" `Quick
      test_pooling_preserves_behavior;
    Alcotest.test_case "task pool reuses workers" `Quick
      test_task_pool_runs_everywhere;
    Alcotest.test_case "task pool propagates exceptions" `Quick
      test_task_pool_propagates_exception;
  ]
