(* Integration: the Fig. 4 pilot topology, experiment runners and
   telemetry reporting. *)
open Mmt_util

let quick_pilot ?(fragment_count = 300) ?(wan_loss = 0.005) ?(wan_corrupt = 0.001)
    ?(researchers = 0) ?(backpressure = false) ?deadline_budget ?profile ?seed () =
  {
    Mmt_pilot.Pilot.default_config with
    Mmt_pilot.Pilot.fragment_count;
    wan_loss;
    wan_corrupt;
    researchers;
    backpressure;
    deadline_budget;
    profile =
      Option.value ~default:Mmt_pilot.Pilot.default_config.Mmt_pilot.Pilot.profile profile;
    seed = Option.value ~default:42L seed;
    payload = Mmt_daq.Workload.Synthetic (Units.Size.bytes 1024);
  }

let run config =
  let pilot = Mmt_pilot.Pilot.build config in
  Mmt_pilot.Pilot.run pilot;
  (pilot, Mmt_pilot.Pilot.results pilot)

let test_pilot_reliable_delivery_under_loss () =
  let _pilot, r = run (quick_pilot ()) in
  Alcotest.(check int) "all fragments emitted" 300 r.Mmt_pilot.Pilot.emitted;
  Alcotest.(check int) "all delivered" 300 r.Mmt_pilot.Pilot.receiver.Mmt.Receiver.delivered;
  Alcotest.(check int) "nothing abandoned" 0 r.Mmt_pilot.Pilot.receiver.Mmt.Receiver.lost;
  Alcotest.(check bool) "losses actually happened" true
    (r.Mmt_pilot.Pilot.wan_a.Mmt_sim.Link.loss_drops
     + r.Mmt_pilot.Pilot.wan_b.Mmt_sim.Link.loss_drops
     + r.Mmt_pilot.Pilot.wan_b.Mmt_sim.Link.corrupted
     + r.Mmt_pilot.Pilot.wan_a.Mmt_sim.Link.corrupted > 0);
  Alcotest.(check bool) "recovered from the DTN1 buffer" true
    (r.Mmt_pilot.Pilot.buffer.Mmt.Buffer_host.frames_resent > 0);
  Alcotest.(check bool) "completion recorded" true
    (r.Mmt_pilot.Pilot.receiver.Mmt.Receiver.completion <> None)

let test_pilot_mode_changes_in_network () =
  let _pilot, r = run (quick_pilot ()) in
  Alcotest.(check int) "every data frame rewritten at DTN1" 300
    r.Mmt_pilot.Pilot.rewriter.Mmt_innet.Mode_rewriter.rewritten;
  Alcotest.(check int) "sequence numbers assigned in-network" 300
    r.Mmt_pilot.Pilot.rewriter.Mmt_innet.Mode_rewriter.sequenced;
  Alcotest.(check bool) "age tracked at the switch" true
    (r.Mmt_pilot.Pilot.age.Mmt_innet.Age_tracker.touched >= 300)

let test_pilot_lossless_is_clean () =
  let _pilot, r = run (quick_pilot ~wan_loss:0. ~wan_corrupt:0. ()) in
  Alcotest.(check int) "no gaps" 0
    r.Mmt_pilot.Pilot.receiver.Mmt.Receiver.gaps_detected;
  Alcotest.(check int) "no naks" 0 r.Mmt_pilot.Pilot.receiver.Mmt.Receiver.naks_sent;
  Alcotest.(check int) "no resends" 0
    r.Mmt_pilot.Pilot.buffer.Mmt.Buffer_host.frames_resent

let test_pilot_determinism () =
  let _p1, r1 = run (quick_pilot ~seed:7L ()) in
  let _p2, r2 = run (quick_pilot ~seed:7L ()) in
  Alcotest.(check int) "same gaps"
    r1.Mmt_pilot.Pilot.receiver.Mmt.Receiver.gaps_detected
    r2.Mmt_pilot.Pilot.receiver.Mmt.Receiver.gaps_detected;
  Alcotest.(check bool) "same completion" true
    (r1.Mmt_pilot.Pilot.receiver.Mmt.Receiver.completion
    = r2.Mmt_pilot.Pilot.receiver.Mmt.Receiver.completion);
  let _p3, r3 = run (quick_pilot ~seed:8L ()) in
  Alcotest.(check bool) "different seed differs somewhere" true
    (r1.Mmt_pilot.Pilot.receiver.Mmt.Receiver.completion
     <> r3.Mmt_pilot.Pilot.receiver.Mmt.Receiver.completion
    || r1.Mmt_pilot.Pilot.receiver.Mmt.Receiver.gaps_detected
       <> r3.Mmt_pilot.Pilot.receiver.Mmt.Receiver.gaps_detected)

let test_pilot_sharded_identical () =
  (* The full results record — receiver, buffer, switch, link and
     researcher stats, goodput, finished_at — must match the sequential
     run field for field at every shard count.  Loss + researchers +
     backpressure pushes NAKs, retransmissions, duplicates and pace
     signals across every cut edge. *)
  let config =
    quick_pilot ~fragment_count:400 ~wan_loss:0.01 ~researchers:2
      ~backpressure:true ~seed:9L ()
  in
  let _p, seq = run config in
  List.iter
    (fun shards ->
      let pilot = Mmt_pilot.Pilot.build ~shards config in
      Mmt_pilot.Pilot.run pilot;
      let sh = Mmt_pilot.Pilot.results pilot in
      Alcotest.(check bool)
        (Printf.sprintf "shards=%d: results identical" shards)
        true (seq = sh);
      Alcotest.(check int)
        (Printf.sprintf "shards=%d: engines engaged" shards)
        shards
        (Mmt_pilot.Pilot.nshards pilot))
    [ 2; 3; 4 ]

let test_pilot_duplication_to_researchers () =
  let _pilot, r = run (quick_pilot ~researchers:2 ~wan_loss:0. ~wan_corrupt:0. ()) in
  Alcotest.(check int) "two researcher stats" 2
    (List.length r.Mmt_pilot.Pilot.researcher_stats);
  List.iter
    (fun (stats : Mmt.Receiver.stats) ->
      Alcotest.(check int) "researcher got full stream" 300 stats.Mmt.Receiver.delivered)
    r.Mmt_pilot.Pilot.researcher_stats;
  (* DTN2 still gets its stream. *)
  Alcotest.(check int) "dtn2 unaffected" 300
    r.Mmt_pilot.Pilot.receiver.Mmt.Receiver.delivered

let test_pilot_deadline_budget () =
  (* Absurdly tight budget: everything arrives late and the checker
     sees expired deadlines. *)
  let _pilot, r =
    run
      (quick_pilot ~wan_loss:0. ~wan_corrupt:0.
         ~deadline_budget:(Units.Time.us 100.) ())
  in
  Alcotest.(check int) "all late" 300 r.Mmt_pilot.Pilot.receiver.Mmt.Receiver.late;
  Alcotest.(check bool) "in-network checker saw expiry" true
    (r.Mmt_pilot.Pilot.timeliness.Mmt_innet.Timeliness_checker.expired > 0);
  (* Generous budget: nothing late. *)
  let _pilot2, r2 =
    run
      (quick_pilot ~wan_loss:0. ~wan_corrupt:0.
         ~deadline_budget:(Units.Time.seconds 10.) ())
  in
  Alcotest.(check int) "none late" 0 r2.Mmt_pilot.Pilot.receiver.Mmt.Receiver.late

let test_pilot_fabric_profile_slower () =
  let _p1, fast = run (quick_pilot ~wan_loss:0. ~wan_corrupt:0. ()) in
  let _p2, slow =
    run
      (quick_pilot ~wan_loss:0. ~wan_corrupt:0.
         ~profile:Mmt_pilot.Profile.fabric_virtual ())
  in
  match
    ( fast.Mmt_pilot.Pilot.receiver.Mmt.Receiver.completion,
      slow.Mmt_pilot.Pilot.receiver.Mmt.Receiver.completion )
  with
  | Some f, Some s ->
      Alcotest.(check bool) "physical profile completes sooner" true Units.Time.(f < s)
  | _ -> Alcotest.fail "both variants must complete"

let test_pilot_aged_fraction_tracks_budget () =
  let with_budget age_budget_us =
    let config = { (quick_pilot ~wan_loss:0.01 ()) with Mmt_pilot.Pilot.age_budget_us } in
    let _pilot, r = run config in
    r.Mmt_pilot.Pilot.receiver.Mmt.Receiver.aged
  in
  let tight = with_budget 1 in
  let loose = with_budget 10_000_000 in
  Alcotest.(check bool) "tight budget ages everything" true (tight = 300);
  Alcotest.(check int) "loose budget ages nothing" 0 loose

let test_pilot_slices_build_events () =
  let config =
    {
      (quick_pilot ~fragment_count:150 ~wan_loss:0.004 ~wan_corrupt:0.001 ()) with
      Mmt_pilot.Pilot.slices = 4;
    }
  in
  let _pilot, r = run config in
  Alcotest.(check int) "all slices emitted" (4 * 150) r.Mmt_pilot.Pilot.emitted;
  Alcotest.(check int) "all delivered despite loss" (4 * 150)
    r.Mmt_pilot.Pilot.receiver.Mmt.Receiver.delivered;
  let events = r.Mmt_pilot.Pilot.events in
  Alcotest.(check int) "every trigger became a complete 4-slice event" 150
    events.Mmt_daq.Event_builder.complete;
  Alcotest.(check int) "no event timed out" 0 events.Mmt_daq.Event_builder.timed_out

(* Runners ------------------------------------------------------------------ *)

let test_tcp_runner_tuned_vs_untuned () =
  let base = Mmt_pilot.Runners.Tcp_run.params ~transfer:(Units.Size.mib 8) () in
  let tuned = Mmt_pilot.Runners.Tcp_run.run base in
  let untuned =
    Mmt_pilot.Runners.Tcp_run.run
      { base with Mmt_pilot.Runners.Tcp_run.config = Mmt_tcp.Connection.default_config }
  in
  Alcotest.(check bool) "both complete" true
    (tuned.Mmt_pilot.Runners.Tcp_run.fct <> None
    && untuned.Mmt_pilot.Runners.Tcp_run.fct <> None);
  Alcotest.(check bool) "tuned at least 10x faster" true
    (Units.Rate.to_bps tuned.Mmt_pilot.Runners.Tcp_run.throughput
    > 10. *. Units.Rate.to_bps untuned.Mmt_pilot.Runners.Tcp_run.throughput)

let test_tcp_runner_loss_inflates_message_latency () =
  let base =
    Mmt_pilot.Runners.Tcp_run.params ~transfer:(Units.Size.mib 16)
      ~message_size:(Units.Size.kib 64) ()
  in
  let clean = Mmt_pilot.Runners.Tcp_run.run base in
  let lossy =
    Mmt_pilot.Runners.Tcp_run.run { base with Mmt_pilot.Runners.Tcp_run.loss = 0.002 }
  in
  Alcotest.(check bool) "lossy max message latency much worse" true
    (lossy.Mmt_pilot.Runners.Tcp_run.message_latency_max
    > 3. *. clean.Mmt_pilot.Runners.Tcp_run.message_latency_max)

let test_udp_runner_loses_data () =
  let o = Mmt_pilot.Runners.Udp_run.run ~loss:0.01 ~datagrams:5_000 () in
  Alcotest.(check int) "sent" 5_000 o.Mmt_pilot.Runners.Udp_run.sent;
  Alcotest.(check bool) "roughly 1% gone forever" true
    (o.Mmt_pilot.Runners.Udp_run.lost > 20 && o.Mmt_pilot.Runners.Udp_run.lost < 100)

let test_placement_runner_recovery_latency_shrinks () =
  let run_at position =
    Mmt_pilot.Runners.Placement_run.run
      (Mmt_pilot.Runners.Placement_run.params ~buffer_position:position
         ~fragment_count:1500 ~loss:0.01 ())
  in
  let near_source = run_at 0. in
  let near_sink = run_at 0.9 in
  Alcotest.(check int) "near-source complete" 1500
    near_source.Mmt_pilot.Runners.Placement_run.delivered;
  Alcotest.(check int) "near-sink complete" 1500
    near_sink.Mmt_pilot.Runners.Placement_run.delivered;
  Alcotest.(check bool) "theoretical recovery RTT shrinks" true
    Units.Time.(
      near_sink.Mmt_pilot.Runners.Placement_run.recovery_rtt
      < near_source.Mmt_pilot.Runners.Placement_run.recovery_rtt)

(* Telemetry ------------------------------------------------------------------- *)

let test_report_rendering () =
  let report =
    {
      Mmt_telemetry.Report.id = "E-T";
      title = "test";
      note = Some "scale 1e-4";
      rows =
        [
          Mmt_telemetry.Report.info ~metric:"emitted" ~measured:"300";
          Mmt_telemetry.Report.check ~metric:"delivered" ~expected:"all" ~measured:"300"
            true;
          Mmt_telemetry.Report.check ~metric:"broken" ~expected:"x" ~measured:"y" false;
        ];
    }
  in
  let rendered = Mmt_telemetry.Report.render report in
  Alcotest.(check bool) "has mismatch marker" true
    (String.length rendered > 0
    && Astring_replacement.contains rendered "MISMATCH"
    && Astring_replacement.contains rendered "OK"
    && Astring_replacement.contains rendered "scale 1e-4");
  Alcotest.(check bool) "not all ok" false (Mmt_telemetry.Report.all_ok report)

let test_flow_meter () =
  let meter = Mmt_telemetry.Flow_meter.create ~bin:(Units.Time.ms 1.) in
  Mmt_telemetry.Flow_meter.record meter ~now:(Units.Time.us 100.) ~bytes:1000;
  Mmt_telemetry.Flow_meter.record meter ~now:(Units.Time.us 200.) ~bytes:1000;
  Mmt_telemetry.Flow_meter.record meter ~now:(Units.Time.ms 2.5) ~bytes:500;
  Alcotest.(check int) "total" 2500 (Mmt_telemetry.Flow_meter.total_bytes meter);
  let series = Mmt_telemetry.Flow_meter.series meter in
  Alcotest.(check int) "three bins incl empty middle" 3 (List.length series);
  (match series with
  | (_, first) :: (_, middle) :: _ ->
      Alcotest.(check bool) "first bin 16 Mbps" true
        (Float.abs (Units.Rate.to_bps first -. 16e6) < 1.);
      Alcotest.(check bool) "gap bin zero" true (Units.Rate.is_zero middle)
  | _ -> Alcotest.fail "expected series");
  Alcotest.(check bool) "peak is first bin" true
    (Float.abs (Units.Rate.to_bps (Mmt_telemetry.Flow_meter.peak meter) -. 16e6) < 1.)

let suite =
  [
    Alcotest.test_case "pilot reliable under loss" `Slow test_pilot_reliable_delivery_under_loss;
    Alcotest.test_case "pilot in-network mode changes" `Slow test_pilot_mode_changes_in_network;
    Alcotest.test_case "pilot lossless clean" `Slow test_pilot_lossless_is_clean;
    Alcotest.test_case "pilot determinism" `Slow test_pilot_determinism;
    Alcotest.test_case "pilot sharded identical" `Slow test_pilot_sharded_identical;
    Alcotest.test_case "pilot duplication" `Slow test_pilot_duplication_to_researchers;
    Alcotest.test_case "pilot deadline budget" `Slow test_pilot_deadline_budget;
    Alcotest.test_case "pilot fabric vs physical" `Slow test_pilot_fabric_profile_slower;
    Alcotest.test_case "pilot aged fraction" `Slow test_pilot_aged_fraction_tracks_budget;
    Alcotest.test_case "pilot slices + event builder" `Slow test_pilot_slices_build_events;
    Alcotest.test_case "tcp tuned vs untuned" `Slow test_tcp_runner_tuned_vs_untuned;
    Alcotest.test_case "tcp loss inflates HoL" `Slow test_tcp_runner_loss_inflates_message_latency;
    Alcotest.test_case "udp loses data" `Slow test_udp_runner_loses_data;
    Alcotest.test_case "placement shrinks recovery" `Slow
      test_placement_runner_recovery_latency_shrinks;
    Alcotest.test_case "report rendering" `Quick test_report_rendering;
    Alcotest.test_case "flow meter" `Quick test_flow_meter;
  ]
