(* Queue disciplines, loss models, links and topology. *)
open Mmt_util
module Sim = Mmt_sim

let mk_packet ?(padding = 0) ?(id = 0) size =
  Sim.Packet.create ~padding ~id ~born:Units.Time.zero (Bytes.create size)

(* Queue models ---------------------------------------------------------- *)

let test_droptail_fifo_order () =
  let q = Sim.Queue_model.droptail ~capacity:(Units.Size.kib 64) () in
  let now = Units.Time.zero in
  for i = 0 to 9 do
    Alcotest.(check bool) "accepted" true
      (Sim.Queue_model.enqueue q ~now (mk_packet ~id:i 100) = `Accepted)
  done;
  let order = List.init 10 (fun _ ->
      match Sim.Queue_model.dequeue q ~now with
      | Some p -> p.Sim.Packet.id
      | None -> -1)
  in
  Alcotest.(check (list int)) "fifo" (List.init 10 Fun.id) order

let test_droptail_overflow () =
  let q = Sim.Queue_model.droptail ~capacity:(Units.Size.bytes 250) () in
  let now = Units.Time.zero in
  Alcotest.(check bool) "fits" true (Sim.Queue_model.enqueue q ~now (mk_packet 100) = `Accepted);
  Alcotest.(check bool) "fits" true (Sim.Queue_model.enqueue q ~now (mk_packet 100) = `Accepted);
  Alcotest.(check bool) "overflow" true (Sim.Queue_model.enqueue q ~now (mk_packet 100) = `Dropped);
  Alcotest.(check int) "drop counted" 1 (Sim.Queue_model.overflow_drops q);
  Alcotest.(check int) "bytes" 200 (Units.Size.to_bytes (Sim.Queue_model.queued_bytes q))

let test_droptail_padding_counts () =
  let q = Sim.Queue_model.droptail ~capacity:(Units.Size.bytes 150) () in
  let now = Units.Time.zero in
  Alcotest.(check bool) "padding included in occupancy" true
    (Sim.Queue_model.enqueue q ~now (mk_packet ~padding:100 10) = `Accepted);
  Alcotest.(check bool) "overflow from padding" true
    (Sim.Queue_model.enqueue q ~now (mk_packet ~padding:100 10) = `Dropped)

(* EDF queue: deadlines via a side table keyed by packet id. *)
let edf_queue deadlines =
  Sim.Queue_model.deadline_aware ~capacity:(Units.Size.kib 64) ~drop_expired:false
    ~deadline_of:(fun p -> List.assoc_opt p.Sim.Packet.id deadlines)
    ()

let test_edf_orders_by_deadline () =
  let deadlines = [ (0, Units.Time.ms 3.); (1, Units.Time.ms 1.); (2, Units.Time.ms 2.) ] in
  let q = edf_queue deadlines in
  let now = Units.Time.zero in
  List.iter (fun i -> ignore (Sim.Queue_model.enqueue q ~now (mk_packet ~id:i 10))) [ 0; 1; 2 ];
  let order = List.init 3 (fun _ ->
      match Sim.Queue_model.dequeue q ~now with Some p -> p.Sim.Packet.id | None -> -1)
  in
  Alcotest.(check (list int)) "earliest deadline first" [ 1; 2; 0 ] order

let test_edf_deadline_free_after_deadlines () =
  let deadlines = [ (1, Units.Time.ms 9.) ] in
  let q = edf_queue deadlines in
  let now = Units.Time.zero in
  List.iter (fun i -> ignore (Sim.Queue_model.enqueue q ~now (mk_packet ~id:i 10))) [ 0; 1; 2 ];
  let order = List.init 3 (fun _ ->
      match Sim.Queue_model.dequeue q ~now with Some p -> p.Sim.Packet.id | None -> -1)
  in
  Alcotest.(check (list int)) "deadline-bearing first, then fifo" [ 1; 0; 2 ] order

let test_edf_drop_expired () =
  let deadlines = [ (0, Units.Time.ms 1.); (1, Units.Time.ms 10.) ] in
  let q =
    Sim.Queue_model.deadline_aware ~capacity:(Units.Size.kib 64) ~drop_expired:true
      ~deadline_of:(fun p -> List.assoc_opt p.Sim.Packet.id deadlines)
      ()
  in
  List.iter
    (fun i -> ignore (Sim.Queue_model.enqueue q ~now:Units.Time.zero (mk_packet ~id:i 10)))
    [ 0; 1 ];
  (match Sim.Queue_model.dequeue q ~now:(Units.Time.ms 5.) with
  | Some p -> Alcotest.(check int) "expired dropped, live served" 1 p.Sim.Packet.id
  | None -> Alcotest.fail "expected a packet");
  Alcotest.(check int) "expired counted" 1 (Sim.Queue_model.expired_drops q)

let test_edf_heap_stress () =
  let rng = Rng.create ~seed:123L in
  let deadline_of (p : Sim.Packet.t) =
    Some (Units.Time.of_int_ns ((p.Sim.Packet.id * 7919) mod 104729))
  in
  let q =
    Sim.Queue_model.deadline_aware ~capacity:(Units.Size.mib 16) ~drop_expired:false
      ~deadline_of ()
  in
  for i = 0 to 999 do
    ignore (Sim.Queue_model.enqueue q ~now:Units.Time.zero (mk_packet ~id:i 10));
    if Rng.bool rng then ignore (Sim.Queue_model.dequeue q ~now:Units.Time.zero)
  done;
  let rec drain last =
    match Sim.Queue_model.dequeue q ~now:Units.Time.zero with
    | None -> ()
    | Some p ->
        let d = (p.Sim.Packet.id * 7919) mod 104729 in
        Alcotest.(check bool) "non-decreasing deadlines" true (d >= last);
        drain d
  in
  drain (-1)

(* An expired-drop cascade — several expired packets discarded inside a
   single dequeue — must debit every dropped packet's bytes, so the
   freed capacity is immediately reusable. *)
let test_edf_expired_cascade_byte_accounting () =
  let deadlines =
    [
      (0, Units.Time.ms 1.);
      (1, Units.Time.ms 2.);
      (2, Units.Time.ms 3.);
      (3, Units.Time.ms 4.);
      (4, Units.Time.ms 50.);
    ]
  in
  let q =
    Sim.Queue_model.deadline_aware ~capacity:(Units.Size.bytes 1_000)
      ~drop_expired:true
      ~deadline_of:(fun p -> List.assoc_opt p.Sim.Packet.id deadlines)
      ()
  in
  List.iter
    (fun i ->
      Alcotest.(check bool)
        "accepted" true
        (Sim.Queue_model.enqueue q ~now:Units.Time.zero (mk_packet ~id:i 200)
        = `Accepted))
    [ 0; 1; 2; 3; 4 ];
  Alcotest.(check int) "full" 1_000
    (Units.Size.to_bytes (Sim.Queue_model.queued_bytes q));
  (* At t=10ms packets 0-3 are expired: one dequeue call cascades over
     all four and serves the live one. *)
  (match Sim.Queue_model.dequeue q ~now:(Units.Time.ms 10.) with
  | Some p -> Alcotest.(check int) "live packet served" 4 p.Sim.Packet.id
  | None -> Alcotest.fail "expected the unexpired packet");
  Alcotest.(check int) "cascade counted" 4 (Sim.Queue_model.expired_drops q);
  Alcotest.(check int) "every dropped byte debited" 0
    (Units.Size.to_bytes (Sim.Queue_model.queued_bytes q));
  (* The freed capacity must be reusable at once. *)
  Alcotest.(check bool)
    "capacity reusable after cascade" true
    (Sim.Queue_model.enqueue q ~now:(Units.Time.ms 10.) (mk_packet ~id:9 1_000)
    = `Accepted)

let test_edf_expired_cascade_recycles_into_pool () =
  let pool = Sim.Pool.create () in
  let q =
    Sim.Queue_model.deadline_aware ~pool ~capacity:(Units.Size.kib 64)
      ~drop_expired:true
      ~deadline_of:(fun _ -> Some (Units.Time.us 1.))
      ()
  in
  for i = 0 to 9 do
    ignore (Sim.Queue_model.enqueue q ~now:Units.Time.zero (mk_packet ~id:i 128))
  done;
  Alcotest.(check bool)
    "all expired: nothing to serve" true
    (Sim.Queue_model.dequeue q ~now:(Units.Time.ms 1.) = None);
  let stats = Sim.Pool.stats pool in
  Alcotest.(check int) "all ten frames recycled" 10 stats.Sim.Pool.released

let test_queue_capacity_reusable_after_overflow () =
  let q = Sim.Queue_model.droptail ~capacity:(Units.Size.bytes 300) () in
  let now = Units.Time.zero in
  Alcotest.(check bool) "fits" true
    (Sim.Queue_model.enqueue q ~now (mk_packet ~id:0 200) = `Accepted);
  Alcotest.(check bool) "overflows" true
    (Sim.Queue_model.enqueue q ~now (mk_packet ~id:1 200) = `Dropped);
  Alcotest.(check int) "overflow counted" 1 (Sim.Queue_model.overflow_drops q);
  (* The overflow drop must not corrupt the byte count ... *)
  Alcotest.(check int) "bytes unchanged by overflow" 200
    (Units.Size.to_bytes (Sim.Queue_model.queued_bytes q));
  ignore (Sim.Queue_model.dequeue q ~now);
  (* ... and after draining, the full capacity is available again. *)
  Alcotest.(check int) "empty" 0
    (Units.Size.to_bytes (Sim.Queue_model.queued_bytes q));
  Alcotest.(check bool) "full capacity back" true
    (Sim.Queue_model.enqueue q ~now (mk_packet ~id:2 300) = `Accepted)

(* Loss models ------------------------------------------------------------ *)

let test_loss_perfect () =
  for _ = 1 to 100 do
    Alcotest.(check bool) "always delivers" true
      (Sim.Loss.decide Sim.Loss.perfect = Sim.Loss.Deliver)
  done

let test_loss_bernoulli_rates () =
  let rng = Rng.create ~seed:42L in
  let model = Sim.Loss.bernoulli ~drop:0.1 ~corrupt:0.05 ~rng in
  let drops = ref 0 and corrupts = ref 0 and n = 100_000 in
  for _ = 1 to n do
    match Sim.Loss.decide model with
    | Sim.Loss.Drop -> incr drops
    | Sim.Loss.Corrupt -> incr corrupts
    | Sim.Loss.Deliver -> ()
  done;
  Alcotest.(check bool) "drop rate ~10%" true (abs (!drops - 10_000) < 500);
  Alcotest.(check bool) "corrupt rate ~5%" true (abs (!corrupts - 5_000) < 400)

let test_loss_bernoulli_validation () =
  let rng = Rng.create ~seed:1L in
  Alcotest.(check bool) "sum > 1 rejected" true
    (match Sim.Loss.bernoulli ~drop:0.7 ~corrupt:0.7 ~rng with
    | _ -> false
    | exception Invalid_argument _ -> true)

let test_loss_gilbert_burstiness () =
  let rng = Rng.create ~seed:9L in
  let model =
    Sim.Loss.gilbert_elliott ~p_good_to_bad:0.01 ~p_bad_to_good:0.2 ~drop_in_bad:0.8 ~rng ()
  in
  (* Count runs of consecutive drops: burst loss should produce longer
     runs than independent loss at the same average rate. *)
  let drops = ref 0 and runs = ref 0 and in_run = ref false and n = 200_000 in
  for _ = 1 to n do
    match Sim.Loss.decide model with
    | Sim.Loss.Drop ->
        incr drops;
        if not !in_run then begin incr runs; in_run := true end
    | _ -> in_run := false
  done;
  Alcotest.(check bool) "some loss" true (!drops > 0);
  let mean_run = float_of_int !drops /. float_of_int (max 1 !runs) in
  Alcotest.(check bool) "bursty (mean run > 1.5)" true (mean_run > 1.5)

let test_loss_gilbert_corrupt_in_bad () =
  let rng = Rng.create ~seed:11L in
  let model =
    Sim.Loss.gilbert_elliott ~corrupt_in_bad:0.5 ~p_good_to_bad:0.05
      ~p_bad_to_good:0.1 ~drop_in_bad:0.3 ~rng ()
  in
  let drops = ref 0 and corrupts = ref 0 in
  for _ = 1 to 100_000 do
    match Sim.Loss.decide model with
    | Sim.Loss.Drop -> incr drops
    | Sim.Loss.Corrupt -> incr corrupts
    | Sim.Loss.Deliver -> ()
  done;
  Alcotest.(check bool) "drops in bad state" true (!drops > 0);
  Alcotest.(check bool) "corruptions in bad state" true (!corrupts > 0);
  (* corrupt_in_bad (0.5) > drop_in_bad (0.3): corruption dominates. *)
  Alcotest.(check bool) "corrupts outnumber drops" true (!corrupts > !drops)

let test_loss_gilbert_corrupt_validation () =
  let rng = Rng.create ~seed:1L in
  Alcotest.(check bool) "drop + corrupt > 1 rejected" true
    (match
       Sim.Loss.gilbert_elliott ~corrupt_in_bad:0.5 ~p_good_to_bad:0.01
         ~p_bad_to_good:0.2 ~drop_in_bad:0.6 ~rng ()
     with
    | _ -> false
    | exception Invalid_argument _ -> true);
  Alcotest.(check bool) "corrupt_in_bad > 1 rejected" true
    (match
       Sim.Loss.gilbert_elliott ~corrupt_in_bad:1.5 ~p_good_to_bad:0.01
         ~p_bad_to_good:0.2 ~drop_in_bad:0. ~rng ()
     with
    | _ -> false
    | exception Invalid_argument _ -> true)

(* Links ------------------------------------------------------------------ *)

let test_link_delivers_with_latency () =
  let engine = Sim.Engine.create () in
  let arrivals = ref [] in
  let link =
    Sim.Link.create ~engine ~name:"l" ~rate:(Units.Rate.gbps 1.)
      ~propagation:(Units.Time.us 100.)
      ~deliver:(fun p -> arrivals := (Sim.Engine.now engine, p) :: !arrivals)
      ()
  in
  (* 1250 bytes at 1 Gbps = 10 us serialization + 100 us propagation. *)
  Sim.Link.send link (mk_packet 1250);
  Sim.Engine.run engine;
  match !arrivals with
  | [ (at, p) ] ->
      Alcotest.(check bool) "arrival time" true
        (Units.Time.equal at (Units.Time.us 110.));
      Alcotest.(check int) "hop counted" 1 p.Sim.Packet.hops
  | _ -> Alcotest.fail "expected one arrival"

let test_link_serializes_back_to_back () =
  let engine = Sim.Engine.create () in
  let arrivals = ref [] in
  let link =
    Sim.Link.create ~engine ~name:"l" ~rate:(Units.Rate.gbps 1.)
      ~propagation:Units.Time.zero
      ~deliver:(fun _ -> arrivals := Sim.Engine.now engine :: !arrivals)
      ()
  in
  Sim.Link.send link (mk_packet 1250);
  Sim.Link.send link (mk_packet 1250);
  Sim.Engine.run engine;
  Alcotest.(check (list string)) "second waits for first"
    [ "10us"; "20us" ]
    (List.rev_map Units.Time.to_string !arrivals)

let test_link_zero_rate_is_ideal () =
  let engine = Sim.Engine.create () in
  let arrived = ref Units.Time.zero in
  let link =
    Sim.Link.create ~engine ~name:"ideal" ~rate:Units.Rate.zero
      ~propagation:(Units.Time.ms 1.)
      ~deliver:(fun _ -> arrived := Sim.Engine.now engine)
      ()
  in
  Sim.Link.send link (mk_packet 1_000_000);
  Sim.Engine.run engine;
  Alcotest.(check string) "propagation only" "1ms" (Units.Time.to_string !arrived)

let test_link_loss_accounting () =
  let engine = Sim.Engine.create () in
  let delivered = ref 0 and corrupted_seen = ref 0 in
  let rng = Rng.create ~seed:5L in
  let link =
    Sim.Link.create ~engine ~name:"lossy" ~rate:(Units.Rate.gbps 10.)
      ~propagation:Units.Time.zero
      ~loss:(Sim.Loss.bernoulli ~drop:0.2 ~corrupt:0.1 ~rng)
      ~deliver:(fun p ->
        incr delivered;
        if p.Sim.Packet.corrupted then incr corrupted_seen)
      ()
  in
  let n = 10_000 in
  for i = 0 to n - 1 do
    ignore
      (Sim.Engine.schedule engine ~at:(Units.Time.of_int_ns (i * 2_000)) (fun () ->
           Sim.Link.send link (mk_packet 100)))
  done;
  Sim.Engine.run engine;
  let stats = Sim.Link.stats link in
  Alcotest.(check int) "offered" n stats.Sim.Link.offered;
  Alcotest.(check int) "conservation: delivered + dropped = transmitted"
    stats.Sim.Link.transmitted
    (stats.Sim.Link.delivered + stats.Sim.Link.loss_drops);
  Alcotest.(check int) "delivered matches callback" !delivered stats.Sim.Link.delivered;
  Alcotest.(check int) "corrupted flagged" !corrupted_seen stats.Sim.Link.corrupted;
  Alcotest.(check bool) "roughly 20% dropped" true
    (abs (stats.Sim.Link.loss_drops - 2_000) < 300)

let test_link_queue_overflow_accounting () =
  let engine = Sim.Engine.create () in
  let link =
    Sim.Link.create ~engine ~name:"tiny" ~rate:(Units.Rate.mbps 1.)
      ~propagation:Units.Time.zero
      ~queue:(Sim.Queue_model.droptail ~capacity:(Units.Size.bytes 500) ())
      ~deliver:ignore ()
  in
  for _ = 1 to 20 do
    Sim.Link.send link (mk_packet 100)
  done;
  Sim.Engine.run engine;
  let stats = Sim.Link.stats link in
  Alcotest.(check int) "offered" 20 stats.Sim.Link.offered;
  Alcotest.(check bool) "some queue drops" true (stats.Sim.Link.queue_drops > 0);
  Alcotest.(check int) "conservation" 20
    (stats.Sim.Link.transmitted + stats.Sim.Link.queue_drops)

let test_link_utilization () =
  let engine = Sim.Engine.create () in
  let link =
    Sim.Link.create ~engine ~name:"u" ~rate:(Units.Rate.gbps 1.)
      ~propagation:Units.Time.zero ~deliver:ignore ()
  in
  (* 10 packets x 10 us = 100 us busy. *)
  for _ = 1 to 10 do
    Sim.Link.send link (mk_packet 1250)
  done;
  Sim.Engine.run engine;
  Alcotest.(check bool) "50% busy over 200us" true
    (Float.abs (Sim.Link.utilization link ~over:(Units.Time.us 200.) -. 0.5) < 1e-9)

(* Topology ---------------------------------------------------------------- *)

let test_topology_nodes_and_links () =
  let engine = Sim.Engine.create () in
  let topo = Sim.Topology.create ~engine () in
  let a = Sim.Topology.add_node topo ~name:"a" in
  let b = Sim.Topology.add_node topo ~name:"b" in
  let ab, ba =
    Sim.Topology.duplex topo ~a ~b ~rate:(Units.Rate.gbps 1.)
      ~propagation:(Units.Time.us 1.) ()
  in
  Alcotest.(check string) "link name" "a->b" (Sim.Link.name ab);
  Alcotest.(check string) "reverse name" "b->a" (Sim.Link.name ba);
  Alcotest.(check int) "two links" 2 (List.length (Sim.Topology.links topo));
  Alcotest.(check bool) "find node" true (Sim.Topology.find_node topo "a" == a);
  Alcotest.(check bool) "duplicate rejected" true
    (match Sim.Topology.add_node topo ~name:"a" with
    | _ -> false
    | exception Invalid_argument _ -> true)

let test_topology_delivery_to_handler () =
  let engine = Sim.Engine.create () in
  let topo = Sim.Topology.create ~engine () in
  let a = Sim.Topology.add_node topo ~name:"a" in
  let b = Sim.Topology.add_node topo ~name:"b" in
  let link =
    Sim.Topology.connect topo ~src:a ~dst:b ~rate:(Units.Rate.gbps 1.)
      ~propagation:(Units.Time.us 1.) ()
  in
  let got = ref 0 in
  Sim.Node.set_handler b (fun _ -> incr got);
  Sim.Link.send link (mk_packet 100);
  Sim.Engine.run engine;
  Alcotest.(check int) "handler invoked" 1 !got;
  Alcotest.(check int) "received counted" 1 (Sim.Node.received b)

let test_topology_fresh_ids () =
  let engine = Sim.Engine.create () in
  let topo = Sim.Topology.create ~engine () in
  let ids = List.init 100 (fun _ -> Sim.Topology.fresh_packet_id topo) in
  Alcotest.(check int) "unique ids" 100 (List.length (List.sort_uniq compare ids))


(* Trace ----------------------------------------------------------------- *)

let test_trace_capacity_evicts_oldest () =
  let trace = Sim.Trace.create ~capacity:5 () in
  for i = 0 to 7 do
    Sim.Trace.record trace
      ~at:(Units.Time.us (float_of_int i))
      ~link:"a->b" Sim.Link.Sent (mk_packet ~id:i 100)
  done;
  let entries = Sim.Trace.entries trace in
  Alcotest.(check int) "bounded to capacity" 5 (List.length entries);
  Alcotest.(check int) "truncated counts the discarded" 3
    (Sim.Trace.truncated trace);
  Alcotest.(check (list int)) "oldest entries were evicted" [ 3; 4; 5; 6; 7 ]
    (List.map (fun (e : Sim.Trace.entry) -> e.Sim.Trace.packet_id) entries)

let test_trace_under_capacity_keeps_everything () =
  let trace = Sim.Trace.create ~capacity:10 () in
  for i = 0 to 3 do
    Sim.Trace.record trace
      ~at:(Units.Time.us (float_of_int i))
      ~link:"a->b" Sim.Link.Delivered (mk_packet ~id:i 100)
  done;
  Alcotest.(check int) "all kept" 4 (List.length (Sim.Trace.entries trace));
  Alcotest.(check int) "nothing truncated" 0 (Sim.Trace.truncated trace);
  Alcotest.(check int) "count sees them" 4 (Sim.Trace.count trace Sim.Link.Delivered)

let test_trace_truncation_keeps_counting () =
  (* Eviction must not corrupt per-event counts of surviving entries,
     and packet_history reflects only what is still retained. *)
  let trace = Sim.Trace.create ~capacity:4 () in
  for i = 0 to 9 do
    let event = if i mod 2 = 0 then Sim.Link.Sent else Sim.Link.Delivered in
    Sim.Trace.record trace
      ~at:(Units.Time.us (float_of_int i))
      ~link:"a->b" event (mk_packet ~id:i 100)
  done;
  Alcotest.(check int) "six truncated" 6 (Sim.Trace.truncated trace);
  Alcotest.(check int) "surviving sent" 2 (Sim.Trace.count trace Sim.Link.Sent);
  Alcotest.(check int) "surviving delivered" 2
    (Sim.Trace.count trace Sim.Link.Delivered);
  Alcotest.(check int) "evicted packet has no history" 0
    (List.length (Sim.Trace.packet_history trace ~packet_id:0));
  Alcotest.(check int) "retained packet has history" 1
    (List.length (Sim.Trace.packet_history trace ~packet_id:9))

let suite =
  [
    Alcotest.test_case "droptail fifo" `Quick test_droptail_fifo_order;
    Alcotest.test_case "droptail overflow" `Quick test_droptail_overflow;
    Alcotest.test_case "droptail counts padding" `Quick test_droptail_padding_counts;
    Alcotest.test_case "edf deadline order" `Quick test_edf_orders_by_deadline;
    Alcotest.test_case "edf deadline-free last" `Quick test_edf_deadline_free_after_deadlines;
    Alcotest.test_case "edf drop expired" `Quick test_edf_drop_expired;
    Alcotest.test_case "edf heap stress" `Quick test_edf_heap_stress;
    Alcotest.test_case "edf expired cascade byte accounting" `Quick
      test_edf_expired_cascade_byte_accounting;
    Alcotest.test_case "edf expired cascade recycles into pool" `Quick
      test_edf_expired_cascade_recycles_into_pool;
    Alcotest.test_case "queue capacity reusable after overflow" `Quick
      test_queue_capacity_reusable_after_overflow;
    Alcotest.test_case "loss perfect" `Quick test_loss_perfect;
    Alcotest.test_case "loss bernoulli rates" `Quick test_loss_bernoulli_rates;
    Alcotest.test_case "loss validation" `Quick test_loss_bernoulli_validation;
    Alcotest.test_case "loss gilbert bursty" `Quick test_loss_gilbert_burstiness;
    Alcotest.test_case "loss gilbert corrupt_in_bad" `Quick
      test_loss_gilbert_corrupt_in_bad;
    Alcotest.test_case "loss gilbert corrupt validation" `Quick
      test_loss_gilbert_corrupt_validation;
    Alcotest.test_case "link latency" `Quick test_link_delivers_with_latency;
    Alcotest.test_case "link serialization queueing" `Quick test_link_serializes_back_to_back;
    Alcotest.test_case "link ideal rate" `Quick test_link_zero_rate_is_ideal;
    Alcotest.test_case "link loss accounting" `Quick test_link_loss_accounting;
    Alcotest.test_case "link queue overflow" `Quick test_link_queue_overflow_accounting;
    Alcotest.test_case "link utilization" `Quick test_link_utilization;
    Alcotest.test_case "topology nodes/links" `Quick test_topology_nodes_and_links;
    Alcotest.test_case "topology delivery" `Quick test_topology_delivery_to_handler;
    Alcotest.test_case "topology fresh ids" `Quick test_topology_fresh_ids;
    Alcotest.test_case "trace capacity eviction" `Quick
      test_trace_capacity_evicts_oldest;
    Alcotest.test_case "trace under capacity" `Quick
      test_trace_under_capacity_keeps_everything;
    Alcotest.test_case "trace counts after truncation" `Quick
      test_trace_truncation_keeps_counting;
  ]
