(* Command-line interface: run experiment reproductions, drive the
   pilot with custom parameters, inspect the catalog. *)

open Mmt_util
open Cmdliner

(* `shapeshift list` ----------------------------------------------------- *)

let list_cmd =
  let run () =
    let table =
      Table.create ~title:"Experiment reproductions"
        ~columns:[ ("id", Table.Left); ("title", Table.Left) ]
        ()
    in
    List.iter
      (fun (e : Mmt_experiments.Registry.entry) ->
        Table.add_row table [ e.Mmt_experiments.Registry.id; e.Mmt_experiments.Registry.title ])
      Mmt_experiments.Registry.all;
    Table.print table;
    0
  in
  Cmd.v (Cmd.info "list" ~doc:"List every table/figure reproduction.")
    Term.(const run $ const ())

(* `shapeshift experiments [ID...]` -------------------------------------- *)

let experiments_cmd =
  let ids =
    Arg.(value & pos_all string [] & info [] ~docv:"ID" ~doc:"Experiment ids (default: all).")
  in
  let run ids =
    match ids with
    | [] -> if Mmt_experiments.Registry.run_all () then 0 else 1
    | ids ->
        List.fold_left
          (fun code id ->
            match Mmt_experiments.Registry.find id with
            | None ->
                Printf.eprintf "unknown experiment %S (try `shapeshift list`)\n" id;
                2
            | Some entry ->
                Printf.printf "### %s — %s\n\n%!" entry.Mmt_experiments.Registry.id
                  entry.Mmt_experiments.Registry.title;
                let output, ok = entry.Mmt_experiments.Registry.run () in
                print_string output;
                print_newline ();
                if ok then code else 1)
          0 ids
  in
  Cmd.v
    (Cmd.info "experiments"
       ~doc:"Regenerate the paper's tables and figures (all, or by id).")
    Term.(const run $ ids)

(* `shapeshift all [--jobs N]` --------------------------------------------- *)

let all_cmd =
  let jobs =
    Arg.(
      value & opt int 1
      & info [ "jobs"; "j" ] ~docv:"N"
          ~doc:
            "Run the experiment sweep on $(docv) domains; 0 picks the \
             machine's recommended domain count automatically.  Requests \
             beyond that count are capped (extra domains only contend).  \
             Every experiment is a self-contained deterministic \
             simulation, so the reports (printed in registry order) are \
             byte-identical to a sequential sweep.")
  in
  let run jobs =
    if jobs < 0 then begin
      Printf.eprintf "shapeshift all: --jobs must be 0 (auto) or positive\n";
      2
    end
    else if Mmt_experiments.Registry.run_all ~jobs () then 0
    else 1
  in
  Cmd.v
    (Cmd.info "all"
       ~doc:"Run the full experiment sweep, optionally across domains.")
    Term.(const run $ jobs)

(* `shapeshift pilot ...` -------------------------------------------------- *)

let pilot_cmd =
  let profile =
    let parse = function
      | "physical" -> Ok Mmt_pilot.Profile.physical_100gbe
      | "fabric" -> Ok Mmt_pilot.Profile.fabric_virtual
      | other -> Error (`Msg (Printf.sprintf "unknown profile %S" other))
    in
    let print fmt (p : Mmt_pilot.Profile.t) =
      Format.pp_print_string fmt p.Mmt_pilot.Profile.name
    in
    Arg.conv (parse, print)
  in
  let profile_arg =
    Arg.(
      value
      & opt profile Mmt_pilot.Profile.physical_100gbe
      & info [ "profile" ] ~docv:"PROFILE" ~doc:"Hardware variant: physical or fabric.")
  in
  let fragments =
    Arg.(value & opt int 2000 & info [ "fragments" ] ~doc:"Fragments to stream.")
  in
  let loss =
    Arg.(value & opt float 0.002 & info [ "loss" ] ~doc:"WAN drop probability.")
  in
  let corrupt =
    Arg.(value & opt float 0.0005 & info [ "corrupt" ] ~doc:"WAN corruption probability.")
  in
  let researchers =
    Arg.(value & opt int 0 & info [ "researchers" ] ~doc:"Duplicated-stream consumers.")
  in
  let deadline_ms =
    Arg.(
      value
      & opt (some float) None
      & info [ "deadline-ms" ] ~doc:"Activate the Timely feature with this budget.")
  in
  let seed = Arg.(value & opt int64 42L & info [ "seed" ] ~doc:"Simulation seed.") in
  let int_flag =
    Arg.(
      value & flag
      & info [ "int" ]
          ~doc:"Stamp in-band telemetry along the path and print the per-hop breakdown.")
  in
  let shards =
    Arg.(
      value & opt int 1
      & info [ "shards" ] ~docv:"N"
          ~doc:
            "Cut the topology at its WAN links and run the pieces on \
             $(docv) domains; 0 picks the machine's recommended count.  \
             Deterministic: the results are byte-identical to the \
             sequential run (which remains the default, and the \
             fallback when the topology yields fewer than two pieces).")
  in
  let no_pool =
    Arg.(
      value & flag
      & info [ "no-pool" ]
          ~doc:
            "Disable the preallocated packet rings (pure-GC allocation).  \
             Pooling changes the allocator only: the results are \
             byte-identical either way.")
  in
  let no_fuse =
    Arg.(
      value & flag
      & info [ "no-fuse" ]
          ~doc:
            "Disable fused link hops (every hop schedules a serialize \
             event followed by a propagate event, as before PR 9).  \
             Fusing changes event mechanics only: the results are \
             byte-identical either way.")
  in
  let run profile fragments loss corrupt researchers deadline_ms seed int_flag
      shards no_pool no_fuse =
    let config =
      {
        Mmt_pilot.Pilot.default_config with
        Mmt_pilot.Pilot.profile;
        fragment_count = fragments;
        wan_loss = loss;
        wan_corrupt = corrupt;
        researchers;
        deadline_budget = Option.map Units.Time.ms deadline_ms;
        int_telemetry = int_flag;
        seed;
      }
    in
    if shards < 0 then begin
      Printf.eprintf "shapeshift pilot: --shards must be 0 (auto) or positive\n";
      2
    end
    else begin
    let shards =
      if shards = 0 then Mmt_util.Task_pool.recommended_jobs () else shards
    in
    let pilot =
      Mmt_pilot.Pilot.build ~shards ~pooling:(not no_pool)
        ~fusing:(not no_fuse) config
    in
    Mmt_pilot.Pilot.run pilot;
    let r = Mmt_pilot.Pilot.results pilot in
    let receiver = r.Mmt_pilot.Pilot.receiver in
    let table =
      Table.create
        ~title:
          (Printf.sprintf "Pilot run: %s, %d fragments, %.3g%% loss, seed %Ld"
             profile.Mmt_pilot.Profile.name fragments (loss *. 100.) seed)
        ~columns:[ ("metric", Table.Left); ("value", Table.Right) ]
        ()
    in
    let row name value = Table.add_row table [ name; value ] in
    row "emitted" (string_of_int r.Mmt_pilot.Pilot.emitted);
    row "delivered" (string_of_int receiver.Mmt.Receiver.delivered);
    row "gaps detected" (string_of_int receiver.Mmt.Receiver.gaps_detected);
    row "recovered" (string_of_int receiver.Mmt.Receiver.recovered);
    row "lost" (string_of_int receiver.Mmt.Receiver.lost);
    row "duplicates" (string_of_int receiver.Mmt.Receiver.duplicates);
    row "NAKs sent" (string_of_int receiver.Mmt.Receiver.naks_sent);
    row "DTN1 resends" (string_of_int r.Mmt_pilot.Pilot.buffer.Mmt.Buffer_host.frames_resent);
    row "late" (string_of_int receiver.Mmt.Receiver.late);
    row "aged" (string_of_int receiver.Mmt.Receiver.aged);
    row "goodput" (Units.Rate.to_string r.Mmt_pilot.Pilot.goodput);
    row "completion"
      (match receiver.Mmt.Receiver.completion with
      | Some t -> Units.Time.to_string t
      | None -> "-");
    List.iteri
      (fun i (stats : Mmt.Receiver.stats) ->
        row (Printf.sprintf "researcher %d delivered" i)
          (string_of_int stats.Mmt.Receiver.delivered))
      r.Mmt_pilot.Pilot.researcher_stats;
    if shards > 1 then
      row "shards engaged" (string_of_int (Mmt_pilot.Pilot.nshards pilot));
    Table.print table;
    Option.iter
      (fun collector ->
        print_newline ();
        print_string (Mmt_int.Collector.render collector))
      (Mmt_pilot.Pilot.int_collector pilot);
    if receiver.Mmt.Receiver.delivered = r.Mmt_pilot.Pilot.emitted then 0 else 1
    end
  in
  Cmd.v
    (Cmd.info "pilot" ~doc:"Run the Fig. 4 pilot topology with custom parameters.")
    Term.(
      const run $ profile_arg $ fragments $ loss $ corrupt $ researchers
      $ deadline_ms $ seed $ int_flag $ shards $ no_pool $ no_fuse)

(* `shapeshift telemetry` ---------------------------------------------------- *)

let telemetry_cmd =
  let profile =
    let parse = function
      | "physical" -> Ok Mmt_pilot.Profile.physical_100gbe
      | "fabric" -> Ok Mmt_pilot.Profile.fabric_virtual
      | other -> Error (`Msg (Printf.sprintf "unknown profile %S" other))
    in
    let print fmt (p : Mmt_pilot.Profile.t) =
      Format.pp_print_string fmt p.Mmt_pilot.Profile.name
    in
    Arg.conv (parse, print)
  in
  let profile_arg =
    Arg.(
      value
      & opt profile Mmt_pilot.Profile.physical_100gbe
      & info [ "profile" ] ~docv:"PROFILE" ~doc:"Hardware variant: physical or fabric.")
  in
  let fragments =
    Arg.(value & opt int 500 & info [ "fragments" ] ~doc:"Fragments to stream.")
  in
  let loss =
    Arg.(value & opt float 0. & info [ "loss" ] ~doc:"WAN drop probability.")
  in
  let seed = Arg.(value & opt int64 42L & info [ "seed" ] ~doc:"Simulation seed.") in
  let run profile fragments loss seed =
    let config =
      {
        Mmt_pilot.Pilot.default_config with
        Mmt_pilot.Pilot.profile;
        fragment_count = fragments;
        wan_loss = loss;
        wan_corrupt = 0.;
        int_telemetry = true;
        seed;
      }
    in
    let pilot = Mmt_pilot.Pilot.build config in
    Mmt_pilot.Pilot.run pilot;
    match Mmt_pilot.Pilot.int_collector pilot with
    | None -> 1
    | Some collector ->
        print_string (Mmt_int.Collector.render collector);
        print_newline ();
        let report =
          Mmt_int.Collector.report
            ~title:
              (Printf.sprintf "in-band telemetry, %s profile"
                 profile.Mmt_pilot.Profile.name)
            collector
        in
        Mmt_telemetry.Report.print report;
        if Mmt_telemetry.Report.all_ok report then 0 else 1
  in
  Cmd.v
    (Cmd.info "telemetry"
       ~doc:
        "Run the pilot with in-band telemetry on and print where each \
         nanosecond of latency is spent.")
    Term.(const run $ profile_arg $ fragments $ loss $ seed)

(* `shapeshift catalog` ------------------------------------------------------ *)

let catalog_cmd =
  let run () =
    let table =
      Table.create ~title:"Experiment catalog (Table 1 of the paper)"
        ~columns:
          [
            ("experiment", Table.Left);
            ("DAQ rate", Table.Right);
            ("fragment", Table.Right);
            ("WAN RTT", Table.Right);
            ("slices", Table.Right);
            ("alert stream", Table.Right);
          ]
        ()
    in
    List.iter
      (fun (e : Mmt_daq.Experiment.t) ->
        Table.add_row table
          [
            e.Mmt_daq.Experiment.name;
            Units.Rate.to_string e.Mmt_daq.Experiment.daq_rate;
            Units.Size.to_string e.Mmt_daq.Experiment.message_size;
            Units.Time.to_string e.Mmt_daq.Experiment.wan_rtt;
            string_of_int e.Mmt_daq.Experiment.slices;
            (match e.Mmt_daq.Experiment.alert_stream with
            | Some rate -> Units.Rate.to_string rate
            | None -> "-");
          ])
      Mmt_daq.Experiment.all;
    Table.print table;
    0
  in
  Cmd.v (Cmd.info "catalog" ~doc:"Print the instrument catalog (Table 1).")
    Term.(const run $ const ())

(* `shapeshift failover` ----------------------------------------------------- *)

let failover_cmd =
  let fail_at_ms =
    Arg.(
      value
      & opt (some float) (Some 5.)
      & info [ "fail-at-ms" ]
          ~doc:"When buffer A dies (omit failure with --no-failure).")
  in
  let no_failure =
    Arg.(value & flag & info [ "no-failure" ] ~doc:"Run the healthy baseline.")
  in
  let fragments =
    Arg.(value & opt int 12_000 & info [ "fragments" ] ~doc:"Fragments to stream.")
  in
  let run fail_at_ms no_failure fragments =
    let params =
      Mmt_pilot.Failover_run.params ~fragment_count:fragments
        ?fail_buffer_a_at:
          (if no_failure then None else Option.map Units.Time.ms fail_at_ms)
        ()
    in
    let o = Mmt_pilot.Failover_run.run params in
    let table =
      Table.create ~title:"Discovery + failover run (§ 6 challenge 1)"
        ~columns:[ ("metric", Table.Left); ("value", Table.Right) ]
        ()
    in
    let row name value = Table.add_row table [ name; value ] in
    row "delivered" (string_of_int o.Mmt_pilot.Failover_run.delivered);
    row "recovered" (string_of_int o.Mmt_pilot.Failover_run.recovered);
    row "lost" (string_of_int o.Mmt_pilot.Failover_run.lost);
    row "NAKs served by buffer A" (string_of_int o.Mmt_pilot.Failover_run.naks_served_by_a);
    row "NAKs served by buffer B" (string_of_int o.Mmt_pilot.Failover_run.naks_served_by_b);
    row "planner mode changes" (string_of_int o.Mmt_pilot.Failover_run.mode_changes);
    row "final buffer in the mode" o.Mmt_pilot.Failover_run.final_buffer;
    Table.print table;
    if o.Mmt_pilot.Failover_run.lost = 0 then 0 else 1
  in
  Cmd.v
    (Cmd.info "failover"
       ~doc:"Kill a retransmission buffer mid-stream and watch discovery re-plan.")
    Term.(const run $ fail_at_ms $ no_failure $ fragments)

(* `shapeshift chaos` -------------------------------------------------------- *)

let chaos_cmd =
  let list_flag =
    Arg.(value & flag & info [ "list" ] ~doc:"List the scenarios and exit.")
  in
  let scenario =
    Arg.(
      value
      & opt (some string) None
      & info [ "scenario" ] ~docv:"NAME"
          ~doc:
            "Run a single scenario (substring match against the series \
             names); default runs the whole series.")
  in
  let fragments =
    Arg.(
      value
      & opt (some int) None
      & info [ "fragments" ] ~doc:"Override the fragment count.")
  in
  let show_log =
    Arg.(value & flag & info [ "log" ] ~doc:"Print the applied-fault log.")
  in
  let no_fuse =
    Arg.(
      value & flag
      & info [ "no-fuse" ]
          ~doc:
            "Disable fused link hops.  Fusing changes event mechanics \
             only: the outcomes are byte-identical either way.")
  in
  let print_outcome name (params : Mmt_pilot.Chaos_run.params) show_log fusing =
    let o = Mmt_pilot.Chaos_run.run ~fusing params in
    let module C = Mmt_pilot.Chaos_run in
    let table =
      Table.create
        ~title:(Printf.sprintf "chaos: %s (%d fault events planned)" name
                  (Mmt_fault.Plan.length params.C.plan))
        ~columns:[ ("metric", Table.Left); ("value", Table.Right) ]
        ()
    in
    let row k v = Table.add_row table [ k; v ] in
    row "sequenced (emitted)" (string_of_int o.C.emitted);
    row "delivered" (string_of_int o.C.delivered);
    row "delivered degraded" (string_of_int o.C.degraded_delivered);
    row "recovered" (string_of_int o.C.recovered);
    row "lost" (string_of_int (o.C.lost + o.C.unrecoverable));
    row "duplicates" (string_of_int o.C.duplicates);
    row "headers flipped on-wire" (string_of_int o.C.tampered);
    row "caught in-network" (string_of_int o.C.verify_failed_innet);
    row "caught at receiver" (string_of_int o.C.checksum_failed_rx);
    row "destroyed by downed links" (string_of_int o.C.fault_drops);
    row "degraded rewrites" (string_of_int o.C.degraded_rewrites);
    row "planner mode changes" (string_of_int o.C.mode_changes);
    row "final buffer" o.C.final_buffer;
    row "NAKs served by A" (string_of_int o.C.naks_served_by_a);
    row "NAKs served by B" (string_of_int o.C.naks_served_by_b);
    row "faults applied" (string_of_int o.C.faults_applied);
    row "goodput" (Units.Rate.to_string o.C.goodput);
    row "completion"
      (match o.C.completion with
      | Some t -> Units.Time.to_string t
      | None -> "-");
    Table.print table;
    if show_log then
      List.iter
        (fun (at, what) ->
          Printf.printf "  %-12s FAULT %s\n" (Units.Time.to_string at) what)
        o.C.fault_log;
    Printf.printf "invariant: %s\n"
      (Mmt_fault.Invariant.to_string o.C.invariant);
    (match o.C.violations with
    | [] -> Printf.printf "invariants: OK\n\n"
    | vs ->
        Printf.printf "invariants: %d VIOLATION(S)\n" (List.length vs);
        List.iter (fun v -> Printf.printf "  !! %s\n" v) vs;
        print_newline ());
    o.C.violations = []
  in
  let run list_flag scenario fragments show_log no_fuse =
    let scenarios = Mmt_experiments.Chaos.scenarios in
    if list_flag then begin
      List.iter (fun (name, _) -> print_endline name) scenarios;
      0
    end
    else
      let contains ~needle hay =
        let n = String.length needle and h = String.length hay in
        let rec at i = i + n <= h && (String.sub hay i n = needle || at (i + 1)) in
        n = 0 || at 0
      in
      let selected =
        match scenario with
        | None -> scenarios
        | Some needle ->
            List.filter
              (fun (name, _) ->
                contains
                  ~needle:(String.lowercase_ascii needle)
                  (String.lowercase_ascii name))
              scenarios
      in
      match selected with
      | [] ->
          Printf.eprintf "no scenario matches (try `shapeshift chaos --list`)\n";
          2
      | selected ->
          let ok =
            List.fold_left
              (fun ok (name, params) ->
                let params =
                  match fragments with
                  | None -> params
                  | Some n ->
                      { params with Mmt_pilot.Chaos_run.fragment_count = n }
                in
                print_outcome name params show_log (not no_fuse) && ok)
              true selected
          in
          if ok then 0 else 1
  in
  Cmd.v
    (Cmd.info "chaos"
       ~doc:
         "Run the fault-injection series: kill buffers, flip header bits on \
          the wire, flap links, blackhole adverts — and check the delivery \
          invariants.")
    Term.(const run $ list_flag $ scenario $ fragments $ show_log $ no_fuse)

(* `shapeshift campaign` ----------------------------------------------------- *)

let campaign_cmd =
  let trials =
    Arg.(
      value & opt int 200
      & info [ "trials" ] ~docv:"N" ~doc:"Generated plans to execute.")
  in
  let seed =
    Arg.(
      value & opt int64 0xC4A05EEDL
      & info [ "seed" ]
          ~doc:"Campaign seed; every trial seed derives from it.")
  in
  let jobs =
    Arg.(
      value & opt int 1
      & info [ "jobs"; "j" ] ~docv:"N"
          ~doc:
            "Execute trials on N domains (0 = auto).  The report is \
             byte-identical at any job count.")
  in
  let scenario =
    Arg.(
      value & opt string "pilot"
      & info [ "scenario" ] ~docv:"NAME"
          ~doc:"Target scenario: $(b,pilot) or $(b,facility).")
  in
  let shrink_flag =
    Arg.(
      value & flag
      & info [ "shrink" ]
          ~doc:
            "Shrink every violating plan to a locally minimal \
             counterexample (deterministic re-execution).")
  in
  let replay =
    Arg.(
      value
      & opt (some int64) None
      & info [ "replay" ] ~docv:"SEED"
          ~doc:
            "Skip the campaign: regenerate the one plan named by this \
             trial seed, execute it, and report.")
  in
  let verbose =
    Arg.(
      value & flag
      & info [ "verbose" ] ~doc:"List every trial's one-line outcome.")
  in
  let run trials seed jobs scenario shrink_flag replay verbose =
    let module Camp = Mmt_fault.Campaign in
    let target =
      match scenario with
      | "pilot" -> Some (Mmt_pilot.Chaos_run.campaign_target ())
      | "facility" -> Some (Mmt_facility.Chaos.campaign_target ())
      | _ -> None
    in
    match target with
    | None ->
        Printf.eprintf
          "shapeshift campaign: unknown --scenario %s (pilot|facility)\n"
          scenario;
        2
    | Some target -> (
        let shrink_and_print ~profile ~seed:trial_seed plan =
          let violating candidate =
            (target.Camp.execute profile candidate).Camp.violations <> []
          in
          let r = Mmt_fault.Shrink.run ~violating plan in
          Printf.printf
            "shrunk seed 0x%016LX in %d step(s), %d execution(s): %s\n"
            trial_seed r.Mmt_fault.Shrink.steps r.Mmt_fault.Shrink.attempts
            (Mmt_fault.Plan.describe r.Mmt_fault.Shrink.plan)
        in
        match replay with
        | Some trial_seed ->
            let profile, plan =
              Mmt_fault.Generator.generate target.Camp.universe
                ~seed:trial_seed
            in
            Printf.printf "replay seed 0x%016LX [%s] against '%s'\n%s\n"
              trial_seed
              (Mmt_fault.Generator.profile_label profile)
              target.Camp.name
              (Mmt_fault.Plan.describe plan);
            let exec = target.Camp.execute profile plan in
            Printf.printf "invariant: %s\n"
              (Mmt_fault.Invariant.to_string exec.Camp.outcome);
            (match exec.Camp.violations with
            | [] ->
                Printf.printf "invariants: OK\n";
                0
            | vs ->
                Printf.printf "invariants: %d VIOLATION(S)\n" (List.length vs);
                List.iter (fun v -> Printf.printf "  !! %s\n" v) vs;
                if shrink_flag then
                  shrink_and_print ~profile ~seed:trial_seed plan;
                1)
        | None ->
            if trials < 1 then begin
              Printf.eprintf "shapeshift campaign: --trials must be positive\n";
              2
            end
            else begin
              let jobs =
                if jobs = 0 then Mmt_util.Task_pool.recommended_jobs ()
                else jobs
              in
              let report = Camp.run ~jobs target ~trials ~seed in
              print_string (Camp.render ~verbose report);
              match Camp.violating report with
              | [] -> 0
              | bad ->
                  if shrink_flag then
                    List.iter
                      (fun (t : Camp.trial) ->
                        shrink_and_print ~profile:t.Camp.profile
                          ~seed:t.Camp.seed t.Camp.plan)
                      bad;
                  1
            end)
  in
  Cmd.v
    (Cmd.info "campaign"
       ~doc:
         "Fuzz a scenario with seeded random-but-valid fault plans, check \
          the delivery invariants on every trial, and exit non-zero on any \
          violation.")
    Term.(
      const run $ trials $ seed $ jobs $ scenario $ shrink_flag $ replay
      $ verbose)

(* `shapeshift facility` ----------------------------------------------------- *)

let facility_cmd =
  let module Scenario = Mmt_facility.Scenario in
  let min_flows =
    Arg.(value & opt int 10 & info [ "min" ] ~docv:"N" ~doc:"Smallest flow count in the sweep.")
  in
  let max_flows =
    Arg.(value & opt int 1000 & info [ "max" ] ~docv:"N" ~doc:"Largest flow count in the sweep.")
  in
  let jobs =
    Arg.(
      value & opt int 1
      & info [ "jobs"; "j" ] ~docv:"N"
          ~doc:
            "Run the sweep's points on $(docv) domains; 0 picks the \
             machine's recommended count.  Every point is a \
             self-contained deterministic simulation, so the report is \
             byte-identical to the sequential sweep.")
  in
  let shards =
    Arg.(
      value & opt int 1
      & info [ "shards" ] ~docv:"N"
          ~doc:
            "Additionally parallelize $(i,within) each point: cut the \
             facility topology at its WAN-class links (the metro uplinks \
             and the shared WAN) and run the detector halls on $(docv) \
             domains; 0 picks the machine's recommended count.  Composes \
             with --jobs, and like it changes no byte of the report.  \
             Prefer --jobs when there are many points and --shards when \
             one huge point dominates.")
  in
  let seed = Arg.(value & opt int64 42L & info [ "seed" ] ~doc:"Simulation seed.") in
  let duration_ms =
    Arg.(
      value & opt float 3.
      & info [ "duration-ms" ] ~doc:"Workload emission window per point.")
  in
  let loss =
    Arg.(value & opt float 0.002 & info [ "loss" ] ~doc:"WAN drop probability.")
  in
  let plan =
    Arg.(
      value
      & opt (some int) None
      & info [ "plan" ] ~docv:"FLOWS"
          ~doc:
            "Print the static topology plan for $(docv) flows and exit \
             without simulating.")
  in
  let no_pool =
    Arg.(
      value & flag
      & info [ "no-pool" ]
          ~doc:
            "Disable the preallocated packet rings (pure-GC allocation).  \
             Pooling changes the allocator only: the report is \
             byte-identical either way.")
  in
  let no_fuse =
    Arg.(
      value & flag
      & info [ "no-fuse" ]
          ~doc:
            "Disable fused link hops (two engine events per hop, as \
             before PR 9).  Fusing changes event mechanics only: the \
             report is byte-identical either way.")
  in
  let gc_minor_kb =
    Arg.(
      value
      & opt (some int) None
      & info [ "gc-minor-kb" ] ~docv:"KIB"
          ~doc:
            "Per-domain minor-heap size in KiB for the run (restored \
             afterwards).  Bigger minor heaps amortize OCaml 5's \
             stop-the-world minor collections across shard windows.")
  in
  let run min_flows max_flows jobs shards seed duration_ms loss plan no_pool
      no_fuse gc_minor_kb =
    if jobs < 0 then begin
      Printf.eprintf "shapeshift facility: --jobs must be 0 (auto) or positive\n";
      2
    end
    else if shards < 0 then begin
      Printf.eprintf
        "shapeshift facility: --shards must be 0 (auto) or positive\n";
      2
    end
    else begin
      let shards =
        if shards = 0 then Mmt_util.Task_pool.recommended_jobs () else shards
      in
      let base =
        {
          Scenario.default with
          Scenario.duration = Units.Time.ms duration_ms;
          wan_loss = loss;
          seed;
        }
      in
      match plan with
      | Some flows ->
          print_string (Scenario.describe { base with Scenario.flows });
          0
      | None ->
          if min_flows < 1 || max_flows < min_flows then begin
            Printf.eprintf
              "shapeshift facility: need 1 <= --min <= --max (got %d, %d)\n"
              min_flows max_flows;
            2
          end
          else begin
            let points = Mmt_facility.Sweep.log_points ~lo:min_flows ~hi:max_flows () in
            let gc =
              Option.map
                (fun kb ->
                  {
                    Mmt_sim.Shard.minor_heap_kb = Some kb;
                    space_overhead = None;
                  })
                gc_minor_kb
            in
            let output, ok =
              Mmt_experiments.Facility.report ~jobs ~shards
                ~pooling:(not no_pool) ~fusing:(not no_fuse) ?gc ~base ~points
                ()
            in
            print_string output;
            print_newline ();
            if ok then 0 else 1
          end
    end
  in
  Cmd.v
    (Cmd.info "facility"
       ~doc:
         "Sweep the facility-scale fan-in generator (E-F5): 10 to ~1000 \
          mixed-kind elephant flows through an aggregation tree and one \
          shared WAN bottleneck.")
    Term.(
      const run $ min_flows $ max_flows $ jobs $ shards $ seed $ duration_ms
      $ loss $ plan $ no_pool $ no_fuse $ gc_minor_kb)

(* `shapeshift trace` ----------------------------------------------------------- *)

let trace_cmd =
  let fragments =
    Arg.(value & opt int 40 & info [ "fragments" ] ~doc:"Fragments to stream.")
  in
  let limit =
    Arg.(value & opt int 60 & info [ "limit" ] ~doc:"Trace lines to print.")
  in
  let run fragments limit =
    (* A tiny traced pilot-like chain: the packet-level view of a mode
       change and a recovery. *)
    let engine = Mmt_sim.Engine.create () in
    let trace = Mmt_sim.Trace.create () in
    let topo = Mmt_sim.Topology.create ~engine ~trace () in
    let fresh_id () = Mmt_sim.Topology.fresh_packet_id topo in
    let rng = Rng.create ~seed:2L in
    let src = Mmt_sim.Topology.add_node topo ~name:"sensor" in
    let buf = Mmt_sim.Topology.add_node topo ~name:"dtn1" in
    let dst = Mmt_sim.Topology.add_node topo ~name:"dtn2" in
    let src_ip = Mmt_frame.Addr.Ip.of_octets 10 0 0 1 in
    let buf_ip = Mmt_frame.Addr.Ip.of_octets 10 0 0 2 in
    let dst_ip = Mmt_frame.Addr.Ip.of_octets 10 0 0 3 in
    let rate = Units.Rate.gbps 10. in
    let s_to_b =
      Mmt_sim.Topology.connect topo ~src ~dst:buf ~rate
        ~propagation:(Units.Time.us 50.) ()
    in
    let b_to_d =
      Mmt_sim.Topology.connect topo ~src:buf ~dst ~rate
        ~propagation:(Units.Time.ms 2.)
        ~loss:(Mmt_sim.Loss.bernoulli ~drop:0.05 ~corrupt:0. ~rng)
        ()
    in
    let d_to_b =
      Mmt_sim.Topology.connect topo ~src:dst ~dst:buf ~rate
        ~propagation:(Units.Time.ms 2.) ()
    in
    let router_b = Mmt_pilot.Router.create ~default:(Mmt_sim.Link.send b_to_d) () in
    let env_b = Mmt_pilot.Router.env router_b ~engine ~fresh_id ~local_ip:buf_ip in
    let buffer = Mmt.Buffer_host.create ~env:env_b ~capacity:(Units.Size.mib 16) () in
    let mode = Mmt.Mode.make ~name:"wan" ~reliable:buf_ip ~age_budget_us:50_000 () in
    let rewriter =
      Mmt_innet.Mode_rewriter.create ~mode
        ~re_encap:(Mmt.Encap.Over_ipv4 { src = buf_ip; dst = dst_ip; dscp = 0; ttl = 64 })
        ~on_rewrite:(fun ~seq ~born frame ->
          Option.iter (fun seq -> Mmt.Buffer_host.store buffer ~seq ~born frame) seq)
        ()
    in
    let _sw =
      Mmt_innet.Switch.attach ~engine ~node:buf ~profile:Mmt_innet.Switch.alveo_smartnic
        ~elements:[ Mmt_innet.Mode_rewriter.element rewriter ]
        ~route:(fun packet ->
          match Mmt.Encap.locate (Mmt_sim.Packet.frame packet) with
          | Ok (Mmt.Encap.Over_ipv4 { dst; _ }, off)
            when Mmt_frame.Addr.Ip.equal dst buf_ip -> (
              match Mmt.Header.View.of_frame ~off (Mmt_sim.Packet.frame packet) with
              | Ok view when Mmt.Header.View.kind view = Mmt.Feature.Kind.Nak ->
                  Some (Mmt.Buffer_host.on_packet buffer)
              | _ -> Some (Mmt_sim.Link.send b_to_d))
          | _ -> Some (Mmt_sim.Link.send b_to_d))
        ()
    in
    let router_d = Mmt_pilot.Router.create ~default:(Mmt_sim.Link.send d_to_b) () in
    let env_d = Mmt_pilot.Router.env router_d ~engine ~fresh_id ~local_ip:dst_ip in
    let receiver =
      Mmt.Receiver.create ~env:env_d
        {
          Mmt.Receiver.experiment = Mmt.Experiment_id.make ~experiment:2 ~slice:0;
          nak_delay = Units.Time.ms 1.;
          nak_retry_timeout = Units.Time.ms 8.;
          max_nak_retries = 5;
          expected_total = Some fragments;
        }
        ~deliver:(fun _ _ -> ())
    in
    Mmt_sim.Node.set_handler dst (Mmt.Receiver.on_packet receiver);
    let router_s = Mmt_pilot.Router.create ~default:(Mmt_sim.Link.send s_to_b) () in
    let env_s = Mmt_pilot.Router.env router_s ~engine ~fresh_id ~local_ip:src_ip in
    let sender =
      Mmt.Sender.create ~env:env_s
        {
          Mmt.Sender.experiment = Mmt.Experiment_id.make ~experiment:2 ~slice:0;
          destination = dst_ip;
          encap = Mmt.Encap.Raw;
          deadline_budget = None;
          backpressure_to = None;
          pace = None;
          padding = 0;
        }
    in
    for i = 0 to fragments - 1 do
      ignore
        (Mmt_sim.Engine.schedule engine
           ~at:(Units.Time.scale (Units.Time.us 100.) (float_of_int i))
           (fun () -> Mmt.Sender.send sender (Bytes.make 512 'd')))
    done;
    Mmt_sim.Engine.run engine;
    print_string (Mmt_sim.Trace.render ~limit trace);
    let stats = Mmt.Receiver.stats receiver in
    Printf.printf
      "
%d fragments, %d delivered, %d recovered from dtn1, %d trace entries
"
      fragments stats.Mmt.Receiver.delivered stats.Mmt.Receiver.recovered
      (List.length (Mmt_sim.Trace.entries trace));
    0
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:"Stream through a traced mini-pilot and dump the packet-event log.")
    Term.(const run $ fragments $ limit)

let main_cmd =
  let doc = "Multi-modal transport for DAQ workloads (HotNets '24 reproduction)" in
  Cmd.group
    (Cmd.info "shapeshift" ~version:"1.0.0" ~doc)
    [
      list_cmd;
      experiments_cmd;
      all_cmd;
      pilot_cmd;
      telemetry_cmd;
      catalog_cmd;
      failover_cmd;
      chaos_cmd;
      campaign_cmd;
      facility_cmd;
      trace_cmd;
    ]

let () =
  match Cmd.eval_value main_cmd with
  | Ok (`Ok code) -> exit code
  | Ok (`Version | `Help) -> exit 0
  | Error _ -> exit 2
