#!/usr/bin/env python3
"""Bench regression gate.

Compares a fresh `bench --json` run against the committed baseline and
fails (exit 1) when any shared micro-benchmark slowed down by more than
RATIO, when the parallel sweep is slower than the sequential one (the
regression this gate exists to keep out), when `Engine.schedule` or a
shard barrier crossing started allocating, when the sharded E-F5 run
stops being byte-identical to the sequential one, or when sharded
execution is slower than the machine can excuse: on a box with at
least as many cores as shards it must beat sequential (with headroom);
on a smaller box OCaml's stop-the-world minor collections serialize
the domains, so only a sanity bound applies.

The ring-buffer packet path (PR 8) adds two more families of checks:

- `forward`: the steady-state slot -> link -> deliver -> retire path
  must stay allocation-free on the minor heap and must cost at most
  FORWARD_FACTOR raw engine events per packet (both numbers come from
  the *same* run, so the ratio is robust to box speed), and must not
  regress against the committed baseline by more than RATIO.  Since
  the fused link hop (PR 9) the forward path runs one staged engine
  event per hop instead of two, which is what pays for the tightened
  FORWARD_FACTOR; the bench also runs the same traffic with fusing
  off, and the gate requires the two ledgers identical and the
  unfused path allocation-free as well.
- `pilot_audit`: over the E-F4 pilot window the per-shard ring must
  recycle what it acquires (ratio >= RECYCLE_FLOOR), end quiescent
  (`in_use` = 0 — a leaked slot means a retirement point was missed),
  never observe a stale/double `in_packet_done`, and pooling must not
  allocate more minor words than the plain allocator does (with
  headroom; large frames live on the major heap either way, so the
  two are expected to be close rather than far apart).

Usage: bench_gate.py BASELINE.json CURRENT.json
"""

import json
import sys

RATIO = 1.5  # fail when current > baseline * RATIO + SLACK_NS
SLACK_NS = 25.0  # absolute headroom so sub-50ns ops don't flap on noise
SWEEP_HEADROOM = 1.15  # parallel may not exceed sequential by more than this
SHARDED_HEADROOM = 1.15  # sharded vs sequential, when cores >= shards
SHARDED_SANITY = 6.0  # sharded vs sequential, when the box is core-starved
FORWARD_FACTOR = 4.0  # forwarded packet may cost at most this many engine events
RECYCLE_FLOOR = 0.99  # pilot ring: retired / acquired must not drop below this
POOLED_HEADROOM = 1.25  # pooled pilot minor words vs plain allocator


def main() -> int:
    if len(sys.argv) != 3:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    with open(sys.argv[1]) as f:
        baseline = json.load(f)
    with open(sys.argv[2]) as f:
        current = json.load(f)

    failures = []

    base_micro = baseline.get("micro_ns", {})
    cur_micro = current.get("micro_ns", {})
    for name, old_ns in sorted(base_micro.items()):
        new_ns = cur_micro.get(name)
        if new_ns is None:
            continue  # benchmark renamed or removed: not a slowdown
        if new_ns > old_ns * RATIO + SLACK_NS:
            failures.append(
                f"{name}: {old_ns:.1f} ns -> {new_ns:.1f} ns "
                f"({new_ns / old_ns:.2f}x)"
            )

    sweep = current.get("sweep", {})
    sequential = sweep.get("sequential_wall_s")
    parallel = sweep.get("parallel_wall_s")
    if sequential is not None and parallel is not None:
        if parallel > sequential * SWEEP_HEADROOM:
            failures.append(
                f"parallel sweep {parallel:.2f} s slower than "
                f"sequential {sequential:.2f} s"
            )
    if sweep.get("reports_identical") is False:
        failures.append("parallel sweep reports differ from sequential")

    alloc = current.get("schedule_alloc_minor_words")
    if alloc is not None and alloc >= 0.5:
        failures.append(
            f"Engine.schedule allocates ({alloc:.2f} minor words/event)"
        )

    sharded = current.get("sharded", {})
    if sharded.get("results_identical") is False:
        failures.append("sharded E-F5 results differ from sequential")
    seq_wall = sharded.get("sequential_wall_s")
    sh_wall = sharded.get("sharded_wall_s")
    if seq_wall is not None and sh_wall is not None:
        cores = sharded.get("cores", 1)
        shards = sharded.get("shards", 0)
        if cores >= shards:
            if sh_wall > seq_wall * SHARDED_HEADROOM:
                failures.append(
                    f"sharded E-F5 {sh_wall:.2f} s slower than sequential "
                    f"{seq_wall:.2f} s with {cores} cores for {shards} shards"
                )
        elif sh_wall > seq_wall * SHARDED_SANITY:
            failures.append(
                f"sharded E-F5 {sh_wall:.2f} s exceeds the core-starved "
                f"sanity bound ({SHARDED_SANITY}x sequential "
                f"{seq_wall:.2f} s on {cores} core(s))"
            )
    barrier = sharded.get("barrier_alloc_minor_words_per_window")
    if barrier is not None and barrier >= 0.5:
        failures.append(
            f"shard barrier crossing allocates "
            f"({barrier:.2f} minor words/window)"
        )

    forward = current.get("forward", {})
    fwd_ns = forward.get("ns_per_packet")
    fwd_words = forward.get("alloc_minor_words_per_packet")
    if fwd_words is not None and fwd_words >= 0.5:
        failures.append(
            f"forward path allocates ({fwd_words:.2f} minor words/packet)"
        )
    unfused_words = forward.get("alloc_minor_words_per_packet_unfused")
    if unfused_words is not None and unfused_words >= 0.5:
        failures.append(
            f"unfused forward path allocates "
            f"({unfused_words:.2f} minor words/packet)"
        )
    if forward.get("fused_unfused_identical") is False:
        failures.append(
            "fused forward-path ledger differs from the unfused one"
        )
    event_ns = cur_micro.get("E-A3/engine schedule+run event")
    if fwd_ns is not None and event_ns is not None:
        ceiling = event_ns * FORWARD_FACTOR + SLACK_NS
        if fwd_ns > ceiling:
            failures.append(
                f"forward path {fwd_ns:.1f} ns/packet exceeds "
                f"{FORWARD_FACTOR:g}x engine event cost "
                f"({event_ns:.1f} ns -> ceiling {ceiling:.1f} ns)"
            )
    base_fwd_ns = baseline.get("forward", {}).get("ns_per_packet")
    if fwd_ns is not None and base_fwd_ns is not None:
        if fwd_ns > base_fwd_ns * RATIO + SLACK_NS:
            failures.append(
                f"forward path: {base_fwd_ns:.1f} ns -> {fwd_ns:.1f} ns "
                f"({fwd_ns / base_fwd_ns:.2f}x)"
            )

    audit = current.get("pilot_audit", {})
    recycle = audit.get("ring_recycle_ratio")
    if recycle is not None and recycle < RECYCLE_FLOOR:
        failures.append(
            f"pilot ring recycle ratio {recycle:.4f} below {RECYCLE_FLOOR}"
        )
    audit_ring = audit.get("ring", {})
    in_use = audit_ring.get("in_use")
    if in_use is not None and in_use > 0:
        failures.append(
            f"pilot ring leaks {in_use} slot(s) after a quiescent run"
        )
    double_done = audit_ring.get("double_done")
    if double_done is not None and double_done > 0:
        failures.append(
            f"pilot ring saw {double_done} stale/double in_packet_done"
        )
    pooled = audit.get("minor_words_pooled")
    plain = audit.get("minor_words_plain")
    if pooled is not None and plain is not None and plain > 0:
        if pooled > plain * POOLED_HEADROOM:
            failures.append(
                f"pooled pilot allocates more than plain "
                f"({pooled:.0f} vs {plain:.0f} minor words)"
            )

    shared = sorted(set(base_micro) & set(cur_micro))
    print(f"bench gate: {len(shared)} shared micro-benchmarks checked")
    if failures:
        print("bench gate: REGRESSIONS FOUND", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print("bench gate: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
